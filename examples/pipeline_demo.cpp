// pipeline_demo — the unified "collapse once, run anywhere" pipeline,
// end to end:
//
//   1. parse a non-rectangular nest straight from C source
//      (parse_c_for_nest: the paper's surface syntax, §II),
//   2. obtain a CollapsePlan from the process-global plan cache —
//      the symbolic collapse and the parameter bind both run at most
//      once per (nest, params); repeated domains are pure cache hits,
//   3. let Schedule::auto_select pick an execution scheme from the
//      bound domain's shape (depth, trip count, solver kinds),
//   4. execute through the one dispatcher, nrc::run(plan, schedule,
//      body) — the same descriptor could equally drive the C emitter.
//
// Usage: pipeline_demo [N]   (default 600)

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "nrcollapse.hpp"

using namespace nrc;

int main(int argc, char** argv) {
  const i64 N = argc > 1 ? std::atoll(argv[1]) : 600;

  // 1. The paper's Fig. 1 shape, written as the C source it came from.
  const char* source = R"(
#pragma omp parallel for collapse(2)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++) {
    /* body */
  }
)";
  const NestProgram prog = parse_c_for_nest(source);
  std::printf("parsed nest:\n%s\n", prog.nest.str().c_str());

  // 2. Plans come from the global cache: the first get builds
  //    (collapse + bind), every further get for the same domain is a
  //    lookup; a different N on the same nest reuses the symbolic half.
  auto plan = plan_cache().get(prog.nest, {{"N", N}});
  plan = plan_cache().get(prog.nest, {{"N", N}});  // pure hit
  const auto warm = plan_cache().get(prog.nest, {{"N", N / 2 + 2}});  // symbolic hit
  (void)warm;

  // 3. One schedule choice drives everything downstream.
  const Schedule schedule = plan->auto_schedule();

  // 4. Execute.  The body sees the original indices; here it folds them
  //    into a checksum so the work is observable.
  u64 checksum = 0;
  run(*plan, schedule, [&](std::span<const i64> ij) {
    const u64 mix = static_cast<u64>(ij[0]) * 0x9e3779b97f4a7c15ULL ^
                    static_cast<u64>(ij[1]);
#pragma omp atomic
    checksum += mix;
  });

  std::printf("%s", plan->describe().c_str());
  std::printf("ran %lld iterations under %s, checksum %llu\n",
              static_cast<long long>(plan->eval().trip_count()),
              schedule.describe().c_str(),
              static_cast<unsigned long long>(checksum));

  // The same Schedule descriptor feeds the C emitter: runtime execution
  // and generated code share one source of truth.
  EmitOptions emit;
  emit.schedule = schedule;
  NestProgram emittable = prog;
  emittable.name = "demo";
  emittable.body = "/* body */;";
  std::printf("\ngenerated C (%s style):\n%s",
              schedule.describe().c_str(),
              emit_collapsed_function(emittable, plan->collapsed(), emit).c_str());

  // 5. Persistence: snapshot the cache, then warm-start a fresh one
  //    from the stream — the restarted-server flow (nrcd --snapshot)
  //    in miniature.  Every replayed domain is then a pure hit.
  std::stringstream snap;
  const size_t written = plan_cache().snapshot(snap);
  PlanCache restarted;  // stands in for the cache of a new process
  const size_t loaded = restarted.warm_start(snap);
  const GetResult after = restarted.get_with_outcome(prog.nest, {{"N", N}});
  std::printf("\nsnapshot/warm-start: %zu plans written, %zu replayed; "
              "first request after restart: %s\n",
              written, loaded, get_outcome_name(after.outcome));
  return 0;
}
