// nrcd — collapse-as-a-service: a line-protocol TCP front end over the
// process-global plan cache.
//
//   nrcd [--port=7711] [--snapshot=PATH] [--once]
//
// Clients send newline-framed requests (serve/protocol.hpp):
//
//   describe N=2000\n
//   for (i = 0; i < N - 1; i++)\n
//     for (j = i + 1; j < N; j++) {\n
//     }\n
//   .\n
//
// and receive length-prefixed responses whose header attributes the
// request's cost (outcome=hit|symbolic|cold, build_ns).  Every plan
// flows through nrc::plan_cache(), so concurrent clients share builds:
// the future-based miss path guarantees one build per domain with hits
// never queueing behind a cold bind.
//
// --snapshot=PATH warm-starts the cache from PATH at boot (if the file
// exists) and rewrites PATH on SIGINT/SIGTERM, so a restarted server
// starts hot.  --once serves a single connection then exits (used for
// smoke testing: `nrcd --once & ... | nc localhost 7711`).
//
// Transport is deliberately boring: one POSIX listening socket, one
// detached thread per connection, a streambuf over the fd so the
// protocol module reads the socket like any istream.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>

#include "nrcollapse.hpp"

using namespace nrc;

namespace {

/// Minimal bidirectional streambuf over a connected socket fd, so the
/// transport-free protocol functions read/write it as iostreams.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(rbuf_, rbuf_, rbuf_);
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
  }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, rbuf_, sizeof(rbuf_));
    if (n <= 0) return traits_type::eof();
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }
  int_type overflow(int_type ch) override {
    if (!flush()) return traits_type::eof();
    if (ch != traits_type::eof()) {
      wbuf_[0] = traits_type::to_char_type(ch);
      pbump(1);
    }
    return ch;
  }
  int sync() override { return flush() ? 0 : -1; }

 private:
  bool flush() {
    const char* p = pbase();
    ssize_t left = pptr() - pbase();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, static_cast<size_t>(left));
      if (n <= 0) return false;
      p += n;
      left -= n;
    }
    setp(wbuf_, wbuf_ + sizeof(wbuf_));
    return true;
  }

  int fd_;
  char rbuf_[4096];
  char wbuf_[4096];
};

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }

void serve_connection(int fd) {
  FdStreambuf buf(fd);
  std::istream in(&buf);
  std::ostream out(&buf);
  serve::Request req;
  for (;;) {
    try {
      if (!serve::read_request(in, req)) break;  // client closed
    } catch (const Error& e) {
      serve::Response bad{false, std::string(e.what()) + "\n", "-", 0};
      out << serve::format_response(bad) << std::flush;
      break;  // framing is gone; drop the connection
    }
    const serve::Response resp = serve::handle_request(plan_cache(), req);
    out << serve::format_response(resp) << std::flush;
    if (req.verb == "quit") break;
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  int port = 7711;
  std::string snapshot_path;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0)
      port = std::atoi(arg.c_str() + 7);
    else if (arg.rfind("--snapshot=", 0) == 0)
      snapshot_path = arg.substr(11);
    else if (arg == "--once")
      once = true;
    else {
      std::fprintf(stderr, "usage: nrcd [--port=N] [--snapshot=PATH] [--once]\n");
      return 2;
    }
  }

  if (!snapshot_path.empty()) {
    std::ifstream snap(snapshot_path);
    if (snap) {
      try {
        const size_t n = plan_cache().warm_start(snap);
        std::fprintf(stderr, "nrcd: warm-started %zu plans from %s\n", n,
                     snapshot_path.c_str());
      } catch (const Error& e) {
        std::fprintf(stderr, "nrcd: warm start failed (%s); starting cold\n", e.what());
      }
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
  }

  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("nrcd: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("nrcd: bind");
    return 1;
  }
  if (::listen(listener, 64) < 0) {
    std::perror("nrcd: listen");
    return 1;
  }
  std::fprintf(stderr, "nrcd: listening on 127.0.0.1:%d\n", port);

  while (!g_stop.load()) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop.load()) break;
      continue;
    }
    const int nd = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nd, sizeof(nd));
    if (once) {
      serve_connection(fd);
      break;
    }
    std::thread(serve_connection, fd).detach();
  }
  ::close(listener);

  if (!snapshot_path.empty()) {
    std::ofstream snap(snapshot_path, std::ios::trunc);
    const size_t n = plan_cache().snapshot(snap);
    std::fprintf(stderr, "nrcd: snapshotted %zu plans to %s\n", n, snapshot_path.c_str());
  }
  std::fprintf(stderr, "%s\n", plan_cache().stats_line().c_str());
  return 0;
}
