// Quickstart: collapse a triangular loop nest and run it in parallel.
//
// The 60-second tour of the library:
//   1. describe the nest        (NestSpec, affine bounds)
//   2. collapse it              (ranking polynomial + inverse, symbolic)
//   3. bind parameters          (fast runtime evaluator)
//   4. execute with OpenMP      (balanced collapsed loop, §V scheme)
//
// Build & run:  ./examples/quickstart [N]

#include <cstdio>
#include <cstdlib>

#include "nrcollapse.hpp"

using namespace nrc;

int main(int argc, char** argv) {
  const i64 N = argc > 1 ? std::atoll(argv[1]) : 2000;

  // -- 1. The nest of the paper's motivating example (Fig. 1):
  //        for (i = 0; i < N-1; i++)
  //          for (j = i+1; j < N; j++) ...
  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::v("i") + 1, aff::v("N"));

  // -- 2. Collapse: computes the ranking Ehrhart polynomial and the
  //        closed-form recovery of (i, j) from the single index pc.
  const Collapsed col = collapse(nest);
  std::printf("%s\n", col.describe().c_str());

  // -- 3. Bind a concrete size.
  const CollapsedEval cn = col.bind({{"N", N}});
  std::printf("trip count for N=%lld: %lld\n\n", static_cast<long long>(N),
              static_cast<long long>(cn.trip_count()));

  // -- 4. Run in parallel: every thread gets the same number of (i, j)
  //        pairs, regardless of the triangle's skew.  (Per-thread
  //        accumulators; the executor opens its own parallel region.)
  std::vector<double> acc(static_cast<size_t>(omp_get_max_threads()), 0.0);
  collapsed_for_per_thread(cn, [&](std::span<const i64> ij) {
    acc[static_cast<size_t>(omp_get_thread_num())] +=
        1.0 / static_cast<double>(ij[0] + ij[1] + 1);
  });
  double checksum = 0.0;
  for (double v : acc) checksum += v;
  std::printf("parallel checksum: %.9f\n", checksum);

  // Verify against the plain serial nest.
  double expect = 0.0;
  for (i64 i = 0; i < N - 1; ++i)
    for (i64 j = i + 1; j < N; ++j) expect += 1.0 / static_cast<double>(i + j + 1);
  std::printf("serial   checksum: %.9f  (%s)\n", expect,
              nearly_equal(checksum, expect) ? "match" : "MISMATCH");

  // Paranoia utility: validate the whole domain at a small size.
  const auto rep = validate_collapsed(col, {{"N", 50}});
  std::printf("whole-domain validation at N=50: %s (%lld points)\n",
              rep.ok ? "ok" : rep.first_error.c_str(),
              static_cast<long long>(rep.points_checked));
  return rep.ok && nearly_equal(checksum, expect) ? 0 : 1;
}
