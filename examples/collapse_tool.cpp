// collapse_tool — the source-to-source tool of paper §VII as a CLI.
//
// Reads a nest program in the DSL (see codegen/dsl_parser.hpp; examples
// under examples/specs/) and emits OpenMP C code with the nest collapsed
// and the original indices recovered from the single loop index.
//
// Usage:
//   collapse_tool [flags] [file.nest]        (stdin when no file)
//
// Flags:
//   --emit=function     collapsed function only (default)
//   --emit=original     the original nest as a function
//   --emit=program      self-verifying program (original + collapsed + main)
//   --emit=describe     symbolic report (ranking polynomial, roots)
//   --style=thread      one recovery per thread, Fig. 4 (default)
//   --style=iteration   recovery at every iteration, Fig. 3
//   --style=chunk=N     schedule(static, N), recovery per chunk (§V)
//   --style=simd=N      §VI-A block scheme with vlength N
//   --cfor              input is a plain C for-nest (optionally preceded by
//                       '#pragma omp ... collapse(n)') instead of the DSL
//
// Example:
//   ./examples/collapse_tool --emit=program examples/specs/correlation.nest \
//     | cc -xc - -O2 -fopenmp -lm -o verify && ./verify 100

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "nrcollapse.hpp"

using namespace nrc;

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: collapse_tool [--emit=function|original|program|describe]\n"
               "                     [--style=thread|iteration|chunk=N|simd=N]\n"
               "                     [--cfor] [file.nest]\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  std::string emit = "function";
  EmitOptions opt;
  std::string path;
  bool cfor = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--emit=", 0) == 0) {
      emit = arg.substr(7);
    } else if (arg == "--style=thread") {
      opt.schedule = Schedule::per_thread();
    } else if (arg == "--style=iteration") {
      opt.schedule = Schedule::per_iteration();
    } else if (arg.rfind("--style=chunk=", 0) == 0) {
      opt.schedule = Schedule::chunked(std::atoll(arg.c_str() + 14));
      if (opt.schedule.chunk <= 0) usage(2);
    } else if (arg.rfind("--style=simd=", 0) == 0) {
      opt.schedule = Schedule::simd_blocks(std::atoi(arg.c_str() + 13));
      if (opt.schedule.vlen <= 0) usage(2);
    } else if (arg == "--cfor") {
      cfor = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(2);
    } else {
      path = arg;
    }
  }

  std::string text;
  if (path.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  try {
    const NestProgram prog = cfor ? parse_c_for_nest(text) : parse_nest_program(text);
    const Collapsed col = collapse(prog.collapsed_nest());
    if (emit == "function") {
      std::fputs(emit_collapsed_function(prog, col, opt).c_str(), stdout);
    } else if (emit == "original") {
      std::fputs(emit_original_function(prog).c_str(), stdout);
    } else if (emit == "program") {
      std::fputs(emit_verification_program(prog, col, opt).c_str(), stdout);
    } else if (emit == "describe") {
      std::fputs(col.describe().c_str(), stdout);
    } else {
      usage(2);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "collapse_tool: %s\n", e.what());
    return 1;
  }
  return 0;
}
