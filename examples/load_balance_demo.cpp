// Load-balance explorer: the paper's Fig. 2 argument, across shapes.
//
// For each non-rectangular shape, prints how many iterations each thread
// receives under (a) outer-loop schedule(static) and (b) the collapsed
// loop, plus the imbalance factor — the quantity the whole paper is
// about.  Everything is computed analytically from the iteration domain
// (no timing noise).
//
// Build & run:  ./examples/load_balance_demo [size] [threads]

#include <cstdio>
#include <cstdlib>

#include "nrcollapse.hpp"

using namespace nrc;

namespace {

struct Shape {
  const char* name;
  NestSpec nest;
};

std::vector<Shape> shapes() {
  std::vector<Shape> ss;
  {
    NestSpec n;
    n.param("N").loop("i", aff::c(0), aff::v("N") - 1).loop("j", aff::v("i") + 1,
                                                            aff::v("N"));
    ss.push_back({"triangular (correlation)", n});
  }
  {
    NestSpec n;
    n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::c(0), aff::v("i") + 1);
    ss.push_back({"lower-triangular (symm/ltmp)", n});
  }
  {
    NestSpec n;
    n.param("N")
        .loop("i", aff::c(0), aff::v("N"))
        .loop("j", aff::v("i"), 2 * aff::v("i") + aff::v("N"));
    ss.push_back({"trapezoidal (skewed stencil)", n});
  }
  {
    NestSpec n;
    n.param("N")
        .loop("i", aff::c(0), aff::v("N"))
        .loop("j", aff::v("i"), aff::v("i") + aff::v("N"));
    ss.push_back({"rhomboidal (balanced rows!)", n});
  }
  {
    NestSpec n;
    n.param("N")
        .loop("i", aff::c(0), aff::v("N"))
        .loop("j", aff::v("i"), aff::v("N"))
        .loop("k", aff::v("j"), aff::v("N"));
    ss.push_back({"tetrahedral", n});
  }
  return ss;
}

}  // namespace

int main(int argc, char** argv) {
  const i64 size = argc > 1 ? std::atoll(argv[1]) : 600;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 12;

  std::printf("%-30s %16s %16s %14s\n", "shape", "outer-static", "collapsed",
              "static is");
  for (const auto& s : shapes()) {
    const ParamMap p{{"N", size}};
    const ThreadLoad outer = outer_static_load(s.nest, p, threads);
    const i64 total = count_domain_brute(s.nest, p);
    const ThreadLoad coll = collapsed_static_load(total, threads);
    std::printf("%-30s %14.1f%% %14.1f%% %10.2fx slower\n", s.name,
                100.0 * outer.imbalance(), 100.0 * coll.imbalance(),
                (1.0 + outer.imbalance()) / (1.0 + coll.imbalance()));
  }
  std::printf(
      "\nimbalance = max/mean - 1 over %d threads; the parallel makespan is\n"
      "proportional to (1 + imbalance).  Note the rhomboid: its rows are\n"
      "equal-length, so outer static is already balanced — collapsing helps\n"
      "exactly when rows vary (triangles, trapezoids, tetrahedra).\n",
      threads);

  // The paper's Fig. 2, drawn: thread ownership of the correlation
  // triangle under both assignments (small N so it fits a terminal).
  NestSpec tri;
  tri.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::v("i") + 1, aff::v("N"));
  viz::RenderOptions ropt;
  ropt.threads = 5;
  std::printf("\nouter schedule(static), 5 threads (paper Fig. 2):\n%s",
              viz::render_domain(tri, {{"N", 24}}, viz::Assignment::OuterStatic, ropt)
                  .c_str());
  std::printf("\ncollapsed schedule(static), 5 threads:\n%s",
              viz::render_domain(tri, {{"N", 24}}, viz::Assignment::CollapsedStatic, ropt)
                  .c_str());
  return 0;
}
