// nrclint — static analysis front end for collapse plans.
//
//   nrclint [FILE] [NAME=VALUE ...]      lint one nest (C-for or DSL text
//                                        from FILE, or stdin when omitted
//                                        or "-"), bound at the given
//                                        parameter values
//   nrclint --kernels [--scale=S]        lint every registered kernel's
//                                        collapsed nest at its bound
//                                        parameters (the CI gate mode)
//
// The nest syntax is auto-detected exactly like the nrcd server does
// (lines starting with "for"/"#pragma" parse as C-for, anything else as
// the nest DSL).  Output is the NestCertificate lint block — per-check
// verdicts plus one line per diagnostic, stable codes first:
//
//   lint: 1 diagnostic (max warn); certificates: trip-i64 yes, f64-exact no, ...
//     warn NRC-W002 [level 1]: f64 guard path not certified: ...
//
// Exit status is the max severity: 0 clean/info, 1 warn, 2 error.
// Unreadable input or unparseable nest text also exits 2 (the finding
// is rendered as an NRC-E001-style line so CI logs stay uniform).

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/nest_analyzer.hpp"
#include "kernels/registry.hpp"
#include "serve/protocol.hpp"
#include "support/error.hpp"

namespace {

int severity_exit(const nrc::NestCertificate& cert) {
  if (cert.diagnostics.empty()) return 0;
  switch (cert.max_severity()) {
    case nrc::LintSeverity::Info: return 0;
    case nrc::LintSeverity::Warn: return 1;
    case nrc::LintSeverity::Error: return 2;
  }
  return 2;
}

int lint_kernels(double scale) {
  int worst = 0;
  for (const std::string& name : nrc::kernel_names()) {
    const auto kernel = nrc::make_kernel(name);
    kernel->prepare(scale);
    const nrc::NestCertificate cert =
        nrc::analyze_nest(kernel->collapsed_spec(), kernel->bound_params());
    std::cout << "== " << name << " (" << kernel->info().shape << ", depth "
              << kernel->info().collapse_depth << ") ==\n"
              << cert.str();
    worst = std::max(worst, severity_exit(cert));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bool kernels = false;
  double scale = 0.05;  // kernel nests are scale-independent in structure;
                        // small default keeps prepare() cheap in CI
  std::string file;
  nrc::ParamMap params;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kernels") {
      kernels = true;
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atof(arg.c_str() + 8);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: nrclint [FILE|-] [NAME=VALUE ...]\n"
                   "       nrclint --kernels [--scale=S]\n";
      return 0;
    } else if (arg.find('=') != std::string::npos && arg[0] != '-') {
      const size_t eq = arg.find('=');
      try {
        params[arg.substr(0, eq)] = std::stoll(arg.substr(eq + 1));
      } catch (const std::exception&) {
        std::cerr << "error NRC-E001: malformed parameter '" << arg << "'\n";
        return 2;
      }
    } else if (file.empty()) {
      file = arg;
    } else {
      std::cerr << "error NRC-E001: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }

  if (kernels) return lint_kernels(scale);

  std::string text;
  if (file.empty() || file == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "error NRC-E001: cannot read '" << file << "'\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  nrc::NestSpec nest;
  try {
    nest = nrc::serve::parse_nest_text(text).collapsed_nest();
  } catch (const nrc::Error& e) {
    std::cerr << "error NRC-E001: nest text rejected: " << e.what() << "\n";
    return 2;
  }

  const nrc::NestCertificate cert = nrc::analyze_nest(nest, params);
  std::cout << cert.str();
  return severity_exit(cert);
}
