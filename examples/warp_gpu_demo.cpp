// GPU warp-execution scheme (paper §VI-B), simulated on the CPU.
//
// On a GPU, consecutive collapsed iterations go to consecutive threads
// of a warp for memory coalescing; each thread then recovers its indices
// once and advances W odometer steps per iteration.  This demo runs the
// same access pattern on the CPU and shows (a) that it covers the domain
// exactly and (b) what the W-fold incrementation costs relative to the
// §V per-thread scheme.
//
// Build & run:  ./examples/warp_gpu_demo [N] [warp_size]

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "nrcollapse.hpp"

using namespace nrc;

int main(int argc, char** argv) {
  const i64 N = argc > 1 ? std::atoll(argv[1]) : 1500;
  const int W = argc > 2 ? std::atoi(argv[2]) : 32;

  // Inclusive triangle with a small body (coalescing-friendly).
  NestSpec nest;
  nest.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::v("i"), aff::v("N"));
  const Collapsed col = collapse(nest);
  const CollapsedEval cn = col.bind({{"N", N}});

  Matrix a(N, N), b(N, N), c(N, N);
  a.fill_lcg(3);
  b.fill_lcg(5);
  auto body = [&](std::span<const i64> ij) {
    c[ij[0]][ij[1]] = a[ij[0]][ij[1]] + b[ij[0]][ij[1]];
  };

  std::printf("triangular add, N = %lld (%lld iterations), warp size %d\n",
              static_cast<long long>(N), static_cast<long long>(cn.trip_count()), W);

  c.fill_zero();
  const double t_warp = time_best([&] { collapsed_for_warp_sim(cn, W, body); });
  const double ref = c.checksum();

  c.fill_zero();
  const double t_thread = time_best([&] { collapsed_for_per_thread(cn, body); });
  const bool ok = nearly_equal(c.checksum(), ref);

  std::printf("warp-sim (recover once, %d increments per step): %8.4f s\n", W, t_warp);
  std::printf("per-thread (§V):                                 %8.4f s\n", t_thread);
  std::printf("warp / per-thread cost ratio: %.2fx  (the W-fold incrementation\n"
              "is the price of coalesced pc assignment, as §VI-B anticipates)\n",
              t_warp / t_thread);
  std::printf("results match: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
