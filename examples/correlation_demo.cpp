// The paper's motivating example (§II), narrated end to end:
// build the correlation nest, show the recovery formulas the library
// derives (the same ones the paper prints), then race the scheduling
// strategies discussed in §II.
//
// Build & run:  ./examples/correlation_demo [N] [threads]

#include <cstdio>
#include <cstdlib>

#include "nrcollapse.hpp"

using namespace nrc;

int main(int argc, char** argv) {
  const i64 N = argc > 1 ? std::atoll(argv[1]) : 1000;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 12;

  std::printf("correlation (paper Fig. 1), N = %lld, %d threads\n\n",
              static_cast<long long>(N), threads);

  // The (i, j) sub-nest that will be collapsed; the k-loop stays in the
  // body.
  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::v("i") + 1, aff::v("N"));
  const Collapsed col = collapse(nest);

  std::printf("-- symbolic artifacts ------------------------------------\n");
  std::printf("%s\n", col.describe().c_str());

  // The generated-code view (paper Fig. 4): what the source-to-source
  // tool would emit for this nest.
  const char* dsl = R"(
name correlation
params N
array double a[N][N]
array double b[N][N]
array double c[N][N]
loop i = 0 .. N-1
loop j = i+1 .. N
collapse 2
body {
  for (long k = 0; k < N; k++)
    a[i][j] += b[k][i] * c[k][j];
  a[j][i] = a[i][j];
}
)";
  const NestProgram prog = parse_nest_program(dsl);
  std::printf("-- generated OpenMP C (Fig. 4 style) ---------------------\n");
  std::printf("%s\n", emit_collapsed_function(prog, col, {}).c_str());

  // Timed comparison of §II's strategies.
  std::printf("-- measured (min of 3 runs each) -------------------------\n");
  const CollapsedEval cn = col.bind({{"N", N}});
  Matrix a(N, N), b(N, N), c(N, N);
  b.fill_lcg(7);
  c.fill_lcg(11);
  auto body = [&](i64 i, i64 j) {
    double acc = 0.0;
    for (i64 k = 0; k < N; ++k) acc += b[k][i] * c[k][j];
    a[i][j] = acc;
    a[j][i] = acc;
  };

  const double t_static = time_best([&] {
#pragma omp parallel for schedule(static) num_threads(threads)
    for (i64 i = 0; i < N - 1; ++i)
      for (i64 j = i + 1; j < N; ++j) body(i, j);
  });
  const double ref = a.checksum();

  const double t_dynamic = time_best([&] {
#pragma omp parallel for schedule(dynamic) num_threads(threads)
    for (i64 i = 0; i < N - 1; ++i)
      for (i64 j = i + 1; j < N; ++j) body(i, j);
  });

  const double t_collapsed = time_best([&] {
    collapsed_for_chunked(cn, default_chunk(cn.trip_count(), threads),
                          [&](std::span<const i64> ij) { body(ij[0], ij[1]); },
                          {threads});
  });
  const bool ok = nearly_equal(a.checksum(), ref);

  std::printf("outer static   : %8.4f s\n", t_static);
  std::printf("outer dynamic  : %8.4f s\n", t_dynamic);
  std::printf("collapsed (SV) : %8.4f s   -> %+.1f%% vs static, %+.1f%% vs dynamic\n",
              t_collapsed, 100.0 * (t_static - t_collapsed) / t_static,
              100.0 * (t_dynamic - t_collapsed) / t_dynamic);
  std::printf("results match  : %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
