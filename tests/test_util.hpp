#pragma once
// Shared helpers for the nrcollapse test suite: the menagerie of nest
// shapes the property tests sweep over, the seeded random nest
// generator behind the randomized differential fuzzer
// (tests/core/differential_fuzz_test.cpp), and the scheme-differential
// harness the executor fuzzer drives every collapsed_for_* scheme
// through (tests/runtime/executor_fuzz_test.cpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "nrcollapse.hpp"

namespace nrc::testutil {

struct ShapeCase {
  std::string name;
  NestSpec nest;
};

/// Paper Fig. 1 (outer two loops): strict upper triangle.
inline NestSpec triangular_strict() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::v("i") + 1, aff::v("N"));
  return n;
}

/// Inclusive triangle (covariance shape).
inline NestSpec triangular_inclusive() {
  NestSpec n;
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::v("i"), aff::v("N"));
  return n;
}

/// Lower triangle, j <= i.
inline NestSpec triangular_lower() {
  NestSpec n;
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::c(0), aff::v("i") + 1);
  return n;
}

/// Paper Fig. 6: tetrahedral 3-deep nest (cubic level equation).
inline NestSpec tetrahedral_fig6() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::c(0), aff::v("i") + 1)
      .loop("k", aff::v("j"), aff::v("i") + 1);
  return n;
}

/// Rectangular (constant bounds) — the case OpenMP already handles.
inline NestSpec rectangular() {
  NestSpec n;
  n.param("N").param("M")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("M"));
  return n;
}

/// Rhomboidal (parallelogram): shifted constant-width rows.
inline NestSpec rhomboidal() {
  NestSpec n;
  n.param("N").param("M")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("i") + aff::v("M"));
  return n;
}

/// Trapezoidal: rows grow with the outer index.
inline NestSpec trapezoidal() {
  NestSpec n;
  n.param("N").param("M")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("M") + aff::v("i"));
  return n;
}

/// Trapezoidal with skewed lower bound and 2x growth.
inline NestSpec trapezoidal_skewed() {
  NestSpec n;
  n.param("T").param("N")
      .loop("i", aff::c(0), aff::v("T"))
      .loop("j", aff::v("i"), aff::v("N") + 2 * aff::v("i"));
  return n;
}

/// 3-deep: triangle over a rectangle (mixed).
inline NestSpec tri_rect_3d() {
  NestSpec n;
  n.param("N").param("M")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"))
      .loop("k", aff::c(0), aff::v("M"));
  return n;
}

/// 3-deep full tetrahedron 0 <= i <= j <= k < N.
inline NestSpec tetrahedral_ordered() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"))
      .loop("k", aff::v("j"), aff::v("N"));
  return n;
}

/// 3-deep with a bound depending on two outer iterators (paper §IV-B
/// mentions for(k=0;k<i+j;k++); shifted so ranges are never empty).
inline NestSpec sum_bound_3d() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("N"))
      .loop("k", aff::c(0), aff::v("i") + aff::v("j") + 1);
  return n;
}

/// 4-deep simplex: the deepest dependency chain whose level equation
/// still has degree 4 (the paper's closed-form limit).
inline NestSpec simplex_4d() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"))
      .loop("k", aff::v("j"), aff::v("N"))
      .loop("l", aff::v("k"), aff::v("N"));
  return n;
}

/// 5-deep simplex: level-0 equation has degree 5 — beyond the paper's
/// closed-form limit; exercised via search fallback.
inline NestSpec simplex_5d() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"))
      .loop("k", aff::v("j"), aff::v("N"))
      .loop("l", aff::v("k"), aff::v("N"))
      .loop("m", aff::v("l"), aff::v("N"));
  return n;
}

/// Non-zero constant lower bounds plus parameter offsets.
inline NestSpec shifted_bounds() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(3), aff::v("N") + 3)
      .loop("j", aff::v("i") - 2, aff::v("N") + aff::v("i"));
  return n;
}

/// 4-deep simplex with shifted/offset bounds: quartic level equation
/// whose coefficients carry non-trivial constants.
inline NestSpec simplex_4d_shifted() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(3), aff::v("N") + 3)
      .loop("j", aff::v("i") - 2, aff::v("N") + 3)
      .loop("k", aff::v("j"), aff::v("N") + 4)
      .loop("l", aff::v("k"), aff::v("N") + 5);
  return n;
}

/// Growing-extent 4-deep nest (trapezoid tower): the level-0 equation is
/// quartic with every extent widening in the outer indices.
inline NestSpec trapezoid_tower_4d() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("i") + 1)
      .loop("k", aff::v("j"), aff::v("i") + 2)
      .loop("l", aff::c(0), aff::v("k") + 2);
  return n;
}

/// 5-deep: 4-chain simplex over a rectangular floor — quartic level-0
/// equation inside a deeper nest (the paper's closed-form limit holds
/// per level, not per nest).
inline NestSpec simplex_4d_tower() {
  NestSpec n;
  n.param("N").param("M")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"))
      .loop("k", aff::v("j"), aff::v("N"))
      .loop("l", aff::v("k"), aff::v("N"))
      .loop("m", aff::c(0), aff::v("M"));
  return n;
}

/// All shapes that satisfy the model for the given uniform parameter
/// value, with every level degree <= 4 (closed-form eligible).
inline std::vector<ShapeCase> closed_form_shapes() {
  return {
      {"triangular_strict", triangular_strict()},
      {"triangular_inclusive", triangular_inclusive()},
      {"triangular_lower", triangular_lower()},
      {"tetrahedral_fig6", tetrahedral_fig6()},
      {"rectangular", rectangular()},
      {"rhomboidal", rhomboidal()},
      {"trapezoidal", trapezoidal()},
      {"trapezoidal_skewed", trapezoidal_skewed()},
      {"tri_rect_3d", tri_rect_3d()},
      {"tetrahedral_ordered", tetrahedral_ordered()},
      {"sum_bound_3d", sum_bound_3d()},
      {"simplex_4d", simplex_4d()},
      {"shifted_bounds", shifted_bounds()},
      {"simplex_4d_shifted", simplex_4d_shifted()},
      {"trapezoid_tower_4d", trapezoid_tower_4d()},
      {"simplex_4d_tower", simplex_4d_tower()},
  };
}

/// Uniform parameter map for a nest.
inline ParamMap uniform_params(const NestSpec& nest, i64 v) {
  ParamMap p;
  for (const auto& name : nest.params()) p[name] = v;
  return p;
}

// ---------------------------------------------------------------------------
// Randomized differential nest fuzzer (tests/core/differential_fuzz_test.cpp).
//
// make_fuzz_nest(cls, seed) deterministically generates a valid random
// nest of the given class.  Bounds are built as lower + width with the
// width's minimum over the whole iteration box (interval arithmetic over
// the outer-variable ranges, the parameter N ranging over
// [1, kFuzzMaxN]) fixed up to stay >= 1, so every generated nest
// satisfies the Fig. 5 no-empty-ranges model for EVERY N in
// [1, kFuzzMaxN] — one symbolic collapse() serves several bound domains.
// Degenerate cases may instead force a pointwise-zero width
// (expect_empty: collapse() or bind() must reject the domain).
//
// Reproducing a failure: every assertion message carries
// "class=<name> seed=<decimal>"; rerun just that case with
//   NRC_FUZZ_CLASS=<name> NRC_FUZZ_SEED=<decimal> ctest -R differential
// (see the Repro test in differential_fuzz_test.cpp and README.md).

enum class FuzzClass { Triangular, Tiled, Skewed, Degenerate };

inline constexpr FuzzClass kFuzzClasses[] = {
    FuzzClass::Triangular, FuzzClass::Tiled, FuzzClass::Skewed,
    FuzzClass::Degenerate};

inline constexpr i64 kFuzzMaxN = 7;  ///< generated nests are valid for N in [1, this]

inline const char* fuzz_class_name(FuzzClass c) {
  switch (c) {
    case FuzzClass::Triangular:
      return "triangular";
    case FuzzClass::Tiled:
      return "tiled";
    case FuzzClass::Skewed:
      return "skewed";
    case FuzzClass::Degenerate:
      return "degenerate";
  }
  return "?";
}

struct FuzzNest {
  NestSpec nest;
  FuzzClass cls = FuzzClass::Triangular;
  u64 seed = 0;
  bool expect_empty = false;  ///< collapse()/bind() must reject the domain
  ParamMap calibration;       ///< small explicit calibration (keeps fuzzing fast)
  ParamMap fixed_params;      ///< non-N parameters (the "S" offset), bound as-is

  /// Repro line prefixed to every assertion message.
  std::string repro() const {
    std::string s = std::string("class=") + fuzz_class_name(cls) +
                    " seed=" + std::to_string(seed);
    for (const auto& [k, v] : fixed_params) s += " " + k + "=" + std::to_string(v);
    return s + "\n" + nest.str();
  }
};

inline FuzzNest make_fuzz_nest(FuzzClass cls, u64 seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eed5eedULL);
  auto pick = [&](i64 lo, i64 hi) {
    return lo + static_cast<i64>(rng() % static_cast<u64>(hi - lo + 1));
  };

  FuzzNest fc;
  fc.cls = cls;
  fc.seed = seed;
  fc.calibration["N"] = pick(2, 3);

  NestSpec n;
  n.param("N");

  int depth;
  if (cls == FuzzClass::Tiled) {
    depth = 2 * static_cast<int>(pick(1, 2));
  } else {
    // Skewed toward shallow nests; depth 5 (quartic level equations
    // inside deeper nests) kept rare because its symbolic collapse
    // dominates the fuzzing budget.
    const i64 roll = pick(0, 9);
    depth = roll < 3 ? 2 : roll < 6 ? 3 : roll < 9 ? 4 : 5;
  }

  // Magnitude regime: small coefficients, medium offsets, or
  // near-demotion offsets.  The offset rides on a dedicated parameter S
  // (a literal 3e6 constant would overflow the *symbolic* ranking
  // machinery at depth 4 — shift^4 > int64 — whereas parameter folding
  // at bind() time demotes gracefully, exercising the i128 guards and
  // the Search/Interpreted fallbacks the way astronomical parameters
  // do in production).
  const i64 magroll = cls == FuzzClass::Degenerate ? pick(0, 2) : pick(0, 9);
  const i64 shift = magroll >= 2 ? 0
                    : magroll == 1 ? pick(50, 4000)
                                   : pick(50000, 3000000);
  if (shift > 0) {
    n.param("S");
    fc.fixed_params["S"] = shift;
    fc.calibration["S"] = shift;
  }

  // Degenerate sub-modes.
  const bool empty_domain = cls == FuzzClass::Degenerate && pick(0, 3) == 0;
  const bool single_point = !empty_domain && cls == FuzzClass::Degenerate && pick(0, 2) == 0;
  const int empty_level = empty_domain ? static_cast<int>(pick(0, depth - 1)) : -1;
  fc.expect_empty = empty_domain;

  std::vector<std::string> vars;
  std::vector<i64> vmin, vmax;  // interval over the box, N in [1, kFuzzMaxN]
  double prod = 1.0;            // running bound on the domain size

  // Random affine over the outer vars and N; returns the expression and
  // its [lo, hi] interval over the box.
  struct Iv {
    AffineExpr e;
    i64 lo = 0, hi = 0;
  };
  auto rand_aff = [&](i64 cmax, int max_terms, i64 c_lo, i64 c_hi, int n_coef_max) {
    Iv a;
    const int nt = static_cast<int>(pick(0, max_terms));
    for (int t = 0; t < nt && !vars.empty(); ++t) {
      const size_t j = static_cast<size_t>(pick(0, static_cast<i64>(vars.size()) - 1));
      const i64 coef = pick(-cmax, cmax);
      if (coef == 0) continue;
      a.e += coef * aff::v(vars[j]);
      a.lo += coef * (coef > 0 ? vmin[j] : vmax[j]);
      a.hi += coef * (coef > 0 ? vmax[j] : vmin[j]);
    }
    const i64 ncoef = pick(0, n_coef_max);
    if (ncoef > 0) {
      a.e += ncoef * aff::v("N");
      a.lo += ncoef * 1;
      a.hi += ncoef * kFuzzMaxN;
    }
    const i64 c = pick(c_lo, c_hi);
    a.e += aff::c(c);
    a.lo += c;
    a.hi += c;
    return a;
  };

  for (int k = 0; k < depth; ++k) {
    const std::string var = "t" + std::to_string(k);
    Iv lo, wd;
    const bool tiled_elem = cls == FuzzClass::Tiled && (k % 2) == 1;
    if (tiled_elem) {
      // Element loop of a tile pair: [B*ii, B*ii + B).
      const i64 B = pick(2, 4);
      lo.e = B * aff::v(vars.back());
      lo.lo = B * vmin.back();
      lo.hi = B * vmax.back();
      wd.e = aff::c(B);
      wd.lo = wd.hi = B;
    } else {
      switch (cls) {
        case FuzzClass::Triangular:
          // Chain on the previous iterator with unit coefficients, the
          // paper's triangular/tetrahedral shape family.
          if (k > 0 && pick(0, 9) < 8) {
            const size_t j = vars.size() - 1;
            const i64 c = pick(-1, 1);
            lo.e = aff::v(vars[j]) + aff::c(c);
            lo.lo = vmin[j] + c;
            lo.hi = vmax[j] + c;
            if (pick(0, 1)) {
              // Shared upper bound N + c' (the simplex family, whose
              // level-equation degree grows with every chained level —
              // quartic at depth 4): width = N + c' - lower, with the
              // fix-up below keeping it pointwise positive.
              const i64 cu = pick(0, 2);
              wd.e = aff::v("N") + aff::c(cu) - lo.e;
              wd.lo = 1 + cu - lo.hi;
              wd.hi = kFuzzMaxN + cu - lo.lo;
            } else {
              wd = rand_aff(1, 1, 0, 4, 1);
            }
          } else {
            lo = rand_aff(0, 0, 0, 2, 0);
            wd = rand_aff(1, 1, 0, 4, 1);
          }
          break;
        case FuzzClass::Tiled:  // block loop of a pair
          lo = rand_aff(0, 0, 0, 1, 0);
          wd = rand_aff(0, 0, 2, 4, pick(0, 1) ? 1 : 0);
          break;
        case FuzzClass::Skewed:
          lo = rand_aff(3, 2, -2, 2, 1);
          wd = rand_aff(2, 1, 0, 4, 1);
          break;
        case FuzzClass::Degenerate:
          lo = rand_aff(2, 1, 0, 2, 1);
          wd = single_point ? rand_aff(0, 0, 1, 1, 0) : rand_aff(1, 1, 0, 2, 1);
          break;
      }
    }
    if (k == 0 && shift > 0) {
      lo.e += aff::v("S");
      lo.lo += shift;
      lo.hi += shift;
    }
    if (k == empty_level) {
      wd = Iv{};  // pointwise-empty range: the whole domain is empty
    } else if (!tiled_elem) {
      // Pointwise validity: raise the width's constant so its interval
      // minimum is >= 1 over the whole box (single_point pins it to 1).
      // A fix-up that would materialize a large literal constant (the
      // width referenced a shift-scale outer variable negatively) is
      // replaced by a small constant width instead: literal constants
      // c make the *symbolic* ranking carry c^depth-scale coefficients,
      // which must stay inside exact int64 — offsets that big belong on
      // the S parameter, where bind-time folding demotes gracefully.
      if (single_point) wd = Iv{aff::c(1), 1, 1};
      if (wd.lo < 1) {
        const i64 fix = 1 - wd.lo;
        if (fix > 100) {
          const i64 cap = pick(1, 3);
          wd = Iv{aff::c(cap), cap, cap};
        } else {
          wd.e += aff::c(fix);
          wd.lo += fix;
          wd.hi += fix;
        }
      }
      // Keep full-domain sweeps affordable.
      if (prod * static_cast<double>(wd.hi) > 3000.0) {
        const i64 cap = pick(1, 2);
        wd = Iv{aff::c(cap), cap, cap};
      }
    }
    prod *= static_cast<double>(std::max<i64>(wd.hi, 1));
    n.loop(var, lo.e, lo.e + wd.e);
    vars.push_back(var);
    vmin.push_back(lo.lo);
    vmax.push_back(lo.hi + wd.hi - 1);
  }

  fc.nest = n;
  return fc;
}

/// The parameter values a generated nest is bound at: a small sweep of
/// N values the generator guaranteed valid, occasionally degenerate
/// (N = 1) first so empty/single-point rows surface.
inline std::vector<i64> fuzz_bind_values(const FuzzNest& fc) {
  if (fc.expect_empty) return {2};  // one rejected bind is enough
  std::mt19937_64 rng(fc.seed ^ 0xb1bdb1bdULL);
  std::vector<i64> out{1, 2 + static_cast<i64>(rng() % (kFuzzMaxN - 1))};
  if (out[1] != kFuzzMaxN) out.push_back(kFuzzMaxN);
  return out;
}

// ---------------------------------------------------------------------------
// Scheme-differential harness (tests/runtime/executor_fuzz_test.cpp).
//
// Every execution scheme must visit exactly the original nest's
// iteration multiset — the fundamental safety property of the
// transformation, checked here as (a) the visit count, (b) an
// order-insensitive checksum (a commutative sum of per-tuple mixes, so
// any thread interleaving accumulates the same value), and, on domains
// small enough to afford it, (c) the exact tuple multiset.  The
// reference is the sequential odometer walk — recover(1) plus
// increment(), the executable ground truth every recovery engine is
// already differentially fuzzed against.

/// Order-sensitive mix of one index tuple (splitmix64 per slot, chained
/// so (1, 2) and (2, 1) mix differently).  The codegen round trip
/// re-implements this exact function in emitted C — keep them in sync.
inline u64 tuple_mix(std::span<const i64> idx) {
  u64 h = 0x243f6a8885a308d3ULL ^ (0x9e3779b97f4a7c15ULL * idx.size());
  for (const i64 v : idx) {
    u64 x = static_cast<u64>(v) + 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    h = (h ^ x) * 0x100000001b3ULL;
  }
  return h;
}

/// What one executor run visited, in order-insensitive form.
struct DomainObservation {
  i64 visits = 0;
  u64 checksum = 0;  ///< sum of tuple_mix over all visits (mod 2^64)
  bool track_tuples = false;
  std::map<std::vector<i64>, i64> tuples;  ///< multiset, when tracked
};

/// Sequential odometer reference for a bound domain.  Domains up to
/// `multiset_cap` iterations also record the exact tuple multiset so a
/// divergence names the first missing/duplicated tuple instead of just
/// a checksum mismatch.
inline DomainObservation odometer_reference(const CollapsedEval& cn,
                                            i64 multiset_cap = 4000) {
  DomainObservation ref;
  const i64 total = cn.trip_count();
  ref.track_tuples = total <= multiset_cap;
  const size_t d = static_cast<size_t>(cn.depth());
  i64 idx[kMaxDepth];
  cn.recover(1, {idx, d});
  for (i64 pc = 1; pc <= total; ++pc) {
    const std::span<const i64> t(idx, d);
    ++ref.visits;
    ref.checksum += tuple_mix(t);
    if (ref.track_tuples) ++ref.tuples[std::vector<i64>(t.begin(), t.end())];
    if (pc < total) cn.increment({idx, d});
  }
  return ref;
}

/// Thread-safe visit collector handed to the scheme under test.
class SchemeCollector {
 public:
  explicit SchemeCollector(bool track_tuples) { obs_.track_tuples = track_tuples; }

  void visit(std::span<const i64> idx) {
    const u64 h = tuple_mix(idx);
    std::lock_guard<std::mutex> lock(mu_);
    ++obs_.visits;
    obs_.checksum += h;
    if (obs_.track_tuples) ++obs_.tuples[std::vector<i64>(idx.begin(), idx.end())];
  }

  /// Compare against the reference; the failure message names the first
  /// divergent tuple when the multiset was tracked.
  ::testing::AssertionResult compare(const DomainObservation& ref) const {
    if (obs_.visits == ref.visits && obs_.checksum == ref.checksum &&
        (!ref.track_tuples || obs_.tuples == ref.tuples))
      return ::testing::AssertionSuccess();
    auto out = ::testing::AssertionFailure();
    out << "visited " << obs_.visits << " of " << ref.visits
        << " iterations, checksum " << obs_.checksum << " vs " << ref.checksum;
    if (ref.track_tuples) {
      for (const auto& [t, n] : ref.tuples) {
        auto it = obs_.tuples.find(t);
        const i64 got = it == obs_.tuples.end() ? 0 : it->second;
        if (got != n) {
          out << "; first divergent tuple (";
          for (size_t q = 0; q < t.size(); ++q) out << (q ? "," : "") << t[q];
          out << ") visited " << got << "x instead of " << n << "x";
          break;
        }
      }
      for (const auto& [t, n] : obs_.tuples) {
        if (!ref.tuples.count(t)) {
          out << "; visited tuple outside the domain (";
          for (size_t q = 0; q < t.size(); ++q) out << (q ? "," : "") << t[q];
          out << ") " << n << "x";
          break;
        }
      }
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  DomainObservation obs_;
};

/// Run one scheme through the differential check: `run` receives a
/// thread-safe `void(std::span<const i64>)` visitor, executes the
/// scheme with it as the body (adapting segment/block/lane body shapes
/// as needed), and the visited multiset/checksum is compared against
/// the odometer reference.  Usage:
///   EXPECT_TRUE(run_scheme_differential(cn, ref, [&](auto&& visit) {
///     collapsed_for_chunked(cn, chunk, visit, {threads});
///   })) << repro << " scheme=chunked";
template <class RunScheme>
::testing::AssertionResult run_scheme_differential(const CollapsedEval& cn,
                                                   const DomainObservation& ref,
                                                   RunScheme&& run) {
  SchemeCollector col(ref.track_tuples);
  run([&col](std::span<const i64> idx) { col.visit(idx); });
  (void)cn;
  return col.compare(ref);
}

/// Adapt the row-segment body contract (outer prefix + innermost range
/// [j_begin, j_end)) to a whole-tuple visitor.  `visit` is captured by
/// reference and must outlive the returned closure.
template <class Visit>
auto segment_adapter(const CollapsedEval& cn, Visit& visit) {
  return [&cn, &visit](std::span<const i64> prefix, i64 j_begin, i64 j_end) {
    i64 t[kMaxDepth];
    std::copy(prefix.begin(), prefix.end(), t);
    const size_t d = static_cast<size_t>(cn.depth());
    for (i64 j = j_begin; j < j_end; ++j) {
      t[d - 1] = j;
      visit(std::span<const i64>(t, d));
    }
  };
}

/// Adapt the SoA lane-block body contract (lanes, cols[k][lane]) to a
/// whole-tuple visitor.  Same lifetime contract as segment_adapter.
template <class Visit>
auto block_adapter(const CollapsedEval& cn, Visit& visit) {
  return [&cn, &visit](int lanes, const i64* const* cols) {
    const size_t d = static_cast<size_t>(cn.depth());
    i64 t[kMaxDepth];
    for (int l = 0; l < lanes; ++l) {
      for (size_t k = 0; k < d; ++k) t[k] = cols[k][static_cast<size_t>(l)];
      visit(std::span<const i64>(t, d));
    }
  };
}

}  // namespace nrc::testutil
