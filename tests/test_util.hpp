#pragma once
// Shared helpers for the nrcollapse test suite: the menagerie of nest
// shapes the property tests sweep over.

#include <string>
#include <vector>

#include "nrcollapse.hpp"

namespace nrc::testutil {

struct ShapeCase {
  std::string name;
  NestSpec nest;
};

/// Paper Fig. 1 (outer two loops): strict upper triangle.
inline NestSpec triangular_strict() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::v("i") + 1, aff::v("N"));
  return n;
}

/// Inclusive triangle (covariance shape).
inline NestSpec triangular_inclusive() {
  NestSpec n;
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::v("i"), aff::v("N"));
  return n;
}

/// Lower triangle, j <= i.
inline NestSpec triangular_lower() {
  NestSpec n;
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::c(0), aff::v("i") + 1);
  return n;
}

/// Paper Fig. 6: tetrahedral 3-deep nest (cubic level equation).
inline NestSpec tetrahedral_fig6() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::c(0), aff::v("i") + 1)
      .loop("k", aff::v("j"), aff::v("i") + 1);
  return n;
}

/// Rectangular (constant bounds) — the case OpenMP already handles.
inline NestSpec rectangular() {
  NestSpec n;
  n.param("N").param("M")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("M"));
  return n;
}

/// Rhomboidal (parallelogram): shifted constant-width rows.
inline NestSpec rhomboidal() {
  NestSpec n;
  n.param("N").param("M")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("i") + aff::v("M"));
  return n;
}

/// Trapezoidal: rows grow with the outer index.
inline NestSpec trapezoidal() {
  NestSpec n;
  n.param("N").param("M")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("M") + aff::v("i"));
  return n;
}

/// Trapezoidal with skewed lower bound and 2x growth.
inline NestSpec trapezoidal_skewed() {
  NestSpec n;
  n.param("T").param("N")
      .loop("i", aff::c(0), aff::v("T"))
      .loop("j", aff::v("i"), aff::v("N") + 2 * aff::v("i"));
  return n;
}

/// 3-deep: triangle over a rectangle (mixed).
inline NestSpec tri_rect_3d() {
  NestSpec n;
  n.param("N").param("M")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"))
      .loop("k", aff::c(0), aff::v("M"));
  return n;
}

/// 3-deep full tetrahedron 0 <= i <= j <= k < N.
inline NestSpec tetrahedral_ordered() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"))
      .loop("k", aff::v("j"), aff::v("N"));
  return n;
}

/// 3-deep with a bound depending on two outer iterators (paper §IV-B
/// mentions for(k=0;k<i+j;k++); shifted so ranges are never empty).
inline NestSpec sum_bound_3d() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("N"))
      .loop("k", aff::c(0), aff::v("i") + aff::v("j") + 1);
  return n;
}

/// 4-deep simplex: the deepest dependency chain whose level equation
/// still has degree 4 (the paper's closed-form limit).
inline NestSpec simplex_4d() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"))
      .loop("k", aff::v("j"), aff::v("N"))
      .loop("l", aff::v("k"), aff::v("N"));
  return n;
}

/// 5-deep simplex: level-0 equation has degree 5 — beyond the paper's
/// closed-form limit; exercised via search fallback.
inline NestSpec simplex_5d() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"))
      .loop("k", aff::v("j"), aff::v("N"))
      .loop("l", aff::v("k"), aff::v("N"))
      .loop("m", aff::v("l"), aff::v("N"));
  return n;
}

/// Non-zero constant lower bounds plus parameter offsets.
inline NestSpec shifted_bounds() {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(3), aff::v("N") + 3)
      .loop("j", aff::v("i") - 2, aff::v("N") + aff::v("i"));
  return n;
}

/// All shapes that satisfy the model for the given uniform parameter
/// value, with every level degree <= 4 (closed-form eligible).
inline std::vector<ShapeCase> closed_form_shapes() {
  return {
      {"triangular_strict", triangular_strict()},
      {"triangular_inclusive", triangular_inclusive()},
      {"triangular_lower", triangular_lower()},
      {"tetrahedral_fig6", tetrahedral_fig6()},
      {"rectangular", rectangular()},
      {"rhomboidal", rhomboidal()},
      {"trapezoidal", trapezoidal()},
      {"trapezoidal_skewed", trapezoidal_skewed()},
      {"tri_rect_3d", tri_rect_3d()},
      {"tetrahedral_ordered", tetrahedral_ordered()},
      {"sum_bound_3d", sum_bound_3d()},
      {"simplex_4d", simplex_4d()},
      {"shifted_bounds", shifted_bounds()},
  };
}

/// Uniform parameter map for a nest.
inline ParamMap uniform_params(const NestSpec& nest, i64 v) {
  ParamMap p;
  for (const auto& name : nest.params()) p[name] = v;
  return p;
}

}  // namespace nrc::testutil
