// Cross-variant validation of the evaluation kernels at a small scale:
// every scheduling variant of every kernel must produce the same output
// (the paper: "outputs of collapsed and non-collapsed programs have been
// compared to ensure the correctness of the collapsed loops").
#include <gtest/gtest.h>

#include "kernels/data.hpp"
#include "kernels/registry.hpp"
#include "polyhedral/domain.hpp"

namespace nrc {
namespace {

constexpr double kTestScale = 0.08;  // tiny sizes: correctness only

class KernelVariants : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelVariants, AllVariantsMatchSerialChecksum) {
  auto kernel = make_kernel(GetParam());
  kernel->prepare(kTestScale);

  kernel->run(Variant::SerialOriginal, 1, 0);
  const double expect = kernel->checksum();
  ASSERT_NE(expect, 0.0) << "degenerate kernel output";

  for (Variant v : {Variant::SerialCollapsedSim, Variant::SerialCollapsedSimScalar,
                    Variant::OuterStatic, Variant::OuterDynamic,
                    Variant::CollapsedStatic, Variant::CollapsedStaticBlock,
                    Variant::CollapsedDynamic}) {
    kernel->run(v, 4, 12);
    EXPECT_TRUE(nearly_equal(kernel->checksum(), expect))
        << variant_name(v) << ": " << kernel->checksum() << " vs " << expect;
  }
}

TEST_P(KernelVariants, MetadataIsConsistent) {
  auto kernel = make_kernel(GetParam());
  EXPECT_EQ(kernel->info().name, GetParam());
  kernel->prepare(kTestScale);
  EXPECT_GT(kernel->collapsed_iterations(), 0);
  const NestSpec spec = kernel->collapsed_spec();
  EXPECT_EQ(spec.depth(), kernel->info().collapse_depth);
  EXPECT_GE(kernel->info().nest_depth, kernel->info().collapse_depth);
  // The reported collapsed iteration count must match the domain.
  EXPECT_EQ(kernel->collapsed_iterations(),
            count_domain_brute(spec, kernel->bound_params()));
}

std::string name_of(const ::testing::TestParamInfo<std::string>& info) {
  return info.param;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelVariants,
                         ::testing::ValuesIn(kernel_names()), name_of);

TEST(KernelRegistry, NamesAndFactories) {
  EXPECT_EQ(kernel_names().size(), 11u);  // 9 Polybench-shaped + utma + ltmp
  EXPECT_THROW(make_kernel("nope"), SpecError);
  EXPECT_EQ(make_all_kernels().size(), kernel_names().size());
}

TEST(KernelRegistry, VariantNames) {
  EXPECT_STREQ(variant_name(Variant::SerialOriginal), "serial-original");
  EXPECT_STREQ(variant_name(Variant::CollapsedStatic), "collapsed-static");
  EXPECT_STREQ(variant_name(Variant::OuterDynamic), "outer-dynamic");
}

TEST(KernelData, MatrixBasics) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  m.fill_lcg(7);
  const double c1 = m.checksum();
  EXPECT_NE(c1, 0.0);
  Matrix m2(3, 4);
  m2.fill_lcg(7);
  EXPECT_EQ(m2.checksum(), c1);  // deterministic init
  m.fill_zero();
  EXPECT_EQ(m.checksum(), 0.0);
  m[1][2] = 5.0;
  EXPECT_EQ(m.row(1)[2], 5.0);
}

TEST(KernelData, NearlyEqual) {
  EXPECT_TRUE(nearly_equal(1.0, 1.0));
  EXPECT_TRUE(nearly_equal(1e9, 1e9 * (1 + 1e-12)));
  EXPECT_FALSE(nearly_equal(1.0, 1.001));
}

}  // namespace
}  // namespace nrc
