#include "math/faulhaber.hpp"

#include <gtest/gtest.h>

namespace nrc {
namespace {

/// Brute-force sum_{t=0}^{x} t^p (0^0 = 1).
i128 brute_powersum(i64 x, unsigned p) {
  i128 acc = 0;
  for (i64 t = 0; t <= x; ++t) {
    i128 v = 1;
    for (unsigned e = 0; e < p; ++e) v *= t;
    acc += v;
  }
  return acc;
}

TEST(Faulhaber, KnownClosedForms) {
  // F_0(x) = x + 1
  EXPECT_EQ(faulhaber(0), Polynomial::variable("x") + Polynomial(1));
  // F_1(x) = x(x+1)/2
  EXPECT_EQ(faulhaber(1),
            (Polynomial::variable("x").pow(2) + Polynomial::variable("x")) / Rational(2));
  // F_2(x) = x(x+1)(2x+1)/6
  const Polynomial x = Polynomial::variable("x");
  EXPECT_EQ(faulhaber(2), (x * (x + Polynomial(1)) * (x * Rational(2) + Polynomial(1))) /
                              Rational(6));
  // F_3(x) = (x(x+1)/2)^2
  EXPECT_EQ(faulhaber(3), faulhaber(1) * faulhaber(1));
}

TEST(Faulhaber, MatchesBruteForceUpToDegree8) {
  for (unsigned p = 0; p <= 8; ++p) {
    const Polynomial& F = faulhaber(p);
    EXPECT_EQ(F.degree_in("x"), static_cast<int>(p) + 1);
    for (i64 x = -1; x <= 12; ++x) {
      EXPECT_EQ(F.eval_i128({{"x", x}}), brute_powersum(x, p))
          << "p=" << p << " x=" << x;
    }
  }
}

TEST(Faulhaber, EmptySumConventionAtMinusOne) {
  for (unsigned p = 0; p <= 6; ++p)
    EXPECT_EQ(faulhaber(p).eval_i128({{"x", -1}}), 0) << "p=" << p;
}

TEST(SumOverRange, ConstantSummand) {
  // sum_{t=lo}^{hi} 1 == hi - lo + 1
  const Polynomial one(1);
  const Polynomial lo = Polynomial::variable("a");
  const Polynomial hi = Polynomial::variable("b");
  const Polynomial s = sum_over_range(one, "t", lo, hi);
  EXPECT_EQ(s, hi - lo + Polynomial(1));
}

TEST(SumOverRange, LinearSummand) {
  // sum_{t=0}^{n-1} t = n(n-1)/2
  const Polynomial t = Polynomial::variable("t");
  const Polynomial n = Polynomial::variable("n");
  const Polynomial s = sum_over_range(t, "t", Polynomial(0), n - Polynomial(1));
  EXPECT_EQ(s, (n.pow(2) - n) / Rational(2));
}

TEST(SumOverRange, MatchesBruteForceOnPolynomialSummand) {
  // P(t, y) = t^2 y - 3t + y, summed for t in [lo, hi].
  const Polynomial t = Polynomial::variable("t");
  const Polynomial y = Polynomial::variable("y");
  const Polynomial P = t.pow(2) * y - t * Rational(3) + y;
  const Polynomial S = sum_over_range(P, "t", Polynomial::variable("lo"),
                                      Polynomial::variable("hi"));
  for (i64 lo = -3; lo <= 3; ++lo) {
    for (i64 hi = lo - 1; hi <= 6; ++hi) {  // hi == lo-1: empty sum
      for (i64 yv = -2; yv <= 2; ++yv) {
        i128 brute = 0;
        for (i64 tv = lo; tv <= hi; ++tv)
          brute += P.eval_i128({{"t", tv}, {"y", yv}});
        EXPECT_EQ(S.eval_i128({{"lo", lo}, {"hi", hi}, {"y", yv}}), brute)
            << "lo=" << lo << " hi=" << hi << " y=" << yv;
      }
    }
  }
}

TEST(SumOverRange, NestedSummationIsTriangularCount) {
  // sum_{i=0}^{N-1} sum_{j=i+1}^{N-1} 1 = N(N-1)/2
  const Polynomial one(1);
  const Polynomial i = Polynomial::variable("i");
  const Polynomial N = Polynomial::variable("N");
  const Polynomial inner =
      sum_over_range(one, "j", i + Polynomial(1), N - Polynomial(1));
  const Polynomial outer = sum_over_range(inner, "i", Polynomial(0), N - Polynomial(1));
  EXPECT_EQ(outer, (N.pow(2) - N) / Rational(2));
}

}  // namespace
}  // namespace nrc
