#include "math/polynomial.hpp"

#include <gtest/gtest.h>

namespace nrc {
namespace {

Polynomial X() { return Polynomial::variable("x"); }
Polynomial Y() { return Polynomial::variable("y"); }

TEST(Monomial, Basics) {
  const Monomial one;
  EXPECT_TRUE(one.is_constant());
  EXPECT_EQ(one.str(), "1");
  const Monomial x2 = Monomial::var("x", 2);
  EXPECT_EQ(x2.exponent("x"), 2);
  EXPECT_EQ(x2.exponent("y"), 0);
  EXPECT_EQ(x2.total_degree(), 2);
  EXPECT_EQ((x2 * Monomial::var("y")).str(), "x^2*y");
  EXPECT_EQ((x2 * Monomial::var("x")).exponent("x"), 3);
  EXPECT_EQ(x2.without("x"), one);
  EXPECT_THROW(Monomial::var("x", 0), SpecError);
}

TEST(Monomial, GradedOrdering) {
  EXPECT_LT(Monomial(), Monomial::var("x"));
  EXPECT_LT(Monomial::var("x"), Monomial::var("x", 2));
  EXPECT_LT(Monomial::var("z"), Monomial::var("x") * Monomial::var("y"));
}

TEST(Polynomial, ConstructionAndZero) {
  EXPECT_TRUE(Polynomial().is_zero());
  EXPECT_TRUE(Polynomial(Rational(0)).is_zero());
  EXPECT_TRUE(Polynomial(5).is_constant());
  EXPECT_EQ(Polynomial(5).constant_term(), Rational(5));
  EXPECT_FALSE(X().is_constant());
}

TEST(Polynomial, Arithmetic) {
  const Polynomial p = X() * X() + X() * Rational(2) + Polynomial(1);  // (x+1)^2
  const Polynomial q = (X() + Polynomial(1)) * (X() + Polynomial(1));
  EXPECT_EQ(p, q);
  EXPECT_TRUE((p - q).is_zero());
  EXPECT_EQ((X() + Y()) * (X() - Y()), X() * X() - Y() * Y());
}

TEST(Polynomial, CancellationRemovesTerms) {
  const Polynomial p = X() - X();
  EXPECT_TRUE(p.is_zero());
  EXPECT_TRUE(p.terms().empty());
}

TEST(Polynomial, Pow) {
  EXPECT_EQ(X().pow(0), Polynomial(1));
  EXPECT_EQ(X().pow(3), X() * X() * X());
  const Polynomial xp1 = X() + Polynomial(1);
  EXPECT_EQ(xp1.pow(3), xp1 * xp1 * xp1);
}

TEST(Polynomial, Degrees) {
  const Polynomial p = X().pow(3) * Y() + Y().pow(2);
  EXPECT_EQ(p.degree_in("x"), 3);
  EXPECT_EQ(p.degree_in("y"), 2);
  EXPECT_EQ(p.degree_in("z"), 0);
  EXPECT_EQ(p.total_degree(), 4);
}

TEST(Polynomial, Variables) {
  const Polynomial p = X() * Y() + Polynomial(3);
  const auto vs = p.variables();
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_TRUE(vs.count("x"));
  EXPECT_TRUE(vs.count("y"));
}

TEST(Polynomial, CoefficientsIn) {
  // p = 2x^2 y + 3x - y + 5, in x: [ -y+5, 3, 2y ]
  const Polynomial p =
      X().pow(2) * Y() * Rational(2) + X() * Rational(3) - Y() + Polynomial(5);
  const auto cs = p.coefficients_in("x");
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0], Polynomial(5) - Y());
  EXPECT_EQ(cs[1], Polynomial(3));
  EXPECT_EQ(cs[2], Y() * Rational(2));
}

TEST(Polynomial, Substitute) {
  // (x+1)^2 with x := y-1  ->  y^2
  const Polynomial p = (X() + Polynomial(1)).pow(2);
  EXPECT_EQ(p.substitute("x", Y() - Polynomial(1)), Y().pow(2));
  // Substituting an absent variable is a no-op.
  EXPECT_EQ(p.substitute("z", Y()), p);
}

TEST(Polynomial, SubstituteChainsThroughNestedRefs) {
  // p = x*y; x := y+1  ->  y^2 + y
  const Polynomial p = X() * Y();
  EXPECT_EQ(p.substitute("x", Y() + Polynomial(1)), Y().pow(2) + Y());
}

TEST(Polynomial, EvalRational) {
  const Polynomial p = X().pow(2) * Rational(1, 2) + X() * Rational(3, 2);
  EXPECT_EQ(p.eval({{"x", Rational(3)}}), Rational(9));
  EXPECT_THROW(p.eval({}), SpecError);
}

TEST(Polynomial, EvalI128Exact) {
  // Integer-valued with denominator 2: x(x+1)/2.
  const Polynomial p = (X().pow(2) + X()) / Rational(2);
  EXPECT_EQ(p.eval_i128({{"x", 10}}), 55);
  EXPECT_EQ(p.eval_i128({{"x", -3}}), 3);
  EXPECT_EQ(p.eval_i128({{"x", 1'000'000}}), i128{500000500000});
}

TEST(Polynomial, EvalI128LargeValues) {
  const Polynomial p = X().pow(3);
  EXPECT_EQ(p.eval_i128({{"x", 2'000'000}}),
            checked_mul(checked_mul(i128{2'000'000}, 2'000'000), 2'000'000));
}

TEST(Polynomial, DenominatorLcm) {
  const Polynomial p = X() * Rational(1, 2) + Y() * Rational(1, 3);
  EXPECT_EQ(p.denominator_lcm(), 6);
  EXPECT_EQ(Polynomial().denominator_lcm(), 1);
}

TEST(Polynomial, Str) {
  EXPECT_EQ(Polynomial().str(), "0");
  EXPECT_EQ((X() - Polynomial(1)).str(), "x - 1");
  EXPECT_EQ((-X()).str(), "-x");
}

TEST(CompiledPoly, MatchesMapEval) {
  const Polynomial p =
      X().pow(2) * Y() * Rational(3, 2) - X() * Rational(2) + Polynomial(Rational(7, 2));
  const std::vector<std::string> order = {"x", "y"};
  const CompiledPoly cp(p, order);
  for (i64 x = -5; x <= 5; ++x) {
    for (i64 y = -5; y <= 5; ++y) {
      // 3/2 x^2 y - 2x + 7/2 is not always integral; scale by 2 to test
      // via a doubled polynomial instead.
      const Polynomial p2 = p * Rational(2);
      const CompiledPoly cp2(p2, order);
      const std::vector<i64> pt{x, y};
      EXPECT_EQ(cp2.eval_i128(pt), p2.eval_i128({{"x", x}, {"y", y}}));
    }
  }
  (void)cp;
}

TEST(CompiledPoly, MissingVariableThrows) {
  const std::vector<std::string> order = {"x"};
  EXPECT_THROW(CompiledPoly(Y(), order), SpecError);
}

TEST(CompiledPoly, EvalLongDouble) {
  const Polynomial p = X().pow(2) - Polynomial(Rational(1, 4));
  const std::vector<std::string> order = {"x"};
  const CompiledPoly cp(p, order);
  const long double pt[] = {3.0L};
  EXPECT_NEAR(static_cast<double>(cp.eval_ld({pt, 1})), 8.75, 1e-12);
}

}  // namespace
}  // namespace nrc
