#include "math/roots.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace nrc {
namespace {

constexpr long double kTol = 1e-9L;

/// |p(root)| for the polynomial given by low-to-high coefficients.
long double residual(std::span<const cld> coeffs, const cld& x) {
  cld acc = 0.0L;
  for (size_t e = coeffs.size(); e-- > 0;) acc = acc * x + coeffs[e];
  return std::abs(acc);
}

/// Every expected root must be matched by some finite branch value.
void expect_roots_covered(std::span<const cld> coeffs, std::span<const cld> expected) {
  const auto got = all_root_branches(coeffs);
  for (const cld& want : expected) {
    bool found = false;
    for (const cld& g : got) {
      if (std::isfinite(g.real()) && std::isfinite(g.imag()) &&
          std::abs(g - want) < 1e-6L * (std::abs(want) + 1.0L)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "missing root " << static_cast<double>(want.real()) << "+"
                       << static_cast<double>(want.imag()) << "i";
  }
}

TEST(Roots, BranchCounts) {
  EXPECT_EQ(root_branch_count(1), 1);
  EXPECT_EQ(root_branch_count(2), 2);
  EXPECT_EQ(root_branch_count(3), 3);
  EXPECT_EQ(root_branch_count(4), 12);
  EXPECT_THROW(root_branch_count(5), DegreeError);
  EXPECT_THROW(root_branch_count(0), DegreeError);
}

TEST(Roots, Linear) {
  // 2x - 6 = 0
  const cld coeffs[] = {-6.0L, 2.0L};
  EXPECT_LT(std::abs(root_branch_value(coeffs, 0) - cld{3.0L}), kTol);
}

TEST(Roots, QuadraticRealRoots) {
  // (x-2)(x+5) = x^2 + 3x - 10
  const cld coeffs[] = {-10.0L, 3.0L, 1.0L};
  expect_roots_covered(coeffs, std::vector<cld>{{2.0L}, {-5.0L}});
  for (int b = 0; b < 2; ++b)
    EXPECT_LT(residual(coeffs, root_branch_value(coeffs, b)), kTol);
}

TEST(Roots, QuadraticComplexRoots) {
  // x^2 + 1 = 0 -> +-i
  const cld coeffs[] = {1.0L, 0.0L, 1.0L};
  expect_roots_covered(coeffs, std::vector<cld>{{0.0L, 1.0L}, {0.0L, -1.0L}});
}

TEST(Roots, CubicThreeRealRoots) {
  // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
  const cld coeffs[] = {-6.0L, 11.0L, -6.0L, 1.0L};
  expect_roots_covered(coeffs, std::vector<cld>{{1.0L}, {2.0L}, {3.0L}});
  for (int b = 0; b < 3; ++b)
    EXPECT_LT(residual(coeffs, root_branch_value(coeffs, b)), 1e-7L);
}

TEST(Roots, CubicOneRealTwoComplex) {
  // (x-2)(x^2+x+1) = x^3 - x^2 - x - 2
  const cld coeffs[] = {-2.0L, -1.0L, -1.0L, 1.0L};
  expect_roots_covered(
      coeffs, std::vector<cld>{{2.0L},
                               {-0.5L, std::sqrt(3.0L) / 2.0L},
                               {-0.5L, -std::sqrt(3.0L) / 2.0L}});
}

TEST(Roots, CubicTripleRootDegeneratesGracefully) {
  // (x-1)^3 = x^3 - 3x^2 + 3x - 1: p = q = 0 after depressing.
  const cld coeffs[] = {-1.0L, 3.0L, -3.0L, 1.0L};
  for (int b = 0; b < 3; ++b) {
    const cld r = root_branch_value(coeffs, b);
    EXPECT_TRUE(std::isfinite(r.real()));
    EXPECT_LT(std::abs(r - cld{1.0L}), 1e-6L);
  }
}

TEST(Roots, QuarticFourRealRoots) {
  // (x-1)(x-2)(x-3)(x-4) = x^4 -10x^3 +35x^2 -50x +24
  const cld coeffs[] = {24.0L, -50.0L, 35.0L, -10.0L, 1.0L};
  expect_roots_covered(coeffs, std::vector<cld>{{1.0L}, {2.0L}, {3.0L}, {4.0L}});
}

TEST(Roots, QuarticComplexPairs) {
  // (x^2+1)(x^2+4) = x^4 + 5x^2 + 4 — biquadratic: q == 0 makes w = 0 a
  // root of the resolvent cubic, and the resolvent branch that lands on
  // it yields an invalid factorization (finite but wrong values).  This
  // is exactly why the runtime never trusts a branch value without the
  // exact integer correction.  The contract tested here is weaker: all
  // four true roots are still covered by the *valid* resolvent branches.
  const cld coeffs[] = {4.0L, 0.0L, 5.0L, 0.0L, 1.0L};
  expect_roots_covered(coeffs,
                       std::vector<cld>{{0.0L, 1.0L},
                                        {0.0L, -1.0L},
                                        {0.0L, 2.0L},
                                        {0.0L, -2.0L}});
}

TEST(Roots, QuarticGenericMixedRoots) {
  // (x-1)(x+2)(x^2+x+3) = x^4 + 2x^3 + 2x^2 + x - 6 (checked numerically)
  const cld coeffs[] = {-6.0L, 1.0L, 2.0L, 2.0L, 1.0L};
  expect_roots_covered(coeffs,
                       std::vector<cld>{{1.0L},
                                        {-2.0L},
                                        {-0.5L, std::sqrt(11.0L) / 2.0L},
                                        {-0.5L, -std::sqrt(11.0L) / 2.0L}});
}

TEST(Roots, Fig6PaperCubicComplexAtPc1) {
  // The paper §IV-C root for r(i,0,0) - pc with pc = 1:
  // sqrt(243 pc^2 - 486 pc + 242) = sqrt(-1): the discriminant is
  // negative yet the full formula evaluates to the real value 0.
  // Equation: (i^3 + 3 i^2 + 2 i + 6)/6 - pc = 0, i.e. for pc=1:
  // i^3 + 3 i^2 + 2 i = 0 with roots {0, -1, -2}.
  const cld coeffs[] = {6.0L - 6.0L * 1.0L, 2.0L, 3.0L, 1.0L};
  const auto roots = all_root_branches(coeffs);
  bool found_zero = false;
  for (const cld& r : roots) {
    if (std::abs(r) < 1e-9L) found_zero = true;
    EXPECT_LT(residual(coeffs, r), 1e-7L);
  }
  EXPECT_TRUE(found_zero);
}

TEST(Roots, LeadingCoefficientScalesOut) {
  // 5(x-3)(x+7) vs (x-3)(x+7): same roots.
  const cld a[] = {-21.0L, 4.0L, 1.0L};
  const cld b[] = {-105.0L, 20.0L, 5.0L};
  for (int br = 0; br < 2; ++br)
    EXPECT_LT(std::abs(root_branch_value(a, br) - root_branch_value(b, br)), 1e-9L);
}

TEST(Roots, InvalidBranchThrows) {
  const cld coeffs[] = {1.0L, 1.0L};
  EXPECT_THROW(root_branch_value(coeffs, 1), SolveError);
  EXPECT_THROW(root_branch_value(coeffs, -1), SolveError);
}

TEST(Roots, PrincipalCbrt) {
  EXPECT_LT(std::abs(principal_cbrt(cld{8.0L}) - cld{2.0L}), kTol);
  EXPECT_LT(std::abs(principal_cbrt(cld{0.0L})), kTol);
  // Principal branch of cbrt(-8) is 2*e^{i pi/3}, not -2.
  const cld r = principal_cbrt(cld{-8.0L});
  EXPECT_NEAR(static_cast<double>(r.real()), 1.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(r.imag()), std::sqrt(3.0), 1e-9);
}

}  // namespace
}  // namespace nrc
