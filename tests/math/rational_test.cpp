#include "math/rational.hpp"

#include <gtest/gtest.h>

namespace nrc {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(-1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(0, -7).den(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), SpecError);
}

TEST(Rational, Arithmetic) {
  const Rational half(1, 2);
  const Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), SpecError);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(7, 7), Rational(1));
  EXPECT_LE(Rational(2, 6), Rational(1, 3));
}

TEST(Rational, IntegerConversions) {
  EXPECT_TRUE(Rational(6, 3).is_integer());
  EXPECT_EQ(Rational(6, 3).as_integer(), 2);
  EXPECT_FALSE(Rational(1, 2).is_integer());
  EXPECT_THROW(Rational(1, 2).as_integer(), SolveError);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-3, 2).str(), "-3/2");
}

TEST(Rational, LargeIntermediatesStayExact) {
  // (a/b) * (b/a) == 1 with large a, b.
  const Rational a(1'000'000'007, 998'244'353);
  const Rational b(998'244'353, 1'000'000'007);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, OverflowIsDetected) {
  const Rational big(INT64_MAX, 1);
  EXPECT_THROW(big * big, OverflowError);
  EXPECT_THROW(big + big, OverflowError);
}

TEST(Rational, FromI128Reduces) {
  const i128 n = static_cast<i128>(1) << 100;
  const i128 d = static_cast<i128>(1) << 98;
  EXPECT_EQ(Rational::from_i128(n, d), Rational(4));
}

TEST(Rational, LcmHelper) {
  EXPECT_EQ(lcm_i64(4, 6), 12);
  EXPECT_EQ(lcm_i64(1, 1), 1);
  EXPECT_EQ(lcm_i64(7, 5), 35);
}

TEST(Int128, ToString) {
  EXPECT_EQ(to_string_i128(0), "0");
  EXPECT_EQ(to_string_i128(-1), "-1");
  i128 v = 1;
  for (int i = 0; i < 20; ++i) v *= 10;
  EXPECT_EQ(to_string_i128(v), "100000000000000000000");
  EXPECT_EQ(to_string_i128(-v), "-100000000000000000000");
}

TEST(Int128, CheckedOps) {
  const i128 max = ~static_cast<unsigned __int128>(0) >> 1;
  EXPECT_THROW(checked_add(max, 1), OverflowError);
  EXPECT_THROW(checked_mul(max, 2), OverflowError);
  EXPECT_EQ(checked_add(i128{2}, i128{3}), 5);
  EXPECT_EQ(checked_mul(i128{-4}, i128{5}), -20);
}

TEST(Int128, IpowChecked) {
  EXPECT_EQ(ipow_checked(2, 0), 1);
  EXPECT_EQ(ipow_checked(2, 10), 1024);
  EXPECT_EQ(ipow_checked(-3, 3), -27);
  EXPECT_THROW(ipow_checked(10, 40), OverflowError);
}

TEST(Int128, FloorDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(-6, 3), -2);
}

TEST(Int128, ExactDiv) {
  EXPECT_EQ(exact_div(12, 4), 3);
  EXPECT_THROW(exact_div(13, 4), SolveError);
  EXPECT_THROW(exact_div(1, 0), SolveError);
}

TEST(Int128, NarrowI64) {
  EXPECT_EQ(narrow_i64(i128{42}), 42);
  EXPECT_THROW(narrow_i64(static_cast<i128>(INT64_MAX) + 1), OverflowError);
  EXPECT_THROW(narrow_i64(static_cast<i128>(INT64_MIN) - 1), OverflowError);
}

}  // namespace
}  // namespace nrc
