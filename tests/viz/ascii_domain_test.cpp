#include "viz/ascii_domain.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "../test_util.hpp"

namespace nrc {
namespace {

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

/// Glyph counts over the picture body (skipping the header line, whose
/// coordinate text also contains digits).
std::map<char, int> body_glyph_counts(const std::string& pic) {
  const auto ls = lines_of(pic);
  std::map<char, int> counts;
  for (size_t r = 1; r < ls.size(); ++r)
    for (char ch : ls[r])
      if (ch != '.') ++counts[ch];
  return counts;
}

TEST(AsciiDomain, TriangleOuterStaticShowsSkew) {
  viz::RenderOptions opt;
  opt.threads = 5;
  const std::string pic = viz::render_domain(testutil::triangular_strict(), {{"N", 11}},
                                             viz::Assignment::OuterStatic, opt);
  const auto ls = lines_of(pic);
  ASSERT_EQ(ls.size(), 1u + 10u);  // header + rows i = 0..9
  // First row (i = 0): thread 0 owns the full j range 1..10 (the grid
  // starts at jmin = 1, so there is no leading dot).
  EXPECT_EQ(ls[1], "0000000000");
  // Last row: single surviving cell, owned by the last thread.
  EXPECT_EQ(ls[10].back(), '4');
  const auto counts = body_glyph_counts(pic);
  // Thread 0 (rows 0..1) owns far more than thread 4 (rows 8..9).
  EXPECT_GT(counts.at('0'), 4 * counts.at('4'));
}

TEST(AsciiDomain, TriangleCollapsedIsBalanced) {
  viz::RenderOptions opt;
  opt.threads = 5;
  const std::string pic = viz::render_domain(testutil::triangular_strict(), {{"N", 11}},
                                             viz::Assignment::CollapsedStatic, opt);
  // 55 points over 5 threads: each owns exactly 11 cells.
  const auto counts = body_glyph_counts(pic);
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [g, n] : counts) EXPECT_EQ(n, 11) << g;
}

TEST(AsciiDomain, RhomboidRowsAreShifted) {
  const std::string pic = viz::render_domain(testutil::rhomboidal(), {{"N", 6}, {"M", 4}},
                                             viz::Assignment::OuterStatic, {});
  const auto ls = lines_of(pic);
  // Row i starts at column i: leading dots grow by one per row.
  for (size_t r = 1; r < ls.size(); ++r) {
    EXPECT_EQ(ls[r].find_first_not_of('.'), r - 1) << pic;
  }
}

TEST(AsciiDomain, ErrorsAndEdges) {
  EXPECT_THROW(viz::render_domain(testutil::tetrahedral_fig6(), {{"N", 5}},
                                  viz::Assignment::OuterStatic, {}),
               SpecError);  // depth 3
  viz::RenderOptions tiny;
  tiny.max_cells = 4;
  EXPECT_THROW(viz::render_domain(testutil::triangular_strict(), {{"N", 12}},
                                  viz::Assignment::OuterStatic, tiny),
               SpecError);
  viz::RenderOptions bad;
  bad.threads = 0;
  EXPECT_THROW(viz::render_domain(testutil::triangular_strict(), {{"N", 6}},
                                  viz::Assignment::OuterStatic, bad),
               SpecError);
  const std::string empty = viz::render_domain(testutil::triangular_strict(), {{"N", 1}},
                                               viz::Assignment::OuterStatic, {});
  EXPECT_EQ(empty, "(empty domain)\n");
}

TEST(AsciiDomain, ManyThreadsUseLetterGlyphs) {
  viz::RenderOptions opt;
  opt.threads = 12;
  const std::string pic = viz::render_domain(testutil::triangular_inclusive(), {{"N", 16}},
                                             viz::Assignment::CollapsedStatic, opt);
  EXPECT_NE(pic.find('a'), std::string::npos);  // thread 10
  EXPECT_NE(pic.find('b'), std::string::npos);  // thread 11
}

}  // namespace
}  // namespace nrc
