#include "symbolic/compile.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nrc {
namespace {

const std::vector<std::string> kOrder = {"x", "y"};

cld eval(const Expr& e, i64 x, i64 y) {
  const CompiledExpr ce(e, kOrder);
  const i64 pt[] = {x, y};
  return ce.eval({pt, 2});
}

TEST(CompiledExpr, ConstantsAndPolys) {
  EXPECT_NEAR(static_cast<double>(eval(Expr::constant(Rational(3, 4)), 0, 0).real()), 0.75,
              1e-15);
  const Expr p = Expr::poly(Polynomial::variable("x") * Polynomial::variable("y") +
                            Polynomial(2));
  EXPECT_NEAR(static_cast<double>(eval(p, 3, 5).real()), 17.0, 1e-12);
}

TEST(CompiledExpr, Arithmetic) {
  const Expr x = Expr::variable("x");
  const Expr y = Expr::variable("y");
  EXPECT_NEAR(static_cast<double>(eval(x + y * y, 2, 3).real()), 11.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(eval(x - y, 2, 3).real()), -1.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(eval(x / y, 1, 4).real()), 0.25, 1e-12);
  EXPECT_NEAR(static_cast<double>(eval(-x, 2, 0).real()), -2.0, 1e-12);
}

TEST(CompiledExpr, SqrtOfNegativeIsComplex) {
  const Expr e = Expr::variable("x").sqrt();
  const cld v = eval(e, -4, 0);
  EXPECT_NEAR(static_cast<double>(v.real()), 0.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(v.imag()), 2.0, 1e-12);
}

TEST(CompiledExpr, CbrtPrincipalBranch) {
  const Expr e = Expr::variable("x").cbrt();
  EXPECT_NEAR(static_cast<double>(eval(e, 27, 0).real()), 3.0, 1e-12);
  const cld m = eval(e, -8, 0);
  EXPECT_NEAR(static_cast<double>(m.real()), 1.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(m.imag()), std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(static_cast<double>(eval(e, 0, 0).real()), 0.0, 1e-12);
}

TEST(CompiledExpr, CisValue) {
  const Expr w = Expr::cis(1, 3);  // e^{2 pi i/3}
  const cld v = eval(w, 0, 0);
  EXPECT_NEAR(static_cast<double>(v.real()), -0.5, 1e-12);
  EXPECT_NEAR(static_cast<double>(v.imag()), std::sqrt(3.0) / 2.0, 1e-12);
}

TEST(CompiledExpr, SharedSubtreeEvaluatedOnce) {
  // (x+y) * (x+y): the shared node must appear once in the program.
  const Expr s = Expr::variable("x") + Expr::variable("y");
  const CompiledExpr ce(s * s, kOrder);
  // 3 instructions: poly(x), poly(y) fold? x and y are separate poly
  // leaves; s = add; mul: 4 instructions total (x, y, add, mul).
  EXPECT_EQ(ce.size(), 4u);
}

TEST(CompiledExpr, EmptyEvalThrows) {
  CompiledExpr ce;
  const i64 pt[] = {0};
  EXPECT_THROW(ce.eval({pt, 1}), SolveError);
  EXPECT_TRUE(ce.empty());
}

TEST(CompiledExpr, DivisionByZeroGivesNonFinite) {
  const Expr e = Expr::constant(1) / Expr::variable("x");
  const cld v = eval(e, 0, 0);
  EXPECT_FALSE(std::isfinite(v.real()) && std::isfinite(v.imag()));
}

}  // namespace
}  // namespace nrc
