#include "symbolic/expr.hpp"

#include <gtest/gtest.h>

namespace nrc {
namespace {

TEST(Expr, EmptyAndDereference) {
  Expr e;
  EXPECT_TRUE(e.empty());
  EXPECT_THROW(e.node(), SolveError);
  EXPECT_FALSE(Expr::constant(1).empty());
}

TEST(Expr, ConstantFolding) {
  const Expr a = Expr::constant(Rational(1, 2));
  const Expr b = Expr::constant(Rational(1, 3));
  EXPECT_EQ((a + b).node().op, ExprOp::Const);
  EXPECT_EQ((a + b).node().cval, Rational(5, 6));
  EXPECT_EQ((a * b).node().cval, Rational(1, 6));
  EXPECT_EQ((a - b).node().cval, Rational(1, 6));
  EXPECT_EQ((a / b).node().cval, Rational(3, 2));
  EXPECT_EQ((-a).node().cval, Rational(-1, 2));
}

TEST(Expr, IdentityFolding) {
  const Expr x = Expr::variable("x");
  EXPECT_EQ((x + Expr::constant(0)).ptr().get(), x.ptr().get());
  EXPECT_EQ((Expr::constant(0) + x).ptr().get(), x.ptr().get());
  EXPECT_EQ((x * Expr::constant(1)).ptr().get(), x.ptr().get());
  EXPECT_EQ((x * Expr::constant(0)).node().cval, Rational(0));
  EXPECT_EQ((x / Expr::constant(1)).ptr().get(), x.ptr().get());
}

TEST(Expr, DivisionByConstZeroThrows) {
  EXPECT_THROW(Expr::variable("x") / Expr::constant(0), SolveError);
}

TEST(Expr, CisNormalization) {
  // cis(0, n) folds to 1; cis(k, n) stores k mod n.
  EXPECT_EQ(Expr::cis(0, 3).node().op, ExprOp::Const);
  EXPECT_EQ(Expr::cis(3, 3).node().op, ExprOp::Const);
  const Expr w = Expr::cis(4, 3);
  EXPECT_EQ(w.node().op, ExprOp::Cis);
  EXPECT_EQ(w.node().cis_k, 1);
  EXPECT_THROW(Expr::cis(1, 0), SolveError);
}

TEST(Expr, PolyLeafConstantFoldsToConst) {
  const Expr c = Expr::poly(Polynomial(7));
  EXPECT_EQ(c.node().op, ExprOp::Const);
  EXPECT_EQ(c.node().cval, Rational(7));
  const Expr p = Expr::poly(Polynomial::variable("n") + Polynomial(1));
  EXPECT_EQ(p.node().op, ExprOp::Poly);
}

TEST(Expr, TreeStructureAndStr) {
  const Expr x = Expr::variable("x");
  const Expr e = (x * x - Expr::constant(4)).sqrt() / Expr::constant(2);
  EXPECT_EQ(e.node().op, ExprOp::Div);
  EXPECT_NE(e.str().find("sqrt"), std::string::npos);
}

TEST(Expr, SharedSubtrees) {
  const Expr x = Expr::variable("x");
  const Expr s = x + x;
  EXPECT_EQ(s.node().a.get(), s.node().b.get());
}

}  // namespace
}  // namespace nrc
