#include "symbolic/print_c.hpp"

#include <gtest/gtest.h>

namespace nrc {
namespace {

Polynomial var(const char* n) { return Polynomial::variable(n); }

TEST(PrintPolyC, IntegerArithmeticMode) {
  // (N^2 - N)/2 prints with integer division over the common denominator.
  const Polynomial p = (var("N").pow(2) - var("N")) / Rational(2);
  EXPECT_EQ(print_poly_c(p, {}, /*integer_arith=*/true), "((N*N - N) / 2)");
}

TEST(PrintPolyC, CastsInFloatMode) {
  const Polynomial p = var("i") * Rational(2) + Polynomial(1);
  CPrintOptions opt;
  opt.var_cast = "(double)";
  EXPECT_EQ(print_poly_c(p, opt), "(2*(double)i + 1)");
}

TEST(PrintPolyC, ZeroAndConstants) {
  EXPECT_EQ(print_poly_c(Polynomial(), {}), "0");
  EXPECT_EQ(print_poly_c(Polynomial(7), {}), "(7)");
  EXPECT_EQ(print_poly_c(Polynomial(-7), {}), "(-7)");
}

TEST(PrintPolyC, NegativeLeadingTerm) {
  const Polynomial p = -var("i").pow(2) + var("j") * Rational(2);
  CPrintOptions opt;
  opt.var_cast = "";
  const std::string s = print_poly_c(p, opt);
  // Graded order puts i^2 (higher) first with a leading minus.
  EXPECT_EQ(s, "(-i*i + 2*j)");
}

TEST(PrintPolyC, Renaming) {
  CPrintOptions opt;
  opt.var_cast = "";
  opt.rename = {{"i", "ii"}};
  EXPECT_EQ(print_poly_c(var("i"), opt), "(ii)");
}

TEST(PrintC, SqrtRealVsComplexMode) {
  const Expr e = Expr::poly(var("x")).sqrt();
  CPrintOptions real_mode;
  real_mode.complex_mode = false;
  CPrintOptions cmplx;
  cmplx.complex_mode = true;
  EXPECT_EQ(print_c(e, real_mode), "sqrt(((double)x))");
  EXPECT_EQ(print_c(e, cmplx), "csqrt(((double)x))");
}

TEST(PrintC, CbrtModes) {
  const Expr e = Expr::poly(var("x")).cbrt();
  CPrintOptions cmplx;
  cmplx.complex_mode = true;
  EXPECT_EQ(print_c(e, cmplx), "cpow(((double)x), 1.0/3.0)");
  EXPECT_EQ(print_c(e, {}), "cbrt(((double)x))");
}

TEST(PrintC, RationalConstant) {
  EXPECT_EQ(print_c(Expr::constant(Rational(1, 3))), "(1.0/3.0)");
  EXPECT_EQ(print_c(Expr::constant(5)), "5");
  EXPECT_EQ(print_c(Expr::constant(-5)), "(-5)");
}

TEST(PrintC, CisPrintsAsCexp) {
  const std::string s = print_c(Expr::cis(1, 3), {});
  EXPECT_NE(s.find("cexp"), std::string::npos);
  EXPECT_NE(s.find("M_PI"), std::string::npos);
}

TEST(PrintC, BinaryOpsParenthesized) {
  const Expr x = Expr::poly(var("x"));
  const Expr y = Expr::poly(var("y"));
  CPrintOptions opt;
  opt.var_cast = "";
  EXPECT_EQ(print_c(x + y, opt), "((x) + (y))");
  EXPECT_EQ(print_c(x / y, opt), "((x) / (y))");
  EXPECT_EQ(print_c(-x, opt), "(-(x))");
}

TEST(PrintC, PaperStyleQuadraticFormulaCompilesTextually) {
  // The correlation i-recovery should mention sqrt and pc with casts,
  // mirroring Fig. 3's flavor.
  const Polynomial N = var("N");
  const Polynomial pc = var("pc");
  // discriminant-ish poly: 4N^2 - 4N - 8pc + 9
  const Polynomial disc =
      N.pow(2) * Rational(4) - N * Rational(4) - pc * Rational(8) + Polynomial(9);
  const Expr root =
      (-(Expr::poly(disc).sqrt() - Expr::poly(N * Rational(2) - Polynomial(1)))) /
      Expr::constant(2);
  const std::string s = print_c(root, {});
  EXPECT_NE(s.find("sqrt"), std::string::npos);
  EXPECT_NE(s.find("(double)pc"), std::string::npos);
}

}  // namespace
}  // namespace nrc
