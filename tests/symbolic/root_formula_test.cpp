// Property test: the symbolic root formulas (used for code generation
// and runtime recovery) agree branch-by-branch with the direct numeric
// solver on generic polynomials of every supported degree.
#include "symbolic/root_formula.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/roots.hpp"
#include "symbolic/compile.hpp"

namespace nrc {
namespace {

/// Evaluate the symbolic branch for integer coefficients a0..adeg.
cld eval_symbolic(const std::vector<i64>& coeffs, int branch) {
  std::vector<Expr> ce;
  ce.reserve(coeffs.size());
  for (i64 c : coeffs) ce.push_back(Expr::constant(c));
  const Expr root = root_branch_expr(std::span<const Expr>(ce), branch);
  const std::vector<std::string> order = {};
  const CompiledExpr compiled(root, order);
  return compiled.eval({});
}

cld eval_numeric(const std::vector<i64>& coeffs, int branch) {
  std::vector<cld> cc;
  cc.reserve(coeffs.size());
  for (i64 c : coeffs) cc.emplace_back(static_cast<long double>(c), 0.0L);
  return root_branch_value(cc, branch);
}

void expect_branches_agree(const std::vector<i64>& coeffs) {
  const int degree = static_cast<int>(coeffs.size()) - 1;
  for (int b = 0; b < root_branch_count(degree); ++b) {
    const cld s = eval_symbolic(coeffs, b);
    const cld n = eval_numeric(coeffs, b);
    const bool s_fin = std::isfinite(s.real()) && std::isfinite(s.imag());
    const bool n_fin = std::isfinite(n.real()) && std::isfinite(n.imag());
    // The symbolic formula is the generic one (the paper's); the numeric
    // solver additionally special-cases the Cardano degeneration u == 0
    // (depressed p == 0).  The symbolic side may therefore be non-finite
    // where the numeric oracle stays finite — the runtime falls back to
    // exact search there.  When both are finite they must agree.
    if (!s_fin) continue;
    EXPECT_TRUE(n_fin) << "degree " << degree << " branch " << b;
    if (n_fin) {
      EXPECT_LT(std::abs(s - n), 1e-6L * (std::abs(n) + 1.0L))
          << "degree " << degree << " branch " << b;
    }
  }
}

TEST(RootFormula, LinearAgreesWithNumeric) {
  expect_branches_agree({-6, 2});
  expect_branches_agree({5, -3});
  expect_branches_agree({0, 7});
}

TEST(RootFormula, QuadraticAgreesWithNumeric) {
  expect_branches_agree({-10, 3, 1});
  expect_branches_agree({1, 0, 1});    // complex pair
  expect_branches_agree({4, -4, 1});   // double root
  expect_branches_agree({-21, 4, 3});  // non-monic
}

TEST(RootFormula, CubicAgreesWithNumeric) {
  expect_branches_agree({-6, 11, -6, 1});  // three real
  expect_branches_agree({-2, -1, -1, 1});  // one real, two complex
  expect_branches_agree({1, 1, 1, 2});     // non-monic generic
  expect_branches_agree({0, 2, 3, 1});     // paper Fig. 6 shape at pc=1
}

TEST(RootFormula, QuarticAgreesWithNumeric) {
  expect_branches_agree({24, -50, 35, -10, 1});  // four real
  expect_branches_agree({-6, 1, 2, 2, 1});       // mixed
  expect_branches_agree({1, 2, 3, 4, 5});        // generic non-monic
}

TEST(RootFormula, SweepSmallIntegerPolynomials) {
  // All cubics with small coefficients and non-zero lead.
  for (i64 a3 : {1, 2}) {
    for (i64 a2 = -2; a2 <= 2; ++a2) {
      for (i64 a1 = -2; a1 <= 2; ++a1) {
        for (i64 a0 = -2; a0 <= 2; ++a0) {
          expect_branches_agree({a0, a1, a2, a3});
        }
      }
    }
  }
}

TEST(RootFormula, PolynomialCoefficientOverload) {
  // Coefficients given as polynomials in a parameter; evaluated at n = 4
  // the equation is x^2 - n = 0 -> branches +-2.
  std::vector<Polynomial> coeffs = {-Polynomial::variable("n"), Polynomial(0),
                                    Polynomial(1)};
  const Expr root0 = root_branch_expr(std::span<const Polynomial>(coeffs), 0);
  const std::vector<std::string> order = {"n"};
  const CompiledExpr ce(root0, order);
  const i64 pt[] = {4};
  EXPECT_NEAR(static_cast<double>(ce.eval({pt, 1}).real()), 2.0, 1e-9);
}

TEST(RootFormula, RejectsBadDegreesAndBranches) {
  std::vector<Expr> lin = {Expr::constant(1), Expr::constant(1)};
  EXPECT_THROW(root_branch_expr(std::span<const Expr>(lin), 1), SolveError);
  std::vector<Expr> deg5(6, Expr::constant(1));
  EXPECT_THROW(root_branch_expr(std::span<const Expr>(deg5), 0), DegreeError);
}

}  // namespace
}  // namespace nrc
