// RecoveryProgram lowering: parameter constant-folding, CSE, real/complex
// instruction selection, and numeric agreement with the generic
// CompiledExpr interpreter.
#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.hpp"
#include "core/unrank_closed.hpp"
#include "symbolic/compile.hpp"
#include "symbolic/recovery_program.hpp"
#include "symbolic/root_formula.hpp"

namespace nrc {
namespace {

/// Level-0 root expression and slot order for a shape.
struct RootCase {
  Expr root;
  std::vector<std::string> slots;
};

RootCase level0_root(const NestSpec& nest) {
  const RankingSystem rs = build_ranking_system(nest);
  auto lf = build_level_formulas(rs, 4);
  std::vector<std::string> slots = nest.loop_vars();
  for (const auto& p : nest.params()) slots.push_back(p);
  slots.push_back(kPcVar);
  select_convenient_branches(lf, rs, default_calibration(nest), slots);
  EXPECT_GE(lf[0].branch, 0);
  return {lf[0].root, slots};
}

TEST(RecoveryProgram, QuadraticRootLowersToRealOnlyBytecode) {
  const RootCase rc = level0_root(testutil::triangular_strict());
  const RecoveryProgram prog(rc.root, rc.slots, {{"N", 50}});
  ASSERT_TRUE(prog.compiled());
  EXPECT_FALSE(prog.uses_complex()) << prog.str();

  const CompiledExpr interp(rc.root, rc.slots);
  for (i64 pc : {i64{1}, i64{2}, i64{100}, i64{777}, i64{1225}}) {
    const i64 pt[] = {0, 0, 50, pc};
    const RootValue v = prog.eval({pt, 4});
    const cld z = interp.eval({pt, 4});
    ASSERT_TRUE(v.finite());
    EXPECT_NEAR(static_cast<double>(v.re), static_cast<double>(z.real()), 1e-9) << pc;
    EXPECT_NEAR(static_cast<double>(v.im), 0.0, 1e-12);
  }
}

TEST(RecoveryProgram, CubicRootUsesComplexOnlyWhereNeeded) {
  const RootCase rc = level0_root(testutil::tetrahedral_fig6());
  const RecoveryProgram prog(rc.root, rc.slots, {{"N", 30}});
  ASSERT_TRUE(prog.compiled());
  // Cardano branches genuinely need complex arithmetic (the discriminant
  // sqrt goes imaginary on real-rooted cubics)...
  EXPECT_TRUE(prog.uses_complex());
  // ...but the polynomial leaves still lower to real instructions.
  EXPECT_NE(prog.str().find("rpoly"), std::string::npos) << prog.str();

  const CompiledExpr interp(rc.root, rc.slots);
  std::vector<i64> pt(rc.slots.size(), 0);
  pt[rc.slots.size() - 2] = 30;  // N
  for (i64 pc = 1; pc <= 400; pc += 13) {
    pt[rc.slots.size() - 1] = pc;
    const RootValue v = prog.eval(pt);
    const cld z = interp.eval(pt);
    ASSERT_EQ(v.finite(), std::isfinite(z.real()) && std::isfinite(z.imag()));
    if (v.finite())
      EXPECT_NEAR(static_cast<double>(v.re), static_cast<double>(z.real()), 1e-6) << pc;
  }
}

TEST(RecoveryProgram, ParametersAreConstantFolded) {
  // N*N - pc with N bound: the parameter polynomial folds; only pc and a
  // constant survive.  (N*N + N) - (N*N) also folds the whole subtraction.
  const Expr n = Expr::variable("N");
  const Expr pc = Expr::variable("pc");
  const std::vector<std::string> slots = {"i", "N", "pc"};

  const RecoveryProgram folded(n * n - pc, slots, {{"N", 9}});
  ASSERT_TRUE(folded.compiled());
  const i64 pt[] = {0, 9, 5};
  EXPECT_EQ(static_cast<double>(folded.eval({pt, 3}).re), 76.0);

  // A fully parameter-constant expression lowers to a single instruction.
  const RecoveryProgram constant((n * n + n) / n, slots, {{"N", 9}});
  ASSERT_TRUE(constant.compiled());
  EXPECT_EQ(constant.size(), 1u);
  EXPECT_EQ(static_cast<double>(constant.eval({pt, 3}).re), 10.0);
}

TEST(RecoveryProgram, SharedSubtreesKeepSingleRegisters) {
  const Expr x = Expr::variable("i");
  const Expr s = x + Expr::constant(1);
  const Expr e = (s * s) / (s + s);  // s must lower exactly once
  const std::vector<std::string> slots = {"i", "pc"};
  const RecoveryProgram prog(e, slots, {});
  ASSERT_TRUE(prog.compiled());
  // poly(i), const 1, s, s*s, s+s, div — s lowers once; a lowering
  // without CSE re-emits the shared subtree and lands at 9.
  EXPECT_EQ(prog.size(), 6u) << prog.str();
}

TEST(RecoveryProgram, NegativeSqrtGoesNaNInRealMode) {
  const Expr pc = Expr::variable("pc");
  const std::vector<std::string> slots = {"pc"};
  const RecoveryProgram prog((Expr::constant(4) - pc).sqrt(), slots, {});
  ASSERT_TRUE(prog.compiled());
  EXPECT_FALSE(prog.uses_complex());
  const i64 ok[] = {3};
  EXPECT_NEAR(static_cast<double>(prog.eval({ok, 1}).re), 1.0, 1e-12);
  const i64 bad[] = {13};
  EXPECT_FALSE(prog.eval({bad, 1}).finite());  // guard turns this into search
}

TEST(RecoveryProgram, UnboundVariableFailsLoweringGracefully) {
  const Expr e = Expr::variable("mystery") + Expr::constant(1);
  const std::vector<std::string> slots = {"i", "pc"};
  const RecoveryProgram prog(e, slots, {});
  EXPECT_FALSE(prog.compiled());
}

TEST(RecoveryProgram, EmptyExpression) {
  const RecoveryProgram prog;
  EXPECT_FALSE(prog.compiled());
  const i64 pt[] = {0};
  EXPECT_THROW(prog.eval({pt, 1}), SolveError);
}

}  // namespace
}  // namespace nrc
