// Unit tests for the static nest analyzer: every stable diagnostic code
// (NRC-W001..W004, NRC-I001/I002, NRC-E001) is pinned on a hand-built
// trigger nest, the certificate verdicts are cross-checked against
// bind(), and the consumer wiring (PlanCache::set_reject_errors,
// EmitOptions::certificate) is exercised end to end.  NRC-W005 is a
// serve-layer attachment and is pinned in tests/pipeline/serve_test.cpp.
#include "analysis/nest_analyzer.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "codegen/c_emitter.hpp"
#include "pipeline/plan.hpp"
#include "pipeline/plan_cache.hpp"

namespace nrc {
namespace {

// N*M just over 2^62: binds fine (fits i64) but fails the partition
// headroom certificate — the only error-severity finding possible on a
// *bindable* plan, which is exactly what set_reject_errors gates on.
constexpr i64 kHeadroomN = 2'200'000'000;

// floor(sqrt(INT64_MAX)): the largest N with N*N still inside i64.
constexpr i64 kSqrtI64Max = 3'037'000'499;

NestSpec rect_nn() {
  NestSpec n;
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::c(0), aff::v("N"));
  return n;
}

const Diagnostic* find_diag(const NestCertificate& cert, const std::string& code) {
  const Diagnostic* d = cert.find(code);
  EXPECT_NE(d, nullptr) << "expected " << code << " in:\n" << cert.str();
  return d;
}

TEST(NestAnalyzer, CleanTriangularCertifiesEverything) {
  const NestSpec nest = testutil::triangular_strict();
  const ParamMap params{{"N", 1000}};
  const NestCertificate cert = analyze_nest(nest, params);
  EXPECT_TRUE(cert.bind_ok);
  EXPECT_TRUE(cert.trip_i64_safe);
  EXPECT_TRUE(cert.exact_f64);
  EXPECT_TRUE(cert.emit_i64_safe);
  EXPECT_FALSE(cert.total_saturated);
  EXPECT_TRUE(cert.diagnostics.empty()) << cert.str();
  EXPECT_EQ(cert.max_severity(), LintSeverity::Info);
  EXPECT_EQ(cert.total_trip, collapse(nest).bind(params).trip_count());
  ASSERT_EQ(cert.levels.size(), 2u);
  EXPECT_TRUE(cert.levels[0].f64_exact);
  EXPECT_TRUE(cert.levels[1].f64_exact);
  EXPECT_NE(cert.str().find("lint: clean"), std::string::npos);
}

// NRC-W001, structural flavour: the extent product saturates i64, so
// the verdict lands even though bind() refuses the domain.
TEST(NestAnalyzer, W001SaturatedTripCount) {
  const NestCertificate cert =
      analyze_nest(rect_nn(), {{"N", 4'000'000'000}});
  EXPECT_FALSE(cert.bind_ok);
  EXPECT_FALSE(cert.trip_i64_safe);
  EXPECT_TRUE(cert.total_saturated);
  const Diagnostic* w = find_diag(cert, "NRC-W001");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->severity, LintSeverity::Error);
  EXPECT_TRUE(cert.has("NRC-E001"));  // the bind refusal, as a diagnostic
  EXPECT_EQ(cert.max_severity(), LintSeverity::Error);
}

// NRC-W001, headroom flavour: total fits i64 but exceeds 2^62, so
// partition arithmetic (pc + chunk - 1) could overflow — error severity
// on a plan that binds.
TEST(NestAnalyzer, W001PartitionHeadroomIsErrorOnBindablePlan) {
  const NestCertificate cert = analyze_nest(rect_nn(), {{"N", kHeadroomN}});
  EXPECT_TRUE(cert.bind_ok);
  EXPECT_FALSE(cert.trip_i64_safe);
  EXPECT_FALSE(cert.total_saturated);
  EXPECT_EQ(cert.total_trip, kHeadroomN * kHeadroomN);
  const Diagnostic* w = find_diag(cert, "NRC-W001");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->severity, LintSeverity::Error);
  EXPECT_NE(w->message.find("headroom"), std::string::npos);
  EXPECT_FALSE(cert.has("NRC-E001"));
}

// Satellite: bind() itself now refuses an i64-overflowing total with a
// diagnostic-coded message instead of silently wrapping.  The boundary
// is exact: floor(sqrt(INT64_MAX)) binds, one more overflows.
TEST(NestAnalyzer, BindRefusesI64OverflowWithDiagnosticCode) {
  const Collapsed col = collapse(rect_nn());
  EXPECT_EQ(col.bind({{"N", kSqrtI64Max}}).trip_count(), kSqrtI64Max * kSqrtI64Max);
  try {
    col.bind({{"N", kSqrtI64Max + 1}});
    FAIL() << "bind() accepted an i64-overflowing trip count";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("NRC-W001"), std::string::npos) << e.what();
  }
}

// NRC-W002: a quadratic level whose f64-guard proof fails (intermediates
// can reach 2^53) is not certified exact; recovery stays correct via the
// integer reference guard, so this is warn, not error.
TEST(NestAnalyzer, W002GuardProofFailure) {
  const NestCertificate cert =
      analyze_nest(testutil::triangular_strict(), {{"N", 200'000'000}});
  EXPECT_TRUE(cert.bind_ok);
  EXPECT_TRUE(cert.trip_i64_safe);
  EXPECT_FALSE(cert.exact_f64);
  const Diagnostic* w = find_diag(cert, "NRC-W002");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->severity, LintSeverity::Warn);
  EXPECT_EQ(w->level, 0);  // the quadratic outer level
  EXPECT_EQ(cert.max_severity(), LintSeverity::Warn);
}

// NRC-W003: coefficient/Horner magnitudes past 2^62 need the __int128
// guard in emitted C.
TEST(NestAnalyzer, W003WideCoefficients) {
  const NestCertificate cert =
      analyze_nest(testutil::triangular_strict(), {{"N", 2'500'000'000}});
  EXPECT_TRUE(cert.bind_ok);
  const Diagnostic* w = find_diag(cert, "NRC-W003");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->severity, LintSeverity::Warn);
  EXPECT_FALSE(cert.emit_i64_safe);
}

TEST(NestAnalyzer, W004InfoSingletonLevel) {
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("i") + 1);
  const NestCertificate cert = analyze_nest(n, {{"N", 50}});
  EXPECT_TRUE(cert.bind_ok);
  const Diagnostic* d = find_diag(cert, "NRC-W004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::Info);
  EXPECT_EQ(d->level, 1);
  EXPECT_EQ(cert.total_trip, 50);
  EXPECT_EQ(cert.max_severity(), LintSeverity::Info);
}

TEST(NestAnalyzer, W004WarnPossiblyEmptyLevel) {
  NestSpec n;  // j in [0, i): empty at i == 0
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::c(0), aff::v("i"));
  const NestCertificate cert = analyze_nest(n, {{"N", 20}});
  const Diagnostic* d = find_diag(cert, "NRC-W004");
  ASSERT_NE(d, nullptr);
  EXPECT_GE(static_cast<int>(d->severity), static_cast<int>(LintSeverity::Warn));
  EXPECT_EQ(d->level, 1);
}

TEST(NestAnalyzer, W004ErrorAlwaysEmptyLevel) {
  NestSpec n;  // j in [5, 5): empty everywhere
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::c(5), aff::c(5));
  const NestCertificate cert = analyze_nest(n, {{"N", 20}});  // must not throw
  EXPECT_FALSE(cert.bind_ok);
  const Diagnostic* d = find_diag(cert, "NRC-W004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_TRUE(cert.has("NRC-E001"));
  EXPECT_EQ(cert.max_severity(), LintSeverity::Error);
}

// NRC-I001: with closed forms disabled every level pays a costly
// per-recovery solver — reported, never certified f64-exact.
TEST(NestAnalyzer, I001CostlySolverNote) {
  CollapseOptions opts;
  opts.build_closed_form = false;
  const NestCertificate cert =
      analyze_nest(testutil::triangular_strict(), {{"N", 100}}, opts);
  EXPECT_TRUE(cert.bind_ok);
  EXPECT_TRUE(cert.trip_i64_safe);
  EXPECT_FALSE(cert.exact_f64);
  const Diagnostic* d = find_diag(cert, "NRC-I001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::Info);
}

// NRC-I002: quartic levels can demote per point, so no f64-exact
// certificate exists for them by policy.
TEST(NestAnalyzer, I002QuarticDemotionNote) {
  const NestCertificate cert = analyze_nest(testutil::simplex_4d(), {{"N", 12}});
  EXPECT_TRUE(cert.bind_ok);
  EXPECT_FALSE(cert.exact_f64);
  const Diagnostic* d = find_diag(cert, "NRC-I002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::Info);
  EXPECT_EQ(d->level, 0);
  ASSERT_FALSE(cert.levels.empty());
  EXPECT_EQ(cert.levels[0].solver, LevelSolverKind::Quartic);
}

TEST(NestAnalyzer, E001UnboundParameter) {
  const NestCertificate cert = analyze_nest(testutil::triangular_strict(), {});
  EXPECT_FALSE(cert.bind_ok);
  const Diagnostic* d = find_diag(cert, "NRC-E001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_NE(d->message.find("'N'"), std::string::npos);
}

TEST(NestAnalyzer, PlanAnalyzeMatchesAnalyzeNest) {
  const NestSpec nest = testutil::tetrahedral_fig6();
  const ParamMap params{{"N", 40}};
  const auto plan = CollapsePlan::build(nest, params);
  const NestCertificate a = plan->analyze();
  const NestCertificate b = analyze_nest(nest, params);
  EXPECT_TRUE(a.bind_ok);
  EXPECT_EQ(a.total_trip, b.total_trip);
  EXPECT_EQ(a.trip_i64_safe, b.trip_i64_safe);
  EXPECT_EQ(a.exact_f64, b.exact_f64);
  EXPECT_EQ(a.emit_i64_safe, b.emit_i64_safe);
  EXPECT_EQ(a.str(), b.str());
}

TEST(NestAnalyzer, DescribeRendersLintBlock) {
  const auto plan = CollapsePlan::build(testutil::triangular_strict(), {{"N", 64}});
  const std::string d = plan->describe();
  EXPECT_NE(d.find("lint: clean"), std::string::npos) << d;
  EXPECT_NE(d.find("certificates: trip-i64 yes"), std::string::npos) << d;
}

TEST(NestAnalyzer, DiagnosticRendering) {
  const Diagnostic d{"NRC-W002", LintSeverity::Warn, 1, "msg", "how to fix"};
  EXPECT_EQ(d.str(), "warn NRC-W002 [level 1]: msg (hint: how to fix)");
  const Diagnostic whole{"NRC-E001", LintSeverity::Error, -1, "broke", ""};
  EXPECT_EQ(whole.str(), "error NRC-E001: broke");
}

// ------------------------------------------------- consumer wiring

TEST(NestAnalyzer, PlanCacheRejectErrors) {
  PlanCache cache(8, 2);
  EXPECT_FALSE(cache.reject_errors());
  cache.set_reject_errors(true);
  EXPECT_TRUE(cache.reject_errors());

  const NestSpec nest = rect_nn();
  try {
    cache.get(nest, {{"N", kHeadroomN}});
    FAIL() << "reject_errors cache served an error-certificate plan";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("rejected by the static analyzer"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("NRC-W001"), std::string::npos) << e.what();
  }
  // A failed build never stays cached; warn/info plans still flow.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_NE(cache.get(nest, {{"N", 100}}), nullptr);

  // Switching enforcement off serves the same domain again.
  cache.set_reject_errors(false);
  EXPECT_NE(cache.get(nest, {{"N", kHeadroomN}}), nullptr);
}

NestProgram rect_prog() {
  return parse_nest_program(R"(
name rect
params N
array double a[N]
loop i = 0 .. N
loop j = 0 .. N
body {
  a[i] += (double)j;
}
)");
}

TEST(NestAnalyzer, EmitterRefusesErrorCertificate) {
  const NestProgram prog = rect_prog();
  const Collapsed col = collapse(prog.collapsed_nest());
  const NestCertificate cert =
      analyze_nest(prog.collapsed_nest(), {{"N", kHeadroomN}});
  ASSERT_EQ(cert.max_severity(), LintSeverity::Error);

  EmitOptions opt;
  opt.certificate = &cert;
  EXPECT_THROW(emit_collapsed_function(prog, col, opt), SpecError);

  opt.refuse_on_error = false;
  const std::string src = emit_collapsed_function(prog, col, opt);
  EXPECT_NE(src.find("/* nrclint:"), std::string::npos) << src;
  EXPECT_NE(src.find("NRC-W001"), std::string::npos) << src;
}

TEST(NestAnalyzer, EmitterAnnotatesWarnCertificate) {
  const NestProgram prog = parse_nest_program(R"(
name tri
params N
array double a[N]
loop i = 0 .. N-1
loop j = i+1 .. N
body {
  a[i] += (double)j;
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  const NestCertificate cert =
      analyze_nest(prog.collapsed_nest(), {{"N", 200'000'000}});
  ASSERT_EQ(cert.max_severity(), LintSeverity::Warn) << cert.str();

  EmitOptions opt;
  opt.certificate = &cert;
  const std::string src = emit_collapsed_function(prog, col, opt);
  EXPECT_NE(src.find("/* nrclint:"), std::string::npos) << src;
  EXPECT_NE(src.find("NRC-W002"), std::string::npos) << src;
}

}  // namespace
}  // namespace nrc
