// End-to-end smoke test: the paper's motivating example (§II/§III).
#include <gtest/gtest.h>

#include "nrcollapse.hpp"

namespace nrc {
namespace {

NestSpec correlation_nest() {
  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::v("i") + 1, aff::v("N"));
  return nest;
}

TEST(Smoke, CorrelationRankingPolynomial) {
  const RankingSystem rs = build_ranking_system(correlation_nest());
  // r(i,j) = (2iN + 2j - i^2 - 3i) / 2   (paper §III)
  const Polynomial expect =
      (Polynomial::variable("i") * Polynomial::variable("N") * Rational(2) +
       Polynomial::variable("j") * Rational(2) -
       Polynomial::variable("i").pow(2) - Polynomial::variable("i") * Rational(3)) /
      Rational(2);
  EXPECT_EQ(rs.rank, expect) << rs.rank.str();
  // total = (N-1)N/2
  const Polynomial total =
      (Polynomial::variable("N").pow(2) - Polynomial::variable("N")) / Rational(2);
  EXPECT_EQ(rs.total, total) << rs.total.str();
}

TEST(Smoke, CorrelationRoundTrip) {
  const Collapsed col = collapse(correlation_nest());
  EXPECT_TRUE(col.fully_closed_form()) << col.describe();
  const auto rep = validate_collapsed(col, {{"N", 30}});
  EXPECT_TRUE(rep.ok) << rep.first_error;
  EXPECT_EQ(rep.points_checked, 29 * 30 / 2);
}

TEST(Smoke, Fig6TetrahedralRoundTrip) {
  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::c(0), aff::v("i") + 1)
      .loop("k", aff::v("j"), aff::v("i") + 1);
  const Collapsed col = collapse(nest);
  const auto rep = validate_collapsed(col, {{"N", 12}});
  EXPECT_TRUE(rep.ok) << rep.first_error << "\n" << col.describe();
  // total = (N^3 - N)/6 (paper §IV-C)
  std::map<std::string, i64> p{{"N", 12}};
  EXPECT_EQ(col.ranking().total.eval_i128(p), (12 * 12 * 12 - 12) / 6);
}

}  // namespace
}  // namespace nrc
