#include "runtime/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "../test_util.hpp"

namespace nrc {
namespace {

TEST(SimdBlocks, CoversDomainForVariousLaneCounts) {
  const NestSpec nest = testutil::triangular_strict();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 26}};
  const CollapsedEval cn = col.bind(p);
  const auto pts = domain_points(nest, p);

  for (int vlen : {1, 2, 4, 8, 13, 64}) {
    std::mutex mu;
    std::set<std::pair<i64, i64>> seen;
    i64 lanes_total = 0;
    collapsed_for_simd_blocks(
        cn, vlen,
        [&](int lanes, const i64* const* cols) {
          std::lock_guard<std::mutex> lock(mu);
          lanes_total += lanes;
          for (int l = 0; l < lanes; ++l) seen.emplace(cols[0][l], cols[1][l]);
        },
        4);
    EXPECT_EQ(lanes_total, cn.trip_count()) << "vlen=" << vlen;
    EXPECT_EQ(seen.size(), pts.size()) << "vlen=" << vlen;
  }
}

TEST(SimdBlocks, LanesWithinBlockAreConsecutive) {
  const NestSpec nest = testutil::triangular_lower();
  const Collapsed col = collapse(nest);
  const CollapsedEval cn = col.bind({{"N", 20}});
  collapsed_for_simd_blocks(
      cn, 8,
      [&](int lanes, const i64* const* cols) {
        for (int l = 1; l < lanes; ++l) {
          const i64 a[] = {cols[0][l - 1], cols[1][l - 1]};
          const i64 b[] = {cols[0][l], cols[1][l]};
          EXPECT_EQ(cn.rank({b, 2}), cn.rank({a, 2}) + 1);
        }
      },
      1);
}

TEST(SimdBlocks, BlockNeverExceedsVlen) {
  const NestSpec nest = testutil::triangular_strict();
  const Collapsed col = collapse(nest);
  const CollapsedEval cn = col.bind({{"N", 19}});
  collapsed_for_simd_blocks(
      cn, 4, [&](int lanes, const i64* const*) { EXPECT_LE(lanes, 4); }, 3);
}

TEST(SimdBlocks, RejectsBadVlen) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 8}});
  auto noop = [](int, const i64* const*) {};
  EXPECT_THROW(collapsed_for_simd_blocks(cn, 0, noop), SpecError);
  EXPECT_THROW(collapsed_for_simd_blocks(cn, kMaxSimdLanes + 1, noop), SpecError);
}

TEST(SimdAbi, FillHelpersCoverTails) {
  // Lengths around both lane widths (4 and 8) exercise the vector body
  // and every masked-tail remainder (1..7 mod 8) of both fills.
  for (i64 n : {i64{0}, i64{1}, i64{2}, i64{3}, i64{4}, i64{5}, i64{6}, i64{7},
                i64{8}, i64{9}, i64{11}, i64{13}, i64{15}, i64{16}, i64{17}}) {
    std::vector<i64> dst(static_cast<size_t>(n) + 8, -777);
    simd::fill_broadcast(dst.data(), n, 42);
    for (i64 i = 0; i < n; ++i) EXPECT_EQ(dst[static_cast<size_t>(i)], 42) << n;
    EXPECT_EQ(dst[static_cast<size_t>(n)], -777) << n;  // no overrun

    std::fill(dst.begin(), dst.end(), -777);
    simd::fill_iota(dst.data(), n, -2);
    for (i64 i = 0; i < n; ++i) EXPECT_EQ(dst[static_cast<size_t>(i)], -2 + i) << n;
    EXPECT_EQ(dst[static_cast<size_t>(n)], -777) << n;
  }
  const std::string abi = simd::abi_name();
  EXPECT_TRUE(abi == "avx512" || abi == "avx2" || abi == "scalar") << abi;
  const std::string run_abi = simd::runtime_abi();
  EXPECT_TRUE(run_abi == "avx512" || run_abi == "avx2" || run_abi == "scalar")
      << run_abi;
  // The preferred lane-group width follows the compiled leg.
  EXPECT_EQ(simd::kGroupLanes, abi == "avx512" ? 8 : 4);
}

TEST(SimdBlocksChunked, CoversDomainForVariousChunks) {
  const NestSpec nest = testutil::tetrahedral_fig6();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 9}};
  const CollapsedEval cn = col.bind(p);
  const size_t d = static_cast<size_t>(cn.depth());

  // Chunk sizes around trip_count()/4 exercise full 4-groups, partial
  // tail groups and the single-chunk degenerate case.
  for (i64 chunk : {i64{1}, i64{5}, i64{16}, i64{64}, cn.trip_count()}) {
    std::mutex mu;
    std::set<std::vector<i64>> seen;
    i64 lanes_total = 0;
    collapsed_for_simd_blocks_chunked(
        cn, 8, chunk,
        [&](int lanes, const i64* const* cols) {
          std::lock_guard<std::mutex> lock(mu);
          lanes_total += lanes;
          for (int l = 0; l < lanes; ++l) {
            std::vector<i64> t(d);
            for (size_t k = 0; k < d; ++k) t[k] = cols[k][l];
            seen.insert(std::move(t));
          }
        },
        3);
    EXPECT_EQ(lanes_total, cn.trip_count()) << "chunk=" << chunk;
    EXPECT_EQ(static_cast<i64>(seen.size()), cn.trip_count()) << "chunk=" << chunk;
  }
}

TEST(SimdBlocksChunked, FallsBackToPerThreadOnNonPositiveChunk) {
  const CollapsedEval cn = collapse(testutil::triangular_strict()).bind({{"N", 11}});
  i64 lanes_total = 0;
  std::mutex mu;
  collapsed_for_simd_blocks_chunked(
      cn, 4, 0,
      [&](int lanes, const i64* const*) {
        std::lock_guard<std::mutex> lock(mu);
        lanes_total += lanes;
      },
      2);
  EXPECT_EQ(lanes_total, cn.trip_count());
}

TEST(SimdBlocks, ComputesSameSumAsSerial) {
  // A simd-style reduction over the block must reproduce the serial sum.
  const NestSpec nest = testutil::trapezoidal();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 15}, {"M", 4}};
  const CollapsedEval cn = col.bind(p);

  long double expect = 0.0L;
  walk_domain(nest, p, [&](std::span<const i64> t) {
    expect += static_cast<long double>(t[0] * 3 + t[1]);
  });

  std::mutex mu;
  long double got = 0.0L;
  collapsed_for_simd_blocks(
      cn, 8,
      [&](int lanes, const i64* const* cols) {
        long double local = 0.0L;
#pragma omp simd reduction(+ : local)
        for (int l = 0; l < lanes; ++l)
          local += static_cast<long double>(cols[0][l] * 3 + cols[1][l]);
        std::lock_guard<std::mutex> lock(mu);
        got += local;
      },
      4);
  EXPECT_EQ(static_cast<double>(got), static_cast<double>(expect));
}


TEST(SimdBlocksChunked, ChunkCountOverflowNearI64MaxStillCoversDomain) {
  // Same i64 wrap as the scalar chunked scheme, through the lane-block
  // executor's group math (executor fuzzer regression, PR 4).
  const Collapsed col = collapse(testutil::triangular_lower());
  const CollapsedEval cn = col.bind({{"N", 11}});
  const size_t d = static_cast<size_t>(cn.depth());
  for (const i64 chunk :
       {std::numeric_limits<i64>::max(), std::numeric_limits<i64>::max() - 1}) {
    std::mutex mu;
    std::multiset<std::vector<i64>> seen;
    collapsed_for_simd_blocks_chunked(
        cn, 4, chunk,
        [&](int lanes, const i64* const* cols) {
          std::lock_guard<std::mutex> lock(mu);
          for (int l = 0; l < lanes; ++l) {
            std::vector<i64> t(d);
            for (size_t k = 0; k < d; ++k) t[k] = cols[k][l];
            seen.insert(std::move(t));
          }
        },
        4);
    EXPECT_EQ(static_cast<i64>(seen.size()), cn.trip_count()) << "chunk=" << chunk;
    EXPECT_EQ(static_cast<i64>(std::set<std::vector<i64>>(seen.begin(), seen.end()).size()),
              cn.trip_count())
        << "duplicated lanes, chunk=" << chunk;
  }
}

}  // namespace
}  // namespace nrc
