#include "runtime/segments.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <mutex>

#include "../test_util.hpp"

namespace nrc {
namespace {

struct Segment {
  std::vector<i64> prefix;
  i64 j0, j1;
};

/// Expand segments back to points and compare with the brute walk.
void expect_covers(const std::vector<Segment>& segs, const NestSpec& nest,
                   const ParamMap& params) {
  std::vector<std::vector<i64>> pts;
  for (const auto& s : segs) {
    EXPECT_LT(s.j0, s.j1) << "empty segment";
    for (i64 j = s.j0; j < s.j1; ++j) {
      auto p = s.prefix;
      p.push_back(j);
      pts.push_back(std::move(p));
    }
  }
  std::sort(pts.begin(), pts.end());
  auto expect = domain_points(nest, params);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(pts, expect);
}

class SegmentThreads : public ::testing::TestWithParam<int> {};

TEST_P(SegmentThreads, CoversDomainOnAllShapes) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const ParamMap p = testutil::uniform_params(sc.nest, 7);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    const Collapsed col = collapse(sc.nest);
    const CollapsedEval cn = col.bind(p);
    std::mutex mu;
    std::vector<Segment> segs;
    collapsed_for_row_segments(
        cn,
        [&](std::span<const i64> prefix, i64 j0, i64 j1) {
          std::lock_guard<std::mutex> lock(mu);
          segs.push_back({{prefix.begin(), prefix.end()}, j0, j1});
        },
        GetParam());
    expect_covers(segs, sc.nest, p);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SegmentThreads, ::testing::Values(1, 3, 12));

TEST(Segments, SingleThreadSegmentsAreMaximalRows) {
  // With one thread, every segment must span a full row of the triangle.
  const NestSpec tri = testutil::triangular_strict();
  const Collapsed col = collapse(tri);
  const CollapsedEval cn = col.bind({{"N", 9}});
  std::vector<Segment> segs;
  collapsed_for_row_segments(
      cn,
      [&](std::span<const i64> prefix, i64 j0, i64 j1) {
        segs.push_back({{prefix.begin(), prefix.end()}, j0, j1});
      },
      1);
  ASSERT_EQ(segs.size(), 8u);  // N-1 rows
  for (const auto& s : segs) {
    EXPECT_EQ(s.j0, s.prefix[0] + 1);
    EXPECT_EQ(s.j1, 9);
  }
}

TEST(Segments, MidRowCutsOnlyAtBlockBoundaries) {
  const NestSpec tri = testutil::triangular_inclusive();
  const Collapsed col = collapse(tri);
  const CollapsedEval cn = col.bind({{"N", 31}});
  const int threads = 4;
  std::mutex mu;
  std::vector<Segment> segs;
  collapsed_for_row_segments(
      cn,
      [&](std::span<const i64> prefix, i64 j0, i64 j1) {
        std::lock_guard<std::mutex> lock(mu);
        segs.push_back({{prefix.begin(), prefix.end()}, j0, j1});
      },
      threads);
  expect_covers(segs, tri, {{"N", 31}});
  // At most 2 partial segments per thread boundary: total segments
  // bounded by rows + 2 * threads.
  EXPECT_LE(segs.size(), 31u + 2u * threads);
}

TEST(Segments, SerialSimMatchesOrderForAnyChunkCount) {
  const NestSpec nest = testutil::tetrahedral_fig6();
  const Collapsed col = collapse(nest);
  const CollapsedEval cn = col.bind({{"N", 9}});
  const auto expect = domain_points(nest, {{"N", 9}});
  for (int sims : {1, 2, 12, 50}) {
    std::vector<std::vector<i64>> pts;
    collapsed_serial_segments_sim(cn, sims, [&](std::span<const i64> prefix, i64 j0,
                                                i64 j1) {
      for (i64 j = j0; j < j1; ++j) {
        std::vector<i64> p(prefix.begin(), prefix.end());
        p.push_back(j);
        pts.push_back(std::move(p));
      }
    });
    EXPECT_EQ(pts, expect) << "sims=" << sims;
  }
}

TEST(Segments, Depth1NestGivesEmptyPrefix) {
  NestSpec n;
  n.param("N").loop("i", aff::c(3), aff::v("N"));
  const Collapsed col = collapse(n);
  const CollapsedEval cn = col.bind({{"N", 10}});
  std::vector<Segment> segs;
  collapsed_for_row_segments(
      cn,
      [&](std::span<const i64> prefix, i64 j0, i64 j1) {
        segs.push_back({{prefix.begin(), prefix.end()}, j0, j1});
      },
      1);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_TRUE(segs[0].prefix.empty());
  EXPECT_EQ(segs[0].j0, 3);
  EXPECT_EQ(segs[0].j1, 10);
}

TEST(Segments, SegmentSumMatchesElementwiseSum) {
  const NestSpec nest = testutil::trapezoidal_skewed();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"T", 40}, {"N", 17}};
  const CollapsedEval cn = col.bind(p);
  long double expect = 0.0L;
  walk_domain(nest, p, [&](std::span<const i64> t) {
    expect += static_cast<long double>(5 * t[0] - t[1]);
  });
  std::mutex mu;
  long double got = 0.0L;
  collapsed_for_row_segments(
      cn,
      [&](std::span<const i64> prefix, i64 j0, i64 j1) {
        long double local = 0.0L;
        for (i64 j = j0; j < j1; ++j)
          local += static_cast<long double>(5 * prefix[0] - j);
        std::lock_guard<std::mutex> lock(mu);
        got += local;
      },
      6);
  EXPECT_EQ(static_cast<double>(got), static_cast<double>(expect));
}


TEST(RowSegmentsChunked, ChunkCountOverflowNearI64MaxStillCoversDomain) {
  // (total + chunk - 1) / chunk wraps for chunk near the i64 maximum;
  // the pre-fix executor computed a non-positive chunk count and
  // visited ZERO segments silently (executor fuzzer regression, PR 4).
  const NestSpec nest = testutil::triangular_strict();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 13}};
  const CollapsedEval cn = col.bind(p);
  for (const i64 chunk :
       {std::numeric_limits<i64>::max(), std::numeric_limits<i64>::max() - 1}) {
    std::mutex mu;
    std::vector<Segment> segs;
    collapsed_for_row_segments_chunked(
        cn, chunk,
        [&](std::span<const i64> prefix, i64 j0, i64 j1) {
          std::lock_guard<std::mutex> lock(mu);
          segs.push_back({{prefix.begin(), prefix.end()}, j0, j1});
        },
        4);
    expect_covers(segs, nest, p);
  }
}

}  // namespace
}  // namespace nrc
