#include "runtime/thread_stats.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace nrc {
namespace {

TEST(ThreadStats, CollapsedStaticIsBalancedToWithinOne) {
  const ThreadLoad load = collapsed_static_load(100, 12);
  ASSERT_EQ(load.iterations.size(), 12u);
  EXPECT_EQ(load.max_load() - load.min_load(), 1);  // 100 = 12*8 + 4
  i64 total = 0;
  for (i64 v : load.iterations) total += v;
  EXPECT_EQ(total, 100);
  EXPECT_LT(load.imbalance(), 0.21);
}

TEST(ThreadStats, OuterStaticOnTriangleIsHeavilySkewedToThreadZero) {
  // Paper Fig. 2: with schedule(static) on the outer triangular loop the
  // first thread gets by far the most iterations.
  const NestSpec tri = testutil::triangular_strict();
  const ThreadLoad load = outer_static_load(tri, {{"N", 101}}, 5);
  ASSERT_EQ(load.iterations.size(), 5u);
  // Thread loads must be strictly decreasing.
  for (size_t t = 1; t < 5; ++t)
    EXPECT_LT(load.iterations[t], load.iterations[t - 1]);
  EXPECT_EQ(load.max_load(), load.iterations[0]);
  // The theoretical ratio of thread 0's share to the mean is ~9/5 for
  // 5 threads on a triangle (1 - (1/5)^2 vs 1/5 of the area).
  EXPECT_GT(load.imbalance(), 0.5);
  // Total conserved.
  i64 total = 0;
  for (i64 v : load.iterations) total += v;
  EXPECT_EQ(total, 100 * 101 / 2);
}

TEST(ThreadStats, OuterStaticOnRectangleIsBalanced) {
  const ThreadLoad load = outer_static_load(testutil::rectangular(),
                                            {{"N", 40}, {"M", 7}}, 4);
  EXPECT_EQ(load.max_load(), load.min_load());
  EXPECT_DOUBLE_EQ(load.imbalance(), 0.0);
}

TEST(ThreadStats, CollapsedAlwaysBeatsOuterStaticOnTriangle) {
  const NestSpec tri = testutil::triangular_strict();
  for (int threads : {2, 5, 12}) {
    const ParamMap p{{"N", 200}};
    const ThreadLoad outer = outer_static_load(tri, p, threads);
    const ThreadLoad coll =
        collapsed_static_load(count_domain_brute(tri, p), threads);
    EXPECT_LT(coll.imbalance(), outer.imbalance()) << threads << " threads";
  }
}

TEST(ThreadStats, SummaryStatsOnKnownVector) {
  ThreadLoad load;
  load.iterations = {10, 20, 30};
  EXPECT_EQ(load.max_load(), 30);
  EXPECT_EQ(load.min_load(), 10);
  EXPECT_DOUBLE_EQ(load.mean_load(), 20.0);
  EXPECT_DOUBLE_EQ(load.imbalance(), 0.5);
}

TEST(ThreadStats, EmptyAndDegenerateInputs) {
  ThreadLoad empty;
  EXPECT_EQ(empty.max_load(), 0);
  EXPECT_DOUBLE_EQ(empty.imbalance(), 0.0);
  EXPECT_THROW(collapsed_static_load(10, 0), SpecError);
  EXPECT_THROW(outer_static_load(testutil::rectangular(), {{"N", 2}, {"M", 2}}, 0),
               SpecError);
}

TEST(ThreadStats, MoreThreadsThanRows) {
  const ThreadLoad load = outer_static_load(testutil::triangular_strict(),
                                            {{"N", 4}}, 8);
  ASSERT_EQ(load.iterations.size(), 8u);
  i64 total = 0;
  for (i64 v : load.iterations) total += v;
  EXPECT_EQ(total, 6);
}

}  // namespace
}  // namespace nrc
