// simd_abi shim: the 8-lane vf64x8 leg against a per-lane scalar
// reference (every target emulates the width it lacks, so these tests
// pin the lane semantics on AVX-512, AVX2 and scalar builds alike), the
// polynomial vcos/vatan2 kernels against libm over the Cardano
// branch-value ranges, and the lane-batched Cardano against the scalar
// branch formula — with set_vector_trig(false) as the exact per-lane
// libm reference path.
#include "runtime/simd_abi.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/real_solvers.hpp"

namespace nrc {
namespace {

/// Deterministic doubles in [lo, hi] (fixed-seed LCG; no test-order or
/// platform dependence).
class Lcg {
 public:
  double next(double lo, double hi) {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>(state_ >> 11) * 0x1p-53;
    return lo + u * (hi - lo);
  }

 private:
  u64 state_ = 0x9e3779b97f4a7c15ULL;
};

TEST(SimdAbiWide, EightLaneOpsMatchScalarReference) {
  Lcg rng;
  for (int trial = 0; trial < 200; ++trial) {
    double a[8], b[8];
    for (int l = 0; l < 8; ++l) {
      a[l] = rng.next(-1e6, 1e6);
      b[l] = rng.next(-1e6, 1e6);
      if (b[l] == 0.0) b[l] = 1.0;
    }
    const simd::vf64x8 va = simd::load<8>(a);
    const simd::vf64x8 vb = simd::load<8>(b);
    double got[8];

    simd::store(got, simd::add(va, vb));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], a[l] + b[l]);
    simd::store(got, simd::sub(va, vb));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], a[l] - b[l]);
    simd::store(got, simd::mul(va, vb));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], a[l] * b[l]);
    simd::store(got, simd::div(va, vb));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], a[l] / b[l]);
    simd::store(got, simd::neg(va));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], -a[l]);
    simd::store(got, simd::floor(va));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], std::floor(a[l]));
    simd::store(got, simd::sqrt(simd::vabs(va)));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], std::sqrt(std::fabs(a[l])));

    // cmp_ge/select/any: the mask type differs per leg (__mmask8 /
    // blend lanes), so probe it only through its two consumers.
    const simd::vmask8 m = simd::cmp_ge(va, vb);
    simd::store(got, simd::select(m, va, vb));
    bool expect_any = false;
    for (int l = 0; l < 8; ++l) {
      EXPECT_EQ(got[l], a[l] >= b[l] ? a[l] : b[l]);
      expect_any = expect_any || a[l] >= b[l];
    }
    EXPECT_EQ(simd::any(m), expect_any);

    simd::store(got, simd::vmin(va, vb));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], std::min(a[l], b[l]));
    simd::store(got, simd::vmax(va, vb));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], std::max(a[l], b[l]));
    for (int l = 0; l < 8; ++l) EXPECT_EQ(simd::lane(va, l), a[l]);
  }
  double got[8];
  simd::store(got, simd::splat<8>(3.25));
  for (int l = 0; l < 8; ++l) EXPECT_EQ(got[l], 3.25);
  EXPECT_FALSE(simd::any(simd::cmp_ge(simd::splat<8>(0.0), simd::splat<8>(1.0))));
}

TEST(SimdAbiWide, WidthGenericTraitsAgreeAcrossWidths) {
  EXPECT_EQ(simd::vtraits<simd::vf64>::lanes, 4);
  EXPECT_EQ(simd::vtraits<simd::vf64x8>::lanes, 8);
  EXPECT_EQ(simd::lane(simd::vtraits<simd::vf64x8>::splat(-7.5), 7), -7.5);
  EXPECT_TRUE(simd::kGroupLanes == 4 || simd::kGroupLanes == 8);
  // runtime_abi can only narrow the compiled leg, never widen it.
  const std::string compiled = simd::abi_name();
  const std::string runtime = simd::runtime_abi();
  auto width = [](const std::string& abi) {
    return abi == "avx512" ? 2 : abi == "avx2" ? 1 : 0;
  };
  EXPECT_LE(width(runtime), width(compiled)) << runtime << " vs " << compiled;
}

// ------------------------------------------------ polynomial trig kernels

// The lane solvers feed vcos the Viete phase phi/3 + 2*pi*branch/3 with
// phi = atan2(...) in [0, pi] — i.e. arguments in [0, 2*pi] — but the
// kernel's reduction covers any |x| within a few thousand radians, so
// sweep wider than the consumers need.
TEST(SimdAbiTrig, VcosMatchesLibmOverBranchRanges) {
  Lcg rng;
  for (int width : {4, 8}) {
    for (int trial = 0; trial < 4000; ++trial) {
      double x[8];
      const double span = trial % 2 ? 7.0 : 3000.0;
      for (int l = 0; l < 8; ++l) x[l] = rng.next(-span, span);
      double got[8];
      if (width == 4)
        simd::store(got, simd::vcos(simd::load<4>(x)));
      else
        simd::store(got, simd::vcos(simd::load<8>(x)));
      for (int l = 0; l < width; ++l)
        EXPECT_NEAR(got[l], std::cos(x[l]), 2e-9) << "x=" << x[l];
    }
  }
}

TEST(SimdAbiTrig, VatanTwoMatchesLibmOverBranchRanges) {
  Lcg rng;
  for (int width : {4, 8}) {
    for (int trial = 0; trial < 4000; ++trial) {
      double y[8], x[8];
      for (int l = 0; l < 8; ++l) {
        // The Cardano consumer's y is sqrt(-delta) >= 0 and x = -q/2 is
        // any sign; sweep all four quadrants anyway, across magnitudes.
        const double my = std::pow(10.0, rng.next(-12.0, 12.0));
        const double mx = std::pow(10.0, rng.next(-12.0, 12.0));
        y[l] = rng.next(-1.0, 1.0) * my;
        x[l] = rng.next(-1.0, 1.0) * mx;
      }
      double got[8];
      if (width == 4)
        simd::store(got, simd::vatan2(simd::load<4>(y), simd::load<4>(x)));
      else
        simd::store(got, simd::vatan2(simd::load<8>(y), simd::load<8>(x)));
      for (int l = 0; l < width; ++l)
        EXPECT_NEAR(got[l], std::atan2(y[l], x[l]), 2e-9)
            << "y=" << y[l] << " x=" << x[l];
    }
  }
}

TEST(SimdAbiTrig, VcbrtMatchesLibmAcrossMagnitudes) {
  // The one-real-root Cardano lanes feed vcbrt |v| with v spanning the
  // cube of the index range; sweep log-uniform magnitudes well past it.
  // The Halley iteration converges to ~1e-13 relative — assert a 1e-12
  // relative band, an order tighter than the guard licence needs.
  Lcg rng;
  for (int width : {4, 8}) {
    for (int trial = 0; trial < 4000; ++trial) {
      double x[8];
      for (int l = 0; l < 8; ++l) x[l] = std::pow(10.0, rng.next(-30.0, 30.0));
      double got[8];
      if (width == 4)
        simd::store(got, simd::vcbrt_nonneg(simd::load<4>(x)));
      else
        simd::store(got, simd::vcbrt_nonneg(simd::load<8>(x)));
      for (int l = 0; l < width; ++l)
        EXPECT_NEAR(got[l], std::cbrt(x[l]), 1e-12 * std::cbrt(x[l])) << "x=" << x[l];
    }
  }
  // x == 0 returns exactly 0 so the caller's p/(3m) degeneration check
  // behaves like scalar cbrt's.
  double z[8];
  simd::store(z, simd::vcbrt_nonneg(simd::splat<8>(0.0)));
  for (int l = 0; l < 8; ++l) EXPECT_EQ(z[l], 0.0);
}

TEST(SimdAbiTrig, VatanTwoHandlesAxesAndZeroPairs) {
  // Axis lanes the consumer can actually produce: y = 0 (delta == 0
  // lanes, whose Viete-side value the final blend deselects) and the
  // both-zero lane, which must stay finite (0), not NaN.
  const double y[8] = {0.0, 0.0, 1.0, -1.0, 0.0, 5.0, -5.0, 0.0};
  const double x[8] = {1.0, 5.0, 0.0, 0.0, 0.0, 5.0, -5.0, 2.5};
  double got[8];
  simd::store(got, simd::vatan2(simd::load<8>(y), simd::load<8>(x)));
  for (int l = 0; l < 8; ++l) {
    if (y[l] == 0.0 && x[l] == 0.0) {
      EXPECT_EQ(got[l], 0.0);
    } else {
      EXPECT_NEAR(got[l], std::atan2(y[l], x[l]), 2e-9) << l;
    }
  }
}

// -------------------------------------------------- lane-batched Cardano

/// Monic cubics whose delta sign is known by construction: three real
/// roots (delta < 0) from expanded (x-r0)(x-r1)(x-r2) with distinct
/// roots, one real root (delta > 0) from (x-r)(x^2+1)-style pairs.
struct Cubic {
  double b, c, d;
};

std::vector<Cubic> cubics_with_three_real_roots() {
  std::vector<Cubic> v;
  Lcg rng;
  for (int i = 0; i < 64; ++i) {
    const double r0 = rng.next(-40.0, 40.0);
    const double r1 = r0 + rng.next(0.5, 30.0);
    const double r2 = r1 + rng.next(0.5, 30.0);
    v.push_back({-(r0 + r1 + r2), r0 * r1 + r0 * r2 + r1 * r2, -r0 * r1 * r2});
  }
  return v;
}

std::vector<Cubic> cubics_with_one_real_root() {
  std::vector<Cubic> v;
  Lcg rng;
  for (int i = 0; i < 64; ++i) {
    const double r = rng.next(-40.0, 40.0);
    const double s = rng.next(0.5, 10.0);  // complex pair at +-i*s around m
    const double m = rng.next(-5.0, 5.0);
    // (x - r) * (x^2 - 2 m x + m^2 + s^2)
    v.push_back({-r - 2 * m, m * m + s * s + 2 * m * r, -r * (m * m + s * s)});
  }
  return v;
}

TEST(CardanoLanes, VectorPathTracksScalarBranchFormula) {
  ASSERT_TRUE(simd::vector_trig_enabled());  // default state
  for (int branch = 0; branch < 3; ++branch) {
    for (const Cubic& q : cubics_with_three_real_roots()) {
      const auto lanes = cardano_branch_lanes(
          simd::splat<8>(q.b), simd::splat<8>(q.c), simd::splat<8>(q.d), branch);
      const CardanoBranch<double> ref = cardano_branch<double>(q.b, q.c, q.d, branch);
      for (int l = 0; l < 8; ++l) {
        // Root magnitudes are <= ~100 here, so ~1e-9 relative trig
        // error stays well under the guard's step budget.
        EXPECT_NEAR(simd::lane(lanes.re, l), ref.re, 1e-6) << "branch=" << branch;
        EXPECT_EQ(simd::lane(lanes.im, l), 0.0);
      }
    }
    // delta >= 0 lanes run the Halley vcbrt kernel in-register; its
    // ~1e-13 relative error sits far inside the same guard licence.
    for (const Cubic& q : cubics_with_one_real_root()) {
      const auto lanes = cardano_branch_lanes(
          simd::splat<4>(q.b), simd::splat<4>(q.c), simd::splat<4>(q.d), branch);
      const CardanoBranch<double> ref = cardano_branch<double>(q.b, q.c, q.d, branch);
      for (int l = 0; l < 4; ++l) {
        EXPECT_NEAR(simd::lane(lanes.re, l), ref.re, 1e-9) << "branch=" << branch;
        EXPECT_NEAR(simd::lane(lanes.im, l), ref.im, 1e-9) << "branch=" << branch;
      }
    }
  }
}

TEST(CardanoLanes, LibmReferencePathIsBitIdenticalPerLane) {
  // set_vector_trig(false) routes every lane through the scalar
  // cardano_branch — the equivalence-test reference path.
  simd::set_vector_trig(false);
  for (int branch = 0; branch < 3; ++branch) {
    for (const auto& pool :
         {cubics_with_three_real_roots(), cubics_with_one_real_root()}) {
      for (const Cubic& q : pool) {
        const auto lanes = cardano_branch_lanes(
            simd::splat<8>(q.b), simd::splat<8>(q.c), simd::splat<8>(q.d), branch);
        const CardanoBranch<double> ref =
            cardano_branch<double>(q.b, q.c, q.d, branch);
        for (int l = 0; l < 8; ++l) {
          EXPECT_EQ(simd::lane(lanes.re, l), ref.re);
          EXPECT_EQ(simd::lane(lanes.im, l), ref.im);
        }
      }
    }
  }
  simd::set_vector_trig(true);
  EXPECT_TRUE(simd::vector_trig_enabled());
}

// Mixed-sign delta within one batch: Viete lanes and one-real-root
// lanes must land in their own slots (the blend is per lane, not per
// batch — each side's garbage on the other side's lanes is deselected).
TEST(CardanoLanes, MixedDeltaSignsBlendPerLane) {
  const auto three = cubics_with_three_real_roots();
  const auto one = cubics_with_one_real_root();
  double b[8], c[8], d[8];
  for (int l = 0; l < 8; ++l) {
    const Cubic& q = (l % 2 ? three : one)[static_cast<size_t>(l)];
    b[l] = q.b;
    c[l] = q.c;
    d[l] = q.d;
  }
  for (int branch = 0; branch < 3; ++branch) {
    const auto lanes = cardano_branch_lanes(simd::load<8>(b), simd::load<8>(c),
                                            simd::load<8>(d), branch);
    for (int l = 0; l < 8; ++l) {
      const CardanoBranch<double> ref = cardano_branch<double>(b[l], c[l], d[l], branch);
      EXPECT_NEAR(simd::lane(lanes.re, l), ref.re, 1e-6) << l;
      EXPECT_NEAR(simd::lane(lanes.im, l), ref.im, 1e-6) << l;
    }
  }
}

}  // namespace
}  // namespace nrc
