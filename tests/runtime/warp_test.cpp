#include "runtime/warp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <set>

#include "../test_util.hpp"

// Big-allocation counter for WarpSim.HugeWarpSizeAllocatesOnlyForLiveLanes:
// counts allocations of 1 MiB and up while armed (the default operator
// new[] forwards here, so one replacement covers both forms).  Pure
// counting — every allocation still succeeds — so the other suites in
// this binary are unaffected.
namespace {
std::atomic<bool> g_count_big_allocs{false};
std::atomic<long long> g_big_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_count_big_allocs.load(std::memory_order_relaxed) && n >= (1u << 20))
    g_big_alloc_bytes.fetch_add(static_cast<long long>(n), std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace nrc {
namespace {

TEST(WarpSim, CoversDomainForVariousWarpSizes) {
  const NestSpec nest = testutil::triangular_strict();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 24}};
  const CollapsedEval cn = col.bind(p);
  const auto pts = domain_points(nest, p);

  for (int W : {1, 2, 8, 32, 1000 /* > total: lanes beyond domain idle */}) {
    std::mutex mu;
    std::multiset<std::pair<i64, i64>> seen;
    collapsed_for_warp_sim(
        cn, W,
        [&](std::span<const i64> idx) {
          std::lock_guard<std::mutex> lock(mu);
          seen.emplace(idx[0], idx[1]);
        },
        4);
    EXPECT_EQ(static_cast<i64>(seen.size()), cn.trip_count()) << "W=" << W;
    for (const auto& q : pts)
      EXPECT_EQ(seen.count({q[0], q[1]}), 1u) << "W=" << W;
  }
}

TEST(WarpSim, LaneVisitsStrideWRanks) {
  // Lane l visits ranks l+1, l+1+W, l+1+2W, ... — the coalescing pattern
  // of §VI-B.
  const NestSpec nest = testutil::triangular_lower();
  const Collapsed col = collapse(nest);
  const CollapsedEval cn = col.bind({{"N", 16}});
  const int W = 8;
  std::mutex mu;
  std::map<i64, std::vector<i64>> ranks_by_lane;
  collapsed_for_warp_sim(
      cn, W,
      [&](std::span<const i64> idx) {
        const i64 r = cn.rank(idx);
        std::lock_guard<std::mutex> lock(mu);
        ranks_by_lane[(r - 1) % W].push_back(r);
      },
      2);
  for (auto& [lane, ranks] : ranks_by_lane) {
    std::sort(ranks.begin(), ranks.end());
    EXPECT_EQ(ranks.front(), lane + 1);
    for (size_t q = 1; q < ranks.size(); ++q)
      EXPECT_EQ(ranks[q], ranks[q - 1] + W) << "lane " << lane;
  }
}

TEST(WarpSim, ConsecutiveRanksAcrossLanesAtEachStep) {
  // At step s the warp as a whole covers ranks [sW+1, (s+1)W] — the
  // memory-coalescing property the scheme exists for.  Verified
  // implicitly by the stride test plus full coverage; here we just check
  // the first warp-load explicitly with W = total (single step).
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 8}});
  const int W = static_cast<int>(cn.trip_count());
  std::mutex mu;
  std::set<i64> first_step;
  collapsed_for_warp_sim(
      cn, W,
      [&](std::span<const i64> idx) {
        std::lock_guard<std::mutex> lock(mu);
        first_step.insert(cn.rank(idx));
      },
      4);
  EXPECT_EQ(static_cast<i64>(first_step.size()), cn.trip_count());
  EXPECT_EQ(*first_step.begin(), 1);
  EXPECT_EQ(*first_step.rbegin(), cn.trip_count());
}

TEST(WarpSim, RejectsBadWarpSize) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 8}});
  EXPECT_THROW(collapsed_for_warp_sim(cn, 0, [](std::span<const i64>) {}), SpecError);
}

/// Evaluator wrapper that makes advance() fail on demand without
/// touching the tuple — the degradation detail::warp_lane_walk's resync
/// policy defends against.  advance() cannot fail mid-stride for a
/// model-conforming domain (the executor fuzzer sweeps every warp size
/// over every fuzz class without one), so the lane-drop regression is
/// pinned by injection: with the pre-fix `break` policy every injected
/// failure silently discarded the lane's remaining iterations.
struct FlakyAdvanceEval {
  const CollapsedEval* cn;
  i64 fail_every;                 ///< every fail_every-th advance fails
  mutable i64 calls = 0;

  bool advance(std::span<i64> idx, i64 n) const {
    if (++calls % fail_every == 0) return false;  // simulated mid-stride failure
    return cn->advance(idx, n);
  }
  void recover(i64 pc, std::span<i64> idx) const { cn->recover(pc, idx); }
};

TEST(WarpSim, LaneResyncsInsteadOfDroppingOnAdvanceFailure) {
  // A degenerate-class fuzz nest (single-point rows force an advance —
  // and thus an injected failure — on nearly every warp stride) with a
  // warp size that keeps several strides per lane.
  testutil::FuzzNest fc = testutil::make_fuzz_nest(testutil::FuzzClass::Degenerate, 3);
  for (u64 seed = 4; fc.expect_empty; ++seed)
    fc = testutil::make_fuzz_nest(testutil::FuzzClass::Degenerate, seed);
  CollapseOptions opts;
  opts.calibration = fc.calibration;
  ParamMap p = fc.fixed_params;
  p["N"] = testutil::kFuzzMaxN;
  const CollapsedEval cn = collapse(fc.nest, opts).bind(p);
  const i64 total = cn.trip_count();
  const size_t d = static_cast<size_t>(cn.depth());
  const auto ref = testutil::odometer_reference(cn);

  for (const i64 fail_every : {i64{1}, i64{2}, i64{3}}) {
    for (const i64 W : {i64{2}, i64{3}, i64{7}}) {
      testutil::SchemeCollector collector(ref.track_tuples);
      for (i64 lane = 0; lane < std::min<i64>(W, total); ++lane) {
        i64 idx[kMaxDepth];
        cn.recover(lane + 1, {idx, d});
        const FlakyAdvanceEval flaky{&cn, fail_every};
        detail::warp_lane_walk(flaky, lane, W, total, {idx, d},
                               [&](std::span<const i64> t) { collector.visit(t); });
      }
      EXPECT_TRUE(collector.compare(ref))
          << fc.repro() << "W=" << W << " fail_every=" << fail_every
          << " — lane dropped iterations instead of resyncing";
    }
  }
}

TEST(WarpSim, HugeWarpSizeAllocatesOnlyForLiveLanes) {
  // warp_size far beyond trip_count(): the staging tile must be sized
  // by the live lanes (min(W, total)), not by W — the unclamped tile
  // allocated depth * W * 8 bytes (64 MiB here, gigabytes for warp
  // sizes near INT_MAX) for a 66-iteration domain.
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 12}});
  std::atomic<i64> visits{0};
  g_big_alloc_bytes = 0;
  g_count_big_allocs = true;
  collapsed_for_warp_sim(cn, 1 << 22, [&](std::span<const i64>) { ++visits; }, 2);
  g_count_big_allocs = false;
  EXPECT_EQ(visits.load(), cn.trip_count());
  EXPECT_EQ(g_big_alloc_bytes.load(), 0)
      << "warp staging tile scales with warp_size instead of live lanes";
}

}  // namespace
}  // namespace nrc
