#include "runtime/warp.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "../test_util.hpp"

namespace nrc {
namespace {

TEST(WarpSim, CoversDomainForVariousWarpSizes) {
  const NestSpec nest = testutil::triangular_strict();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 24}};
  const CollapsedEval cn = col.bind(p);
  const auto pts = domain_points(nest, p);

  for (int W : {1, 2, 8, 32, 1000 /* > total: lanes beyond domain idle */}) {
    std::mutex mu;
    std::multiset<std::pair<i64, i64>> seen;
    collapsed_for_warp_sim(
        cn, W,
        [&](std::span<const i64> idx) {
          std::lock_guard<std::mutex> lock(mu);
          seen.emplace(idx[0], idx[1]);
        },
        4);
    EXPECT_EQ(static_cast<i64>(seen.size()), cn.trip_count()) << "W=" << W;
    for (const auto& q : pts)
      EXPECT_EQ(seen.count({q[0], q[1]}), 1u) << "W=" << W;
  }
}

TEST(WarpSim, LaneVisitsStrideWRanks) {
  // Lane l visits ranks l+1, l+1+W, l+1+2W, ... — the coalescing pattern
  // of §VI-B.
  const NestSpec nest = testutil::triangular_lower();
  const Collapsed col = collapse(nest);
  const CollapsedEval cn = col.bind({{"N", 16}});
  const int W = 8;
  std::mutex mu;
  std::map<i64, std::vector<i64>> ranks_by_lane;
  collapsed_for_warp_sim(
      cn, W,
      [&](std::span<const i64> idx) {
        const i64 r = cn.rank(idx);
        std::lock_guard<std::mutex> lock(mu);
        ranks_by_lane[(r - 1) % W].push_back(r);
      },
      2);
  for (auto& [lane, ranks] : ranks_by_lane) {
    std::sort(ranks.begin(), ranks.end());
    EXPECT_EQ(ranks.front(), lane + 1);
    for (size_t q = 1; q < ranks.size(); ++q)
      EXPECT_EQ(ranks[q], ranks[q - 1] + W) << "lane " << lane;
  }
}

TEST(WarpSim, ConsecutiveRanksAcrossLanesAtEachStep) {
  // At step s the warp as a whole covers ranks [sW+1, (s+1)W] — the
  // memory-coalescing property the scheme exists for.  Verified
  // implicitly by the stride test plus full coverage; here we just check
  // the first warp-load explicitly with W = total (single step).
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 8}});
  const int W = static_cast<int>(cn.trip_count());
  std::mutex mu;
  std::set<i64> first_step;
  collapsed_for_warp_sim(
      cn, W,
      [&](std::span<const i64> idx) {
        std::lock_guard<std::mutex> lock(mu);
        first_step.insert(cn.rank(idx));
      },
      4);
  EXPECT_EQ(static_cast<i64>(first_step.size()), cn.trip_count());
  EXPECT_EQ(*first_step.begin(), 1);
  EXPECT_EQ(*first_step.rbegin(), cn.trip_count());
}

TEST(WarpSim, RejectsBadWarpSize) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 8}});
  EXPECT_THROW(collapsed_for_warp_sim(cn, 0, [](std::span<const i64>) {}), SpecError);
}

}  // namespace
}  // namespace nrc
