// Every execution scheme must visit exactly the original nest's
// iteration set — the fundamental safety property of the transformation.
#include "runtime/execute.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <mutex>
#include <set>

#include "../test_util.hpp"
#include "runtime/segments.hpp"
#include "runtime/simd.hpp"
#include "runtime/warp.hpp"

namespace nrc {
namespace {

using Tuple = std::vector<i64>;

/// Collect visited tuples (thread-safe) and compare to the brute walk.
class VisitCollector {
 public:
  explicit VisitCollector(int depth) : depth_(depth) {}

  auto body() {
    return [this](std::span<const i64> idx) {
      const Tuple t(idx.begin(), idx.end());
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = visited_.insert(t);
      if (!inserted) ++duplicates_;
    };
  }

  void expect_matches(const NestSpec& nest, const ParamMap& params) const {
    const auto pts = domain_points(nest, params);
    EXPECT_EQ(duplicates_, 0) << "some iteration was executed twice";
    EXPECT_EQ(visited_.size(), pts.size());
    for (const auto& p : pts) EXPECT_TRUE(visited_.count(p)) << "missing point";
  }

 private:
  int depth_;
  mutable std::mutex mu_;
  std::set<Tuple> visited_;
  int duplicates_ = 0;
};

class ExecuteSchemes : public ::testing::TestWithParam<int> {};  // threads

TEST_P(ExecuteSchemes, PerThreadCoversDomain) {
  const NestSpec nest = testutil::tetrahedral_fig6();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 14}};
  const CollapsedEval cn = col.bind(p);
  VisitCollector vc(cn.depth());
  collapsed_for_per_thread(cn, vc.body(), {GetParam()});
  vc.expect_matches(nest, p);
}

TEST_P(ExecuteSchemes, PerIterationStaticCoversDomain) {
  const NestSpec nest = testutil::triangular_strict();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 40}};
  const CollapsedEval cn = col.bind(p);
  VisitCollector vc(cn.depth());
  collapsed_for_per_iteration(cn, vc.body(), OmpSchedule::Static, {GetParam()});
  vc.expect_matches(nest, p);
}

TEST_P(ExecuteSchemes, PerIterationDynamicCoversDomain) {
  const NestSpec nest = testutil::trapezoidal_skewed();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"T", 9}, {"N", 7}};
  const CollapsedEval cn = col.bind(p);
  VisitCollector vc(cn.depth());
  collapsed_for_per_iteration(cn, vc.body(), OmpSchedule::Dynamic, {GetParam()});
  vc.expect_matches(nest, p);
}

TEST_P(ExecuteSchemes, ChunkedCoversDomain) {
  const NestSpec nest = testutil::triangular_lower();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 33}};
  const CollapsedEval cn = col.bind(p);
  for (i64 chunk : {1, 3, 16, 1000}) {
    VisitCollector vc(cn.depth());
    collapsed_for_chunked(cn, chunk, vc.body(), {GetParam()});
    vc.expect_matches(nest, p);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ExecuteSchemes, ::testing::Values(1, 2, 7, 12));

TEST(ExecuteSchemes, SerialPreservesLexicographicOrder) {
  const NestSpec nest = testutil::tetrahedral_ordered();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 8}};
  const CollapsedEval cn = col.bind(p);
  std::vector<Tuple> order;
  collapsed_serial(cn, [&](std::span<const i64> idx) {
    order.emplace_back(idx.begin(), idx.end());
  });
  EXPECT_EQ(order, domain_points(nest, p));
}

TEST(ExecuteSchemes, SerialSimMatchesSerialForAnyChunkCount) {
  const NestSpec nest = testutil::triangular_strict();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 25}};
  const CollapsedEval cn = col.bind(p);
  const auto expect = domain_points(nest, p);
  for (int sims : {1, 2, 5, 12, 100, 100000}) {
    std::vector<Tuple> order;
    collapsed_serial_sim(cn, sims, [&](std::span<const i64> idx) {
      order.emplace_back(idx.begin(), idx.end());
    });
    EXPECT_EQ(order, expect) << "sims=" << sims;
  }
}

TEST(ExecuteSchemes, PerThreadBlocksAreContiguousRanks) {
  // Each thread's visited pc values must be one contiguous range —
  // that's the schedule(static) semantics §V relies on.
  const NestSpec nest = testutil::triangular_strict();
  const Collapsed col = collapse(nest);
  const CollapsedEval cn = col.bind({{"N", 30}});
  std::mutex mu;
  std::map<int, std::vector<i64>> per_thread;
  collapsed_for_per_thread(
      cn,
      [&](std::span<const i64> idx) {
        const i64 r = cn.rank(idx);
        std::lock_guard<std::mutex> lock(mu);
        per_thread[omp_get_thread_num()].push_back(r);
      },
      {4});
  for (auto& [t, ranks] : per_thread) {
    std::sort(ranks.begin(), ranks.end());
    for (size_t q = 1; q < ranks.size(); ++q)
      EXPECT_EQ(ranks[q], ranks[q - 1] + 1) << "thread " << t;
  }
}

TEST(ExecuteSchemes, EmptyWorkIsSafe) {
  // trip_count >= 1 is guaranteed by bind(); single-iteration domains
  // must not break any scheme.
  NestSpec n;
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::v("i"), aff::v("N"));
  const Collapsed col = collapse(n);
  const CollapsedEval cn = col.bind({{"N", 1}});
  ASSERT_EQ(cn.trip_count(), 1);
  std::atomic<int> count{0};
  collapsed_for_per_thread(cn, [&](std::span<const i64>) { ++count; }, {8});
  EXPECT_EQ(count.load(), 1);
}

// ---------------------------------------------------------------------------
// Integer edge cases surfaced by the executor fuzzer (PR 4).

constexpr i64 kI64Max = std::numeric_limits<i64>::max();

TEST(ExecuteSchemes, ChunkCountOverflowNearI64MaxStillCoversDomain) {
  // (total + chunk - 1) / chunk wraps for chunk near the i64 maximum,
  // making the chunk count non-positive — the pre-fix executor then
  // visited ZERO iterations without any error, the worst possible
  // failure mode for a "practically infinite chunk" caller.
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 12}});
  for (const i64 chunk : {kI64Max, kI64Max - 1, kI64Max / 2}) {
    std::atomic<i64> count{0};
    collapsed_for_chunked(cn, chunk, [&](std::span<const i64>) { ++count; }, {4});
    EXPECT_EQ(count.load(), cn.trip_count()) << "chunk=" << chunk;
  }
}

TEST(ExecuteSchemes, TaskloopGrainOverflowNearI64MaxStillCoversDomain) {
  // Same wrap through the taskloop's task count.
  const Collapsed col = collapse(testutil::triangular_lower());
  const CollapsedEval cn = col.bind({{"N", 10}});
  for (const i64 grain : {kI64Max, kI64Max - 1}) {
    std::atomic<i64> count{0};
    collapsed_for_taskloop(cn, grain, [&](std::span<const i64>) { ++count; }, {4});
    EXPECT_EQ(count.load(), cn.trip_count()) << "grain=" << grain;
  }
}

TEST(ExecuteSchemes, ChunkLargerThanTotalIsOneFullChunk) {
  // chunk > total must degrade to a single chunk covering the whole
  // range (and (q + 1) * chunk may never be formed: it overflows long
  // before the chunk count does).
  const Collapsed col = collapse(testutil::tetrahedral_fig6());
  const ParamMap p{{"N", 9}};
  const CollapsedEval cn = col.bind(p);
  for (const i64 chunk : {cn.trip_count() + 1, 2 * cn.trip_count(), kI64Max / 3}) {
    VisitCollector vc(cn.depth());
    collapsed_for_chunked(cn, chunk, vc.body(), {3});
    vc.expect_matches(testutil::tetrahedral_fig6(), p);
  }
}

TEST(ExecuteSchemes, SinglePointDomainSafeAcrossAllSchemes) {
  // The smallest domain bind() admits (trip_count() == 0 is
  // unrepresentable: bind() rejects empty domains, which the recovery
  // fuzzer asserts) must flow through every scheme exactly once —
  // including the chunked/taskloop/simd/warp parameter extremes.
  NestSpec n;
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::v("i"), aff::v("N"));
  const Collapsed col = collapse(n);
  const CollapsedEval cn = col.bind({{"N", 1}});
  ASSERT_EQ(cn.trip_count(), 1);
  const auto ref = testutil::odometer_reference(cn);
  EXPECT_TRUE(testutil::run_scheme_differential(cn, ref, [&](auto&& visit) {
    collapsed_for_per_iteration(cn, visit, OmpSchedule::Static, {7});
  })) << "per_iteration";
  EXPECT_TRUE(testutil::run_scheme_differential(cn, ref, [&](auto&& visit) {
    collapsed_for_per_thread(cn, visit, {7});
  })) << "per_thread";
  EXPECT_TRUE(testutil::run_scheme_differential(cn, ref, [&](auto&& visit) {
    collapsed_for_chunked(cn, kI64Max, visit, {7});
  })) << "chunked";
  EXPECT_TRUE(testutil::run_scheme_differential(cn, ref, [&](auto&& visit) {
    collapsed_for_taskloop(cn, kI64Max, visit, {7});
  })) << "taskloop";
  EXPECT_TRUE(testutil::run_scheme_differential(cn, ref, [&](auto&& visit) {
    collapsed_for_row_segments(cn, testutil::segment_adapter(cn, visit), 7);
  })) << "row_segments";
  EXPECT_TRUE(testutil::run_scheme_differential(cn, ref, [&](auto&& visit) {
    collapsed_for_simd_blocks(cn, 8, testutil::block_adapter(cn, visit), 7);
  })) << "simd_blocks";
  EXPECT_TRUE(testutil::run_scheme_differential(cn, ref, [&](auto&& visit) {
    collapsed_for_warp_sim(cn, 64, visit, 7);
  })) << "warp_sim";
  EXPECT_TRUE(testutil::run_scheme_differential(cn, ref, [&](auto&& visit) {
    collapsed_serial_sim(cn, 1000, visit);
  })) << "serial_sim";
}

}  // namespace
}  // namespace nrc
