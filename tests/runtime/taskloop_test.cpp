#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "../test_util.hpp"
#include "runtime/execute.hpp"

namespace nrc {
namespace {

TEST(Taskloop, CoversDomainForVariousGrains) {
  const NestSpec nest = testutil::triangular_strict();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 35}};
  const CollapsedEval cn = col.bind(p);
  const auto pts = domain_points(nest, p);

  for (i64 grain : {i64{0} /* default */, i64{1}, i64{7}, i64{100}, i64{100000}}) {
    std::mutex mu;
    std::multiset<std::pair<i64, i64>> seen;
    collapsed_for_taskloop(
        cn, grain,
        [&](std::span<const i64> ij) {
          std::lock_guard<std::mutex> lock(mu);
          seen.emplace(ij[0], ij[1]);
        },
        {4});
    EXPECT_EQ(static_cast<i64>(seen.size()), cn.trip_count()) << "grain=" << grain;
    for (const auto& q : pts)
      EXPECT_EQ(seen.count({q[0], q[1]}), 1u) << "grain=" << grain;
  }
}

TEST(Taskloop, ComputesSameReductionAsSerial) {
  const NestSpec nest = testutil::tetrahedral_fig6();
  const Collapsed col = collapse(nest);
  const ParamMap p{{"N", 13}};
  const CollapsedEval cn = col.bind(p);

  long double expect = 0.0L;
  walk_domain(nest, p, [&](std::span<const i64> t) {
    expect += static_cast<long double>(t[0] * 100 + t[1] * 10 + t[2]);
  });

  std::mutex mu;
  long double got = 0.0L;
  collapsed_for_taskloop(
      cn, 16,
      [&](std::span<const i64> t) {
        const long double v = static_cast<long double>(t[0] * 100 + t[1] * 10 + t[2]);
        std::lock_guard<std::mutex> lock(mu);
        got += v;
      },
      {8});
  EXPECT_EQ(static_cast<double>(got), static_cast<double>(expect));
}

TEST(Taskloop, SingleThreadPreservesChunkOrderWithinTask) {
  const NestSpec nest = testutil::triangular_lower();
  const Collapsed col = collapse(nest);
  const CollapsedEval cn = col.bind({{"N", 12}});
  std::vector<std::pair<i64, i64>> order;
  collapsed_for_taskloop(
      cn, 1000000,  // one big task: fully sequential
      [&](std::span<const i64> ij) { order.emplace_back(ij[0], ij[1]); }, {1});
  const auto pts = domain_points(nest, {{"N", 12}});
  ASSERT_EQ(order.size(), pts.size());
  for (size_t q = 0; q < pts.size(); ++q) {
    EXPECT_EQ(order[q].first, pts[q][0]);
    EXPECT_EQ(order[q].second, pts[q][1]);
  }
}

TEST(RecoveryStats, CountersAccumulatePerLevel) {
  const Collapsed col = collapse(testutil::tetrahedral_fig6());
  const CollapsedEval cn = col.bind({{"N", 20}});
  RecoveryStats stats;
  std::vector<i64> idx(3);
  const i64 total = cn.trip_count();
  for (i64 pc = 1; pc <= total; ++pc) cn.recover(pc, idx, &stats);
  // Two non-innermost levels per recovery (innermost is linear, untracked).
  EXPECT_EQ(stats.levels(), 2 * total);
  // The guarded paths must be exact and overwhelmingly closed-form.
  EXPECT_GT(stats.closed_form, 0);
  EXPECT_EQ(stats.fallback, 0);
  // Merging works.
  RecoveryStats more = stats;
  more += stats;
  EXPECT_EQ(more.levels(), 4 * total);
}

TEST(RecoveryStats, SearchOnlyEvalReportsFallback) {
  CollapseOptions opts;
  opts.build_closed_form = false;
  const Collapsed col = collapse(testutil::triangular_strict(), opts);
  const CollapsedEval cn = col.bind({{"N", 10}});
  RecoveryStats stats;
  std::vector<i64> idx(2);
  cn.recover(5, idx, &stats);
  EXPECT_EQ(stats.fallback, 1);  // level 0 by search; innermost untracked
  EXPECT_EQ(stats.closed_form, 0);
}

}  // namespace
}  // namespace nrc
