// Randomized differential *executor* fuzzer: the paper's claim is
// end-to-end — every parallel scheme (§V per-thread/chunked, §VI-A SIMD
// blocks, §VI-B warp) and the generated C must visit exactly the
// original nest's iteration space — so this harness drives every
// collapsed_for_* executor, the serial simulators and the codegen round
// trip over the same seeded random nests the recovery fuzzer uses
// (testutil::make_fuzz_nest: triangular/tiled/skewed/degenerate), under
// varied thread counts and scheme parameters (chunk > total, chunk near
// the i64 max, vlen non-divisors, warp_size > total), and diffs the
// visited tuple multiset plus an order-insensitive checksum against the
// sequential odometer reference (testutil::run_scheme_differential).
//
// The codegen round trip emits the collapsed C for closed-form-solvable
// fuzz nests, compiles it with the system C compiler (the
// integration_compile_test machinery), runs it, and diffs its visited
// tuples — in original lexicographic order for the serial emission, as
// the order-insensitive checksum for the OpenMP emission — against the
// same reference the library executors were held to.
//
// Slices: the fast deterministic slice runs under the plain tier1 ctest
// label (nrc_executor_fuzz_fast); the long randomized slice
// (NRC_EXEC_FUZZ_DOMAINS domains per class, default 10000, rotating
// through the scheme matrix) is nrc_executor_fuzz_long (labels
// tier1;long), which the CI push-to-main sanitize leg runs under
// ASan/UBSan.
//
// Reproducing a failure: every assertion message carries
// "class=<name> seed=<decimal>"; rerun exactly that case with
//   NRC_FUZZ_CLASS=<name> NRC_FUZZ_SEED=<decimal> \
//     ./nrc_executor_fuzz_test --gtest_filter=ExecutorFuzz.Repro
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "codegen/c_emitter.hpp"
#include "jit/toolchain.hpp"
#include "runtime/execute.hpp"
#include "runtime/segments.hpp"
#include "runtime/simd.hpp"
#include "runtime/warp.hpp"

namespace nrc {
namespace {

using testutil::DomainObservation;
using testutil::FuzzClass;
using testutil::FuzzNest;

constexpr i64 kHugeChunk = std::numeric_limits<i64>::max();

i64 env_i64(const char* name, i64 fallback) {
  const char* e = std::getenv(name);
  return e && *e ? std::atoll(e) : fallback;
}

struct FuzzTally {
  i64 domains = 0;
  i64 scheme_runs = 0;
};

using testutil::block_adapter;
using testutil::segment_adapter;

/// Type-erased tuple visitor / legacy-runner pair, so the whole scheme
/// matrix fits in one table.
using Visit = std::function<void(std::span<const i64>)>;
using LegacyRunner = std::function<void(const CollapsedEval&, const Visit&)>;

/// One entry of the scheme matrix: the Schedule descriptor the unified
/// dispatcher executes, plus the legacy collapsed_for_* call it must be
/// equivalent to.  `group` mirrors the long slice's rotation layout.
struct SchemeCase {
  int group;
  std::string label;
  Schedule sched;
  LegacyRunner legacy;
};

/// The scheme/parameter matrix as one table of Schedules (the hostile
/// parameter classes — chunk/grain > total and near the i64 maximum,
/// vlen non-divisors, warp_size > total — are unchanged from the
/// pre-pipeline call-site matrix).  `nt` is the rotation-selected
/// thread count; in full mode the per-thread group additionally sweeps
/// all thread counts.
std::vector<SchemeCase> scheme_matrix(i64 total, int nt, bool full) {
  std::vector<SchemeCase> m;
  m.push_back({0, "per_iteration/static", Schedule::per_iteration(OmpSchedule::Static, {nt}),
               [nt](const CollapsedEval& c, const Visit& v) {
                 collapsed_for_per_iteration(c, v, OmpSchedule::Static, {nt});
               }});
  m.push_back({0, "per_iteration/dynamic",
               Schedule::per_iteration(OmpSchedule::Dynamic, {nt}),
               [nt](const CollapsedEval& c, const Visit& v) {
                 collapsed_for_per_iteration(c, v, OmpSchedule::Dynamic, {nt});
               }});
  for (const int t : {1, 3, 8}) {
    if (!full && t != nt) continue;
    m.push_back({1, "per_thread t=" + std::to_string(t), Schedule::per_thread({t}),
                 [t](const CollapsedEval& c, const Visit& v) {
                   collapsed_for_per_thread(c, v, {t});
                 }});
  }
  for (const i64 chunk : {i64{1}, i64{7}, total, total + 9, kHugeChunk}) {
    m.push_back({2, "chunked c=" + std::to_string(chunk), Schedule::chunked(chunk, {nt}),
                 [chunk, nt](const CollapsedEval& c, const Visit& v) {
                   collapsed_for_chunked(c, chunk, v, {nt});
                 }});
  }
  for (const i64 grain : {i64{0} /* default */, i64{4}, total + 3, kHugeChunk}) {
    m.push_back({3, "taskloop g=" + std::to_string(grain), Schedule::taskloop(grain, {nt}),
                 [grain, nt](const CollapsedEval& c, const Visit& v) {
                   collapsed_for_taskloop(c, grain, v, {nt});
                 }});
  }
  m.push_back({4, "row_segments", Schedule::row_segments({nt}),
               [nt](const CollapsedEval& c, const Visit& v) {
                 collapsed_for_row_segments(c, segment_adapter(c, v), nt);
               }});
  for (const i64 chunk : {i64{3}, total + 5, kHugeChunk}) {
    m.push_back({5, "row_segments_chunked c=" + std::to_string(chunk),
                 Schedule::row_segments_chunked(chunk, {nt}),
                 [chunk, nt](const CollapsedEval& c, const Visit& v) {
                   collapsed_for_row_segments_chunked(c, chunk, segment_adapter(c, v), nt);
                 }});
  }
  // vlen 4 and 8 are the two lane-group widths (vlen = kGroupLanes and
  // 2x/1x of it depending on the abi leg); 1 and 3 force the degenerate
  // and non-divisor block shapes.
  for (const int vlen : {1, 3, 4, 8}) {
    m.push_back({6, "simd_blocks v=" + std::to_string(vlen),
                 Schedule::simd_blocks(vlen, {nt}),
                 [vlen, nt](const CollapsedEval& c, const Visit& v) {
                   collapsed_for_simd_blocks(c, vlen, block_adapter(c, v), nt);
                 }});
  }
  // {8, 3}: chunk smaller than the wide lane group, so every group's
  // trailing chunks route through the 4-lane/scalar tail batching.
  for (const auto& [vlen, chunk] :
       {std::pair<int, i64>{3, 2}, {4, total + 1}, {8, 3}, {8, kHugeChunk}}) {
    m.push_back({7,
                 "simd_blocks_chunked v=" + std::to_string(vlen) +
                     " c=" + std::to_string(chunk),
                 Schedule::simd_blocks_chunked(vlen, chunk, {nt}),
                 [vlen, chunk, nt](const CollapsedEval& c, const Visit& v) {
                   collapsed_for_simd_blocks_chunked(c, vlen, chunk, block_adapter(c, v),
                                                     nt);
                 }});
  }
  for (const i64 W : {i64{1}, i64{2}, i64{7}, total + 6}) {
    m.push_back({8, "warp W=" + std::to_string(W),
                 Schedule::warp_sim(static_cast<int>(W), {nt}),
                 [W, nt](const CollapsedEval& c, const Visit& v) {
                   collapsed_for_warp_sim(c, static_cast<int>(W), v, nt);
                 }});
  }
  for (const int sims : {1, 3, 1000000}) {
    m.push_back({9, "serial_sim n=" + std::to_string(sims), Schedule::serial_sim(sims),
                 [sims](const CollapsedEval& c, const Visit& v) {
                   collapsed_serial_sim(c, sims, v);
                 }});
  }
  // The two composite schemes have no legacy collapsed_for_* wrapper
  // (they were born inside the unified dispatcher), so their legacy
  // runner is empty and check_executors always takes the nrc::run path.
  for (const i64 grain : {i64{0} /* cost-model default */, i64{1}, i64{4}, total + 3,
                          kHugeChunk}) {
    m.push_back({10, "divide_and_conquer g=" + std::to_string(grain),
                 Schedule::divide_and_conquer(grain, {nt}), nullptr});
  }
  // Tile 1 degenerates every tile to one iteration; tile 3 with vlen 8
  // forces lane groups wider than the tile; total + 2 and the huge tile
  // collapse the outer level to a single tile.
  for (const auto& [tile, vlen] :
       {std::pair<i64, int>{1, 4}, {3, 8}, {7, 3}, {total + 2, 4}, {kHugeChunk, 8}}) {
    m.push_back({11,
                 "tiled_two_level t=" + std::to_string(tile) +
                     " v=" + std::to_string(vlen),
                 Schedule::tiled_two_level(tile, vlen, {nt}), nullptr});
  }
  return m;
}

/// Cross-check every execution scheme over one bound domain, through
/// BOTH execution paths: nrc::run(cn, Schedule, visit) — the unified
/// dispatcher, whose internal tuple->segment/block adaptation this
/// exercises — and the legacy collapsed_for_* wrapper (with the
/// adapters the legacy body contracts need).  The two paths must
/// produce the identical tuple multiset and checksum, which pins the
/// wrappers to the dispatcher.  In full mode the whole matrix runs both
/// ways; the long slice rotates a seed-selected group per domain and
/// alternates the path so 10k domains per class stay affordable under
/// sanitizers (every scheme still runs thousands of times per class
/// through each path, just not on every domain).
void check_executors(const CollapsedEval& cn, const std::string& repro, bool full,
                     u64 rotation, FuzzTally* tally) {
  const i64 total = cn.trip_count();
  const DomainObservation ref = testutil::odometer_reference(cn);
  ASSERT_GE(total, 1) << repro;

  const int thread_counts[] = {1, 3, 8};
  const int nt = thread_counts[rotation % 3];
  const int group = static_cast<int>(rotation % 12);
  const bool legacy_path = (rotation / 10) % 2 == 1;

  for (const SchemeCase& sc : scheme_matrix(total, nt, full)) {
    if (!full && sc.group != group) continue;
    if (full || !legacy_path || !sc.legacy) {
      EXPECT_TRUE(testutil::run_scheme_differential(
          cn, ref, [&](auto&& visit) { nrc::run(cn, sc.sched, visit); }))
          << repro << "scheme=" << sc.label << " path=nrc::run("
          << sc.sched.describe() << ")";
      ++tally->scheme_runs;
    }
    if (sc.legacy && (full || legacy_path)) {
      EXPECT_TRUE(testutil::run_scheme_differential(
          cn, ref, [&](auto&& visit) { sc.legacy(cn, Visit(visit)); }))
          << repro << "scheme=" << sc.label << " path=legacy";
      ++tally->scheme_runs;
    }
  }
}

/// Run one seeded case end to end (shared by the sweeps and the
/// env-driven Repro test).
void run_case(const FuzzNest& fc, bool full, FuzzTally* tally) {
  if (fc.expect_empty) return;  // bind() rejection is the recovery fuzzer's job
  CollapseOptions opts;
  opts.calibration = fc.calibration;
  try {
    const Collapsed col = collapse(fc.nest, opts);
    for (const i64 nv : testutil::fuzz_bind_values(fc)) {
      ParamMap p = fc.fixed_params;
      p["N"] = nv;
      const CollapsedEval cn = col.bind(p);
      check_executors(cn, fc.repro() + "\nN=" + std::to_string(nv) + "\n", full,
                      fc.seed + static_cast<u64>(nv), tally);
      if (::testing::Test::HasFatalFailure()) return;
      ++tally->domains;
    }
  } catch (const std::exception& ex) {
    FAIL() << fc.repro() << "unexpected exception: " << ex.what();
  }
}

void run_fuzz(FuzzClass cls, i64 domains_target, u64 seed_base, bool full) {
  FuzzTally tally;
  u64 seed = seed_base;
  while (tally.domains < domains_target) {
    run_case(testutil::make_fuzz_nest(cls, seed++), full, &tally);
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure())
      return;
  }
  std::printf("[exec fuzz %-10s] domains=%lld scheme_runs=%lld\n",
              testutil::fuzz_class_name(cls), static_cast<long long>(tally.domains),
              static_cast<long long>(tally.scheme_runs));
  EXPECT_GT(tally.scheme_runs, 0);
}

// ------------------------------------------------- fast deterministic slice

TEST(ExecutorFuzz, Triangular) {
  run_fuzz(FuzzClass::Triangular, env_i64("NRC_EXEC_FUZZ_FAST_DOMAINS", 30), 0x7100,
           /*full=*/true);
}
TEST(ExecutorFuzz, Tiled) {
  run_fuzz(FuzzClass::Tiled, env_i64("NRC_EXEC_FUZZ_FAST_DOMAINS", 30), 0x7200,
           /*full=*/true);
}
TEST(ExecutorFuzz, Skewed) {
  run_fuzz(FuzzClass::Skewed, env_i64("NRC_EXEC_FUZZ_FAST_DOMAINS", 30), 0x7300,
           /*full=*/true);
}
TEST(ExecutorFuzz, Degenerate) {
  run_fuzz(FuzzClass::Degenerate, env_i64("NRC_EXEC_FUZZ_FAST_DOMAINS", 30), 0x7400,
           /*full=*/true);
}

// ----------------------------------------------------------------- codegen
//
// Round trip through the source-to-source back end: emit the collapsed
// C, compile with the system cc, run, and diff the visited tuples
// against the library's odometer reference.  The serial emission is
// compared tuple-by-tuple in original lexicographic order; the OpenMP
// emission accumulates the same order-insensitive checksum the library
// harness uses (testutil::tuple_mix transliterated into the emitted
// body) so any thread interleaving must still visit the exact multiset.

bool have_cc() { return jit::toolchain_available(); }

/// Write and compile a generated program once through the shared
/// toolchain driver (jit/toolchain.hpp): mkstemp temps with
/// deterministic cleanup, NRC_JIT_CC / CC compiler override, OpenMP
/// flag only when the probe accepts it.  The emitted source does not
/// depend on the parameter values — those arrive via argv, so one
/// binary serves the whole bind sweep.  result.ok is false on compile
/// failure (the compiler log lands in the failure message); the binary
/// is unlinked when the result goes out of scope.
jit::CompileResult compile_program(const std::string& src, const std::string& tag) {
  std::vector<std::string> flags = {"-std=c99", "-O2"};
  const std::string omp = jit::openmp_flag(jit::resolve_compiler());
  if (!omp.empty()) flags.push_back(omp);
  jit::CompileResult res = jit::compile_c(src, flags, ".bin");
  if (!res.ok)
    ADD_FAILURE() << "compilation failed (" << tag << ", " << res.compiler << "):\n"
                  << res.log << "\nsource:\n" << src;
  return res;
}

/// Run a compiled round-trip binary, capturing stdout.
bool run_capture(const std::string& bin_path, const std::string& args, std::string* out) {
  const jit::OwnedPath out_path = jit::make_temp_file(".out");
  if (std::system((bin_path + " " + args + " > " + out_path.path()).c_str()) != 0) {
    ADD_FAILURE() << "generated program failed for args " << args;
    return false;
  }
  std::ifstream f(out_path.path());
  out->assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
  return true;
}

/// The emitted-C transliteration of testutil::tuple_mix for the nest's
/// loop variables, accumulating into the nrc_csum global.
std::string checksum_body(const NestSpec& nest) {
  std::string s;
  s += "unsigned long long __nrc_h = 0x243F6A8885A308D3ULL ^ (0x9E3779B97F4A7C15ULL * " +
       std::to_string(nest.depth()) + "ULL);\n";
  s += "unsigned long long __nrc_x;\n";
  for (const auto& v : nest.loop_vars()) {
    s += "__nrc_x = (unsigned long long)" + v + " + 0x9E3779B97F4A7C15ULL;\n";
    s += "__nrc_x ^= __nrc_x >> 30; __nrc_x *= 0xBF58476D1CE4E5B9ULL;\n";
    s += "__nrc_x ^= __nrc_x >> 27; __nrc_x *= 0x94D049BB133111EBULL;\n";
    s += "__nrc_x ^= __nrc_x >> 31;\n";
    s += "__nrc_h = (__nrc_h ^ __nrc_x) * 0x100000001B3ULL;\n";
  }
  s += "#pragma omp atomic\n";
  s += "nrc_csum += __nrc_h;\n";
  return s;
}

/// printf trace of the tuple, one line per visit, in visit order.
std::string trace_body(const NestSpec& nest) {
  std::string fmt, argl;
  for (const auto& v : nest.loop_vars()) {
    fmt += fmt.empty() ? "%lld" : " %lld";
    argl += ", " + v;
  }
  return "printf(\"" + fmt + "\\n\"" + argl + ");";
}

/// Self-contained C program: the collapsed function plus a main that
/// binds the parameters from argv.
std::string roundtrip_program(const NestProgram& prog, const Collapsed& col,
                              const EmitOptions& opt, bool checksum) {
  std::string s;
  s += "#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n";
  if (checksum) s += "static unsigned long long nrc_csum = 0;\n";
  s += emit_collapsed_function(prog, col, opt);
  s += "int main(int argc, char **argv) {\n";
  int argi = 1;
  std::string call = prog.name + "_collapsed(";
  for (const auto& p : prog.nest.params()) {
    s += "  long long " + p + " = atoll(argv[" + std::to_string(argi++) + "]);\n";
    if (call.back() != '(') call += ", ";
    call += p;
  }
  s += "  (void)argc;\n  " + call + ");\n";
  if (checksum) s += "  printf(\"%llu\\n\", nrc_csum);\n";
  s += "  return 0;\n}\n";
  return s;
}

/// Ordered tuple trace of the library's sequential odometer.
std::string odometer_trace(const CollapsedEval& cn) {
  std::string s;
  const size_t d = static_cast<size_t>(cn.depth());
  i64 idx[kMaxDepth];
  cn.recover(1, {idx, d});
  char buf[32];
  for (i64 pc = 1; pc <= cn.trip_count(); ++pc) {
    for (size_t k = 0; k < d; ++k) {
      std::snprintf(buf, sizeof(buf), "%s%lld", k ? " " : "",
                    static_cast<long long>(idx[k]));
      s += buf;
    }
    s += "\n";
    if (pc < cn.trip_count()) cn.increment({idx, d});
  }
  return s;
}

/// argv values for the emitted main, one per nest parameter in
/// declaration order (the order roundtrip_program reads them).
std::string bind_args(const NestProgram& prog, const ParamMap& pm) {
  std::string s;
  for (const auto& p : prog.nest.params()) {
    if (!s.empty()) s += " ";
    s += std::to_string(pm.at(p));
  }
  return s;
}

/// Round-trip one closed-form-solvable fuzz nest through every emission
/// style, S-shifted nests included — the emitted nrc_wide (__int128)
/// arithmetic keeps the shifted guard walks exact, so they no longer
/// need a skip here.  Returns the number of emitted programs (0 when
/// the nest is skipped: expected-empty or not fully closed form).
int roundtrip_case(const FuzzNest& fc) {
  if (fc.expect_empty) return 0;
  CollapseOptions opts;
  opts.calibration = fc.calibration;
  NestProgram prog;
  prog.name = "fz";
  prog.nest = fc.nest;
  prog.collapse_depth = 0;
  try {
    const Collapsed col = collapse(fc.nest, opts);
    if (!col.fully_closed_form()) return 0;

    int emitted = 0;
    const std::string tag = std::string(testutil::fuzz_class_name(fc.cls)) + "_" +
                            std::to_string(fc.seed);
    struct StyleCase {
      const char* name;
      EmitOptions opt;
    };
    EmitOptions chunked;
    chunked.schedule = Schedule::chunked(5);
    EmitOptions simd;
    simd.schedule = Schedule::simd_blocks(4);
    EmitOptions periter;
    periter.schedule = Schedule::per_iteration();
    EmitOptions warp;
    warp.schedule = Schedule::warp_sim(4);
    const StyleCase styles[] = {{"thread", {}},
                                {"iter", periter},
                                {"chunk", chunked},
                                {"simd", simd}};

    // Serial emission: exact tuple trace in lexicographic order.
    for (const StyleCase& sc : styles) {
      EmitOptions opt = sc.opt;
      opt.parallel = false;
      prog.body = trace_body(fc.nest);
      const std::string src = roundtrip_program(prog, col, opt, /*checksum=*/false);
      const jit::CompileResult bin = compile_program(src, tag + "_" + sc.name);
      if (!bin.ok) return emitted;
      for (const i64 nv : testutil::fuzz_bind_values(fc)) {
        ParamMap pm = fc.fixed_params;
        pm["N"] = nv;
        const CollapsedEval cn = col.bind(pm);
        std::string got;
        if (!run_capture(bin.artifact.path(), bind_args(prog, pm), &got)) return emitted;
        EXPECT_EQ(got, odometer_trace(cn))
            << fc.repro() << "codegen trace diverges, style=" << sc.name << " N=" << nv;
        ++emitted;
      }
    }

    // OpenMP emission: order-insensitive checksum (PerThread and
    // Chunked exercise the firstprivate-recovery and per-chunk-recovery
    // parallel shapes; warp_sim exercises the Schedule-derived
    // schedule(static, 1) coalesced emission; SimdBlocks stays serial
    // above because an atomic inside its `omp simd` lane loop would be
    // non-conforming).
    for (const StyleCase& sc : {StyleCase{"thread_omp", {}}, StyleCase{"chunk_omp", chunked},
                                StyleCase{"warp_omp", warp}}) {
      EmitOptions opt = sc.opt;
      opt.parallel = true;
      prog.body = checksum_body(fc.nest);
      const std::string src = roundtrip_program(prog, col, opt, /*checksum=*/true);
      const jit::CompileResult bin = compile_program(src, tag + "_" + sc.name);
      if (!bin.ok) return emitted;
      for (const i64 nv : testutil::fuzz_bind_values(fc)) {
        ParamMap pm = fc.fixed_params;
        pm["N"] = nv;
        const CollapsedEval cn = col.bind(pm);
        std::string got;
        if (!run_capture(bin.artifact.path(), bind_args(prog, pm), &got)) return emitted;
        const DomainObservation ref = testutil::odometer_reference(cn, /*cap=*/0);
        EXPECT_EQ(got, std::to_string(ref.checksum) + "\n")
            << fc.repro() << "codegen checksum diverges, style=" << sc.name
            << " N=" << nv;
        ++emitted;
      }
    }
    return emitted;
  } catch (const std::exception& ex) {
    ADD_FAILURE() << fc.repro() << "unexpected exception: " << ex.what();
    return 0;
  }
}

void run_roundtrip(i64 programs_target, u64 seed_base) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler available";
  i64 programs = 0;
  for (const FuzzClass cls : testutil::kFuzzClasses) {
    i64 from_class = 0;
    u64 seed = seed_base;
    while (from_class < programs_target) {
      from_class += roundtrip_case(testutil::make_fuzz_nest(cls, seed++));
      if (::testing::Test::HasFailure()) return;
    }
    programs += from_class;
  }
  std::printf("[exec fuzz codegen] programs=%lld\n", static_cast<long long>(programs));
}

TEST(ExecutorFuzz, CodegenRoundTrip) {
  run_roundtrip(env_i64("NRC_EXEC_FUZZ_CODEGEN_PROGRAMS", 24), 0x51);
}

/// Rerun a single seed from a failure message:
///   NRC_FUZZ_CLASS=<name> NRC_FUZZ_SEED=<decimal> \
///     ./nrc_executor_fuzz_test --gtest_filter=ExecutorFuzz.Repro
TEST(ExecutorFuzz, Repro) {
  const char* cls_s = std::getenv("NRC_FUZZ_CLASS");
  const char* seed_s = std::getenv("NRC_FUZZ_SEED");
  if (!cls_s || !seed_s)
    GTEST_SKIP() << "set NRC_FUZZ_CLASS and NRC_FUZZ_SEED to rerun one case";
  FuzzClass cls = FuzzClass::Triangular;
  bool found = false;
  for (const FuzzClass c : testutil::kFuzzClasses) {
    if (std::string(cls_s) == testutil::fuzz_class_name(c)) {
      cls = c;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "unknown NRC_FUZZ_CLASS '" << cls_s << "'";
  FuzzTally tally;
  const FuzzNest fc = testutil::make_fuzz_nest(cls, std::strtoull(seed_s, nullptr, 0));
  std::printf("%s\n", fc.repro().c_str());
  run_case(fc, /*full=*/true, &tally);
  if (have_cc()) roundtrip_case(fc);
}

// ----------------------------------------- long randomized slice (label: long)
//
// NRC_EXEC_FUZZ_DOMAINS domains per class (default 10000), rotating
// through the scheme matrix per domain (every 16th domain runs the full
// matrix); wired into the push-to-main CI sanitize leg, where the whole
// slice runs under ASan/UBSan.

void run_fuzz_long(FuzzClass cls, u64 seed_base) {
  const i64 target = env_i64("NRC_EXEC_FUZZ_DOMAINS", 10000);
  FuzzTally tally;
  u64 seed = seed_base;
  while (tally.domains < target) {
    const FuzzNest fc = testutil::make_fuzz_nest(cls, seed);
    run_case(fc, /*full=*/seed % 16 == 0, &tally);
    ++seed;
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure())
      return;
  }
  std::printf("[exec fuzz %-10s long] domains=%lld scheme_runs=%lld\n",
              testutil::fuzz_class_name(cls), static_cast<long long>(tally.domains),
              static_cast<long long>(tally.scheme_runs));
}

TEST(ExecutorFuzzLong, Triangular) { run_fuzz_long(FuzzClass::Triangular, 0xB100); }
TEST(ExecutorFuzzLong, Tiled) { run_fuzz_long(FuzzClass::Tiled, 0xB200); }
TEST(ExecutorFuzzLong, Skewed) { run_fuzz_long(FuzzClass::Skewed, 0xB300); }
TEST(ExecutorFuzzLong, Degenerate) { run_fuzz_long(FuzzClass::Degenerate, 0xB400); }

TEST(ExecutorFuzzLong, CodegenRoundTrip) {
  run_roundtrip(env_i64("NRC_EXEC_FUZZ_CODEGEN_LONG_PROGRAMS", 120), 0x5151);
}

}  // namespace
}  // namespace nrc
