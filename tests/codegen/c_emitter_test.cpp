// Golden-structure tests for the generated C code (paper Figs 3, 4, 7).
#include "codegen/c_emitter.hpp"

#include <gtest/gtest.h>

namespace nrc {
namespace {

NestProgram correlation_prog() {
  return parse_nest_program(R"(
name correlation
params N
array double a[N][N]
array double b[N][N]
array double c[N][N]
loop i = 0 .. N-1
loop j = i+1 .. N
collapse 2
body {
  for (long k = 0; k < N; k++)
    a[i][j] += b[k][i] * c[k][j];
  a[j][i] = a[i][j];
}
)");
}

NestProgram fig6_prog() {
  return parse_nest_program(R"(
name fig6
params N
array double s[N]
loop i = 0 .. N-1
loop j = 0 .. i+1
loop k = j .. i+1
body {
  s[i] += (double)(j + k);
}
)");
}

TEST(Emitter, OriginalFunctionStructure) {
  const std::string src = emit_original_function(correlation_prog());
  EXPECT_NE(src.find("static void correlation_original(long long N, double (*a)[N], "
                     "double (*b)[N], double (*c)[N])"),
            std::string::npos)
      << src;
  EXPECT_NE(src.find("for (long long i = 0; i < N - 1; i++)"), std::string::npos);
  EXPECT_NE(src.find("for (long long j = i + 1; j < N; j++)"), std::string::npos);
  EXPECT_NE(src.find("a[j][i] = a[i][j];"), std::string::npos);
}

TEST(Emitter, CollapsedPerThreadMirrorsFig4) {
  const NestProgram prog = correlation_prog();
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::per_thread();
  const std::string src = emit_collapsed_function(prog, col, opt);
  // Trip count (N^2 - N)/2, pure integer arithmetic.
  EXPECT_NE(src.find("const long long __nrc_total = "
                     "(long long)(((nrc_wide)N*(nrc_wide)N - (nrc_wide)N) / 2);"),
            std::string::npos)
      << src;
  // Fig. 4 structure: firstprivate flag, recovery guarded by it,
  // incrementation at the end of the body.
  EXPECT_NE(src.find("#pragma omp parallel for firstprivate(__nrc_first) "
                     "private(i, j) schedule(static)"),
            std::string::npos)
      << src;
  EXPECT_NE(src.find("if (__nrc_first)"), std::string::npos);
  EXPECT_NE(src.find("i = (long long)floor("), std::string::npos);
  EXPECT_NE(src.find("sqrt("), std::string::npos);  // degree 2: real sqrt, Fig. 3 style
  EXPECT_EQ(src.find("csqrt("), std::string::npos);
  EXPECT_NE(src.find("j++;"), std::string::npos);
  EXPECT_NE(src.find("if (j >= N)"), std::string::npos);
  EXPECT_NE(src.find("j = i + 1;"), std::string::npos);
}

TEST(Emitter, CollapsedPerIterationMirrorsFig3) {
  const NestProgram prog = correlation_prog();
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::per_iteration();
  const std::string src = emit_collapsed_function(prog, col, opt);
  EXPECT_NE(src.find("#pragma omp parallel for private(i, j) schedule(static)"),
            std::string::npos)
      << src;
  // No incrementation/firstprivate machinery in the naive style.
  EXPECT_EQ(src.find("__nrc_first"), std::string::npos);
  EXPECT_EQ(src.find("j++;"), std::string::npos);
}

TEST(Emitter, CollapsedChunkedMirrorsSectionV) {
  const NestProgram prog = correlation_prog();
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::chunked(256);
  const std::string src = emit_collapsed_function(prog, col, opt);
  EXPECT_NE(src.find("schedule(static, 256)"), std::string::npos) << src;
  EXPECT_NE(src.find("if ((pc - 1) % 256 == 0)"), std::string::npos);
  EXPECT_NE(src.find("j++;"), std::string::npos);
}

TEST(Emitter, CubicNestUsesGuardedRealSolvers) {
  const NestProgram prog = fig6_prog();
  const Collapsed col = collapse(prog.collapsed_nest());
  const std::string src = emit_collapsed_function(prog, col, {});
  // Level 0 recovery (degree 3) goes through the emitted guarded
  // real-arithmetic Cardano helper on the integer-scaled level-equation
  // coefficients — the same formulas and branch the library engine runs
  // (core/real_solvers.hpp), NOT the paper's Fig. 7 C99 complex
  // creal(cpow(...)) form, which diverges from the engine at
  // degenerate/near-discriminant points and floors non-finite values
  // (undefined behaviour).  Regression for the PR 4 emitter fix: these
  // assertions fail if the complex emission comes back.
  EXPECT_NE(src.find("static int nrc_cubic_est("), std::string::npos) << src;
  EXPECT_NE(src.find("nrc_cardano_re("), std::string::npos);
  EXPECT_NE(src.find("const double __nrc_A0 = (double)("), std::string::npos) << src;
  EXPECT_EQ(src.find("creal("), std::string::npos) << src;
  EXPECT_EQ(src.find("csqrt("), std::string::npos);
  EXPECT_EQ(src.find("cpow("), std::string::npos);
  // Degeneration falls back to the level's lower bound, where the exact
  // integer guard walk takes over (the demotion-guard equivalent).
  EXPECT_NE(src.find("? __nrc_est : (0);"), std::string::npos) << src;
  // Innermost recovery stays integer.
  EXPECT_NE(src.find("k = (long long)((j) + (pc - "), std::string::npos) << src;
}

TEST(Emitter, QuarticNestUsesGuardedFerrari) {
  const NestProgram prog = parse_nest_program(R"(
name s4
params N
array double s[N]
loop i = 0 .. N
loop j = i .. N
loop k = j .. N
loop l = k .. N
body { s[i] += 1.0; }
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  const std::string src = emit_collapsed_function(prog, col, {});
  EXPECT_NE(src.find("static int nrc_ferrari_est("), std::string::npos) << src;
  EXPECT_NE(src.find("nrc_ferrari_est(__nrc_A0, __nrc_A1, __nrc_A2, __nrc_A3, "
                     "__nrc_A4, "),
            std::string::npos)
      << src;
  EXPECT_EQ(src.find("creal("), std::string::npos) << src;
  // One copy of the helpers even with several degree >= 3 levels (the
  // preprocessor guard carries the deduplication).
  EXPECT_NE(src.find("#ifndef NRC_REAL_SOLVERS_C"), std::string::npos);
}

TEST(Emitter, QuadraticNestCarriesNoSolverHelpers) {
  // Degree <= 2 recoveries keep the paper's Fig. 3 sqrt form; the
  // helper block would be dead weight in the generated source.
  const NestProgram prog = correlation_prog();
  const Collapsed col = collapse(prog.collapsed_nest());
  const std::string src = emit_collapsed_function(prog, col, {});
  EXPECT_EQ(src.find("nrc_cubic_est"), std::string::npos) << src;
  EXPECT_EQ(src.find("NRC_REAL_SOLVERS_C"), std::string::npos);
}

TEST(Emitter, PartialCollapseKeepsInnerLoops) {
  const NestProgram prog = parse_nest_program(R"(
name partial
params N
array double x[N]
loop i = 0 .. N
loop j = i .. N
loop k = 0 .. N
collapse 2
body { x[k] += 1.0; }
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  const std::string src = emit_collapsed_function(prog, col, {});
  EXPECT_NE(src.find("for (long long k = 0; k < N; k++)"), std::string::npos) << src;
  // k is not in the private clause (declared inside the loop).
  EXPECT_NE(src.find("private(i, j)"), std::string::npos);
}

TEST(Emitter, VerificationProgramIsSelfContained) {
  const NestProgram prog = correlation_prog();
  const Collapsed col = collapse(prog.collapsed_nest());
  const std::string src = emit_verification_program(prog, col, {});
  EXPECT_NE(src.find("#include <stdio.h>"), std::string::npos);
  EXPECT_NE(src.find("int main(int argc, char **argv)"), std::string::npos);
  EXPECT_NE(src.find("correlation_original("), std::string::npos);
  EXPECT_NE(src.find("correlation_collapsed("), std::string::npos);
  EXPECT_NE(src.find("printf(\"OK\\n\");"), std::string::npos);
  // Two copies of every array.
  EXPECT_NE(src.find("a_ref"), std::string::npos);
  EXPECT_NE(src.find("a_col"), std::string::npos);
  // No C99 complex anywhere since the real-solver emission — degree >= 3
  // recoveries ship the guarded Cardano/Ferrari helpers instead.
  EXPECT_EQ(src.find("#include <complex.h>"), std::string::npos);
  const NestProgram cubic = fig6_prog();
  const Collapsed col3 = collapse(cubic.collapsed_nest());
  const std::string src3 = emit_verification_program(cubic, col3, {});
  EXPECT_EQ(src3.find("#include <complex.h>"), std::string::npos);
  EXPECT_NE(src3.find("static int nrc_cubic_est("), std::string::npos);
}

TEST(Emitter, ThrowsWhenClosedFormMissing) {
  NestProgram prog;
  prog.name = "deep";
  prog.nest.param("N");
  prog.nest.loop("a", aff::c(0), aff::v("N"))
      .loop("b", aff::v("a"), aff::v("N"))
      .loop("c", aff::v("b"), aff::v("N"))
      .loop("d", aff::v("c"), aff::v("N"))
      .loop("e", aff::v("d"), aff::v("N"));
  prog.body = "x += 1;";
  const Collapsed col = collapse(prog.collapsed_nest());
  EXPECT_THROW(emit_collapsed_function(prog, col, {}), SolveError);
}

}  // namespace
}  // namespace nrc
