#include "codegen/dsl_parser.hpp"

#include <gtest/gtest.h>

#include "codegen/c_for_parser.hpp"

namespace nrc {
namespace {

const char* kCorrelationDsl = R"(
# correlation kernel, paper Fig. 1
name correlation
params N
array double a[N][N]
array double b[N][N]
array double c[N][N]
loop i = 0 .. N-1
loop j = i+1 .. N
collapse 2
body {
  for (long k = 0; k < N; k++)
    a[i][j] += b[k][i] * c[k][j];
  a[j][i] = a[i][j];
}
)";

TEST(ParseAffine, Basics) {
  EXPECT_EQ(parse_affine("0"), aff::c(0));
  EXPECT_EQ(parse_affine("42"), aff::c(42));
  EXPECT_EQ(parse_affine("i"), aff::v("i"));
  EXPECT_EQ(parse_affine("i + 1"), aff::v("i") + 1);
  EXPECT_EQ(parse_affine("N-1"), aff::v("N") - 1);
  EXPECT_EQ(parse_affine("2*i - N + 7"), 2 * aff::v("i") - aff::v("N") + 7);
  EXPECT_EQ(parse_affine("i*3"), 3 * aff::v("i"));
  EXPECT_EQ(parse_affine("-i"), -aff::v("i"));
  EXPECT_EQ(parse_affine("-(i - N)"), aff::v("N") - aff::v("i"));
  EXPECT_EQ(parse_affine("(i + 1) * 2"), 2 * aff::v("i") + 2);
  EXPECT_EQ(parse_affine("N + 2*i"), aff::v("N") + 2 * aff::v("i"));
}

TEST(ParseAffine, Whitespace) {
  EXPECT_EQ(parse_affine("  i+1 "), aff::v("i") + 1);
  EXPECT_EQ(parse_affine("i\t+\t1"), aff::v("i") + 1);
}

TEST(ParseAffine, Errors) {
  EXPECT_THROW(parse_affine(""), ParseError);
  EXPECT_THROW(parse_affine("i *"), ParseError);
  EXPECT_THROW(parse_affine("i * j"), ParseError);  // non-affine
  EXPECT_THROW(parse_affine("(i"), ParseError);
  EXPECT_THROW(parse_affine("i + + j"), ParseError);
  EXPECT_THROW(parse_affine("i 1"), ParseError);  // trailing garbage
}

TEST(ParseProgram, Correlation) {
  const NestProgram prog = parse_nest_program(kCorrelationDsl);
  EXPECT_EQ(prog.name, "correlation");
  EXPECT_EQ(prog.nest.depth(), 2);
  EXPECT_EQ(prog.collapse_depth, 2);
  EXPECT_EQ(prog.effective_collapse_depth(), 2);
  ASSERT_EQ(prog.arrays.size(), 3u);
  EXPECT_EQ(prog.arrays[0].name, "a");
  EXPECT_EQ(prog.arrays[0].elem, "double");
  EXPECT_EQ(prog.arrays[0].dims, (std::vector<std::string>{"N", "N"}));
  EXPECT_EQ(prog.nest.at(1).lower, aff::v("i") + 1);
  EXPECT_NE(prog.body.find("a[j][i] = a[i][j];"), std::string::npos);
}

TEST(ParseProgram, CollapseDefaultsToAllLoops) {
  const NestProgram prog = parse_nest_program(R"(
loop i = 0 .. 10
loop j = i .. 10
body { x += 1; }
)");
  EXPECT_EQ(prog.collapse_depth, 0);
  EXPECT_EQ(prog.effective_collapse_depth(), 2);
  EXPECT_EQ(prog.collapsed_nest().depth(), 2);
}

TEST(ParseProgram, PartialCollapseSubNest) {
  const NestProgram prog = parse_nest_program(R"(
params N
loop i = 0 .. N
loop j = i .. N
loop k = 0 .. N
collapse 2
body { s += 1; }
)");
  EXPECT_EQ(prog.collapsed_nest().depth(), 2);
  EXPECT_EQ(prog.collapsed_nest().at(1).var, "j");
}

TEST(ParseProgram, MultilineBodyBraceBalance) {
  const NestProgram prog = parse_nest_program(R"(
loop i = 0 .. 4
body {
  if (i > 0) {
    x[i] = x[i-1];
  }
}
)");
  EXPECT_NE(prog.body.find("if (i > 0) {"), std::string::npos);
  EXPECT_EQ(std::count(prog.body.begin(), prog.body.end(), '{'), 1);
  EXPECT_EQ(std::count(prog.body.begin(), prog.body.end(), '}'), 1);
}

TEST(ParseProgram, CommentsAndBlankLinesIgnored) {
  EXPECT_NO_THROW(parse_nest_program(R"(
# full line comment

loop i = 0 .. 4   # trailing comment
body { x += i; }
)"));
}

TEST(ParseProgram, Errors) {
  EXPECT_THROW(parse_nest_program("body { }"), ParseError);          // no loops
  EXPECT_THROW(parse_nest_program("loop i = 0 .. 4\n"), ParseError);  // no body
  EXPECT_THROW(parse_nest_program("loop i = 0 , 4\nbody { }\n"), ParseError);
  EXPECT_THROW(parse_nest_program("loop i 0 .. 4\nbody { }\n"), ParseError);
  EXPECT_THROW(parse_nest_program("frobnicate\n"), ParseError);
  EXPECT_THROW(parse_nest_program("loop i = 0 .. 4\ncollapse 3\nbody { x; }\n"),
               ParseError);  // collapse > depth
  EXPECT_THROW(parse_nest_program("loop i = 0 .. 4\ncollapse 0\nbody { x; }\n"),
               ParseError);
  EXPECT_THROW(parse_nest_program("loop i = 0 .. 4\nbody x += i;\n"), ParseError);
  EXPECT_THROW(parse_nest_program("loop i = 0 .. 4\nbody {\n x;\n"), ParseError);
  EXPECT_THROW(parse_nest_program("array double\nloop i = 0 .. 4\nbody { x; }\n"),
               ParseError);
  EXPECT_THROW(parse_nest_program("array double a\nloop i = 0 .. 4\nbody { x; }\n"),
               ParseError);
}

TEST(RenderProgram, RoundTripsThroughParser) {
  const NestProgram a = parse_nest_program(kCorrelationDsl);
  const std::string rendered = render_nest_program(a);
  const NestProgram b = parse_nest_program(rendered);
  EXPECT_EQ(b.name, a.name);
  EXPECT_EQ(b.collapse_depth, a.collapse_depth);
  EXPECT_EQ(b.nest.depth(), a.nest.depth());
  for (int k = 0; k < a.nest.depth(); ++k) {
    EXPECT_EQ(b.nest.at(k).var, a.nest.at(k).var);
    EXPECT_EQ(b.nest.at(k).lower, a.nest.at(k).lower);
    EXPECT_EQ(b.nest.at(k).upper, a.nest.at(k).upper);
  }
  EXPECT_EQ(b.body, a.body);
  ASSERT_EQ(b.arrays.size(), a.arrays.size());
  for (size_t q = 0; q < a.arrays.size(); ++q) {
    EXPECT_EQ(b.arrays[q].name, a.arrays[q].name);
    EXPECT_EQ(b.arrays[q].dims, a.arrays[q].dims);
  }
}

TEST(RenderProgram, CForInputSurvivesDslRoundTrip) {
  // C front end -> DSL text -> DSL parser: the tool's save path.
  const NestProgram a = parse_c_for_nest(R"(
#pragma omp parallel for collapse(2)
for (i = 0; i < N; i++)
  for (j = i; j < N + 2*i; j++)
    out[i][j - i] += 1.0;
)");
  const NestProgram b = parse_nest_program(render_nest_program(a));
  EXPECT_EQ(b.nest.depth(), 2);
  EXPECT_EQ(b.nest.at(1).upper, aff::v("N") + 2 * aff::v("i"));
  EXPECT_EQ(b.body, a.body);
}

TEST(ParseProgram, ValidatesNestModel) {
  // Bound referencing an inner iterator must be rejected via validate().
  EXPECT_THROW(parse_nest_program(R"(
params N
loop i = 0 .. j
loop j = 0 .. N
body { x; }
)"),
               SpecError);
}

}  // namespace
}  // namespace nrc
