// End-to-end integration: emit the verification program for several nest
// programs, compile each with the system C compiler, run it, and expect
// "OK".  This is the closest possible reproduction of the paper's
// source-to-source tool pipeline.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "codegen/c_emitter.hpp"
#include "core/real_solvers.hpp"
#include "jit/toolchain.hpp"
#include "symbolic/print_c.hpp"

namespace nrc {
namespace {

bool have_cc() { return jit::toolchain_available(); }

/// Write, compile and run a generated program through the shared
/// toolchain driver (jit/toolchain.hpp — mkstemp temps, deterministic
/// cleanup, NRC_JIT_CC / CC override); returns the exit status.
int compile_and_run(const std::string& src, const std::string& tag,
                    const std::string& args) {
  std::vector<std::string> flags = {"-std=c99", "-O2"};
  const std::string omp = jit::openmp_flag(jit::resolve_compiler());
  if (!omp.empty()) flags.push_back(omp);
  const jit::CompileResult res = jit::compile_c(src, flags, ".bin");
  if (!res.ok) {
    ADD_FAILURE() << "compilation failed (" << tag << ", " << res.compiler << "):\n"
                  << res.log << "\nsource:\n" << src;
    return -1;
  }
  return std::system((res.artifact.path() + " " + args + " > /dev/null").c_str());
}

class IntegrationCompile : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler available";
  }
};

const char* kCorrelation = R"(
name correlation
params N
array double a[N][N]
array double b[N][N]
array double c[N][N]
loop i = 0 .. N-1
loop j = i+1 .. N
collapse 2
body {
  for (long k = 0; k < N; k++)
    a[i][j] += b[k][i] * c[k][j];
  a[j][i] = a[i][j];
}
)";

TEST_F(IntegrationCompile, CorrelationPerThread) {
  const NestProgram prog = parse_nest_program(kCorrelation);
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::per_thread();
  for (const char* n : {"2", "17", "64"}) {
    EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, opt),
                              std::string("corr_thread_") + n, n),
              0)
        << "N=" << n;
  }
}

TEST_F(IntegrationCompile, CorrelationPerIteration) {
  const NestProgram prog = parse_nest_program(kCorrelation);
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::per_iteration();
  EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, opt), "corr_iter", "33"),
            0);
}

TEST_F(IntegrationCompile, CorrelationChunked) {
  const NestProgram prog = parse_nest_program(kCorrelation);
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::chunked(64);
  EXPECT_EQ(
      compile_and_run(emit_verification_program(prog, col, opt), "corr_chunk", "41"), 0);
}

TEST_F(IntegrationCompile, TetrahedralCubicComplexRecovery) {
  // The Fig. 6/7 case: degree-3 recovery through C99 complex arithmetic.
  // All three loops are collapsed, so the body must touch a distinct
  // cell per (i, j, k) — accumulating into s[i][j] would race across
  // thread boundaries (the collapsed loops are executed in parallel).
  const NestProgram prog = parse_nest_program(R"(
name tetra
params N
array double s[N][N][N]
loop i = 0 .. N-1
loop j = 0 .. i+1
loop k = j .. i+1
body {
  s[i][j][k] = s[i][j][k] + (double)(k + 1);
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  for (const char* n : {"3", "12", "30"}) {
    EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, {}),
                              std::string("tetra_") + n, n),
              0)
        << "N=" << n;
  }
}

TEST_F(IntegrationCompile, TrapezoidalPartialCollapse) {
  const NestProgram prog = parse_nest_program(R"(
name trap
params N
array double out[N][3*N]
loop i = 0 .. N
loop j = i .. 3*i + N
collapse 2
body {
  out[i][j - i] = (double)(i * 31 + j);
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, {}), "trap", "25"), 0);
}

TEST_F(IntegrationCompile, QuarticSimplexRecovery) {
  // 4-deep simplex: the outermost recovery is a quartic root (Ferrari),
  // the deepest closed form the paper supports (§IV-B limit).
  // (Four collapsed loops: the body writes a distinct 4-D cell per
  // iteration so parallel execution stays race-free.)
  const NestProgram prog = parse_nest_program(R"(
name simplex4
params N
array double s[N][N][N][N]
loop i = 0 .. N
loop j = i .. N
loop k = j .. N
loop l = k .. N
body {
  s[i][j][k][l] = (double)(k - l + 2) + 0.5 * s[i][j][k][l];
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  ASSERT_TRUE(col.fully_closed_form()) << col.describe();
  for (const char* n : {"4", "11", "23"}) {
    EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, {}),
                              std::string("simplex4_") + n, n),
              0)
        << "N=" << n;
  }
}

TEST_F(IntegrationCompile, ShiftedBoundsAndChunkStyle) {
  const NestProgram prog = parse_nest_program(R"(
name shifted
params N
array double x[2*N + 8][2*N + 8]
loop i = 3 .. N + 3
loop j = i - 2 .. N + i
body {
  x[i][j - i + 2] = (double)(i * 7 + j);
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::chunked(32);
  EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, opt), "shifted", "21"),
            0);
}

/// Hexadecimal double literal — bit-exact through the C parser.
std::string hexd(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// The emitted guarded real solvers must return byte-identical
/// (ok, estimate) pairs to the library's double-precision
/// cubic_estimate / ferrari_estimate on every branch of every
/// coefficient set — the codegen/engine contract the PR 3 emitter
/// violated by printing the C99 complex creal(cpow(...)) estimate
/// instead.  The sets are PR 3's Ferrari edge-case families
/// (biquadratic / repeated / near-discriminant / clustered /
/// degenerate-leading) plus seeded random quartics and cubics across
/// three magnitude regimes; all 12 Ferrari branches and all 3 Cardano
/// branches run for each.  Fails when the emitter's solver
/// transliteration drifts from core/real_solvers.hpp in any operation,
/// ordering, or constant.
TEST_F(IntegrationCompile, EmittedRealSolversByteIdenticalOn12BranchFamilies) {
  std::vector<std::array<double, 5>> quartics = {
      {4, 0, -5, 0, 1},          // biquadratic (x^2-1)(x^2-4): w = 0 resolvent root
      {36, -12, -11, 2, 1},      // repeated roots (x-2)^2 (x+3)^2: zero discriminant
      {35, -12, -11, 2, 1},      // near-zero resolvent discriminant (low side)
      {37, -12, -11, 2, 1},      // near-zero resolvent discriminant (high side)
      {-392, -231, 139, -21, 1}, // clustered real roots 7, 7, 8, -1
      {1, 2, 3, 4, 0},           // degenerate leading coefficient: never estimates
  };
  std::vector<std::array<double, 4>> cubics = {
      {0, 0, 0, 1},  // triple root at 0
      {-6, 11, -6, 1},
  };
  std::mt19937_64 rng(20260726);
  for (int iter = 0; iter < 60; ++iter) {
    const i64 m = iter % 3 == 0 ? 9 : iter % 3 == 1 ? 1000 : 2000000;
    std::array<double, 5> A;
    for (auto& a : A)
      a = static_cast<double>(static_cast<i64>(rng() % static_cast<u64>(2 * m + 1)) - m);
    if (A[4] == 0) A[4] = 1;
    if (iter % 7 == 0) A[3] = A[1] = 0;  // biquadratic slice
    quartics.push_back(A);
    std::array<double, 4> C;
    for (auto& c : C)
      c = static_cast<double>(static_cast<i64>(rng() % static_cast<u64>(2 * m + 1)) - m);
    if (C[3] == 0) C[3] = 1;
    cubics.push_back(C);
  }

  // Library side: the double-precision instantiations the lane engines
  // (and now the emitted C) run.
  std::string expect;
  char line[64];
  for (const auto& A : quartics) {
    for (int br = 0; br < 12; ++br) {
      i64 est = -777;
      const bool ok = ferrari_estimate<double>(A.data(), br, &est);
      std::snprintf(line, sizeof(line), "%d %lld\n", ok ? 1 : 0,
                    static_cast<long long>(ok ? est : -777));
      expect += line;
    }
  }
  for (const auto& C : cubics) {
    for (int br = 0; br < 3; ++br) {
      i64 est = -777;
      const bool ok = cubic_estimate<double>(C.data(), br, &est);
      std::snprintf(line, sizeof(line), "%d %lld\n", ok ? 1 : 0,
                    static_cast<long long>(ok ? est : -777));
      expect += line;
    }
  }

  // Emitted side: the helpers verbatim as the emitter ships them, driven
  // over the same sets (embedded as hex-float literals, bit-exact).
  std::string src;
  src += "#include <stdio.h>\n#include <math.h>\n";
  src += real_solver_helpers_c();
  src += "int main(void) {\n";
  src += "  static const double Q[][5] = {\n";
  for (const auto& A : quartics) {
    src += "    {";
    for (int e = 0; e < 5; ++e) src += (e ? ", " : "") + hexd(A[static_cast<size_t>(e)]);
    src += "},\n";
  }
  src += "  };\n";
  src += "  static const double C[][4] = {\n";
  for (const auto& Cc : cubics) {
    src += "    {";
    for (int e = 0; e < 4; ++e) src += (e ? ", " : "") + hexd(Cc[static_cast<size_t>(e)]);
    src += "},\n";
  }
  src += "  };\n";
  src += "  for (unsigned i = 0; i < sizeof(Q) / sizeof(Q[0]); i++)\n";
  src += "    for (int br = 0; br < 12; br++) {\n";
  src += "      long long est = -777;\n";
  src += "      int ok = nrc_ferrari_est(Q[i][0], Q[i][1], Q[i][2], Q[i][3], Q[i][4],\n";
  src += "                               br, &est);\n";
  src += "      printf(\"%d %lld\\n\", ok, ok ? est : (long long)-777);\n";
  src += "    }\n";
  src += "  for (unsigned i = 0; i < sizeof(C) / sizeof(C[0]); i++)\n";
  src += "    for (int br = 0; br < 3; br++) {\n";
  src += "      long long est = -777;\n";
  src += "      int ok = nrc_cubic_est(C[i][0], C[i][1], C[i][2], C[i][3], br, &est);\n";
  src += "      printf(\"%d %lld\\n\", ok, ok ? est : (long long)-777);\n";
  src += "    }\n";
  src += "  return 0;\n}\n";

  const jit::CompileResult res = jit::compile_c(src, {"-std=c99", "-O2"}, ".bin");
  ASSERT_TRUE(res.ok) << res.log << "\nsource:\n" << src;
  const jit::OwnedPath out_path = jit::make_temp_file(".out");
  ASSERT_EQ(std::system((res.artifact.path() + " > " + out_path.path()).c_str()), 0);
  std::ifstream f(out_path.path());
  const std::string got{std::istreambuf_iterator<char>(f),
                        std::istreambuf_iterator<char>()};
  EXPECT_EQ(got, expect);
}

TEST_F(IntegrationCompile, RhomboidalShape) {
  const NestProgram prog = parse_nest_program(R"(
name rhombo
params N
array double out[N][2*N]
loop i = 0 .. N
loop j = i .. i + N
body {
  out[i][j - i] += 1.5;
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, {}), "rhombo", "19"), 0);
}

TEST_F(IntegrationCompile, ShiftedNestPast2To32UsesWideArithmetic) {
  // S just past 2^33 (not a power of two, so S^2 rounds in double):
  // every recovered index exceeds 2^32 — silently truncated if the
  // emitted code declared them `long` on an LLP64 target — and the
  // guard-walk ranking products reach S^2 ~ 7.4e19, past the i64 range,
  // exact only through the emitted nrc_wide (__int128) arithmetic.
  // Regression for the S-shifted emitter overflow bug.
  const NestProgram prog = parse_nest_program(R"(
name farshift
params S
array double out[4][6]
loop i = S .. S+4
loop j = i .. S+6
body {
  out[i - S][j - i] += 1.0;
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, {}), "farshift",
                            "8589934611"),
            0);
}

}  // namespace
}  // namespace nrc
