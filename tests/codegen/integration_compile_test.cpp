// End-to-end integration: emit the verification program for several nest
// programs, compile each with the system C compiler, run it, and expect
// "OK".  This is the closest possible reproduction of the paper's
// source-to-source tool pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "codegen/c_emitter.hpp"

namespace nrc {
namespace {

bool have_cc() { return std::system("cc --version > /dev/null 2>&1") == 0; }

/// Write, compile and run a generated program; returns the exit status.
int compile_and_run(const std::string& src, const std::string& tag,
                    const std::string& args) {
  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/nrc_" + tag + ".c";
  const std::string bin_path = dir + "/nrc_" + tag + ".bin";
  {
    std::ofstream out(c_path);
    out << src;
  }
  const std::string compile =
      "cc -std=c99 -O2 -fopenmp -o " + bin_path + " " + c_path + " -lm 2>" + dir +
      "/nrc_" + tag + ".cc.log";
  if (std::system(compile.c_str()) != 0) {
    std::ifstream log(dir + "/nrc_" + tag + ".cc.log");
    std::string line;
    std::string all;
    while (std::getline(log, line)) all += line + "\n";
    ADD_FAILURE() << "compilation failed:\n" << all << "\nsource:\n" << src;
    return -1;
  }
  return std::system((bin_path + " " + args + " > /dev/null").c_str());
}

class IntegrationCompile : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler available";
  }
};

const char* kCorrelation = R"(
name correlation
params N
array double a[N][N]
array double b[N][N]
array double c[N][N]
loop i = 0 .. N-1
loop j = i+1 .. N
collapse 2
body {
  for (long k = 0; k < N; k++)
    a[i][j] += b[k][i] * c[k][j];
  a[j][i] = a[i][j];
}
)";

TEST_F(IntegrationCompile, CorrelationPerThread) {
  const NestProgram prog = parse_nest_program(kCorrelation);
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.style = RecoveryStyle::PerThread;
  for (const char* n : {"2", "17", "64"}) {
    EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, opt),
                              std::string("corr_thread_") + n, n),
              0)
        << "N=" << n;
  }
}

TEST_F(IntegrationCompile, CorrelationPerIteration) {
  const NestProgram prog = parse_nest_program(kCorrelation);
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.style = RecoveryStyle::PerIteration;
  EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, opt), "corr_iter", "33"),
            0);
}

TEST_F(IntegrationCompile, CorrelationChunked) {
  const NestProgram prog = parse_nest_program(kCorrelation);
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.style = RecoveryStyle::Chunked;
  opt.chunk = 64;
  EXPECT_EQ(
      compile_and_run(emit_verification_program(prog, col, opt), "corr_chunk", "41"), 0);
}

TEST_F(IntegrationCompile, TetrahedralCubicComplexRecovery) {
  // The Fig. 6/7 case: degree-3 recovery through C99 complex arithmetic.
  // All three loops are collapsed, so the body must touch a distinct
  // cell per (i, j, k) — accumulating into s[i][j] would race across
  // thread boundaries (the collapsed loops are executed in parallel).
  const NestProgram prog = parse_nest_program(R"(
name tetra
params N
array double s[N][N][N]
loop i = 0 .. N-1
loop j = 0 .. i+1
loop k = j .. i+1
body {
  s[i][j][k] = s[i][j][k] + (double)(k + 1);
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  for (const char* n : {"3", "12", "30"}) {
    EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, {}),
                              std::string("tetra_") + n, n),
              0)
        << "N=" << n;
  }
}

TEST_F(IntegrationCompile, TrapezoidalPartialCollapse) {
  const NestProgram prog = parse_nest_program(R"(
name trap
params N
array double out[N][3*N]
loop i = 0 .. N
loop j = i .. 3*i + N
collapse 2
body {
  out[i][j - i] = (double)(i * 31 + j);
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, {}), "trap", "25"), 0);
}

TEST_F(IntegrationCompile, QuarticSimplexRecovery) {
  // 4-deep simplex: the outermost recovery is a quartic root (Ferrari),
  // the deepest closed form the paper supports (§IV-B limit).
  // (Four collapsed loops: the body writes a distinct 4-D cell per
  // iteration so parallel execution stays race-free.)
  const NestProgram prog = parse_nest_program(R"(
name simplex4
params N
array double s[N][N][N][N]
loop i = 0 .. N
loop j = i .. N
loop k = j .. N
loop l = k .. N
body {
  s[i][j][k][l] = (double)(k - l + 2) + 0.5 * s[i][j][k][l];
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  ASSERT_TRUE(col.fully_closed_form()) << col.describe();
  for (const char* n : {"4", "11", "23"}) {
    EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, {}),
                              std::string("simplex4_") + n, n),
              0)
        << "N=" << n;
  }
}

TEST_F(IntegrationCompile, ShiftedBoundsAndChunkStyle) {
  const NestProgram prog = parse_nest_program(R"(
name shifted
params N
array double x[2*N + 8][2*N + 8]
loop i = 3 .. N + 3
loop j = i - 2 .. N + i
body {
  x[i][j - i + 2] = (double)(i * 7 + j);
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.style = RecoveryStyle::Chunked;
  opt.chunk = 32;
  EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, opt), "shifted", "21"),
            0);
}

TEST_F(IntegrationCompile, RhomboidalShape) {
  const NestProgram prog = parse_nest_program(R"(
name rhombo
params N
array double out[N][2*N]
loop i = 0 .. N
loop j = i .. i + N
body {
  out[i][j - i] += 1.5;
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EXPECT_EQ(compile_and_run(emit_verification_program(prog, col, {}), "rhombo", "19"), 0);
}

}  // namespace
}  // namespace nrc
