#include "codegen/c_for_parser.hpp"

#include <gtest/gtest.h>

#include "core/collapse.hpp"
#include "core/validate.hpp"

namespace nrc {
namespace {

TEST(CForParser, PaperFig1Correlation) {
  const NestProgram prog = parse_c_for_nest(R"(
#pragma omp parallel for private(j, k) schedule(static) collapse(2)
for (i = 0; i < N-1; i++)
  for (j = i+1; j < N; j++) {
    for (k = 0; k < N; k++)
      a[i][j] += b[k][i] * c[k][j];
    a[j][i] = a[i][j];
  }
)");
  EXPECT_EQ(prog.nest.depth(), 2);
  EXPECT_EQ(prog.collapse_depth, 2);
  EXPECT_EQ(prog.nest.params(), (std::vector<std::string>{"N"}));
  EXPECT_EQ(prog.nest.at(0).upper, aff::v("N") - 1);
  EXPECT_EQ(prog.nest.at(1).lower, aff::v("i") + 1);
  EXPECT_NE(prog.body.find("a[j][i] = a[i][j];"), std::string::npos);
}

TEST(CForParser, DeclarationsAndInclusiveBounds) {
  const NestProgram prog = parse_c_for_nest(R"(
for (long i = 0; i <= N; i++)
  for (int j = i; j < 2*N; ++j)
    x[i][j] = 1;
)");
  EXPECT_EQ(prog.nest.depth(), 2);
  // i <= N normalizes to exclusive upper N+1.
  EXPECT_EQ(prog.nest.at(0).upper, aff::v("N") + 1);
  EXPECT_EQ(prog.body, "x[i][j] = 1;");
  EXPECT_EQ(prog.collapse_depth, 0);  // no collapse clause: all loops
}

TEST(CForParser, StepSpellings) {
  for (const char* step : {"i++", "++i", "i += 1", "i = i + 1"}) {
    const std::string src =
        std::string("for (i = 0; i < N; ") + step + ")\n  x[i] = 1;\n";
    EXPECT_NO_THROW(parse_c_for_nest(src)) << step;
  }
  EXPECT_THROW(parse_c_for_nest("for (i = 0; i < N; i += 2)\n x[i]=1;\n"), ParseError);
  EXPECT_THROW(parse_c_for_nest("for (i = 0; i < N; i--)\n x[i]=1;\n"), ParseError);
}

TEST(CForParser, CommentsAreSkipped) {
  const NestProgram prog = parse_c_for_nest(R"(
/* outer */ for (i = 0; i < N; i++)  // row
  for (j = i; j < N; j++)            /* col */
  {
    y[i] += j;
  }
)");
  EXPECT_EQ(prog.nest.depth(), 2);
  EXPECT_EQ(prog.body, "y[i] += j;");
}

TEST(CForParser, ThreeDeepWithPartialCollapse) {
  const NestProgram prog = parse_c_for_nest(R"(
#pragma omp parallel for collapse(2)
for (i = 0; i < N; i++)
  for (j = i; j < N; j++)
    for (k = 0; k < M; k++)
      s += A[i][j][k];
)");
  EXPECT_EQ(prog.nest.depth(), 3);
  EXPECT_EQ(prog.effective_collapse_depth(), 2);
  // Parameters inferred from bounds only (M and N, not s/A).
  EXPECT_EQ(prog.nest.params(), (std::vector<std::string>{"M", "N"}));
  EXPECT_EQ(prog.collapsed_nest().depth(), 2);
}

TEST(CForParser, Errors) {
  EXPECT_THROW(parse_c_for_nest("x = 1;"), ParseError);             // no for
  EXPECT_THROW(parse_c_for_nest("for (i = 0; i > N; i++) x;"), ParseError);
  EXPECT_THROW(parse_c_for_nest("for (i = 0; j < N; i++) x;"), ParseError);
  EXPECT_THROW(parse_c_for_nest("for (i = 0; i < N; i++) { x; "), ParseError);
  EXPECT_THROW(parse_c_for_nest("for (i = 0; i < N; i++)\n"), ParseError);  // empty body
  EXPECT_THROW(parse_c_for_nest(
                   "#pragma omp parallel for collapse(3)\n"
                   "for (i = 0; i < N; i++) for (j = 0; j < N; j++) x;"),
               ParseError);  // collapse > depth
}

TEST(CForParser, RoundTripThroughCollapseAndValidate) {
  const NestProgram prog = parse_c_for_nest(R"(
for (i = 0; i < N; i++)
  for (j = i; j < N + 2*i; j++)
    out[i][j] = 1;
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  const auto rep = validate_collapsed(col, {{"N", 15}});
  EXPECT_TRUE(rep.ok) << rep.first_error;
}

}  // namespace
}  // namespace nrc
