// Golden-structure and integration tests for the §VI-A SimdBlocks
// code-generation style.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "codegen/c_emitter.hpp"

namespace nrc {
namespace {

NestProgram utma_prog() {
  return parse_nest_program(R"(
name utma
params N
array double a[N][N]
array double b[N][N]
array double c[N][N]
loop i = 0 .. N
loop j = i .. N
body {
  c[i][j] = a[i][j] + b[i][j];
}
)");
}

TEST(SimdEmit, StructureMirrorsSectionVIA) {
  const NestProgram prog = utma_prog();
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::simd_blocks(8);
  const std::string src = emit_collapsed_function(prog, col, opt);
  // Block stride on the pc loop.
  EXPECT_NE(src.find("for (long long pc = 1; pc <= __nrc_total; pc += 8)"),
            std::string::npos)
      << src;
  // Precomputed tuple arrays + incrementation.
  EXPECT_NE(src.find("long long __nrc_T_i[8];"), std::string::npos);
  EXPECT_NE(src.find("long long __nrc_T_j[8];"), std::string::npos);
  EXPECT_NE(src.find("__nrc_T_i[__v] = i;"), std::string::npos);
  EXPECT_NE(src.find("j++;"), std::string::npos);
  // The simd body rebinds the lane's indices.
  EXPECT_NE(src.find("#pragma omp simd"), std::string::npos);
  EXPECT_NE(src.find("long long i = __nrc_T_i[__v];"), std::string::npos);
  // One recovery per thread (firstprivate flag).
  EXPECT_NE(src.find("firstprivate(__nrc_first)"), std::string::npos);
}

TEST(SimdEmit, CompilesAndVerifies) {
  if (std::system("cc --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no system C compiler";
  const NestProgram prog = utma_prog();
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::simd_blocks(4);
  const std::string dir = ::testing::TempDir();
  {
    std::ofstream out(dir + "/nrc_simd.c");
    out << emit_verification_program(prog, col, opt);
  }
  ASSERT_EQ(std::system(("cc -std=c99 -O2 -fopenmp -o " + dir + "/nrc_simd.bin " + dir +
                         "/nrc_simd.c -lm")
                            .c_str()),
            0);
  for (const char* n : {"1", "5", "37", "64"}) {
    EXPECT_EQ(std::system((dir + "/nrc_simd.bin " + n + " > /dev/null").c_str()), 0)
        << "N=" << n;
  }
}

TEST(SimdEmit, PartialCollapseWithInnerLoopCompiles) {
  if (std::system("cc --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no system C compiler";
  const NestProgram prog = parse_nest_program(R"(
name corrsimd
params N
array double a[N][N]
array double b[N][N]
loop i = 0 .. N-1
loop j = i+1 .. N
collapse 2
body {
  double acc = 0.0;
  for (long k = 0; k < N; k++)
    acc += b[i][k] * b[j][k];
  a[i][j] = acc;
}
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::simd_blocks(8);
  const std::string dir = ::testing::TempDir();
  {
    std::ofstream out(dir + "/nrc_simd2.c");
    out << emit_verification_program(prog, col, opt);
  }
  ASSERT_EQ(std::system(("cc -std=c99 -O2 -fopenmp -o " + dir + "/nrc_simd2.bin " + dir +
                         "/nrc_simd2.c -lm")
                            .c_str()),
            0);
  EXPECT_EQ(std::system((dir + "/nrc_simd2.bin 29 > /dev/null").c_str()), 0);
}

}  // namespace
}  // namespace nrc
