// The compiled recovery engine: degree-specialized solvers, bytecode
// programs and batched block recovery must agree exactly with the
// all-integer binary-search recovery (and with the seed-era interpreter)
// over full domains.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "kernels/registry.hpp"

namespace nrc {
namespace {

void expect_engine_matches_search(const CollapsedEval& cn, const std::string& tag) {
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> via_engine(d), via_interp(d), via_search(d);
  for (i64 pc = 1; pc <= cn.trip_count(); ++pc) {
    cn.recover(pc, via_engine);
    cn.recover_interpreted(pc, via_interp);
    cn.recover_search(pc, via_search);
    ASSERT_EQ(via_engine, via_search) << tag << " pc=" << pc;
    ASSERT_EQ(via_interp, via_search) << tag << " (interpreter) pc=" << pc;
  }
}

void expect_blocks_match_search(const CollapsedEval& cn, i64 block, const std::string& tag) {
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out(static_cast<size_t>(block) * d);
  std::vector<i64> via_search(d);
  for (i64 lo = 1; lo <= cn.trip_count(); lo += block) {
    const i64 got = cn.recover_block(lo, block, out);
    ASSERT_EQ(got, std::min<i64>(block, cn.trip_count() - lo + 1)) << tag << " lo=" << lo;
    for (i64 r = 0; r < got; ++r) {
      cn.recover_search(lo + r, via_search);
      for (size_t q = 0; q < d; ++q)
        ASSERT_EQ(out[static_cast<size_t>(r) * d + q], via_search[q])
            << tag << " block=" << block << " pc=" << lo + r << " dim=" << q;
    }
  }
}

TEST(RecoveryEngine, MatchesSearchOnEveryKernelNest) {
  for (const auto& name : kernel_names()) {
    auto kernel = make_kernel(name);
    kernel->prepare(0.0);  // floor sizes: full domains stay test-sized
    const Collapsed col = collapse(kernel->collapsed_spec());
    const CollapsedEval cn = col.bind(kernel->bound_params());
    expect_engine_matches_search(cn, name);
  }
}

TEST(RecoveryEngine, BlocksMatchSearchOnEveryKernelNest) {
  for (const auto& name : kernel_names()) {
    auto kernel = make_kernel(name);
    kernel->prepare(0.0);
    const Collapsed col = collapse(kernel->collapsed_spec());
    const CollapsedEval cn = col.bind(kernel->bound_params());
    for (i64 block : {i64{1}, i64{7}, i64{64}, cn.trip_count()})
      expect_blocks_match_search(cn, block, name);
  }
}

TEST(RecoveryEngine, MatchesSearchOnAllShapes) {
  // The shape menagerie exercises every solver kind: exact-division
  // (degree 1), guarded-quadratic, bytecode programs (degrees 3 and 4).
  for (const auto& sc : testutil::closed_form_shapes()) {
    const ParamMap p = testutil::uniform_params(sc.nest, 7);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    const CollapsedEval cn = collapse(sc.nest).bind(p);
    expect_engine_matches_search(cn, sc.name);
    expect_blocks_match_search(cn, 5, sc.name);
  }
}

TEST(RecoveryEngine, SolverKindsMatchLevelDegrees) {
  {
    const CollapsedEval cn = collapse(testutil::triangular_strict()).bind({{"N", 30}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Quadratic);
    EXPECT_EQ(cn.solver_kind(1), LevelSolverKind::InnermostLinear);
  }
  {
    const CollapsedEval cn = collapse(testutil::rectangular()).bind({{"N", 9}, {"M", 4}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::ExactDivision);
  }
  {
    const CollapsedEval cn = collapse(testutil::tetrahedral_fig6()).bind({{"N", 9}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Cubic);
    EXPECT_EQ(cn.solver_kind(1), LevelSolverKind::Quadratic);
  }
  {
    const CollapsedEval cn = collapse(testutil::simplex_4d()).bind({{"N", 8}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Program);  // quartic
  }
  {
    const CollapsedEval cn = collapse(testutil::simplex_5d()).bind({{"N", 6}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Search);  // degree 5
  }
}

TEST(RecoveryEngine, SearchFallbackLevelsStayExact) {
  // Degree-5 outer level has no closed form; the engine mixes search and
  // specialized levels in one nest.
  const CollapsedEval cn = collapse(testutil::simplex_5d()).bind({{"N", 6}});
  expect_engine_matches_search(cn, "simplex_5d");
  expect_blocks_match_search(cn, 11, "simplex_5d");
}

TEST(RecoveryEngine, MaxDepthNest) {
  // Depth-kMaxDepth nest: a rectangular tower over a triangular base.
  NestSpec n;
  n.param("N");
  n.loop("t0", aff::c(0), aff::v("N"));
  n.loop("t1", aff::v("t0"), aff::v("N"));
  for (int k = 2; k < kMaxDepth; ++k)
    n.loop("t" + std::to_string(k), aff::c(0), aff::c(2));
  ASSERT_EQ(n.depth(), kMaxDepth);
  const CollapsedEval cn = collapse(n).bind({{"N", 3}});
  expect_engine_matches_search(cn, "max_depth");
  expect_blocks_match_search(cn, 64, "max_depth");
}

TEST(RecoverBlock, EdgeCases) {
  const CollapsedEval cn = collapse(testutil::triangular_strict()).bind({{"N", 12}});
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out(8 * d);

  EXPECT_EQ(cn.recover_block(1, 0, out), 0);   // empty request
  EXPECT_EQ(cn.recover_block(1, -3, out), 0);  // negative request

  // Clipping at the end of the domain.
  EXPECT_EQ(cn.recover_block(cn.trip_count(), 8, out), 1);
  std::vector<i64> last(d);
  cn.last(last);
  EXPECT_EQ(out[0], last[0]);
  EXPECT_EQ(out[1], last[1]);

  // Out-of-range pc_lo and undersized output throw.
  EXPECT_THROW(cn.recover_block(0, 4, out), SolveError);
  EXPECT_THROW(cn.recover_block(cn.trip_count() + 1, 4, out), SolveError);
  std::vector<i64> tiny(d);
  EXPECT_THROW(cn.recover_block(1, 8, tiny), SpecError);
}

TEST(RecoverBlock, SingleLoopNest) {
  NestSpec n;
  n.param("N").loop("i", aff::c(2), aff::v("N"));
  const CollapsedEval cn = collapse(n).bind({{"N", 9}});
  std::vector<i64> out(7);
  ASSERT_EQ(cn.recover_block(1, 7, out), 7);
  for (i64 r = 0; r < 7; ++r) EXPECT_EQ(out[static_cast<size_t>(r)], 2 + r);
}

TEST(Advance, AgreesWithRepeatedIncrement) {
  const CollapsedEval cn = collapse(testutil::tetrahedral_fig6()).bind({{"N", 8}});
  const size_t d = static_cast<size_t>(cn.depth());
  for (i64 step : {i64{1}, i64{2}, i64{5}, i64{17}}) {
    std::vector<i64> a(d), b(d);
    cn.first(a);
    cn.first(b);
    bool a_alive = true, b_alive = true;
    while (a_alive && b_alive) {
      a_alive = cn.advance(a, step);
      for (i64 s = 0; s < step && b_alive; ++s) b_alive = cn.increment(b);
      ASSERT_EQ(a_alive, b_alive) << "step=" << step;
      if (a_alive) ASSERT_EQ(a, b) << "step=" << step;
    }
  }
}

TEST(RecoveryEngine, StatsCountClosedFormLevels) {
  const CollapsedEval cn = collapse(testutil::tetrahedral_fig6()).bind({{"N", 12}});
  RecoveryStats stats;
  std::vector<i64> idx(3);
  for (i64 pc = 1; pc <= cn.trip_count(); ++pc) cn.recover(pc, idx, &stats);
  // Two non-innermost levels per recovery, none needing search.
  EXPECT_EQ(stats.levels(), 2 * cn.trip_count());
  EXPECT_EQ(stats.fallback, 0);
  EXPECT_GT(stats.closed_form, 0);
}

TEST(RecoveryEngine, DescribeNamesLoweredSolvers) {
  const std::string d = collapse(testutil::tetrahedral_fig6()).describe();
  EXPECT_NE(d.find("lowered solver: guarded-cubic"), std::string::npos) << d;
  EXPECT_NE(d.find("lowered solver: guarded-quadratic"), std::string::npos);
  EXPECT_NE(d.find("lowered solver: innermost-linear"), std::string::npos);
  const std::string q = collapse(testutil::simplex_4d()).describe();
  EXPECT_NE(q.find("lowered solver: bytecode-program"), std::string::npos) << q;
  const std::string r = collapse(testutil::rectangular()).describe();
  EXPECT_NE(r.find("lowered solver: exact-division"), std::string::npos) << r;
}

TEST(RecoveryEngine, AstronomicalParameterOffsetsStillBind) {
  // Folding A ~ 1e6 into quartic level coefficients produces A^4-scale
  // constants beyond the exact int64 range; lowering must demote to the
  // interpreter instead of letting OverflowError escape bind() (the seed
  // engine handled this nest).
  NestSpec n;
  n.param("A");
  n.loop("i", aff::v("A"), aff::v("A") + 9)
      .loop("j", aff::v("i"), aff::v("A") + 9)
      .loop("k", aff::v("j"), aff::v("A") + 9)
      .loop("l", aff::v("k"), aff::v("A") + 9);
  const CollapsedEval cn = collapse(n).bind({{"A", 1000000}});
  EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Interpreted);
  expect_engine_matches_search(cn, "astronomical_offsets");
}

TEST(RecoveryEngine, LargeParameterBlocksStayExact) {
  // Same worst case as the scalar large-N test: ranks near row
  // boundaries at N = 2^20, recovered through blocks spanning them.
  const Collapsed col = collapse(testutil::triangular_strict());
  const i64 N = 1 << 20;
  const CollapsedEval cn = col.bind({{"N", N}});
  std::vector<i64> out(16 * 2), via_search(2);
  for (i64 i : {i64{1}, i64{77}, N / 2, N - 3}) {
    const std::vector<i64> first_of_row{i, i + 1};
    const i64 pc = cn.rank(first_of_row);
    const i64 lo = std::max<i64>(1, pc - 8);
    const i64 got = cn.recover_block(lo, 16, out);
    for (i64 r = 0; r < got; ++r) {
      cn.recover_search(lo + r, via_search);
      EXPECT_EQ(out[static_cast<size_t>(r) * 2], via_search[0]) << "pc=" << lo + r;
      EXPECT_EQ(out[static_cast<size_t>(r) * 2 + 1], via_search[1]) << "pc=" << lo + r;
    }
  }
}

}  // namespace
}  // namespace nrc
