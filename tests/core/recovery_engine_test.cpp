// The compiled recovery engine: degree-specialized solvers, bytecode
// programs and batched block recovery must agree exactly with the
// all-integer binary-search recovery (and with the seed-era interpreter)
// over full domains.
#include <gtest/gtest.h>

#include <random>

#include "../test_util.hpp"
#include "core/real_solvers.hpp"
#include "kernels/registry.hpp"
#include "math/roots.hpp"

namespace nrc {
namespace {

void expect_engine_matches_search(const CollapsedEval& cn, const std::string& tag) {
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> via_engine(d), via_interp(d), via_search(d);
  for (i64 pc = 1; pc <= cn.trip_count(); ++pc) {
    cn.recover(pc, via_engine);
    cn.recover_interpreted(pc, via_interp);
    cn.recover_search(pc, via_search);
    ASSERT_EQ(via_engine, via_search) << tag << " pc=" << pc;
    ASSERT_EQ(via_interp, via_search) << tag << " (interpreter) pc=" << pc;
  }
}

void expect_blocks_match_search(const CollapsedEval& cn, i64 block, const std::string& tag) {
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out(static_cast<size_t>(block) * d);
  std::vector<i64> via_search(d);
  for (i64 lo = 1; lo <= cn.trip_count(); lo += block) {
    const i64 got = cn.recover_block(lo, block, out);
    ASSERT_EQ(got, std::min<i64>(block, cn.trip_count() - lo + 1)) << tag << " lo=" << lo;
    for (i64 r = 0; r < got; ++r) {
      cn.recover_search(lo + r, via_search);
      for (size_t q = 0; q < d; ++q)
        ASSERT_EQ(out[static_cast<size_t>(r) * d + q], via_search[q])
            << tag << " block=" << block << " pc=" << lo + r << " dim=" << q;
    }
  }
}

/// recover_block_lanes (SoA layout, SIMD fills) against binary search
/// over the full domain.  `stride` > block exercises a column pitch
/// larger than the produced rows.
void expect_lane_blocks_match_search(const CollapsedEval& cn, i64 block, i64 stride,
                                     const std::string& tag) {
  ASSERT_GE(stride, block);
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out(d * static_cast<size_t>(stride));
  std::vector<i64> via_search(d);
  for (i64 lo = 1; lo <= cn.trip_count(); lo += block) {
    const i64 got = cn.recover_block_lanes(lo, block, out, stride);
    ASSERT_EQ(got, std::min<i64>(block, cn.trip_count() - lo + 1)) << tag << " lo=" << lo;
    for (i64 r = 0; r < got; ++r) {
      cn.recover_search(lo + r, via_search);
      for (size_t q = 0; q < d; ++q)
        ASSERT_EQ(out[q * static_cast<size_t>(stride) + static_cast<size_t>(r)],
                  via_search[q])
            << tag << " block=" << block << " stride=" << stride << " pc=" << lo + r
            << " dim=" << q;
    }
  }
}

/// recover4 (lane-batched solves) against binary search: sliding windows
/// of 4 consecutive pcs across the whole domain, including the clipped
/// window at the end (recover4 takes arbitrary pcs, so the window start
/// is clamped rather than shortened).
void expect_recover4_matches_search(const CollapsedEval& cn, const std::string& tag) {
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out(4 * d);
  std::vector<i64> via_search(d);
  for (i64 lo = 1; lo <= cn.trip_count(); lo += 4) {
    const i64 base = std::min<i64>(lo, std::max<i64>(1, cn.trip_count() - 3));
    const i64 pcs[4] = {base, std::min(base + 1, cn.trip_count()),
                        std::min(base + 2, cn.trip_count()),
                        std::min(base + 3, cn.trip_count())};
    cn.recover4(pcs, out);
    for (int l = 0; l < 4; ++l) {
      cn.recover_search(pcs[l], via_search);
      for (size_t q = 0; q < d; ++q)
        ASSERT_EQ(out[static_cast<size_t>(l) * d + q], via_search[q])
            << tag << " pc=" << pcs[l] << " lane=" << l << " dim=" << q;
    }
  }
}

TEST(RecoveryEngine, MatchesSearchOnEveryKernelNest) {
  for (const auto& name : kernel_names()) {
    auto kernel = make_kernel(name);
    kernel->prepare(0.0);  // floor sizes: full domains stay test-sized
    const Collapsed col = collapse(kernel->collapsed_spec());
    const CollapsedEval cn = col.bind(kernel->bound_params());
    expect_engine_matches_search(cn, name);
  }
}

TEST(RecoveryEngine, BlocksMatchSearchOnEveryKernelNest) {
  for (const auto& name : kernel_names()) {
    auto kernel = make_kernel(name);
    kernel->prepare(0.0);
    const Collapsed col = collapse(kernel->collapsed_spec());
    const CollapsedEval cn = col.bind(kernel->bound_params());
    for (i64 block : {i64{1}, i64{7}, i64{64}, cn.trip_count()})
      expect_blocks_match_search(cn, block, name);
  }
}

TEST(RecoveryEngine, LaneBlocksMatchSearchOnEveryKernelNest) {
  // Non-multiple-of-4 blocks exercise the vector fills' scalar tails;
  // stride > block exercises the lane-strided pitch.
  for (const auto& name : kernel_names()) {
    auto kernel = make_kernel(name);
    kernel->prepare(0.0);
    const Collapsed col = collapse(kernel->collapsed_spec());
    const CollapsedEval cn = col.bind(kernel->bound_params());
    for (i64 block : {i64{1}, i64{7}, i64{64}, cn.trip_count()}) {
      expect_lane_blocks_match_search(cn, block, block, name);
      expect_lane_blocks_match_search(cn, block, block + 3, name);
    }
  }
}

TEST(RecoveryEngine, Recover4MatchesSearchOnEveryKernelNest) {
  for (const auto& name : kernel_names()) {
    auto kernel = make_kernel(name);
    kernel->prepare(0.0);
    const Collapsed col = collapse(kernel->collapsed_spec());
    const CollapsedEval cn = col.bind(kernel->bound_params());
    expect_recover4_matches_search(cn, name);
  }
}

TEST(RecoveryEngine, Blocks4MatchesScalarBlocks) {
  // recover_blocks4 == four independent recover_block_lanes tiles,
  // including clipped tails at the end of the domain and duplicate pcs.
  for (const auto& sc : testutil::closed_form_shapes()) {
    const ParamMap p = testutil::uniform_params(sc.nest, 7);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    const CollapsedEval cn = collapse(sc.nest).bind(p);
    const size_t d = static_cast<size_t>(cn.depth());
    const i64 total = cn.trip_count();
    constexpr i64 kBlock = 9;  // not a lane multiple
    const i64 stride = kBlock;
    std::vector<i64> out4(4 * d * static_cast<size_t>(stride));
    std::vector<i64> one(d * static_cast<size_t>(stride));
    i64 rows[4];
    const i64 q = std::max<i64>(1, total / 4);
    const i64 pcs[4] = {1, std::min(q + 1, total), std::min(2 * q + 1, total), total};
    cn.recover_blocks4(pcs, kBlock, out4, stride, rows);
    for (int b = 0; b < 4; ++b) {
      ASSERT_EQ(rows[b], std::min<i64>(kBlock, total - pcs[b] + 1)) << sc.name;
      const i64 got = cn.recover_block_lanes(pcs[b], kBlock, one, stride);
      ASSERT_EQ(got, rows[b]) << sc.name;
      for (size_t k = 0; k < d; ++k)
        for (i64 r = 0; r < rows[b]; ++r)
          ASSERT_EQ(out4[(static_cast<size_t>(b) * d + k) * static_cast<size_t>(stride) +
                         static_cast<size_t>(r)],
                    one[k * static_cast<size_t>(stride) + static_cast<size_t>(r)])
              << sc.name << " block=" << b << " dim=" << k << " row=" << r;
    }
    // All four lanes on the same pc agree with each other.
    const i64 same[4] = {total / 2 + 1, total / 2 + 1, total / 2 + 1, total / 2 + 1};
    std::vector<i64> tuples(4 * d);
    cn.recover4(same, tuples);
    for (int l = 1; l < 4; ++l)
      for (size_t k = 0; k < d; ++k)
        ASSERT_EQ(tuples[static_cast<size_t>(l) * d + k], tuples[k]) << sc.name;
  }
}

TEST(RecoveryEngine, MatchesSearchOnAllShapes) {
  // The shape menagerie exercises every solver kind: exact-division
  // (degree 1), guarded-quadratic, bytecode programs (degrees 3 and 4).
  for (const auto& sc : testutil::closed_form_shapes()) {
    const ParamMap p = testutil::uniform_params(sc.nest, 7);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    const CollapsedEval cn = collapse(sc.nest).bind(p);
    expect_engine_matches_search(cn, sc.name);
    expect_blocks_match_search(cn, 5, sc.name);
    expect_lane_blocks_match_search(cn, 5, 5, sc.name);
    expect_recover4_matches_search(cn, sc.name);
  }
}

TEST(RecoveryEngine, SolverKindsMatchLevelDegrees) {
  {
    const CollapsedEval cn = collapse(testutil::triangular_strict()).bind({{"N", 30}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Quadratic);
    EXPECT_EQ(cn.solver_kind(1), LevelSolverKind::InnermostLinear);
  }
  {
    const CollapsedEval cn = collapse(testutil::rectangular()).bind({{"N", 9}, {"M", 4}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::ExactDivision);
  }
  {
    const CollapsedEval cn = collapse(testutil::tetrahedral_fig6()).bind({{"N", 9}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Cubic);
    EXPECT_EQ(cn.solver_kind(1), LevelSolverKind::Quadratic);
  }
  {
    const CollapsedEval cn = collapse(testutil::simplex_4d()).bind({{"N", 8}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Quartic);  // guarded Ferrari
  }
  {
    const CollapsedEval cn = collapse(testutil::simplex_5d()).bind({{"N", 6}});
    EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Search);  // degree 5
  }
}

TEST(RecoveryEngine, SearchFallbackLevelsStayExact) {
  // Degree-5 outer level has no closed form; the engine mixes search and
  // specialized levels in one nest.
  const CollapsedEval cn = collapse(testutil::simplex_5d()).bind({{"N", 6}});
  expect_engine_matches_search(cn, "simplex_5d");
  expect_blocks_match_search(cn, 11, "simplex_5d");
  expect_lane_blocks_match_search(cn, 11, 11, "simplex_5d");
  expect_recover4_matches_search(cn, "simplex_5d");
}

TEST(RecoveryEngine, MaxDepthNest) {
  // Depth-kMaxDepth nest: a rectangular tower over a triangular base.
  NestSpec n;
  n.param("N");
  n.loop("t0", aff::c(0), aff::v("N"));
  n.loop("t1", aff::v("t0"), aff::v("N"));
  for (int k = 2; k < kMaxDepth; ++k)
    n.loop("t" + std::to_string(k), aff::c(0), aff::c(2));
  ASSERT_EQ(n.depth(), kMaxDepth);
  const CollapsedEval cn = collapse(n).bind({{"N", 3}});
  expect_engine_matches_search(cn, "max_depth");
  expect_blocks_match_search(cn, 64, "max_depth");
  expect_lane_blocks_match_search(cn, 64, 64, "max_depth");
  expect_recover4_matches_search(cn, "max_depth");
}

TEST(RecoverBlock, EdgeCases) {
  const CollapsedEval cn = collapse(testutil::triangular_strict()).bind({{"N", 12}});
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out(8 * d);

  EXPECT_EQ(cn.recover_block(1, 0, out), 0);   // empty request
  EXPECT_EQ(cn.recover_block(1, -3, out), 0);  // negative request

  // Clipping at the end of the domain.
  EXPECT_EQ(cn.recover_block(cn.trip_count(), 8, out), 1);
  std::vector<i64> last(d);
  cn.last(last);
  EXPECT_EQ(out[0], last[0]);
  EXPECT_EQ(out[1], last[1]);

  // Out-of-range pc_lo and undersized output throw.
  EXPECT_THROW(cn.recover_block(0, 4, out), SolveError);
  EXPECT_THROW(cn.recover_block(cn.trip_count() + 1, 4, out), SolveError);
  std::vector<i64> tiny(d);
  EXPECT_THROW(cn.recover_block(1, 8, tiny), SpecError);
}

TEST(RecoverBlock, SingleLoopNest) {
  NestSpec n;
  n.param("N").loop("i", aff::c(2), aff::v("N"));
  const CollapsedEval cn = collapse(n).bind({{"N", 9}});
  std::vector<i64> out(7);
  ASSERT_EQ(cn.recover_block(1, 7, out), 7);
  for (i64 r = 0; r < 7; ++r) EXPECT_EQ(out[static_cast<size_t>(r)], 2 + r);
}

TEST(RecoverBlockLanes, EdgeCases) {
  const CollapsedEval cn = collapse(testutil::triangular_strict()).bind({{"N", 12}});
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out(8 * d);

  EXPECT_EQ(cn.recover_block_lanes(1, 0, out, 8), 0);   // empty request
  EXPECT_EQ(cn.recover_block_lanes(1, -3, out, 8), 0);  // negative request

  // Clipping at the end of the domain (SoA layout).
  EXPECT_EQ(cn.recover_block_lanes(cn.trip_count(), 8, out, 8), 1);
  std::vector<i64> last(d);
  cn.last(last);
  EXPECT_EQ(out[0], last[0]);
  EXPECT_EQ(out[8], last[1]);  // column 1 starts at stride

  // Out-of-range pc_lo, undersized stride and undersized output throw.
  EXPECT_THROW(cn.recover_block_lanes(0, 4, out, 8), SolveError);
  EXPECT_THROW(cn.recover_block_lanes(cn.trip_count() + 1, 4, out, 8), SolveError);
  EXPECT_THROW(cn.recover_block_lanes(1, 8, out, 4), SpecError);  // stride < rows
  std::vector<i64> tiny(d);
  EXPECT_THROW(cn.recover_block_lanes(1, 8, tiny, 8), SpecError);
}

TEST(RecoverBlockLanes, SingleLoopNest) {
  NestSpec n;
  n.param("N").loop("i", aff::c(2), aff::v("N"));
  const CollapsedEval cn = collapse(n).bind({{"N", 9}});
  std::vector<i64> out(7);
  ASSERT_EQ(cn.recover_block_lanes(1, 7, out, 7), 7);
  for (i64 r = 0; r < 7; ++r) EXPECT_EQ(out[static_cast<size_t>(r)], 2 + r);
}

TEST(RecoverBlocks4, EdgeCases) {
  const CollapsedEval cn = collapse(testutil::triangular_strict()).bind({{"N", 12}});
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out(4 * 8 * d);
  i64 rows[4] = {-1, -1, -1, -1};

  const i64 pcs[4] = {1, 2, 3, 4};
  cn.recover_blocks4(pcs, 0, out, 8, rows);  // empty request
  for (int b = 0; b < 4; ++b) EXPECT_EQ(rows[b], 0);

  const i64 bad[4] = {1, 2, 3, cn.trip_count() + 1};
  EXPECT_THROW(cn.recover_blocks4(bad, 4, out, 8, rows), SolveError);
  EXPECT_THROW(cn.recover_blocks4(pcs, 8, out, 4, rows), SpecError);  // stride < rows
  std::vector<i64> tiny(d);
  EXPECT_THROW(cn.recover_blocks4(pcs, 8, tiny, 8, rows), SpecError);

  EXPECT_THROW(cn.recover4(bad, out), SolveError);
  std::vector<i64> tiny4(4 * d - 1);
  EXPECT_THROW(cn.recover4(pcs, tiny4), SpecError);
}

TEST(Advance, AgreesWithRepeatedIncrement) {
  const CollapsedEval cn = collapse(testutil::tetrahedral_fig6()).bind({{"N", 8}});
  const size_t d = static_cast<size_t>(cn.depth());
  for (i64 step : {i64{1}, i64{2}, i64{5}, i64{17}}) {
    std::vector<i64> a(d), b(d);
    cn.first(a);
    cn.first(b);
    bool a_alive = true, b_alive = true;
    while (a_alive && b_alive) {
      a_alive = cn.advance(a, step);
      for (i64 s = 0; s < step && b_alive; ++s) b_alive = cn.increment(b);
      ASSERT_EQ(a_alive, b_alive) << "step=" << step;
      if (a_alive) ASSERT_EQ(a, b) << "step=" << step;
    }
  }
}

TEST(RecoveryEngine, StatsCountClosedFormLevels) {
  const CollapsedEval cn = collapse(testutil::tetrahedral_fig6()).bind({{"N", 12}});
  RecoveryStats stats;
  std::vector<i64> idx(3);
  for (i64 pc = 1; pc <= cn.trip_count(); ++pc) cn.recover(pc, idx, &stats);
  // Two non-innermost levels per recovery, none needing search.
  EXPECT_EQ(stats.levels(), 2 * cn.trip_count());
  EXPECT_EQ(stats.fallback, 0);
  EXPECT_GT(stats.closed_form, 0);
}

TEST(RecoveryEngine, DescribeNamesLoweredSolvers) {
  const std::string d = collapse(testutil::tetrahedral_fig6()).describe();
  EXPECT_NE(d.find("lowered solver: guarded-cubic"), std::string::npos) << d;
  EXPECT_NE(d.find("lowered solver: guarded-quadratic"), std::string::npos);
  EXPECT_NE(d.find("lowered solver: innermost-linear"), std::string::npos);
  const std::string q = collapse(testutil::simplex_4d()).describe();
  EXPECT_NE(q.find("lowered solver: guarded-ferrari"), std::string::npos) << q;
  EXPECT_NE(q.find("[bytecode demotion]"), std::string::npos) << q;
  EXPECT_NE(q.find("guard policy: proven-exact f64"), std::string::npos) << q;
  const std::string r = collapse(testutil::rectangular()).describe();
  EXPECT_NE(r.find("lowered solver: exact-division"), std::string::npos) << r;
}

TEST(RecoveryEngine, DescribeNamesLaneBatchedSolvers) {
  // Quadratic and bytecode-program levels evaluate one lane group of
  // pcs per batched call; describe() reports the group width of the
  // compiled simd abi (8 on the AVX-512 leg, 4 on avx2/scalar) and the
  // ABI leg actually usable at runtime.
  const std::string x = "x" + std::to_string(simd::kGroupLanes) + "]";
  const std::string d = collapse(testutil::triangular_strict()).describe();
  EXPECT_NE(d.find("guarded-quadratic [lane-batched " + x), std::string::npos) << d;
  EXPECT_NE(d.find("runtime simd abi: " + std::string(simd::runtime_abi())),
            std::string::npos)
      << d;
  const std::string q = collapse(testutil::simplex_4d()).describe();
  EXPECT_NE(q.find("guarded-ferrari [lane-batched " + x), std::string::npos) << q;
}

TEST(RecoveryEngine, AstronomicalParameterOffsetsStillBind) {
  // Folding A ~ 1e6 into quartic level coefficients produces A^4-scale
  // constants in the RecoveryProgram lowering beyond the exact int64
  // range; the bytecode demotion target stays uncompiled, but the
  // guarded Ferrari runs fine on the exactly evaluated i128 coefficients
  // (the exact-double proof fails at these magnitudes, so the checked
  // reference guards carry the level).
  NestSpec n;
  n.param("A");
  n.loop("i", aff::v("A"), aff::v("A") + 9)
      .loop("j", aff::v("i"), aff::v("A") + 9)
      .loop("k", aff::v("j"), aff::v("A") + 9)
      .loop("l", aff::v("k"), aff::v("A") + 9);
  const CollapsedEval cn = collapse(n).bind({{"A", 1000000}});
  EXPECT_EQ(cn.solver_kind(0), LevelSolverKind::Quartic);
  EXPECT_FALSE(cn.guards_provably_f64(0));
  expect_engine_matches_search(cn, "astronomical_offsets");
  // The lane-batched path must take the same demotions (no exact-double
  // proof here: slot magnitudes around 1e6 push quartic coefficients
  // past the 2^53 window) and still match search exactly.
  expect_recover4_matches_search(cn, "astronomical_offsets");
  expect_lane_blocks_match_search(cn, 13, 13, "astronomical_offsets");
}

// ---------------------------------------------------------------------------
// Guarded real-arithmetic Ferrari (PR 3).

/// Compare ferrari_estimate against the complex reference evaluator for
/// every one of the 12 Ferrari branches of one coefficient set.  Where
/// the real-arithmetic path claims success, its floor must match the
/// reference floor to within 1 (the correction budget of the exact
/// guard); where the reference itself degenerates the claim is skipped.
void expect_ferrari_tracks_reference(const double (&A)[5], const std::string& tag) {
  cld cc[5];
  for (int e = 0; e < 5; ++e) cc[e] = cld(static_cast<long double>(A[e]), 0.0L);
  for (int br = 0; br < 12; ++br) {
    i64 est;
    if (!ferrari_estimate<long double>(A, br, &est)) continue;  // demotes: fine
    const cld ref = root_branch_value(std::span<const cld>(cc, 5), br);
    if (!std::isfinite(static_cast<double>(ref.real()))) continue;
    const long double re = ref.real();
    if (re < -9e18L || re > 9e18L) continue;
    const i64 ref_est = static_cast<i64>(std::floor(re + 1e-9L));
    EXPECT_NEAR(static_cast<double>(est), static_cast<double>(ref_est), 1.0)
        << tag << " branch=" << br;
  }
}

TEST(FerrariEstimate, QuarticEdgeFamilies) {
  // Biquadratic (x^2-1)(x^2-4): odd coefficients zero, the resolvent
  // has the w = 0 root Ferrari cannot divide through (those branches
  // must report degeneration, not a wrong estimate).
  const double biquadratic[5] = {4, 0, -5, 0, 1};
  expect_ferrari_tracks_reference(biquadratic, "biquadratic");
  // Repeated real roots (x-2)^2 (x+3)^2: the resolvent discriminant is
  // exactly zero.
  const double repeated[5] = {36, -12, -11, 2, 1};
  expect_ferrari_tracks_reference(repeated, "repeated");
  // Near-zero resolvent discriminant: the repeated-root quartic
  // perturbed one unit either way.
  const double near_lo[5] = {35, -12, -11, 2, 1};
  const double near_hi[5] = {37, -12, -11, 2, 1};
  expect_ferrari_tracks_reference(near_lo, "near_disc_lo");
  expect_ferrari_tracks_reference(near_hi, "near_disc_hi");
  // Clustered real roots 7, 7, 8, -1.
  const double clustered[5] = {-392, -231, 139, -21, 1};
  expect_ferrari_tracks_reference(clustered, "clustered");
  // Degenerate leading coefficient: never claims an estimate.
  const double cubic_like[5] = {1, 2, 3, 4, 0};
  i64 est;
  for (int br = 0; br < 12; ++br)
    EXPECT_FALSE(ferrari_estimate<long double>(cubic_like, br, &est)) << br;
}

TEST(FerrariEstimate, RandomQuarticsTrackReference) {
  std::mt19937_64 rng(20260726);
  for (int iter = 0; iter < 4000; ++iter) {
    double A[5];
    const i64 m = iter % 3 == 0 ? 9 : iter % 3 == 1 ? 1000 : 2000000;
    for (int e = 0; e < 5; ++e)
      A[e] = static_cast<double>(static_cast<i64>(rng() % static_cast<u64>(2 * m + 1)) - m);
    if (A[4] == 0) A[4] = 1;
    if (iter % 7 == 0) A[3] = A[1] = 0;  // biquadratic slice
    expect_ferrari_tracks_reference(A, "random#" + std::to_string(iter));
  }
}

/// Complex Cardano with the +i convention for real radicands — exactly
/// what the RecoveryProgram bytecode computes (its real-valued registers
/// carry im = +0, so CSqrt of a negative real register always takes the
/// +i branch).  root_branch_value is *not* a usable oracle for cubic
/// branches 1/2: its fully-complex evaluation can flip the radicand's
/// imaginary zero to -0 depending on coefficient signs, conjugating the
/// cube root and swapping those two branches — Re of a quartic branch is
/// invariant under that conjugation, a cubic branch value is not.
cld cardano_plus_i(const double* A, int branch) {
  const long double b = static_cast<long double>(A[2]) / A[3];
  const long double c = static_cast<long double>(A[1]) / A[3];
  const long double d = static_cast<long double>(A[0]) / A[3];
  const long double p = c - b * b / 3.0L;
  const long double q = 2.0L * b * b * b / 27.0L - b * c / 3.0L + d;
  const long double delta = q * q / 4.0L + p * p * p / 27.0L;
  const cld sq = delta >= 0 ? cld(std::sqrt(delta), 0.0L)
                            : cld(0.0L, std::sqrt(-delta));
  const cld u = principal_cbrt(-q / 2.0L + sq);
  constexpr long double kPi = 3.14159265358979323846264338327950288L;
  const cld uk = u * cld(std::cos(2.0L * kPi * branch / 3.0L),
                         std::sin(2.0L * kPi * branch / 3.0L));
  return uk - p / (3.0L * uk) - b / 3.0L;
}

TEST(CubicEstimate, AllBranchesTrackReference) {
  // The Viete/Cardano estimate must track the bytecode-semantics
  // reference on all three branches (the seed only ever exercised
  // branch 0; the Ferrari resolvent reaches every branch).
  std::mt19937_64 rng(777);
  for (int iter = 0; iter < 4000; ++iter) {
    double A[4];
    for (int e = 0; e < 4; ++e)
      A[e] = static_cast<double>(static_cast<i64>(rng() % 2001) - 1000);
    if (A[3] == 0) A[3] = 1;
    for (int br = 0; br < 3; ++br) {
      i64 est;
      if (!cubic_estimate<long double>(A, br, &est)) continue;
      const cld ref = cardano_plus_i(A, br);
      if (!std::isfinite(static_cast<double>(ref.real()))) continue;
      const i64 ref_est = static_cast<i64>(std::floor(ref.real() + 1e-9L));
      EXPECT_NEAR(static_cast<double>(est), static_cast<double>(ref_est), 1.0)
          << "iter=" << iter << " branch=" << br;
    }
  }
}

/// Every quartic-level shape: the Ferrari engine must agree with search
/// over the full domain without a single search fallback or demotion
/// (healthy nests never leave the real-arithmetic path), and the
/// bytecode ablation (use_bytecode_quartics) must stay byte-identical.
TEST(RecoveryEngine, FerrariSolvesQuarticNestsWithoutDemotion) {
  for (const auto& sc : {testutil::simplex_4d(), testutil::simplex_4d_shifted(),
                         testutil::trapezoid_tower_4d(), testutil::simplex_4d_tower()}) {
    const ParamMap p = testutil::uniform_params(sc, 9);
    if (!has_no_empty_ranges(sc, p)) continue;
    const CollapsedEval cn = collapse(sc).bind(p);
    ASSERT_EQ(cn.solver_kind(0), LevelSolverKind::Quartic);
    CollapsedEval bytecode = cn;
    bytecode.use_bytecode_quartics();
    ASSERT_NE(bytecode.solver_kind(0), LevelSolverKind::Quartic);

    RecoveryStats stats;
    const size_t d = static_cast<size_t>(cn.depth());
    std::vector<i64> eng(d), via_bc(d), ref(d);
    for (i64 pc = 1; pc <= cn.trip_count(); ++pc) {
      cn.recover_search(pc, ref);
      cn.recover(pc, eng, &stats);
      ASSERT_EQ(eng, ref) << "ferrari pc=" << pc;
      bytecode.recover(pc, via_bc);
      ASSERT_EQ(via_bc, ref) << "bytecode ablation pc=" << pc;
    }
    EXPECT_EQ(stats.fallback, 0);
    EXPECT_EQ(stats.quartic_demoted, 0);
    EXPECT_GT(stats.closed_form, 0);
  }
}

/// Demotion to bytecode on guard failure: force_quartic_demotion makes
/// every quartic point take the demoted path (bytecode estimate + exact
/// guard, quartic_demoted counting), and the results must still match
/// search exactly — scalar and lane-batched engines alike.
TEST(RecoveryEngine, QuarticGuardFailureDemotesToBytecode) {
  for (const auto& nest : {testutil::simplex_4d(), testutil::trapezoid_tower_4d()}) {
    const CollapsedEval cn = collapse(nest).bind({{"N", 11}});
    CollapsedEval demoted = cn;
    demoted.force_quartic_demotion();
    ASSERT_EQ(demoted.solver_kind(0), LevelSolverKind::Quartic);

    RecoveryStats stats;
    const size_t d = static_cast<size_t>(cn.depth());
    std::vector<i64> idx(d), ref(d), out4(4 * d);
    for (i64 pc = 1; pc <= cn.trip_count(); ++pc) {
      cn.recover_search(pc, ref);
      demoted.recover(pc, idx, &stats);
      ASSERT_EQ(idx, ref) << "demoted recover pc=" << pc;
    }
    EXPECT_EQ(stats.quartic_demoted, cn.trip_count());
    EXPECT_EQ(stats.fallback, 0);  // the bytecode estimate still lands

    RecoveryStats lane_stats;
    for (i64 lo = 1; lo <= cn.trip_count(); lo += 4) {
      const i64 base = std::min<i64>(lo, std::max<i64>(1, cn.trip_count() - 3));
      const i64 pcs[4] = {base, std::min(base + 1, cn.trip_count()),
                          std::min(base + 2, cn.trip_count()),
                          std::min(base + 3, cn.trip_count())};
      demoted.recover4(pcs, out4, &lane_stats);
      for (int l = 0; l < 4; ++l) {
        cn.recover_search(pcs[l], ref);
        for (size_t q = 0; q < d; ++q)
          ASSERT_EQ(out4[static_cast<size_t>(l) * d + q], ref[q])
              << "demoted recover4 pc=" << pcs[l];
      }
    }
    EXPECT_GT(lane_stats.quartic_demoted, 0);
  }
}

// ---------------------------------------------------------------------------
// Unified guard policy: proven-exact f64 vs the checked-i128 reference.

/// recover()/recover_block() must be byte-identical with the f64 guard
/// policy on and off, across every kernel nest and shape — the
/// bind-time proof guarantees it, this enforces it.
TEST(RecoveryEngine, F64GuardsByteIdenticalToI128OnEveryKernelNest) {
  int proven_levels = 0;
  auto check = [&](const CollapsedEval& cn, const std::string& tag) {
    CollapsedEval ref_cn = cn;
    ref_cn.set_f64_guards(false);
    EXPECT_TRUE(cn.f64_guards());
    EXPECT_FALSE(ref_cn.f64_guards());
    for (int k = 0; k < cn.depth(); ++k)
      if (cn.guards_provably_f64(k)) ++proven_levels;
    const size_t d = static_cast<size_t>(cn.depth());
    std::vector<i64> a(d), b(d);
    for (i64 pc = 1; pc <= cn.trip_count(); ++pc) {
      cn.recover(pc, a);
      ref_cn.recover(pc, b);
      ASSERT_EQ(a, b) << tag << " recover pc=" << pc;
    }
    constexpr i64 kBlock = 17;
    std::vector<i64> ba(kBlock * d), bb(kBlock * d);
    for (i64 lo = 1; lo <= cn.trip_count(); lo += kBlock) {
      const i64 ga = cn.recover_block(lo, kBlock, ba);
      const i64 gb = ref_cn.recover_block(lo, kBlock, bb);
      ASSERT_EQ(ga, gb) << tag << " rows lo=" << lo;
      ASSERT_EQ(ba, bb) << tag << " recover_block lo=" << lo;
    }
  };
  for (const auto& name : kernel_names()) {
    auto kernel = make_kernel(name);
    kernel->prepare(0.0);
    check(collapse(kernel->collapsed_spec()).bind(kernel->bound_params()), name);
  }
  for (const auto& sc : testutil::closed_form_shapes()) {
    const ParamMap p = testutil::uniform_params(sc.nest, 7);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    check(collapse(sc.nest).bind(p), sc.name);
  }
  // The policy must actually engage somewhere, or this test is vacuous.
  EXPECT_GT(proven_levels, 0);
}

TEST(RecoveryEngine, F64GuardProofHoldsOnTypicalBindsFailsOnAstronomical) {
  // Typical magnitudes: every non-innermost level of the quartic simplex
  // proves the exact-double path.
  const CollapsedEval typical = collapse(testutil::simplex_4d()).bind({{"N", 60}});
  EXPECT_TRUE(typical.guards_provably_f64(0));
  // Astronomical offsets: folded coefficients leave the 2^53 window and
  // the proof must refuse (the checked-i128 reference carries the level).
  NestSpec n;
  n.param("A");
  n.loop("i", aff::v("A"), aff::v("A") + 9).loop("j", aff::v("i"), aff::v("A") + 9);
  const CollapsedEval astro = collapse(n).bind({{"A", 100000000}});
  ASSERT_EQ(astro.solver_kind(0), LevelSolverKind::Quadratic);
  EXPECT_FALSE(astro.guards_provably_f64(0));
  std::vector<i64> a(2), ref(2);
  for (i64 pc = 1; pc <= astro.trip_count(); ++pc) {
    astro.recover(pc, a);
    astro.recover_search(pc, ref);
    ASSERT_EQ(a, ref) << pc;
  }
}

TEST(RecoveryEngine, LargeParameterBlocksStayExact) {
  // Same worst case as the scalar large-N test: ranks near row
  // boundaries at N = 2^20, recovered through blocks spanning them.
  const Collapsed col = collapse(testutil::triangular_strict());
  const i64 N = 1 << 20;
  const CollapsedEval cn = col.bind({{"N", N}});
  std::vector<i64> out(16 * 2), via_search(2);
  for (i64 i : {i64{1}, i64{77}, N / 2, N - 3}) {
    const std::vector<i64> first_of_row{i, i + 1};
    const i64 pc = cn.rank(first_of_row);
    const i64 lo = std::max<i64>(1, pc - 8);
    const i64 got = cn.recover_block(lo, 16, out);
    for (i64 r = 0; r < got; ++r) {
      cn.recover_search(lo + r, via_search);
      EXPECT_EQ(out[static_cast<size_t>(r) * 2], via_search[0]) << "pc=" << lo + r;
      EXPECT_EQ(out[static_cast<size_t>(r) * 2 + 1], via_search[1]) << "pc=" << lo + r;
    }
  }
}

}  // namespace
}  // namespace nrc
