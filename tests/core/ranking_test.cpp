#include "core/ranking.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "polyhedral/domain.hpp"

namespace nrc {
namespace {

TEST(Ranking, PaperCorrelationFormulas) {
  // Paper §III: r(i,j) = (2iN + 2j - i^2 - 3i)/2 with
  // r(0,1)=1, r(0,2)=2, r(0,3)=3, r(0,N-1)=N-1, r(1,2)=N,
  // r(N-2,N-1)=(N-1)N/2.
  const RankingSystem rs = build_ranking_system(testutil::triangular_strict());
  const i64 N = 20;
  auto r = [&](i64 i, i64 j) {
    return rs.rank.eval_i128({{"i", i}, {"j", j}, {"N", N}});
  };
  EXPECT_EQ(r(0, 1), 1);
  EXPECT_EQ(r(0, 2), 2);
  EXPECT_EQ(r(0, 3), 3);
  EXPECT_EQ(r(0, N - 1), N - 1);
  EXPECT_EQ(r(1, 2), N);
  EXPECT_EQ(r(N - 2, N - 1), (N - 1) * N / 2);
}

TEST(Ranking, PaperFig6Formula) {
  // Paper §IV-C: r(i,j,k) = (6k - 3j^2 + 6ij + 3j + i^3 + 3i^2 + 2i + 6)/6.
  const RankingSystem rs = build_ranking_system(testutil::tetrahedral_fig6());
  const Polynomial i = Polynomial::variable("i");
  const Polynomial j = Polynomial::variable("j");
  const Polynomial k = Polynomial::variable("k");
  const Polynomial expect = (k * Rational(6) - j.pow(2) * Rational(3) + i * j * Rational(6) +
                             j * Rational(3) + i.pow(3) + i.pow(2) * Rational(3) +
                             i * Rational(2) + Polynomial(6)) /
                            Rational(6);
  EXPECT_EQ(rs.rank, expect) << rs.rank.str();
  // Total: (N^3 - N)/6 = r(N-2, N-2, N-2) per the paper.
  const Polynomial N = Polynomial::variable("N");
  EXPECT_EQ(rs.total, (N.pow(3) - N) / Rational(6));
}

TEST(Ranking, RankMatchesWalkOrderOnAllShapes) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const RankingSystem rs = build_ranking_system(sc.nest);
    const ParamMap p = testutil::uniform_params(sc.nest, 6);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    i64 pos = 0;
    walk_domain(sc.nest, p, [&](std::span<const i64> pt) {
      ++pos;
      std::map<std::string, i64> vals(p.begin(), p.end());
      for (int k = 0; k < sc.nest.depth(); ++k)
        vals[sc.nest.at(k).var] = pt[static_cast<size_t>(k)];
      EXPECT_EQ(rs.rank.eval_i128(vals), pos) << sc.name;
    });
  }
}

TEST(Ranking, TotalEqualsSubtreeRoot) {
  // Cross-check of the two independent constructions of the trip count:
  // r(lexmax) vs the S_0 nested summation.
  for (const auto& sc : testutil::closed_form_shapes()) {
    const RankingSystem rs = build_ranking_system(sc.nest);
    EXPECT_EQ(rs.total, rs.subtree[0]) << sc.name;
  }
}

TEST(Ranking, PrefixRankAgreesWithRankAtLexmin) {
  // prefix_rank[k](i_0..i_k) == rank at (i_0..i_k, trailing lexmins).
  const NestSpec nest = testutil::tetrahedral_fig6();
  const RankingSystem rs = build_ranking_system(nest);
  const i64 N = 8;
  walk_domain(nest, {{"N", N}}, [&](std::span<const i64> pt) {
    // Level 1 prefix (i, j): trailing lexmin of k is j.
    const i128 via_prefix = rs.prefix_rank[1].eval_i128(
        {{"i", pt[0]}, {"j", pt[1]}, {"N", N}});
    const i128 via_rank = rs.rank.eval_i128(
        {{"i", pt[0]}, {"j", pt[1]}, {"k", pt[1]}, {"N", N}});
    EXPECT_EQ(via_prefix, via_rank);
  });
}

TEST(Ranking, MonotoneInEachIndex) {
  // Strict monotonicity along each level with trailing lexmins (the
  // property the unranking search relies on).
  const NestSpec nest = testutil::tetrahedral_ordered();
  const RankingSystem rs = build_ranking_system(nest);
  const i64 N = 9;
  for (i64 i = 0; i + 1 < N; ++i) {
    EXPECT_LT(rs.prefix_rank[0].eval_i128({{"i", i}, {"N", N}}),
              rs.prefix_rank[0].eval_i128({{"i", i + 1}, {"N", N}}));
  }
  for (i64 j = 2; j + 1 < N; ++j) {
    EXPECT_LT(rs.prefix_rank[1].eval_i128({{"i", 2}, {"j", j}, {"N", N}}),
              rs.prefix_rank[1].eval_i128({{"i", 2}, {"j", j + 1}, {"N", N}}));
  }
}

TEST(Ranking, FirstIterationHasRankOne) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const RankingSystem rs = build_ranking_system(sc.nest);
    const ParamMap p = testutil::uniform_params(sc.nest, 7);
    const auto mn = lexmin_point(sc.nest, p);
    std::map<std::string, i64> vals(p.begin(), p.end());
    for (int k = 0; k < sc.nest.depth(); ++k)
      vals[sc.nest.at(k).var] = mn[static_cast<size_t>(k)];
    EXPECT_EQ(rs.rank.eval_i128(vals), 1) << sc.name;
  }
}

TEST(Ranking, ReservedPcNameRejected) {
  NestSpec bad1;
  bad1.param("pc").loop("i", aff::c(0), aff::v("pc"));
  EXPECT_THROW(build_ranking_system(bad1), SpecError);
  NestSpec bad2;
  bad2.param("N").loop("pc", aff::c(0), aff::v("N"));
  EXPECT_THROW(build_ranking_system(bad2), SpecError);
}

}  // namespace
}  // namespace nrc
