// The 8-lane recovery entry points (CollapsedEval::recover8 /
// recover_blocks8) against the all-integer binary-search recovery: full
// domains on every kernel nest, the closed-form shape menagerie, the
// depth-kMaxDepth tower and the astronomical-offsets quartic nest whose
// demotions the lane path must reproduce.  Masked-tail edge cases pin
// trip counts congruent to 1..7 mod 8 and single-point domains, and the
// demotion-parity test pins the vectorized Cardano/Ferrari trig to zero
// additional quartic/cubic demotions against the per-lane libm
// reference path (set_vector_trig(false)).
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/real_solvers.hpp"
#include "kernels/registry.hpp"

namespace nrc {
namespace {

/// recover8 against binary search: sliding windows of 8 consecutive pcs
/// across the whole domain, the trailing window clamped (recover8 takes
/// arbitrary pcs, so the start is clamped rather than the span shortened).
void expect_recover8_matches_search(const CollapsedEval& cn, const std::string& tag) {
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out(8 * d);
  std::vector<i64> via_search(d);
  for (i64 lo = 1; lo <= cn.trip_count(); lo += 8) {
    const i64 base = std::min<i64>(lo, std::max<i64>(1, cn.trip_count() - 7));
    i64 pcs[8];
    for (int l = 0; l < 8; ++l) pcs[l] = std::min<i64>(base + l, cn.trip_count());
    cn.recover8(pcs, out);
    for (int l = 0; l < 8; ++l) {
      cn.recover_search(pcs[l], via_search);
      for (size_t q = 0; q < d; ++q)
        ASSERT_EQ(out[static_cast<size_t>(l) * d + q], via_search[q])
            << tag << " pc=" << pcs[l] << " lane=" << l << " dim=" << q;
    }
  }
}

/// recover_blocks8 == eight independent recover_block_lanes tiles,
/// clipped tails included.
void expect_blocks8_match_lane_blocks(const CollapsedEval& cn, i64 block, i64 stride,
                                      const std::string& tag) {
  ASSERT_GE(stride, block);
  const size_t d = static_cast<size_t>(cn.depth());
  const i64 total = cn.trip_count();
  std::vector<i64> out8(8 * d * static_cast<size_t>(stride));
  std::vector<i64> one(d * static_cast<size_t>(stride));
  i64 rows[8];
  i64 pcs[8];
  const i64 q = std::max<i64>(1, total / 8);
  for (int b = 0; b < 8; ++b) pcs[b] = std::min<i64>(static_cast<i64>(b) * q + 1, total);
  pcs[7] = total;  // force a clipped tail tile
  cn.recover_blocks8(pcs, block, out8, stride, rows);
  for (int b = 0; b < 8; ++b) {
    ASSERT_EQ(rows[b], std::min<i64>(block, total - pcs[b] + 1)) << tag;
    const i64 got = cn.recover_block_lanes(pcs[b], block, one, stride);
    ASSERT_EQ(got, rows[b]) << tag;
    for (size_t k = 0; k < d; ++k)
      for (i64 r = 0; r < rows[b]; ++r)
        ASSERT_EQ(out8[(static_cast<size_t>(b) * d + k) * static_cast<size_t>(stride) +
                       static_cast<size_t>(r)],
                  one[k * static_cast<size_t>(stride) + static_cast<size_t>(r)])
            << tag << " block=" << b << " dim=" << k << " row=" << r;
  }
}

TEST(RecoveryLanes8, MatchesSearchOnEveryKernelNest) {
  for (const auto& name : kernel_names()) {
    auto kernel = make_kernel(name);
    kernel->prepare(0.0);  // floor sizes: full domains stay test-sized
    const Collapsed col = collapse(kernel->collapsed_spec());
    const CollapsedEval cn = col.bind(kernel->bound_params());
    expect_recover8_matches_search(cn, name);
    expect_blocks8_match_lane_blocks(cn, 9, 9, name);  // 9: not a lane multiple
  }
}

TEST(RecoveryLanes8, MatchesSearchOnAllShapes) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const ParamMap p = testutil::uniform_params(sc.nest, 7);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    const CollapsedEval cn = collapse(sc.nest).bind(p);
    expect_recover8_matches_search(cn, sc.name);
    expect_blocks8_match_lane_blocks(cn, 5, 8, sc.name);
  }
}

TEST(RecoveryLanes8, MaxDepthNest) {
  NestSpec n;
  n.param("N");
  n.loop("t0", aff::c(0), aff::v("N"));
  n.loop("t1", aff::v("t0"), aff::v("N"));
  for (int k = 2; k < kMaxDepth; ++k)
    n.loop("t" + std::to_string(k), aff::c(0), aff::c(2));
  ASSERT_EQ(n.depth(), kMaxDepth);
  const CollapsedEval cn = collapse(n).bind({{"N", 3}});
  expect_recover8_matches_search(cn, "max_depth");
  expect_blocks8_match_lane_blocks(cn, 64, 64, "max_depth");
}

TEST(RecoveryLanes8, AstronomicalParameterOffsetsStillBind) {
  // Quartic coefficients past the exact-double window: the 8-lane path
  // must take the same i128-guarded demotions as the scalar engine and
  // still match search exactly (see the 4-lane twin in
  // recovery_engine_test.cpp for the magnitude analysis).
  NestSpec n;
  n.param("A");
  n.loop("i", aff::v("A"), aff::v("A") + 9)
      .loop("j", aff::v("i"), aff::v("A") + 9)
      .loop("k", aff::v("j"), aff::v("A") + 9)
      .loop("l", aff::v("k"), aff::v("A") + 9);
  const CollapsedEval cn = collapse(n).bind({{"A", 1000000}});
  ASSERT_EQ(cn.solver_kind(0), LevelSolverKind::Quartic);
  ASSERT_FALSE(cn.guards_provably_f64(0));
  expect_recover8_matches_search(cn, "astronomical_offsets");
  expect_blocks8_match_lane_blocks(cn, 13, 13, "astronomical_offsets");
}

TEST(RecoveryLanes8, MaskedTailTripCounts) {
  // Triangular domains with trip counts hitting every residue 1..7
  // mod 8: T(N) = N*(N-1)/2 over N in 4..11 gives residues
  // {6,2,7,5,4,4,5,7} — with the windows clamped against trip_count()
  // these sweep every masked-tail shape of the fills and the clamped
  // trailing solve window.
  for (i64 N = 4; N <= 11; ++N) {
    const CollapsedEval cn = collapse(testutil::triangular_strict()).bind({{"N", N}});
    ASSERT_GE(cn.trip_count(), 1);
    expect_recover8_matches_search(cn, "tri_N" + std::to_string(N));
    expect_blocks8_match_lane_blocks(cn, 3, 3, "tri_N" + std::to_string(N));
  }
}

TEST(RecoveryLanes8, SinglePointDomain) {
  // One iteration total: all 8 lanes land on pc=1 and every block tile
  // clips to a single row.
  const CollapsedEval cn = collapse(testutil::triangular_inclusive()).bind({{"N", 1}});
  ASSERT_EQ(cn.trip_count(), 1);
  const size_t d = static_cast<size_t>(cn.depth());
  const i64 pcs[8] = {1, 1, 1, 1, 1, 1, 1, 1};
  std::vector<i64> out(8 * d), ref(d);
  cn.recover8(pcs, out);
  cn.recover_search(1, ref);
  for (int l = 0; l < 8; ++l)
    for (size_t q = 0; q < d; ++q)
      ASSERT_EQ(out[static_cast<size_t>(l) * d + q], ref[q]) << l;
  std::vector<i64> tiles(8 * d * 4);
  i64 rows[8];
  cn.recover_blocks8(pcs, 4, tiles, 4, rows);
  for (int b = 0; b < 8; ++b) {
    ASSERT_EQ(rows[b], 1);
    for (size_t q = 0; q < d; ++q)
      ASSERT_EQ(tiles[(static_cast<size_t>(b) * d + q) * 4], ref[q]) << b;
  }
}

TEST(RecoveryLanes8, VectorTrigAddsNoDemotions) {
  // The acceptance bar for the polynomial vcos/vatan2 kernels: across
  // the full domain of every kernel nest, recovery stats with the
  // vectorized trig must equal the per-lane libm reference path's —
  // same closed-form/corrected/fallback split, zero extra quartic
  // demotions (a looser trig estimate would surface as `corrected` or
  // `quartic_demoted` drift long before a wrong tuple could).
  ASSERT_TRUE(simd::vector_trig_enabled());
  for (const auto& name : kernel_names()) {
    auto kernel = make_kernel(name);
    kernel->prepare(0.0);
    const Collapsed col = collapse(kernel->collapsed_spec());
    const CollapsedEval cn = col.bind(kernel->bound_params());
    const size_t d = static_cast<size_t>(cn.depth());
    std::vector<i64> out(8 * d);

    auto sweep = [&](RecoveryStats* stats) {
      for (i64 lo = 1; lo <= cn.trip_count(); lo += 8) {
        const i64 base = std::min<i64>(lo, std::max<i64>(1, cn.trip_count() - 7));
        i64 pcs[8];
        for (int l = 0; l < 8; ++l) pcs[l] = std::min<i64>(base + l, cn.trip_count());
        cn.recover8(pcs, out, stats);
      }
    };
    RecoveryStats vec, libm;
    sweep(&vec);
    simd::set_vector_trig(false);
    sweep(&libm);
    simd::set_vector_trig(true);

    EXPECT_EQ(vec.closed_form, libm.closed_form) << name;
    EXPECT_EQ(vec.corrected, libm.corrected) << name;
    EXPECT_EQ(vec.fallback, libm.fallback) << name;
    EXPECT_EQ(vec.quartic_demoted, libm.quartic_demoted) << name;
  }
}

}  // namespace
}  // namespace nrc
