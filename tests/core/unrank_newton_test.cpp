#include "core/unrank_newton.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/unrank_search.hpp"

namespace nrc {
namespace {

TEST(NewtonUnranker, RoundTripOnAllShapes) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const RankingSystem rs = build_ranking_system(sc.nest);
    const ParamMap p = testutil::uniform_params(sc.nest, 7);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    const NewtonUnranker nu(rs, p);
    const auto pts = domain_points(sc.nest, p);
    std::vector<i64> idx(static_cast<size_t>(sc.nest.depth()));
    for (size_t q = 0; q < pts.size(); ++q) {
      nu.recover(static_cast<i64>(q) + 1, idx);
      EXPECT_EQ(idx, pts[q]) << sc.name << " pc=" << q + 1;
    }
  }
}

TEST(NewtonUnranker, WorksAtDegreeFiveAndAgreesWithSearch) {
  // Beyond the paper's closed-form limit: the Newton path has no degree
  // restriction at all.
  const NestSpec nest = testutil::simplex_5d();
  const RankingSystem rs = build_ranking_system(nest);
  const ParamMap p{{"N", 6}};
  const NewtonUnranker nu(rs, p);
  std::vector<i64> a(5), b(5);
  const i64 total = narrow_i64(rs.total.eval_i128({{"N", 6}}));
  for (i64 pc = 1; pc <= total; ++pc) {
    nu.recover(pc, a);
    b = unrank_by_search(rs, p, pc);
    EXPECT_EQ(a, b) << "pc=" << pc;
  }
}

TEST(NewtonUnranker, LargeDomainsStayExact) {
  // Triangular with N = 2^20: ~5.5e11 iterations; probe rank boundaries.
  const NestSpec nest = testutil::triangular_strict();
  const RankingSystem rs = build_ranking_system(nest);
  const i64 N = 1 << 20;
  const ParamMap p{{"N", N}};
  const NewtonUnranker nu(rs, p);
  std::vector<i64> idx(2);
  std::map<std::string, i64> vals{{"N", N}};
  for (i64 i : {i64{0}, i64{123}, N / 2, N - 3}) {
    vals["i"] = i;
    vals["j"] = i + 1;
    const i64 pc = narrow_i64(rs.rank.eval_i128(vals));
    for (i64 d = -1; d <= 1; ++d) {
      const i64 probe = pc + d;
      if (probe < 1) continue;
      nu.recover(probe, idx);
      // Verify by ranking the result back.
      vals["i"] = idx[0];
      vals["j"] = idx[1];
      EXPECT_EQ(rs.rank.eval_i128(vals), probe) << "i=" << i << " d=" << d;
    }
  }
}

TEST(NewtonUnranker, ConvergesFasterThanBisectionWouldOnWideLevels) {
  // For the N = 2^20 triangle, plain bisection needs ~20 exact evals per
  // level; Newton lands in a handful.
  const NestSpec nest = testutil::triangular_strict();
  const RankingSystem rs = build_ranking_system(nest);
  const i64 N = 1 << 20;
  const NewtonUnranker nu(rs, {{"N", N}});
  std::vector<i64> idx(2);
  const i64 probes = 64;
  const i64 total = narrow_i64(rs.total.eval_i128({{"N", N}}));
  for (i64 q = 1; q <= probes; ++q) nu.recover(q * (total / probes), idx);
  const double steps_per_level =
      static_cast<double>(nu.total_newton_steps()) / (2.0 * static_cast<double>(probes));
  EXPECT_LT(steps_per_level, 12.0);  // bisection alone would need ~20
}

TEST(NewtonUnranker, RejectsBadInputs) {
  const RankingSystem rs = build_ranking_system(testutil::triangular_strict());
  EXPECT_THROW(NewtonUnranker(rs, {}), SpecError);  // missing N
  const NewtonUnranker nu(rs, {{"N", 9}});
  std::vector<i64> idx(2);
  EXPECT_THROW(nu.recover(0, idx), SolveError);
}

TEST(PolynomialDerivative, Basics) {
  const Polynomial x = Polynomial::variable("x");
  const Polynomial y = Polynomial::variable("y");
  // d/dx (x^3 y + 2x + y) = 3x^2 y + 2
  const Polynomial p = x.pow(3) * y + x * Rational(2) + y;
  EXPECT_EQ(p.derivative("x"), x.pow(2) * y * Rational(3) + Polynomial(2));
  EXPECT_EQ(p.derivative("y"), x.pow(3) + Polynomial(1));
  EXPECT_TRUE(Polynomial(7).derivative("x").is_zero());
  EXPECT_TRUE(p.derivative("z").is_zero());
}

}  // namespace
}  // namespace nrc
