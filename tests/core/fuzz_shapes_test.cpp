// Randomized whole-pipeline property test.
//
// Generates random affine nests that satisfy the Fig. 5 model by
// construction (every range non-empty: upper := lower + positive width)
// and validates the complete collapse pipeline on each: ranking
// bijection, closed-form recovery with guards, exact search recovery,
// and odometer order.  Seeded deterministically, so failures reproduce.

#include <gtest/gtest.h>

#include <random>

#include "../test_util.hpp"

namespace nrc {
namespace {

struct FuzzCase {
  unsigned seed;
  int depth;
};

/// Build a random model-conforming nest:
///   lower_k = small random combo of outer iterators + params + const
///   upper_k = lower_k + (non-negative combo) + positive const
/// Coefficients stay small so degrees stay within the closed-form range
/// for depth <= 4 chains.
NestSpec random_nest(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> coef(-1, 1);
  std::uniform_int_distribution<int> pos_coef(0, 1);
  std::uniform_int_distribution<int> cst(-2, 2);
  std::uniform_int_distribution<int> width(1, 4);

  NestSpec nest;
  nest.param("N");
  const char* vars[] = {"i", "j", "k", "l"};

  for (int d = 0; d < depth; ++d) {
    AffineExpr lo = AffineExpr(cst(rng));
    // Occasionally anchor the lower bound to N or an outer iterator.
    if (pos_coef(rng)) lo += AffineExpr::variable("N", pos_coef(rng));
    for (int q = 0; q < d; ++q) lo += AffineExpr::variable(vars[q], coef(rng));

    AffineExpr wid = AffineExpr(width(rng));
    wid += AffineExpr::variable("N", 1);  // keep domains O(N) wide
    for (int q = 0; q < d; ++q) wid += AffineExpr::variable(vars[q], pos_coef(rng));

    // Non-negativity of `wid` holds because iterators can only be
    // negative by a bounded constant here while N dominates; verified
    // below by has_no_empty_ranges before the case is used.
    nest.loop(vars[d], lo, lo + wid);
  }
  return nest;
}

class FuzzShapes : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzShapes, WholeDomainRoundTrip) {
  const FuzzCase fc = GetParam();
  std::mt19937 rng(fc.seed);
  const NestSpec nest = random_nest(rng, fc.depth);
  const ParamMap params{{"N", 7}};

  if (!has_no_empty_ranges(nest, params) || count_domain_brute(nest, params) < 2)
    GTEST_SKIP() << "generated nest left the model for this size";

  Collapsed col;  // default-constructed; assigned below
  try {
    col = collapse(nest);
  } catch (const SolveError& e) {
    // Calibration can legitimately fail if the nest violates the model
    // at every calibration size; that is a correct rejection.
    GTEST_SKIP() << "rejected at collapse time: " << e.what();
  }
  // Depth-4 random nests can reach ~10^6 points; cap the sweep so the
  // suite stays fast while every case still checks thousands of points.
  ValidateOptions vopts;
  vopts.max_points = 5000;
  const auto rep = validate_collapsed(col, params, vopts);
  EXPECT_TRUE(rep.ok) << nest.str() << rep.first_error;

  // A second, larger size: branch selection must generalize (§IV-D).
  // Gate on the symbolic count first — walking a multi-million-point
  // domain just to validate a capped prefix is wasted time.
  const ParamMap big{{"N", 19}};
  std::map<std::string, i64> bp(big.begin(), big.end());
  if (col.ranking().total.eval_i128(bp) <= 200000 && has_no_empty_ranges(nest, big)) {
    const auto rep2 = validate_collapsed(col, big, vopts);
    EXPECT_TRUE(rep2.ok) << nest.str() << rep2.first_error;
  }
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (int depth = 2; depth <= 4; ++depth) {
    for (unsigned seed = 1; seed <= 40; ++seed) {
      cases.push_back({seed * 7919u + static_cast<unsigned>(depth), depth});
    }
  }
  return cases;
}

std::string fuzz_name(const ::testing::TestParamInfo<FuzzCase>& info) {
  return "d" + std::to_string(info.param.depth) + "_s" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Random, FuzzShapes, ::testing::ValuesIn(fuzz_cases()),
                         fuzz_name);

}  // namespace
}  // namespace nrc
