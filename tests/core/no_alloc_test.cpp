// Zero-heap-allocation guarantee of the recovery hot path.
//
// This suite replaces the global operator new/delete with counting
// versions (which is why it links into its own test executable) and
// asserts that recover(), recover_block(), recover_search() and the
// NewtonUnranker perform no allocation after bind-time setup — the
// property the §V chunked schemes rely on to keep per-chunk recovery
// overhead flat.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "../test_util.hpp"

namespace {
std::atomic<long long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace nrc {
namespace {

struct Case {
  std::string name;
  CollapsedEval cn;
};

std::vector<Case> engine_cases() {
  std::vector<Case> cases;
  cases.push_back({"triangular_quadratic",
                   collapse(testutil::triangular_strict()).bind({{"N", 300}})});
  cases.push_back({"tetrahedral_cubic",
                   collapse(testutil::tetrahedral_fig6()).bind({{"N", 40}})});
  // The guarded Ferrari, in all four engine configurations: proven-f64
  // guards (the default), the checked-i128 reference guards, the forced
  // per-point bytecode demotion path, and the bytecode ablation — every
  // one must stay allocation-free.
  cases.push_back({"simplex_quartic", collapse(testutil::simplex_4d()).bind({{"N", 20}})});
  cases.push_back({"simplex_quartic_i128", collapse(testutil::simplex_4d()).bind({{"N", 20}})});
  cases.back().cn.set_f64_guards(false);
  cases.push_back(
      {"simplex_quartic_demoted", collapse(testutil::simplex_4d()).bind({{"N", 20}})});
  cases.back().cn.force_quartic_demotion();
  cases.push_back(
      {"simplex_quartic_bytecode", collapse(testutil::simplex_4d()).bind({{"N", 20}})});
  cases.back().cn.use_bytecode_quartics();
  cases.push_back({"quartic_shifted",
                   collapse(testutil::simplex_4d_shifted()).bind({{"N", 16}})});
  cases.push_back({"rectangular_division",
                   collapse(testutil::rectangular()).bind({{"N", 40}, {"M", 17}})});
  return cases;
}

TEST(NoAllocation, RecoverHotPath) {
  for (auto& c : engine_cases()) {
    i64 idx[kMaxDepth];
    const size_t d = static_cast<size_t>(c.cn.depth());
    RecoveryStats stats;
    c.cn.recover(1, {idx, d}, &stats);  // touch every lazy libc path once

    const i64 n = std::min<i64>(c.cn.trip_count(), 2000);
    const long long before = g_allocations.load();
    for (i64 pc = 1; pc <= n; ++pc) c.cn.recover(pc, {idx, d}, &stats);
    const long long after = g_allocations.load();
    EXPECT_EQ(after, before) << c.name << ": recover() allocated";
  }
}

TEST(NoAllocation, RecoverBlockHotPath) {
  for (auto& c : engine_cases()) {
    const size_t d = static_cast<size_t>(c.cn.depth());
    constexpr i64 kBlock = 128;
    std::vector<i64> out(kBlock * d);  // caller-owned buffer: not hot path
    c.cn.recover_block(1, kBlock, out);

    const long long before = g_allocations.load();
    for (i64 lo = 1; lo <= c.cn.trip_count(); lo += kBlock)
      c.cn.recover_block(lo, kBlock, out);
    const long long after = g_allocations.load();
    EXPECT_EQ(after, before) << c.name << ": recover_block() allocated";
  }
}

TEST(NoAllocation, RecoverBlockLanesHotPath) {
  // The lane-strided (SoA) batched path: SIMD fills over caller-owned
  // columns, no hidden scratch.
  for (auto& c : engine_cases()) {
    const size_t d = static_cast<size_t>(c.cn.depth());
    constexpr i64 kBlock = 128;
    std::vector<i64> out(d * kBlock);  // caller-owned buffer: not hot path
    c.cn.recover_block_lanes(1, kBlock, out, kBlock);

    const long long before = g_allocations.load();
    for (i64 lo = 1; lo <= c.cn.trip_count(); lo += kBlock)
      c.cn.recover_block_lanes(lo, kBlock, out, kBlock);
    const long long after = g_allocations.load();
    EXPECT_EQ(after, before) << c.name << ": recover_block_lanes() allocated";
  }
}

TEST(NoAllocation, LaneBatchedRecoveryHotPath) {
  // recover4 / recover_blocks4: lane-parallel solves (including the
  // 4-wide bytecode program on the quartic case) over stack scratch.
  for (auto& c : engine_cases()) {
    const size_t d = static_cast<size_t>(c.cn.depth());
    constexpr i64 kBlock = 32;
    std::vector<i64> tuples(4 * d);
    std::vector<i64> tiles(4 * d * kBlock);
    i64 rows[4];
    const i64 total = c.cn.trip_count();
    const i64 q = std::max<i64>(1, total / 4);
    const i64 pcs[4] = {1, std::min(q + 1, total), std::min(2 * q + 1, total), total};
    c.cn.recover4(pcs, tuples);
    c.cn.recover_blocks4(pcs, kBlock, tiles, kBlock, rows);

    const long long before = g_allocations.load();
    for (i64 lo = 1; lo + 3 <= std::min<i64>(total, 2000); lo += 4) {
      const i64 w[4] = {lo, lo + 1, lo + 2, lo + 3};
      c.cn.recover4(w, tuples);
    }
    c.cn.recover_blocks4(pcs, kBlock, tiles, kBlock, rows);
    const long long after = g_allocations.load();
    EXPECT_EQ(after, before) << c.name << ": lane-batched recovery allocated";
  }
}

TEST(NoAllocation, EightLaneRecoveryHotPath) {
  // recover8 / recover_blocks8: the wide-lane twins (native 512-bit
  // vectors on the AVX-512 leg, emulated elsewhere) over the same
  // stack scratch — no allocation on any leg.
  for (auto& c : engine_cases()) {
    const size_t d = static_cast<size_t>(c.cn.depth());
    constexpr i64 kBlock = 32;
    std::vector<i64> tuples(8 * d);
    std::vector<i64> tiles(8 * d * kBlock);
    i64 rows[8];
    const i64 total = c.cn.trip_count();
    const i64 q = std::max<i64>(1, total / 8);
    i64 pcs[8];
    for (int b = 0; b < 8; ++b) pcs[b] = std::min<i64>(static_cast<i64>(b) * q + 1, total);
    c.cn.recover8(pcs, tuples);
    c.cn.recover_blocks8(pcs, kBlock, tiles, kBlock, rows);

    const long long before = g_allocations.load();
    for (i64 lo = 1; lo + 7 <= std::min<i64>(total, 2000); lo += 8) {
      i64 w[8];
      for (int b = 0; b < 8; ++b) w[b] = lo + b;
      c.cn.recover8(w, tuples);
    }
    c.cn.recover_blocks8(pcs, kBlock, tiles, kBlock, rows);
    const long long after = g_allocations.load();
    EXPECT_EQ(after, before) << c.name << ": 8-lane recovery allocated";
  }
}

TEST(NoAllocation, SearchRecoveryHotPath) {
  for (auto& c : engine_cases()) {
    i64 idx[kMaxDepth];
    const size_t d = static_cast<size_t>(c.cn.depth());
    c.cn.recover_search(1, {idx, d});

    const i64 n = std::min<i64>(c.cn.trip_count(), 500);
    const long long before = g_allocations.load();
    for (i64 pc = 1; pc <= n; ++pc) c.cn.recover_search(pc, {idx, d});
    const long long after = g_allocations.load();
    EXPECT_EQ(after, before) << c.name << ": recover_search() allocated";
  }
}

TEST(NoAllocation, NewtonRecoveryHotPath) {
  const NestSpec nest = testutil::tetrahedral_fig6();
  const RankingSystem rs = build_ranking_system(nest);
  const NewtonUnranker nu(rs, {{"N", 40}});
  i64 idx[kMaxDepth];
  const size_t d = static_cast<size_t>(nu.depth());
  nu.recover(1, {idx, d});

  const long long before = g_allocations.load();
  for (i64 pc = 1; pc <= 500; ++pc) nu.recover(pc, {idx, d});
  const long long after = g_allocations.load();
  EXPECT_EQ(after, before) << "NewtonUnranker::recover() allocated";
}

TEST(NoAllocation, CounterItselfWorks) {
  // Sanity: the hook really observes allocations.
  const long long before = g_allocations.load();
  auto* p = new int(7);
  const long long after = g_allocations.load();
  delete p;
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace nrc
