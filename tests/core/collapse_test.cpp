#include "core/collapse.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/validate.hpp"

namespace nrc {
namespace {

TEST(Collapse, ApiBasics) {
  const Collapsed col = collapse(testutil::triangular_strict());
  EXPECT_EQ(col.nest().depth(), 2);
  EXPECT_TRUE(col.fully_closed_form());
  EXPECT_EQ(col.slot_order(),
            (std::vector<std::string>{"i", "j", "N", "pc"}));
  const std::string d = col.describe();
  EXPECT_NE(d.find("ranking polynomial"), std::string::npos);
  EXPECT_NE(d.find("trip count"), std::string::npos);
}

TEST(Collapse, BindComputesTripCount) {
  const Collapsed col = collapse(testutil::triangular_strict());
  EXPECT_EQ(col.bind({{"N", 100}}).trip_count(), 99 * 100 / 2);
  EXPECT_EQ(col.bind({{"N", 5000}}).trip_count(), 4999LL * 5000 / 2);
}

TEST(Collapse, BindRejectsMissingParamAndEmptyDomain) {
  const Collapsed col = collapse(testutil::triangular_strict());
  EXPECT_THROW(col.bind({}), SpecError);
  EXPECT_THROW(col.bind({{"N", 1}}), SpecError);  // empty domain
}

TEST(Collapse, RankAndRecoverAgree) {
  const Collapsed col = collapse(testutil::tetrahedral_fig6());
  const CollapsedEval cn = col.bind({{"N", 15}});
  std::vector<i64> idx(3);
  for (i64 pc = 1; pc <= cn.trip_count(); ++pc) {
    cn.recover(pc, idx);
    EXPECT_EQ(cn.rank(idx), pc);
  }
}

TEST(Collapse, FirstLastIncrement) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 6}});
  std::vector<i64> idx(2);
  cn.first(idx);
  EXPECT_EQ(idx, (std::vector<i64>{0, 1}));
  std::vector<i64> lst(2);
  cn.last(lst);
  EXPECT_EQ(lst, (std::vector<i64>{4, 5}));
  // Walk the whole domain by increment.
  i64 steps = 1;
  while (cn.increment(idx)) ++steps;
  EXPECT_EQ(steps, cn.trip_count());
}

TEST(Collapse, BoundsEvaluation) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 10}});
  const std::vector<i64> idx{3, 4};
  EXPECT_EQ(cn.lower_bound(0, idx), 0);
  EXPECT_EQ(cn.upper_bound(0, idx), 9);
  EXPECT_EQ(cn.lower_bound(1, idx), 4);  // i + 1
  EXPECT_EQ(cn.upper_bound(1, idx), 10);
}

TEST(Collapse, ClosedFormDisabledStillRecovers) {
  CollapseOptions opts;
  opts.build_closed_form = false;
  const Collapsed col = collapse(testutil::triangular_strict(), opts);
  EXPECT_FALSE(col.fully_closed_form());
  const auto rep = validate_collapsed(col, {{"N", 20}});
  EXPECT_TRUE(rep.ok) << rep.first_error;
}

TEST(Collapse, DegreeBeyondFourFallsBackToSearch) {
  const Collapsed col = collapse(testutil::simplex_5d());
  EXPECT_FALSE(col.fully_closed_form());  // level 0 has degree 5
  EXPECT_EQ(col.levels()[0].branch, -1);
  EXPECT_GE(col.levels()[1].branch, 0);  // degree 4 still closed-form
  const auto rep = validate_collapsed(col, {{"N", 5}});
  EXPECT_TRUE(rep.ok) << rep.first_error;
}

TEST(Collapse, SingleLoopCollapse) {
  // Depth-1 "collapse" degenerates to the identity mapping pc -> i.
  NestSpec n;
  n.param("N").loop("i", aff::c(2), aff::v("N"));
  const Collapsed col = collapse(n);
  const CollapsedEval cn = col.bind({{"N", 9}});
  EXPECT_EQ(cn.trip_count(), 7);
  std::vector<i64> idx(1);
  cn.recover(3, idx);
  EXPECT_EQ(idx[0], 4);  // lb 2 + (pc 3 - 1)
}

TEST(Collapse, DepthLimitEnforced) {
  NestSpec deep;
  deep.param("N");
  std::string prev;
  for (int k = 0; k < kMaxDepth + 1; ++k) {
    const std::string v = "v" + std::to_string(k);
    deep.loop(v, aff::c(0), aff::v("N"));
    prev = v;
  }
  EXPECT_THROW(collapse(deep), SpecError);
}

TEST(Collapse, UserCalibrationIsRespected) {
  CollapseOptions opts;
  opts.calibration = {{"N", 9}};
  const Collapsed col = collapse(testutil::triangular_strict(), opts);
  EXPECT_TRUE(col.fully_closed_form());
  EXPECT_TRUE(validate_collapsed(col, {{"N", 40}}).ok);
}

TEST(Collapse, RecoverClosedRawMatchesGuardedOnWellConditionedSizes) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 64}});
  std::vector<i64> raw(2), guarded(2);
  for (i64 pc = 1; pc <= cn.trip_count(); ++pc) {
    cn.recover(pc, guarded);
    ASSERT_TRUE(cn.recover_closed_raw(pc, raw));
    EXPECT_EQ(raw, guarded) << "pc=" << pc;
  }
}

TEST(Collapse, LargeParameterRecoveryIsExact) {
  // Floating-point guard test: at N = 2^20 the discriminant is ~4e12 and
  // naive floor(double) can be off by one; the integer correction must
  // make recovery exact.  Probe ranks around row boundaries, where the
  // root is an exact integer (the worst case).
  const Collapsed col = collapse(testutil::triangular_strict());
  const i64 N = 1 << 20;
  const CollapsedEval cn = col.bind({{"N", N}});
  std::vector<i64> idx(2);
  for (i64 i : {i64{0}, i64{1}, i64{77}, N / 3, N / 2, N - 3}) {
    // pc of the first iteration of row i: r(i, i+1).
    const std::vector<i64> first_of_row{i, i + 1};
    const i64 pc = cn.rank(first_of_row);
    for (i64 delta = -2; delta <= 2; ++delta) {
      const i64 probe = pc + delta;
      if (probe < 1 || probe > cn.trip_count()) continue;
      cn.recover(probe, idx);
      EXPECT_EQ(cn.rank(idx), probe) << "i=" << i << " delta=" << delta;
      std::vector<i64> via_search(2);
      cn.recover_search(probe, via_search);
      EXPECT_EQ(idx, via_search) << "i=" << i << " delta=" << delta;
    }
  }
}

}  // namespace
}  // namespace nrc
