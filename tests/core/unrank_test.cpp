#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/unrank_closed.hpp"
#include "core/unrank_search.hpp"

namespace nrc {
namespace {

TEST(UnrankSearch, RoundTripOnAllShapes) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const RankingSystem rs = build_ranking_system(sc.nest);
    const ParamMap p = testutil::uniform_params(sc.nest, 6);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    const auto pts = domain_points(sc.nest, p);
    for (size_t q = 0; q < pts.size(); ++q) {
      EXPECT_EQ(unrank_by_search(rs, p, static_cast<i64>(q) + 1), pts[q])
          << sc.name << " pc=" << q + 1;
    }
  }
}

TEST(UnrankSearch, WorksBeyondClosedFormDegreeLimit) {
  // 5-deep simplex: level-0 equation has degree 5; search is exact anyway.
  const NestSpec nest = testutil::simplex_5d();
  const RankingSystem rs = build_ranking_system(nest);
  const ParamMap p{{"N", 5}};
  const auto pts = domain_points(nest, p);
  for (size_t q = 0; q < pts.size(); ++q)
    EXPECT_EQ(unrank_by_search(rs, p, static_cast<i64>(q) + 1), pts[q]);
}

TEST(UnrankSearch, InvalidPcThrows) {
  const RankingSystem rs = build_ranking_system(testutil::triangular_strict());
  EXPECT_THROW(unrank_by_search(rs, {{"N", 5}}, 0), SolveError);
}

TEST(LevelFormulas, DegreesMatchShape) {
  {
    const RankingSystem rs = build_ranking_system(testutil::triangular_strict());
    const auto lf = build_level_formulas(rs, 4);
    ASSERT_EQ(lf.size(), 2u);
    EXPECT_EQ(lf[0].degree, 2);  // quadratic in i (paper Fig. 3)
    EXPECT_EQ(lf[1].degree, 1);  // linear in j
  }
  {
    const RankingSystem rs = build_ranking_system(testutil::tetrahedral_fig6());
    const auto lf = build_level_formulas(rs, 4);
    ASSERT_EQ(lf.size(), 3u);
    EXPECT_EQ(lf[0].degree, 3);  // cubic in i (paper Fig. 7)
    EXPECT_EQ(lf[1].degree, 2);
    EXPECT_EQ(lf[2].degree, 1);
  }
  {
    const RankingSystem rs = build_ranking_system(testutil::simplex_5d());
    const auto lf = build_level_formulas(rs, 4);
    EXPECT_TRUE(lf[0].coeffs.empty());   // degree 5: no closed form
    EXPECT_FALSE(lf[1].coeffs.empty());  // degree 4: still eligible
  }
}

TEST(LevelFormulas, CoefficientsReconstructTheEquation) {
  // Sum of coeffs[e] * x^e must equal prefix_rank - pc.
  const RankingSystem rs = build_ranking_system(testutil::triangular_strict());
  const auto lf = build_level_formulas(rs, 4);
  const Polynomial x = Polynomial::variable("i");
  Polynomial rebuilt;
  for (size_t e = 0; e < lf[0].coeffs.size(); ++e)
    rebuilt += lf[0].coeffs[e] * x.pow(static_cast<unsigned>(e));
  EXPECT_EQ(rebuilt, rs.prefix_rank[0] - Polynomial::variable(kPcVar));
}

TEST(BranchSelection, FindsConvenientBranchOnAllShapes) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const RankingSystem rs = build_ranking_system(sc.nest);
    auto lf = build_level_formulas(rs, 4);
    std::vector<std::string> slots = sc.nest.loop_vars();
    for (const auto& pp : sc.nest.params()) slots.push_back(pp);
    slots.push_back(kPcVar);
    const ParamMap cal = sc.nest.params().empty() ? ParamMap{} : default_calibration(sc.nest);
    select_convenient_branches(lf, rs, cal, slots);
    for (size_t k = 0; k < lf.size(); ++k) {
      if (lf[k].coeffs.empty()) continue;
      EXPECT_GE(lf[k].branch, 0) << sc.name << " level " << k;
      EXPECT_FALSE(lf[k].root.empty()) << sc.name << " level " << k;
    }
  }
}

TEST(BranchSelection, CorrelationUsesNegativeSqrtBranch) {
  // Paper §IV-A picks i = -(sqrt(...) - 2N + 1)/2, i.e. the "minus"
  // branch of the quadratic (our branch 1, since the leading coefficient
  // -1/2 is negative: (-b - s)/(2a) with a < 0 is the smaller-sqrt form).
  const RankingSystem rs = build_ranking_system(testutil::triangular_strict());
  auto lf = build_level_formulas(rs, 4);
  std::vector<std::string> slots = {"i", "j", "N", "pc"};
  select_convenient_branches(lf, rs, {{"N", 8}}, slots);
  ASSERT_GE(lf[0].branch, 0);
  // Verify the selected branch reproduces the paper's floor values for a
  // larger N than calibration used.
  const CompiledExpr ce(lf[0].root, slots);
  const i64 N = 50;
  auto expect_i = [&](i64 pc) {
    // Paper formula: floor(-(sqrt(4N^2-4N-8pc+9) - 2N + 1)/2).
    const double v =
        -(std::sqrt(4.0 * N * N - 4.0 * N - 8.0 * pc + 9.0) - 2.0 * N + 1.0) / 2.0;
    return static_cast<i64>(std::floor(v + 1e-9));
  };
  for (i64 pc : {1, 2, 10, 49, 50, 500, 1224, 1225}) {
    const i64 pt[] = {0, 0, N, pc};
    const cld z = ce.eval({pt, 4});
    EXPECT_EQ(static_cast<i64>(std::floor(z.real() + 1e-9L)), expect_i(pc)) << pc;
  }
}

TEST(DefaultCalibration, ProducesUsableDomains) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    if (sc.nest.params().empty()) continue;
    const ParamMap cal = default_calibration(sc.nest);
    EXPECT_GE(count_domain_brute(sc.nest, cal), 4) << sc.name;
    EXPECT_TRUE(has_no_empty_ranges(sc.nest, cal)) << sc.name;
  }
}

}  // namespace
}  // namespace nrc
