#include "core/increment.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace nrc {
namespace {

TEST(Increment, ReproducesWalkOnAllShapes) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const ParamMap p = testutil::uniform_params(sc.nest, 6);
    if (!has_no_empty_ranges(sc.nest, p)) continue;
    const auto pts = domain_points(sc.nest, p);
    std::vector<i64> idx(static_cast<size_t>(sc.nest.depth()));
    first_point(sc.nest, p, idx);
    for (size_t q = 0; q < pts.size(); ++q) {
      EXPECT_EQ(idx, pts[q]) << sc.name << " step " << q;
      const bool more = next_point(sc.nest, p, idx);
      EXPECT_EQ(more, q + 1 < pts.size()) << sc.name << " step " << q;
      if (!more) break;
    }
  }
}

TEST(Increment, CorrelationPattern) {
  // Matches the hand-written incrementation of paper Fig. 4:
  // j++; if (j >= N) { i++; j = i+1; }
  const NestSpec tri = testutil::triangular_strict();
  const ParamMap p{{"N", 5}};
  std::vector<i64> idx{0, 3};
  EXPECT_TRUE(next_point(tri, p, idx));
  EXPECT_EQ(idx, (std::vector<i64>{0, 4}));
  EXPECT_TRUE(next_point(tri, p, idx));
  EXPECT_EQ(idx, (std::vector<i64>{1, 2}));  // row change resets j to i+1
}

TEST(Increment, CascadeAcrossMultipleLevels) {
  const NestSpec t = testutil::tetrahedral_ordered();
  const ParamMap p{{"N", 4}};
  // Last point of the i=0 subtree is (0,3,3); successor is (1,1,1).
  std::vector<i64> idx{0, 3, 3};
  EXPECT_TRUE(next_point(t, p, idx));
  EXPECT_EQ(idx, (std::vector<i64>{1, 1, 1}));
}

TEST(Increment, EndOfDomainReturnsFalse) {
  const NestSpec tri = testutil::triangular_strict();
  std::vector<i64> idx{3, 4};  // last point for N = 5
  EXPECT_FALSE(next_point(tri, {{"N", 5}}, idx));
}

TEST(Increment, FirstPointChainsLowerBounds) {
  const NestSpec s = testutil::shifted_bounds();
  std::vector<i64> idx(2);
  first_point(s, {{"N", 9}}, idx);
  EXPECT_EQ(idx, (std::vector<i64>{3, 1}));
}

}  // namespace
}  // namespace nrc
