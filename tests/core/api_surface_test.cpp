// Breadth tests for public-API behaviours not covered by the focused
// module suites: describe() content, emitter option combinations,
// evaluator edge semantics, reserved names, and cross-module plumbing.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "codegen/c_emitter.hpp"

namespace nrc {
namespace {

TEST(Describe, ContainsPaperFormulasForCorrelation) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const std::string d = col.describe();
  // The §III ranking polynomial, rendered from the exact rationals.
  EXPECT_NE(d.find("-1/2*i^2"), std::string::npos) << d;
  EXPECT_NE(d.find("N*i"), std::string::npos);
  EXPECT_NE(d.find("1/2*N^2 - 1/2*N"), std::string::npos);
  EXPECT_NE(d.find("degree 2"), std::string::npos);
  EXPECT_NE(d.find("floor("), std::string::npos);
}

TEST(Describe, SearchFallbackIsReported) {
  const Collapsed col = collapse(testutil::simplex_5d());
  EXPECT_NE(col.describe().find("exact binary search"), std::string::npos);
}

TEST(Emitter, DynamicScheduleOption) {
  const NestProgram prog = parse_nest_program(R"(
name dyn
params N
array double x[N]
loop i = 0 .. N
loop j = i .. N
body { x[i] += (double)j; }
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::per_iteration(OmpSchedule::Dynamic);
  const std::string src = emit_collapsed_function(prog, col, opt);
  EXPECT_NE(src.find("schedule(dynamic)"), std::string::npos);
}

TEST(Emitter, SerialEmissionOmitsPragma) {
  const NestProgram prog = parse_nest_program(R"(
name ser
params N
array double x[N]
loop i = 0 .. N
loop j = i .. N
body { x[i] += 1.0; }
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.parallel = false;
  EXPECT_EQ(emit_collapsed_function(prog, col, opt).find("#pragma omp parallel"),
            std::string::npos);
}

TEST(Emitter, OneDimensionalArrayParams) {
  const NestProgram prog = parse_nest_program(R"(
name vec
params N
array double v[N]
loop i = 0 .. N
loop j = i .. N
body { v[i] += 1.0; }
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  const std::string src = emit_verification_program(prog, col, {});
  EXPECT_NE(src.find("double *v"), std::string::npos);
}

TEST(CollapsedEval, ParamsAccessorAndClosedFormFlags) {
  const Collapsed col = collapse(testutil::tetrahedral_fig6());
  const CollapsedEval cn = col.bind({{"N", 9}});
  EXPECT_EQ(cn.params().at("N"), 9);
  EXPECT_TRUE(cn.has_closed_form(0));
  EXPECT_TRUE(cn.has_closed_form(1));
  EXPECT_EQ(cn.depth(), 3);
}

TEST(CollapsedEval, RecoverAtBothEndsOfTheRange) {
  const Collapsed col = collapse(testutil::trapezoidal_skewed());
  const ParamMap p{{"T", 9}, {"N", 5}};
  const CollapsedEval cn = col.bind(p);
  std::vector<i64> idx(2);
  cn.recover(1, idx);
  EXPECT_EQ(idx, lexmin_point(col.nest(), p));
  cn.recover(cn.trip_count(), idx);
  EXPECT_EQ(idx, lexmax_point(col.nest(), p));
}

TEST(CollapsedEval, MultiParamBinding) {
  const Collapsed col = collapse(testutil::rectangular());
  const CollapsedEval cn = col.bind({{"N", 6}, {"M", 4}});
  EXPECT_EQ(cn.trip_count(), 24);
  std::vector<i64> idx(2);
  cn.recover(5, idx);  // row-major rank 5 -> (1, 0)
  EXPECT_EQ(idx, (std::vector<i64>{1, 0}));
}

TEST(Collapse, CollapseDepthOneOfDeepNest) {
  // Collapsing just the outer loop of a 3-deep nest: trip count is the
  // outer extent, recovery is the identity shift.
  const NestSpec sub = testutil::tetrahedral_fig6().outer(1);
  const Collapsed col = collapse(sub);
  const CollapsedEval cn = col.bind({{"N", 10}});
  EXPECT_EQ(cn.trip_count(), 9);  // i in [0, N-1)
  std::vector<i64> idx(1);
  cn.recover(7, idx);
  EXPECT_EQ(idx[0], 6);
}

TEST(Collapse, RebindDifferentParamsReusesSymbolicWork) {
  const Collapsed col = collapse(testutil::triangular_strict());
  for (i64 N : {3, 10, 100, 1000}) {
    const CollapsedEval cn = col.bind({{"N", N}});
    EXPECT_EQ(cn.trip_count(), (N - 1) * N / 2) << N;
  }
}

TEST(SlotOrder, LoopVarsThenParamsThenPc) {
  const Collapsed col = collapse(testutil::trapezoidal_skewed());
  EXPECT_EQ(col.slot_order(), (std::vector<std::string>{"i", "j", "T", "N", "pc"}));
}

TEST(ValidateAcrossSchemes, SegmentAndBlockAgreeOnChecksum) {
  // Cross-scheme determinism: identical outputs from segment and block
  // execution of the same nest body.
  const Collapsed col = collapse(testutil::triangular_inclusive());
  const CollapsedEval cn = col.bind({{"N", 64}});
  std::vector<double> a(64 * 64, 0.0), b(64 * 64, 0.0);
  collapsed_for_per_thread(cn, [&](std::span<const i64> ij) {
    a[static_cast<size_t>(ij[0] * 64 + ij[1])] = static_cast<double>(ij[0] - ij[1]);
  });
  collapsed_for_row_segments(cn, [&](std::span<const i64> prefix, i64 j0, i64 j1) {
    for (i64 j = j0; j < j1; ++j)
      b[static_cast<size_t>(prefix[0] * 64 + j)] = static_cast<double>(prefix[0] - j);
  });
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace nrc
