// Parameterized whole-domain property sweep: every nest shape x every
// parameter size is validated end to end (rank bijection, closed-form
// recovery, search recovery, odometer), which is the library's core
// correctness claim.
#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace nrc {
namespace {

struct SweepCase {
  std::string shape;
  i64 size;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const auto& sc : testutil::closed_form_shapes()) {
    for (i64 v : {2, 3, 4, 5, 7, 9, 12, 17, 23}) {
      cases.push_back({sc.name, v});
    }
  }
  return cases;
}

NestSpec shape_by_name(const std::string& name) {
  for (auto& sc : testutil::closed_form_shapes())
    if (sc.name == name) return sc.nest;
  throw SpecError("unknown shape " + name);
}

class ShapeSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ShapeSweep, WholeDomainRoundTrip) {
  const SweepCase& sc = GetParam();
  const NestSpec nest = shape_by_name(sc.shape);
  const ParamMap params = testutil::uniform_params(nest, sc.size);
  if (count_domain_brute(nest, params) == 0) GTEST_SKIP() << "empty domain";
  if (!has_no_empty_ranges(nest, params)) GTEST_SKIP() << "outside Fig. 5 model";

  const Collapsed col = collapse(nest);
  const auto rep = validate_collapsed(col, params);
  EXPECT_TRUE(rep.ok) << rep.first_error << "\n" << col.describe();
}

TEST_P(ShapeSweep, SearchAndClosedFormAgree) {
  const SweepCase& sc = GetParam();
  const NestSpec nest = shape_by_name(sc.shape);
  const ParamMap params = testutil::uniform_params(nest, sc.size);
  if (count_domain_brute(nest, params) == 0) GTEST_SKIP() << "empty domain";
  if (!has_no_empty_ranges(nest, params)) GTEST_SKIP() << "outside Fig. 5 model";

  const Collapsed col = collapse(nest);
  const CollapsedEval cn = col.bind(params);
  std::vector<i64> a(static_cast<size_t>(cn.depth()));
  std::vector<i64> b(static_cast<size_t>(cn.depth()));
  const i64 total = cn.trip_count();
  // Probe a spread of ranks (all of them for small domains).
  const i64 step = total <= 512 ? 1 : total / 512;
  for (i64 pc = 1; pc <= total; pc += step) {
    cn.recover(pc, a);
    cn.recover_search(pc, b);
    EXPECT_EQ(a, b) << "pc=" << pc;
  }
}

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return info.param.shape + "_" + std::to_string(info.param.size);
}

INSTANTIATE_TEST_SUITE_P(AllShapesAllSizes, ShapeSweep,
                         ::testing::ValuesIn(sweep_cases()), case_name);

// -- Collapse of a sub-nest (outer c loops of a deeper nest) -------------

class OuterCollapse : public ::testing::TestWithParam<int> {};

TEST_P(OuterCollapse, TetrahedralPrefix) {
  const int c = GetParam();
  const NestSpec full = testutil::tetrahedral_ordered();
  const NestSpec sub = full.outer(c);
  const Collapsed col = collapse(sub);
  const auto rep = validate_collapsed(col, {{"N", 10}});
  EXPECT_TRUE(rep.ok) << rep.first_error;
}

INSTANTIATE_TEST_SUITE_P(Depths, OuterCollapse, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace nrc
