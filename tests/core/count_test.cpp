#include "core/count.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "polyhedral/domain.hpp"

namespace nrc {
namespace {

std::map<std::string, i64> to_std(const ParamMap& p) {
  return {p.begin(), p.end()};
}

TEST(Count, TotalMatchesBruteForceAcrossShapesAndSizes) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const Polynomial total = count_polynomial(sc.nest);
    for (i64 v : {2, 3, 5, 8, 13}) {
      const ParamMap p = testutil::uniform_params(sc.nest, v);
      if (!has_no_empty_ranges(sc.nest, p)) continue;  // outside the model
      EXPECT_EQ(total.eval_i128(to_std(p)), count_domain_brute(sc.nest, p))
          << sc.name << " v=" << v;
    }
  }
}

TEST(Count, KnownClosedForms) {
  // strict triangle: (N-1)N/2
  const Polynomial N = Polynomial::variable("N");
  EXPECT_EQ(count_polynomial(testutil::triangular_strict()), (N.pow(2) - N) / Rational(2));
  // Fig. 6: (N^3 - N)/6
  EXPECT_EQ(count_polynomial(testutil::tetrahedral_fig6()), (N.pow(3) - N) / Rational(6));
  // rectangle: N*M
  EXPECT_EQ(count_polynomial(testutil::rectangular()),
            N * Polynomial::variable("M"));
  // rhomboid: N*M (every row has M points)
  EXPECT_EQ(count_polynomial(testutil::rhomboidal()), N * Polynomial::variable("M"));
}

TEST(Count, SubtreeCountsStructure) {
  const auto S = subtree_counts(testutil::tetrahedral_fig6());
  ASSERT_EQ(S.size(), 4u);
  EXPECT_EQ(S[3], Polynomial(1));
  // S[2](i, j) = number of k in [j, i+1) = i + 1 - j.
  EXPECT_EQ(S[2], Polynomial::variable("i") + Polynomial(1) - Polynomial::variable("j"));
  // S[0] is parameter-only.
  EXPECT_TRUE(S[0].variables() == std::set<std::string>{"N"});
}

TEST(Count, SubtreeCountsMatchBruteForcePerPrefix) {
  const NestSpec nest = testutil::tetrahedral_fig6();
  const auto S = subtree_counts(nest);
  const ParamMap p{{"N", 7}};
  // For every (i, j) prefix, S[2] must count the k-range.
  std::map<std::pair<i64, i64>, i64> per_prefix;
  walk_domain(nest, p, [&](std::span<const i64> pt) {
    ++per_prefix[{pt[0], pt[1]}];
  });
  for (const auto& [ij, cnt] : per_prefix) {
    EXPECT_EQ(S[2].eval_i128({{"i", ij.first}, {"j", ij.second}, {"N", 7}}), cnt);
  }
}

TEST(Count, DegreeGrowsWithDependencyChain) {
  EXPECT_EQ(count_polynomial(testutil::simplex_4d()).degree_in("N"), 4);
  EXPECT_EQ(count_polynomial(testutil::simplex_5d()).degree_in("N"), 5);
}

TEST(Count, ParamFreeNestIsConstant) {
  NestSpec n;
  n.loop("i", aff::c(0), aff::c(4)).loop("j", aff::v("i"), aff::c(4));
  const Polynomial total = count_polynomial(n);
  EXPECT_TRUE(total.is_constant());
  EXPECT_EQ(total.constant_term(), Rational(10));
}

}  // namespace
}  // namespace nrc
