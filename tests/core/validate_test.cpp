#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace nrc {
namespace {

TEST(Validate, PassesOnModelConformingNest) {
  const Collapsed col = collapse(testutil::triangular_strict());
  ValidateOptions opts;
  opts.check_closed_raw = true;  // strict: unguarded closed form too
  const auto rep = validate_collapsed(col, {{"N", 25}}, opts);
  EXPECT_TRUE(rep.ok) << rep.first_error;
  EXPECT_EQ(rep.points_checked, 24 * 25 / 2);
  EXPECT_EQ(rep.mismatches, 0);
  EXPECT_TRUE(static_cast<bool>(rep));
}

TEST(Validate, MaxPointsLimitsWork) {
  const Collapsed col = collapse(testutil::triangular_strict());
  ValidateOptions opts;
  opts.max_points = 10;
  const auto rep = validate_collapsed(col, {{"N", 50}}, opts);
  EXPECT_TRUE(rep.ok) << rep.first_error;
  EXPECT_EQ(rep.points_checked, 10);
}

TEST(Validate, AlwaysViolatingNestIsRejectedAtCollapseTime) {
  // Empty inner ranges break the ranking polynomial.  A nest that is
  // empty-ranged for every parameter value cannot even be calibrated:
  // collapse() refuses it up front.
  NestSpec bad;
  bad.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i") + 2, aff::v("N"));  // empty for i >= N-2
  EXPECT_THROW(collapse(bad), SolveError);
}

TEST(Validate, DetectsModelViolationAtTargetSize) {
  // This nest satisfies the model at the calibration size (N = 6: the
  // inner range 0 <= j < N - 2i + 12 is never empty) but violates it at
  // N = 40 (empty for i > 26).  The validator must catch the mismatch.
  NestSpec bad;
  bad.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("N") - 2 * aff::v("i") + 12);
  const Collapsed col = collapse(bad);
  ASSERT_TRUE(has_no_empty_ranges(bad, {{"N", 6}}));
  ASSERT_FALSE(has_no_empty_ranges(bad, {{"N", 40}}));
  const auto rep = validate_collapsed(col, {{"N", 40}});
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.mismatches, 0);
  EXPECT_FALSE(rep.first_error.empty());
}

TEST(Validate, AllChecksTogglable) {
  const Collapsed col = collapse(testutil::triangular_inclusive());
  ValidateOptions opts;
  opts.check_rank = false;
  opts.check_recover = false;
  opts.check_recover_search = false;
  opts.check_increment = false;
  const auto rep = validate_collapsed(col, {{"N", 10}}, opts);
  EXPECT_TRUE(rep.ok);
}

TEST(Validate, SweepSizesOnTetrahedral) {
  const Collapsed col = collapse(testutil::tetrahedral_fig6());
  for (i64 N : {2, 3, 4, 7, 11, 16}) {
    const auto rep = validate_collapsed(col, {{"N", N}});
    EXPECT_TRUE(rep.ok) << "N=" << N << ": " << rep.first_error;
  }
}

}  // namespace
}  // namespace nrc
