// Randomized differential nest fuzzer: seeded random nests (triangular,
// tiled, skewed, degenerate — see testutil::make_fuzz_nest) are collapsed
// and bound over a sweep of parameter values, and every recovery path the
// engine exposes is cross-checked against the all-integer binary-search
// oracle on each domain:
//
//   recover            — degree-specialized guarded solvers (Ferrari
//                        included) with the proven-f64 guard policy,
//   recover   [i128]   — the same engine with set_f64_guards(false),
//                        byte-identical by the exactness proof,
//   recover4/recover8  — lane-batched solves at both lane widths,
//   recover_block(s4/s8)— row-walking and lane-strided batched recovery,
//   recover_interpreted— the seed-era complex interpreter,
//
// plus rank() round trips.  Domains expected empty must be rejected by
// collapse()/bind().
//
// Slices: the fast deterministic slice (a few hundred domains per class)
// runs under the plain tier1 ctest label; the long randomized slice
// (NRC_FUZZ_DOMAINS per class, default 10000 — the CI push-to-main
// sanitize leg runs it under ASan/UBSan) is the separate
// nrc_differential_fuzz_long ctest entry (labels tier1;long).
//
// Reproducing a failure: every assertion prefixes its message with
// "class=<name> seed=<decimal>".  Rerun exactly that case with
//   NRC_FUZZ_CLASS=<name> NRC_FUZZ_SEED=<decimal> \
//     ./nrc_differential_fuzz_test --gtest_filter=DifferentialFuzz.Repro
// and shrink by editing the seed's generated nest printed in the message.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "analysis/nest_analyzer.hpp"

namespace nrc {
namespace {

using testutil::FuzzClass;
using testutil::FuzzNest;

i64 env_i64(const char* name, i64 fallback) {
  const char* e = std::getenv(name);
  return e && *e ? std::atoll(e) : fallback;
}

/// Aggregate visibility into what a fuzz run actually exercised.
struct FuzzTally {
  i64 domains = 0;
  i64 rejected_empty = 0;
  i64 quartic_domains = 0;
  i64 search_levels = 0;  // Search/overflow-demoted level solves
  i64 certified_exact = 0;  // domains the analyzer certified f64-exact
  RecoveryStats stats;
};

/// Cross-check every recovery path over one bound domain.
void check_domain(const CollapsedEval& cn, const std::string& repro, FuzzTally* tally) {
  const i64 total = cn.trip_count();
  const size_t d = static_cast<size_t>(cn.depth());
  ASSERT_GE(total, 1) << repro;

  CollapsedEval ref_guards = cn;
  ref_guards.set_f64_guards(false);

  for (int k = 0; k < cn.depth(); ++k) {
    if (cn.solver_kind(k) == LevelSolverKind::Quartic) {
      ++tally->quartic_domains;
      break;
    }
  }

  // The full domain when small; otherwise a stride that still lands on
  // both ends (the generator keeps most domains small enough for full
  // sweeps, so sampling only kicks in for the widest cases).
  const i64 step = total <= 400 ? 1 : total / 256;

  std::vector<i64> eng(d), other(d), ref(d);
  for (i64 pc = 1; pc <= total; pc += step) {
    cn.recover_search(pc, ref);
    cn.recover(pc, eng, &tally->stats);
    ASSERT_EQ(eng, ref) << repro << "recover disagrees with search at pc=" << pc;
    cn.recover_interpreted(pc, other);
    ASSERT_EQ(other, ref) << repro << "recover_interpreted disagrees at pc=" << pc;
    ref_guards.recover(pc, other);
    ASSERT_EQ(other, ref) << repro << "recover with i128 guards disagrees at pc=" << pc;
    ASSERT_EQ(cn.rank(ref), pc) << repro << "rank round trip failed at pc=" << pc;
  }
  {
    // Last tuple exactly (the strided loop may miss it).
    cn.recover_search(total, ref);
    cn.recover(total, eng, &tally->stats);
    ASSERT_EQ(eng, ref) << repro << "recover disagrees at pc=trip_count";
  }

  // recover4: sliding (clamped) windows of 4 pcs.
  std::vector<i64> out4(4 * d);
  for (i64 lo = 1; lo <= total; lo += 4 * step) {
    const i64 base = std::min<i64>(lo, std::max<i64>(1, total - 3));
    const i64 pcs[4] = {base, std::min(base + 1, total), std::min(base + 2, total),
                        std::min(base + 3, total)};
    cn.recover4(pcs, out4, &tally->stats);
    for (int l = 0; l < 4; ++l) {
      cn.recover_search(pcs[l], ref);
      for (size_t q = 0; q < d; ++q)
        ASSERT_EQ(out4[static_cast<size_t>(l) * d + q], ref[q])
            << repro << "recover4 lane " << l << " disagrees at pc=" << pcs[l];
    }
  }

  // recover8: sliding (clamped) windows of 8 pcs — the wide-lane twin,
  // exercised on every abi leg (emulated lanes off AVX-512).
  std::vector<i64> out8(8 * d);
  for (i64 lo = 1; lo <= total; lo += 8 * step) {
    const i64 base = std::min<i64>(lo, std::max<i64>(1, total - 7));
    i64 pcs[8];
    for (int l = 0; l < 8; ++l) pcs[l] = std::min<i64>(base + l, total);
    cn.recover8(pcs, out8, &tally->stats);
    for (int l = 0; l < 8; ++l) {
      cn.recover_search(pcs[l], ref);
      for (size_t q = 0; q < d; ++q)
        ASSERT_EQ(out8[static_cast<size_t>(l) * d + q], ref[q])
            << repro << "recover8 lane " << l << " disagrees at pc=" << pcs[l];
    }
  }

  // recover_block (row-major) and recover_blocks4 (lane-strided tiles).
  constexpr i64 kB = 5;
  std::vector<i64> blk(kB * d);
  std::vector<i64> tiles(4 * kB * d);
  i64 rows[4];
  for (i64 lo = 1; lo <= total; lo += 4 * kB * step) {
    const i64 got = cn.recover_block(lo, kB, blk, &tally->stats);
    ASSERT_EQ(got, std::min<i64>(kB, total - lo + 1)) << repro << "recover_block rows";
    for (i64 r = 0; r < got; ++r) {
      cn.recover_search(lo + r, ref);
      for (size_t q = 0; q < d; ++q)
        ASSERT_EQ(blk[static_cast<size_t>(r) * d + q], ref[q])
            << repro << "recover_block disagrees at pc=" << lo + r;
    }
    const i64 pcs[4] = {lo, std::min(lo + kB, total), std::min(lo + 2 * kB, total),
                        std::min(lo + 3 * kB, total)};
    cn.recover_blocks4(pcs, kB, tiles, kB, rows, &tally->stats);
    for (int b = 0; b < 4; ++b) {
      ASSERT_EQ(rows[b], std::min<i64>(kB, total - pcs[b] + 1))
          << repro << "recover_blocks4 rows, block " << b;
      for (i64 r = 0; r < rows[b]; ++r) {
        cn.recover_search(pcs[b] + r, ref);
        for (size_t q = 0; q < d; ++q)
          ASSERT_EQ(tiles[(static_cast<size_t>(b) * d + q) * kB + static_cast<size_t>(r)],
                    ref[q])
              << repro << "recover_blocks4 disagrees at pc=" << pcs[b] + r;
      }
    }
  }

  // recover_blocks8: eight lane-strided tiles per call.
  std::vector<i64> tiles8(8 * kB * d);
  i64 rows8[8];
  for (i64 lo = 1; lo <= total; lo += 8 * kB * step) {
    i64 pcs[8];
    for (int b = 0; b < 8; ++b) pcs[b] = std::min<i64>(lo + static_cast<i64>(b) * kB, total);
    cn.recover_blocks8(pcs, kB, tiles8, kB, rows8, &tally->stats);
    for (int b = 0; b < 8; ++b) {
      ASSERT_EQ(rows8[b], std::min<i64>(kB, total - pcs[b] + 1))
          << repro << "recover_blocks8 rows, block " << b;
      for (i64 r = 0; r < rows8[b]; ++r) {
        cn.recover_search(pcs[b] + r, ref);
        for (size_t q = 0; q < d; ++q)
          ASSERT_EQ(tiles8[(static_cast<size_t>(b) * d + q) * kB + static_cast<size_t>(r)],
                    ref[q])
              << repro << "recover_blocks8 disagrees at pc=" << pcs[b] + r;
      }
    }
  }
}

/// Run one seeded case end to end (shared by the sweeps and the
/// env-driven Repro test).
void run_case(const FuzzNest& fc, FuzzTally* tally) {
  CollapseOptions opts;
  opts.calibration = fc.calibration;
  if (fc.expect_empty) {
    ParamMap p = fc.fixed_params;
    p["N"] = 2;
    bool rejected = false;
    try {
      collapse(fc.nest, opts).bind(p);
    } catch (const SpecError&) {
      rejected = true;
    } catch (const SolveError&) {
      rejected = true;
    }
    ASSERT_TRUE(rejected) << fc.repro() << "empty domain was not rejected";
    // Certificate leg: the analyzer must refuse what bind() refuses —
    // without throwing, and at error severity.
    const NestCertificate cert = analyze_nest(fc.nest, p, opts);
    EXPECT_FALSE(cert.bind_ok) << fc.repro() << "analyzer certified a rejected domain";
    EXPECT_EQ(cert.max_severity(), LintSeverity::Error)
        << fc.repro() << "rejected domain lints below error severity:\n" << cert.str();
    ++tally->domains;
    ++tally->rejected_empty;
    return;
  }
  try {
    const Collapsed col = collapse(fc.nest, opts);
    for (const i64 nv : testutil::fuzz_bind_values(fc)) {
      ParamMap p = fc.fixed_params;
      p["N"] = nv;
      const CollapsedEval cn = col.bind(p);
      const std::string repro = fc.repro() + "\nN=" + std::to_string(nv) + "\n";

      // Certificate leg: analyze the same (nest, params, options)
      // triple and cross-validate every claim against what this domain
      // actually does.  A certificate is a promise — any disagreement
      // here is an analyzer soundness bug, not noise.
      const NestCertificate cert = analyze_nest(fc.nest, p, opts);
      ASSERT_TRUE(cert.bind_ok) << repro << "bind succeeded but the analyzer says not:\n"
                                << cert.str();
      ASSERT_EQ(cert.total_trip, cn.trip_count())
          << repro << "certificate trip count disagrees with bind";
      if (cert.trip_i64_safe && cn.trip_count() <= 400) {
        // Odometer cross-check of the i64-safe claim: walk the domain
        // point by point and count (full sweep domains only; the wide
        // ones are covered by the strided recover-vs-search loop).
        std::vector<i64> idx(static_cast<size_t>(cn.depth()));
        cn.first(idx);
        i64 count = 1;
        while (cn.increment(idx)) ++count;
        ASSERT_EQ(count, cert.total_trip)
            << repro << "certified i64-safe trip count disagrees with the odometer";
      }

      const RecoveryStats before = tally->stats;
      check_domain(cn, repro, tally);
      if (::testing::Test::HasFatalFailure()) return;
      if (cert.exact_f64) {
        // Certified f64-exact: every recovery the sweep performed must
        // have stayed on the closed-form path — zero search fallbacks,
        // zero quartic demotions (the acceptance bar: no false "exact"
        // certificates, ever).
        ASSERT_EQ(tally->stats.fallback, before.fallback)
            << repro << "certified f64-exact but a recovery fell back to search:\n"
            << cert.str();
        ASSERT_EQ(tally->stats.quartic_demoted, before.quartic_demoted)
            << repro << "certified f64-exact but a quartic demoted:\n" << cert.str();
        ++tally->certified_exact;
      }
      ++tally->domains;
    }
  } catch (const std::exception& ex) {
    FAIL() << fc.repro() << "unexpected exception: " << ex.what();
  }
}

void run_fuzz(FuzzClass cls, i64 domains_target, u64 seed_base) {
  FuzzTally tally;
  u64 seed = seed_base;
  while (tally.domains < domains_target) {
    run_case(testutil::make_fuzz_nest(cls, seed++), &tally);
    if (::testing::Test::HasFatalFailure()) return;
  }
  tally.search_levels = tally.stats.fallback;
  std::printf(
      "[fuzz %-10s] domains=%lld (empty=%lld, quartic=%lld, certified_exact=%lld) "
      "levels: closed=%lld corrected=%lld search=%lld quartic_demoted=%lld\n",
      testutil::fuzz_class_name(cls), static_cast<long long>(tally.domains),
      static_cast<long long>(tally.rejected_empty),
      static_cast<long long>(tally.quartic_domains),
      static_cast<long long>(tally.certified_exact),
      static_cast<long long>(tally.stats.closed_form),
      static_cast<long long>(tally.stats.corrected),
      static_cast<long long>(tally.stats.fallback),
      static_cast<long long>(tally.stats.quartic_demoted));
  // The sweep must actually exercise the engine, not degenerate into
  // vacuous domains: every class recovers through closed forms somewhere.
  EXPECT_GT(tally.stats.closed_form, 0);
  // ... and the certificate leg must not be vacuous either: the
  // analyzer certifies a healthy share of every class's domains (were
  // exact_f64 to regress to constant-false, the cross-validation above
  // would pass trivially).
  EXPECT_GT(tally.certified_exact, 0) << "analyzer certified nothing in this class";
}

// ------------------------------------------------- fast deterministic slice

TEST(DifferentialFuzz, Triangular) {
  run_fuzz(FuzzClass::Triangular, env_i64("NRC_FUZZ_FAST_DOMAINS", 120), 0x7100);
}
TEST(DifferentialFuzz, Tiled) {
  run_fuzz(FuzzClass::Tiled, env_i64("NRC_FUZZ_FAST_DOMAINS", 120), 0x7200);
}
TEST(DifferentialFuzz, Skewed) {
  run_fuzz(FuzzClass::Skewed, env_i64("NRC_FUZZ_FAST_DOMAINS", 120), 0x7300);
}
TEST(DifferentialFuzz, Degenerate) {
  run_fuzz(FuzzClass::Degenerate, env_i64("NRC_FUZZ_FAST_DOMAINS", 120), 0x7400);
}

/// Rerun a single seed from a failure message:
///   NRC_FUZZ_CLASS=<name> NRC_FUZZ_SEED=<decimal> \
///     ./nrc_differential_fuzz_test --gtest_filter=DifferentialFuzz.Repro
TEST(DifferentialFuzz, Repro) {
  const char* cls_s = std::getenv("NRC_FUZZ_CLASS");
  const char* seed_s = std::getenv("NRC_FUZZ_SEED");
  if (!cls_s || !seed_s)
    GTEST_SKIP() << "set NRC_FUZZ_CLASS and NRC_FUZZ_SEED to rerun one case";
  FuzzClass cls = FuzzClass::Triangular;
  bool found = false;
  for (const FuzzClass c : testutil::kFuzzClasses) {
    if (std::string(cls_s) == testutil::fuzz_class_name(c)) {
      cls = c;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "unknown NRC_FUZZ_CLASS '" << cls_s << "'";
  FuzzTally tally;
  const FuzzNest fc = testutil::make_fuzz_nest(cls, std::strtoull(seed_s, nullptr, 0));
  std::printf("%s\n", fc.repro().c_str());
  run_case(fc, &tally);
}

// ----------------------------------------- long randomized slice (label: long)
//
// NRC_FUZZ_DOMAINS domains per class (default 10000); wired into the
// push-to-main CI sanitize leg, where the whole slice runs under
// ASan/UBSan.

i64 long_domains() { return env_i64("NRC_FUZZ_DOMAINS", 10000); }

TEST(DifferentialFuzzLong, Triangular) {
  run_fuzz(FuzzClass::Triangular, long_domains(), 0xA100);
}
TEST(DifferentialFuzzLong, Tiled) {
  run_fuzz(FuzzClass::Tiled, long_domains(), 0xA200);
}
TEST(DifferentialFuzzLong, Skewed) {
  run_fuzz(FuzzClass::Skewed, long_domains(), 0xA300);
}
TEST(DifferentialFuzzLong, Degenerate) {
  run_fuzz(FuzzClass::Degenerate, long_domains(), 0xA400);
}

}  // namespace
}  // namespace nrc
