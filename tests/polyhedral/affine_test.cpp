#include "polyhedral/affine.hpp"

#include <gtest/gtest.h>

namespace nrc {
namespace {

TEST(AffineExpr, ConstructionAndAccessors) {
  const AffineExpr z;
  EXPECT_TRUE(z.is_constant());
  EXPECT_EQ(z.constant_term(), 0);

  const AffineExpr c(5);
  EXPECT_EQ(c.constant_term(), 5);

  const AffineExpr v = AffineExpr::variable("i");
  EXPECT_FALSE(v.is_constant());
  EXPECT_EQ(v.coefficient("i"), 1);
  EXPECT_EQ(v.coefficient("j"), 0);
}

TEST(AffineExpr, BuilderSyntax) {
  const AffineExpr e = aff::v("i") + 2 * aff::v("N") - 1;
  EXPECT_EQ(e.coefficient("i"), 1);
  EXPECT_EQ(e.coefficient("N"), 2);
  EXPECT_EQ(e.constant_term(), -1);
}

TEST(AffineExpr, Arithmetic) {
  const AffineExpr a = aff::v("i") + 3;
  const AffineExpr b = aff::v("i") * 2 - 1;
  EXPECT_EQ((a + b).coefficient("i"), 3);
  EXPECT_EQ((a + b).constant_term(), 2);
  EXPECT_EQ((a - b).coefficient("i"), -1);
  EXPECT_EQ((a - b).constant_term(), 4);
  EXPECT_EQ((-a).coefficient("i"), -1);
  EXPECT_EQ((a * 0).is_constant(), true);
}

TEST(AffineExpr, CancellationDropsVariable) {
  const AffineExpr e = aff::v("i") - aff::v("i");
  EXPECT_TRUE(e.is_constant());
  EXPECT_TRUE(e.variables().empty());
}

TEST(AffineExpr, Eval) {
  const AffineExpr e = 2 * aff::v("i") - aff::v("N") + 7;
  EXPECT_EQ(e.eval({{"i", 10}, {"N", 5}}), 22);
  EXPECT_THROW(e.eval({{"i", 10}}), SpecError);
}

TEST(AffineExpr, ToPolyRoundTrip) {
  const AffineExpr e = 3 * aff::v("i") - 2;
  const Polynomial p = e.to_poly();
  EXPECT_EQ(p.degree_in("i"), 1);
  EXPECT_EQ(p.eval_i128({{"i", 4}}), 10);
}

TEST(AffineExpr, Equality) {
  EXPECT_EQ(aff::v("i") + 1, AffineExpr::variable("i") + AffineExpr(1));
  EXPECT_FALSE(aff::v("i") == aff::v("j"));
}

TEST(AffineExpr, Str) {
  EXPECT_EQ(AffineExpr(0).str(), "0");
  EXPECT_EQ((aff::v("i") + 1).str(), "i + 1");
  EXPECT_EQ((2 * aff::v("N") - 3).str(), "2*N - 3");
  EXPECT_EQ((-aff::v("i")).str(), "-i");
}

TEST(AffineExpr, OverflowChecked) {
  const AffineExpr big = aff::v("i") * INT64_MAX;
  EXPECT_THROW(big * 2, OverflowError);
  EXPECT_THROW(big.eval({{"i", 2}}), OverflowError);
}

}  // namespace
}  // namespace nrc
