#include "polyhedral/domain.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace nrc {
namespace {

TEST(Domain, WalkOrderIsLexicographic) {
  const auto pts = domain_points(testutil::triangular_strict(), {{"N", 4}});
  const std::vector<std::vector<i64>> expect = {{0, 1}, {0, 2}, {0, 3},
                                                {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(pts, expect);
}

TEST(Domain, CountMatchesClosedForms) {
  EXPECT_EQ(count_domain_brute(testutil::triangular_strict(), {{"N", 10}}), 45);
  EXPECT_EQ(count_domain_brute(testutil::triangular_inclusive(), {{"N", 10}}), 55);
  EXPECT_EQ(count_domain_brute(testutil::tetrahedral_fig6(), {{"N", 10}}),
            (10 * 10 * 10 - 10) / 6);
  EXPECT_EQ(count_domain_brute(testutil::rectangular(), {{"N", 3}, {"M", 7}}), 21);
}

TEST(Domain, EmptyDomain) {
  EXPECT_EQ(count_domain_brute(testutil::triangular_strict(), {{"N", 1}}), 0);
  EXPECT_TRUE(domain_points(testutil::triangular_strict(), {{"N", 0}}).empty());
}

TEST(Domain, RankBrute) {
  const NestSpec tri = testutil::triangular_strict();
  const ParamMap p{{"N", 5}};
  const auto pts = domain_points(tri, p);
  for (size_t q = 0; q < pts.size(); ++q)
    EXPECT_EQ(rank_brute(tri, p, pts[q]), static_cast<i64>(q) + 1);
  const std::vector<i64> outside{4, 1};
  EXPECT_EQ(rank_brute(tri, p, outside), 0);
}

TEST(Domain, HasNoEmptyRangesDetectsViolations) {
  EXPECT_TRUE(has_no_empty_ranges(testutil::triangular_strict(), {{"N", 6}}));
  // j in [i+2, N): empty when i = N-2 -> model violation.
  NestSpec bad;
  bad.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::v("i") + 2, aff::v("N"));
  EXPECT_FALSE(has_no_empty_ranges(bad, {{"N", 6}}));
}

TEST(Domain, WalkSkipsEmptyInnerRanges) {
  // Same "bad" nest: the walker must still enumerate the valid points.
  NestSpec bad;
  bad.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::v("i") + 2, aff::v("N"));
  const auto pts = domain_points(bad, {{"N", 4}});
  const std::vector<std::vector<i64>> expect = {{0, 2}, {0, 3}, {1, 3}};
  EXPECT_EQ(pts, expect);
}

TEST(Domain, WalkValidatesSpec) {
  NestSpec invalid;
  invalid.loop("i", aff::c(0), aff::v("missing"));
  EXPECT_THROW(count_domain_brute(invalid, {}), SpecError);
}

TEST(Domain, ParamFreeNest) {
  NestSpec n;
  n.loop("i", aff::c(0), aff::c(3)).loop("j", aff::v("i"), aff::c(3));
  EXPECT_EQ(count_domain_brute(n, {}), 6);
}

TEST(Domain, DeepNestWalk) {
  EXPECT_EQ(count_domain_brute(testutil::simplex_4d(), {{"N", 6}}),
            6 * 7 * 8 * 9 / 24);  // C(N+3, 4)
  EXPECT_EQ(count_domain_brute(testutil::simplex_5d(), {{"N", 5}}),
            5 * 6 * 7 * 8 * 9 / 120);  // C(N+4, 5)
}

}  // namespace
}  // namespace nrc
