#include "polyhedral/lexmin.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace nrc {
namespace {

TEST(Lexmin, PointsMatchEnumeration) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const ParamMap p = testutil::uniform_params(sc.nest, 5);
    const auto pts = domain_points(sc.nest, p);
    ASSERT_FALSE(pts.empty()) << sc.name;
    EXPECT_EQ(lexmin_point(sc.nest, p), pts.front()) << sc.name;
    EXPECT_EQ(lexmax_point(sc.nest, p), pts.back()) << sc.name;
  }
}

TEST(Lexmin, TriangularValues) {
  const NestSpec tri = testutil::triangular_strict();
  const auto mn = lexmin_point(tri, {{"N", 10}});
  const auto mx = lexmax_point(tri, {{"N", 10}});
  EXPECT_EQ(mn, (std::vector<i64>{0, 1}));
  EXPECT_EQ(mx, (std::vector<i64>{8, 9}));
}

TEST(Lexmin, TrailingLexminSubstitution) {
  // For the strict triangle, substituting j by its lexmin (i+1) into the
  // polynomial j - i must give the constant 1.
  const NestSpec tri = testutil::triangular_strict();
  const Polynomial p = Polynomial::variable("j") - Polynomial::variable("i");
  EXPECT_EQ(substitute_trailing_lexmin(p, tri, 0), Polynomial(1));
  // k = -1 substitutes everything: i's lexmin is 0, j's becomes 1.
  const Polynomial q = Polynomial::variable("j") + Polynomial::variable("i");
  EXPECT_EQ(substitute_trailing_lexmin(q, tri, -1), Polynomial(1));
}

TEST(Lexmin, TrailingLexmaxSubstitution) {
  const NestSpec tri = testutil::triangular_strict();
  // j's lexmax is N-1.
  const Polynomial p = Polynomial::variable("j");
  EXPECT_EQ(substitute_trailing_lexmax(p, tri, 0),
            Polynomial::variable("N") - Polynomial(1));
  // Substituting all: i -> N-2, j -> N-1.
  const Polynomial q = Polynomial::variable("i") + Polynomial::variable("j");
  EXPECT_EQ(substitute_trailing_lexmax(q, tri, -1),
            Polynomial::variable("N") * Rational(2) - Polynomial(3));
}

TEST(Lexmin, ChainedSubstitutionResolvesNestedBounds) {
  // Fig. 6 nest: k's lexmin is j, whose lexmin is 0.
  const NestSpec t = testutil::tetrahedral_fig6();
  const Polynomial k = Polynomial::variable("k");
  // Substituting below level 1 (i, j fixed): k -> j.
  EXPECT_EQ(substitute_trailing_lexmin(k, t, 1), Polynomial::variable("j"));
  // Substituting below level 0 (only i fixed): k -> j -> 0.
  EXPECT_EQ(substitute_trailing_lexmin(k, t, 0), Polynomial(0));
}

TEST(Lexmin, ShiftedBoundsChain) {
  const NestSpec s = testutil::shifted_bounds();
  const auto mn = lexmin_point(s, {{"N", 7}});
  EXPECT_EQ(mn, (std::vector<i64>{3, 1}));  // i = 3, j = i - 2 = 1
}

}  // namespace
}  // namespace nrc
