#include "polyhedral/nest.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace nrc {
namespace {

TEST(NestSpec, FluentBuilder) {
  NestSpec n;
  n.param("N").loop("i", aff::c(0), aff::v("N")).loop("j", aff::v("i"), aff::v("N"));
  EXPECT_EQ(n.depth(), 2);
  EXPECT_EQ(n.params().size(), 1u);
  EXPECT_EQ(n.at(0).var, "i");
  EXPECT_EQ(n.at(1).lower, aff::v("i"));
  EXPECT_NO_THROW(n.validate());
}

TEST(NestSpec, LoopVars) {
  const auto vars = testutil::tetrahedral_fig6().loop_vars();
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], "i");
  EXPECT_EQ(vars[1], "j");
  EXPECT_EQ(vars[2], "k");
}

TEST(NestSpec, OuterSubNest) {
  const NestSpec full = testutil::tetrahedral_fig6();
  const NestSpec two = full.outer(2);
  EXPECT_EQ(two.depth(), 2);
  EXPECT_EQ(two.params(), full.params());
  EXPECT_EQ(two.at(1).var, "j");
  EXPECT_THROW(full.outer(0), SpecError);
  EXPECT_THROW(full.outer(4), SpecError);
}

TEST(NestSpec, ValidateRejectsEmptyNest) {
  NestSpec n;
  EXPECT_THROW(n.validate(), SpecError);
}

TEST(NestSpec, ValidateRejectsDuplicateNames) {
  NestSpec a;
  a.param("N").param("N").loop("i", aff::c(0), aff::v("N"));
  EXPECT_THROW(a.validate(), SpecError);

  NestSpec b;
  b.param("N").loop("i", aff::c(0), aff::v("N")).loop("i", aff::c(0), aff::v("N"));
  EXPECT_THROW(b.validate(), SpecError);

  NestSpec c;
  c.param("i").loop("i", aff::c(0), aff::c(10));
  EXPECT_THROW(c.validate(), SpecError);
}

TEST(NestSpec, ValidateRejectsInnerIteratorInBound) {
  // i's bound references j, which is declared later (inner).
  NestSpec n;
  n.param("N")
      .loop("i", aff::c(0), aff::v("j"))
      .loop("j", aff::c(0), aff::v("N"));
  EXPECT_THROW(n.validate(), SpecError);
}

TEST(NestSpec, ValidateRejectsUnknownVariable) {
  NestSpec n;
  n.param("N").loop("i", aff::c(0), aff::v("M"));
  EXPECT_THROW(n.validate(), SpecError);
}

TEST(NestSpec, ValidateRejectsEmptyVarName) {
  NestSpec n;
  n.loop("", aff::c(0), aff::c(5));
  EXPECT_THROW(n.validate(), SpecError);
}

TEST(NestSpec, StrRendersLoops) {
  const std::string s = testutil::triangular_strict().str();
  EXPECT_NE(s.find("for (i = 0; i < N - 1; i++)"), std::string::npos);
  EXPECT_NE(s.find("for (j = i + 1; j < N; j++)"), std::string::npos);
}

TEST(NestSpec, AllTestShapesValidate) {
  for (const auto& sc : testutil::closed_form_shapes())
    EXPECT_NO_THROW(sc.nest.validate()) << sc.name;
}

}  // namespace
}  // namespace nrc
