// Randomized differential fuzzer for the JIT leg: every specialized
// kernel the JIT compiles must visit exactly the iteration multiset of
// the nest it was specialized from.  Drives JitKernel::build over the
// same seeded random nests the recovery and executor fuzzers use
// (testutil::make_fuzz_nest: triangular/tiled/skewed/degenerate), then
// diffs both entry points against the sequential odometer reference:
// run() as visit count + order-insensitive checksum + exact tuple
// multiset on small domains, fill() as the exact rank-ordered buffer
// (small domains) or its checksum (large ones).
//
// Budget: a JIT build is an out-of-process `cc -O2` (~100-300 ms), so
// the fast slice compiles a handful of kernels per fuzz class under
// two schedules (label tier1, suite JitFuzz); the long slice
// (suite JitFuzzLong, labels tier1;long, NRC_JIT_FUZZ_DOMAINS compiles
// per class) rotates the full schedule matrix and rides the
// push-to-main CI sanitize leg under ASan/UBSan.
//
// No toolchain is a graceful skip, not a failure: the library fallback
// path is covered by jit_kernel_test.cpp, and the no-toolchain CI leg
// proves tier-1 stays green without a compiler.
//
// Reproducing a failure: assertion messages carry the standard
// "class=<name> seed=<decimal>" line; rebuild that exact nest with
// testutil::make_fuzz_nest(cls, seed).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "jit/jit_kernel.hpp"
#include "jit/toolchain.hpp"
#include "support/error.hpp"

namespace nrc {
namespace {

using testutil::DomainObservation;
using testutil::FuzzClass;
using testutil::FuzzNest;

i64 env_i64(const char* name, i64 fallback) {
  const char* e = std::getenv(name);
  return e && *e ? std::atoll(e) : fallback;
}

struct JitFuzzTally {
  i64 compiled = 0;      ///< kernels built and differentially checked
  i64 skipped_plan = 0;  ///< open-form / refused-certificate skips
};

/// Differentially check one compiled kernel against the odometer.
void check_kernel(const JitKernel& k, const FuzzNest& fc, const char* sched_name) {
  const DomainObservation ref = testutil::odometer_reference(k.plan().eval());
  testutil::SchemeCollector col(ref.track_tuples);
  k.run([&](std::span<const i64> idx) { col.visit(idx); });
  EXPECT_TRUE(col.compare(ref))
      << fc.repro() << "jit run diverges, schedule=" << sched_name;

  const i64 total = k.trip_count();
  const size_t d = static_cast<size_t>(k.depth());
  std::vector<i64> buf(static_cast<size_t>(total) * d);
  ASSERT_EQ(k.fill(buf), total) << fc.repro();
  if (ref.track_tuples) {
    // Small domain: fill()'s rank order must equal recover() exactly.
    const CollapsedEval& cn = k.plan().eval();
    std::vector<i64> want(d);
    for (i64 pc = 1; pc <= total; ++pc) {
      cn.recover(pc, want);
      for (size_t j = 0; j < d; ++j)
        ASSERT_EQ(buf[static_cast<size_t>(pc - 1) * d + j], want[j])
            << fc.repro() << "jit fill diverges at pc=" << pc
            << ", schedule=" << sched_name;
    }
  } else {
    // Large domain: the buffer's tuple checksum must still match.
    u64 checksum = 0;
    for (i64 pc = 0; pc < total; ++pc)
      checksum += testutil::tuple_mix(
          std::span<const i64>(buf.data() + static_cast<size_t>(pc) * d, d));
    EXPECT_EQ(checksum, ref.checksum)
        << fc.repro() << "jit fill checksum diverges, schedule=" << sched_name;
  }
}

/// Build + check one fuzz nest under one schedule.  Returns 1 when a
/// kernel was actually compiled and checked, 0 on any skip.
int fuzz_one(const FuzzNest& fc, const Schedule& s, const char* sched_name,
             JitFuzzTally* tally) {
  if (fc.expect_empty) return 0;
  // One bind per nest keeps the out-of-process compile budget bounded:
  // the largest guaranteed-valid N exercises the deepest recovery.
  ParamMap pm = fc.fixed_params;
  pm["N"] = testutil::fuzz_bind_values(fc).back();
  CollapseOptions opts;
  opts.calibration = fc.calibration;
  std::shared_ptr<const CollapsePlan> plan;
  try {
    plan = CollapsePlan::build(fc.nest, pm, opts);
  } catch (const Error&) {
    return 0;  // the domain is empty/rejected at this bind
  }
  if (!plan->collapsed().fully_closed_form()) {
    ++tally->skipped_plan;
    return 0;
  }
  JitOptions jopt;
  jopt.use_disk_cache = false;
  auto k = JitKernel::build(plan, s, jopt);
  if (!k->compiled()) {
    const std::string& why = k->info().fallback_reason;
    // Plan-side refusals (overflow-certified nests, no closed form at
    // emit time) are legitimate skips; with a working toolchain, an
    // actual compile/dlopen failure on emitted C is a codegen bug.
    if (why.find("analyzer certificate") != std::string::npos ||
        why.rfind("emit:", 0) == 0) {
      ++tally->skipped_plan;
      return 0;
    }
    ADD_FAILURE() << fc.repro() << "jit build fell back: " << k->status()
                  << ", schedule=" << sched_name;
    return 0;
  }
  check_kernel(*k, fc, sched_name);
  ++tally->compiled;
  return 1;
}

// ------------------------------------------------------- fast slice

TEST(JitFuzz, DifferentialFast) {
  if (!jit::toolchain_available())
    GTEST_SKIP() << "no C compiler (" << jit::resolve_compiler()
                 << "): jit differential leg skipped";
  const i64 per_class = env_i64("NRC_JIT_FUZZ_FAST_COMPILES", 4);
  const Schedule scheds[] = {Schedule::per_thread(), Schedule::chunked(5)};
  const char* names[] = {"perthread", "chunked5"};
  JitFuzzTally tally;
  u64 base = 0x9100;
  for (const FuzzClass cls : testutil::kFuzzClasses) {
    i64 done = 0;
    u64 seed = base;
    base += 0x100;
    while (done < per_class) {
      const size_t which = static_cast<size_t>(seed % 2);
      done += fuzz_one(testutil::make_fuzz_nest(cls, seed), scheds[which],
                       names[which], &tally);
      ++seed;
      if (::testing::Test::HasFailure()) return;
    }
  }
  std::printf("[jit fuzz fast] compiled=%lld plan_skips=%lld\n",
              static_cast<long long>(tally.compiled),
              static_cast<long long>(tally.skipped_plan));
}

// ------------------------------------------- long slice (label: long)

TEST(JitFuzzLong, RotatingScheduleMatrix) {
  if (!jit::toolchain_available())
    GTEST_SKIP() << "no C compiler (" << jit::resolve_compiler()
                 << "): jit differential leg skipped";
  const i64 per_class = env_i64("NRC_JIT_FUZZ_DOMAINS", 40);
  const struct {
    Schedule s;
    const char* name;
  } matrix[] = {
      {Schedule::per_thread(), "perthread"},
      {Schedule::chunked(5), "chunked5"},
      {Schedule::per_iteration(), "periter"},
      {Schedule::simd_blocks(4), "simd4"},
      {Schedule::warp_sim(4), "warp4"},
      {Schedule::row_segments_chunked(8), "rowseg_chunked8"},
  };
  constexpr size_t kMatrix = sizeof(matrix) / sizeof(matrix[0]);
  JitFuzzTally tally;
  u64 base = 0xA200;
  for (const FuzzClass cls : testutil::kFuzzClasses) {
    i64 done = 0;
    u64 seed = base;
    base += 0x10000;
    while (done < per_class) {
      const size_t which = static_cast<size_t>(seed % kMatrix);
      done += fuzz_one(testutil::make_fuzz_nest(cls, seed), matrix[which].s,
                       matrix[which].name, &tally);
      ++seed;
      if (::testing::Test::HasFailure()) return;
    }
  }
  std::printf("[jit fuzz long] compiled=%lld plan_skips=%lld\n",
              static_cast<long long>(tally.compiled),
              static_cast<long long>(tally.skipped_plan));
}

}  // namespace
}  // namespace nrc
