// JitKernel + KernelCache under hostile environments: a compiler that
// does not exist (NRC_JIT_CC=/nonexistent) must land a counted fallback
// kernel that still answers correctly; a corrupted disk-cache object
// must be rejected by its content hash and rebuilt, not dlopen'd; and
// same-key concurrent builds must compile exactly once, every other
// requester joining the first build's future.  The happy path
// (compile, run/fill differential against the odometer reference) and
// the end-to-end surface (plan->jit(), describe(), the nrcd jitrun
// verb and its stats counters) ride in the same suite.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "jit/jit_kernel.hpp"
#include "jit/kernel_cache.hpp"
#include "jit/toolchain.hpp"
#include "pipeline/plan_cache.hpp"
#include "serve/protocol.hpp"
#include "support/error.hpp"

namespace nrc {
namespace {

/// Set one environment variable for the scope, restoring the previous
/// value (or unsetting) on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

std::shared_ptr<const CollapsePlan> tri_plan(i64 n = 40) {
  return CollapsePlan::build(testutil::triangular_strict(), {{"N", n}});
}

/// Differential check: the kernel's visited multiset/checksum must
/// equal the sequential odometer reference.
void expect_matches_reference(const JitKernel& k, const char* what) {
  const testutil::DomainObservation ref = testutil::odometer_reference(k.plan().eval());
  testutil::SchemeCollector col(ref.track_tuples);
  k.run([&](std::span<const i64> idx) { col.visit(idx); });
  EXPECT_TRUE(col.compare(ref)) << what;
}

// ------------------------------------------------------------ happy path

TEST(JitKernel, CompileRunFillMatchReference) {
  if (!jit::toolchain_available()) GTEST_SKIP() << "no C toolchain";
  auto plan = tri_plan(40);
  JitOptions opt;
  opt.use_disk_cache = false;
  auto k = JitKernel::build(plan, Schedule::chunked(7), opt);
  ASSERT_TRUE(k->compiled()) << k->status();
  EXPECT_EQ(k->status(), "jit");
  EXPECT_TRUE(k->info().fallback_reason.empty());
  EXPECT_GT(k->info().compile_ns, 0);
  // The rendered TU folds the bound parameter to a literal.
  EXPECT_NE(k->source().find("40LL"), std::string::npos);
  expect_matches_reference(*k, "compiled run");

  // fill(): rank order must equal the library's recover().
  const size_t d = static_cast<size_t>(k->depth());
  std::vector<i64> buf(static_cast<size_t>(k->trip_count()) * d);
  ASSERT_EQ(k->fill(buf), k->trip_count());
  const CollapsedEval& cn = plan->eval();
  std::vector<i64> want(d);
  for (i64 pc = 1; pc <= k->trip_count(); ++pc) {
    cn.recover(pc, want);
    for (size_t j = 0; j < d; ++j)
      ASSERT_EQ(buf[static_cast<size_t>(pc - 1) * d + j], want[j]) << "pc=" << pc;
  }
  // An undersized buffer is refused, not overrun.
  std::vector<i64> small(buf.size() - 1);
  EXPECT_THROW(k->fill(small), SpecError);
}

// -------------------------------------------------- missing toolchain

TEST(JitKernel, MissingCompilerFallsBackAndStillAnswers) {
  ScopedEnv cc("NRC_JIT_CC", "/nonexistent/nrc-no-such-cc");
  JitOptions opt;
  opt.use_disk_cache = false;
  auto k = JitKernel::build(tri_plan(25), Schedule::per_thread(), opt);
  EXPECT_FALSE(k->compiled());
  EXPECT_NE(k->info().fallback_reason.find("no C toolchain"), std::string::npos)
      << k->status();
  expect_matches_reference(*k, "fallback run");

  // fill() routes through recover_block and stays correct too.
  const size_t d = static_cast<size_t>(k->depth());
  std::vector<i64> buf(static_cast<size_t>(k->trip_count()) * d);
  ASSERT_EQ(k->fill(buf), k->trip_count());
  const CollapsedEval& cn = k->plan().eval();
  std::vector<i64> want(d);
  cn.recover(1, want);
  for (size_t j = 0; j < d; ++j) EXPECT_EQ(buf[j], want[j]);
}

TEST(KernelCache, CountsAndCachesFallbackBuilds) {
  ScopedEnv cc("NRC_JIT_CC", "/nonexistent/nrc-no-such-cc");
  KernelCache cache(8, 2);
  JitOptions opt;
  opt.use_disk_cache = false;
  auto plan = tri_plan(12);
  auto k1 = cache.get(plan, Schedule::per_thread(), opt);
  EXPECT_FALSE(k1->compiled());
  KernelCacheStats st = cache.stats();
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.fallbacks, 1);
  EXPECT_EQ(st.compiles, 0);
  // The fallback is cached: no second build attempt per request.
  auto k2 = cache.get(plan, Schedule::per_thread(), opt);
  EXPECT_EQ(k1.get(), k2.get());
  st = cache.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.fallbacks, 1);
}

// ------------------------------------------------- disk-cache hostility

/// The single nrc-*.so entry in a cache dir ("" when absent).
std::string find_cached_so(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return "";
  std::string found;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 3 && name.compare(name.size() - 3, 3, ".so") == 0)
      found = dir + "/" + name;
  }
  ::closedir(d);
  return found;
}

TEST(JitKernel, CorruptDiskCacheEntryRejectedAndRebuilt) {
  if (!jit::toolchain_available()) GTEST_SKIP() << "no C toolchain";
  char templ[] = "/tmp/nrc_jit_cache_XXXXXX";
  ASSERT_NE(::mkdtemp(templ), nullptr);
  const std::string dir = templ;
  JitOptions opt;
  opt.cache_dir = dir;
  auto plan = tri_plan(30);
  const Schedule s = Schedule::per_thread();

  auto k1 = JitKernel::build(plan, s, opt);
  ASSERT_TRUE(k1->compiled()) << k1->status();
  EXPECT_FALSE(k1->info().from_disk);
  const std::string so = find_cached_so(dir);
  ASSERT_FALSE(so.empty()) << "compile did not populate the disk cache";

  auto k2 = JitKernel::build(plan, s, opt);
  ASSERT_TRUE(k2->compiled()) << k2->status();
  EXPECT_TRUE(k2->info().from_disk);
  EXPECT_EQ(k2->info().compile_ns, 0);
  expect_matches_reference(*k2, "disk-hit run");

  // Corrupt the cached object in place; the sidecar hash no longer
  // matches, so the next build must reject the entry and recompile —
  // and, critically, never dlopen the corrupt bytes.
  {
    std::ofstream out(so, std::ios::binary | std::ios::trunc);
    out << "this is not an ELF shared object";
  }
  auto k3 = JitKernel::build(plan, s, opt);
  ASSERT_TRUE(k3->compiled()) << k3->status();
  EXPECT_FALSE(k3->info().from_disk) << "corrupt entry served from disk";
  expect_matches_reference(*k3, "post-corruption rebuild");

  // The rebuild rewrote the entry, so the cache serves again.
  auto k4 = JitKernel::build(plan, s, opt);
  ASSERT_TRUE(k4->compiled()) << k4->status();
  EXPECT_TRUE(k4->info().from_disk);

  // A live kernel keeps answering even if the shared entry vanishes
  // out from under it (its mapping is a private unlinked temp).
  ::unlink(find_cached_so(dir).c_str());
  expect_matches_reference(*k4, "run after external cache delete");

  std::system(("rm -rf " + dir).c_str());
}

// ---------------------------------------------- concurrent exactly-once

TEST(KernelCache, ConcurrentSameKeyBuildsExactlyOnce) {
  KernelCache cache(8, 2);
  std::atomic<int> builds{0};
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  cache.set_build_hook([&](const std::string&) {
    builds.fetch_add(1);
    released.wait();
  });

  auto plan = tri_plan(18);
  JitOptions opt;
  opt.use_disk_cache = false;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const JitKernel>> got(kThreads);
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] { got[static_cast<size_t>(t)] =
                                 cache.get(plan, Schedule::per_thread(), opt); });
  // Let every thread reach the cache while the one build is blocked in
  // the hook, then release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release.set_value();
  for (std::thread& t : ts) t.join();
  cache.set_build_hook(nullptr);

  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[0].get(), got[static_cast<size_t>(t)].get());
  const KernelCacheStats st = cache.stats();
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.hits, kThreads - 1);
  EXPECT_EQ(cache.size(), 1u);
}

// ----------------------------------------------------- key aliasing

TEST(KernelCache, KeyIgnoresThreadCountButNotEmissionStyle) {
  auto plan = tri_plan(12);
  RunConfig two;
  two.threads = 2;
  RunConfig eight;
  eight.threads = 8;
  // Thread-count-only differences execute the same generated code.
  EXPECT_EQ(KernelCache::kernel_key(*plan, Schedule::per_thread(two)),
            KernelCache::kernel_key(*plan, Schedule::per_thread(eight)));
  // Emission style and vlen change the code, so they change the key.
  EXPECT_NE(KernelCache::kernel_key(*plan, Schedule::per_thread()),
            KernelCache::kernel_key(*plan, Schedule::per_iteration()));
  EXPECT_NE(KernelCache::kernel_key(*plan, Schedule::simd_blocks(4)),
            KernelCache::kernel_key(*plan, Schedule::simd_blocks(8)));
  // Different plans never alias.
  EXPECT_NE(KernelCache::kernel_key(*plan, Schedule::per_thread()),
            KernelCache::kernel_key(*tri_plan(13), Schedule::per_thread()));
}

// ------------------------------------------------- end-to-end surface

TEST(JitSurface, PlanJitAndDescribe) {
  auto plan = tri_plan(20);
  auto k1 = plan->jit(Schedule::per_thread());
  ASSERT_NE(k1, nullptr);
  expect_matches_reference(*k1, "plan->jit() run");
  // Same plan + schedule: the global cache hands back the same kernel.
  EXPECT_EQ(plan->jit(Schedule::per_thread()).get(), k1.get());
  const std::string desc = plan->describe();
  EXPECT_NE(desc.find("jit:"), std::string::npos) << desc;
}

TEST(JitSurface, ServeJitrunMatchesRunAndCountsInStats) {
  constexpr const char* kTri =
      "for (i = 0; i < N - 1; i++)\n"
      "  for (j = i + 1; j < N; j++) {\n"
      "    /* body */;\n"
      "  }\n";
  auto req = [&](const std::string& verb) {
    serve::Request r;
    r.verb = verb;
    r.params = {{"N", 30}};
    r.nest_text = kTri;
    return r;
  };
  PlanCache cache(16, 2);
  const serve::Response run = serve::handle_request(cache, req("run"));
  ASSERT_TRUE(run.ok) << run.payload;
  const serve::Response jitrun = serve::handle_request(cache, req("jitrun"));
  ASSERT_TRUE(jitrun.ok) << jitrun.payload;
  // Identical first two lines (checksum + trip); jitrun adds its status.
  EXPECT_EQ(jitrun.payload.substr(0, run.payload.size()), run.payload);
  EXPECT_NE(jitrun.payload.find("\njit "), std::string::npos) << jitrun.payload;

  serve::Request stats;
  stats.verb = "stats";
  const serve::Response st = serve::handle_request(cache, stats);
  ASSERT_TRUE(st.ok);
  EXPECT_NE(st.payload.find("jit cache:"), std::string::npos) << st.payload;
}

}  // namespace
}  // namespace nrc
