// nrc::RuntimeConfig: the folded process-global toggles, the scoped
// override guard, the legacy simd:: forwarders, and the contract that
// Collapsed::bind() applies the CURRENT config even when the bind is
// served from the memo.
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/collapse.hpp"
#include "core/runtime_config.hpp"
#include "runtime/simd_abi.hpp"

namespace nrc {
namespace {

TEST(RuntimeConfig, DefaultsMatchTheHistoricalToggles) {
  const RuntimeConfig def;
  EXPECT_TRUE(def.vector_trig);
  EXPECT_TRUE(def.f64_guards);
  EXPECT_FALSE(def.bytecode_quartics);
  EXPECT_FALSE(def.force_quartic_demotion);
}

TEST(RuntimeConfig, ScopedOverrideRestoresOnExit) {
  const RuntimeConfig before = runtime_config();
  {
    ScopedRuntimeConfig scope;
    runtime_config().f64_guards = false;
    runtime_config().bytecode_quartics = true;
    EXPECT_FALSE(runtime_config().f64_guards);
  }
  EXPECT_EQ(runtime_config().f64_guards, before.f64_guards);
  EXPECT_EQ(runtime_config().bytecode_quartics, before.bytecode_quartics);
}

TEST(RuntimeConfig, LegacySimdForwardersShareTheConfigField) {
  ScopedRuntimeConfig scope;
  simd::set_vector_trig(false);
  EXPECT_FALSE(runtime_config().vector_trig);
  EXPECT_FALSE(simd::vector_trig_enabled());
  runtime_config().vector_trig = true;
  EXPECT_TRUE(simd::vector_trig_enabled());
}

TEST(RuntimeConfig, BindAppliesTheConfigToTheReturnedEval) {
  const Collapsed col = collapse(testutil::simplex_4d());
  {
    ScopedRuntimeConfig scope;
    runtime_config().f64_guards = false;
    const CollapsedEval ev = col.bind({{"N", 12}});
    EXPECT_FALSE(ev.f64_guards());
  }
  const CollapsedEval ev = col.bind({{"N", 12}});
  EXPECT_TRUE(ev.f64_guards());
}

TEST(RuntimeConfig, MemoizedRebindHonorsTheCurrentConfig) {
  // The memo stores the PRISTINE eval; the config is applied to the
  // returned copy — so flipping bytecode_quartics between two binds of
  // the same parameters changes the lowering even on a memo hit.
  const Collapsed col = collapse(testutil::simplex_4d());
  const CollapsedEval plain = col.bind({{"N", 12}});
  EXPECT_EQ(plain.solver_kind(0), LevelSolverKind::Quartic);

  ScopedRuntimeConfig scope;
  runtime_config().bytecode_quartics = true;
  const size_t reuses_before = col.bind_reuses();
  const CollapsedEval demoted = col.bind({{"N", 12}});
  EXPECT_GT(col.bind_reuses(), reuses_before);  // served from the memo
  EXPECT_TRUE(demoted.solver_kind(0) == LevelSolverKind::Program ||
              demoted.solver_kind(0) == LevelSolverKind::Interpreted)
      << level_solver_kind_name(demoted.solver_kind(0));

  // And both lowerings recover the same tuples.
  ASSERT_EQ(plain.trip_count(), demoted.trip_count());
  i64 a[8], b[8];
  const size_t d = static_cast<size_t>(plain.depth());
  for (i64 pc = 1; pc <= plain.trip_count(); pc += 7) {
    plain.recover(pc, {a, d});
    demoted.recover(pc, {b, d});
    for (size_t k = 0; k < d; ++k) ASSERT_EQ(a[k], b[k]) << "pc=" << pc;
  }
}

}  // namespace
}  // namespace nrc
