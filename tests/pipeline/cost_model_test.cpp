// Measured cost model: profile classification, the persisted table
// format (save/parse round trip and rejection of malformed input),
// nearest-depth lookup, the auto_select integration (table-driven
// choice vs heuristic fallback, ABI refusal, describe()'s cost line),
// the composite schemes' full-domain equivalence under hostile
// parameters, and the selection-accuracy property: on every closed-form
// kernel nest, the schedule the calibrated table picks must measure
// within a fixed factor of the measured-best candidate.
#include <gtest/gtest.h>

#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "pipeline/cost_model.hpp"
#include "pipeline/plan.hpp"
#include "runtime/simd_abi.hpp"

namespace nrc {
namespace {

/// Every test that installs a global table goes through this fixture so
/// the suite leaves auto_select on the heuristic for the other test
/// files linked into this binary.
class CostModelGlobal : public ::testing::Test {
 protected:
  void SetUp() override { CostModel::clear_global(); }
  void TearDown() override { CostModel::clear_global(); }
};

CostEntry entry(SolverProfile p, int depth, double engine, double block,
                double simd4, double simd8) {
  CostEntry e;
  e.profile = p;
  e.depth = depth;
  e.lanes = simd::kGroupLanes;
  e.engine_ns = engine;
  e.block_ns = block;
  e.simd4_ns = simd4;
  e.simd8_ns = simd8;
  return e;
}

// ------------------------------------------------------- classification

TEST(CostModel, ClassifiesByWorstLevelSolver) {
  auto profile_of = [](const NestSpec& nest, i64 n) {
    const Collapsed col = collapse(nest);
    return classify_solver_profile(col.bind(testutil::uniform_params(nest, n)));
  };
  EXPECT_EQ(profile_of(testutil::rectangular(), 40), SolverProfile::Division);
  EXPECT_EQ(profile_of(testutil::triangular_strict(), 40), SolverProfile::Quadratic);
  EXPECT_EQ(profile_of(testutil::tetrahedral_fig6(), 24), SolverProfile::Cubic);
  EXPECT_EQ(profile_of(testutil::simplex_4d(), 16), SolverProfile::Quartic);
  EXPECT_EQ(profile_of(testutil::simplex_5d(), 10), SolverProfile::Costly);
}

// --------------------------------------------------------- persistence

TEST(CostModel, SaveParseRoundTripIsExact) {
  CostModel m;
  m.add(entry(SolverProfile::Quadratic, 2, 12.5, 1.25, 0.8, 0.6));
  m.add(entry(SolverProfile::Cubic, 3, 48.0, 2.0, 1.5, 1.1));
  const std::string text = m.save_text();
  EXPECT_NE(text.find("nrc-cost-table v1"), std::string::npos);
  EXPECT_NE(text.find(std::string("abi ") + simd::runtime_abi()), std::string::npos);
  EXPECT_NE(text.find("entry profile=quadratic depth=2"), std::string::npos);

  const CostModel back = CostModel::parse_text(text);
  EXPECT_EQ(back.abi(), m.abi());
  ASSERT_EQ(back.size(), 2u);
  const CostEntry* e = back.lookup(SolverProfile::Cubic, 3);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->engine_ns, 48.0);
  EXPECT_DOUBLE_EQ(e->block_ns, 2.0);
  EXPECT_DOUBLE_EQ(e->simd8_ns, 1.1);
  // Stability: re-rendering parses to the same text.
  EXPECT_EQ(back.save_text(), text);
}

TEST(CostModel, ParseRejectsMalformedInput) {
  EXPECT_THROW(CostModel::parse_text(""), ParseError);
  EXPECT_THROW(CostModel::parse_text("bogus header\n"), ParseError);
  EXPECT_THROW(CostModel::parse_text("nrc-cost-table v1\nentry profile=nope depth=2\n"),
               ParseError);
  EXPECT_THROW(CostModel::parse_text("nrc-cost-table v1\nwhat is this\n"), ParseError);
  // Comments and blank lines are fine.
  EXPECT_NO_THROW(CostModel::parse_text("# c\n\nnrc-cost-table v1\nabi scalar\n"));
}

TEST(CostModel, LoadFileThrowsOnMissingPath) {
  EXPECT_THROW(CostModel::load_file("/nonexistent/nrc-cost-table"), ParseError);
}

TEST(CostModel, LookupFallsBackToNearestDepthWithinProfile) {
  CostModel m;
  m.add(entry(SolverProfile::Quadratic, 2, 10, 1, 1, 1));
  m.add(entry(SolverProfile::Quadratic, 5, 50, 1, 1, 1));
  const CostEntry* exact = m.lookup(SolverProfile::Quadratic, 5);
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->depth, 5);
  const CostEntry* near = m.lookup(SolverProfile::Quadratic, 3);
  ASSERT_NE(near, nullptr);
  EXPECT_EQ(near->depth, 2);
  EXPECT_EQ(m.lookup(SolverProfile::Costly, 3), nullptr);
  // Re-adding a (profile, depth) replaces rather than duplicates.
  m.add(entry(SolverProfile::Quadratic, 2, 99, 1, 1, 1));
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.lookup(SolverProfile::Quadratic, 2)->engine_ns, 99);
}

// ------------------------------------------------- auto_select plumbing

TEST_F(CostModelGlobal, EmptyTableFallsBackToHeuristic) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 500}});
  AutoSelectHints h;
  h.threads = 4;
  const Schedule::Choice ch = Schedule::auto_select_with_cost(cn, h);
  EXPECT_FALSE(ch.from_cost_model);
  EXPECT_LT(ch.est_ns_per_iter, 0);
  EXPECT_EQ(ch.schedule.scheme, Scheme::RowSegmentsChunked);  // the heuristic pick
}

TEST_F(CostModelGlobal, CalibratedTableDrivesAutoSelect) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 500}});
  CostModel m;
  m.add(entry(SolverProfile::Quadratic, 2, 20.0, 1.0, 0.7, 0.5));
  CostModel::set_global(std::move(m));

  AutoSelectHints h;
  h.threads = 4;
  const Schedule::Choice ch = Schedule::auto_select_with_cost(cn, h);
  EXPECT_TRUE(ch.from_cost_model);
  EXPECT_GT(ch.est_ns_per_iter, 0);
  EXPECT_EQ(ch.profile, "quadratic/d2");
  EXPECT_NO_THROW(ch.schedule.validate());
  // auto_select and auto_select_with_cost agree.
  EXPECT_EQ(Schedule::auto_select(cn, h).describe(), ch.schedule.describe());
}

TEST_F(CostModelGlobal, RecoveryDominatedTableFlipsTheChoice) {
  // An (artificial) table where recoveries are catastrophically
  // expensive and walking is free: the model must pick a scheme with
  // O(threads) recoveries (per-thread / row-segments / D&C with its
  // grain capped) — never the chunked scheme the heuristic would take.
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 500}});
  CostModel m;
  m.add(entry(SolverProfile::Quadratic, 2, 5e6, 0.5, 0.5, 0.5));
  CostModel::set_global(std::move(m));
  AutoSelectHints h;
  h.threads = 4;
  const Schedule::Choice ch = Schedule::auto_select_with_cost(cn, h);
  ASSERT_TRUE(ch.from_cost_model);
  EXPECT_TRUE(ch.schedule.scheme == Scheme::PerThread ||
              ch.schedule.scheme == Scheme::RowSegments)
      << ch.schedule.describe();
}

TEST_F(CostModelGlobal, MismatchedAbiTableIsRefused) {
  CostModel m;
  m.add(entry(SolverProfile::Quadratic, 2, 20.0, 1.0, 0.7, 0.5));
  m.set_abi("some-other-machine");
  CostModel::set_global(std::move(m));
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 500}});
  AutoSelectHints h;
  h.threads = 4;
  const Schedule::Choice ch = Schedule::auto_select_with_cost(cn, h);
  EXPECT_FALSE(ch.from_cost_model);  // heuristic fallback, not a mis-priced pick
}

TEST_F(CostModelGlobal, TinyDomainGuardsStayAheadOfTheTable) {
  CostModel m;
  m.add(entry(SolverProfile::Quadratic, 2, 20.0, 1.0, 0.7, 0.5));
  CostModel::set_global(std::move(m));
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval tiny = col.bind({{"N", 2}});  // 1 iteration
  const Schedule::Choice ch = Schedule::auto_select_with_cost(tiny, {});
  EXPECT_EQ(ch.schedule.scheme, Scheme::SerialSim);
  EXPECT_FALSE(ch.from_cost_model);
}

TEST_F(CostModelGlobal, DescribeCarriesTheCostEstimateLine) {
  // describe() auto-selects under the OpenMP default team; on a 1-core
  // box that hits the serial guard before the table, so widen the
  // default for the duration of the test.
  const int saved_threads = omp_get_max_threads();
  omp_set_num_threads(4);

  const auto plan = CollapsePlan::build(testutil::triangular_strict(), {{"N", 200}});
  EXPECT_NE(plan->describe().find("cost estimate: heuristic (no cost table)"),
            std::string::npos)
      << plan->describe();

  CostModel m;
  m.add(entry(SolverProfile::Quadratic, 2, 20.0, 1.0, 0.7, 0.5));
  CostModel::set_global(std::move(m));
  const std::string d = plan->describe();
  EXPECT_NE(d.find("ns/iter (cost model, quadratic/d2)"), std::string::npos) << d;
  EXPECT_NE(d.find("schedule (auto): "), std::string::npos) << d;

  omp_set_num_threads(saved_threads);
}

// ------------------------------------- composite schemes, full domain

TEST(CompositeSchemes, DivideAndConquerVisitsTheExactDomain) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 220}});  // 24090 iterations
  const auto ref = testutil::odometer_reference(cn, /*cap=*/0);
  const i64 total = cn.trip_count();
  for (const i64 grain : {i64{0}, i64{1}, i64{7}, total / 2, total,
                          total + 11, std::numeric_limits<i64>::max()}) {
    for (const int t : {1, 3, 8}) {
      EXPECT_TRUE(testutil::run_scheme_differential(
          cn, ref,
          [&](auto&& visit) { run(cn, Schedule::divide_and_conquer(grain, {t}), visit); }))
          << "grain=" << grain << " threads=" << t;
    }
  }
}

TEST(CompositeSchemes, TiledTwoLevelVisitsTheExactDomain) {
  const Collapsed col = collapse(testutil::tetrahedral_fig6());
  const CollapsedEval cn = col.bind({{"N", 40}});  // 11480 iterations
  const auto ref = testutil::odometer_reference(cn, /*cap=*/0);
  const i64 total = cn.trip_count();
  for (const auto& [tile, vlen] :
       {std::pair<i64, int>{0, 4}, {1, 1}, {3, 8}, {64, 3}, {total, 4},
        {total + 5, 8}, {std::numeric_limits<i64>::max(), 4}}) {
    for (const int t : {1, 3, 8}) {
      EXPECT_TRUE(testutil::run_scheme_differential(
          cn, ref,
          [&](auto&& visit) {
            run(cn, Schedule::tiled_two_level(tile, vlen, {t}), visit);
          }))
          << "tile=" << tile << " vlen=" << vlen << " threads=" << t;
    }
  }
}

TEST(CompositeSchemes, SegmentAndBlockBodiesRunNatively) {
  const Collapsed col = collapse(testutil::triangular_inclusive());
  const CollapsedEval cn = col.bind({{"N", 64}});
  // D&C with a segment body: maximal-run segments inside each leaf.
  i64 visited = 0;
  run(cn, Schedule::divide_and_conquer(16, {3}),
      [&](std::span<const i64>, i64 j0, i64 j1) {
#pragma omp atomic
        visited += j1 - j0;
      });
  EXPECT_EQ(visited, cn.trip_count());
  // Tiled with a block body: SoA lane groups inside each tile.
  i64 lanes_seen = 0;
  run(cn, Schedule::tiled_two_level(128, 8, {3}), [&](int lanes, const i64* const*) {
#pragma omp atomic
    lanes_seen += lanes;
  });
  EXPECT_EQ(lanes_seen, cn.trip_count());
}

// ------------------------------------------------- selection accuracy

/// Wall-clock one schedule end to end with a race-free per-thread-slot
/// body; best of `reps`.
double measure_ns(const CollapsedEval& cn, const Schedule& s, int reps) {
  static thread_local u64 sink_slot;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = omp_get_wtime();
    run(cn, s, [](std::span<const i64> idx) { sink_slot += testutil::tuple_mix(idx); });
    best = std::min(best, omp_get_wtime() - t0);
  }
  static volatile u64 g_sink;
  g_sink = sink_slot;
  return best * 1e9;
}

/// auto_select with an in-process-calibrated table must land within a
/// fixed factor of the measured-best candidate on every closed-form
/// kernel nest.  The factor is deliberately generous (shared CI boxes
/// jitter), but it catches the failure mode that matters: the model
/// systematically picking a scheme whose measured cost is in a
/// different league (e.g. per-iteration recovery on a quartic nest).
TEST_F(CostModelGlobal, SelectionWithinFixedFactorOfMeasuredBest) {
  constexpr double kFactor = 16.0;
  constexpr double kSlackNs = 2e5;  // absolute jitter floor per run
  AutoSelectHints h;
  h.threads = 4;
  h.block_body = true;

  for (const auto& shape : testutil::closed_form_shapes()) {
    const Collapsed col = collapse(shape.nest);
    // Scale the uniform parameter until the domain is big enough that
    // scheme choice is measurable but cheap (>= ~30k iterations).
    i64 v = 24;
    CollapsedEval cn = col.bind(testutil::uniform_params(shape.nest, v));
    while (cn.trip_count() < 30000 && v < (i64{1} << 20)) {
      v *= 2;
      cn = col.bind(testutil::uniform_params(shape.nest, v));
    }

    CostModel m;
    m.add(CostModel::calibrate(cn));
    CostModel::set_global(std::move(m));

    const Schedule::Choice ch = Schedule::auto_select_with_cost(cn, h);
    ASSERT_TRUE(ch.from_cost_model) << shape.name;

    const int nt = h.threads;
    const CostEntry* e =
        CostModel::global().lookup(classify_solver_profile(cn), cn.depth());
    ASSERT_NE(e, nullptr) << shape.name;
    double best_ns = 1e300;
    std::string best_label;
    for (const Schedule& s : CostModel::candidate_schedules(e, cn.trip_count(), h, nt)) {
      const double ns = measure_ns(cn, s, 3);
      if (ns < best_ns) {
        best_ns = ns;
        best_label = s.describe();
      }
    }
    const double chosen_ns = measure_ns(cn, ch.schedule, 3);
    EXPECT_LE(chosen_ns, kFactor * best_ns + kSlackNs)
        << shape.name << ": chose " << ch.schedule.describe() << " ("
        << chosen_ns / 1e3 << " us), measured best " << best_label << " ("
        << best_ns / 1e3 << " us)";
    CostModel::clear_global();
  }
}

}  // namespace
}  // namespace nrc
