// CollapsePlan + the sharded concurrent plan cache: build semantics,
// key construction, the concurrent one-build hammer, key aliasing, and
// eviction byte-identity against a cold plan.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "pipeline/plan.hpp"
#include "pipeline/plan_cache.hpp"

namespace nrc {
namespace {

// ------------------------------------------------------------ CollapsePlan

TEST(CollapsePlan, BuildRunsTheWholePipeline) {
  const auto plan = CollapsePlan::build(testutil::triangular_strict(), {{"N", 100}});
  EXPECT_EQ(plan->eval().trip_count(), 99 * 100 / 2);
  EXPECT_EQ(plan->params().at("N"), 100);
  const auto kinds = plan->solver_kinds();
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], LevelSolverKind::Quadratic);
  EXPECT_EQ(kinds[1], LevelSolverKind::InnermostLinear);
}

TEST(CollapsePlan, RunDispatchesOverThePlan) {
  const auto plan = CollapsePlan::build(testutil::tetrahedral_fig6(), {{"N", 9}});
  const auto ref = testutil::odometer_reference(plan->eval());
  EXPECT_TRUE(testutil::run_scheme_differential(plan->eval(), ref, [&](auto&& visit) {
    run(*plan, Schedule::chunked(7, {3}), visit);
  }));
  EXPECT_TRUE(testutil::run_scheme_differential(plan->eval(), ref, [&](auto&& visit) {
    run(*plan, plan->auto_schedule(), visit);
  }));
}

TEST(CollapsePlan, DescribeCarriesScheduleAndParams) {
  const auto plan = CollapsePlan::build(testutil::triangular_strict(), {{"N", 64}});
  const std::string d = plan->describe();
  EXPECT_NE(d.find("bound parameters: N=64"), std::string::npos) << d;
  EXPECT_NE(d.find("schedule (auto): "), std::string::npos) << d;
  // No cache line on a plan built outside a cache.
  EXPECT_EQ(d.find("plan cache:"), std::string::npos) << d;
}

TEST(CollapsePlan, CacheBuiltPlanDescribesCacheStats) {
  PlanCache cache(4, 2);
  const auto plan = cache.get(testutil::triangular_strict(), {{"N", 32}});
  const std::string d = plan->describe();
  EXPECT_NE(d.find("plan cache: "), std::string::npos) << d;
  EXPECT_NE(d.find("1 misses"), std::string::npos) << d;
}

TEST(CollapsePlan, DescribeIsSafeAfterTheBuildingCacheDies) {
  // Plans share ownership and may outlive the cache that built them;
  // describe() tracks the origin weakly, so after the cache's
  // destruction the stats line simply disappears (regression: a raw
  // back-pointer here was a use-after-free).
  std::shared_ptr<const CollapsePlan> plan;
  {
    PlanCache cache(4, 2);
    plan = cache.get(testutil::triangular_strict(), {{"N", 16}});
    EXPECT_NE(plan->describe().find("plan cache: "), std::string::npos);
  }
  const std::string d = plan->describe();
  EXPECT_EQ(d.find("plan cache: "), std::string::npos) << d;
  EXPECT_NE(d.find("schedule (auto): "), std::string::npos) << d;
}

TEST(CollapsePlan, BuildPropagatesBindFailures) {
  // The strict triangle is empty at N = 1: collapse() succeeds, bind()
  // must reject the domain.
  EXPECT_THROW(CollapsePlan::build(testutil::triangular_strict(), {{"N", 1}}),
               SpecError);
}

// --------------------------------------------------------------- cache keys

TEST(PlanCacheKey, DistinguishesNestParamsAndOptions) {
  const NestSpec tri = testutil::triangular_strict();
  const NestSpec tet = testutil::tetrahedral_fig6();
  CollapseOptions closed;
  CollapseOptions search_only;
  search_only.build_closed_form = false;
  std::set<std::string> keys{
      plan_cache_key(tri, {{"N", 10}}, closed),
      plan_cache_key(tri, {{"N", 11}}, closed),
      plan_cache_key(tri, {{"N", 10}}, search_only),
      plan_cache_key(tet, {{"N", 10}}, closed),
  };
  EXPECT_EQ(keys.size(), 4u);
  // Deterministic: the same inputs produce the same key.
  EXPECT_EQ(plan_cache_key(tri, {{"N", 10}}, closed),
            plan_cache_key(tri, {{"N", 10}}, closed));
}

// -------------------------------------------------------------- cache hits

TEST(PlanCache, RepeatedDomainsShareOnePlan) {
  PlanCache cache(8, 4);
  const NestSpec tri = testutil::triangular_strict();
  const auto a = cache.get(tri, {{"N", 50}});
  const auto b = cache.get(tri, {{"N", 50}});
  EXPECT_EQ(a.get(), b.get());  // the same immutable plan instance
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, NewParamsOnKnownNestSkipSymbolicBuild) {
  PlanCache cache(8, 4);
  const NestSpec tri = testutil::triangular_strict();
  cache.get(tri, {{"N", 50}});
  cache.get(tri, {{"N", 60}});
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.symbolic_hits, 1);  // the second miss reused the Collapsed
}

TEST(PlanCache, DistinctParameterKeysDoNotAlias) {
  PlanCache cache(32, 4);
  const NestSpec tri = testutil::triangular_strict();
  std::set<const CollapsePlan*> instances;
  for (i64 n = 2; n <= 12; ++n) {
    const auto plan = cache.get(tri, {{"N", n}});
    EXPECT_EQ(plan->eval().trip_count(), (n - 1) * n / 2) << n;
    instances.insert(plan.get());
  }
  EXPECT_EQ(instances.size(), 11u);
  // Re-getting every domain hits and returns the right plan again.
  for (i64 n = 2; n <= 12; ++n)
    EXPECT_EQ(cache.get(tri, {{"N", n}})->eval().trip_count(), (n - 1) * n / 2);
  EXPECT_EQ(cache.stats().hits, 11);
}

TEST(PlanCache, FailedBindsAreNotCached) {
  PlanCache cache(8, 1);
  const NestSpec tri = testutil::triangular_strict();
  EXPECT_THROW(cache.get(tri, {{"N", 1}}), SpecError);  // empty at N = 1
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_THROW(cache.get(tri, {{"N", 1}}), SpecError);  // still throws, still clean
  // The symbolic artifact survived the failed bind: a valid domain on
  // the same nest pays only bind().
  (void)cache.get(tri, {{"N", 10}});
  EXPECT_EQ(cache.stats().symbolic_hits, 1);
}

// ------------------------------------------------------- concurrent hammer
//
// N threads hammer the same (nest, params) key: the shard builds under
// its lock, so exactly ONE build may happen, every thread must receive
// the same immutable plan instance, and the counters must agree with
// the lookup count.  Runs under the tier1 label, so the CI ASan/UBSan
// leg executes this exact test with sanitizers on.

TEST(PlanCache, ConcurrentHammerBuildsOnce) {
  PlanCache cache(8, 4);
  const NestSpec tet = testutil::tetrahedral_fig6();
  constexpr int kThreads = 8;
  constexpr int kGetsPerThread = 50;

  std::vector<std::shared_ptr<const CollapsePlan>> first(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kGetsPerThread; ++i) {
        auto plan = cache.get(tet, {{"N", 40}});
        // Exercise the shared plan concurrently while hammering.
        i64 idx[kMaxDepth];
        plan->eval().recover(1 + (t * kGetsPerThread + i) %
                                     plan->eval().trip_count(),
                             {idx, static_cast<size_t>(plan->eval().depth())});
        if (i == 0) first[static_cast<size_t>(t)] = std::move(plan);
      }
    });
  }
  for (auto& th : pool) th.join();

  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(first[0].get(), first[static_cast<size_t>(t)].get());

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1);  // exactly one build across all threads
  EXPECT_EQ(s.hits, static_cast<i64>(kThreads) * kGetsPerThread - 1);
  EXPECT_EQ(s.lookups(), static_cast<i64>(kThreads) * kGetsPerThread);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, ConcurrentDistinctKeysStayDistinct) {
  PlanCache cache(32, 4);
  const NestSpec tri = testutil::triangular_strict();
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        const i64 n = 2 + (t + i) % 10;
        const auto plan = cache.get(tri, {{"N", n}});
        EXPECT_EQ(plan->eval().trip_count(), (n - 1) * n / 2);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(cache.size(), 10u);
  EXPECT_EQ(cache.stats().lookups(), 8 * 25);
}

// ---------------------------------------------------------------- eviction

/// Full recovery sweep of a plan's domain, for byte-identity checks.
std::vector<i64> full_recovery(const CollapsePlan& plan) {
  const CollapsedEval& cn = plan.eval();
  const size_t d = static_cast<size_t>(cn.depth());
  std::vector<i64> out;
  out.reserve(static_cast<size_t>(cn.trip_count()) * d);
  i64 idx[kMaxDepth];
  for (i64 pc = 1; pc <= cn.trip_count(); ++pc) {
    cn.recover(pc, {idx, d});
    out.insert(out.end(), idx, idx + d);
  }
  return out;
}

TEST(PlanCache, EvictionKeepsResultsByteIdenticalToAColdPlan) {
  // One single-slot shard: every new key evicts the previous plan.
  PlanCache cache(1, 1);
  const NestSpec tri = testutil::triangular_strict();
  const NestSpec tet = testutil::tetrahedral_fig6();

  const auto first = cache.get(tri, {{"N", 20}});
  const std::vector<i64> before = full_recovery(*first);

  cache.get(tet, {{"N", 10}});  // evicts the triangular plan
  EXPECT_GE(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 1u);

  // Re-get: a rebuilt plan (a fresh instance), byte-identical both to
  // the evicted plan's results and to a cold, cache-free build.
  const auto rebuilt = cache.get(tri, {{"N", 20}});
  EXPECT_NE(first.get(), rebuilt.get());
  EXPECT_EQ(full_recovery(*rebuilt), before);
  const auto cold = CollapsePlan::build(tri, {{"N", 20}});
  EXPECT_EQ(full_recovery(*cold), before);

  // The evicted shared_ptr stays valid for holders (shared ownership).
  EXPECT_EQ(first->eval().trip_count(), 19 * 20 / 2);
}

TEST(PlanCache, StatsLineRendersCounters) {
  PlanCache cache(4, 1);
  cache.get(testutil::triangular_strict(), {{"N", 8}});
  cache.get(testutil::triangular_strict(), {{"N", 8}});
  const std::string line = cache.stats_line();
  EXPECT_NE(line.find("plan cache: 1 hits / 1 misses"), std::string::npos) << line;
  EXPECT_NE(line.find("1 plans"), std::string::npos) << line;
}

TEST(PlanCache, ShardStatsSumToTotals) {
  PlanCache cache(8, 4);
  const NestSpec tri = testutil::triangular_strict();
  for (i64 n = 2; n <= 9; ++n) cache.get(tri, {{"N", n}});
  for (i64 n = 2; n <= 9; ++n) cache.get(tri, {{"N", n}});
  PlanCacheStats merged;
  for (const PlanCacheStats& s : cache.shard_stats()) merged += s;
  const PlanCacheStats total = cache.stats();
  EXPECT_EQ(merged.hits, total.hits);
  EXPECT_EQ(merged.misses, total.misses);
  EXPECT_EQ(merged.symbolic_hits, total.symbolic_hits);
  EXPECT_EQ(merged.evictions, total.evictions);
  EXPECT_EQ(total.hits, 8);
  EXPECT_EQ(total.misses, 8);
}

TEST(PlanCache, GlobalCacheIsOneInstance) {
  EXPECT_EQ(&plan_cache(), &plan_cache());
}

}  // namespace
}  // namespace nrc
