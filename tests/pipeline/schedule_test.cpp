// Schedule descriptor + unified dispatcher: factory/validate/describe
// semantics, the auto_select heuristic, nrc::run body-shape dispatch
// (including its free tuple->segment/block adaptations and the
// SpecError on shapes no adaptation covers), and the emitter-side
// Schedule consumption (emission_style / emission_omp_schedule).
#include <gtest/gtest.h>

#include <omp.h>

#include "../test_util.hpp"
#include "codegen/c_emitter.hpp"
#include "pipeline/dispatch.hpp"
#include "pipeline/schedule.hpp"
#include "runtime/simd_abi.hpp"

namespace nrc {
namespace {

// ------------------------------------------------------------ descriptor

TEST(Schedule, FactoriesCarryTheirParameters) {
  EXPECT_EQ(Schedule::per_thread().scheme, Scheme::PerThread);
  EXPECT_EQ(Schedule::per_iteration(OmpSchedule::Dynamic).omp, OmpSchedule::Dynamic);
  EXPECT_EQ(Schedule::chunked(77).chunk, 77);
  EXPECT_EQ(Schedule::taskloop(9).grain, 9);
  EXPECT_EQ(Schedule::row_segments_chunked(33).chunk, 33);
  EXPECT_EQ(Schedule::simd_blocks(16).vlen, 16);
  const Schedule sc = Schedule::simd_blocks_chunked(4, 128, {3});
  EXPECT_EQ(sc.vlen, 4);
  EXPECT_EQ(sc.chunk, 128);
  EXPECT_EQ(sc.cfg.threads, 3);
  EXPECT_EQ(Schedule::warp_sim(32).warp_size, 32);
  EXPECT_EQ(Schedule::serial_sim(12).serial_chunks, 12);
  EXPECT_EQ(Schedule::divide_and_conquer(64).grain, 64);
  const Schedule tt = Schedule::tiled_two_level(4096, 8, {5});
  EXPECT_EQ(tt.scheme, Scheme::TiledTwoLevel);
  EXPECT_EQ(tt.chunk, 4096);  // the tile rides the chunk field
  EXPECT_EQ(tt.vlen, 8);
  EXPECT_EQ(tt.cfg.threads, 5);
}

TEST(Schedule, ValidateThrowsExactlyWhereTheLegacyEntryPointsThrew) {
  EXPECT_THROW(Schedule::simd_blocks(0).validate(), SpecError);
  EXPECT_THROW(Schedule::simd_blocks(kMaxSimdLanes + 1).validate(), SpecError);
  EXPECT_THROW(Schedule::simd_blocks_chunked(0, 8).validate(), SpecError);
  EXPECT_THROW(Schedule::warp_sim(0).validate(), SpecError);
  // Non-positive chunk/grain are documented fallbacks, not errors.
  EXPECT_NO_THROW(Schedule::chunked(0).validate());
  EXPECT_NO_THROW(Schedule::chunked(-5).validate());
  EXPECT_NO_THROW(Schedule::taskloop(0).validate());
  EXPECT_NO_THROW(Schedule::row_segments_chunked(0).validate());
  // TiledTwoLevel shares the simd vlen range; the tile itself has the
  // documented non-positive fallback.
  EXPECT_THROW(Schedule::tiled_two_level(64, 0).validate(), SpecError);
  EXPECT_THROW(Schedule::tiled_two_level(64, kMaxSimdLanes + 1).validate(), SpecError);
  EXPECT_NO_THROW(Schedule::tiled_two_level(0, 4).validate());
  EXPECT_NO_THROW(Schedule::divide_and_conquer(0).validate());
  EXPECT_NO_THROW(Schedule::divide_and_conquer(-3).validate());
}

TEST(Schedule, DescribeNamesSchemeAndParameters) {
  EXPECT_EQ(Schedule::per_thread().describe(), "per_thread()");
  EXPECT_EQ(Schedule::per_thread({8}).describe(), "per_thread(threads=8)");
  EXPECT_EQ(Schedule::per_iteration(OmpSchedule::Dynamic).describe(),
            "per_iteration(omp=dynamic)");
  EXPECT_EQ(Schedule::chunked(512).describe(), "chunked(chunk=512)");
  // The simd schemes report the runtime leg so a log line pins down
  // which ABI actually ran (compile-time macros alone can't).
  const std::string abi = simd::runtime_abi();
  EXPECT_EQ(Schedule::simd_blocks(16).describe(), "simd_blocks(vlen=16, abi=" + abi + ")");
  EXPECT_EQ(Schedule::simd_blocks_chunked(8, 64, {2}).describe(),
            "simd_blocks_chunked(vlen=8, chunk=64, abi=" + abi + ", threads=2)");
  EXPECT_EQ(Schedule::warp_sim(32).describe(), "warp_sim(warp_size=32)");
  EXPECT_EQ(Schedule::serial_sim(12).describe(), "serial_sim(n_chunks=12)");
  EXPECT_EQ(Schedule::divide_and_conquer(256).describe(),
            "divide_and_conquer(grain=256)");
  EXPECT_EQ(Schedule::tiled_two_level(4096, 8, {2}).describe(),
            "tiled_two_level(tile=4096, vlen=8, abi=" + abi + ", threads=2)");
}

TEST(Schedule, DefaultChunkResolvesRealThreadCountAtZero) {
  // Regression: threads == 0 means "the OpenMP default", but
  // default_chunk used to fall into its np = 1 floor, sizing chunks for
  // a single thread (8 chunks total instead of 8 per thread) — every
  // auto-selected chunked schedule under the default RunConfig got ~np
  // times too coarse a partition for dynamic balancing.
  const i64 total = 1 << 17;  // small enough that the 4096 cap never bites
  const i64 at_zero = default_chunk(total, 0);
  const i64 at_default = default_chunk(total, omp_get_max_threads());
  EXPECT_EQ(at_zero, at_default);
  if (omp_get_max_threads() > 1) EXPECT_LT(at_zero, default_chunk(total, 1));
  // Explicit counts pin the exact partition: 32 chunks per thread.
  EXPECT_EQ(default_chunk(total, 4), total / (32 * 4));
  EXPECT_EQ(default_chunk(7, 4), 1);  // floor at one iteration
}

// ------------------------------------------------------------ auto_select

TEST(AutoSelect, TinyDomainOrOneThreadRunsSerial) {
  const Collapsed col = collapse(testutil::triangular_inclusive());
  const CollapsedEval tiny = col.bind({{"N", 1}});  // 1 iteration
  EXPECT_EQ(Schedule::auto_select(tiny).scheme, Scheme::SerialSim);

  const CollapsedEval cn = col.bind({{"N", 400}});
  AutoSelectHints one_thread;
  one_thread.threads = 1;
  EXPECT_EQ(Schedule::auto_select(cn, one_thread).scheme, Scheme::SerialSim);
}

TEST(AutoSelect, SmallDomainUsesPerThread) {
  const Collapsed col = collapse(testutil::triangular_inclusive());
  const CollapsedEval cn = col.bind({{"N", 3}});  // 10 iterations
  AutoSelectHints h;
  h.threads = 8;  // 10 < 4 * 8
  const Schedule s = Schedule::auto_select(cn, h);
  EXPECT_EQ(s.scheme, Scheme::PerThread);
  EXPECT_EQ(s.cfg.threads, 8);
}

TEST(AutoSelect, CostlyRecoveryPrefersFewestRecoveries) {
  // simplex_5d's level 0 has degree 5: no closed form, binary-search
  // recovery — the costliest engine, so one recovery per thread wins.
  const Collapsed col = collapse(testutil::simplex_5d());
  const CollapsedEval cn = col.bind({{"N", 12}});
  ASSERT_EQ(cn.solver_kind(0), LevelSolverKind::Search);
  AutoSelectHints h;
  h.threads = 4;
  EXPECT_EQ(Schedule::auto_select(cn, h).scheme, Scheme::RowSegments);
}

TEST(AutoSelect, CheapClosedFormsTakeChunkedSegments) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 500}});
  AutoSelectHints h;
  h.threads = 4;
  const Schedule s = Schedule::auto_select(cn, h);
  EXPECT_EQ(s.scheme, Scheme::RowSegmentsChunked);
  EXPECT_EQ(s.chunk, default_chunk(cn.trip_count(), 4));
}

TEST(AutoSelect, HighDegreeLevelsStayOnChunkedSegments) {
  // Cubic levels pay more per recovery; the chunk amortizes it, and a
  // block-shaped body does not flip the choice to the SIMD schemes.
  const Collapsed col = collapse(testutil::tetrahedral_fig6());
  const CollapsedEval cn = col.bind({{"N", 80}});
  AutoSelectHints h;
  h.threads = 4;
  h.block_body = true;
  EXPECT_EQ(Schedule::auto_select(cn, h).scheme, Scheme::RowSegmentsChunked);
}

TEST(AutoSelect, BlockBodyHintEnablesSimdScheme) {
  const Collapsed col = collapse(testutil::triangular_strict());
  const CollapsedEval cn = col.bind({{"N", 500}});
  AutoSelectHints h;
  h.threads = 4;
  h.block_body = true;
  h.vlen = 4;
  const Schedule s = Schedule::auto_select(cn, h);
  EXPECT_EQ(s.scheme, Scheme::SimdBlocksChunked);
  EXPECT_EQ(s.vlen, 4);
  EXPECT_NO_THROW(s.validate());
}

// --------------------------------------------------------------- dispatch

/// Every Schedule the matrix can produce, driven through nrc::run with
/// a tuple body, must visit the exact odometer multiset.
TEST(Dispatch, EverySchemeVisitsTheExactDomain) {
  const Collapsed col = collapse(testutil::tetrahedral_fig6());
  const CollapsedEval cn = col.bind({{"N", 9}});
  const auto ref = testutil::odometer_reference(cn);
  const i64 total = cn.trip_count();
  const Schedule schedules[] = {
      Schedule::per_iteration(OmpSchedule::Static, {3}),
      Schedule::per_iteration(OmpSchedule::Dynamic, {3}),
      Schedule::per_thread({3}),
      Schedule::chunked(7, {3}),
      Schedule::chunked(0, {3}),  // per-thread fallback
      Schedule::taskloop(5, {3}),
      Schedule::row_segments({3}),
      Schedule::row_segments_chunked(11, {3}),
      Schedule::simd_blocks(4, {3}),
      Schedule::simd_blocks_chunked(4, total + 1, {3}),
      Schedule::warp_sim(6, {3}),
      Schedule::serial_sim(5),
      Schedule::divide_and_conquer(0, {3}),
      Schedule::divide_and_conquer(1, {3}),
      Schedule::divide_and_conquer(total + 3, {3}),
      Schedule::tiled_two_level(1, 4, {3}),
      Schedule::tiled_two_level(7, 8, {3}),
      Schedule::tiled_two_level(total + 2, 4, {3}),
  };
  for (const Schedule& s : schedules) {
    EXPECT_TRUE(testutil::run_scheme_differential(
        cn, ref, [&](auto&& visit) { run(cn, s, visit); }))
        << s.describe();
  }
}

TEST(Dispatch, SegmentBodyRunsNativeOnSegmentSchemes) {
  const Collapsed col = collapse(testutil::triangular_inclusive());
  const CollapsedEval cn = col.bind({{"N", 24}});
  i64 segment_calls = 0, visited = 0;
  run(cn, Schedule::row_segments({2}),
      [&](std::span<const i64> prefix, i64 j0, i64 j1) {
        (void)prefix;
#pragma omp atomic
        ++segment_calls;
#pragma omp atomic
        visited += j1 - j0;
      });
  EXPECT_EQ(visited, cn.trip_count());
  // Maximal runs: far fewer body calls than iterations.
  EXPECT_LE(segment_calls, 25 + 2);
}

TEST(Dispatch, SegmentBodyIsAcceptedByScalarRangeSchemes) {
  // A segment body on the scalar chunked scheme: the row walk produces
  // the same runs, so the adaptation is free and exact.
  const Collapsed col = collapse(testutil::triangular_inclusive());
  const CollapsedEval cn = col.bind({{"N", 24}});
  i64 visited = 0;
  run(cn, Schedule::chunked(13, {2}), [&](std::span<const i64>, i64 j0, i64 j1) {
#pragma omp atomic
    visited += j1 - j0;
  });
  EXPECT_EQ(visited, cn.trip_count());
}

TEST(Dispatch, TupleBodyIsAdaptedToBlockSchemes) {
  const Collapsed col = collapse(testutil::triangular_inclusive());
  const CollapsedEval cn = col.bind({{"N", 24}});
  const auto ref = testutil::odometer_reference(cn);
  EXPECT_TRUE(testutil::run_scheme_differential(cn, ref, [&](auto&& visit) {
    run(cn, Schedule::simd_blocks(8, {2}), visit);
  }));
}

TEST(Dispatch, MismatchedBodyShapeThrows) {
  const Collapsed col = collapse(testutil::triangular_inclusive());
  const CollapsedEval cn = col.bind({{"N", 8}});
  const auto block_body = [](int, const i64* const*) {};
  EXPECT_THROW(run(cn, Schedule::per_thread(), block_body), SpecError);
  EXPECT_THROW(run(cn, Schedule::per_iteration(), block_body), SpecError);
  EXPECT_THROW(run(cn, Schedule::warp_sim(4), block_body), SpecError);
  const auto segment_body = [](std::span<const i64>, i64, i64) {};
  EXPECT_THROW(run(cn, Schedule::per_iteration(), segment_body), SpecError);
  EXPECT_THROW(run(cn, Schedule::simd_blocks(4), segment_body), SpecError);
}

TEST(Dispatch, InvalidScheduleParametersThrow) {
  const Collapsed col = collapse(testutil::triangular_inclusive());
  const CollapsedEval cn = col.bind({{"N", 8}});
  const auto noop = [](std::span<const i64>) {};
  EXPECT_THROW(run(cn, Schedule::simd_blocks(kMaxSimdLanes + 1), noop), SpecError);
  EXPECT_THROW(run(cn, Schedule::warp_sim(0), noop), SpecError);
}

// ------------------------------------------------- emitter consumption

TEST(Emission, StyleMappingCoversEveryScheme) {
  EXPECT_EQ(emission_style(Schedule::per_iteration()), RecoveryStyle::PerIteration);
  EXPECT_EQ(emission_style(Schedule::per_thread()), RecoveryStyle::PerThread);
  EXPECT_EQ(emission_style(Schedule::taskloop(4)), RecoveryStyle::PerThread);
  EXPECT_EQ(emission_style(Schedule::row_segments()), RecoveryStyle::PerThread);
  EXPECT_EQ(emission_style(Schedule::serial_sim()), RecoveryStyle::PerThread);
  EXPECT_EQ(emission_style(Schedule::chunked(64)), RecoveryStyle::Chunked);
  EXPECT_EQ(emission_style(Schedule::row_segments_chunked(64)), RecoveryStyle::Chunked);
  // chunk <= 0 is the per-thread fallback at runtime, so the emission
  // lowers to the PerThread style — same descriptor, same scheme.
  EXPECT_EQ(emission_style(Schedule::chunked(0)), RecoveryStyle::PerThread);
  EXPECT_EQ(emission_style(Schedule::row_segments_chunked(-1)), RecoveryStyle::PerThread);
  EXPECT_EQ(emission_style(Schedule::simd_blocks(8)), RecoveryStyle::SimdBlocks);
  EXPECT_EQ(emission_style(Schedule::simd_blocks_chunked(8, 64)),
            RecoveryStyle::SimdBlocks);
  EXPECT_EQ(emission_style(Schedule::warp_sim(32)), RecoveryStyle::PerIteration);
  // The composite schemes lower to their closest flat emission shape:
  // D&C tasks have no OpenMP-C equivalent the emitter produces, so the
  // per-thread recovery shape stands in; the two-level tile walk is the
  // simd-block walk with a coarser outer grain.
  EXPECT_EQ(emission_style(Schedule::divide_and_conquer(64)), RecoveryStyle::PerThread);
  EXPECT_EQ(emission_style(Schedule::tiled_two_level(4096, 8)),
            RecoveryStyle::SimdBlocks);
}

TEST(Emission, OmpScheduleClauseFollowsTheSchedule) {
  EXPECT_EQ(emission_omp_schedule(Schedule::per_iteration()), "static");
  EXPECT_EQ(emission_omp_schedule(Schedule::per_iteration(OmpSchedule::Dynamic)),
            "dynamic");
  EXPECT_EQ(emission_omp_schedule(Schedule::chunked(256)), "static, 256");
  EXPECT_EQ(emission_omp_schedule(Schedule::chunked(0)), "static");  // per-thread fallback
  // §VI-B's coalesced consecutive-iteration deal, expressed in OpenMP.
  EXPECT_EQ(emission_omp_schedule(Schedule::warp_sim(32)), "static, 1");
  EXPECT_EQ(emission_omp_schedule(Schedule::per_thread()), "static");
  EXPECT_EQ(emission_omp_schedule(Schedule::divide_and_conquer(64)), "static");
  EXPECT_EQ(emission_omp_schedule(Schedule::tiled_two_level(4096, 8)), "static");
}

TEST(Emission, WarpScheduleEmitsCoalescedPerIteration) {
  const NestProgram prog = parse_nest_program(R"(
name w
params N
array double x[N]
loop i = 0 .. N
loop j = i .. N
body { x[i] += 1.0; }
)");
  const Collapsed col = collapse(prog.collapsed_nest());
  EmitOptions opt;
  opt.schedule = Schedule::warp_sim(32);
  const std::string src = emit_collapsed_function(prog, col, opt);
  EXPECT_NE(src.find("schedule(static, 1)"), std::string::npos) << src;
  EXPECT_EQ(src.find("__nrc_first"), std::string::npos);  // per-iteration shape
}

}  // namespace
}  // namespace nrc
