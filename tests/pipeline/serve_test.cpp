// The serving layer: wire framing round-trips, handle_request over all
// verbs (with per-request cost attribution), the serving trip limit,
// plan serialization byte-identity on every kernel nest, corrupt-record
// rejection, and the snapshot/warm_start cache round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "../test_util.hpp"
#include "codegen/c_for_parser.hpp"
#include "codegen/dsl_parser.hpp"
#include "pipeline/plan_cache.hpp"
#include "polyhedral/domain.hpp"
#include "serve/protocol.hpp"
#include "serve/serialization.hpp"
#include "support/error.hpp"

namespace nrc {
namespace {

constexpr const char* kTriCFor =
    "for (i = 0; i < N - 1; i++)\n"
    "  for (j = i + 1; j < N; j++) {\n"
    "    /* body */;\n"
    "  }\n";

serve::Request make_req(const std::string& verb, ParamMap params,
                        const std::string& nest_text = "") {
  serve::Request req;
  req.verb = verb;
  req.params = std::move(params);
  req.nest_text = nest_text;
  return req;
}

TEST(ServeProtocol, RequestWireRoundTrip) {
  const serve::Request req = make_req("describe", {{"M", 7}, {"N", 2000}}, kTriCFor);
  std::istringstream wire(serve::format_request(req));
  serve::Request back;
  ASSERT_TRUE(serve::read_request(wire, back));
  EXPECT_EQ(back.verb, "describe");
  EXPECT_EQ(back.params, req.params);
  EXPECT_EQ(back.nest_text, req.nest_text);

  // Header-only verbs carry no nest section and no terminator.
  std::istringstream wire2(serve::format_request(make_req("stats", {})));
  ASSERT_TRUE(serve::read_request(wire2, back));
  EXPECT_EQ(back.verb, "stats");
  EXPECT_TRUE(back.params.empty());
  EXPECT_FALSE(serve::read_request(wire2, back));  // clean EOF
}

TEST(ServeProtocol, ResponseWireRoundTrip) {
  serve::Response resp;
  resp.payload = "line one\nline two\n";
  resp.outcome = "cold";
  resp.build_ns = 12345;
  std::istringstream wire(serve::format_response(resp));
  serve::Response back;
  ASSERT_TRUE(serve::read_response(wire, back));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.payload, resp.payload);
  EXPECT_EQ(back.outcome, "cold");
  EXPECT_EQ(back.build_ns, 12345);

  const serve::Response err{false, "boom\n", "-", 0};
  std::istringstream wire2(serve::format_response(err));
  ASSERT_TRUE(serve::read_response(wire2, back));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.payload, "boom\n");
}

TEST(ServeProtocol, MalformedRequestsThrowParseError) {
  serve::Request req;
  std::istringstream unterminated("describe N=5\nfor (i = 0; i < N; i++) {}\n");
  EXPECT_THROW(serve::read_request(unterminated, req), ParseError);

  std::istringstream bad_param("describe N=abc\nfor (i = 0; i < N; i++) {}\n.\n");
  EXPECT_THROW(serve::read_request(bad_param, req), ParseError);

  std::istringstream truncated_resp("ok 100 outcome=hit build_ns=0\nshort");
  serve::Response resp;
  EXPECT_THROW(serve::read_response(truncated_resp, resp), ParseError);
}

TEST(ServeHandle, DescribeAttributesColdHitSymbolic) {
  PlanCache cache(16, 2);
  const serve::Request req = make_req("describe", {{"N", 100}}, kTriCFor);

  const serve::Response cold = serve::handle_request(cache, req);
  ASSERT_TRUE(cold.ok) << cold.payload;
  EXPECT_EQ(cold.outcome, "cold");
  EXPECT_GT(cold.build_ns, 0);
  EXPECT_NE(cold.payload.find("lowered solver"), std::string::npos) << cold.payload;

  const serve::Response hit = serve::handle_request(cache, req);
  EXPECT_EQ(hit.outcome, "hit");
  // describe() ends with the LIVE cache-stats line; everything above it
  // comes from the shared immutable plan and must match exactly.
  const auto sans_stats = [](const std::string& s) {
    return s.substr(0, s.find("plan cache:"));
  };
  EXPECT_EQ(sans_stats(hit.payload), sans_stats(cold.payload));

  const serve::Response sym =
      serve::handle_request(cache, make_req("describe", {{"N", 101}}, kTriCFor));
  EXPECT_EQ(sym.outcome, "symbolic");
}

TEST(ServeHandle, EmitReturnsTheCollapsedFunction) {
  PlanCache cache(16, 2);
  const serve::Response resp =
      serve::handle_request(cache, make_req("emit", {{"N", 50}}, kTriCFor));
  ASSERT_TRUE(resp.ok) << resp.payload;
  EXPECT_NE(resp.payload.find("for ("), std::string::npos) << resp.payload;
  EXPECT_NE(resp.payload.find("/* body */"), std::string::npos) << resp.payload;
}

TEST(ServeHandle, RunChecksumIsSyntaxAndRepeatInvariant) {
  PlanCache cache(16, 2);
  const serve::Response c_run =
      serve::handle_request(cache, make_req("run", {{"N", 30}}, kTriCFor));
  ASSERT_TRUE(c_run.ok) << c_run.payload;
  EXPECT_NE(c_run.payload.find("trip 435"), std::string::npos) << c_run.payload;

  // The same domain through the DSL surface syntax: identical tuples,
  // identical order-insensitive checksum.
  NestProgram prog = parse_c_for_nest(kTriCFor);
  const serve::Response dsl_run = serve::handle_request(
      cache, make_req("run", {{"N", 30}}, render_nest_program(prog)));
  ASSERT_TRUE(dsl_run.ok) << dsl_run.payload;
  EXPECT_EQ(dsl_run.payload, c_run.payload);

  // And repeated runs (now cache hits) stay bit-identical.
  const serve::Response again =
      serve::handle_request(cache, make_req("run", {{"N", 30}}, kTriCFor));
  EXPECT_EQ(again.outcome, "hit");
  EXPECT_EQ(again.payload, c_run.payload);
}

TEST(ServeHandle, RunRefusesDomainsOverTheServingLimit) {
  PlanCache cache(16, 2);
  serve::ServeLimits limits;
  limits.max_run_trip = 100;
  const serve::Response resp =
      serve::handle_request(cache, make_req("run", {{"N", 100}}, kTriCFor), limits);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.payload.find("serving limit"), std::string::npos) << resp.payload;
  // describe on the same domain is still fine — the limit gates run only.
  EXPECT_TRUE(
      serve::handle_request(cache, make_req("describe", {{"N", 100}}, kTriCFor), limits).ok);
}

TEST(ServeHandle, LintReportsCertificateAndServeLimit) {
  PlanCache cache(16, 2);
  serve::ServeLimits limits;
  limits.max_run_trip = 100;

  // Over the run limit: lint stays ok and reports NRC-W005 instead of
  // refusing the way run does.
  const serve::Response over =
      serve::handle_request(cache, make_req("lint", {{"N", 100}}, kTriCFor), limits);
  ASSERT_TRUE(over.ok) << over.payload;
  EXPECT_NE(over.payload.find("certificates: trip-i64 yes"), std::string::npos)
      << over.payload;
  EXPECT_NE(over.payload.find("NRC-W005"), std::string::npos) << over.payload;

  // Under the limit: a clean certificate, no W005.
  const serve::Response small =
      serve::handle_request(cache, make_req("lint", {{"N", 10}}, kTriCFor), limits);
  ASSERT_TRUE(small.ok);
  EXPECT_NE(small.payload.find("lint: clean"), std::string::npos) << small.payload;

  // Bind failures come back as diagnostics, not an err response, and
  // lint bypasses the cache (no entry churned by the failing domain).
  const size_t before = cache.size();
  const serve::Response unbound =
      serve::handle_request(cache, make_req("lint", {}, kTriCFor), limits);
  ASSERT_TRUE(unbound.ok);
  EXPECT_NE(unbound.payload.find("NRC-E001"), std::string::npos) << unbound.payload;
  EXPECT_EQ(cache.size(), before);

  // The run refusal names the lint verb as the non-refusing alternative.
  const serve::Response refused =
      serve::handle_request(cache, make_req("run", {{"N", 100}}, kTriCFor), limits);
  ASSERT_FALSE(refused.ok);
  EXPECT_NE(refused.payload.find("NRC-W005"), std::string::npos) << refused.payload;
}

TEST(ServeHandle, ErrorsBecomeErrResponsesNotExceptions) {
  PlanCache cache(16, 2);
  const serve::Response unknown = serve::handle_request(cache, make_req("frobnicate", {}));
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.payload.find("unknown verb"), std::string::npos);

  // A nest that parses but fails to bind (missing parameter) errs too.
  const serve::Response unbound = serve::handle_request(cache, make_req("describe", {}, kTriCFor));
  EXPECT_FALSE(unbound.ok);

  const serve::Response stats = serve::handle_request(cache, make_req("stats", {}));
  ASSERT_TRUE(stats.ok);
  EXPECT_NE(stats.payload.find("plan cache:"), std::string::npos);
}

TEST(ServeSerialization, RoundTripIsByteIdenticalOnEveryKernelNest) {
  for (const auto& sc : testutil::closed_form_shapes()) {
    const ParamMap p = testutil::uniform_params(sc.nest, 7);
    if (!has_no_empty_ranges(sc.nest, p)) continue;  // outside the model
    const auto cold = CollapsePlan::build(sc.nest, p);
    const std::string record = cold->serialize();

    const auto back = CollapsePlan::deserialize(record);
    // serialize() is stable: re-serializing the rebuilt plan reproduces
    // the record byte for byte.
    EXPECT_EQ(back->serialize(), record) << sc.name;
    ASSERT_EQ(back->eval().trip_count(), cold->eval().trip_count()) << sc.name;

    // And the rebuilt plan recovers the identical tuple at every pc.
    i64 a[8], b[8];
    const size_t d = static_cast<size_t>(cold->eval().depth());
    for (i64 pc = 1; pc <= cold->eval().trip_count(); ++pc) {
      cold->eval().recover(pc, {a, d});
      back->eval().recover(pc, {b, d});
      for (size_t k = 0; k < d; ++k)
        ASSERT_EQ(a[k], b[k]) << sc.name << " pc=" << pc << " level=" << k;
    }
  }
}

TEST(ServeSerialization, CorruptRecordsAreRejected) {
  const auto plan = CollapsePlan::build(testutil::triangular_strict(), {{"N", 20}});
  std::string record = plan->serialize();

  // Valid solver names that don't match what the rebuild chooses: the
  // integrity check fires.
  std::string tampered = record;
  const size_t pos = tampered.find("innermost-linear");
  ASSERT_NE(pos, std::string::npos) << record;
  tampered.replace(pos, std::string("innermost-linear").size(), "binary-search");
  EXPECT_THROW(CollapsePlan::deserialize(tampered), SpecError);

  EXPECT_THROW(CollapsePlan::deserialize(std::string("garbage here\n")), ParseError);
  EXPECT_THROW(CollapsePlan::deserialize(std::string()), ParseError);
  // A record cut off mid-nest is malformed, not silently accepted.
  EXPECT_THROW(CollapsePlan::deserialize(record.substr(0, record.size() / 2)), ParseError);
}

TEST(ServeSerialization, SnapshotWarmStartRoundTripsTheCache) {
  PlanCache a(16, 2);
  a.get(testutil::triangular_strict(), {{"N", 50}});
  a.get(testutil::triangular_strict(), {{"N", 60}});
  a.get(testutil::tetrahedral_fig6(), {{"N", 9}});

  std::stringstream snap;
  EXPECT_EQ(a.snapshot(snap), 3u);

  PlanCache b(16, 2);
  EXPECT_EQ(b.warm_start(snap), 3u);
  EXPECT_EQ(b.size(), 3u);
  const PlanCacheStats s = b.stats();
  EXPECT_EQ(s.misses, 3);
  // The two triangular domains share one symbolic build on replay.
  EXPECT_EQ(s.symbolic_hits, 1);

  // The restarted cache serves the replayed domains as full hits.
  EXPECT_EQ(b.get_with_outcome(testutil::triangular_strict(), {{"N", 50}}).outcome,
            GetOutcome::Hit);
  EXPECT_EQ(b.get_with_outcome(testutil::tetrahedral_fig6(), {{"N", 9}}).outcome,
            GetOutcome::Hit);

  // Warm-starting from a corrupt stream throws rather than half-loading.
  std::istringstream bad("nrcplan 99\n");
  PlanCache c(16, 2);
  EXPECT_THROW(c.warm_start(bad), ParseError);
}

}  // namespace
}  // namespace nrc
