// The future-based miss path, fault-injected through the build hook:
// distinct keys on one shard build concurrently (no head-of-line),
// same-key misses build exactly once, a throwing build propagates to
// every waiter and leaves no poisoned entry, the symbolic table evicts
// LRU (not wholesale), and get_with_outcome attributes each request.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "pipeline/plan_cache.hpp"
#include "support/error.hpp"

namespace nrc {
namespace {

TEST(PlanCacheAsync, DistinctKeysOnOneShardDoNotSerialize) {
  // One shard: both keys collide by construction.  The slow build is
  // held in flight at the hook; under the old build-under-the-shard-
  // lock design the fast get below would deadlock against it (and this
  // test would hang), with build futures it completes immediately.
  PlanCache cache(8, 1);
  const std::string slow_key =
      plan_cache_key(testutil::simplex_4d(), {{"N", 20}}, {});

  std::mutex mu;
  std::condition_variable cv;
  bool slow_entered = false, release_slow = false;
  cache.set_build_hook([&](const std::string& key) {
    if (key != slow_key) return;
    std::unique_lock<std::mutex> lock(mu);
    slow_entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release_slow; });
  });

  std::thread slow([&] { cache.get(testutil::simplex_4d(), {{"N", 20}}); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return slow_entered; });
  }

  // The slow build holds no shard lock while in flight.
  const auto fast = cache.get(testutil::triangular_strict(), {{"N", 50}});
  EXPECT_EQ(fast->eval().trip_count(), 49 * 50 / 2);
  EXPECT_EQ(cache.stats().misses, 1);  // the slow build hasn't finished

  {
    std::lock_guard<std::mutex> lock(mu);
    release_slow = true;
  }
  cv.notify_all();
  slow.join();
  cache.set_build_hook(nullptr);

  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheAsync, SameKeyConcurrentMissesBuildExactlyOnce) {
  PlanCache cache(8, 1);
  std::atomic<int> builds{0};
  cache.set_build_hook([&](const std::string&) {
    ++builds;
    // Widen the window so every other thread reaches the entry while
    // the build is still in flight (correctness does not depend on it:
    // the entry is installed before the build starts).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const CollapsePlan>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      got[static_cast<size_t>(t)] = cache.get(testutil::triangular_strict(), {{"N", 77}});
    });
  for (auto& th : threads) th.join();
  cache.set_build_hook(nullptr);

  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[0].get(), got[static_cast<size_t>(t)].get());
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, kThreads - 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheAsync, ThrowingBuildPropagatesToEveryWaiterAndUncaches) {
  PlanCache cache(8, 1);
  std::atomic<int> builds{0};
  cache.set_build_hook([&](const std::string&) {
    ++builds;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    throw SolveError("injected build failure");
  });

  constexpr int kThreads = 4;
  std::atomic<int> threw{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      try {
        cache.get(testutil::triangular_strict(), {{"N", 33}});
      } catch (const SolveError& e) {
        EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
        ++threw;
      }
    });
  for (auto& th : threads) th.join();

  // One build, every caller (builder and waiters alike) saw ITS
  // exception, and the poisoned entry is gone.
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(threw.load(), kThreads);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0);  // counters move on success only

  // No poisoned entry: the next request retries and succeeds.
  cache.set_build_hook(nullptr);
  const auto plan = cache.get(testutil::triangular_strict(), {{"N", 33}});
  EXPECT_EQ(plan->eval().trip_count(), 32 * 33 / 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(PlanCacheAsync, SymbolicTableEvictsLruNotWholesale) {
  // capacity 1 x 2 shards -> symbolic capacity 2.  Build three distinct
  // nests: the OLDEST symbolic artifact is evicted, the other two
  // survive (the pre-LRU behavior cleared the whole table).
  PlanCache cache(1, 2);
  const NestSpec a = testutil::triangular_strict();
  const NestSpec b = testutil::tetrahedral_fig6();
  const NestSpec c = testutil::simplex_4d();

  cache.get(a, {{"N", 10}});
  cache.get(b, {{"N", 10}});
  EXPECT_EQ(cache.stats().symbolic_evictions, 0);
  cache.get(c, {{"N", 10}});  // table holds [c, b]; a evicted
  EXPECT_EQ(cache.stats().symbolic_evictions, 1);

  // b survived: a new parameter set on it is a symbolic hit.
  EXPECT_EQ(cache.get_with_outcome(b, {{"N", 11}}).outcome, GetOutcome::SymbolicHit);
  // a was the LRU victim: a new parameter set rebuilds from scratch.
  EXPECT_EQ(cache.get_with_outcome(a, {{"N", 11}}).outcome, GetOutcome::ColdBuild);

  // The stats line renders the new counter.
  EXPECT_NE(cache.stats_line().find("symbolic)"), std::string::npos) << cache.stats_line();
}

TEST(PlanCacheAsync, GetWithOutcomeAttributesEveryRequest) {
  PlanCache cache(8, 2);
  const GetResult cold = cache.get_with_outcome(testutil::triangular_strict(), {{"N", 30}});
  EXPECT_EQ(cold.outcome, GetOutcome::ColdBuild);
  EXPECT_GT(cold.build_ns, 0);

  const GetResult hit = cache.get_with_outcome(testutil::triangular_strict(), {{"N", 30}});
  EXPECT_EQ(hit.outcome, GetOutcome::Hit);
  EXPECT_EQ(hit.plan.get(), cold.plan.get());

  const GetResult sym = cache.get_with_outcome(testutil::triangular_strict(), {{"N", 31}});
  EXPECT_EQ(sym.outcome, GetOutcome::SymbolicHit);
  EXPECT_GT(sym.build_ns, 0);

  // The thin wrapper serves the same shared instance.
  EXPECT_EQ(cache.get(testutil::triangular_strict(), {{"N", 30}}).get(), cold.plan.get());

  EXPECT_STREQ(get_outcome_name(GetOutcome::Hit), "hit");
  EXPECT_STREQ(get_outcome_name(GetOutcome::SymbolicHit), "symbolic");
  EXPECT_STREQ(get_outcome_name(GetOutcome::ColdBuild), "cold");
}

TEST(PlanCacheAsync, BindMemoServesEvictedRebuilds) {
  // One-entry cache: rebuilding an evicted key reuses the symbolic
  // artifact AND the memoized bind (FlatPoly layouts, guard proof) —
  // bind_reuses() counts the copy — while producing a distinct,
  // byte-identical plan.
  PlanCache cache(1, 1);
  const auto first = cache.get(testutil::triangular_strict(), {{"N", 40}});
  const size_t reuses_before = first->collapsed().bind_reuses();
  // Evict via a different parameterization of the SAME nest, so the
  // 1-entry symbolic table keeps the shared Collapsed alive.
  cache.get(testutil::triangular_strict(), {{"N", 41}});
  const auto got = cache.get_with_outcome(testutil::triangular_strict(), {{"N", 40}});
  const auto& rebuilt = got.plan;

  EXPECT_EQ(got.outcome, GetOutcome::SymbolicHit);
  EXPECT_NE(first.get(), rebuilt.get());
  EXPECT_GT(rebuilt->collapsed().bind_reuses(), reuses_before);

  ASSERT_EQ(first->eval().trip_count(), rebuilt->eval().trip_count());
  i64 a[8], b[8];
  const size_t d = static_cast<size_t>(first->eval().depth());
  for (i64 pc = 1; pc <= first->eval().trip_count(); ++pc) {
    first->eval().recover(pc, {a, d});
    rebuilt->eval().recover(pc, {b, d});
    for (size_t k = 0; k < d; ++k) ASSERT_EQ(a[k], b[k]) << "pc=" << pc;
  }
}

}  // namespace
}  // namespace nrc
