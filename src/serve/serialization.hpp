#pragma once
// Plan serialization: the persistence half of the serving layer.
//
// A CollapsePlan is a pure value of (nest, CollapseOptions, params) —
// everything else (ranking polynomials, level formulas, FlatPoly
// layouts, the f64-guard proof) is deterministically re-derivable.  So
// a plan serializes as a small self-delimiting text record of exactly
// those inputs, plus the per-level solver kinds bind() chose as an
// integrity check: deserialization re-runs the pipeline and rejects a
// record whose recorded lowering no longer matches (corruption, or a
// snapshot taken under a different RuntimeConfig).
//
//   nrcplan 1
//   opts build_closed_form=1 max_closed_degree=4
//   calib N=500                    (0+ lines; CollapseOptions::calibration)
//   param N=2000                   (0+ lines; the bound parameters)
//   solvers guarded-quadratic innermost-linear
//   nest
//   name plan                      (render_nest_program of the nest,
//   params N                        body empty — every nest the library
//   loop i = 0 .. N-1               accepts round-trips through the DSL)
//   loop j = i+1 .. N
//   body {
//   }
//   endplan
//
// Records concatenate into a stream: PlanCache::snapshot() writes one
// per cached plan and PlanCache::warm_start() replays them through the
// normal get() path, which lands them in the symbolic table and the
// Collapsed bind memo — a restarted server rebuilds its working set
// without paying a single cold symbolic build twice.
//
// The CollapsePlan::serialize/deserialize and PlanCache::snapshot/
// warm_start members declared in pipeline/ are implemented here.

#include <iosfwd>
#include <vector>

#include "core/collapse.hpp"
#include "polyhedral/nest.hpp"

namespace nrc::serve {

/// Format version written/accepted by this build.
inline constexpr int kPlanFormatVersion = 1;

/// One parsed serialization record — the rebuild inputs plus the
/// recorded lowering.
struct PlanRecord {
  NestSpec nest;
  ParamMap params;
  CollapseOptions opts;
  std::vector<LevelSolverKind> solvers;  ///< outermost first
};

/// Read the next record from `is`.  Returns false on a clean
/// end-of-stream (only blank lines remained); throws ParseError on a
/// malformed record.
bool read_plan_record(std::istream& is, PlanRecord& out);

/// Inverse of level_solver_kind_name(); throws ParseError on an
/// unknown name.
LevelSolverKind level_solver_kind_from_name(const std::string& name);

}  // namespace nrc::serve
