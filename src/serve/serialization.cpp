#include "serve/serialization.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "codegen/dsl_parser.hpp"
#include "pipeline/plan_cache.hpp"
#include "support/error.hpp"

namespace nrc {

namespace {

/// Parse "name=value" with an i64 value; throws ParseError.
std::pair<std::string, i64> parse_binding(const std::string& tok, const char* what) {
  const size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0)
    throw ParseError(std::string("plan record: malformed ") + what + " '" + tok + "'");
  try {
    size_t used = 0;
    const i64 v = std::stoll(tok.substr(eq + 1), &used);
    if (used != tok.size() - eq - 1) throw std::invalid_argument(tok);
    return {tok.substr(0, eq), v};
  } catch (const std::exception&) {
    throw ParseError(std::string("plan record: malformed ") + what + " '" + tok + "'");
  }
}

void write_record(std::ostream& os, const NestSpec& nest, const ParamMap& params,
                  const CollapseOptions& opts,
                  const std::vector<LevelSolverKind>& solvers) {
  os << "nrcplan " << serve::kPlanFormatVersion << "\n";
  os << "opts build_closed_form=" << (opts.build_closed_form ? 1 : 0)
     << " max_closed_degree=" << opts.max_closed_degree << "\n";
  for (const auto& [name, v] : opts.calibration) os << "calib " << name << "=" << v << "\n";
  for (const auto& [name, v] : params) os << "param " << name << "=" << v << "\n";
  os << "solvers";
  for (const LevelSolverKind k : solvers) os << " " << level_solver_kind_name(k);
  os << "\n";
  // The nest rides through the DSL renderer: every nest the library
  // accepts round-trips parse(render(nest)) == nest, and none of the
  // rendered lines can collide with the "endplan" terminator.
  NestProgram prog;
  prog.name = "plan";
  prog.nest = nest;
  os << "nest\n" << render_nest_program(prog) << "endplan\n";
}

}  // namespace

namespace serve {

LevelSolverKind level_solver_kind_from_name(const std::string& name) {
  for (const LevelSolverKind k :
       {LevelSolverKind::InnermostLinear, LevelSolverKind::ExactDivision,
        LevelSolverKind::Quadratic, LevelSolverKind::Cubic, LevelSolverKind::Quartic,
        LevelSolverKind::Program, LevelSolverKind::Interpreted, LevelSolverKind::Search})
    if (name == level_solver_kind_name(k)) return k;
  throw ParseError("plan record: unknown solver kind '" + name + "'");
}

bool read_plan_record(std::istream& is, PlanRecord& out) {
  std::string line;
  // Skip blank lines between records; clean EOF here means "no more".
  for (;;) {
    if (!std::getline(is, line)) return false;
    if (!line.empty() && line.find_first_not_of(" \t\r") != std::string::npos) break;
  }

  std::istringstream header(line);
  std::string kw;
  int version = 0;
  header >> kw >> version;
  if (kw != "nrcplan") throw ParseError("plan record: expected 'nrcplan', got '" + line + "'");
  if (version != kPlanFormatVersion)
    throw ParseError("plan record: unsupported version " + std::to_string(version));

  PlanRecord rec;
  bool saw_opts = false, saw_solvers = false, saw_nest = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    ls >> kw;
    if (kw.empty()) continue;
    if (kw == "opts") {
      std::string tok;
      while (ls >> tok) {
        const auto [name, v] = parse_binding(tok, "option");
        if (name == "build_closed_form")
          rec.opts.build_closed_form = v != 0;
        else if (name == "max_closed_degree")
          rec.opts.max_closed_degree = static_cast<int>(v);
        else
          throw ParseError("plan record: unknown option '" + name + "'");
      }
      saw_opts = true;
    } else if (kw == "calib") {
      std::string tok;
      ls >> tok;
      const auto [name, v] = parse_binding(tok, "calibration");
      rec.opts.calibration[name] = v;
    } else if (kw == "param") {
      std::string tok;
      ls >> tok;
      const auto [name, v] = parse_binding(tok, "parameter");
      rec.params[name] = v;
    } else if (kw == "solvers") {
      std::string tok;
      while (ls >> tok) rec.solvers.push_back(level_solver_kind_from_name(tok));
      saw_solvers = true;
    } else if (kw == "nest") {
      std::string dsl;
      bool terminated = false;
      while (std::getline(is, line)) {
        if (line == "endplan") {
          terminated = true;
          break;
        }
        dsl += line;
        dsl += '\n';
      }
      if (!terminated) throw ParseError("plan record: missing 'endplan' terminator");
      rec.nest = parse_nest_program(dsl).nest;
      saw_nest = true;
      break;  // the nest block ends the record
    } else {
      throw ParseError("plan record: unknown keyword '" + kw + "'");
    }
  }
  if (!saw_opts || !saw_solvers || !saw_nest)
    throw ParseError("plan record: truncated (opts/solvers/nest required)");
  out = std::move(rec);
  return true;
}

}  // namespace serve

// ------------------------------------------------ CollapsePlan persistence

void CollapsePlan::serialize(std::ostream& os) const {
  write_record(os, nest(), params(), options(), solver_kinds());
}

std::string CollapsePlan::serialize() const {
  std::ostringstream os;
  serialize(os);
  return os.str();
}

std::shared_ptr<const CollapsePlan> CollapsePlan::deserialize(std::istream& is) {
  serve::PlanRecord rec;
  if (!serve::read_plan_record(is, rec))
    throw ParseError("plan record: empty stream");
  auto plan = CollapsePlan::build(rec.nest, rec.params, rec.opts);
  if (plan->solver_kinds() != rec.solvers)
    throw SpecError(
        "plan record: recorded solver kinds do not match this build's lowering "
        "(corrupt record, or a snapshot taken under a different RuntimeConfig)");
  return plan;
}

std::shared_ptr<const CollapsePlan> CollapsePlan::deserialize(const std::string& s) {
  std::istringstream is(s);
  return deserialize(is);
}

// -------------------------------------------------- PlanCache persistence

size_t PlanCache::snapshot(std::ostream& os) const {
  size_t n = 0;
  for (const auto& plan : completed_plans()) {
    plan->serialize(os);
    ++n;
  }
  return n;
}

size_t PlanCache::warm_start(std::istream& is) {
  size_t n = 0;
  serve::PlanRecord rec;
  while (serve::read_plan_record(is, rec)) {
    const GetResult r = get_with_outcome(rec.nest, rec.params, rec.opts);
    if (r.plan->solver_kinds() != rec.solvers)
      throw SpecError(
          "warm_start: recorded solver kinds do not match this build's lowering");
    ++n;
    rec = serve::PlanRecord{};
  }
  return n;
}

}  // namespace nrc
