#pragma once
// nrcd line protocol: the transport-free half of the serving front end.
//
// The nrcd server (examples/nrcd.cpp) speaks a newline-delimited text
// protocol; everything except the sockets lives here so the protocol is
// unit-testable (tests/pipeline/serve_test.cpp) and the serving hammer
// can drive the exact request path in-process.
//
// Request framing:
//
//   <verb> [name=value,name=value,...]\n     header: verb + parameters
//   <nest text: C-for or DSL lines>          (verbs that take a nest)
//   .\n                                      lone-dot terminator
//
// Verbs:
//   describe  nest+params -> the plan's describe() report (includes
//             the auto-selected schedule and its cost-estimate line —
//             table-driven prediction or the heuristic fallback note)
//   emit      nest+params -> the collapsed nest as OpenMP C (the
//             auto-selected schedule drives the emission style)
//   run       nest+params -> execute through the dispatcher, reply with
//             an order-insensitive checksum and the trip count.  When a
//             calibrated cost table recommends the JIT (amortized
//             compile + per-iteration beats every library schedule),
//             execution routes through the compiled kernel
//             transparently — same checksum, same framing.
//   jitrun    nest+params -> execute through the JIT-compiled
//             specialized kernel (jit/jit_kernel.hpp) via the
//             process-global KernelCache; replies with the run verb's
//             checksum/trip lines plus a "jit <status>" line ("jit"
//             when a compiled kernel ran, "fallback: <reason>" when
//             the library dispatcher served the request — no
//             toolchain, failed compile, error-severity certificate)
//   lint      nest+params -> the static analyzer's certificate block
//             (analysis/nest_analyzer.hpp): per-check verdicts plus
//             structured diagnostics.  Never an err response for nests
//             that parse: bind failures, overflowing trips and unbound
//             parameters come back as NRC-* diagnostics, and what run
//             would refuse under ServeLimits is reported as NRC-W005.
//             Bypasses the plan cache (a failing build never cycles an
//             entry).
//   stats     (no nest section) -> the plan cache's stats_line() plus
//             the process-global kernel cache's jit line (hits, misses,
//             compiles, disk hits, fallbacks, summed compile ns)
//   quit      (no nest section) -> acknowledged; the server closes the
//             connection
//
// The nest text is auto-detected: lines starting with "for" or
// "#pragma" parse as the C-for surface syntax, anything else as the
// nest DSL.  All plans flow through one PlanCache, so repeated domains
// are pure hits and every response header carries the outcome
// attribution from PlanCache::get_with_outcome.
//
// Response framing (payload is length-prefixed so clients never guess):
//
//   ok <payload-bytes> outcome=<hit|symbolic|cold|-> build_ns=<n>\n
//   <payload-bytes of payload>
//   err <payload-bytes>\n
//   <payload-bytes of error message>

#include <iosfwd>
#include <string>

#include "codegen/dsl_parser.hpp"
#include "pipeline/plan_cache.hpp"

namespace nrc::serve {

/// Server-side resource limits.
struct ServeLimits {
  /// run refuses domains with more iterations than this (a remote
  /// client must not be able to buy unbounded compute with three lines
  /// of text).  describe/emit have no such limit — they are O(depth).
  i64 max_run_trip = 50'000'000;
};

struct Request {
  std::string verb;
  ParamMap params;
  std::string nest_text;  ///< empty for stats/quit
};

struct Response {
  bool ok = true;
  std::string payload;  ///< reply body; the error message when !ok
  std::string outcome = "-";
  i64 build_ns = 0;
};

/// True for verbs whose request carries a nest section ("describe",
/// "emit", "run", "jitrun", "lint"); stats/quit are header-only.
bool verb_has_nest(const std::string& verb);

/// Read one request.  Returns false on a clean end-of-stream before a
/// header; throws ParseError on a malformed header or a nest section
/// missing its "." terminator.
bool read_request(std::istream& is, Request& out);

/// Render a request in wire format (client side; used by the tests and
/// the nrcd self-test client).
std::string format_request(const Request& req);

/// Render a response in wire format.
std::string format_response(const Response& r);

/// Read one response (client side).  Returns false on end-of-stream;
/// throws ParseError on malformed framing.
bool read_response(std::istream& is, Response& out);

/// Auto-detect and parse the nest text (C-for vs DSL); throws
/// ParseError.
NestProgram parse_nest_text(const std::string& text);

/// Serve one request against `cache`.  Never throws: every nrc::Error
/// (parse failures, empty domains, refused limits) becomes an
/// ok=false response with the message as payload.
Response handle_request(PlanCache& cache, const Request& req,
                        const ServeLimits& limits = {});

}  // namespace nrc::serve
