#include "serve/protocol.hpp"

#include <istream>
#include <sstream>

#include "analysis/nest_analyzer.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/c_for_parser.hpp"
#include "jit/kernel_cache.hpp"
#include "support/error.hpp"

namespace nrc::serve {

namespace {

std::string strip_ws(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Parse the header's "name=value,name=value" parameter list.
ParamMap parse_params(const std::string& text) {
  ParamMap params;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find_first_of(",;", pos);
    if (end == std::string::npos) end = text.size();
    const std::string tok = strip_ws(text.substr(pos, end - pos));
    pos = end + 1;
    if (tok.empty()) continue;
    const size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      throw ParseError("request: malformed parameter '" + tok + "'");
    try {
      size_t used = 0;
      const i64 v = std::stoll(tok.substr(eq + 1), &used);
      if (used != tok.size() - eq - 1) throw std::invalid_argument(tok);
      params[strip_ws(tok.substr(0, eq))] = v;
    } catch (const std::exception&) {
      throw ParseError("request: malformed parameter '" + tok + "'");
    }
  }
  return params;
}

/// Order-insensitive checksum over recovered tuples, so the parallel
/// schemes all produce the same value: each tuple mixes to one word
/// (splitmix-style) and the words sum mod 2^64.
u64 tuple_mix(std::span<const i64> idx) {
  u64 h = 0x9e3779b97f4a7c15ULL;
  for (const i64 v : idx) {
    u64 x = static_cast<u64>(v) + 0x9e3779b97f4a7c15ULL + h;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    h = x ^ (x >> 31);
  }
  return h;
}

}  // namespace

bool verb_has_nest(const std::string& verb) {
  return verb == "describe" || verb == "emit" || verb == "run" ||
         verb == "jitrun" || verb == "lint";
}

bool read_request(std::istream& is, Request& out) {
  std::string line;
  // Skip blank lines between requests; EOF here is a clean end.
  for (;;) {
    if (!std::getline(is, line)) return false;
    if (!strip_ws(line).empty()) break;
  }

  Request req;
  std::istringstream header(strip_ws(line));
  header >> req.verb;
  std::string rest;
  std::getline(header, rest);
  req.params = parse_params(rest);

  if (verb_has_nest(req.verb)) {
    bool terminated = false;
    while (std::getline(is, line)) {
      if (strip_ws(line) == ".") {
        terminated = true;
        break;
      }
      req.nest_text += line;
      req.nest_text += '\n';
    }
    if (!terminated)
      throw ParseError("request: nest section missing its '.' terminator");
  }
  out = std::move(req);
  return true;
}

std::string format_request(const Request& req) {
  std::string s = req.verb;
  bool first = true;
  for (const auto& [name, v] : req.params) {
    s += first ? " " : ",";
    s += name + "=" + std::to_string(v);
    first = false;
  }
  s += "\n";
  if (verb_has_nest(req.verb)) {
    s += req.nest_text;
    if (!req.nest_text.empty() && req.nest_text.back() != '\n') s += '\n';
    s += ".\n";
  }
  return s;
}

std::string format_response(const Response& r) {
  std::string s;
  if (r.ok) {
    s = "ok " + std::to_string(r.payload.size()) + " outcome=" + r.outcome +
        " build_ns=" + std::to_string(r.build_ns) + "\n";
  } else {
    s = "err " + std::to_string(r.payload.size()) + "\n";
  }
  s += r.payload;
  return s;
}

bool read_response(std::istream& is, Response& out) {
  std::string line;
  if (!std::getline(is, line)) return false;
  std::istringstream header(line);
  std::string status;
  size_t nbytes = 0;
  header >> status >> nbytes;
  if (status != "ok" && status != "err")
    throw ParseError("response: malformed status line '" + line + "'");
  Response r;
  r.ok = status == "ok";
  std::string tok;
  while (header >> tok) {
    if (tok.rfind("outcome=", 0) == 0) r.outcome = tok.substr(8);
    if (tok.rfind("build_ns=", 0) == 0) r.build_ns = std::stoll(tok.substr(9));
  }
  r.payload.resize(nbytes);
  is.read(r.payload.data(), static_cast<std::streamsize>(nbytes));
  if (static_cast<size_t>(is.gcount()) != nbytes)
    throw ParseError("response: truncated payload");
  out = std::move(r);
  return true;
}

NestProgram parse_nest_text(const std::string& text) {
  // First non-blank line decides the surface syntax.
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::string s = strip_ws(line);
    if (s.empty()) continue;
    if (s.rfind("for", 0) == 0 || s.rfind("#pragma", 0) == 0)
      return parse_c_for_nest(text);
    break;
  }
  return parse_nest_program(text);
}

Response handle_request(PlanCache& cache, const Request& req, const ServeLimits& limits) {
  Response resp;
  try {
    if (req.verb == "stats") {
      resp.payload = cache.stats_line() + "\n" + kernel_cache().stats_line() + "\n";
      return resp;
    }
    if (req.verb == "quit") {
      resp.payload = "bye\n";
      return resp;
    }
    if (!verb_has_nest(req.verb))
      throw ParseError("request: unknown verb '" + req.verb + "'");

    const NestProgram prog = parse_nest_text(req.nest_text);
    const NestSpec nest = prog.collapsed_nest();

    if (req.verb == "lint") {
      // The lint verb bypasses the cache on purpose: analyze_nest never
      // throws, so broken nests (empty domains, overflowing trips,
      // unbound parameters) still get their diagnostics instead of an
      // err response — and a failing build never cycles a cache entry.
      NestCertificate cert = analyze_nest(nest, req.params);
      // Serving limits are analyzer diagnostics here: what run would
      // refuse, lint reports as NRC-W005 with the same numbers.
      if (cert.bind_ok && cert.total_trip > limits.max_run_trip) {
        cert.diagnostics.push_back(Diagnostic{
            "NRC-W005", LintSeverity::Warn, -1,
            "run would be refused: domain has " + std::to_string(cert.total_trip) +
                " iterations, over the serving limit of " +
                std::to_string(limits.max_run_trip),
            "describe/emit stay available; shrink the domain to run remotely"});
      }
      resp.payload = cert.str();
      return resp;
    }

    GetResult got = cache.get_with_outcome(nest, req.params);
    resp.outcome = get_outcome_name(got.outcome);
    resp.build_ns = got.build_ns;
    const CollapsePlan& plan = *got.plan;

    if (req.verb == "describe") {
      resp.payload = plan.describe();
    } else if (req.verb == "emit") {
      NestProgram emittable = prog;
      if (emittable.body.empty()) emittable.body = "/* body */;";
      EmitOptions emit;
      emit.schedule = plan.auto_schedule();
      resp.payload = emit_collapsed_function(emittable, plan.collapsed(), emit);
    } else {  // run / jitrun
      if (plan.eval().trip_count() > limits.max_run_trip)
        throw SpecError(req.verb + ": domain has " +
                        std::to_string(plan.eval().trip_count()) +
                        " iterations, over the serving limit of " +
                        std::to_string(limits.max_run_trip) +
                        " [NRC-W005 serve-limit; the lint verb reports this "
                        "without refusing]");
      const Schedule::Choice choice = Schedule::auto_select_with_cost(plan.eval());
      u64 checksum = 0;
      auto body = [&](std::span<const i64> idx) {
        const u64 mix = tuple_mix(idx);
#pragma omp atomic
        checksum += mix;
      };
      std::string jit_line;
      if (req.verb == "jitrun" || choice.jit_recommended) {
        // The explicit jitrun verb always takes the kernel path; the
        // plain run verb takes it only when the calibrated cost table
        // says the amortized compile wins.  Either way the kernel's
        // own fallback ladder guarantees an answer.
        auto kernel = plan.jit(choice.schedule);
        kernel->run(body);
        if (req.verb == "jitrun") jit_line = "jit " + kernel->status() + "\n";
      } else {
        nrc::run(plan, choice.schedule, body);
      }
      resp.payload = "checksum " + std::to_string(checksum) + "\ntrip " +
                     std::to_string(plan.eval().trip_count()) + "\n" + jit_line;
    }
    return resp;
  } catch (const Error& e) {
    return Response{false, std::string(e.what()) + "\n", "-", 0};
  }
}

}  // namespace nrc::serve
