#pragma once
// simd_abi — compile-time SIMD target selection for the recovery runtime.
//
// The lane-batched solvers (CollapsedEval::recover4/recover8 and
// friends), the RecoveryProgram lane-wide bytecode evaluator and the
// lane-strided block fills all express their vector arithmetic against
// this tiny shim instead of raw intrinsics, so exactly one place
// decides the target:
//
//   * AVX-512 when the translation unit is compiled with -mavx512f
//     (the CMake default where the host CPU supports it) and
//     NRC_NO_AVX512 is not defined: 8 x i64 / 8 x double per 512-bit
//     vector, with masked tail stores (__mmask8) so non-lane-multiple
//     fills never fall into scalar remainder loops,
//   * AVX2 when compiled with -mavx2 and NRC_NO_AVX2 is not defined
//     (disabling AVX2 also disables the AVX-512 leg): the 4-lane vf64
//     type is native and the 8-lane vf64x8 type runs as two 256-bit
//     halves; fill tails run masked through _mm256_maskstore_epi64,
//   * a portable scalar fallback otherwise — identical lane semantics,
//     so every caller is written once and the CI scalar leg
//     (-DNRC_NO_AVX2=ON) exercises the same code paths.
//
// Two lane widths coexist: the historical 4-lane vf64 (one 256-bit
// vector) and the 8-lane vf64x8 (one 512-bit vector, or an emulation).
// kGroupLanes names the width the batched entry points prefer on this
// target — 8 on the AVX-512 leg, 4 elsewhere — but BOTH widths work on
// EVERY target, so vlen=8 schedules and the recover8 engine stay
// testable (and fuzzable) on scalar and AVX2-only builds.
//
// Floating lanes are double, not the long double the scalar engine
// uses; every consumer runs behind the exact integer correction guard,
// which absorbs the precision difference (a worse estimate can only
// cost extra guard steps or a search fallback, never a wrong tuple).
// The same licence covers the polynomial vcos/vatan2 kernels and the
// Halley-iterated vcbrt at the bottom of this header (~1e-10 absolute
// error; see their comments), which replace the last per-lane libm
// calls in the lane solvers.

#include <cmath>
#include <cstdint>
#include <cstring>

#include "core/runtime_config.hpp"  // vector_trig toggle lives there now
#include "support/int128.hpp"       // i64

#if defined(__AVX2__) && !defined(NRC_NO_AVX2)
#define NRC_SIMD_AVX2 1
#include <immintrin.h>
#else
#define NRC_SIMD_AVX2 0
#endif

// The AVX-512 leg layers on top of the AVX2 leg (vf64 stays a native
// 256-bit vector there), so NRC_NO_AVX2 implies the scalar fallback for
// both widths.
#if defined(__AVX512F__) && !defined(NRC_NO_AVX512) && NRC_SIMD_AVX2
#define NRC_SIMD_AVX512 1
#else
#define NRC_SIMD_AVX512 0
#endif

namespace nrc::simd {

/// Lanes per vf64 vector (the historical 4-wide batched paths).
inline constexpr int kLanes = 4;

/// Lanes per vf64x8 vector (native on AVX-512, emulated elsewhere).
inline constexpr int kWideLanes = 8;

/// The lane-group width the batched recovery entry points prefer on
/// this target: 8 where vf64x8 is a native 512-bit vector, 4 elsewhere
/// (an emulated 8-lane group would just serialize two 4-lane solves).
inline constexpr int kGroupLanes = NRC_SIMD_AVX512 ? kWideLanes : kLanes;

/// Compile-time ABI tag ("avx512" / "avx2" / "scalar").
inline constexpr const char* abi_name() {
#if NRC_SIMD_AVX512
  return "avx512";
#elif NRC_SIMD_AVX2
  return "avx2";
#else
  return "scalar";
#endif
}

/// The ABI leg actually usable at run time: the compiled leg
/// cross-checked against cpuid, so a binary compiled for an ISA its
/// host lacks reports the widest leg the CPU can execute instead of
/// the compile-time macro.  Recorded in BENCH_recovery and surfaced by
/// Collapsed::describe().
inline const char* runtime_abi() {
#if defined(__GNUC__) || defined(__clang__)
#if NRC_SIMD_AVX512
  if (__builtin_cpu_supports("avx512f")) return "avx512";
  return __builtin_cpu_supports("avx2") ? "avx2" : "scalar";
#elif NRC_SIMD_AVX2
  return __builtin_cpu_supports("avx2") ? "avx2" : "scalar";
#else
  return "scalar";
#endif
#else
  return abi_name();
#endif
}

// ------------------------------------------------------------ f64 lanes

/// Four double lanes.  Only the operations the recovery solvers need.
struct vf64 {
#if NRC_SIMD_AVX2
  __m256d v;
#else
  double v[kLanes];
#endif
};

/// Eight double lanes: one 512-bit vector on the AVX-512 leg, two
/// 256-bit halves on AVX2, a plain array on the scalar leg — identical
/// lane semantics everywhere so the 8-lane engine runs on every target.
struct vf64x8 {
#if NRC_SIMD_AVX512
  __m512d v;
#elif NRC_SIMD_AVX2
  __m256d v[2];
#else
  double v[kWideLanes];
#endif
};

/// Comparison result for vf64x8 (a real predicate register on AVX-512,
/// a blend-style lane mask elsewhere).  vf64 comparisons keep using a
/// vf64 as their mask, as they always have.
struct vmask8 {
#if NRC_SIMD_AVX512
  __mmask8 m;
#elif NRC_SIMD_AVX2
  __m256d m[2];
#else
  double m[kWideLanes];
#endif
};

#if NRC_SIMD_AVX2

inline vf64 set1(double x) { return {_mm256_set1_pd(x)}; }
inline vf64 set(double a, double b, double c, double d) {
  return {_mm256_setr_pd(a, b, c, d)};
}
inline vf64 add(vf64 a, vf64 b) { return {_mm256_add_pd(a.v, b.v)}; }
inline vf64 sub(vf64 a, vf64 b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline vf64 mul(vf64 a, vf64 b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline vf64 div(vf64 a, vf64 b) { return {_mm256_div_pd(a.v, b.v)}; }
inline vf64 sqrt(vf64 a) { return {_mm256_sqrt_pd(a.v)}; }
inline vf64 neg(vf64 a) { return {_mm256_sub_pd(_mm256_setzero_pd(), a.v)}; }
inline vf64 floor(vf64 a) { return {_mm256_floor_pd(a.v)}; }
inline void store(double* p, vf64 a) { _mm256_storeu_pd(p, a.v); }
/// Lane mask a >= b (ordered: NaN lanes compare false).  Only meaningful
/// as the first argument of select().
inline vf64 cmp_ge(vf64 a, vf64 b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
/// Per lane: mask ? a : b.
inline vf64 select(vf64 mask, vf64 a, vf64 b) {
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
}
/// True when any lane of a comparison mask is set.
inline bool any(vf64 mask) { return _mm256_movemask_pd(mask.v) != 0; }

#else

inline vf64 set1(double x) { return {{x, x, x, x}}; }
inline vf64 set(double a, double b, double c, double d) { return {{a, b, c, d}}; }
inline vf64 add(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline vf64 sub(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] - b.v[l];
  return r;
}
inline vf64 mul(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] * b.v[l];
  return r;
}
inline vf64 div(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] / b.v[l];
  return r;
}
inline vf64 sqrt(vf64 a) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = std::sqrt(a.v[l]);
  return r;
}
inline vf64 neg(vf64 a) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = -a.v[l];
  return r;
}
inline vf64 floor(vf64 a) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = std::floor(a.v[l]);
  return r;
}
inline void store(double* p, vf64 a) {
  for (int l = 0; l < kLanes; ++l) p[l] = a.v[l];
}
/// Lane mask a >= b (ordered: NaN lanes compare false).  Only meaningful
/// as the first argument of select().
inline vf64 cmp_ge(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] >= b.v[l] ? 1.0 : 0.0;
  return r;
}
/// Per lane: mask ? a : b.
inline vf64 select(vf64 mask, vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = mask.v[l] != 0.0 ? a.v[l] : b.v[l];
  return r;
}
/// True when any lane of a comparison mask is set.
inline bool any(vf64 mask) {
  for (int l = 0; l < kLanes; ++l)
    if (mask.v[l] != 0.0) return true;
  return false;
}

#endif

// --------------------------------------------------------- vf64x8 ops

#if NRC_SIMD_AVX512

inline vf64x8 set1x8(double x) { return {_mm512_set1_pd(x)}; }
inline vf64x8 add(vf64x8 a, vf64x8 b) { return {_mm512_add_pd(a.v, b.v)}; }
inline vf64x8 sub(vf64x8 a, vf64x8 b) { return {_mm512_sub_pd(a.v, b.v)}; }
inline vf64x8 mul(vf64x8 a, vf64x8 b) { return {_mm512_mul_pd(a.v, b.v)}; }
inline vf64x8 div(vf64x8 a, vf64x8 b) { return {_mm512_div_pd(a.v, b.v)}; }
inline vf64x8 sqrt(vf64x8 a) { return {_mm512_sqrt_pd(a.v)}; }
inline vf64x8 neg(vf64x8 a) { return {_mm512_sub_pd(_mm512_setzero_pd(), a.v)}; }
inline vf64x8 floor(vf64x8 a) {
  return {_mm512_roundscale_pd(a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)};
}
inline void store(double* p, vf64x8 a) { _mm512_storeu_pd(p, a.v); }
inline vmask8 cmp_ge(vf64x8 a, vf64x8 b) {
  return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ)};
}
inline vf64x8 select(vmask8 mask, vf64x8 a, vf64x8 b) {
  return {_mm512_mask_blend_pd(mask.m, b.v, a.v)};
}
inline bool any(vmask8 mask) { return mask.m != 0; }

#elif NRC_SIMD_AVX2

inline vf64x8 set1x8(double x) {
  return {{_mm256_set1_pd(x), _mm256_set1_pd(x)}};
}
inline vf64x8 add(vf64x8 a, vf64x8 b) {
  return {{_mm256_add_pd(a.v[0], b.v[0]), _mm256_add_pd(a.v[1], b.v[1])}};
}
inline vf64x8 sub(vf64x8 a, vf64x8 b) {
  return {{_mm256_sub_pd(a.v[0], b.v[0]), _mm256_sub_pd(a.v[1], b.v[1])}};
}
inline vf64x8 mul(vf64x8 a, vf64x8 b) {
  return {{_mm256_mul_pd(a.v[0], b.v[0]), _mm256_mul_pd(a.v[1], b.v[1])}};
}
inline vf64x8 div(vf64x8 a, vf64x8 b) {
  return {{_mm256_div_pd(a.v[0], b.v[0]), _mm256_div_pd(a.v[1], b.v[1])}};
}
inline vf64x8 sqrt(vf64x8 a) {
  return {{_mm256_sqrt_pd(a.v[0]), _mm256_sqrt_pd(a.v[1])}};
}
inline vf64x8 neg(vf64x8 a) {
  const __m256d z = _mm256_setzero_pd();
  return {{_mm256_sub_pd(z, a.v[0]), _mm256_sub_pd(z, a.v[1])}};
}
inline vf64x8 floor(vf64x8 a) {
  return {{_mm256_floor_pd(a.v[0]), _mm256_floor_pd(a.v[1])}};
}
inline void store(double* p, vf64x8 a) {
  _mm256_storeu_pd(p, a.v[0]);
  _mm256_storeu_pd(p + 4, a.v[1]);
}
inline vmask8 cmp_ge(vf64x8 a, vf64x8 b) {
  return {{_mm256_cmp_pd(a.v[0], b.v[0], _CMP_GE_OQ),
           _mm256_cmp_pd(a.v[1], b.v[1], _CMP_GE_OQ)}};
}
inline vf64x8 select(vmask8 mask, vf64x8 a, vf64x8 b) {
  return {{_mm256_blendv_pd(b.v[0], a.v[0], mask.m[0]),
           _mm256_blendv_pd(b.v[1], a.v[1], mask.m[1])}};
}
inline bool any(vmask8 mask) {
  return (_mm256_movemask_pd(mask.m[0]) | _mm256_movemask_pd(mask.m[1])) != 0;
}

#else

inline vf64x8 set1x8(double x) { return {{x, x, x, x, x, x, x, x}}; }
inline vf64x8 add(vf64x8 a, vf64x8 b) {
  vf64x8 r;
  for (int l = 0; l < kWideLanes; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline vf64x8 sub(vf64x8 a, vf64x8 b) {
  vf64x8 r;
  for (int l = 0; l < kWideLanes; ++l) r.v[l] = a.v[l] - b.v[l];
  return r;
}
inline vf64x8 mul(vf64x8 a, vf64x8 b) {
  vf64x8 r;
  for (int l = 0; l < kWideLanes; ++l) r.v[l] = a.v[l] * b.v[l];
  return r;
}
inline vf64x8 div(vf64x8 a, vf64x8 b) {
  vf64x8 r;
  for (int l = 0; l < kWideLanes; ++l) r.v[l] = a.v[l] / b.v[l];
  return r;
}
inline vf64x8 sqrt(vf64x8 a) {
  vf64x8 r;
  for (int l = 0; l < kWideLanes; ++l) r.v[l] = std::sqrt(a.v[l]);
  return r;
}
inline vf64x8 neg(vf64x8 a) {
  vf64x8 r;
  for (int l = 0; l < kWideLanes; ++l) r.v[l] = -a.v[l];
  return r;
}
inline vf64x8 floor(vf64x8 a) {
  vf64x8 r;
  for (int l = 0; l < kWideLanes; ++l) r.v[l] = std::floor(a.v[l]);
  return r;
}
inline void store(double* p, vf64x8 a) {
  for (int l = 0; l < kWideLanes; ++l) p[l] = a.v[l];
}
inline vmask8 cmp_ge(vf64x8 a, vf64x8 b) {
  vmask8 r;
  for (int l = 0; l < kWideLanes; ++l) r.m[l] = a.v[l] >= b.v[l] ? 1.0 : 0.0;
  return r;
}
inline vf64x8 select(vmask8 mask, vf64x8 a, vf64x8 b) {
  vf64x8 r;
  for (int l = 0; l < kWideLanes; ++l) r.v[l] = mask.m[l] != 0.0 ? a.v[l] : b.v[l];
  return r;
}
inline bool any(vmask8 mask) {
  for (int l = 0; l < kWideLanes; ++l)
    if (mask.m[l] != 0.0) return true;
  return false;
}

#endif

/// Lane extraction (all ABIs): store-and-load keeps it branch-free.
inline double lane(vf64 a, int l) {
  double tmp[kLanes];
  store(tmp, a);
  return tmp[l];
}
inline double lane(vf64x8 a, int l) {
  double tmp[kWideLanes];
  store(tmp, a);
  return tmp[l];
}

// ------------------------------------------- width-generic entry points
//
// The lane engines are templated on the lane count W; these aliases map
// W onto the vector/mask types and provide the two primitives that
// cannot be plain overloads (splat and load have identical scalar
// signatures for both widths).

template <int W>
struct batch_types;
template <>
struct batch_types<4> {
  using vec = vf64;
  using mask = vf64;
};
template <>
struct batch_types<8> {
  using vec = vf64x8;
  using mask = vmask8;
};
template <int W>
using batch = typename batch_types<W>::vec;

template <int W>
inline batch<W> splat(double x) {
  if constexpr (W == 4)
    return set1(x);
  else
    return set1x8(x);
}

/// Unaligned load of W consecutive doubles.
template <int W>
inline batch<W> load(const double* p) {
  if constexpr (W == 4) {
#if NRC_SIMD_AVX2
    return {_mm256_loadu_pd(p)};
#else
    return {{p[0], p[1], p[2], p[3]}};
#endif
  } else {
#if NRC_SIMD_AVX512
    return {_mm512_loadu_pd(p)};
#elif NRC_SIMD_AVX2
    return {{_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)}};
#else
    vf64x8 r;
    for (int l = 0; l < kWideLanes; ++l) r.v[l] = p[l];
    return r;
#endif
  }
}

/// Type-deduced traits for code templated on the vector type instead of
/// the width (the trig kernels below).
template <class V>
struct vtraits;
template <>
struct vtraits<vf64> {
  static constexpr int lanes = kLanes;
  static vf64 splat(double x) { return set1(x); }
};
template <>
struct vtraits<vf64x8> {
  static constexpr int lanes = kWideLanes;
  static vf64x8 splat(double x) { return set1x8(x); }
};

// Width-generic helpers built from the overloaded primitives.
template <class V>
inline V vmin(V a, V b) {
  return select(cmp_ge(a, b), b, a);
}
template <class V>
inline V vmax(V a, V b) {
  return select(cmp_ge(a, b), a, b);
}
template <class V>
inline V vabs(V a) {
  return select(cmp_ge(a, vtraits<V>::splat(0.0)), a, neg(a));
}

// ----------------------------------------------- lane-strided i64 fills

#if NRC_SIMD_AVX2 && !NRC_SIMD_AVX512
/// AVX2 tail mask: lanes 0..rem-1 all-ones (rem in [1, 3]), built as
/// rem > {0,1,2,3} so _mm256_maskstore_epi64 writes exactly rem lanes.
inline __m256i tail_mask4(i64 rem) {
  return _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(rem)),
                            _mm256_setr_epi64x(0, 1, 2, 3));
}
#endif

/// dst[0..n) = value.  The broadcast half of the structure-of-arrays
/// block fill: one store per column per row segment.  Tails are masked
/// stores on both vector ABIs (never a scalar remainder loop).
inline void fill_broadcast(i64* dst, i64 n, i64 value) {
#if NRC_SIMD_AVX512
  const __m512i v = _mm512_set1_epi64(static_cast<long long>(value));
  i64 i = 0;
  for (; i + kWideLanes <= n; i += kWideLanes)
    _mm512_storeu_si512(static_cast<void*>(dst + i), v);
  if (i < n)
    _mm512_mask_storeu_epi64(static_cast<void*>(dst + i),
                             static_cast<__mmask8>((1u << (n - i)) - 1u), v);
#elif NRC_SIMD_AVX2
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  i64 i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  if (i < n)
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(dst + i), tail_mask4(n - i), v);
#else
  for (i64 i = 0; i < n; ++i) dst[i] = value;
#endif
}

/// dst[0..n) = start, start+1, ...  The innermost column of the
/// structure-of-arrays block fill.  Masked tails, as above.
inline void fill_iota(i64* dst, i64 n, i64 start) {
#if NRC_SIMD_AVX512
  __m512i v = _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(start)),
                               _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0));
  const __m512i step = _mm512_set1_epi64(kWideLanes);
  i64 i = 0;
  for (; i + kWideLanes <= n; i += kWideLanes) {
    _mm512_storeu_si512(static_cast<void*>(dst + i), v);
    v = _mm512_add_epi64(v, step);
  }
  if (i < n)
    _mm512_mask_storeu_epi64(static_cast<void*>(dst + i),
                             static_cast<__mmask8>((1u << (n - i)) - 1u), v);
#elif NRC_SIMD_AVX2
  __m256i v = _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(start)),
                               _mm256_setr_epi64x(0, 1, 2, 3));
  const __m256i step = _mm256_set1_epi64x(kLanes);
  i64 i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    v = _mm256_add_epi64(v, step);
  }
  if (i < n)
    _mm256_maskstore_epi64(reinterpret_cast<long long*>(dst + i), tail_mask4(n - i), v);
#else
  for (i64 i = 0; i < n; ++i) dst[i] = start + i;
#endif
}

// ------------------------------------------------- polynomial trig kernels
//
// The Cardano/Viete branch value — the last per-lane libm holdout in
// the lane solvers (cubic levels and the Ferrari resolvent) — needs one
// atan2 and one cos per lane.  These width-generic kernels evaluate
// both across all lanes at once with short range-reduced polynomials:
//
//   vcos:   Cody–Waite reduction by multiples of 2*pi (the 3-part pi/4
//           split of the classic sincos kernels, scaled by 8) to
//           r in [-pi, pi], then a degree-20 even Taylor/minimax
//           polynomial — |error| < 8e-11 over the reduced interval.
//   vatan2: min/max quotient reduction to [0, 1], a fold at tan(pi/8)
//           via atan(z) = pi/4 + atan((z-1)/(z+1)) to [-0.4142, 0.4142],
//           a degree-19 odd polynomial, then branch-free quadrant
//           fixups — |error| < 5e-10.
//
// ~1e-9 absolute error is sufficient by the guard argument at the top
// of this header: estimates sit behind the exact integer correction
// guard, so trig error can only move an estimate by a fraction of an
// index step, never corrupt a recovered tuple — and the accuracy tests
// (tests/runtime/simd_abi_test.cpp) plus the zero-new-demotions floor
// on the kernel nests pin that margin.  set_vector_trig(false) routes
// the lane Cardano back through per-lane libm for equivalence tests.

/// Process-wide switch between the polynomial lane trig and the
/// per-lane libm reference path (tests/ablation; not thread-safe, flip
/// it only around single-threaded test sections).
///
/// DEPRECATED: the flag now lives in nrc::RuntimeConfig (vector_trig);
/// prefer nrc::runtime_config().vector_trig / ScopedRuntimeConfig.
/// These forwarders remain for source compatibility.
inline bool& vector_trig_flag() { return runtime_config().vector_trig; }
inline void set_vector_trig(bool on) { vector_trig_flag() = on; }  // DEPRECATED: see above
inline bool vector_trig_enabled() { return vector_trig_flag(); }

/// Lane-wide cos via 2*pi Cody–Waite reduction + even polynomial.
template <class V>
inline V vcos(V x) {
  using T = vtraits<V>;
  // n = round(x / 2pi); r = x - n*2pi accumulated against the 3-part
  // split (each part exact in the head bits of double), r in [-pi, pi].
  const V n = floor(add(mul(x, T::splat(0.15915494309189533577)), T::splat(0.5)));
  V r = sub(x, mul(n, T::splat(6.28318500518798828125)));        // 8 * DP1
  r = sub(r, mul(n, T::splat(3.0199157663446332e-07)));          // 8 * DP2
  r = sub(r, mul(n, T::splat(2.1561211404432476e-14)));          // 8 * DP3
  const V u = mul(r, r);
  // cos(r) = sum (-1)^k u^k / (2k)!, truncated after u^10: the first
  // omitted term is pi^22/22! < 8e-11 on the reduced interval.
  V p = T::splat(4.1103176233121648585e-19);
  p = add(mul(p, u), T::splat(-1.5619206968586226462e-16));
  p = add(mul(p, u), T::splat(4.7794773323873852974e-14));
  p = add(mul(p, u), T::splat(-1.1470745597729724714e-11));
  p = add(mul(p, u), T::splat(2.0876756987868098979e-09));
  p = add(mul(p, u), T::splat(-2.7557319223985890653e-07));
  p = add(mul(p, u), T::splat(2.4801587301587301587e-05));
  p = add(mul(p, u), T::splat(-1.3888888888888888889e-03));
  p = add(mul(p, u), T::splat(4.1666666666666666667e-02));
  p = add(mul(p, u), T::splat(-0.5));
  p = add(mul(p, u), T::splat(1.0));
  return p;
}

/// Lane-wide atan2 via quotient reduction, tan(pi/8) fold, odd
/// polynomial and branch-free quadrant fixups.  Matches libm's quadrant
/// conventions for all finite inputs except the doubly-degenerate
/// (+-0, x <= -0) corner, which the lane solvers never feed it (their y
/// is a sqrt) and whose result the exact guard absorbs anyway.
template <class V>
inline V vatan2(V y, V x) {
  using T = vtraits<V>;
  const V zero = T::splat(0.0);
  const V one = T::splat(1.0);
  const V ay = vabs(y);
  const V ax = vabs(x);
  const V mn = vmin(ay, ax);
  const V mx = vmax(ay, ax);
  // z = min/max in [0, 1]; both-zero lanes forced to 0 instead of NaN.
  V z = select(cmp_ge(mx, T::splat(2.2250738585072014e-308)), div(mn, mx), zero);
  // Fold [tan(pi/8), 1] down to [-tan(pi/8), 0]: atan z = pi/4 + atan w.
  const auto folded = cmp_ge(z, T::splat(0.41421356237309503));
  const V w = select(folded, div(sub(z, one), add(z, one)), z);
  const V t = mul(w, w);
  // atan(w) = w * sum (-1)^k t^k / (2k+1), truncated after t^9: the
  // first omitted term is tan(pi/8)^21/21 < 5e-10.
  V p = T::splat(-5.2631578947368421053e-02);  // -1/19
  p = add(mul(p, t), T::splat(5.8823529411764705882e-02));   //  1/17
  p = add(mul(p, t), T::splat(-6.6666666666666666667e-02));  // -1/15
  p = add(mul(p, t), T::splat(7.6923076923076923077e-02));   //  1/13
  p = add(mul(p, t), T::splat(-9.0909090909090909091e-02));  // -1/11
  p = add(mul(p, t), T::splat(1.1111111111111111111e-01));   //  1/9
  p = add(mul(p, t), T::splat(-1.4285714285714285714e-01));  // -1/7
  p = add(mul(p, t), T::splat(2.0e-01));                     //  1/5
  p = add(mul(p, t), T::splat(-3.3333333333333333333e-01));  // -1/3
  p = add(mul(p, t), one);
  V a = add(mul(w, p), select(folded, T::splat(0.78539816339744830962), zero));
  // |y| > |x|: the quotient was x/y, so reflect about pi/4.
  a = select(cmp_ge(ax, ay), a, sub(T::splat(1.5707963267948966192), a));
  // x < 0 (strictly: x >= 0 keeps a, and +-0 >= 0 holds): second quadrant.
  a = select(cmp_ge(x, zero), a, sub(T::splat(3.1415926535897932385), a));
  // y < 0 (strictly): mirror to the lower half-plane.
  return select(cmp_ge(y, zero), a, neg(a));
}

/// Lane-wide cbrt for non-negative inputs — the one-real-root Cardano
/// lanes (delta >= 0, the dominant configuration on quartic resolvents)
/// need |v|^(1/3) per lane, and per-lane std::cbrt was the last libm
/// call left inside cardano_branch_lanes.  Seeded per lane by the
/// classic exponent-third bit trick (the integer scale is cheap scalar
/// work; there is no 64-bit lane divide to do it in-register), then
/// three lane-wide Halley iterations t <- t*(t^3 + 2x)/(2t^3 + x): the
/// seed is within ~5% relative, and Halley cubes the error, so three
/// rounds land around 1e-13 — far inside the ~1e-9 licence the exact
/// integer correction guard grants every estimate kernel here.  x == 0
/// is forced to exactly 0 (the seed bias alone would leave a tiny
/// positive) so the caller's p/(3m) degeneration check behaves like the
/// scalar path's.  Negative inputs are the caller's job to fold away
/// (cardano_branch_lanes passes |v| and applies the branch tables).
template <class V>
inline V vcbrt_nonneg(V x) {
  using T = vtraits<V>;
  constexpr int W = T::lanes;
  double xs[W], seed[W];
  store(xs, x);
  for (int l = 0; l < W; ++l) {
    std::uint64_t bits;
    std::memcpy(&bits, &xs[l], sizeof bits);
    bits = bits / 3 + 0x2A9F7893782DA1CEull;
    std::memcpy(&seed[l], &bits, sizeof bits);
  }
  V t = load<W>(seed);
  for (int it = 0; it < 3; ++it) {
    const V t3 = mul(mul(t, t), t);
    t = mul(t, div(add(t3, add(x, x)), add(add(t3, t3), x)));
  }
  return select(cmp_ge(T::splat(0.0), x), T::splat(0.0), t);
}

}  // namespace nrc::simd
