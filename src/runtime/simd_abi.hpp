#pragma once
// simd_abi — compile-time SIMD target selection for the recovery runtime.
//
// The lane-batched solvers (CollapsedEval::recover4 and friends), the
// RecoveryProgram 4-wide bytecode evaluator and the lane-strided block
// fills all express their vector arithmetic against this tiny shim
// instead of raw intrinsics, so exactly one place decides the target:
//
//   * AVX2 when the translation unit is compiled with -mavx2 (the CMake
//     default where the compiler supports it) and NRC_NO_AVX2 is not
//     defined,
//   * a portable scalar fallback otherwise — identical lane semantics,
//     so every caller is written once and the CI scalar leg
//     (-DNRC_NO_AVX2=ON) exercises the same code paths.
//
// Lane width is fixed at 4 (4 x i64 / 4 x double per 256-bit vector).
// Floating lanes are double, not the long double the scalar engine
// uses; every consumer runs behind the exact integer correction guard,
// which absorbs the precision difference (a worse estimate can only
// cost extra guard steps or a search fallback, never a wrong tuple).

#include <cmath>

#include "support/int128.hpp"  // i64

#if defined(__AVX2__) && !defined(NRC_NO_AVX2)
#define NRC_SIMD_AVX2 1
#include <immintrin.h>
#else
#define NRC_SIMD_AVX2 0
#endif

namespace nrc::simd {

/// Lanes per vector for the batched recovery paths.
inline constexpr int kLanes = 4;

/// Compile-time ABI tag ("avx2" / "scalar"); recorded in BENCH_recovery
/// and surfaced by Collapsed::describe().
inline constexpr const char* abi_name() {
#if NRC_SIMD_AVX2
  return "avx2";
#else
  return "scalar";
#endif
}

// ------------------------------------------------------------ f64 lanes

/// Four double lanes.  Only the operations the recovery solvers need.
struct vf64 {
#if NRC_SIMD_AVX2
  __m256d v;
#else
  double v[kLanes];
#endif
};

#if NRC_SIMD_AVX2

inline vf64 set1(double x) { return {_mm256_set1_pd(x)}; }
inline vf64 set(double a, double b, double c, double d) {
  return {_mm256_setr_pd(a, b, c, d)};
}
inline vf64 add(vf64 a, vf64 b) { return {_mm256_add_pd(a.v, b.v)}; }
inline vf64 sub(vf64 a, vf64 b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline vf64 mul(vf64 a, vf64 b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline vf64 div(vf64 a, vf64 b) { return {_mm256_div_pd(a.v, b.v)}; }
inline vf64 sqrt(vf64 a) { return {_mm256_sqrt_pd(a.v)}; }
inline vf64 neg(vf64 a) { return {_mm256_sub_pd(_mm256_setzero_pd(), a.v)}; }
inline vf64 floor(vf64 a) { return {_mm256_floor_pd(a.v)}; }
inline void store(double* p, vf64 a) { _mm256_storeu_pd(p, a.v); }
/// Lane mask a >= b (ordered: NaN lanes compare false).  Only meaningful
/// as the first argument of select().
inline vf64 cmp_ge(vf64 a, vf64 b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
/// Per lane: mask ? a : b.
inline vf64 select(vf64 mask, vf64 a, vf64 b) {
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
}

#else

inline vf64 set1(double x) { return {{x, x, x, x}}; }
inline vf64 set(double a, double b, double c, double d) { return {{a, b, c, d}}; }
inline vf64 add(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline vf64 sub(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] - b.v[l];
  return r;
}
inline vf64 mul(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] * b.v[l];
  return r;
}
inline vf64 div(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] / b.v[l];
  return r;
}
inline vf64 sqrt(vf64 a) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = std::sqrt(a.v[l]);
  return r;
}
inline vf64 neg(vf64 a) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = -a.v[l];
  return r;
}
inline vf64 floor(vf64 a) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = std::floor(a.v[l]);
  return r;
}
inline void store(double* p, vf64 a) {
  for (int l = 0; l < kLanes; ++l) p[l] = a.v[l];
}
/// Lane mask a >= b (ordered: NaN lanes compare false).  Only meaningful
/// as the first argument of select().
inline vf64 cmp_ge(vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = a.v[l] >= b.v[l] ? 1.0 : 0.0;
  return r;
}
/// Per lane: mask ? a : b.
inline vf64 select(vf64 mask, vf64 a, vf64 b) {
  vf64 r;
  for (int l = 0; l < kLanes; ++l) r.v[l] = mask.v[l] != 0.0 ? a.v[l] : b.v[l];
  return r;
}

#endif

/// Lane extraction (both ABIs): store-and-load keeps it branch-free.
inline double lane(vf64 a, int l) {
  double tmp[kLanes];
  store(tmp, a);
  return tmp[l];
}

// ----------------------------------------------- lane-strided i64 fills

/// dst[0..n) = value.  The broadcast half of the structure-of-arrays
/// block fill: one store per column per row segment.
inline void fill_broadcast(i64* dst, i64 n, i64 value) {
#if NRC_SIMD_AVX2
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  i64 i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  for (; i < n; ++i) dst[i] = value;
#else
  for (i64 i = 0; i < n; ++i) dst[i] = value;
#endif
}

/// dst[0..n) = start, start+1, ...  The innermost column of the
/// structure-of-arrays block fill.
inline void fill_iota(i64* dst, i64 n, i64 start) {
#if NRC_SIMD_AVX2
  __m256i v = _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(start)),
                               _mm256_setr_epi64x(0, 1, 2, 3));
  const __m256i step = _mm256_set1_epi64x(kLanes);
  i64 i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    v = _mm256_add_epi64(v, step);
  }
  for (; i < n; ++i) dst[i] = start + i;
#else
  for (i64 i = 0; i < n; ++i) dst[i] = start + i;
#endif
}

}  // namespace nrc::simd
