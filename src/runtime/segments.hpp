#pragma once
// Row-segment execution: the vectorization-friendly production form of
// the §V per-thread scheme.
//
// Calling the body once per collapsed iteration forces scalar code even
// when the original innermost loop vectorized trivially (the paper
// raises exactly this in §VI-A).  Row segments fix it at zero recovery
// cost: each thread's contiguous pc-block is decomposed into maximal
// runs with a fixed outer-index prefix, and the body receives the
// innermost range [j_begin, j_end) whole — so a `for (j = j_begin; j <
// j_end; ++j)` body vectorizes exactly like the original nest.
//
// Segment body contract:
//   void(std::span<const i64> prefix, i64 j_begin, i64 j_end)
// where prefix.size() == depth-1 holds the outer indices (empty for
// depth-1 nests: the whole domain is one run).

#include <omp.h>

#include <algorithm>
#include <span>

#include "core/collapse.hpp"
#include "runtime/execute.hpp"

namespace nrc {

namespace detail {

/// Run the pc range [lo, hi] (1-based, inclusive) as row segments.
template <class SegBody>
void run_segments(const CollapsedEval& cn, i64 lo, i64 hi, SegBody&& body) {
  const size_t d = static_cast<size_t>(cn.depth());
  cn.for_each_row(lo, hi, [&](const i64* idx, i64 j_begin, i64 j_end) {
    body(std::span<const i64>(idx, d - 1), j_begin, j_end);
  });
}

}  // namespace detail

/// §V per-thread scheme with row-segment bodies: contiguous static
/// blocks, one costly recovery per thread, segments inside.
template <class SegBody>
void collapsed_for_row_segments(const CollapsedEval& cn, SegBody&& body, int threads = 0) {
  const i64 total = cn.trip_count();
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel num_threads(nt)
  {
    i64 lo, cnt;
    detail::static_thread_range(total, omp_get_num_threads(), omp_get_thread_num(),
                                &lo, &cnt);
    if (cnt > 0) detail::run_segments(cn, lo, lo + cnt - 1, body);
  }
}

/// §V chunked scheme with row-segment bodies: schedule(static, chunk)
/// semantics (chunks dealt round-robin), one costly recovery per chunk,
/// segments inside each chunk.  The round-robin deal keeps threads
/// co-located in the iteration space, which preserves shared-cache
/// streaming on kernels that read common data.
template <class SegBody>
void collapsed_for_row_segments_chunked(const CollapsedEval& cn, i64 chunk, SegBody&& body,
                                        int threads = 0) {
  if (chunk <= 0) {
    collapsed_for_row_segments(cn, static_cast<SegBody&&>(body), threads);
    return;
  }
  const i64 total = cn.trip_count();
  const i64 nchunks = detail::chunk_count(total, chunk);
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel num_threads(nt)
  {
    const i64 t = omp_get_thread_num();
    const i64 np = omp_get_num_threads();
    for (i64 q = t; q < nchunks; q += np) {
      const i64 lo = 1 + q * chunk;
      const i64 hi = detail::chunk_end(total, lo, chunk);
      detail::run_segments(cn, lo, hi, body);
    }
  }
}

/// Serial row-segment execution with `n_chunks` costly recoveries
/// (the Fig. 10 measurement protocol, segment flavour).
template <class SegBody>
void collapsed_serial_segments_sim(const CollapsedEval& cn, int n_chunks, SegBody&& body) {
  const i64 total = cn.trip_count();
  if (n_chunks < 1) n_chunks = 1;
  const i64 base = total / n_chunks;
  const i64 rem = total % n_chunks;
  i64 lo = 1;
  for (int q = 0; q < n_chunks; ++q) {
    const i64 cnt = base + (q < rem ? 1 : 0);
    if (cnt <= 0) continue;
    detail::run_segments(cn, lo, lo + cnt - 1, body);
    lo += cnt;
  }
}

}  // namespace nrc
