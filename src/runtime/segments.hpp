#pragma once
// Row-segment execution: the vectorization-friendly production form of
// the §V per-thread scheme — thin wrappers over the unified dispatcher
// (pipeline/dispatch.hpp).
//
// Calling the body once per collapsed iteration forces scalar code even
// when the original innermost loop vectorized trivially (the paper
// raises exactly this in §VI-A).  Row segments fix it at zero recovery
// cost: each thread's contiguous pc-block is decomposed into maximal
// runs with a fixed outer-index prefix, and the body receives the
// innermost range [j_begin, j_end) whole — so a `for (j = j_begin; j <
// j_end; ++j)` body vectorizes exactly like the original nest.
//
// Segment body contract:
//   void(std::span<const i64> prefix, i64 j_begin, i64 j_end)
// where prefix.size() == depth-1 holds the outer indices (empty for
// depth-1 nests: the whole domain is one run).

#include "pipeline/dispatch.hpp"

namespace nrc {

/// §V per-thread scheme with row-segment bodies: contiguous static
/// blocks, one costly recovery per thread, segments inside.
template <class SegBody>
void collapsed_for_row_segments(const CollapsedEval& cn, SegBody&& body, int threads = 0) {
  run(cn, Schedule::row_segments({threads}), static_cast<SegBody&&>(body));
}

/// §V chunked scheme with row-segment bodies: schedule(static, chunk)
/// semantics (chunks dealt round-robin), one costly recovery per chunk,
/// segments inside each chunk.  The round-robin deal keeps threads
/// co-located in the iteration space, which preserves shared-cache
/// streaming on kernels that read common data.  A non-positive chunk
/// falls back to the per-thread segment scheme.
template <class SegBody>
void collapsed_for_row_segments_chunked(const CollapsedEval& cn, i64 chunk, SegBody&& body,
                                        int threads = 0) {
  run(cn, Schedule::row_segments_chunked(chunk, {threads}), static_cast<SegBody&&>(body));
}

/// Serial row-segment execution with `n_chunks` costly recoveries
/// (the Fig. 10 measurement protocol, segment flavour).
template <class SegBody>
void collapsed_serial_segments_sim(const CollapsedEval& cn, int n_chunks, SegBody&& body) {
  detail::run_serial_sim_segments(cn, n_chunks, body);
}

}  // namespace nrc
