#pragma once
// Load-balance accounting (reproduces the phenomenon of paper Fig. 2).
//
// Computes, analytically from the iteration domain, how many innermost
// iterations each thread executes under (a) outer-loop schedule(static)
// parallelization and (b) collapsed schedule(static) parallelization,
// plus summary imbalance metrics.

#include <vector>

#include "polyhedral/domain.hpp"

namespace nrc {

/// Per-thread iteration counts and imbalance summary.
struct ThreadLoad {
  std::vector<i64> iterations;

  i64 max_load() const;
  i64 min_load() const;
  double mean_load() const;
  /// max/mean - 1: 0 means perfectly balanced.  The parallel makespan is
  /// proportional to max, so this is the fraction of time wasted.
  double imbalance() const;
};

/// Iteration counts per thread when the *outermost* loop is split in
/// contiguous slices (OpenMP schedule(static)) among `threads` threads.
ThreadLoad outer_static_load(const NestSpec& spec, const ParamMap& params, int threads);

/// Iteration counts per thread when the collapsed loop of `total`
/// iterations is split contiguously (always balanced to within 1).
ThreadLoad collapsed_static_load(i64 total, int threads);

}  // namespace nrc
