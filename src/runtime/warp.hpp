#pragma once
// GPU warp-execution simulation (paper §VI-B).
//
// On a GPU one distributes *consecutive* collapsed iterations across the
// W threads of a warp for memory coalescing; each thread then visits
// iterations spaced W apart, performing the costly recovery only once
// and advancing by W odometer increments per step.  This module runs the
// same code path on the CPU: lane `l` handles pc = l+1, l+1+W, l+1+2W...
// (lanes are mapped onto OpenMP threads).  It exists so the §VI-B scheme
// is exercised and benchmarkable without GPU hardware.

#include <omp.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/collapse.hpp"

namespace nrc {

template <class Body>
void collapsed_for_warp_sim(const CollapsedEval& cn, int warp_size, Body&& body,
                            int threads = 0) {
  if (warp_size < 1) throw SpecError("collapsed_for_warp_sim: warp_size must be >= 1");
  const i64 total = cn.trip_count();
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  const size_t d = static_cast<size_t>(cn.depth());
  const i64 W = warp_size;

  // One block recovery seeds the whole warp: pcs 1..W are exactly the
  // lanes' starting iterations, so a single lane-strided block solve
  // stages them as tile[k*W + lane] — the CPU stand-in for §VI-B's
  // per-warp shared-memory tile (on a GPU, recover_block_lanes's output
  // layout is what the warp would keep in shared memory).
  const i64 seeded = std::min<i64>(W, total);
  std::vector<i64> tile(d * static_cast<size_t>(W));
  cn.recover_block_lanes(1, seeded, tile, W);

#pragma omp parallel for schedule(static) num_threads(nt)
  for (i64 lane = 0; lane < W; ++lane) {
    if (lane + 1 > total) continue;
    i64 idx[kMaxDepth];
    for (size_t k = 0; k < d; ++k)
      idx[k] = tile[k * static_cast<size_t>(W) + static_cast<size_t>(lane)];
    for (i64 pc = lane + 1; pc <= total; pc += W) {
      body(std::span<const i64>(idx, d));
      // Jump W positions to the lane's next iteration; advance() uses
      // row arithmetic, so a whole warp-stride inside one row costs a
      // single bound evaluation instead of W odometer increments.
      if (pc + W <= total && !cn.advance({idx, d}, W)) break;
    }
  }
}

}  // namespace nrc
