#pragma once
// GPU warp-execution simulation (paper §VI-B) — a thin wrapper over the
// unified dispatcher (pipeline/dispatch.hpp).
//
// On a GPU one distributes *consecutive* collapsed iterations across the
// W threads of a warp for memory coalescing; each thread then visits
// iterations spaced W apart, performing the costly recovery only once
// and advancing by W odometer increments per step.  This module runs the
// same code path on the CPU: lane `l` handles pc = l+1, l+1+W, l+1+2W...
// (lanes are mapped onto OpenMP threads).  It exists so the §VI-B scheme
// is exercised and benchmarkable without GPU hardware.
//
// The lane walk itself (detail::warp_lane_walk, with its
// advance-failure resync policy) lives in pipeline/dispatch.hpp next to
// the other scheme implementations and stays templated on the evaluator
// so tests can fault-inject it (tests/runtime/warp_test.cpp).

#include "pipeline/dispatch.hpp"

namespace nrc {

template <class Body>
void collapsed_for_warp_sim(const CollapsedEval& cn, int warp_size, Body&& body,
                            int threads = 0) {
  run(cn, Schedule::warp_sim(warp_size, {threads}), static_cast<Body&&>(body));
}

}  // namespace nrc
