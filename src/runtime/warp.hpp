#pragma once
// GPU warp-execution simulation (paper §VI-B).
//
// On a GPU one distributes *consecutive* collapsed iterations across the
// W threads of a warp for memory coalescing; each thread then visits
// iterations spaced W apart, performing the costly recovery only once
// and advancing by W odometer increments per step.  This module runs the
// same code path on the CPU: lane `l` handles pc = l+1, l+1+W, l+1+2W...
// (lanes are mapped onto OpenMP threads).  It exists so the §VI-B scheme
// is exercised and benchmarkable without GPU hardware.

#include <omp.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/collapse.hpp"

namespace nrc {

namespace detail {

/// One lane's strided walk over the collapsed range: visit pc = lane+1,
/// lane+1+W, ... while pc <= total, jumping W positions per step with
/// row arithmetic (advance() evaluates one bound per crossed row
/// instead of W odometer increments).  `idx` holds the tuple of rank
/// lane+1 on entry.
///
/// advance() reports failure when the walk would leave the domain; for
/// a model-conforming domain that cannot happen mid-stride (the guard
/// keeps the target rank <= total).  If it ever does fail — an engine
/// regression, a domain that silently violates the Fig. 5 model — the
/// lane must NOT abandon its remaining iterations (a silent drop is the
/// worst failure mode a parallel scheme can have): it resynchronizes
/// with a full recover() at its next pc and keeps striding.  Templated
/// on the evaluator so the resync policy is testable with a
/// fault-injecting wrapper (tests/runtime/warp_test.cpp).
template <class Eval, class Body>
void warp_lane_walk(const Eval& cn, i64 lane, i64 W, i64 total, std::span<i64> idx,
                    Body&& body) {
  for (i64 pc = lane + 1; /* lane + 1 <= total: live lanes only */;) {
    body(std::span<const i64>(idx.data(), idx.size()));
    // Stride-remaining test and loop exit before any pc + W is formed:
    // pc can sit near the i64 maximum for astronomically shifted
    // domains, total - pc cannot.
    if (W > total - pc) break;
    if (!cn.advance(idx, W)) cn.recover(pc + W, idx);
    pc += W;
  }
}

}  // namespace detail

template <class Body>
void collapsed_for_warp_sim(const CollapsedEval& cn, int warp_size, Body&& body,
                            int threads = 0) {
  if (warp_size < 1) throw SpecError("collapsed_for_warp_sim: warp_size must be >= 1");
  const i64 total = cn.trip_count();
  if (total < 1) return;
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  const size_t d = static_cast<size_t>(cn.depth());
  const i64 W = warp_size;

  // Lanes beyond the domain never execute: clamp the staging tile and
  // the lane loop to the live lanes so a warp_size far beyond
  // trip_count() (callers probe with huge warps) costs O(depth * total)
  // memory, not O(depth * W) — the unclamped tile allocated gigabytes
  // for warp_size near INT_MAX.
  const i64 L = std::min<i64>(W, total);

  // One block recovery seeds the whole warp: pcs 1..L are exactly the
  // live lanes' starting iterations, so a single lane-strided block
  // solve stages them as tile[k*L + lane] — the CPU stand-in for
  // §VI-B's per-warp shared-memory tile (on a GPU,
  // recover_block_lanes's output layout is what the warp would keep in
  // shared memory).
  std::vector<i64> tile(d * static_cast<size_t>(L));
  cn.recover_block_lanes(1, L, tile, L);

#pragma omp parallel for schedule(static) num_threads(nt)
  for (i64 lane = 0; lane < L; ++lane) {
    i64 idx[kMaxDepth];
    for (size_t k = 0; k < d; ++k)
      idx[k] = tile[k * static_cast<size_t>(L) + static_cast<size_t>(lane)];
    detail::warp_lane_walk(cn, lane, W, total, {idx, d}, body);
  }
}

}  // namespace nrc
