#pragma once
// OpenMP execution schemes for collapsed loops (paper §V) — the legacy
// scalar entry points, kept as thin wrappers over the unified
// dispatcher (pipeline/dispatch.hpp): each one builds the matching
// Schedule descriptor and calls nrc::run(), so every scheme's
// implementation — and the chunking/thread-range arithmetic the schemes
// share — lives exactly once in the pipeline layer.
//
// All schemes iterate pc = 1..trip_count over the collapsed single loop
// and call `body(idx)` with the recovered original indices.  They differ
// in *when* the costly closed-form recovery runs:
//
//   collapsed_for_per_iteration  — recovery at every iteration (Fig. 3);
//   collapsed_for_per_thread     — one contiguous block per thread,
//                                  recovery once per thread, then odometer
//                                  increments (Fig. 4 / §V first scheme);
//   collapsed_for_chunked        — schedule(static, CHUNK) semantics,
//                                  recovery once per chunk (§V second
//                                  scheme);
//   collapsed_for_taskloop       — grains as OpenMP tasks, one recovery
//                                  per grain;
//   collapsed_serial_sim         — serial run performing `n_chunks`
//                                  recoveries (the measurement protocol of
//                                  Fig. 10: "root evaluations are performed
//                                  12 times, to simulate ... 12 threads").
//
// Body contract: void(std::span<const i64> idx) where idx.size() ==
// cn.depth().  Bodies must be safe to run concurrently on distinct
// iterations (the collapsed loops carry no dependence by assumption).

#include "pipeline/dispatch.hpp"

namespace nrc {

/// Naive scheme: full closed-form recovery at every iteration.
template <class Body>
void collapsed_for_per_iteration(const CollapsedEval& cn, Body&& body,
                                 OmpSchedule sched = OmpSchedule::Static,
                                 RunConfig cfg = {}) {
  run(cn, Schedule::per_iteration(sched, cfg), static_cast<Body&&>(body));
}

/// §V scheme with one costly recovery per thread: each thread receives a
/// contiguous block (schedule(static) semantics), recovers its first
/// iteration, and advances by odometer increments.
template <class Body>
void collapsed_for_per_thread(const CollapsedEval& cn, Body&& body, RunConfig cfg = {}) {
  run(cn, Schedule::per_thread(cfg), static_cast<Body&&>(body));
}

/// §V scheme with schedule(static, chunk) semantics: chunks are dealt to
/// threads round-robin; the costly recovery runs once per chunk.
/// A non-positive chunk falls back to the per-thread scheme.
template <class Body>
void collapsed_for_chunked(const CollapsedEval& cn, i64 chunk, Body&& body,
                           RunConfig cfg = {}) {
  run(cn, Schedule::chunked(chunk, cfg), static_cast<Body&&>(body));
}

/// Task-based execution: the collapsed range is cut into grains, each
/// grain becomes an OpenMP task (one costly recovery per grain, odometer
/// inside).  Combines the collapsed loop's perfect count balance with
/// dynamic placement — the robust choice on machines with heterogeneous
/// or interference-prone cores.  grainsize <= 0 picks default_chunk.
template <class Body>
void collapsed_for_taskloop(const CollapsedEval& cn, i64 grainsize, Body&& body,
                            RunConfig cfg = {}) {
  run(cn, Schedule::taskloop(grainsize, cfg), static_cast<Body&&>(body));
}

/// Serial execution of the collapsed loop performing `n_chunks` costly
/// recoveries (evenly spaced), reproducing the Fig. 10 overhead
/// measurement protocol.  n_chunks <= 1 recovers once at pc = 1.
/// Deliberately keeps the paper's exact Fig. 4 shape — element-wise
/// increment() every iteration — so the measured control overhead stays
/// comparable with the paper; the production schemes use row-arithmetic
/// ranges instead.
template <class Body>
void collapsed_serial_sim(const CollapsedEval& cn, int n_chunks, Body&& body) {
  run(cn, Schedule::serial_sim(n_chunks), static_cast<Body&&>(body));
}

/// Plain serial execution of the *original* nest order via the odometer
/// (reference executor; used by kernels' serial baselines when convenient).
template <class Body>
void collapsed_serial(const CollapsedEval& cn, Body&& body) {
  collapsed_serial_sim(cn, 1, static_cast<Body&&>(body));
}

}  // namespace nrc
