#pragma once
// OpenMP execution schemes for collapsed loops (paper §V).
//
// All schemes iterate pc = 1..trip_count over the collapsed single loop
// and call `body(idx)` with the recovered original indices.  They differ
// in *when* the costly closed-form recovery runs:
//
//   collapsed_for_per_iteration  — recovery at every iteration (Fig. 3);
//   collapsed_for_per_thread     — one contiguous block per thread,
//                                  recovery once per thread, then odometer
//                                  increments (Fig. 4 / §V first scheme);
//   collapsed_for_chunked        — schedule(static, CHUNK) semantics,
//                                  recovery once per chunk (§V second
//                                  scheme);
//   collapsed_serial_sim         — serial run performing `n_chunks`
//                                  recoveries (the measurement protocol of
//                                  Fig. 10: "root evaluations are performed
//                                  12 times, to simulate ... 12 threads").
//
// Body contract: void(std::span<const i64> idx) where idx.size() ==
// cn.depth().  Bodies must be safe to run concurrently on distinct
// iterations (the collapsed loops carry no dependence by assumption).

#include <omp.h>

#include <algorithm>
#include <span>

#include "core/collapse.hpp"

namespace nrc {

struct RunConfig {
  int threads = 0;  ///< 0: use the OpenMP default
};

/// Default chunk size for the §V chunked scheme: small enough that the
/// round-robin deal keeps all threads co-located in the iteration space
/// (shared-cache streaming, like dynamic scheduling achieves), large
/// enough to amortize the per-chunk recovery.
inline i64 default_chunk(i64 total, int threads) {
  const i64 c = total / (static_cast<i64>(threads > 0 ? threads : 1) * 32);
  return std::clamp<i64>(c, 1, 4096);
}

enum class OmpSchedule { Static, Dynamic };

namespace detail {

/// Contiguous schedule(static) split of [1, total] among np ranks:
/// rank t receives `cnt` pcs starting at `lo`.  Shared by the
/// per-thread, row-segment and simd-block executors so every scheme
/// slices the collapsed range identically.
inline void static_thread_range(i64 total, i64 np, i64 t, i64* lo, i64* cnt) {
  const i64 base = total / np;
  const i64 rem = total % np;
  *lo = 1 + t * base + std::min<i64>(t, rem);
  *cnt = base + (t < rem ? 1 : 0);
}

/// ceil(total / chunk) without forming total + chunk - 1, which wraps
/// for chunk near the i64 maximum — the naive form made every chunked
/// scheme compute a non-positive chunk count and silently skip the
/// whole domain when callers passed a "practically infinite" chunk.
/// Shared by the scalar, row-segment and simd-block chunked executors.
inline i64 chunk_count(i64 total, i64 chunk) {
  return total / chunk + (total % chunk != 0 ? 1 : 0);
}

/// Last pc of chunk q (0-based) given its first pc `lo`, clipped at
/// total.  Computed as a bound on the *remaining* range so that
/// lo + chunk - 1 (and the (q + 1) * chunk it replaces) can never
/// overflow: lo <= total always holds for a valid chunk start.
inline i64 chunk_end(i64 total, i64 lo, i64 chunk) {
  return chunk - 1 <= total - lo ? lo + chunk - 1 : total;
}

/// Run the contiguous pc range [lo, hi] (1-based, inclusive) with one
/// costly recovery at lo and row arithmetic afterwards (for_each_row):
/// the innermost bound is evaluated once per row instead of once per
/// iteration, so the scalar production schemes pay one prefix solve per
/// chunk and O(1) work per iteration.
template <class Body>
void run_scalar_range(const CollapsedEval& cn, i64 lo, i64 hi, Body&& body) {
  const size_t d = static_cast<size_t>(cn.depth());
  cn.for_each_row(lo, hi, [&](i64* idx, i64 j_begin, i64 j_end) {
    const std::span<const i64> tuple(idx, d);
    for (i64 j = j_begin; j < j_end; ++j) {
      idx[d - 1] = j;
      body(tuple);
    }
  });
}

}  // namespace detail

/// Naive scheme: full closed-form recovery at every iteration.
template <class Body>
void collapsed_for_per_iteration(const CollapsedEval& cn, Body&& body,
                                 OmpSchedule sched = OmpSchedule::Static,
                                 RunConfig cfg = {}) {
  const i64 total = cn.trip_count();
  const int nt = cfg.threads > 0 ? cfg.threads : omp_get_max_threads();
  if (sched == OmpSchedule::Static) {
#pragma omp parallel for schedule(static) num_threads(nt)
    for (i64 pc = 1; pc <= total; ++pc) {
      i64 idx[kMaxDepth];
      cn.recover(pc, {idx, static_cast<size_t>(cn.depth())});
      body(std::span<const i64>(idx, static_cast<size_t>(cn.depth())));
    }
  } else {
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt)
    for (i64 pc = 1; pc <= total; ++pc) {
      i64 idx[kMaxDepth];
      cn.recover(pc, {idx, static_cast<size_t>(cn.depth())});
      body(std::span<const i64>(idx, static_cast<size_t>(cn.depth())));
    }
  }
}

/// §V scheme with one costly recovery per thread: each thread receives a
/// contiguous block (schedule(static) semantics), recovers its first
/// iteration, and advances by odometer increments.
template <class Body>
void collapsed_for_per_thread(const CollapsedEval& cn, Body&& body, RunConfig cfg = {}) {
  const i64 total = cn.trip_count();
  const int nt = cfg.threads > 0 ? cfg.threads : omp_get_max_threads();
#pragma omp parallel num_threads(nt)
  {
    i64 lo, cnt;
    detail::static_thread_range(total, omp_get_num_threads(), omp_get_thread_num(),
                                &lo, &cnt);
    if (cnt > 0) detail::run_scalar_range(cn, lo, lo + cnt - 1, body);
  }
}

/// §V scheme with schedule(static, chunk) semantics: chunks are dealt to
/// threads round-robin; the costly recovery runs once per chunk.
template <class Body>
void collapsed_for_chunked(const CollapsedEval& cn, i64 chunk, Body&& body,
                           RunConfig cfg = {}) {
  if (chunk <= 0) {
    collapsed_for_per_thread(cn, static_cast<Body&&>(body), cfg);
    return;
  }
  const i64 total = cn.trip_count();
  const i64 nchunks = detail::chunk_count(total, chunk);
  const int nt = cfg.threads > 0 ? cfg.threads : omp_get_max_threads();
#pragma omp parallel num_threads(nt)
  {
    const i64 t = omp_get_thread_num();
    const i64 np = omp_get_num_threads();
    for (i64 q = t; q < nchunks; q += np) {
      const i64 lo = 1 + q * chunk;
      const i64 hi = detail::chunk_end(total, lo, chunk);
      detail::run_scalar_range(cn, lo, hi, body);
    }
  }
}

/// Task-based execution: the collapsed range is cut into grains, each
/// grain becomes an OpenMP task (one costly recovery per grain, odometer
/// inside).  Combines the collapsed loop's perfect count balance with
/// dynamic placement — the robust choice on machines with heterogeneous
/// or interference-prone cores.  grainsize <= 0 picks default_chunk.
template <class Body>
void collapsed_for_taskloop(const CollapsedEval& cn, i64 grainsize, Body&& body,
                            RunConfig cfg = {}) {
  const i64 total = cn.trip_count();
  const int nt = cfg.threads > 0 ? cfg.threads : omp_get_max_threads();
  const i64 grain = grainsize > 0 ? grainsize : default_chunk(total, nt);
  const i64 ntasks = detail::chunk_count(total, grain);
#pragma omp parallel num_threads(nt)
#pragma omp single
  {
#pragma omp taskloop grainsize(1)
    for (i64 q = 0; q < ntasks; ++q) {
      const i64 lo = 1 + q * grain;
      const i64 hi = detail::chunk_end(total, lo, grain);
      detail::run_scalar_range(cn, lo, hi, body);
    }
  }
}

/// Serial execution of the collapsed loop performing `n_chunks` costly
/// recoveries (evenly spaced), reproducing the Fig. 10 overhead
/// measurement protocol.  n_chunks <= 1 recovers once at pc = 1.
/// Deliberately keeps the paper's exact Fig. 4 shape — element-wise
/// increment() every iteration — so the measured control overhead stays
/// comparable with the paper; the production schemes above use
/// row-arithmetic ranges instead.
template <class Body>
void collapsed_serial_sim(const CollapsedEval& cn, int n_chunks, Body&& body) {
  const i64 total = cn.trip_count();
  if (n_chunks < 1) n_chunks = 1;
  const size_t d = static_cast<size_t>(cn.depth());
  const i64 base = total / n_chunks;
  const i64 rem = total % n_chunks;
  i64 lo = 1;
  i64 idx[kMaxDepth];
  for (int q = 0; q < n_chunks; ++q) {
    const i64 cnt = base + (q < rem ? 1 : 0);
    if (cnt <= 0) continue;
    cn.recover(lo, {idx, d});
    for (i64 pc = lo; pc < lo + cnt; ++pc) {
      body(std::span<const i64>(idx, d));
      if (pc + 1 < lo + cnt) cn.increment({idx, d});
    }
    lo += cnt;
  }
}

/// Plain serial execution of the *original* nest order via the odometer
/// (reference executor; used by kernels' serial baselines when convenient).
template <class Body>
void collapsed_serial(const CollapsedEval& cn, Body&& body) {
  collapsed_serial_sim(cn, 1, static_cast<Body&&>(body));
}

}  // namespace nrc
