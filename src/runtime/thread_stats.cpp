#include "runtime/thread_stats.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace nrc {

i64 ThreadLoad::max_load() const {
  return iterations.empty() ? 0 : *std::max_element(iterations.begin(), iterations.end());
}

i64 ThreadLoad::min_load() const {
  return iterations.empty() ? 0 : *std::min_element(iterations.begin(), iterations.end());
}

double ThreadLoad::mean_load() const {
  if (iterations.empty()) return 0.0;
  i64 s = 0;
  for (i64 v : iterations) s += v;
  return static_cast<double>(s) / static_cast<double>(iterations.size());
}

double ThreadLoad::imbalance() const {
  const double m = mean_load();
  if (m <= 0.0) return 0.0;
  return static_cast<double>(max_load()) / m - 1.0;
}

ThreadLoad outer_static_load(const NestSpec& spec, const ParamMap& params, int threads) {
  if (threads < 1) throw SpecError("outer_static_load: threads must be >= 1");

  // Weight of each outermost value = number of inner iterations under it.
  std::map<i64, i64> row_weight;
  walk_domain(spec, params, [&](std::span<const i64> p) { ++row_weight[p[0]]; });

  std::vector<i64> outer_vals;
  outer_vals.reserve(row_weight.size());
  for (const auto& [v, w] : row_weight) outer_vals.push_back(v);

  // schedule(static): contiguous slices of the outer range, one per thread.
  const i64 n = static_cast<i64>(outer_vals.size());
  const i64 base = n / threads;
  const i64 rem = n % threads;
  ThreadLoad load;
  load.iterations.assign(static_cast<size_t>(threads), 0);
  i64 at = 0;
  for (int t = 0; t < threads; ++t) {
    const i64 cnt = base + (t < rem ? 1 : 0);
    for (i64 q = 0; q < cnt; ++q)
      load.iterations[static_cast<size_t>(t)] +=
          row_weight[outer_vals[static_cast<size_t>(at++)]];
  }
  return load;
}

ThreadLoad collapsed_static_load(i64 total, int threads) {
  if (threads < 1) throw SpecError("collapsed_static_load: threads must be >= 1");
  ThreadLoad load;
  load.iterations.assign(static_cast<size_t>(threads), 0);
  const i64 base = total / threads;
  const i64 rem = total % threads;
  for (int t = 0; t < threads; ++t)
    load.iterations[static_cast<size_t>(t)] = base + (t < rem ? 1 : 0);
  return load;
}

}  // namespace nrc
