#pragma once
// Vectorization-friendly block scheme (paper §VI-A).
//
// Per thread: recover the first tuple once, then repeatedly materialize
// up to `vlen` consecutive index tuples into a structure-of-arrays
// block and hand the whole block to the body, which can be an
// `omp simd` loop over the lanes.  The block is produced lane-strided
// straight out of the recovery row walk — broadcast stores for the
// outer columns, an iota stream for the innermost (simd_abi) — so no
// scalar transpose sits between recovery and the SIMD body.
//
// Block body contract:
//   void(int lanes, const i64* const* cols)
// where cols[k][lane] is index k of lane `lane` (k < depth, lane < lanes).
//
// collapsed_for_simd_blocks splits the domain per thread (one costly
// recovery per thread); collapsed_for_simd_blocks_chunked deals chunks
// round-robin in groups of 4 whose start solves run 4 pcs per SIMD
// lane (CollapsedEval::recover4), the §V chunked scheme with its
// per-chunk recovery cost cut by the lane batch.

#include <omp.h>

#include <algorithm>
#include <cstring>
#include <span>

#include "core/collapse.hpp"
#include "runtime/execute.hpp"
#include "runtime/simd_abi.hpp"

namespace nrc {

inline constexpr int kMaxSimdLanes = 256;

namespace detail {

/// Walk the pc range [lo, hi] from the already-recovered tuple `idx`
/// (the tuple of rank lo), emitting lane blocks of up to vlen rows:
/// SoA columns are filled with vector stores, then body(lanes, cols).
template <class BlockBody>
void run_lane_blocks_from(const CollapsedEval& cn, std::span<i64> idx, i64 lo, i64 hi,
                          int vlen, BlockBody&& body) {
  const size_t d = static_cast<size_t>(cn.depth());
  i64 soa[kMaxDepth][kMaxSimdLanes];
  const i64* cols[kMaxDepth];
  for (size_t k = 0; k < d; ++k) cols[k] = soa[k];

  int lanes = 0;
  cn.for_each_row_from(idx, lo, hi, [&](const i64* row, i64 j_begin, i64 j_end) {
    i64 j = j_begin;
    while (j < j_end) {
      const i64 take = std::min<i64>(j_end - j, vlen - lanes);
      for (size_t k = 0; k + 1 < d; ++k)
        simd::fill_broadcast(&soa[k][lanes], take, row[k]);
      simd::fill_iota(&soa[d - 1][lanes], take, j);
      lanes += static_cast<int>(take);
      j += take;
      if (lanes == vlen) {
        body(vlen, cols);
        lanes = 0;
      }
    }
  });
  if (lanes > 0) body(lanes, cols);
}

}  // namespace detail

template <class BlockBody>
void collapsed_for_simd_blocks(const CollapsedEval& cn, int vlen, BlockBody&& body,
                               int threads = 0) {
  if (vlen < 1 || vlen > kMaxSimdLanes)
    throw SpecError("collapsed_for_simd_blocks: vlen out of range");
  const i64 total = cn.trip_count();
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  const size_t d = static_cast<size_t>(cn.depth());
#pragma omp parallel num_threads(nt)
  {
    i64 lo, cnt;
    detail::static_thread_range(total, omp_get_num_threads(), omp_get_thread_num(),
                                &lo, &cnt);
    if (cnt > 0) {
      i64 idx[kMaxDepth];
      cn.recover(lo, {idx, d});
      detail::run_lane_blocks_from(cn, {idx, d}, lo, lo + cnt - 1, vlen, body);
    }
  }
}

/// §V chunked scheme over lane blocks: chunks are dealt round-robin in
/// groups of 4, and each group's chunk-start recoveries run as one
/// lane-batched solve (4 pcs per SIMD lane).  Tail groups with fewer
/// than 4 chunks fall back to scalar per-chunk recovery.
template <class BlockBody>
void collapsed_for_simd_blocks_chunked(const CollapsedEval& cn, int vlen, i64 chunk,
                                       BlockBody&& body, int threads = 0) {
  if (vlen < 1 || vlen > kMaxSimdLanes)
    throw SpecError("collapsed_for_simd_blocks_chunked: vlen out of range");
  if (chunk <= 0) {
    collapsed_for_simd_blocks(cn, vlen, static_cast<BlockBody&&>(body), threads);
    return;
  }
  const i64 total = cn.trip_count();
  const i64 nchunks = detail::chunk_count(total, chunk);
  const i64 ngroups = (nchunks + 3) / 4;
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  const size_t d = static_cast<size_t>(cn.depth());
#pragma omp parallel num_threads(nt)
  {
    const i64 t = omp_get_thread_num();
    const i64 np = omp_get_num_threads();
    for (i64 g = t; g < ngroups; g += np) {
      const i64 q0 = g * 4;
      const i64 in_group = std::min<i64>(4, nchunks - q0);
      i64 seed[4 * kMaxDepth];
      if (in_group == 4) {
        const i64 pcs[4] = {1 + q0 * chunk, 1 + (q0 + 1) * chunk, 1 + (q0 + 2) * chunk,
                            1 + (q0 + 3) * chunk};
        cn.recover4(pcs, {seed, 4 * d});
      } else {
        for (i64 b = 0; b < in_group; ++b)
          cn.recover(1 + (q0 + b) * chunk, {seed + b * d, d});
      }
      for (i64 b = 0; b < in_group; ++b) {
        const i64 lo = 1 + (q0 + b) * chunk;
        const i64 hi = detail::chunk_end(total, lo, chunk);
        i64 idx[kMaxDepth];
        std::memcpy(idx, seed + b * d, d * sizeof(i64));
        detail::run_lane_blocks_from(cn, {idx, d}, lo, hi, vlen, body);
      }
    }
  }
}

}  // namespace nrc
