#pragma once
// Vectorization-friendly block scheme (paper §VI-A).
//
// Per thread: recover the first tuple once, then repeatedly materialize
// `vlen` consecutive index tuples by odometer increments into a
// structure-of-arrays block and hand the whole block to the body, which
// can be an `omp simd` loop over the lanes.
//
// Block body contract:
//   void(int lanes, const i64* const* cols)
// where cols[k][lane] is index k of lane `lane` (k < depth, lane < lanes).

#include <omp.h>

#include <algorithm>
#include <span>

#include "core/collapse.hpp"

namespace nrc {

inline constexpr int kMaxSimdLanes = 256;

template <class BlockBody>
void collapsed_for_simd_blocks(const CollapsedEval& cn, int vlen, BlockBody&& body,
                               int threads = 0) {
  if (vlen < 1 || vlen > kMaxSimdLanes)
    throw SpecError("collapsed_for_simd_blocks: vlen out of range");
  const i64 total = cn.trip_count();
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  const int d = cn.depth();
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    const i64 np = omp_get_num_threads();
    const i64 base = total / np;
    const i64 rem = total % np;
    const i64 lo = 1 + t * base + std::min<i64>(t, rem);
    const i64 cnt = base + (t < rem ? 1 : 0);
    if (cnt > 0) {
      i64 idx[kMaxDepth];
      cn.recover(lo, {idx, static_cast<size_t>(d)});

      i64 soa_store[kMaxDepth][kMaxSimdLanes];
      const i64* cols[kMaxDepth];
      for (int k = 0; k < d; ++k) cols[k] = soa_store[k];

      i64 pc = lo;
      const i64 end = lo + cnt;  // exclusive
      while (pc < end) {
        const int lanes = static_cast<int>(std::min<i64>(vlen, end - pc));
        for (int lane = 0; lane < lanes; ++lane) {
          for (int k = 0; k < d; ++k) soa_store[k][lane] = idx[k];
          if (pc + lane + 1 < end) cn.increment({idx, static_cast<size_t>(d)});
        }
        body(lanes, cols);
        pc += lanes;
      }
    }
  }
}

}  // namespace nrc
