#pragma once
// Vectorization-friendly block scheme (paper §VI-A) — thin wrappers
// over the unified dispatcher (pipeline/dispatch.hpp).
//
// Per thread: recover the first tuple once, then repeatedly materialize
// up to `vlen` consecutive index tuples into a structure-of-arrays
// block and hand the whole block to the body, which can be an
// `omp simd` loop over the lanes.  The block is produced lane-strided
// straight out of the recovery row walk — broadcast stores for the
// outer columns, an iota stream for the innermost (simd_abi) — so no
// scalar transpose sits between recovery and the SIMD body.
//
// Block body contract:
//   void(int lanes, const i64* const* cols)
// where cols[k][lane] is index k of lane `lane` (k < depth, lane < lanes).
//
// collapsed_for_simd_blocks splits the domain per thread (one costly
// recovery per thread); collapsed_for_simd_blocks_chunked deals chunks
// round-robin in lane groups of simd::kGroupLanes (8 on the AVX-512
// leg, 4 elsewhere) whose start solves run one pc per SIMD lane
// (CollapsedEval::recover8 / recover4), the §V chunked scheme with its
// per-chunk recovery cost cut by the lane batch.

#include "pipeline/dispatch.hpp"

namespace nrc {

template <class BlockBody>
void collapsed_for_simd_blocks(const CollapsedEval& cn, int vlen, BlockBody&& body,
                               int threads = 0) {
  run(cn, Schedule::simd_blocks(vlen, {threads}), static_cast<BlockBody&&>(body));
}

/// §V chunked scheme over lane blocks: chunks are dealt round-robin in
/// lane groups of simd::kGroupLanes, and each group's chunk-start
/// recoveries run as one lane-batched solve (one pc per SIMD lane).
/// Tail groups batch what they can (recover4 for 4..7 leftover chunks
/// on the wide leg) and recover the rest scalar.  A non-positive chunk
/// falls back to collapsed_for_simd_blocks.
template <class BlockBody>
void collapsed_for_simd_blocks_chunked(const CollapsedEval& cn, int vlen, i64 chunk,
                                       BlockBody&& body, int threads = 0) {
  run(cn, Schedule::simd_blocks_chunked(vlen, chunk, {threads}),
      static_cast<BlockBody&&>(body));
}

}  // namespace nrc
