#pragma once
// Baseline parallelization helpers and timing utilities shared by the
// kernels and the benchmark harnesses.
//
// The paper's baselines (§II, §VII) parallelize the *outermost* loop of
// the original nest with schedule(static) or schedule(dynamic); the
// kernels implement those directly with OpenMP pragmas.  This header
// provides the small shared pieces: a wall-clock timer and a
// median-of-repetitions measurement loop.

#include <omp.h>

#include <algorithm>
#include <functional>
#include <vector>

namespace nrc {

/// Seconds of wall-clock time for one call of `fn`.
template <class Fn>
double time_once(Fn&& fn) {
  const double t0 = omp_get_wtime();
  fn();
  return omp_get_wtime() - t0;
}

/// Median of `reps` timed runs after `warmup` untimed runs.
template <class Fn>
double time_median(Fn&& fn, int reps = 3, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> ts;
  ts.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) ts.push_back(time_once(fn));
  std::sort(ts.begin(), ts.end());
  return ts[ts.size() / 2];
}

/// Minimum of `reps` timed runs after `warmup` untimed runs.
/// On shared/virtualized hosts individual runs are regularly disturbed
/// by vCPU interference that no schedule can compensate; the minimum is
/// the standard robust estimator of the undisturbed execution time and
/// is what the figure harnesses report.
template <class Fn>
double time_best(Fn&& fn, int reps = 5, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = time_once(fn);
  for (int i = 1; i < reps; ++i) best = std::min(best, time_once(fn));
  return best;
}

}  // namespace nrc
