#include "analysis/nest_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "math/rational.hpp"
#include "pipeline/plan.hpp"
#include "support/error.hpp"

namespace nrc {

namespace {

// ---------------------------------------------------- saturating intervals
//
// The analyzer must survive adversarial bounds (that is its whole point),
// so every integer computation here saturates at +/-INT64_MAX instead of
// overflowing.  Ends are kept clamped to [-kSat, kSat]; one product of
// two clamped i64 values fits i128 comfortably, so a single widened
// multiply followed by a clamp is exact saturation.

constexpr i64 kSat = std::numeric_limits<i64>::max();

/// Headroom bound for the trip_i64_safe verdict: the executors compute
/// pc ends as pc_lo + chunk - 1 and lane strides as lane * warp_size, so
/// a total at or below 2^62 leaves every candidate Schedule's partition
/// arithmetic a 2x margin inside i64.
constexpr i64 kPartitionSafe = i64{1} << 62;

i64 sat(i128 v) {
  if (v > static_cast<i128>(kSat)) return kSat;
  if (v < -static_cast<i128>(kSat)) return -kSat;
  return static_cast<i64>(v);
}

i64 sat_add(i64 a, i64 b) { return sat(static_cast<i128>(a) + b); }
i64 sat_mul(i64 a, i64 b) { return sat(static_cast<i128>(a) * b); }

struct Interval {
  i64 lo = 0;
  i64 hi = 0;
  bool saturated() const { return lo <= -kSat || hi >= kSat; }
};

/// Interval evaluation of an affine expression over a variable box.
/// Returns false (out unspecified) when the expression references a
/// variable the box does not bind.
bool eval_interval(const AffineExpr& e, const std::map<std::string, Interval>& box,
                   Interval& out, std::string* missing) {
  Interval r{e.constant_term(), e.constant_term()};
  for (const auto& [name, coef] : e.coefficients()) {
    const auto it = box.find(name);
    if (it == box.end()) {
      if (missing) *missing = name;
      return false;
    }
    const Interval v = it->second;
    const i64 a = sat_mul(coef, coef >= 0 ? v.lo : v.hi);
    const i64 b = sat_mul(coef, coef >= 0 ? v.hi : v.lo);
    r.lo = sat_add(r.lo, a);
    r.hi = sat_add(r.hi, b);
  }
  out = r;
  return true;
}

// -------------------------------------------------------- diagnostic sugar

void diag(NestCertificate& cert, const char* code, LintSeverity sev, int level,
          std::string message, std::string hint = {}) {
  cert.diagnostics.push_back(
      Diagnostic{code, sev, level, std::move(message), std::move(hint)});
}

// ------------------------------------------------------- the interval pass

/// Results of the parameter-bound interval propagation over the nest:
/// per-variable boxes, per-level extent intervals and the trip-count
/// product — everything checks (a), (c) and (d) consume.  Pure (no
/// collapse, no bind), so it runs even for nests that fail to build.
struct IntervalPass {
  bool evaluated = false;  ///< false: a bound referenced an unbound name
  std::map<std::string, Interval> box;   ///< loop vars + params (+ "pc")
  std::vector<Interval> extent;          ///< per level, clamped at >= 0
  Interval total{1, 1};                  ///< product of extents
};

IntervalPass run_interval_pass(const NestSpec& nest, const ParamMap& params,
                               NestCertificate& cert) {
  IntervalPass ip;
  for (const auto& [name, v] : params) ip.box[name] = Interval{v, v};

  ip.evaluated = true;
  for (int k = 0; k < nest.depth(); ++k) {
    const Loop& loop = nest.at(k);
    Interval lo, hi, ext;
    std::string missing;
    // The extent is evaluated on upper - lower as ONE expression so that
    // shared terms cancel exactly (interval subtraction of the two bound
    // intervals would lose the correlation and report spurious emptiness
    // on every triangular nest).
    if (!eval_interval(loop.lower, ip.box, lo, &missing) ||
        !eval_interval(loop.upper, ip.box, hi, &missing) ||
        !eval_interval(loop.upper - loop.lower, ip.box, ext, &missing)) {
      diag(cert, "NRC-E001", LintSeverity::Error, k,
           "bound of loop '" + loop.var + "' references unbound name '" + missing + "'",
           "bind a value for '" + missing + "' or declare it as an outer iterator");
      ip.evaluated = false;
      return ip;
    }

    if (ext.hi <= 0) {
      diag(cert, "NRC-W004", LintSeverity::Error, k,
           "loop '" + loop.var + "' is empty for every outer iteration (extent <= " +
               std::to_string(ext.hi) + ")",
           "the collapsed domain is empty; bind() will refuse this parameter set");
    } else if (ext.lo <= 0) {
      diag(cert, "NRC-W004", LintSeverity::Warn, k,
           "loop '" + loop.var + "' may be empty for some outer iterations (extent spans [" +
               std::to_string(ext.lo) + ", " + std::to_string(ext.hi) + "])",
           "empty rows are handled but waste recovery work; tighten the outer bounds "
           "if the domain allows");
    } else if (ext.lo == 1 && ext.hi == 1) {
      diag(cert, "NRC-W004", LintSeverity::Info, k,
           "loop '" + loop.var + "' always executes exactly once",
           "a singleton level adds a recovery solve per point for free; "
           "consider collapsing one level fewer");
    }

    ip.extent.push_back(Interval{std::max<i64>(ext.lo, 0), std::max<i64>(ext.hi, 0)});
    ip.total.lo = sat_mul(ip.total.lo, ip.extent.back().lo);
    ip.total.hi = sat_mul(ip.total.hi, ip.extent.back().hi);

    // Box entry for this variable: [min lower, max last value].  An
    // empty level contributes its lower-bound range so inner bounds
    // still evaluate to *something* conservative.
    Interval var{lo.lo, std::max(lo.lo, sat_add(hi.hi, -1))};
    ip.box[loop.var] = var;
  }
  return ip;
}

// ------------------------------------------- emitted-C coefficient bounds

/// Magnitude bound of one level's den-scaled coefficient polynomial over
/// the box, in double (saturates to +inf; compared against thresholds
/// well below 2^63, so +inf simply means "does not fit").
double poly_magnitude_bound(const Polynomial& p, i64 den_scale,
                            const std::map<std::string, Interval>& box) {
  double total = 0.0;
  for (const auto& [mono, coef] : p.terms()) {
    double term = std::fabs(coef.to_double()) * static_cast<double>(den_scale);
    for (const auto& [var, exp] : mono.factors()) {
      const auto it = box.find(var);
      // An unbound name here means the interval pass bailed; treat as
      // unbounded so the check conservatively refuses.
      const double m =
          it == box.end()
              ? std::numeric_limits<double>::infinity()
              : static_cast<double>(std::max(std::llabs(it->second.lo),
                                             std::llabs(it->second.hi)));
      for (int e = 0; e < exp; ++e) term *= m;
    }
    total += term;
  }
  return total;
}

/// (a) on a successfully bound plan: cert.total_trip already holds the
/// exact bind-time count; certify partition headroom or refuse.  Error,
/// not warn: a parallel executor computing a chunk end as pc + chunk - 1
/// past kPartitionSafe is signed-overflow UB, so serving such a plan is
/// refused outright under PlanCache::set_reject_errors.
void check_partition_headroom(NestCertificate& cert) {
  if (cert.total_trip > kPartitionSafe) {
    diag(cert, "NRC-W001", LintSeverity::Error, -1,
         "trip count " + std::to_string(cert.total_trip) +
             " leaves under 2x headroom for chunk/tile/grain partition arithmetic",
         "schedules computing pc + chunk ends may overflow; run serially or "
         "shrink the domain");
  } else {
    cert.trip_i64_safe = true;
  }
}

// -------------------------------------------------- the bound-plan checks

/// Checks (b), (c), (d) over a successfully bound plan.  `ip` supplies
/// the variable boxes; `cert.total_trip` is already the exact bind-time
/// trip count.
void analyze_bound_plan(NestCertificate& cert, const Collapsed& col,
                        const CollapsedEval& ev, IntervalPass& ip) {
  const int depth = ev.depth();
  ip.box["pc"] = Interval{1, cert.total_trip};

  // The emitted C evaluates the Horner guard in long long; certify a 2x
  // headroom below 2^63 like the partition check does.
  const double kEmitSafe = static_cast<double>(i64{1} << 62);
  // Margin gate for certifying the cubic trig path: the Cardano/Viete
  // estimate's error grows with the coefficient magnitudes, and the
  // exact guard only absorbs +/-16; below this slot bound the estimate
  // error is orders of magnitude under the guard radius (the
  // differential fuzzer cross-validates the claim end to end).
  const double kCubicCertifyBound = 1.0e9;

  const std::vector<LevelFormula>& formulas = col.levels();

  bool all_f64 = true;
  bool all_emit = true;
  for (int k = 0; k < depth; ++k) {
    LevelReport r;
    r.solver = ev.solver_kind(k);
    if (static_cast<size_t>(k) < ip.extent.size()) {
      r.extent_min = ip.extent[static_cast<size_t>(k)].lo;
      r.extent_max = ip.extent[static_cast<size_t>(k)].hi;
    }

    // ---- (b) proven-exact f64 recovery, predicting zero fallbacks.
    const char* why_not_f64 = nullptr;
    switch (r.solver) {
      case LevelSolverKind::InnermostLinear:
      case LevelSolverKind::ExactDivision:
        // Integer-exact arithmetic end to end; no guard loop to fail.
        r.f64_exact = true;
        break;
      case LevelSolverKind::Quadratic:
      case LevelSolverKind::Cubic: {
        const auto it = ip.box.find(col.nest().at(k).var);
        const double slot_bound =
            it == ip.box.end()
                ? std::numeric_limits<double>::infinity()
                : static_cast<double>(std::max(std::llabs(it->second.lo),
                                               std::llabs(it->second.hi)));
        const bool margin_ok = r.solver == LevelSolverKind::Quadratic
                                   ? true
                                   : slot_bound < kCubicCertifyBound;
        if (!ev.guards_provably_f64(k))
          why_not_f64 = "the f64-guard proof failed (an intermediate may reach 2^53)";
        else if (!margin_ok)
          why_not_f64 = "index magnitudes too large to certify the trig estimate";
        r.f64_exact = why_not_f64 == nullptr;
        break;
      }
      case LevelSolverKind::Quartic:
        diag(cert, "NRC-I002", LintSeverity::Info, k,
             "quartic level: the Ferrari estimate may demote to bytecode at "
             "degenerate points (counted in RecoveryStats::quartic_demoted)",
             "demotion is exact but slower; a Search-free certificate is not "
             "available for degree-4 levels");
        why_not_f64 = "quartic levels may demote per point";
        break;
      case LevelSolverKind::Program:
      case LevelSolverKind::Interpreted:
      case LevelSolverKind::Search:
        diag(cert, "NRC-I001", LintSeverity::Info, k,
             std::string("level lowers to ") + level_solver_kind_name(r.solver) +
                 ": every recovery pays " +
                 (r.solver == LevelSolverKind::Search
                      ? "an exact binary search over the level range"
                      : r.solver == LevelSolverKind::Interpreted
                            ? "a heap-allocating generic interpreter pass"
                            : "a bytecode program evaluation"),
             "prefer schedules with few recoveries (row_segments, per_thread); "
             "auto_select already weighs this");
        why_not_f64 = "no closed-form certificate for this solver";
        break;
    }
    if (!r.f64_exact) {
      all_f64 = false;
      if (why_not_f64 != nullptr &&
          (r.solver == LevelSolverKind::Quadratic || r.solver == LevelSolverKind::Cubic)) {
        diag(cert, "NRC-W002", LintSeverity::Warn, k,
             std::string("f64 guard path not certified: ") + why_not_f64,
             "recovery stays exact through the checked-__int128 reference guard, "
             "at higher per-point cost");
      }
    }

    // ---- (c) emitted-C coefficient arithmetic fits long long.
    //
    // The emitter computes den-scaled coefficients A_e and the Horner
    // guard A(t) in long long; bound every |A_e| and the full Horner sum
    // over the box (t ranges over the level variable +/- the guard
    // correction radius).  Levels without a usable formula are never
    // emitted (the emitter throws SolveError), so they are vacuously
    // safe here — the I001 note above already flags them.
    r.coeff_i64 = true;
    if (static_cast<size_t>(k) < formulas.size() &&
        !formulas[static_cast<size_t>(k)].coeffs.empty()) {
      const LevelFormula& f = formulas[static_cast<size_t>(k)];
      i64 den = 1;
      for (const Polynomial& c : f.coeffs) den = lcm_i64(den, c.denominator_lcm());
      const auto var_it = ip.box.find(col.nest().at(k).var);
      double x = var_it == ip.box.end()
                     ? std::numeric_limits<double>::infinity()
                     : static_cast<double>(std::max(std::llabs(var_it->second.lo),
                                                    std::llabs(var_it->second.hi)));
      x += 32.0;  // guard correction radius, with margin
      double horner = 0.0;
      for (size_t e = f.coeffs.size(); e-- > 0;) {
        const double ae = poly_magnitude_bound(f.coeffs[e], den, ip.box);
        horner = horner * x + ae;
        if (ae >= kEmitSafe) r.coeff_i64 = false;
      }
      if (horner >= kEmitSafe) r.coeff_i64 = false;
      if (!r.coeff_i64) {
        all_emit = false;
        char hb[32];
        std::snprintf(hb, sizeof(hb), "%.3g", horner);
        diag(cert, "NRC-W003", LintSeverity::Warn, k,
             "emitted coefficient/guard arithmetic may exceed long long "
             "(level-equation Horner bound ~" + std::string(hb) + ")",
             "emit with the nrc_wide (__int128) guard enabled, or shrink the "
             "parameter magnitudes");
      }
    }

    cert.levels.push_back(r);
  }

  cert.exact_f64 = all_f64 && !cert.total_saturated;
  cert.emit_i64_safe = all_emit && !cert.total_saturated;
}

}  // namespace

// ----------------------------------------------------------- public types

const char* lint_severity_name(LintSeverity s) {
  switch (s) {
    case LintSeverity::Info: return "info";
    case LintSeverity::Warn: return "warn";
    case LintSeverity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::string s = std::string(lint_severity_name(severity)) + " " + code;
  if (level >= 0) s += " [level " + std::to_string(level) + "]";
  s += ": " + message;
  if (!hint.empty()) s += " (hint: " + hint + ")";
  return s;
}

LintSeverity NestCertificate::max_severity() const {
  LintSeverity m = LintSeverity::Info;
  for (const Diagnostic& d : diagnostics)
    if (static_cast<int>(d.severity) > static_cast<int>(m)) m = d.severity;
  return m;
}

bool NestCertificate::has(const std::string& code) const {
  return find(code) != nullptr;
}

const Diagnostic* NestCertificate::find(const std::string& code) const {
  for (const Diagnostic& d : diagnostics)
    if (d.code == code) return &d;
  return nullptr;
}

std::string NestCertificate::str() const {
  std::string s = "lint: ";
  if (diagnostics.empty()) {
    s += "clean";
  } else {
    s += std::to_string(diagnostics.size()) +
         (diagnostics.size() == 1 ? " diagnostic" : " diagnostics") + " (max " +
         lint_severity_name(max_severity()) + ")";
  }
  const auto yn = [](bool b) { return b ? "yes" : "no"; };
  s += std::string("; certificates: trip-i64 ") + yn(trip_i64_safe) + ", f64-exact " +
       yn(exact_f64) + ", emit-i64 " + yn(emit_i64_safe) + "\n";
  for (const Diagnostic& d : diagnostics) s += "  " + d.str() + "\n";
  return s;
}

// ---------------------------------------------------------- entry points

NestCertificate analyze_nest(const NestSpec& nest, const ParamMap& params,
                             const CollapseOptions& opts) {
  NestCertificate cert;
  try {
    nest.validate();
  } catch (const Error& e) {
    diag(cert, "NRC-E001", LintSeverity::Error, -1,
         std::string("nest rejected: ") + e.what(),
         "fix the nest structure; see NestSpec::validate()");
    return cert;
  }

  IntervalPass ip = run_interval_pass(nest, params, cert);

  // (a) The structural half of the trip-count check runs before the
  // build so an adversarial domain gets its verdict even when bind()
  // refuses it: saturation of the extent product proves the total may
  // not fit i64 at all.
  if (ip.evaluated && ip.total.hi >= kSat) {
    cert.total_trip = kSat;
    cert.total_saturated = true;
    diag(cert, "NRC-W001", LintSeverity::Error, -1,
         "total trip count may exceed i64 (extent product saturates)",
         "shrink the parameter magnitudes or collapse fewer levels");
  }

  try {
    const Collapsed col = collapse(nest, opts);
    const CollapsedEval ev = col.bind(params);
    cert.bind_ok = true;
    cert.total_trip = ev.trip_count();
    check_partition_headroom(cert);
    analyze_bound_plan(cert, col, ev, ip);
  } catch (const Error& e) {
    diag(cert, "NRC-E001", LintSeverity::Error, -1,
         std::string("collapse/bind failed: ") + e.what(),
         "the diagnostics above explain structural causes where the interval "
         "pass found any");
  }
  return cert;
}

NestCertificate analyze(const CollapsePlan& plan) {
  NestCertificate cert;
  IntervalPass ip = run_interval_pass(plan.nest(), plan.params(), cert);
  cert.bind_ok = true;
  cert.total_trip = plan.eval().trip_count();
  if (ip.evaluated && ip.total.hi >= kSat) cert.total_saturated = true;
  check_partition_headroom(cert);
  analyze_bound_plan(cert, plan.collapsed(), plan.eval(), ip);
  return cert;
}

NestCertificate CollapsePlan::analyze() const { return nrc::analyze(*this); }

}  // namespace nrc
