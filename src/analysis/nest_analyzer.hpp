#pragma once
// Static nest analyzer: bind-time certificates for the collapse pipeline.
//
// Every fast path in the library sits under an implicit magnitude bound —
// the f64 guard proof assumes intermediates below 2^53, the emitted C
// computes coefficients in long long, the executors partition an i64 trip
// count — and historically those bounds were discovered *dynamically*
// (guard demotions, UBSan in the fuzzers).  The analyzer proves or
// refutes them *statically*, before a plan runs, is emitted, cached or
// served: it propagates interval bounds over the nest's affine bounds and
// the collapse's level-equation coefficients and renders the result as a
// NestCertificate — per-check verdicts plus structured diagnostics with
// stable codes:
//
//   NRC-W001  trip-count-overflow        error/warn
//   NRC-W002  f64-guard-inexact          warn
//   NRC-W003  wide-coefficient-needs-i128 warn
//   NRC-W004  degenerate-level           info/warn/error
//   NRC-W005  serve-limit                warn  (attached by the serve layer)
//   NRC-I001  costly-solver              info
//   NRC-I002  quartic-demotion-possible  info
//   NRC-E001  bind-failed                error
//
// The verdicts are *checkable*: the differential fuzzer cross-validates
// them against runtime behaviour (a nest certified f64-exact must report
// zero guard fallbacks and zero quartic demotions; a nest certified
// i64-safe must match the odometer reference), so a certificate is a
// promise, not a heuristic.  Soundness over completeness: the analyzer
// may decline to certify a nest that happens to behave (no false
// negatives are *required*), but it must never certify a nest that
// misbehaves.
//
// Entry points: analyze_nest() runs the whole pipeline defensively (it
// never throws — a failed collapse/bind becomes NRC-E001), analyze()
// inspects an already-built plan, and CollapsePlan::analyze() forwards
// here.  Consumers: the describe() lint block, the nrcd "lint" verb,
// PlanCache::set_reject_errors, EmitOptions::certificate and the
// standalone nrclint CLI.

#include <string>
#include <vector>

#include "core/collapse.hpp"

namespace nrc {

class CollapsePlan;

enum class LintSeverity { Info, Warn, Error };

const char* lint_severity_name(LintSeverity s);

/// One structured finding.  `code` is stable across releases (tools and
/// CI gates key on it); `message` and `hint` are human-facing.
struct Diagnostic {
  std::string code;  ///< e.g. "NRC-W001"
  LintSeverity severity = LintSeverity::Info;
  int level = -1;  ///< nest level (outermost 0), -1 for whole-nest findings
  std::string message;
  std::string hint;  ///< how to fix / work around; may be empty

  /// One-line rendering: "warn NRC-W002 [level 1]: ... (hint: ...)".
  std::string str() const;
};

/// Per-level facts the checks derived (reporting; the verdicts below are
/// the conjunctions consumers act on).
struct LevelReport {
  LevelSolverKind solver = LevelSolverKind::Search;
  bool f64_exact = false;   ///< counts toward the exact_f64 verdict
  bool coeff_i64 = false;   ///< emitted-C coefficients fit long long
  i64 extent_min = 0;       ///< interval of upper-lower over the domain box
  i64 extent_max = 0;
};

/// The analyzer's output: verdicts + diagnostics for one (nest, params,
/// options) triple.  A plain value; cheap to copy.
struct NestCertificate {
  /// collapse()+bind() succeeded; when false the only reliable fields
  /// are `diagnostics` (containing NRC-E001 and any interval findings)
  /// and the interval-derived level extents.
  bool bind_ok = false;

  /// (a) The total trip count and every candidate Schedule's partition
  /// arithmetic (chunk ends, tile starts, grain splits) provably fit
  /// i64 — the executors cannot overflow a pc computation.
  bool trip_i64_safe = false;

  /// (b) Every level's recovery is certified to run its proven-exact
  /// double path with zero guard fallbacks and zero quartic demotions —
  /// RecoveryStats{fallback, quartic_demoted} must stay 0 at runtime.
  bool exact_f64 = false;

  /// (c) The emitted C's coefficient/Horner arithmetic fits long long on
  /// every level; no nrc_wide (__int128) needed.
  bool emit_i64_safe = false;

  /// Trip count, saturated at INT64_MAX when the interval pass proved it
  /// may not fit (total_saturated set; NRC-W001 raised).
  i64 total_trip = 0;
  bool total_saturated = false;

  std::vector<LevelReport> levels;
  std::vector<Diagnostic> diagnostics;

  /// Info when `diagnostics` is empty.
  LintSeverity max_severity() const;
  bool has(const std::string& code) const;
  const Diagnostic* find(const std::string& code) const;

  /// The multi-line lint block ("lint: 2 diagnostics (max warn), ...\n"
  /// plus one indented line per diagnostic) that describe() and the
  /// serve lint verb render.
  std::string str() const;
};

/// Analyze the full pipeline for (nest, params, opts).  Never throws:
/// model violations, missing parameters, empty domains and overflow all
/// become diagnostics (NRC-E001 carries the underlying message), and the
/// interval pass runs regardless so degenerate/overflowing nests still
/// get their structural findings.
NestCertificate analyze_nest(const NestSpec& nest, const ParamMap& params,
                             const CollapseOptions& opts = {});

/// Analyze an already-built plan (skips the defensive rebuild; bind_ok
/// is true by construction).
NestCertificate analyze(const CollapsePlan& plan);

}  // namespace nrc
