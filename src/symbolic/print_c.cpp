#include "symbolic/print_c.hpp"

#include "support/error.hpp"

namespace nrc {
namespace {

std::string var_ref(const std::string& name, const CPrintOptions& opt, bool cast) {
  auto it = opt.rename.find(name);
  const std::string& id = it == opt.rename.end() ? name : it->second;
  if (cast && !opt.var_cast.empty()) return opt.var_cast + id;
  return id;
}

std::string monomial_c(const Monomial& m, const CPrintOptions& opt, bool cast) {
  std::string s;
  for (const auto& [v, e] : m.factors()) {
    for (int k = 0; k < e; ++k) {
      if (!s.empty()) s += "*";
      s += var_ref(v, opt, cast);
    }
  }
  return s;
}

}  // namespace

std::string print_poly_c(const Polynomial& p, const CPrintOptions& opt, bool integer_arith) {
  if (p.is_zero()) return "0";
  const i64 den = p.denominator_lcm();
  std::string body;
  for (auto it = p.terms().rbegin(); it != p.terms().rend(); ++it) {
    const auto& [m, c] = *it;
    // Scaled integer coefficient over the common denominator.
    const i64 num = c.num() * (den / c.den());
    i64 shown = num;
    if (body.empty()) {
      if (num < 0) {
        body += "-";
        shown = -num;
      }
    } else {
      body += num >= 0 ? " + " : " - ";
      if (num < 0) shown = -num;
    }
    const std::string mono = monomial_c(m, opt, /*cast=*/!integer_arith);
    if (m.is_constant()) {
      body += std::to_string(shown);
    } else if (shown == 1) {
      body += mono;
    } else {
      body += std::to_string(shown) + "*" + mono;
    }
  }
  if (den == 1) return "(" + body + ")";
  if (integer_arith) return "((" + body + ") / " + std::to_string(den) + ")";
  return "((" + body + ") / " + std::to_string(den) + ".0)";
}

namespace {

std::string render(const ExprPtr& n, const CPrintOptions& opt) {
  if (!n) throw SolveError("print_c: empty expression");
  switch (n->op) {
    case ExprOp::Const: {
      const Rational& c = n->cval;
      if (c.is_integer()) {
        return c.num() < 0 ? "(" + std::to_string(c.num()) + ")" : std::to_string(c.num());
      }
      return "(" + std::to_string(c.num()) + ".0/" + std::to_string(c.den()) + ".0)";
    }
    case ExprOp::Cis:
      // e^{2*pi*I*k/n}; only meaningful in complex mode.
      return "cexp(2.0*M_PI*I*" + std::to_string(n->cis_k) + ".0/" + std::to_string(n->cis_n) +
             ".0)";
    case ExprOp::Poly:
      return print_poly_c(n->poly, opt);
    case ExprOp::Add:
      return "(" + render(n->a, opt) + " + " + render(n->b, opt) + ")";
    case ExprOp::Sub:
      return "(" + render(n->a, opt) + " - " + render(n->b, opt) + ")";
    case ExprOp::Mul:
      return "(" + render(n->a, opt) + " * " + render(n->b, opt) + ")";
    case ExprOp::Div:
      return "(" + render(n->a, opt) + " / " + render(n->b, opt) + ")";
    case ExprOp::Neg:
      return "(-" + render(n->a, opt) + ")";
    case ExprOp::Sqrt:
      return (opt.complex_mode ? "csqrt(" : "sqrt(") + render(n->a, opt) + ")";
    case ExprOp::Cbrt:
      if (opt.complex_mode) return "cpow(" + render(n->a, opt) + ", 1.0/3.0)";
      return "cbrt(" + render(n->a, opt) + ")";
  }
  throw SolveError("print_c: unknown op");
}

}  // namespace

std::string print_c(const Expr& e, const CPrintOptions& opt) { return render(e.ptr(), opt); }

}  // namespace nrc
