#include "symbolic/print_c.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace nrc {
namespace {

std::string var_ref(const std::string& name, const CPrintOptions& opt,
                    const std::string& cast) {
  auto it = opt.rename.find(name);
  const std::string& id = it == opt.rename.end() ? name : it->second;
  if (!cast.empty()) return cast + id;
  return id;
}

std::string monomial_c(const Monomial& m, const CPrintOptions& opt,
                       const std::string& cast) {
  std::string s;
  for (const auto& [v, e] : m.factors()) {
    for (int k = 0; k < e; ++k) {
      if (!s.empty()) s += "*";
      s += var_ref(v, opt, cast);
    }
  }
  return s;
}

}  // namespace

std::string print_poly_c(const Polynomial& p, const CPrintOptions& opt, bool integer_arith) {
  if (p.is_zero()) return "0";
  const i64 den = p.denominator_lcm();
  std::string body;
  for (auto it = p.terms().rbegin(); it != p.terms().rend(); ++it) {
    const auto& [m, c] = *it;
    // Scaled integer coefficient over the common denominator.
    const i64 num = c.num() * (den / c.den());
    i64 shown = num;
    if (body.empty()) {
      if (num < 0) {
        body += "-";
        shown = -num;
      }
    } else {
      body += num >= 0 ? " + " : " - ";
      if (num < 0) shown = -num;
    }
    const std::string mono =
        monomial_c(m, opt, integer_arith ? opt.int_var_cast : opt.var_cast);
    if (m.is_constant()) {
      body += std::to_string(shown);
    } else if (shown == 1) {
      body += mono;
    } else {
      body += std::to_string(shown) + "*" + mono;
    }
  }
  if (den == 1) return "(" + body + ")";
  if (integer_arith) return "((" + body + ") / " + std::to_string(den) + ")";
  return "((" + body + ") / " + std::to_string(den) + ".0)";
}

namespace {

std::string render(const ExprPtr& n, const CPrintOptions& opt) {
  if (!n) throw SolveError("print_c: empty expression");
  switch (n->op) {
    case ExprOp::Const: {
      const Rational& c = n->cval;
      if (c.is_integer()) {
        return c.num() < 0 ? "(" + std::to_string(c.num()) + ")" : std::to_string(c.num());
      }
      return "(" + std::to_string(c.num()) + ".0/" + std::to_string(c.den()) + ".0)";
    }
    case ExprOp::Cis:
      // e^{2*pi*I*k/n}; only meaningful in complex mode.
      return "cexp(2.0*M_PI*I*" + std::to_string(n->cis_k) + ".0/" + std::to_string(n->cis_n) +
             ".0)";
    case ExprOp::Poly:
      return print_poly_c(n->poly, opt);
    case ExprOp::Add:
      return "(" + render(n->a, opt) + " + " + render(n->b, opt) + ")";
    case ExprOp::Sub:
      return "(" + render(n->a, opt) + " - " + render(n->b, opt) + ")";
    case ExprOp::Mul:
      return "(" + render(n->a, opt) + " * " + render(n->b, opt) + ")";
    case ExprOp::Div:
      return "(" + render(n->a, opt) + " / " + render(n->b, opt) + ")";
    case ExprOp::Neg:
      return "(-" + render(n->a, opt) + ")";
    case ExprOp::Sqrt:
      return (opt.complex_mode ? "csqrt(" : "sqrt(") + render(n->a, opt) + ")";
    case ExprOp::Cbrt:
      if (opt.complex_mode) return "cpow(" + render(n->a, opt) + ", 1.0/3.0)";
      return "cbrt(" + render(n->a, opt) + ")";
  }
  throw SolveError("print_c: unknown op");
}

}  // namespace

std::string print_c(const Expr& e, const CPrintOptions& opt) { return render(e.ptr(), opt); }

namespace {

/// Hexadecimal double literal of `v` — bit-exact in any C99 compiler,
/// immune to the double-rounding a decimal literal could pick up going
/// through a long double parse.
std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

std::string real_solver_helpers_c() {
  // The constants below are the double values of the long double
  // literals in core/real_solvers.hpp (the F = double instantiations
  // the lane engines run), rendered as hex floats so the C side parses
  // the identical bits.
  const std::string k2pi3 = hex_double(static_cast<double>(2.0943951023931954923084289221863353L));
  const std::string r3o2 = hex_double(static_cast<double>(0.86602540378443864676372317075293618L));
  const std::string eps = hex_double(static_cast<double>(1e-9L));
  const std::string lim_lo = hex_double(static_cast<double>(-9.2e18L));
  const std::string lim_hi = hex_double(static_cast<double>(9.2e18L));
  std::string s;
  s += "#ifndef NRC_REAL_SOLVERS_C\n";
  s += "#define NRC_REAL_SOLVERS_C\n";
  s += "/* Guarded real-arithmetic root estimators (Cardano/Viete and Ferrari),\n";
  s += " * the C transliteration of the library's core/real_solvers.hpp at double\n";
  s += " * precision.  Estimates feed floor() + an exact integer correction guard;\n";
  s += " * a 0 return means the formula degenerated here and the caller must fall\n";
  s += " * back to its demotion guard.  No C99 complex arithmetic anywhere. */\n";
  s += "static double nrc_cardano_re(double b, double c, double d, int branch,\n";
  s += "                             double *im) {\n";
  s += "  const double p = c - b * b / 3.0;\n";
  s += "  const double q = 2.0 * b * b * b / 27.0 - b * c / 3.0 + d;\n";
  s += "  const double delta = q * q / 4.0 + p * p * p / 27.0;\n";
  s += "  double re, iv = 0.0;\n";
  s += "  if (delta < 0.0) {\n";
  s += "    const double m = sqrt(-p / 3.0);\n";
  s += "    const double phi = atan2(sqrt(-delta), -q / 2.0);\n";
  s += "    re = 2.0 * m * cos(phi / 3.0 + " + k2pi3 + " * (double)branch) - b / 3.0;\n";
  s += "  } else {\n";
  s += "    const double v = -q / 2.0 + sqrt(delta);\n";
  s += "    const double m = cbrt(fabs(v));\n";
  s += "    static const double cpos[3] = {1.0, -0.5, -0.5};\n";
  s += "    static const double spos[3] = {0.0, " + r3o2 + ", -" + r3o2 + "};\n";
  s += "    static const double cneg[3] = {0.5, -1.0, 0.5};\n";
  s += "    static const double sneg[3] = {" + r3o2 + ", 0.0, -" + r3o2 + "};\n";
  s += "    const double cosw = v < 0.0 ? cneg[branch] : cpos[branch];\n";
  s += "    const double sinw = v < 0.0 ? sneg[branch] : spos[branch];\n";
  s += "    const double po3m = p / (3.0 * m);\n";
  s += "    re = (m - po3m) * cosw - b / 3.0;\n";
  s += "    iv = (m + po3m) * sinw;\n";
  s += "  }\n";
  s += "  *im = iv;\n";
  s += "  return re;\n";
  s += "}\n";
  s += "static int nrc_est_in_range(double root) {\n";
  s += "  return isfinite(root) && root >= " + lim_lo + " && root <= " + lim_hi + ";\n";
  s += "}\n";
  s += "static int nrc_cubic_est(double a0, double a1, double a2, double a3,\n";
  s += "                         int branch, long long *est) {\n";
  s += "  double im;\n";
  s += "  double re;\n";
  s += "  if (a3 == 0.0) return 0;\n";
  s += "  re = nrc_cardano_re(a2 / a3, a1 / a3, a0 / a3, branch, &im);\n";
  s += "  if (!nrc_est_in_range(re)) return 0;\n";
  s += "  *est = (long long)floor(re + " + eps + ");\n";
  s += "  return 1;\n";
  s += "}\n";
  s += "static int nrc_ferrari_est(double A0, double A1, double A2, double A3,\n";
  s += "                           double A4, int branch, long long *est) {\n";
  s += "  if (A4 == 0.0) return 0;\n";
  s += "  {\n";
  s += "    const double b = A3 / A4;\n";
  s += "    const double c = A2 / A4;\n";
  s += "    const double d = A1 / A4;\n";
  s += "    const double e = A0 / A4;\n";
  s += "    /* Depressed quartic y^4 + p y^2 + q y + r (x = y - b/4). */\n";
  s += "    const double p = c - b * b * (3.0 / 8.0);\n";
  s += "    const double q = d - b * c / 2.0 + b * b * b / 8.0;\n";
  s += "    const double r = e - b * d / 4.0 + b * b * c / 16.0 -\n";
  s += "                     b * b * b * b * (3.0 / 256.0);\n";
  s += "    const int rb = branch / 4;\n";
  s += "    const int qb = branch % 4;\n";
  s += "    /* Resolvent cubic w^3 + 2p w^2 + (p^2 - 4r) w - q^2 = 0. */\n";
  s += "    double wi;\n";
  s += "    const double wr = nrc_cardano_re(2.0 * p, p * p - 4.0 * r, -(q * q), rb, &wi);\n";
  s += "    /* alpha = principal complex sqrt of w, unfolded to real pairs;\n";
  s += "     * q/alpha = q*conj(alpha)/|w|. */\n";
  s += "    const double aw = hypot(wr, wi);\n";
  s += "    const double ar = sqrt((aw + wr) / 2.0);\n";
  s += "    const double ai = copysign(sqrt((aw - wr) / 2.0), wi);\n";
  s += "    const double qar = q * ar / aw;\n";
  s += "    const double qai = -q * ai / aw;\n";
  s += "    const double sg = qb < 2 ? -1.0 : 1.0;\n";
  s += "    const double Dr = wr - 2.0 * (p + wr + sg * qar);\n";
  s += "    const double Di = -wi - 2.0 * sg * qai;\n";
  s += "    const double sr = sqrt((hypot(Dr, Di) + Dr) / 2.0);\n";
  s += "    const double y = ((qb < 2 ? -ar : ar) + ((qb & 1) ? -sr : sr)) / 2.0;\n";
  s += "    const double root = y - b / 4.0;\n";
  s += "    if (!nrc_est_in_range(root)) return 0;\n";
  s += "    *est = (long long)floor(root + " + eps + ");\n";
  s += "  }\n";
  s += "  return 1;\n";
  s += "}\n";
  s += "#endif /* NRC_REAL_SOLVERS_C */\n";
  return s;
}

}  // namespace nrc
