#include "symbolic/root_formula.hpp"

#include <vector>

#include "math/roots.hpp"
#include "support/error.hpp"

namespace nrc {
namespace {

Expr k(i64 n) { return Expr::constant(n); }
Expr frac(i64 n, i64 d) { return Expr::constant(Rational(n, d)); }

Expr linear_root(std::span<const Expr> a) { return -a[0] / a[1]; }

Expr quadratic_root(std::span<const Expr> a, int branch) {
  const Expr s = (a[1] * a[1] - k(4) * a[2] * a[0]).sqrt();
  return branch == 0 ? (-a[1] + s) / (k(2) * a[2]) : (-a[1] - s) / (k(2) * a[2]);
}

// Cardano on the monic cubic x^3 + b x^2 + c x + d; mirrors
// math/roots.cpp::cardano (generic path; the u->0 degeneration is handled
// at evaluation time by the exact-search fallback).
Expr cardano_expr(const Expr& b, const Expr& c, const Expr& d, int branch) {
  const Expr p = c - b * b * frac(1, 3);
  const Expr q = b * b * b * frac(2, 27) - b * c * frac(1, 3) + d;
  const Expr delta = q * q * frac(1, 4) + p * p * p * frac(1, 27);
  const Expr u = ((-q) * frac(1, 2) + delta.sqrt()).cbrt();
  const Expr uk = u * Expr::cis(branch, 3);
  const Expr t = uk - p / (k(3) * uk);
  return t - b * frac(1, 3);
}

Expr cubic_root(std::span<const Expr> a, int branch) {
  return cardano_expr(a[2] / a[3], a[1] / a[3], a[0] / a[3], branch);
}

// Ferrari; mirrors math/roots.cpp::root_quartic, branch = 4*resolvent + quad.
Expr quartic_root(std::span<const Expr> a, int branch) {
  const Expr b = a[3] / a[4];
  const Expr c = a[2] / a[4];
  const Expr d = a[1] / a[4];
  const Expr e = a[0] / a[4];

  const Expr p = c - b * b * frac(3, 8);
  const Expr q = d - b * c * frac(1, 2) + b * b * b * frac(1, 8);
  const Expr r = e - b * d * frac(1, 4) + b * b * c * frac(1, 16) - b * b * b * b * frac(3, 256);

  const int resolvent_branch = branch / 4;
  const int quad_branch = branch % 4;

  // Resolvent cubic w^3 + 2p w^2 + (p^2 - 4r) w - q^2 = 0 (monic).
  const Expr w = cardano_expr(k(2) * p, p * p - k(4) * r, -(q * q), resolvent_branch);
  const Expr alpha = w.sqrt();
  const Expr beta = (p + w - q / alpha) * frac(1, 2);
  const Expr gamma = (p + w + q / alpha) * frac(1, 2);

  Expr y;
  switch (quad_branch) {
    case 0:
      y = (-alpha + (alpha * alpha - k(4) * beta).sqrt()) * frac(1, 2);
      break;
    case 1:
      y = (-alpha - (alpha * alpha - k(4) * beta).sqrt()) * frac(1, 2);
      break;
    case 2:
      y = (alpha + (alpha * alpha - k(4) * gamma).sqrt()) * frac(1, 2);
      break;
    default:
      y = (alpha - (alpha * alpha - k(4) * gamma).sqrt()) * frac(1, 2);
      break;
  }
  return y - b * frac(1, 4);
}

}  // namespace

Expr root_branch_expr(std::span<const Expr> coeffs, int branch) {
  const int degree = static_cast<int>(coeffs.size()) - 1;
  if (branch < 0 || branch >= root_branch_count(degree))
    throw SolveError("root_branch_expr: branch out of range for degree " +
                     std::to_string(degree));
  switch (degree) {
    case 1:
      return linear_root(coeffs);
    case 2:
      return quadratic_root(coeffs, branch);
    case 3:
      return cubic_root(coeffs, branch);
    case 4:
      return quartic_root(coeffs, branch);
    default:
      throw DegreeError("root_branch_expr: unsupported degree " + std::to_string(degree));
  }
}

Expr root_branch_expr(std::span<const Polynomial> coeffs, int branch) {
  std::vector<Expr> es;
  es.reserve(coeffs.size());
  for (const auto& p : coeffs) es.push_back(Expr::poly(p));
  return root_branch_expr(std::span<const Expr>(es), branch);
}

}  // namespace nrc
