#pragma once
// C source rendering of symbolic expressions.
//
// Reproduces the style of the paper's generated code: plain sqrt/floor
// for degree-2 recoveries (Fig. 3) and C99 complex csqrt/cpow/creal for
// degree >= 3 (Fig. 7), with (double) casts on the integer loop
// variables.

#include <map>
#include <string>

#include "symbolic/expr.hpp"

namespace nrc {

struct CPrintOptions {
  /// Use C99 _Complex math (csqrt/cpow/cexp); otherwise real sqrt/cbrt.
  bool complex_mode = false;
  /// Cast inserted before each integer variable occurrence, e.g. "(double)".
  std::string var_cast = "(double)";
  /// Cast applied to variables in integer_arith polynomials instead of
  /// var_cast; empty (the default) keeps plain integer arithmetic.  The
  /// emitter sets "(nrc_wide)" so guard/coefficient evaluation runs in
  /// __int128 where available (S-shifted nests overflow 64 bits).
  std::string int_var_cast;
  /// Variable renamings (library name -> C identifier).
  std::map<std::string, std::string> rename;
};

/// Render `e` as a C expression string (no trailing semicolon).
std::string print_c(const Expr& e, const CPrintOptions& opt = {});

/// Render a polynomial as a C expression.  Rational coefficients are
/// emitted over the polynomial's common denominator so the expression
/// stays in integer arithmetic until a final division:
///   (2*i*N + 2*j - i*i - 3*i) / 2   -- with casts per CPrintOptions.
/// When `integer_arith` is true the division uses C integer division
/// (exact for integer-valued polynomials such as trip counts) and each
/// variable takes `int_var_cast` instead of `var_cast` — empty by
/// default, i.e. plain integer arithmetic.
std::string print_poly_c(const Polynomial& p, const CPrintOptions& opt = {},
                         bool integer_arith = false);

/// C99 transliteration of the guarded real-arithmetic root estimators in
/// core/real_solvers.hpp at double precision (`nrc_cardano_re`,
/// `nrc_cubic_est`, `nrc_ferrari_est`), wrapped in a preprocessor guard
/// so several emitted functions can share one copy per translation
/// unit.  The generated code performs exactly the library's operations
/// in the library's order (magic constants are rendered as hexadecimal
/// double literals of the library's values), so on the same coefficient
/// set a compiled helper and cubic_estimate<double, double> /
/// ferrari_estimate<double, double> return byte-identical estimates —
/// the codegen round-trip property the executor fuzzer enforces.  The
/// estimators return 0 on degeneration (non-finite / out-of-range
/// roots); callers fall back to their demotion guard.  Requires
/// <math.h>; no C99 complex anywhere.
std::string real_solver_helpers_c();

}  // namespace nrc
