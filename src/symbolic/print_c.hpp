#pragma once
// C source rendering of symbolic expressions.
//
// Reproduces the style of the paper's generated code: plain sqrt/floor
// for degree-2 recoveries (Fig. 3) and C99 complex csqrt/cpow/creal for
// degree >= 3 (Fig. 7), with (double) casts on the integer loop
// variables.

#include <map>
#include <string>

#include "symbolic/expr.hpp"

namespace nrc {

struct CPrintOptions {
  /// Use C99 _Complex math (csqrt/cpow/cexp); otherwise real sqrt/cbrt.
  bool complex_mode = false;
  /// Cast inserted before each integer variable occurrence, e.g. "(double)".
  std::string var_cast = "(double)";
  /// Variable renamings (library name -> C identifier).
  std::map<std::string, std::string> rename;
};

/// Render `e` as a C expression string (no trailing semicolon).
std::string print_c(const Expr& e, const CPrintOptions& opt = {});

/// Render a polynomial as a C expression.  Rational coefficients are
/// emitted over the polynomial's common denominator so the expression
/// stays in integer arithmetic until a final division:
///   (2*i*N + 2*j - i*i - 3*i) / 2   -- with casts per CPrintOptions.
/// When `integer_arith` is true the cast is suppressed and the division
/// uses C integer division (exact for integer-valued polynomials such as
/// trip counts).
std::string print_poly_c(const Polynomial& p, const CPrintOptions& opt = {},
                         bool integer_arith = false);

}  // namespace nrc
