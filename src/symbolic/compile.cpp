#include "symbolic/compile.hpp"

#include <cmath>
#include <map>

#include "math/roots.hpp"
#include "support/error.hpp"

namespace nrc {
namespace {
constexpr long double kPi = 3.14159265358979323846264338327950288L;
}

CompiledExpr::CompiledExpr(const Expr& e, std::span<const std::string> order) {
  if (e.empty()) return;
  std::map<const ExprNode*, int> memo;

  // Post-order emission with common-subexpression sharing by node pointer.
  auto emit = [&](auto&& self, const ExprPtr& n) -> int {
    auto it = memo.find(n.get());
    if (it != memo.end()) return it->second;
    Ins ins;
    ins.op = n->op;
    switch (n->op) {
      case ExprOp::Const:
        ins.cval = cld{static_cast<long double>(n->cval.to_long_double()), 0.0L};
        break;
      case ExprOp::Cis: {
        const long double a =
            2.0L * kPi * static_cast<long double>(n->cis_k) / static_cast<long double>(n->cis_n);
        ins.cval = cld{std::cos(a), std::sin(a)};
        break;
      }
      case ExprOp::Poly:
        ins.poly = CompiledPoly(n->poly, order);
        break;
      case ExprOp::Neg:
      case ExprOp::Sqrt:
      case ExprOp::Cbrt:
        ins.a = self(self, n->a);
        break;
      default:  // binary ops
        ins.a = self(self, n->a);
        ins.b = self(self, n->b);
        break;
    }
    const int slot = static_cast<int>(code_.size());
    code_.push_back(std::move(ins));
    memo.emplace(n.get(), slot);
    return slot;
  };
  emit(emit, e.ptr());
}

cld CompiledExpr::eval(std::span<const i64> point) const {
  if (code_.empty()) throw SolveError("CompiledExpr::eval on empty expression");

  // Polynomial leaves take long double points; convert once.
  // The conversion is exact for |v| < 2^63 in long double (64-bit mantissa).
  long double pt_ld[32];
  const size_t npt = point.size() < 32 ? point.size() : 32;
  for (size_t i = 0; i < npt; ++i) pt_ld[i] = static_cast<long double>(point[i]);

  std::vector<cld> vals(code_.size());
  for (size_t i = 0; i < code_.size(); ++i) {
    const Ins& ins = code_[i];
    switch (ins.op) {
      case ExprOp::Const:
      case ExprOp::Cis:
        vals[i] = ins.cval;
        break;
      case ExprOp::Poly:
        vals[i] = cld{ins.poly.eval_ld({pt_ld, npt}), 0.0L};
        break;
      case ExprOp::Add:
        vals[i] = vals[static_cast<size_t>(ins.a)] + vals[static_cast<size_t>(ins.b)];
        break;
      case ExprOp::Sub:
        vals[i] = vals[static_cast<size_t>(ins.a)] - vals[static_cast<size_t>(ins.b)];
        break;
      case ExprOp::Mul:
        vals[i] = vals[static_cast<size_t>(ins.a)] * vals[static_cast<size_t>(ins.b)];
        break;
      case ExprOp::Div:
        vals[i] = vals[static_cast<size_t>(ins.a)] / vals[static_cast<size_t>(ins.b)];
        break;
      case ExprOp::Neg:
        vals[i] = -vals[static_cast<size_t>(ins.a)];
        break;
      case ExprOp::Sqrt:
        vals[i] = std::sqrt(vals[static_cast<size_t>(ins.a)]);
        break;
      case ExprOp::Cbrt:
        vals[i] = principal_cbrt(vals[static_cast<size_t>(ins.a)]);
        break;
    }
  }
  return vals.back();
}

}  // namespace nrc
