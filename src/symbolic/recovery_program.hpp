#pragma once
// RecoveryProgram — parameter-bound, flat, real-valued register bytecode
// for a level's closed-form root expression.
//
// The generic CompiledExpr interpreter evaluates the symbolic root DAG in
// complex<long double> throughout and allocates its value vector on every
// call — too heavy for the recover() hot path the §V execution schemes
// amortize per chunk.  Lowering happens once per Collapsed::bind():
//
//   * parameters are substituted into every polynomial leaf and constant
//     subtrees are folded away (a leaf like N*i - pc becomes a two-term
//     linear form over the remaining slots),
//   * common subexpressions keep single registers (the Expr DAG shares
//     nodes; lowering memoizes on node identity),
//   * arithmetic is real long double by default; complex instruction
//     forms are emitted only where a Cardano/Ferrari branch genuinely
//     needs them (any tree containing a cube root or a root of unity —
//     their discriminant square roots can go complex at runtime while the
//     recovered index stays real).  A pure quadratic-formula tree lowers
//     to straight real arithmetic whose sqrt yields NaN on a negative
//     discriminant, which the caller's exact guard turns into a search
//     fallback.
//
// eval() runs the instruction list over fixed stack scratch: zero heap
// allocation, no name lookups, no conversions beyond the integer point
// casts the polynomial leaves consume directly.

#include <span>
#include <string>
#include <vector>

#include "polyhedral/domain.hpp"
#include "symbolic/expr.hpp"

namespace nrc {

/// Register-file capacity of the bytecode evaluator.  Quartic Ferrari
/// branches lower to ~90 instructions; anything beyond this cap makes
/// compiled() false and the caller keeps the generic interpreter.
inline constexpr int kMaxProgramRegs = 192;

/// Result of a program evaluation: the (possibly complex) root value.
struct RootValue {
  long double re = 0.0L;
  long double im = 0.0L;
  bool finite() const;
};

/// Lane-batched guarded real-arithmetic Ferrari estimates: four (or
/// eight) quartic level equations solved at once (the eval4-style
/// counterpart of ferrari_estimate in core/real_solvers.hpp).  Lane l's
/// coefficients A0..A4 live at A + l*stride, low to high.  The
/// depression, the resolvent-cubic coefficients and the quadratic-factor
/// stage (both of its complex shapes, blended by sign masks) run as
/// simd_abi vectors of the requested width; the resolvent's Cardano
/// branch value runs through cardano_branch_lanes, whose Viete trig is
/// the polynomial vatan2/vcos kernels (per-lane libm when
/// simd::set_vector_trig(false)).  est_ok[l] is false where the
/// real-arithmetic path cannot follow the branch (complex resolvent
/// root, degenerate divisions, non-finite) — the caller demotes those
/// lanes to the bytecode program.  Estimates sit behind the exact
/// integer guard, so double precision suffices.  Allocation-free.
void ferrari_estimate4(const double* A, size_t stride, int branch, i64 est[4],
                       bool est_ok[4]);
void ferrari_estimate8(const double* A, size_t stride, int branch, i64 est[8],
                       bool est_ok[8]);

class RecoveryProgram {
 public:
  RecoveryProgram() = default;

  /// Lower `root` for the runtime layout `slot_order` with `params`
  /// folded in as constants.  A failed lowering (unknown variable, or
  /// register pressure beyond kMaxProgramRegs) leaves compiled() false
  /// rather than throwing: the caller falls back to interpretation.
  RecoveryProgram(const Expr& root, std::span<const std::string> slot_order,
                  const ParamMap& params);

  /// True when the program can be evaluated.
  bool compiled() const { return compiled_; }

  /// Evaluate on the integer point (slot-ordered, same layout as the
  /// generic evaluators).  Allocation-free.
  RootValue eval(std::span<const i64> point) const;

  /// Lane-batched evaluation on four (or eight) integer points at once:
  /// lane l reads the row pts + l*stride (same slot layout as eval()).
  /// The instruction list runs over SIMD register files of the requested
  /// width (simd_abi vf64 / vf64x8); arithmetic is double precision, not
  /// the scalar eval()'s long double — every caller sits behind the
  /// exact integer correction guard, which absorbs the difference.
  /// Complex square/cube roots drop to per-lane scalar calls (they are
  /// a handful of instructions in a Ferrari tree); everything else,
  /// including the polynomial leaves, is vectorized.  Allocation-free.
  void eval4(const i64* pts, size_t stride, RootValue out[4]) const;
  void eval8(const i64* pts, size_t stride, RootValue out[8]) const;

  /// Instruction count (diagnostics / tests).
  size_t size() const { return code_.size(); }

  /// True when any emitted instruction uses complex arithmetic.
  bool uses_complex() const;

  /// One instruction per line, e.g. "r3 = rmul r1 r2" (tests / docs).
  std::string str() const;

 private:
  enum class Op : unsigned char {
    // Real forms: write re[dst] and zero im[dst] so a later complex
    // instruction can read the register uniformly.
    RConst, RPoly, RAdd, RSub, RMul, RDiv, RNeg, RSqrt, RCbrt,
    // Complex forms.
    CConst, CAdd, CSub, CMul, CDiv, CNeg, CSqrt, CCbrt,
  };

  struct Ins {
    Op op;
    int a = -1;  // operand registers
    int b = -1;
    long double re = 0.0L;  // folded constant (RConst / CConst)
    long double im = 0.0L;
    int term_lo = 0;  // RPoly: term range into terms_
    int term_hi = 0;
  };

  /// Flattened polynomial leaf: coef * prod(point[slot]^exp) terms with
  /// the parameters already folded into the coefficients.
  struct PolyTerm {
    long double coef = 0.0L;
    int pow_lo = 0;  // range into pows_
    int pow_hi = 0;
  };
  struct PolyPow {
    int slot = 0;
    int exp = 1;
  };

  friend struct ProgramLowering;

  /// Width-generic body shared by eval4/eval8 (W = 4 or 8).
  template <int W>
  void eval_lanes(const i64* pts, size_t stride, RootValue* out) const;

  bool compiled_ = false;
  std::vector<Ins> code_;
  std::vector<PolyTerm> terms_;
  std::vector<PolyPow> pows_;
};

}  // namespace nrc
