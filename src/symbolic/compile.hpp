#pragma once
// Flat evaluator for symbolic expressions.
//
// The runtime index recovery evaluates a root formula once per chunk of
// iterations; compiling the Expr DAG into a linear instruction list (with
// common subexpressions evaluated once) keeps that evaluation cheap and
// allocation-free.  Arithmetic is complex<long double> throughout
// (§IV-C: roots can be complex with zero imaginary part).

#include <complex>
#include <span>
#include <vector>

#include "symbolic/expr.hpp"

namespace nrc {

using cld = std::complex<long double>;

/// A compiled expression: evaluate with integer variable values laid out
/// according to the slot order given at compile time.
class CompiledExpr {
 public:
  CompiledExpr() = default;

  /// `order` maps slot index -> variable name; every polynomial leaf
  /// variable must appear in it.
  CompiledExpr(const Expr& e, std::span<const std::string> order);

  bool empty() const { return code_.empty(); }

  /// Evaluate on the integer point (slot-ordered).  May return non-finite
  /// values when a formula degenerates; the caller is responsible for
  /// falling back to exact recovery in that case.
  cld eval(std::span<const i64> point) const;

  /// Number of instructions (for tests / diagnostics).
  size_t size() const { return code_.size(); }

 private:
  struct Ins {
    ExprOp op;
    int a = -1;            // operand slots into the value vector
    int b = -1;
    cld cval;              // Const / Cis folded value
    CompiledPoly poly;     // Poly leaves
  };
  std::vector<Ins> code_;
};

}  // namespace nrc
