#include "symbolic/expr.hpp"

#include "support/error.hpp"

namespace nrc {

const ExprNode& Expr::node() const {
  if (!node_) throw SolveError("Expr: dereferencing empty expression");
  return *node_;
}

Expr Expr::constant(const Rational& c) {
  auto n = std::make_shared<ExprNode>();
  n->op = ExprOp::Const;
  n->cval = c;
  return Expr(std::move(n));
}

Expr Expr::cis(int k, int n_in) {
  if (n_in <= 0) throw SolveError("Expr::cis: modulus must be positive");
  const int k_mod = ((k % n_in) + n_in) % n_in;
  if (k_mod == 0) return constant(Rational(1));
  auto n = std::make_shared<ExprNode>();
  n->op = ExprOp::Cis;
  n->cis_k = k_mod;
  n->cis_n = n_in;
  return Expr(std::move(n));
}

Expr Expr::poly(const Polynomial& p) {
  if (p.is_constant()) return constant(p.constant_term());
  auto n = std::make_shared<ExprNode>();
  n->op = ExprOp::Poly;
  n->poly = p;
  return Expr(std::move(n));
}

Expr Expr::make(ExprOp op, Expr a, Expr b) {
  auto n = std::make_shared<ExprNode>();
  n->op = op;
  n->a = a.node_;
  n->b = b.node_;
  return Expr(std::move(n));
}

namespace {
bool is_const(const Expr& e, const Rational& v) {
  return !e.empty() && e.node().op == ExprOp::Const && e.node().cval == v;
}
bool both_const(const Expr& a, const Expr& b) {
  return !a.empty() && !b.empty() && a.node().op == ExprOp::Const &&
         b.node().op == ExprOp::Const;
}
}  // namespace

Expr Expr::operator+(const Expr& o) const {
  if (both_const(*this, o)) return constant(node().cval + o.node().cval);
  if (is_const(*this, Rational(0))) return o;
  if (is_const(o, Rational(0))) return *this;
  return make(ExprOp::Add, *this, o);
}

Expr Expr::operator-(const Expr& o) const {
  if (both_const(*this, o)) return constant(node().cval - o.node().cval);
  if (is_const(o, Rational(0))) return *this;
  return make(ExprOp::Sub, *this, o);
}

Expr Expr::operator*(const Expr& o) const {
  if (both_const(*this, o)) return constant(node().cval * o.node().cval);
  if (is_const(*this, Rational(1))) return o;
  if (is_const(o, Rational(1))) return *this;
  if (is_const(*this, Rational(0)) || is_const(o, Rational(0))) return constant(Rational(0));
  return make(ExprOp::Mul, *this, o);
}

Expr Expr::operator/(const Expr& o) const {
  if (is_const(o, Rational(0))) throw SolveError("Expr: division by constant zero");
  if (both_const(*this, o)) return constant(node().cval / o.node().cval);
  if (is_const(o, Rational(1))) return *this;
  return make(ExprOp::Div, *this, o);
}

Expr Expr::operator-() const {
  if (!empty() && node().op == ExprOp::Const) return constant(-node().cval);
  return make(ExprOp::Neg, *this, Expr());
}

Expr Expr::sqrt() const { return make(ExprOp::Sqrt, *this, Expr()); }
Expr Expr::cbrt() const { return make(ExprOp::Cbrt, *this, Expr()); }

namespace {
std::string render(const ExprPtr& n) {
  if (!n) return "?";
  switch (n->op) {
    case ExprOp::Const:
      return n->cval.str();
    case ExprOp::Cis:
      return "cis(" + std::to_string(n->cis_k) + "/" + std::to_string(n->cis_n) + ")";
    case ExprOp::Poly:
      return "(" + n->poly.str() + ")";
    case ExprOp::Add:
      return "(" + render(n->a) + " + " + render(n->b) + ")";
    case ExprOp::Sub:
      return "(" + render(n->a) + " - " + render(n->b) + ")";
    case ExprOp::Mul:
      return "(" + render(n->a) + " * " + render(n->b) + ")";
    case ExprOp::Div:
      return "(" + render(n->a) + " / " + render(n->b) + ")";
    case ExprOp::Neg:
      return "(-" + render(n->a) + ")";
    case ExprOp::Sqrt:
      return "sqrt(" + render(n->a) + ")";
    case ExprOp::Cbrt:
      return "cbrt(" + render(n->a) + ")";
  }
  return "?";
}
}  // namespace

std::string Expr::str() const { return render(node_); }

}  // namespace nrc
