#pragma once
// Symbolic closed-form roots of polynomial equations, degrees 1..4.
//
// Given the coefficients of a level equation (polynomials in the prefix
// indices, the parameters and pc), build the expression tree of one root
// branch.  Branch indices follow exactly the numbering of math/roots.hpp
// so that a branch validated numerically identifies the same formula in
// generated code.

#include <span>

#include "symbolic/expr.hpp"

namespace nrc {

/// Root branch of a[deg]·x^deg + ... + a[0] = 0 as a symbolic expression.
/// `coeffs` = {a0 .. a_deg} (low to high), degree 1..4.  Throws
/// DegreeError for other degrees, SolveError for invalid branches.
Expr root_branch_expr(std::span<const Expr> coeffs, int branch);

/// Convenience overload taking coefficient polynomials.
Expr root_branch_expr(std::span<const Polynomial> coeffs, int branch);

}  // namespace nrc
