#pragma once
// Symbolic expression DAG.
//
// This small computer-algebra layer replaces the paper's use of Maxima:
// the closed-form roots of the level equations (§IV) are built as
// immutable expression trees whose leaves are either rational constants,
// roots of unity (needed for Cardano branches), or multivariate
// polynomials in the prefix indices, the parameters and pc.
//
// The same tree serves two consumers:
//   * symbolic/compile.*  — a flat evaluator over complex<long double>
//     used by the runtime index recovery, and
//   * symbolic/print_c.*  — the C source printer used by the code
//     generator (paper Figs 3, 4, 7).

#include <memory>
#include <string>
#include <vector>

#include "math/polynomial.hpp"

namespace nrc {

enum class ExprOp {
  Const,  // rational constant
  Cis,    // e^{2*pi*i*k/n}
  Poly,   // multivariate polynomial leaf (evaluated on integer points)
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Sqrt,  // principal complex square root
  Cbrt,  // principal complex cube root (cpow(z, 1/3))
};

struct ExprNode;
using ExprPtr = std::shared_ptr<const ExprNode>;

/// Handle to an immutable expression node.  Copies are cheap (shared
/// subtrees).  A default-constructed Expr is empty (no node).
class Expr {
 public:
  Expr() = default;

  static Expr constant(const Rational& c);
  static Expr constant(i64 c) { return constant(Rational(c)); }
  /// e^{2*pi*i*k/n}; cis(0, n) folds to the constant 1.
  static Expr cis(int k, int n);
  static Expr poly(const Polynomial& p);
  static Expr variable(const std::string& name) { return poly(Polynomial::variable(name)); }

  bool empty() const { return node_ == nullptr; }
  const ExprNode& node() const;
  const ExprPtr& ptr() const { return node_; }

  Expr operator+(const Expr& o) const;
  Expr operator-(const Expr& o) const;
  Expr operator*(const Expr& o) const;
  Expr operator/(const Expr& o) const;
  Expr operator-() const;
  Expr sqrt() const;
  Expr cbrt() const;

  /// Human-readable rendering (Maxima-ish infix), mostly for diagnostics.
  std::string str() const;

 private:
  explicit Expr(ExprPtr n) : node_(std::move(n)) {}
  static Expr make(ExprOp op, Expr a, Expr b);
  ExprPtr node_;
};

struct ExprNode {
  ExprOp op;
  Rational cval;    // Const
  int cis_k = 0;    // Cis
  int cis_n = 1;    // Cis
  Polynomial poly;  // Poly
  ExprPtr a;        // first child (unary/binary)
  ExprPtr b;        // second child (binary)
};

}  // namespace nrc
