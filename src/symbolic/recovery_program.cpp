#include "symbolic/recovery_program.hpp"

#include <cmath>
#include <complex>
#include <map>

#include "core/real_solvers.hpp"
#include "math/roots.hpp"
#include "runtime/simd_abi.hpp"
#include "support/error.hpp"

namespace nrc {

namespace {

using cld = std::complex<long double>;

constexpr long double kPi = 3.14159265358979323846264338327950288L;

/// Does the tree contain a cube root or a root of unity?  Those are the
/// Cardano/Ferrari shapes whose intermediate values can be genuinely
/// complex (casus irreducibilis) even though the recovered index is real.
bool needs_complex(const ExprPtr& n) {
  if (!n) return false;
  if (n->op == ExprOp::Cis || n->op == ExprOp::Cbrt) return true;
  return needs_complex(n->a) || needs_complex(n->b);
}

}  // namespace

bool RootValue::finite() const { return std::isfinite(re) && std::isfinite(im); }

namespace {

/// Width-generic body of ferrari_estimate4/ferrari_estimate8.
template <int W>
void ferrari_estimate_lanes(const double* A, size_t stride, int branch, i64* est,
                            bool* est_ok) {
  using V = simd::batch<W>;
  const V zero = simd::splat<W>(0.0);
  const V half = simd::splat<W>(0.5);
  auto col = [&](int e) {
    double tmp[W];
    for (int l = 0; l < W; ++l)
      tmp[l] = A[static_cast<size_t>(l) * stride + static_cast<size_t>(e)];
    return simd::load<W>(tmp);
  };
  const V a4 = col(4);
  const V b = simd::div(col(3), a4);
  const V c = simd::div(col(2), a4);
  const V d = simd::div(col(1), a4);
  const V e = simd::div(col(0), a4);

  // Depressed quartic y^4 + p y^2 + q y + r (x = y - b/4).
  const V b2 = simd::mul(b, b);
  const V p = simd::sub(c, simd::mul(simd::splat<W>(3.0 / 8.0), b2));
  const V q = simd::add(simd::sub(d, simd::mul(half, simd::mul(b, c))),
                        simd::mul(simd::splat<W>(1.0 / 8.0), simd::mul(b2, b)));
  const V r = simd::sub(
      simd::add(simd::sub(e, simd::mul(simd::splat<W>(0.25), simd::mul(b, d))),
                simd::mul(simd::splat<W>(1.0 / 16.0), simd::mul(b2, c))),
      simd::mul(simd::splat<W>(3.0 / 256.0), simd::mul(b2, b2)));

  const int rb = branch / 4;  // resolvent Cardano branch, 0..2
  const int qb = branch % 4;  // quadratic-factor branch, 0..3

  // Resolvent cubic w^3 + 2p w^2 + (p^2 - 4r) w - q^2 = 0 (monic).
  // Both discriminant signs stay in-register inside cardano_branch_lanes
  // (polynomial trig on the Viete lanes, Halley vcbrt on the one-real-
  // root lanes); only set_vector_trig(false) drops to per-lane libm.
  const V rB2 = simd::mul(simd::splat<W>(2.0), p);
  const V rB1 = simd::sub(simd::mul(p, p), simd::mul(simd::splat<W>(4.0), r));
  const V rB0 = simd::neg(simd::mul(q, q));
  const CardanoBranchLanes<V> w = cardano_branch_lanes(rB2, rB1, rB0, rb);
  const V wr = w.re;
  const V wi = w.im;

  // Quadratic-factor stage on the explicit (re, im) pair — see
  // ferrari_estimate for the derivation.  alpha = csqrt(w), principal:
  // the Im sign carries sign(Im w), applied with a mask blend.
  const V aw = simd::sqrt(simd::add(simd::mul(wr, wr), simd::mul(wi, wi)));
  const V ar = simd::sqrt(simd::mul(half, simd::add(aw, wr)));
  const V ai0 = simd::sqrt(simd::mul(half, simd::sub(aw, wr)));
  const V ai = simd::select(simd::cmp_ge(wi, zero), ai0, simd::neg(ai0));
  // q / alpha = q * conj(alpha) / |w|  (w == 0 lanes degenerate to NaN).
  const V qoaw = simd::div(q, aw);
  const V qar = simd::mul(qoaw, ar);
  const V qai = simd::neg(simd::mul(qoaw, ai));
  // D = alpha^2 - 4*{beta,gamma} = w - 2*(p + w +- q/alpha).
  const V sqar = qb < 2 ? simd::neg(qar) : qar;
  const V sqai = qb < 2 ? simd::neg(qai) : qai;
  const V Dr =
      simd::sub(wr, simd::mul(simd::splat<W>(2.0), simd::add(simd::add(p, wr), sqar)));
  const V Di = simd::neg(simd::add(wi, simd::mul(simd::splat<W>(2.0), sqai)));
  const V ad = simd::sqrt(simd::add(simd::mul(Dr, Dr), simd::mul(Di, Di)));
  const V sr = simd::sqrt(simd::mul(half, simd::add(ad, Dr)));  // Re(csqrt(D))
  const V sa = qb < 2 ? simd::neg(ar) : ar;
  const V y = simd::mul(half, (qb & 1) ? simd::sub(sa, sr) : simd::add(sa, sr));

  const V root = simd::sub(y, simd::mul(simd::splat<W>(0.25), b));
  const V flo = simd::floor(simd::add(root, simd::splat<W>(1e-9)));
  double rootl[W], flol[W], a4l[W];
  simd::store(rootl, root);
  simd::store(flol, flo);
  simd::store(a4l, a4);
  for (int l = 0; l < W; ++l) {
    est_ok[l] = a4l[l] != 0.0 && index_range_finite(rootl[l]);
    est[l] = est_ok[l] ? static_cast<i64>(flol[l]) : 0;
  }
}

}  // namespace

void ferrari_estimate4(const double* A, size_t stride, int branch, i64 est[4],
                       bool est_ok[4]) {
  ferrari_estimate_lanes<4>(A, stride, branch, est, est_ok);
}

void ferrari_estimate8(const double* A, size_t stride, int branch, i64 est[8],
                       bool est_ok[8]) {
  ferrari_estimate_lanes<8>(A, stride, branch, est, est_ok);
}

/// Lowering context: walks the Expr DAG once, folding constants (with the
/// bound parameters substituted into every polynomial leaf) and memoizing
/// shared nodes so CSE survives into the bytecode.
struct ProgramLowering {
  using Op = RecoveryProgram::Op;

  RecoveryProgram& prog;
  std::span<const std::string> order;
  const ParamMap& params;
  bool complex_mode = false;
  bool failed = false;

  /// A lowered subtree: either a folded constant or a register.
  struct Value {
    bool is_const = false;
    cld cval{};
    int reg = -1;
    bool complex_typed = false;
  };

  std::map<const ExprNode*, Value> memo{};
  std::map<std::pair<long double, long double>, int> const_regs{};

  int emit(RecoveryProgram::Ins ins) {
    if (static_cast<int>(prog.code_.size()) >= kMaxProgramRegs) {
      failed = true;
      return 0;
    }
    prog.code_.push_back(ins);
    return static_cast<int>(prog.code_.size()) - 1;
  }

  int materialize(const Value& v) {
    if (!v.is_const) return v.reg;
    const auto key = std::make_pair(v.cval.real(), v.cval.imag());
    auto it = const_regs.find(key);
    if (it != const_regs.end()) return it->second;
    RecoveryProgram::Ins ins;
    ins.op = v.cval.imag() == 0.0L ? Op::RConst : Op::CConst;
    ins.re = v.cval.real();
    ins.im = v.cval.imag();
    const int reg = emit(ins);
    const_regs.emplace(key, reg);
    return reg;
  }

  Value lower_poly(const Polynomial& p) {
    Polynomial q = p;
    try {
      for (const auto& [name, val] : params) q = q.substitute(name, Polynomial(val));
    } catch (const OverflowError&) {
      // Folding pushed a coefficient past the exact int64 range; the
      // generic interpreter evaluates the unfolded tree fine.
      failed = true;
      return {true, cld{0.0L, 0.0L}};
    }
    if (q.is_constant()) return {true, cld{q.constant_term().to_long_double(), 0.0L}};

    RecoveryProgram::Ins ins;
    ins.op = Op::RPoly;
    ins.term_lo = static_cast<int>(prog.terms_.size());
    for (const auto& [m, c] : q.terms()) {
      RecoveryProgram::PolyTerm t;
      t.coef = c.to_long_double();
      t.pow_lo = static_cast<int>(prog.pows_.size());
      for (const auto& [var, exp] : m.factors()) {
        int slot = -1;
        for (size_t s = 0; s < order.size(); ++s) {
          if (order[s] == var) {
            slot = static_cast<int>(s);
            break;
          }
        }
        if (slot < 0) {
          failed = true;  // unbound variable: leave it to the interpreter
          return {true, cld{0.0L, 0.0L}};
        }
        prog.pows_.push_back({slot, exp});
      }
      t.pow_hi = static_cast<int>(prog.pows_.size());
      prog.terms_.push_back(t);
    }
    ins.term_hi = static_cast<int>(prog.terms_.size());
    Value v;
    v.reg = emit(ins);
    return v;
  }

  static cld fold_unary(ExprOp op, const cld& a) {
    switch (op) {
      case ExprOp::Neg:
        return -a;
      case ExprOp::Sqrt:
        return std::sqrt(a);
      default:  // Cbrt
        return principal_cbrt(a);
    }
  }

  Value lower(const ExprPtr& n) {
    auto it = memo.find(n.get());
    if (it != memo.end()) return it->second;
    Value v;
    switch (n->op) {
      case ExprOp::Const:
        v = {true, cld{n->cval.to_long_double(), 0.0L}};
        break;
      case ExprOp::Cis: {
        const long double ang = 2.0L * kPi * static_cast<long double>(n->cis_k) /
                                static_cast<long double>(n->cis_n);
        v = {true, cld{std::cos(ang), std::sin(ang)}};
        break;
      }
      case ExprOp::Poly:
        v = lower_poly(n->poly);
        break;
      case ExprOp::Neg:
      case ExprOp::Sqrt:
      case ExprOp::Cbrt: {
        const Value a = lower(n->a);
        if (failed) return a;
        if (a.is_const) {
          v = {true, fold_unary(n->op, a.cval)};
        } else {
          // Sqrt/Cbrt go complex exactly when the branch family can make
          // their arguments negative along a real-rooted recovery (the
          // Cardano/Ferrari trees); a lone quadratic sqrt stays real and
          // degenerates to NaN, which the caller's guard catches.
          const bool cx = n->op == ExprOp::Neg
                              ? a.complex_typed
                              : (complex_mode || a.complex_typed);
          RecoveryProgram::Ins ins;
          ins.a = materialize(a);
          switch (n->op) {
            case ExprOp::Neg:
              ins.op = cx ? Op::CNeg : Op::RNeg;
              break;
            case ExprOp::Sqrt:
              ins.op = cx ? Op::CSqrt : Op::RSqrt;
              break;
            default:
              ins.op = cx ? Op::CCbrt : Op::RCbrt;
              break;
          }
          v.reg = emit(ins);
          v.complex_typed = cx;
        }
        break;
      }
      default: {  // binary ops
        const Value a = lower(n->a);
        if (failed) return a;
        const Value b = lower(n->b);
        if (failed) return b;
        if (a.is_const && b.is_const) {
          cld r;
          switch (n->op) {
            case ExprOp::Add:
              r = a.cval + b.cval;
              break;
            case ExprOp::Sub:
              r = a.cval - b.cval;
              break;
            case ExprOp::Mul:
              r = a.cval * b.cval;
              break;
            default:
              r = a.cval / b.cval;
              break;
          }
          v = {true, r};
        } else {
          const bool cx = (a.is_const ? a.cval.imag() != 0.0L : a.complex_typed) ||
                          (b.is_const ? b.cval.imag() != 0.0L : b.complex_typed);
          RecoveryProgram::Ins ins;
          ins.a = materialize(a);
          ins.b = materialize(b);
          switch (n->op) {
            case ExprOp::Add:
              ins.op = cx ? Op::CAdd : Op::RAdd;
              break;
            case ExprOp::Sub:
              ins.op = cx ? Op::CSub : Op::RSub;
              break;
            case ExprOp::Mul:
              ins.op = cx ? Op::CMul : Op::RMul;
              break;
            default:
              ins.op = cx ? Op::CDiv : Op::RDiv;
              break;
          }
          v.reg = emit(ins);
          v.complex_typed = cx;
        }
        break;
      }
    }
    memo.emplace(n.get(), v);
    return v;
  }
};

RecoveryProgram::RecoveryProgram(const Expr& root, std::span<const std::string> slot_order,
                                 const ParamMap& params) {
  if (root.empty()) return;
  ProgramLowering lo{*this, slot_order, params};
  lo.complex_mode = needs_complex(root.ptr());
  try {
    const ProgramLowering::Value v = lo.lower(root.ptr());
    if (!lo.failed && v.is_const) lo.materialize(v);
  } catch (const OverflowError&) {
    lo.failed = true;  // exact folding overflowed: caller keeps the interpreter
  }
  if (lo.failed || static_cast<int>(code_.size()) > kMaxProgramRegs) {
    code_.clear();
    terms_.clear();
    pows_.clear();
    compiled_ = false;
    return;
  }
  compiled_ = !code_.empty();
}

RootValue RecoveryProgram::eval(std::span<const i64> point) const {
  if (!compiled_) throw SolveError("RecoveryProgram::eval on an uncompiled program");

  long double re[kMaxProgramRegs];
  long double im[kMaxProgramRegs];
  const size_t n = code_.size();
  for (size_t i = 0; i < n; ++i) {
    const Ins& ins = code_[i];
    switch (ins.op) {
      case Op::RConst:
        re[i] = ins.re;
        im[i] = 0.0L;
        break;
      case Op::RPoly: {
        long double acc = 0.0L;
        for (int t = ins.term_lo; t < ins.term_hi; ++t) {
          const PolyTerm& term = terms_[static_cast<size_t>(t)];
          long double v = term.coef;
          for (int p = term.pow_lo; p < term.pow_hi; ++p) {
            const PolyPow& pw = pows_[static_cast<size_t>(p)];
            const long double base = static_cast<long double>(point[static_cast<size_t>(pw.slot)]);
            for (int e = 0; e < pw.exp; ++e) v *= base;
          }
          acc += v;
        }
        re[i] = acc;
        im[i] = 0.0L;
        break;
      }
      case Op::RAdd:
        re[i] = re[ins.a] + re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RSub:
        re[i] = re[ins.a] - re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RMul:
        re[i] = re[ins.a] * re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RDiv:
        re[i] = re[ins.a] / re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RNeg:
        re[i] = -re[ins.a];
        im[i] = 0.0L;
        break;
      case Op::RSqrt:
        re[i] = std::sqrt(re[ins.a]);  // NaN on negative: guard handles it
        im[i] = 0.0L;
        break;
      case Op::RCbrt:
        re[i] = std::cbrt(re[ins.a]);
        im[i] = 0.0L;
        break;
      case Op::CConst:
        re[i] = ins.re;
        im[i] = ins.im;
        break;
      case Op::CAdd:
        re[i] = re[ins.a] + re[ins.b];
        im[i] = im[ins.a] + im[ins.b];
        break;
      case Op::CSub:
        re[i] = re[ins.a] - re[ins.b];
        im[i] = im[ins.a] - im[ins.b];
        break;
      case Op::CMul: {
        const long double ar = re[ins.a], ai = im[ins.a];
        const long double br = re[ins.b], bi = im[ins.b];
        re[i] = ar * br - ai * bi;
        im[i] = ar * bi + ai * br;
        break;
      }
      case Op::CDiv: {
        const cld z = cld{re[ins.a], im[ins.a]} / cld{re[ins.b], im[ins.b]};
        re[i] = z.real();
        im[i] = z.imag();
        break;
      }
      case Op::CNeg:
        re[i] = -re[ins.a];
        im[i] = -im[ins.a];
        break;
      case Op::CSqrt: {
        const cld z = std::sqrt(cld{re[ins.a], im[ins.a]});
        re[i] = z.real();
        im[i] = z.imag();
        break;
      }
      case Op::CCbrt: {
        const cld z = principal_cbrt(cld{re[ins.a], im[ins.a]});
        re[i] = z.real();
        im[i] = z.imag();
        break;
      }
    }
  }
  return {re[n - 1], im[n - 1]};
}

template <int W>
void RecoveryProgram::eval_lanes(const i64* pts, size_t stride, RootValue* out) const {
  if (!compiled_) throw SolveError("RecoveryProgram::eval_lanes on an uncompiled program");

  using V = simd::batch<W>;
  V re[kMaxProgramRegs];
  V im[kMaxProgramRegs];
  const V zero = simd::splat<W>(0.0);

  // Gather the W lanes of one slot into a vector.
  auto slot_lanes = [&](int slot) {
    double tmp[W];
    for (int l = 0; l < W; ++l)
      tmp[l] = static_cast<double>(
          pts[static_cast<size_t>(l) * stride + static_cast<size_t>(slot)]);
    return simd::load<W>(tmp);
  };
  // Per-lane scalar escape for the ops without a vector form.
  auto map_lanes = [&](V a, auto&& f) {
    double r[W];
    simd::store(r, a);
    for (int l = 0; l < W; ++l) r[l] = f(r[l]);
    return simd::load<W>(r);
  };
  // Per-lane complex escapes in double (not the scalar eval()'s long
  // double; the caller's guard absorbs the precision gap).
  using cd = std::complex<double>;
  auto map_lanes_c = [&](V ar, V ai, V* rr, V* ri, auto&& f) {
    double lr[W], li[W];
    simd::store(lr, ar);
    simd::store(li, ai);
    for (int l = 0; l < W; ++l) {
      const cd z = f(cd{lr[l], li[l]});
      lr[l] = z.real();
      li[l] = z.imag();
    }
    *rr = simd::load<W>(lr);
    *ri = simd::load<W>(li);
  };

  const size_t n = code_.size();
  for (size_t i = 0; i < n; ++i) {
    const Ins& ins = code_[i];
    switch (ins.op) {
      case Op::RConst:
        re[i] = simd::splat<W>(static_cast<double>(ins.re));
        im[i] = zero;
        break;
      case Op::RPoly: {
        V acc = zero;
        for (int t = ins.term_lo; t < ins.term_hi; ++t) {
          const PolyTerm& term = terms_[static_cast<size_t>(t)];
          V v = simd::splat<W>(static_cast<double>(term.coef));
          for (int p = term.pow_lo; p < term.pow_hi; ++p) {
            const PolyPow& pw = pows_[static_cast<size_t>(p)];
            const V base = slot_lanes(pw.slot);
            for (int e = 0; e < pw.exp; ++e) v = simd::mul(v, base);
          }
          acc = simd::add(acc, v);
        }
        re[i] = acc;
        im[i] = zero;
        break;
      }
      case Op::RAdd:
        re[i] = simd::add(re[ins.a], re[ins.b]);
        im[i] = zero;
        break;
      case Op::RSub:
        re[i] = simd::sub(re[ins.a], re[ins.b]);
        im[i] = zero;
        break;
      case Op::RMul:
        re[i] = simd::mul(re[ins.a], re[ins.b]);
        im[i] = zero;
        break;
      case Op::RDiv:
        re[i] = simd::div(re[ins.a], re[ins.b]);
        im[i] = zero;
        break;
      case Op::RNeg:
        re[i] = simd::neg(re[ins.a]);
        im[i] = zero;
        break;
      case Op::RSqrt:
        re[i] = simd::sqrt(re[ins.a]);  // NaN lanes on negative: guard handles
        im[i] = zero;
        break;
      case Op::RCbrt:
        re[i] = map_lanes(re[ins.a], [](double x) { return std::cbrt(x); });
        im[i] = zero;
        break;
      case Op::CConst:
        re[i] = simd::splat<W>(static_cast<double>(ins.re));
        im[i] = simd::splat<W>(static_cast<double>(ins.im));
        break;
      case Op::CAdd:
        re[i] = simd::add(re[ins.a], re[ins.b]);
        im[i] = simd::add(im[ins.a], im[ins.b]);
        break;
      case Op::CSub:
        re[i] = simd::sub(re[ins.a], re[ins.b]);
        im[i] = simd::sub(im[ins.a], im[ins.b]);
        break;
      case Op::CMul: {
        const V ar = re[ins.a], ai = im[ins.a];
        const V br = re[ins.b], bi = im[ins.b];
        re[i] = simd::sub(simd::mul(ar, br), simd::mul(ai, bi));
        im[i] = simd::add(simd::mul(ar, bi), simd::mul(ai, br));
        break;
      }
      case Op::CDiv: {
        // (a * conj b) / |b|^2 componentwise; moderate magnitudes only
        // reach this path, and the exact guard absorbs rounding.
        const V ar = re[ins.a], ai = im[ins.a];
        const V br = re[ins.b], bi = im[ins.b];
        const V den = simd::add(simd::mul(br, br), simd::mul(bi, bi));
        re[i] = simd::div(simd::add(simd::mul(ar, br), simd::mul(ai, bi)), den);
        im[i] = simd::div(simd::sub(simd::mul(ai, br), simd::mul(ar, bi)), den);
        break;
      }
      case Op::CNeg:
        re[i] = simd::neg(re[ins.a]);
        im[i] = simd::neg(im[ins.a]);
        break;
      case Op::CSqrt:
        map_lanes_c(re[ins.a], im[ins.a], &re[i], &im[i],
                    [](const cd& z) { return std::sqrt(z); });
        break;
      case Op::CCbrt:
        // Same principal branch as principal_cbrt (arg/3 in (-pi/3,
        // pi/3]), computed in double.
        map_lanes_c(re[ins.a], im[ins.a], &re[i], &im[i], [](const cd& z) {
          if (z == cd{0.0, 0.0}) return cd{0.0, 0.0};
          const double m = std::cbrt(std::hypot(z.real(), z.imag()));
          const double a = std::atan2(z.imag(), z.real()) / 3.0;
          return cd{m * std::cos(a), m * std::sin(a)};
        });
        break;
    }
  }
  double rr[W], ri[W];
  simd::store(rr, re[n - 1]);
  simd::store(ri, im[n - 1]);
  for (int l = 0; l < W; ++l)
    out[l] = {static_cast<long double>(rr[l]), static_cast<long double>(ri[l])};
}

void RecoveryProgram::eval4(const i64* pts, size_t stride, RootValue out[4]) const {
  eval_lanes<4>(pts, stride, out);
}

void RecoveryProgram::eval8(const i64* pts, size_t stride, RootValue out[8]) const {
  eval_lanes<8>(pts, stride, out);
}

bool RecoveryProgram::uses_complex() const {
  for (const Ins& ins : code_)
    if (ins.op >= Op::CConst) return true;
  return false;
}

std::string RecoveryProgram::str() const {
  static const char* names[] = {"rconst", "rpoly", "radd", "rsub", "rmul", "rdiv",
                                "rneg",   "rsqrt", "rcbrt", "cconst", "cadd", "csub",
                                "cmul",   "cdiv",  "cneg", "csqrt", "ccbrt"};
  std::string s;
  for (size_t i = 0; i < code_.size(); ++i) {
    const Ins& ins = code_[i];
    s += "r" + std::to_string(i) + " = " + names[static_cast<int>(ins.op)];
    if (ins.op == Op::RConst || ins.op == Op::CConst) {
      s += " " + std::to_string(static_cast<double>(ins.re));
      if (ins.op == Op::CConst) s += "+" + std::to_string(static_cast<double>(ins.im)) + "i";
    } else if (ins.op == Op::RPoly) {
      s += " [" + std::to_string(ins.term_hi - ins.term_lo) + " terms]";
    } else {
      s += " r" + std::to_string(ins.a);
      if (ins.b >= 0) s += " r" + std::to_string(ins.b);
    }
    s += "\n";
  }
  return s;
}

}  // namespace nrc
