#include "symbolic/recovery_program.hpp"

#include <cmath>
#include <complex>
#include <map>

#include "math/roots.hpp"
#include "support/error.hpp"

namespace nrc {

namespace {

using cld = std::complex<long double>;

constexpr long double kPi = 3.14159265358979323846264338327950288L;

/// Does the tree contain a cube root or a root of unity?  Those are the
/// Cardano/Ferrari shapes whose intermediate values can be genuinely
/// complex (casus irreducibilis) even though the recovered index is real.
bool needs_complex(const ExprPtr& n) {
  if (!n) return false;
  if (n->op == ExprOp::Cis || n->op == ExprOp::Cbrt) return true;
  return needs_complex(n->a) || needs_complex(n->b);
}

}  // namespace

bool RootValue::finite() const { return std::isfinite(re) && std::isfinite(im); }

/// Lowering context: walks the Expr DAG once, folding constants (with the
/// bound parameters substituted into every polynomial leaf) and memoizing
/// shared nodes so CSE survives into the bytecode.
struct ProgramLowering {
  using Op = RecoveryProgram::Op;

  RecoveryProgram& prog;
  std::span<const std::string> order;
  const ParamMap& params;
  bool complex_mode = false;
  bool failed = false;

  /// A lowered subtree: either a folded constant or a register.
  struct Value {
    bool is_const = false;
    cld cval{};
    int reg = -1;
    bool complex_typed = false;
  };

  std::map<const ExprNode*, Value> memo{};
  std::map<std::pair<long double, long double>, int> const_regs{};

  int emit(RecoveryProgram::Ins ins) {
    if (static_cast<int>(prog.code_.size()) >= kMaxProgramRegs) {
      failed = true;
      return 0;
    }
    prog.code_.push_back(ins);
    return static_cast<int>(prog.code_.size()) - 1;
  }

  int materialize(const Value& v) {
    if (!v.is_const) return v.reg;
    const auto key = std::make_pair(v.cval.real(), v.cval.imag());
    auto it = const_regs.find(key);
    if (it != const_regs.end()) return it->second;
    RecoveryProgram::Ins ins;
    ins.op = v.cval.imag() == 0.0L ? Op::RConst : Op::CConst;
    ins.re = v.cval.real();
    ins.im = v.cval.imag();
    const int reg = emit(ins);
    const_regs.emplace(key, reg);
    return reg;
  }

  Value lower_poly(const Polynomial& p) {
    Polynomial q = p;
    try {
      for (const auto& [name, val] : params) q = q.substitute(name, Polynomial(val));
    } catch (const OverflowError&) {
      // Folding pushed a coefficient past the exact int64 range; the
      // generic interpreter evaluates the unfolded tree fine.
      failed = true;
      return {true, cld{0.0L, 0.0L}};
    }
    if (q.is_constant()) return {true, cld{q.constant_term().to_long_double(), 0.0L}};

    RecoveryProgram::Ins ins;
    ins.op = Op::RPoly;
    ins.term_lo = static_cast<int>(prog.terms_.size());
    for (const auto& [m, c] : q.terms()) {
      RecoveryProgram::PolyTerm t;
      t.coef = c.to_long_double();
      t.pow_lo = static_cast<int>(prog.pows_.size());
      for (const auto& [var, exp] : m.factors()) {
        int slot = -1;
        for (size_t s = 0; s < order.size(); ++s) {
          if (order[s] == var) {
            slot = static_cast<int>(s);
            break;
          }
        }
        if (slot < 0) {
          failed = true;  // unbound variable: leave it to the interpreter
          return {true, cld{0.0L, 0.0L}};
        }
        prog.pows_.push_back({slot, exp});
      }
      t.pow_hi = static_cast<int>(prog.pows_.size());
      prog.terms_.push_back(t);
    }
    ins.term_hi = static_cast<int>(prog.terms_.size());
    Value v;
    v.reg = emit(ins);
    return v;
  }

  static cld fold_unary(ExprOp op, const cld& a) {
    switch (op) {
      case ExprOp::Neg:
        return -a;
      case ExprOp::Sqrt:
        return std::sqrt(a);
      default:  // Cbrt
        return principal_cbrt(a);
    }
  }

  Value lower(const ExprPtr& n) {
    auto it = memo.find(n.get());
    if (it != memo.end()) return it->second;
    Value v;
    switch (n->op) {
      case ExprOp::Const:
        v = {true, cld{n->cval.to_long_double(), 0.0L}};
        break;
      case ExprOp::Cis: {
        const long double ang = 2.0L * kPi * static_cast<long double>(n->cis_k) /
                                static_cast<long double>(n->cis_n);
        v = {true, cld{std::cos(ang), std::sin(ang)}};
        break;
      }
      case ExprOp::Poly:
        v = lower_poly(n->poly);
        break;
      case ExprOp::Neg:
      case ExprOp::Sqrt:
      case ExprOp::Cbrt: {
        const Value a = lower(n->a);
        if (failed) return a;
        if (a.is_const) {
          v = {true, fold_unary(n->op, a.cval)};
        } else {
          // Sqrt/Cbrt go complex exactly when the branch family can make
          // their arguments negative along a real-rooted recovery (the
          // Cardano/Ferrari trees); a lone quadratic sqrt stays real and
          // degenerates to NaN, which the caller's guard catches.
          const bool cx = n->op == ExprOp::Neg
                              ? a.complex_typed
                              : (complex_mode || a.complex_typed);
          RecoveryProgram::Ins ins;
          ins.a = materialize(a);
          switch (n->op) {
            case ExprOp::Neg:
              ins.op = cx ? Op::CNeg : Op::RNeg;
              break;
            case ExprOp::Sqrt:
              ins.op = cx ? Op::CSqrt : Op::RSqrt;
              break;
            default:
              ins.op = cx ? Op::CCbrt : Op::RCbrt;
              break;
          }
          v.reg = emit(ins);
          v.complex_typed = cx;
        }
        break;
      }
      default: {  // binary ops
        const Value a = lower(n->a);
        if (failed) return a;
        const Value b = lower(n->b);
        if (failed) return b;
        if (a.is_const && b.is_const) {
          cld r;
          switch (n->op) {
            case ExprOp::Add:
              r = a.cval + b.cval;
              break;
            case ExprOp::Sub:
              r = a.cval - b.cval;
              break;
            case ExprOp::Mul:
              r = a.cval * b.cval;
              break;
            default:
              r = a.cval / b.cval;
              break;
          }
          v = {true, r};
        } else {
          const bool cx = (a.is_const ? a.cval.imag() != 0.0L : a.complex_typed) ||
                          (b.is_const ? b.cval.imag() != 0.0L : b.complex_typed);
          RecoveryProgram::Ins ins;
          ins.a = materialize(a);
          ins.b = materialize(b);
          switch (n->op) {
            case ExprOp::Add:
              ins.op = cx ? Op::CAdd : Op::RAdd;
              break;
            case ExprOp::Sub:
              ins.op = cx ? Op::CSub : Op::RSub;
              break;
            case ExprOp::Mul:
              ins.op = cx ? Op::CMul : Op::RMul;
              break;
            default:
              ins.op = cx ? Op::CDiv : Op::RDiv;
              break;
          }
          v.reg = emit(ins);
          v.complex_typed = cx;
        }
        break;
      }
    }
    memo.emplace(n.get(), v);
    return v;
  }
};

RecoveryProgram::RecoveryProgram(const Expr& root, std::span<const std::string> slot_order,
                                 const ParamMap& params) {
  if (root.empty()) return;
  ProgramLowering lo{*this, slot_order, params};
  lo.complex_mode = needs_complex(root.ptr());
  try {
    const ProgramLowering::Value v = lo.lower(root.ptr());
    if (!lo.failed && v.is_const) lo.materialize(v);
  } catch (const OverflowError&) {
    lo.failed = true;  // exact folding overflowed: caller keeps the interpreter
  }
  if (lo.failed || static_cast<int>(code_.size()) > kMaxProgramRegs) {
    code_.clear();
    terms_.clear();
    pows_.clear();
    compiled_ = false;
    return;
  }
  compiled_ = !code_.empty();
}

RootValue RecoveryProgram::eval(std::span<const i64> point) const {
  if (!compiled_) throw SolveError("RecoveryProgram::eval on an uncompiled program");

  long double re[kMaxProgramRegs];
  long double im[kMaxProgramRegs];
  const size_t n = code_.size();
  for (size_t i = 0; i < n; ++i) {
    const Ins& ins = code_[i];
    switch (ins.op) {
      case Op::RConst:
        re[i] = ins.re;
        im[i] = 0.0L;
        break;
      case Op::RPoly: {
        long double acc = 0.0L;
        for (int t = ins.term_lo; t < ins.term_hi; ++t) {
          const PolyTerm& term = terms_[static_cast<size_t>(t)];
          long double v = term.coef;
          for (int p = term.pow_lo; p < term.pow_hi; ++p) {
            const PolyPow& pw = pows_[static_cast<size_t>(p)];
            const long double base = static_cast<long double>(point[static_cast<size_t>(pw.slot)]);
            for (int e = 0; e < pw.exp; ++e) v *= base;
          }
          acc += v;
        }
        re[i] = acc;
        im[i] = 0.0L;
        break;
      }
      case Op::RAdd:
        re[i] = re[ins.a] + re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RSub:
        re[i] = re[ins.a] - re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RMul:
        re[i] = re[ins.a] * re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RDiv:
        re[i] = re[ins.a] / re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RNeg:
        re[i] = -re[ins.a];
        im[i] = 0.0L;
        break;
      case Op::RSqrt:
        re[i] = std::sqrt(re[ins.a]);  // NaN on negative: guard handles it
        im[i] = 0.0L;
        break;
      case Op::RCbrt:
        re[i] = std::cbrt(re[ins.a]);
        im[i] = 0.0L;
        break;
      case Op::CConst:
        re[i] = ins.re;
        im[i] = ins.im;
        break;
      case Op::CAdd:
        re[i] = re[ins.a] + re[ins.b];
        im[i] = im[ins.a] + im[ins.b];
        break;
      case Op::CSub:
        re[i] = re[ins.a] - re[ins.b];
        im[i] = im[ins.a] - im[ins.b];
        break;
      case Op::CMul: {
        const long double ar = re[ins.a], ai = im[ins.a];
        const long double br = re[ins.b], bi = im[ins.b];
        re[i] = ar * br - ai * bi;
        im[i] = ar * bi + ai * br;
        break;
      }
      case Op::CDiv: {
        const cld z = cld{re[ins.a], im[ins.a]} / cld{re[ins.b], im[ins.b]};
        re[i] = z.real();
        im[i] = z.imag();
        break;
      }
      case Op::CNeg:
        re[i] = -re[ins.a];
        im[i] = -im[ins.a];
        break;
      case Op::CSqrt: {
        const cld z = std::sqrt(cld{re[ins.a], im[ins.a]});
        re[i] = z.real();
        im[i] = z.imag();
        break;
      }
      case Op::CCbrt: {
        const cld z = principal_cbrt(cld{re[ins.a], im[ins.a]});
        re[i] = z.real();
        im[i] = z.imag();
        break;
      }
    }
  }
  return {re[n - 1], im[n - 1]};
}

bool RecoveryProgram::uses_complex() const {
  for (const Ins& ins : code_)
    if (ins.op >= Op::CConst) return true;
  return false;
}

std::string RecoveryProgram::str() const {
  static const char* names[] = {"rconst", "rpoly", "radd", "rsub", "rmul", "rdiv",
                                "rneg",   "rsqrt", "rcbrt", "cconst", "cadd", "csub",
                                "cmul",   "cdiv",  "cneg", "csqrt", "ccbrt"};
  std::string s;
  for (size_t i = 0; i < code_.size(); ++i) {
    const Ins& ins = code_[i];
    s += "r" + std::to_string(i) + " = " + names[static_cast<int>(ins.op)];
    if (ins.op == Op::RConst || ins.op == Op::CConst) {
      s += " " + std::to_string(static_cast<double>(ins.re));
      if (ins.op == Op::CConst) s += "+" + std::to_string(static_cast<double>(ins.im)) + "i";
    } else if (ins.op == Op::RPoly) {
      s += " [" + std::to_string(ins.term_hi - ins.term_lo) + " terms]";
    } else {
      s += " r" + std::to_string(ins.a);
      if (ins.b >= 0) s += " r" + std::to_string(ins.b);
    }
    s += "\n";
  }
  return s;
}

}  // namespace nrc
