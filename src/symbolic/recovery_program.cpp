#include "symbolic/recovery_program.hpp"

#include <cmath>
#include <complex>
#include <map>

#include "core/real_solvers.hpp"
#include "math/roots.hpp"
#include "runtime/simd_abi.hpp"
#include "support/error.hpp"

namespace nrc {

namespace {

using cld = std::complex<long double>;

constexpr long double kPi = 3.14159265358979323846264338327950288L;

/// Does the tree contain a cube root or a root of unity?  Those are the
/// Cardano/Ferrari shapes whose intermediate values can be genuinely
/// complex (casus irreducibilis) even though the recovered index is real.
bool needs_complex(const ExprPtr& n) {
  if (!n) return false;
  if (n->op == ExprOp::Cis || n->op == ExprOp::Cbrt) return true;
  return needs_complex(n->a) || needs_complex(n->b);
}

}  // namespace

bool RootValue::finite() const { return std::isfinite(re) && std::isfinite(im); }

void ferrari_estimate4(const double* A, size_t stride, int branch, i64 est[4],
                       bool est_ok[4]) {
  using simd::vf64;
  const vf64 zero = simd::set1(0.0);
  const vf64 half = simd::set1(0.5);
  auto col = [&](int e) {
    return simd::set(A[static_cast<size_t>(e)], A[stride + static_cast<size_t>(e)],
                     A[2 * stride + static_cast<size_t>(e)],
                     A[3 * stride + static_cast<size_t>(e)]);
  };
  const vf64 a4 = col(4);
  const vf64 b = simd::div(col(3), a4);
  const vf64 c = simd::div(col(2), a4);
  const vf64 d = simd::div(col(1), a4);
  const vf64 e = simd::div(col(0), a4);

  // Depressed quartic y^4 + p y^2 + q y + r (x = y - b/4).
  const vf64 b2 = simd::mul(b, b);
  const vf64 p = simd::sub(c, simd::mul(simd::set1(3.0 / 8.0), b2));
  const vf64 q = simd::add(simd::sub(d, simd::mul(half, simd::mul(b, c))),
                           simd::mul(simd::set1(1.0 / 8.0), simd::mul(b2, b)));
  const vf64 r = simd::sub(
      simd::add(simd::sub(e, simd::mul(simd::set1(0.25), simd::mul(b, d))),
                simd::mul(simd::set1(1.0 / 16.0), simd::mul(b2, c))),
      simd::mul(simd::set1(3.0 / 256.0), simd::mul(b2, b2)));

  const int rb = branch / 4;  // resolvent Cardano branch, 0..2
  const int qb = branch % 4;  // quadratic-factor branch, 0..3

  // Resolvent cubic w^3 + 2p w^2 + (p^2 - 4r) w - q^2 = 0 (monic): the
  // Viete/Cardano case analysis is branchy trig, evaluated per lane.
  const vf64 rB2 = simd::mul(simd::set1(2.0), p);
  const vf64 rB1 = simd::sub(simd::mul(p, p), simd::mul(simd::set1(4.0), r));
  const vf64 rB0 = simd::neg(simd::mul(q, q));
  double wre[4], wim[4];
  for (int l = 0; l < 4; ++l) {
    const CardanoBranch<double> w = cardano_branch<double>(
        simd::lane(rB2, l), simd::lane(rB1, l), simd::lane(rB0, l), rb);
    wre[l] = w.re;
    wim[l] = w.im;
  }
  const vf64 wr = simd::set(wre[0], wre[1], wre[2], wre[3]);
  const vf64 wi = simd::set(wim[0], wim[1], wim[2], wim[3]);

  // Quadratic-factor stage on the explicit (re, im) pair — see
  // ferrari_estimate for the derivation.  alpha = csqrt(w), principal:
  // the Im sign carries sign(Im w), applied with a mask blend.
  const vf64 aw = simd::sqrt(simd::add(simd::mul(wr, wr), simd::mul(wi, wi)));
  const vf64 ar = simd::sqrt(simd::mul(half, simd::add(aw, wr)));
  const vf64 ai0 = simd::sqrt(simd::mul(half, simd::sub(aw, wr)));
  const vf64 ai = simd::select(simd::cmp_ge(wi, zero), ai0, simd::neg(ai0));
  // q / alpha = q * conj(alpha) / |w|  (w == 0 lanes degenerate to NaN).
  const vf64 qoaw = simd::div(q, aw);
  const vf64 qar = simd::mul(qoaw, ar);
  const vf64 qai = simd::neg(simd::mul(qoaw, ai));
  // D = alpha^2 - 4*{beta,gamma} = w - 2*(p + w +- q/alpha).
  const vf64 sqar = qb < 2 ? simd::neg(qar) : qar;
  const vf64 sqai = qb < 2 ? simd::neg(qai) : qai;
  const vf64 Dr =
      simd::sub(wr, simd::mul(simd::set1(2.0), simd::add(simd::add(p, wr), sqar)));
  const vf64 Di = simd::neg(simd::add(wi, simd::mul(simd::set1(2.0), sqai)));
  const vf64 ad = simd::sqrt(simd::add(simd::mul(Dr, Dr), simd::mul(Di, Di)));
  const vf64 sr = simd::sqrt(simd::mul(half, simd::add(ad, Dr)));  // Re(csqrt(D))
  const vf64 sa = qb < 2 ? simd::neg(ar) : ar;
  const vf64 y =
      simd::mul(half, (qb & 1) ? simd::sub(sa, sr) : simd::add(sa, sr));

  const vf64 root = simd::sub(y, simd::mul(simd::set1(0.25), b));
  const vf64 flo = simd::floor(simd::add(root, simd::set1(1e-9)));
  for (int l = 0; l < 4; ++l) {
    const double rl = simd::lane(root, l);
    est_ok[l] = simd::lane(a4, l) != 0.0 && index_range_finite(rl);
    est[l] = est_ok[l] ? static_cast<i64>(simd::lane(flo, l)) : 0;
  }
}

/// Lowering context: walks the Expr DAG once, folding constants (with the
/// bound parameters substituted into every polynomial leaf) and memoizing
/// shared nodes so CSE survives into the bytecode.
struct ProgramLowering {
  using Op = RecoveryProgram::Op;

  RecoveryProgram& prog;
  std::span<const std::string> order;
  const ParamMap& params;
  bool complex_mode = false;
  bool failed = false;

  /// A lowered subtree: either a folded constant or a register.
  struct Value {
    bool is_const = false;
    cld cval{};
    int reg = -1;
    bool complex_typed = false;
  };

  std::map<const ExprNode*, Value> memo{};
  std::map<std::pair<long double, long double>, int> const_regs{};

  int emit(RecoveryProgram::Ins ins) {
    if (static_cast<int>(prog.code_.size()) >= kMaxProgramRegs) {
      failed = true;
      return 0;
    }
    prog.code_.push_back(ins);
    return static_cast<int>(prog.code_.size()) - 1;
  }

  int materialize(const Value& v) {
    if (!v.is_const) return v.reg;
    const auto key = std::make_pair(v.cval.real(), v.cval.imag());
    auto it = const_regs.find(key);
    if (it != const_regs.end()) return it->second;
    RecoveryProgram::Ins ins;
    ins.op = v.cval.imag() == 0.0L ? Op::RConst : Op::CConst;
    ins.re = v.cval.real();
    ins.im = v.cval.imag();
    const int reg = emit(ins);
    const_regs.emplace(key, reg);
    return reg;
  }

  Value lower_poly(const Polynomial& p) {
    Polynomial q = p;
    try {
      for (const auto& [name, val] : params) q = q.substitute(name, Polynomial(val));
    } catch (const OverflowError&) {
      // Folding pushed a coefficient past the exact int64 range; the
      // generic interpreter evaluates the unfolded tree fine.
      failed = true;
      return {true, cld{0.0L, 0.0L}};
    }
    if (q.is_constant()) return {true, cld{q.constant_term().to_long_double(), 0.0L}};

    RecoveryProgram::Ins ins;
    ins.op = Op::RPoly;
    ins.term_lo = static_cast<int>(prog.terms_.size());
    for (const auto& [m, c] : q.terms()) {
      RecoveryProgram::PolyTerm t;
      t.coef = c.to_long_double();
      t.pow_lo = static_cast<int>(prog.pows_.size());
      for (const auto& [var, exp] : m.factors()) {
        int slot = -1;
        for (size_t s = 0; s < order.size(); ++s) {
          if (order[s] == var) {
            slot = static_cast<int>(s);
            break;
          }
        }
        if (slot < 0) {
          failed = true;  // unbound variable: leave it to the interpreter
          return {true, cld{0.0L, 0.0L}};
        }
        prog.pows_.push_back({slot, exp});
      }
      t.pow_hi = static_cast<int>(prog.pows_.size());
      prog.terms_.push_back(t);
    }
    ins.term_hi = static_cast<int>(prog.terms_.size());
    Value v;
    v.reg = emit(ins);
    return v;
  }

  static cld fold_unary(ExprOp op, const cld& a) {
    switch (op) {
      case ExprOp::Neg:
        return -a;
      case ExprOp::Sqrt:
        return std::sqrt(a);
      default:  // Cbrt
        return principal_cbrt(a);
    }
  }

  Value lower(const ExprPtr& n) {
    auto it = memo.find(n.get());
    if (it != memo.end()) return it->second;
    Value v;
    switch (n->op) {
      case ExprOp::Const:
        v = {true, cld{n->cval.to_long_double(), 0.0L}};
        break;
      case ExprOp::Cis: {
        const long double ang = 2.0L * kPi * static_cast<long double>(n->cis_k) /
                                static_cast<long double>(n->cis_n);
        v = {true, cld{std::cos(ang), std::sin(ang)}};
        break;
      }
      case ExprOp::Poly:
        v = lower_poly(n->poly);
        break;
      case ExprOp::Neg:
      case ExprOp::Sqrt:
      case ExprOp::Cbrt: {
        const Value a = lower(n->a);
        if (failed) return a;
        if (a.is_const) {
          v = {true, fold_unary(n->op, a.cval)};
        } else {
          // Sqrt/Cbrt go complex exactly when the branch family can make
          // their arguments negative along a real-rooted recovery (the
          // Cardano/Ferrari trees); a lone quadratic sqrt stays real and
          // degenerates to NaN, which the caller's guard catches.
          const bool cx = n->op == ExprOp::Neg
                              ? a.complex_typed
                              : (complex_mode || a.complex_typed);
          RecoveryProgram::Ins ins;
          ins.a = materialize(a);
          switch (n->op) {
            case ExprOp::Neg:
              ins.op = cx ? Op::CNeg : Op::RNeg;
              break;
            case ExprOp::Sqrt:
              ins.op = cx ? Op::CSqrt : Op::RSqrt;
              break;
            default:
              ins.op = cx ? Op::CCbrt : Op::RCbrt;
              break;
          }
          v.reg = emit(ins);
          v.complex_typed = cx;
        }
        break;
      }
      default: {  // binary ops
        const Value a = lower(n->a);
        if (failed) return a;
        const Value b = lower(n->b);
        if (failed) return b;
        if (a.is_const && b.is_const) {
          cld r;
          switch (n->op) {
            case ExprOp::Add:
              r = a.cval + b.cval;
              break;
            case ExprOp::Sub:
              r = a.cval - b.cval;
              break;
            case ExprOp::Mul:
              r = a.cval * b.cval;
              break;
            default:
              r = a.cval / b.cval;
              break;
          }
          v = {true, r};
        } else {
          const bool cx = (a.is_const ? a.cval.imag() != 0.0L : a.complex_typed) ||
                          (b.is_const ? b.cval.imag() != 0.0L : b.complex_typed);
          RecoveryProgram::Ins ins;
          ins.a = materialize(a);
          ins.b = materialize(b);
          switch (n->op) {
            case ExprOp::Add:
              ins.op = cx ? Op::CAdd : Op::RAdd;
              break;
            case ExprOp::Sub:
              ins.op = cx ? Op::CSub : Op::RSub;
              break;
            case ExprOp::Mul:
              ins.op = cx ? Op::CMul : Op::RMul;
              break;
            default:
              ins.op = cx ? Op::CDiv : Op::RDiv;
              break;
          }
          v.reg = emit(ins);
          v.complex_typed = cx;
        }
        break;
      }
    }
    memo.emplace(n.get(), v);
    return v;
  }
};

RecoveryProgram::RecoveryProgram(const Expr& root, std::span<const std::string> slot_order,
                                 const ParamMap& params) {
  if (root.empty()) return;
  ProgramLowering lo{*this, slot_order, params};
  lo.complex_mode = needs_complex(root.ptr());
  try {
    const ProgramLowering::Value v = lo.lower(root.ptr());
    if (!lo.failed && v.is_const) lo.materialize(v);
  } catch (const OverflowError&) {
    lo.failed = true;  // exact folding overflowed: caller keeps the interpreter
  }
  if (lo.failed || static_cast<int>(code_.size()) > kMaxProgramRegs) {
    code_.clear();
    terms_.clear();
    pows_.clear();
    compiled_ = false;
    return;
  }
  compiled_ = !code_.empty();
}

RootValue RecoveryProgram::eval(std::span<const i64> point) const {
  if (!compiled_) throw SolveError("RecoveryProgram::eval on an uncompiled program");

  long double re[kMaxProgramRegs];
  long double im[kMaxProgramRegs];
  const size_t n = code_.size();
  for (size_t i = 0; i < n; ++i) {
    const Ins& ins = code_[i];
    switch (ins.op) {
      case Op::RConst:
        re[i] = ins.re;
        im[i] = 0.0L;
        break;
      case Op::RPoly: {
        long double acc = 0.0L;
        for (int t = ins.term_lo; t < ins.term_hi; ++t) {
          const PolyTerm& term = terms_[static_cast<size_t>(t)];
          long double v = term.coef;
          for (int p = term.pow_lo; p < term.pow_hi; ++p) {
            const PolyPow& pw = pows_[static_cast<size_t>(p)];
            const long double base = static_cast<long double>(point[static_cast<size_t>(pw.slot)]);
            for (int e = 0; e < pw.exp; ++e) v *= base;
          }
          acc += v;
        }
        re[i] = acc;
        im[i] = 0.0L;
        break;
      }
      case Op::RAdd:
        re[i] = re[ins.a] + re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RSub:
        re[i] = re[ins.a] - re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RMul:
        re[i] = re[ins.a] * re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RDiv:
        re[i] = re[ins.a] / re[ins.b];
        im[i] = 0.0L;
        break;
      case Op::RNeg:
        re[i] = -re[ins.a];
        im[i] = 0.0L;
        break;
      case Op::RSqrt:
        re[i] = std::sqrt(re[ins.a]);  // NaN on negative: guard handles it
        im[i] = 0.0L;
        break;
      case Op::RCbrt:
        re[i] = std::cbrt(re[ins.a]);
        im[i] = 0.0L;
        break;
      case Op::CConst:
        re[i] = ins.re;
        im[i] = ins.im;
        break;
      case Op::CAdd:
        re[i] = re[ins.a] + re[ins.b];
        im[i] = im[ins.a] + im[ins.b];
        break;
      case Op::CSub:
        re[i] = re[ins.a] - re[ins.b];
        im[i] = im[ins.a] - im[ins.b];
        break;
      case Op::CMul: {
        const long double ar = re[ins.a], ai = im[ins.a];
        const long double br = re[ins.b], bi = im[ins.b];
        re[i] = ar * br - ai * bi;
        im[i] = ar * bi + ai * br;
        break;
      }
      case Op::CDiv: {
        const cld z = cld{re[ins.a], im[ins.a]} / cld{re[ins.b], im[ins.b]};
        re[i] = z.real();
        im[i] = z.imag();
        break;
      }
      case Op::CNeg:
        re[i] = -re[ins.a];
        im[i] = -im[ins.a];
        break;
      case Op::CSqrt: {
        const cld z = std::sqrt(cld{re[ins.a], im[ins.a]});
        re[i] = z.real();
        im[i] = z.imag();
        break;
      }
      case Op::CCbrt: {
        const cld z = principal_cbrt(cld{re[ins.a], im[ins.a]});
        re[i] = z.real();
        im[i] = z.imag();
        break;
      }
    }
  }
  return {re[n - 1], im[n - 1]};
}

void RecoveryProgram::eval4(const i64* pts, size_t stride, RootValue out[4]) const {
  if (!compiled_) throw SolveError("RecoveryProgram::eval4 on an uncompiled program");

  using simd::vf64;
  vf64 re[kMaxProgramRegs];
  vf64 im[kMaxProgramRegs];
  const vf64 zero = simd::set1(0.0);

  // Gather the four lanes of one slot into a vector.
  auto slot_lanes = [&](int slot) {
    return simd::set(static_cast<double>(pts[static_cast<size_t>(slot)]),
                     static_cast<double>(pts[stride + static_cast<size_t>(slot)]),
                     static_cast<double>(pts[2 * stride + static_cast<size_t>(slot)]),
                     static_cast<double>(pts[3 * stride + static_cast<size_t>(slot)]));
  };
  // Per-lane scalar escape for the ops without a vector form.
  auto map_lanes = [&](vf64 a, auto&& f) {
    double r[4];
    for (int l = 0; l < 4; ++l) r[l] = f(simd::lane(a, l));
    return simd::set(r[0], r[1], r[2], r[3]);
  };
  // Per-lane complex escapes in double (not the scalar eval()'s long
  // double; the caller's guard absorbs the precision gap).
  using cd = std::complex<double>;
  auto map_lanes_c = [&](vf64 ar, vf64 ai, vf64* rr, vf64* ri, auto&& f) {
    double lr[4], li[4], vr[4], vi[4];
    simd::store(lr, ar);
    simd::store(li, ai);
    for (int l = 0; l < 4; ++l) {
      const cd z = f(cd{lr[l], li[l]});
      vr[l] = z.real();
      vi[l] = z.imag();
    }
    *rr = simd::set(vr[0], vr[1], vr[2], vr[3]);
    *ri = simd::set(vi[0], vi[1], vi[2], vi[3]);
  };

  const size_t n = code_.size();
  for (size_t i = 0; i < n; ++i) {
    const Ins& ins = code_[i];
    switch (ins.op) {
      case Op::RConst:
        re[i] = simd::set1(static_cast<double>(ins.re));
        im[i] = zero;
        break;
      case Op::RPoly: {
        vf64 acc = zero;
        for (int t = ins.term_lo; t < ins.term_hi; ++t) {
          const PolyTerm& term = terms_[static_cast<size_t>(t)];
          vf64 v = simd::set1(static_cast<double>(term.coef));
          for (int p = term.pow_lo; p < term.pow_hi; ++p) {
            const PolyPow& pw = pows_[static_cast<size_t>(p)];
            const vf64 base = slot_lanes(pw.slot);
            for (int e = 0; e < pw.exp; ++e) v = simd::mul(v, base);
          }
          acc = simd::add(acc, v);
        }
        re[i] = acc;
        im[i] = zero;
        break;
      }
      case Op::RAdd:
        re[i] = simd::add(re[ins.a], re[ins.b]);
        im[i] = zero;
        break;
      case Op::RSub:
        re[i] = simd::sub(re[ins.a], re[ins.b]);
        im[i] = zero;
        break;
      case Op::RMul:
        re[i] = simd::mul(re[ins.a], re[ins.b]);
        im[i] = zero;
        break;
      case Op::RDiv:
        re[i] = simd::div(re[ins.a], re[ins.b]);
        im[i] = zero;
        break;
      case Op::RNeg:
        re[i] = simd::neg(re[ins.a]);
        im[i] = zero;
        break;
      case Op::RSqrt:
        re[i] = simd::sqrt(re[ins.a]);  // NaN lanes on negative: guard handles
        im[i] = zero;
        break;
      case Op::RCbrt:
        re[i] = map_lanes(re[ins.a], [](double x) { return std::cbrt(x); });
        im[i] = zero;
        break;
      case Op::CConst:
        re[i] = simd::set1(static_cast<double>(ins.re));
        im[i] = simd::set1(static_cast<double>(ins.im));
        break;
      case Op::CAdd:
        re[i] = simd::add(re[ins.a], re[ins.b]);
        im[i] = simd::add(im[ins.a], im[ins.b]);
        break;
      case Op::CSub:
        re[i] = simd::sub(re[ins.a], re[ins.b]);
        im[i] = simd::sub(im[ins.a], im[ins.b]);
        break;
      case Op::CMul: {
        const vf64 ar = re[ins.a], ai = im[ins.a];
        const vf64 br = re[ins.b], bi = im[ins.b];
        re[i] = simd::sub(simd::mul(ar, br), simd::mul(ai, bi));
        im[i] = simd::add(simd::mul(ar, bi), simd::mul(ai, br));
        break;
      }
      case Op::CDiv: {
        // (a * conj b) / |b|^2 componentwise; moderate magnitudes only
        // reach this path, and the exact guard absorbs rounding.
        const vf64 ar = re[ins.a], ai = im[ins.a];
        const vf64 br = re[ins.b], bi = im[ins.b];
        const vf64 den = simd::add(simd::mul(br, br), simd::mul(bi, bi));
        re[i] = simd::div(simd::add(simd::mul(ar, br), simd::mul(ai, bi)), den);
        im[i] = simd::div(simd::sub(simd::mul(ai, br), simd::mul(ar, bi)), den);
        break;
      }
      case Op::CNeg:
        re[i] = simd::neg(re[ins.a]);
        im[i] = simd::neg(im[ins.a]);
        break;
      case Op::CSqrt:
        map_lanes_c(re[ins.a], im[ins.a], &re[i], &im[i],
                    [](const cd& z) { return std::sqrt(z); });
        break;
      case Op::CCbrt:
        // Same principal branch as principal_cbrt (arg/3 in (-pi/3,
        // pi/3]), computed in double.
        map_lanes_c(re[ins.a], im[ins.a], &re[i], &im[i], [](const cd& z) {
          if (z == cd{0.0, 0.0}) return cd{0.0, 0.0};
          const double m = std::cbrt(std::hypot(z.real(), z.imag()));
          const double a = std::atan2(z.imag(), z.real()) / 3.0;
          return cd{m * std::cos(a), m * std::sin(a)};
        });
        break;
    }
  }
  for (int l = 0; l < 4; ++l)
    out[l] = {static_cast<long double>(simd::lane(re[n - 1], l)),
              static_cast<long double>(simd::lane(im[n - 1], l))};
}

bool RecoveryProgram::uses_complex() const {
  for (const Ins& ins : code_)
    if (ins.op >= Op::CConst) return true;
  return false;
}

std::string RecoveryProgram::str() const {
  static const char* names[] = {"rconst", "rpoly", "radd", "rsub", "rmul", "rdiv",
                                "rneg",   "rsqrt", "rcbrt", "cconst", "cadd", "csub",
                                "cmul",   "cdiv",  "cneg", "csqrt", "ccbrt"};
  std::string s;
  for (size_t i = 0; i < code_.size(); ++i) {
    const Ins& ins = code_[i];
    s += "r" + std::to_string(i) + " = " + names[static_cast<int>(ins.op)];
    if (ins.op == Op::RConst || ins.op == Op::CConst) {
      s += " " + std::to_string(static_cast<double>(ins.re));
      if (ins.op == Op::CConst) s += "+" + std::to_string(static_cast<double>(ins.im)) + "i";
    } else if (ins.op == Op::RPoly) {
      s += " [" + std::to_string(ins.term_hi - ins.term_lo) + " terms]";
    } else {
      s += " r" + std::to_string(ins.a);
      if (ins.b >= 0) s += " r" + std::to_string(ins.b);
    }
    s += "\n";
  }
  return s;
}

}  // namespace nrc
