#pragma once
// Error hierarchy for the nrcollapse library.
//
// All library failures are reported through exceptions derived from
// nrc::Error so that callers can catch library problems with a single
// handler while still being able to discriminate the failure class.

#include <stdexcept>
#include <string>

namespace nrc {

/// Base class of every exception thrown by nrcollapse.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Integer overflow detected in exact arithmetic (rationals, i128 eval).
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// A level equation has degree > 4 and cannot be inverted in closed form
/// (paper §IV-B).  Binary-search unranking remains available.
class DegreeError : public Error {
 public:
  explicit DegreeError(const std::string& what) : Error(what) {}
};

/// Failure while selecting or evaluating a closed-form root branch.
class SolveError : public Error {
 public:
  explicit SolveError(const std::string& what) : Error(what) {}
};

/// A loop-nest specification violates the model of paper Fig. 5
/// (non-affine bound, bound referencing an inner iterator, duplicate
/// names, empty ranges, ...).
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error(what) {}
};

/// Syntax error in the loop-nest DSL accepted by the codegen front end.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

}  // namespace nrc
