#include "support/int128.hpp"

#include <algorithm>

namespace nrc {

std::string to_string_i128(i128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  // Convert through unsigned so that INT128_MIN does not overflow on negate.
  unsigned __int128 u =
      neg ? static_cast<unsigned __int128>(-(v + 1)) + 1 : static_cast<unsigned __int128>(v);
  std::string s;
  while (u > 0) {
    s.push_back(static_cast<char>('0' + static_cast<int>(u % 10)));
    u /= 10;
  }
  if (neg) s.push_back('-');
  std::reverse(s.begin(), s.end());
  return s;
}

i128 ipow_checked(i128 base, unsigned exp) {
  i128 r = 1;
  while (exp > 0) {
    if (exp & 1u) r = checked_mul(r, base);
    exp >>= 1u;
    if (exp > 0) base = checked_mul(base, base);
  }
  return r;
}

}  // namespace nrc
