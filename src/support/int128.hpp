#pragma once
// 128-bit integer helpers with overflow checking.
//
// Exact evaluation of ranking polynomials is the correctness backbone of
// the library: the floating-point closed-form recovery is always verified
// (and if needed corrected) against exact integer evaluation.  That exact
// evaluation happens in __int128 with explicit overflow checks so that a
// user passing astronomically large parameters gets an OverflowError, not
// silent wrap-around.

#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace nrc {

using i64 = std::int64_t;
using u64 = std::uint64_t;
using i128 = __int128;

/// Decimal rendering of a signed 128-bit integer (std::to_string has no
/// __int128 overload).
std::string to_string_i128(i128 v);

/// a + b with overflow detection.  Throws OverflowError.
inline i128 checked_add(i128 a, i128 b) {
  i128 r;
  if (__builtin_add_overflow(a, b, &r)) throw OverflowError("i128 add overflow");
  return r;
}

/// a - b with overflow detection.  Throws OverflowError.
inline i128 checked_sub(i128 a, i128 b) {
  i128 r;
  if (__builtin_sub_overflow(a, b, &r)) throw OverflowError("i128 sub overflow");
  return r;
}

/// a * b with overflow detection.  Throws OverflowError.
inline i128 checked_mul(i128 a, i128 b) {
  i128 r;
  if (__builtin_mul_overflow(a, b, &r)) throw OverflowError("i128 mul overflow");
  return r;
}

/// base^exp with overflow detection.  exp == 0 yields 1.
i128 ipow_checked(i128 base, unsigned exp);

/// Narrow to int64_t; throws OverflowError when out of range.
inline i64 narrow_i64(i128 v) {
  if (v > static_cast<i128>(INT64_MAX) || v < static_cast<i128>(INT64_MIN))
    throw OverflowError("value does not fit in int64: " + to_string_i128(v));
  return static_cast<i64>(v);
}

/// Exact division; throws SolveError when b does not divide a.
/// Used when evaluating integer-valued polynomials given over a common
/// denominator: divisibility failure indicates a logic error upstream.
inline i128 exact_div(i128 a, i128 b) {
  if (b == 0 || a % b != 0)
    throw SolveError("exact_div: " + to_string_i128(a) + " not divisible by " +
                     to_string_i128(b));
  return a / b;
}

/// Floor division for int64 (rounds toward negative infinity).
inline i64 floor_div(i64 a, i64 b) {
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Checked int64 helpers used by hot-path affine-bound evaluation.
inline i64 checked_add_i64(i64 a, i64 b) {
  i64 r;
  if (__builtin_add_overflow(a, b, &r)) throw OverflowError("i64 add overflow");
  return r;
}
inline i64 checked_mul_i64(i64 a, i64 b) {
  i64 r;
  if (__builtin_mul_overflow(a, b, &r)) throw OverflowError("i64 mul overflow");
  return r;
}

}  // namespace nrc
