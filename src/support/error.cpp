// Intentionally almost empty: the error hierarchy is header-only, but we
// anchor the vtables here so the types have a single home TU.
#include "support/error.hpp"

namespace nrc {
// Anchor (nothing to define; keeping the TU ensures ODR-friendly linkage
// of the inline class hierarchy and provides a place for future helpers).
}  // namespace nrc
