#include "viz/ascii_domain.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "support/error.hpp"

namespace nrc::viz {
namespace {

char thread_glyph(i64 t) {
  if (t < 10) return static_cast<char>('0' + t);
  if (t < 36) return static_cast<char>('a' + (t - 10));
  return '*';
}

}  // namespace

std::string render_domain(const NestSpec& spec, const ParamMap& params,
                          Assignment assignment, const RenderOptions& opt) {
  if (spec.depth() != 2)
    throw SpecError("render_domain: only depth-2 nests can be drawn");
  if (opt.threads < 1) throw SpecError("render_domain: threads must be >= 1");

  const auto pts = domain_points(spec, params);
  if (pts.empty()) return "(empty domain)\n";
  if (static_cast<int>(pts.size()) > opt.max_cells)
    throw SpecError("render_domain: domain too large to draw (" +
                    std::to_string(pts.size()) + " points)");

  i64 imin = pts.front()[0], imax = pts.front()[0];
  i64 jmin = pts.front()[1], jmax = pts.front()[1];
  for (const auto& p : pts) {
    imin = std::min(imin, p[0]);
    imax = std::max(imax, p[0]);
    jmin = std::min(jmin, p[1]);
    jmax = std::max(jmax, p[1]);
  }

  // Owner of each point under the requested schedule.
  std::map<std::pair<i64, i64>, i64> owner;
  if (assignment == Assignment::CollapsedStatic) {
    const i64 total = static_cast<i64>(pts.size());
    const i64 base = total / opt.threads;
    const i64 rem = total % opt.threads;
    i64 at = 0;
    for (i64 t = 0; t < opt.threads; ++t) {
      const i64 cnt = base + (t < rem ? 1 : 0);
      for (i64 q = 0; q < cnt; ++q, ++at)
        owner[{pts[static_cast<size_t>(at)][0], pts[static_cast<size_t>(at)][1]}] = t;
    }
  } else {
    // Contiguous slices of the distinct outer values (schedule(static)).
    std::vector<i64> outers;
    for (const auto& p : pts)
      if (outers.empty() || outers.back() != p[0]) outers.push_back(p[0]);
    std::map<i64, i64> row_owner;
    const i64 n = static_cast<i64>(outers.size());
    const i64 base = n / opt.threads;
    const i64 rem = n % opt.threads;
    i64 at = 0;
    for (i64 t = 0; t < opt.threads; ++t) {
      const i64 cnt = base + (t < rem ? 1 : 0);
      for (i64 q = 0; q < cnt; ++q) row_owner[outers[static_cast<size_t>(at++)]] = t;
    }
    for (const auto& p : pts) owner[{p[0], p[1]}] = row_owner[p[0]];
  }

  std::string out;
  out += "rows: " + spec.at(0).var + " = " + std::to_string(imin) + ".." +
         std::to_string(imax) + ", cols: " + spec.at(1).var + " = " +
         std::to_string(jmin) + ".." + std::to_string(jmax) + "; glyph = thread id\n";
  for (i64 i = imin; i <= imax; ++i) {
    for (i64 j = jmin; j <= jmax; ++j) {
      auto it = owner.find({i, j});
      out += it == owner.end() ? opt.empty : thread_glyph(it->second);
    }
    out += '\n';
  }
  return out;
}

}  // namespace nrc::viz
