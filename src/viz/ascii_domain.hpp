#pragma once
// ASCII rendering of 2-D iteration domains and their thread assignment —
// the textual form of the paper's Fig. 2 ("unbalanced distribution of
// iterations among 5 threads of the correlation iteration domain").
//
// Each cell of the picture is one (outer, inner) iteration; the glyph is
// the digit/letter of the thread that executes it under the chosen
// schedule, so the skew of outer-static assignment versus the level
// stripes of collapsed assignment is visible at a glance.

#include <string>

#include "core/collapse.hpp"
#include "polyhedral/domain.hpp"

namespace nrc::viz {

enum class Assignment {
  OuterStatic,      ///< contiguous slices of the outermost loop
  CollapsedStatic,  ///< contiguous rank blocks of the collapsed loop
};

struct RenderOptions {
  int threads = 5;        ///< paper Fig. 2 uses 5
  int max_cells = 4096;   ///< refuse to render silly sizes
  char empty = '.';       ///< glyph for points outside the domain
};

/// Render a depth-2 nest's domain with per-thread ownership glyphs.
/// Throws SpecError for nests of other depths or oversized domains.
std::string render_domain(const NestSpec& spec, const ParamMap& params,
                          Assignment assignment, const RenderOptions& opt = {});

}  // namespace nrc::viz
