#include "jit/kernel_cache.hpp"

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace nrc {

/// The cache's whole mutable state: the PlanCacheState shape (PR 7)
/// specialized to kernels.  Entries hold build futures, not kernels;
/// the shard lock covers map/list surgery only, never a render,
/// compile or future wait.
struct KernelCacheState {
  using KernelPtr = std::shared_ptr<const JitKernel>;
  using KernelFuture = std::shared_future<KernelPtr>;

  /// The id distinguishes this installation from a later reinstall of
  /// the same key: a failing builder must only uncache its OWN entry.
  struct Entry {
    std::uint64_t id = 0;
    KernelFuture fut;
  };

  struct Shard {
    mutable std::mutex mu;
    KernelCacheStats stats;
    std::list<std::pair<std::string, Entry>> lru;  // most recent first
    std::unordered_map<std::string, decltype(lru)::iterator> map;
    std::uint64_t next_id = 0;
  };

  size_t capacity = 32;
  std::vector<std::unique_ptr<Shard>> shards;

  mutable std::mutex hook_mu;
  std::function<void(const std::string&)> build_hook;

  Shard& shard_for(const std::string& key) {
    return *shards[std::hash<std::string>{}(key) % shards.size()];
  }
  const Shard& shard_for(const std::string& key) const {
    return *shards[std::hash<std::string>{}(key) % shards.size()];
  }

  KernelCacheStats merged_stats() const {
    KernelCacheStats total;
    for (const auto& sh : shards) {
      std::lock_guard<std::mutex> lock(sh->mu);
      total += sh->stats;
    }
    return total;
  }
};

std::string KernelCache::kernel_key(const CollapsePlan& plan, const Schedule& s) {
  return plan.serialize() + "|sched:" + JitKernel::schedule_key(s) +
         "|abi:" + std::to_string(JitKernel::kAbiVersion);
}

KernelCache::KernelCache(size_t capacity_per_shard, size_t shards)
    : state_(std::make_shared<KernelCacheState>()) {
  state_->capacity = capacity_per_shard > 0 ? capacity_per_shard : 1;
  if (shards < 1) shards = 1;
  state_->shards.reserve(shards);
  for (size_t i = 0; i < shards; ++i)
    state_->shards.push_back(std::make_unique<KernelCacheState::Shard>());
}

KernelCache::~KernelCache() = default;

std::shared_ptr<const JitKernel> KernelCache::get(
    std::shared_ptr<const CollapsePlan> plan, const Schedule& s, const JitOptions& opt) {
  KernelCacheState& st = *state_;
  const std::string key = kernel_key(*plan, s);
  KernelCacheState::Shard& sh = st.shard_for(key);

  // Phase 1, under the shard lock: look up or install the entry.
  std::promise<KernelCacheState::KernelPtr> prom;
  KernelCacheState::KernelFuture fut;
  std::uint64_t my_id = 0;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    if (auto it = sh.map.find(key); it != sh.map.end()) {
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      fut = it->second->second.fut;
    } else {
      builder = true;
      my_id = ++sh.next_id;
      fut = prom.get_future().share();
      sh.lru.emplace_front(key, KernelCacheState::Entry{my_id, fut});
      sh.map.emplace(key, sh.lru.begin());
      if (sh.lru.size() > st.capacity) {
        // Evicting an in-flight entry is safe: waiters hold their own
        // future copies; the builder only loses the right to stay
        // cached (and its dlopen handle stays alive through the
        // shared_ptr every consumer already holds).
        sh.map.erase(sh.lru.back().first);
        sh.lru.pop_back();
        ++sh.stats.evictions;
      }
    }
  }

  if (!builder) {
    KernelCacheState::KernelPtr kernel = fut.get();
    std::lock_guard<std::mutex> lock(sh.mu);
    ++sh.stats.hits;
    return kernel;
  }

  // Phase 2, builder path, OUTSIDE all locks: render + compile +
  // dlopen.  JitKernel::build never throws for toolchain/plan reasons
  // (it lands a fallback kernel), so the exception arm only covers
  // genuinely exceptional failures (allocation, serialization).
  try {
    {
      std::function<void(const std::string&)> hook;
      {
        std::lock_guard<std::mutex> hlock(st.hook_mu);
        hook = st.build_hook;
      }
      if (hook) hook(key);
    }

    KernelCacheState::KernelPtr kernel = JitKernel::build(std::move(plan), s, opt);
    prom.set_value(kernel);
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      ++sh.stats.misses;
      if (kernel->info().compiled && !kernel->info().from_disk) ++sh.stats.compiles;
      if (kernel->info().from_disk) ++sh.stats.disk_hits;
      if (!kernel->info().compiled) ++sh.stats.fallbacks;
      sh.stats.compile_ns += kernel->info().compile_ns;
    }
    return kernel;
  } catch (...) {
    prom.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if (auto it = sh.map.find(key);
          it != sh.map.end() && it->second->second.id == my_id) {
        sh.lru.erase(it->second);
        sh.map.erase(it);
      }
    }
    throw;
  }
}

std::shared_ptr<const JitKernel> KernelCache::peek(const CollapsePlan& plan,
                                                   const Schedule& s) const {
  const std::string key = kernel_key(plan, s);
  const KernelCacheState::Shard& sh = state_->shard_for(key);
  KernelCacheState::KernelFuture fut;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.map.find(key);
    if (it == sh.map.end()) return nullptr;
    fut = it->second->second.fut;
  }
  if (fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready) return nullptr;
  try {
    return fut.get();
  } catch (...) {
    return nullptr;  // a failed build racing with its uncache
  }
}

KernelCacheStats KernelCache::stats() const { return state_->merged_stats(); }

size_t KernelCache::size() const {
  size_t n = 0;
  for (const auto& sh : state_->shards) {
    std::lock_guard<std::mutex> lock(sh->mu);
    n += sh->lru.size();
  }
  return n;
}

void KernelCache::clear() {
  for (const auto& sh : state_->shards) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->lru.clear();
    sh->map.clear();
  }
}

std::string KernelCache::stats_line() const {
  const KernelCacheStats s = stats();
  char tail[64];
  std::snprintf(tail, sizeof(tail), ", compile %.1f ms",
                static_cast<double>(s.compile_ns) / 1e6);
  return "jit cache: " + std::to_string(s.hits) + " hits / " +
         std::to_string(s.misses) + " misses (" + std::to_string(s.compiles) +
         " compiles, " + std::to_string(s.disk_hits) + " disk hits, " +
         std::to_string(s.fallbacks) + " fallbacks), " +
         std::to_string(s.evictions) + " evictions, " + std::to_string(size()) +
         " kernels" + tail;
}

void KernelCache::set_build_hook(std::function<void(const std::string& key)> hook) {
  std::lock_guard<std::mutex> lock(state_->hook_mu);
  state_->build_hook = std::move(hook);
}

KernelCache& kernel_cache() {
  static KernelCache cache;
  return cache;
}

// CollapsePlan::jit routes through the process-global cache; declared
// in pipeline/plan.hpp, defined here so the pipeline layer stays free
// of JIT includes.
std::shared_ptr<const JitKernel> CollapsePlan::jit(const Schedule& s) const {
  return kernel_cache().get(shared_from_this(), s);
}

std::shared_ptr<const JitKernel> CollapsePlan::jit() const {
  return jit(auto_schedule());
}

}  // namespace nrc
