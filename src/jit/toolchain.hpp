#pragma once
// Out-of-process C toolchain driver shared by the JIT (jit_kernel.cpp)
// and the compile-and-run test legs (executor fuzzer, integration
// compile tests).
//
// Historically each compile-and-run consumer shelled out to `cc` with
// its own fixed file names under TempDir(), which leaked artifacts when
// a fuzz compile died mid-run and hard-coded the compiler.  This module
// centralizes the three concerns they share:
//
//   * compiler resolution — NRC_JIT_CC overrides CC overrides "cc",
//     re-read from the environment on every call so tests can flip it;
//   * capability probes — "does this compiler run at all" and "does it
//     accept -fopenmp", each probed once per compiler string for the
//     process lifetime (a probe is a real out-of-process compile);
//   * mkstemp-based temp handling with deterministic cleanup — every
//     intermediate (source, log, probe binaries) is an OwnedPath that
//     unlinks itself on scope exit, so a failed compile leaves nothing
//     behind; the produced artifact is handed to the caller as an
//     OwnedPath too, tying its lifetime to the CompileResult.
//
// The driver is intentionally dumb about flags: callers pass exactly
// the flag list they need ("-std=c99 -O2" for test binaries, "-O2
// -shared -fPIC" for JIT objects) and the OpenMP flag only when the
// probe says the compiler accepts it.

#include <string>
#include <vector>

#include "support/int128.hpp"

namespace nrc::jit {

/// Move-only owner of one filesystem path: unlinks it on destruction
/// unless release()d.  The unit of deterministic temp cleanup.
class OwnedPath {
 public:
  OwnedPath() = default;
  explicit OwnedPath(std::string p) : path_(std::move(p)) {}
  OwnedPath(const OwnedPath&) = delete;
  OwnedPath& operator=(const OwnedPath&) = delete;
  OwnedPath(OwnedPath&& o) noexcept : path_(std::move(o.path_)) { o.path_.clear(); }
  OwnedPath& operator=(OwnedPath&& o) noexcept;
  ~OwnedPath();

  const std::string& path() const { return path_; }
  bool empty() const { return path_.empty(); }
  /// Drop ownership: the file stays on disk, the path is returned.
  std::string release();
  /// Unlink now (idempotent).
  void reset();

 private:
  std::string path_;
};

/// mkstemp a fresh file under $TMPDIR (default /tmp) with the given
/// suffix, e.g. make_temp_file(".c").  Throws SpecError when the
/// system refuses (no writable temp dir).
OwnedPath make_temp_file(const std::string& suffix);

/// The compiler command to use: $NRC_JIT_CC if set and non-empty, else
/// $CC, else "cc".  Re-read from the environment on every call.
std::string resolve_compiler();

/// Does `cc` exist and run?  One real probe per distinct compiler
/// string per process; the result is cached.
bool compiler_works(const std::string& cc);

/// The OpenMP flag `cc` accepts ("-fopenmp"), or "" when the probe
/// compile fails.  Cached per compiler string like compiler_works().
std::string openmp_flag(const std::string& cc);

/// Convenience: is there any usable toolchain right now?
inline bool toolchain_available() { return compiler_works(resolve_compiler()); }

struct CompileResult {
  bool ok = false;
  OwnedPath artifact;    ///< the produced binary/object; unlinked when
                         ///< the result goes out of scope
  std::string log;       ///< compiler stderr (failure diagnostics)
  std::string compiler;  ///< the resolved compiler that ran
  i64 compile_ns = 0;    ///< wall-clock of the out-of-process compile
};

/// Write `source` to a temp .c file and compile it with the resolved
/// compiler: `<cc> <flags...> -o <out> <src> -lm`.  `out_suffix` names
/// the artifact's extension (".so", ".bin").  Never throws on compile
/// failure — inspect result.ok / result.log; all intermediates are
/// cleaned up on every path.
CompileResult compile_c(const std::string& source, const std::vector<std::string>& flags,
                        const std::string& out_suffix);

}  // namespace nrc::jit
