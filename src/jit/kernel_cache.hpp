#pragma once
// KernelCache: a sharded concurrent cache of compiled JitKernels,
// layered beside PlanCache with the same future-based exactly-once
// build discipline (pipeline/plan_cache.hpp, PR 7).
//
// A JIT compile is ~100 ms of out-of-process work — three orders of
// magnitude above a cold bind — so the exactly-once property matters
// even more here: the shard lock is held only to look up or install an
// entry, the render + compile + dlopen run OUTSIDE all locks, same-key
// concurrent requests join the first requester's future, and every
// caller receives the same shared immutable kernel.
//
// Keys: plan serialization + the schedule's emission-relevant fragment
// + the kernel ABI version (JitKernel::schedule_key), so two plans that
// rebuild bit-identically share a kernel and an ABI bump invalidates
// cleanly.  Fallback kernels (no toolchain, compile failure, refused
// certificate) are cached too — a missing compiler must not be
// re-probed with a full build attempt on every request — and counted
// in stats().fallbacks.
//
// The second layer is the on-disk object cache (NRC_JIT_CACHE_DIR,
// jit/jit_kernel.hpp): a process restart re-renders and re-dlopens but
// skips the compile; disk_hits counts those.

#include <functional>
#include <memory>
#include <string>

#include "jit/jit_kernel.hpp"

namespace nrc {

struct KernelCacheStats {
  i64 hits = 0;       ///< entry found (or an in-flight build joined)
  i64 misses = 0;     ///< kernel built by this request
  i64 compiles = 0;   ///< builds that ran the out-of-process compiler
  i64 disk_hits = 0;  ///< builds served by the on-disk object cache
  i64 fallbacks = 0;  ///< builds that landed a non-compiled kernel
  i64 evictions = 0;  ///< kernels dropped by the per-shard LRU
  i64 compile_ns = 0; ///< summed out-of-process compile wall clock
  i64 lookups() const { return hits + misses; }
  KernelCacheStats& operator+=(const KernelCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    compiles += o.compiles;
    disk_hits += o.disk_hits;
    fallbacks += o.fallbacks;
    evictions += o.evictions;
    compile_ns += o.compile_ns;
    return *this;
  }
};

struct KernelCacheState;

class KernelCache {
 public:
  explicit KernelCache(size_t capacity_per_shard = 32, size_t shards = 8);
  ~KernelCache();
  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  /// The front door: the cached kernel for (plan, schedule), built
  /// exactly once per key.  Never throws for toolchain/plan reasons —
  /// a failed specialization is a cached fallback kernel whose
  /// run()/fill() route through the library dispatcher.
  std::shared_ptr<const JitKernel> get(std::shared_ptr<const CollapsePlan> plan,
                                       const Schedule& s, const JitOptions& opt = {});

  /// The completed kernel for (plan, schedule) if one is cached and
  /// ready, else nullptr — a lock-only probe (describe() uses it to
  /// report jit state without triggering a compile).
  std::shared_ptr<const JitKernel> peek(const CollapsePlan& plan, const Schedule& s) const;

  KernelCacheStats stats() const;
  size_t size() const;
  void clear();

  /// One-line rendering of stats(), e.g.
  /// "jit cache: 7 hits / 2 misses (2 compiles, 0 disk hits, 0
  /// fallbacks), 0 evictions, 2 kernels, compile 231.4 ms".
  std::string stats_line() const;

  /// Test instrumentation: runs at the start of every build, outside
  /// all locks; may block or throw.  Pass nullptr to remove.
  void set_build_hook(std::function<void(const std::string& key)> hook);

  /// The canonical key (exposed for the aliasing tests).
  static std::string kernel_key(const CollapsePlan& plan, const Schedule& s);

 private:
  std::shared_ptr<KernelCacheState> state_;
};

/// The process-global kernel cache (the nrcd jitrun verb and
/// CollapsePlan::jit() route through it).
KernelCache& kernel_cache();

}  // namespace nrc
