#include "jit/toolchain.hpp"

#include <omp.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "support/error.hpp"

namespace nrc::jit {

OwnedPath& OwnedPath::operator=(OwnedPath&& o) noexcept {
  if (this != &o) {
    reset();
    path_ = std::move(o.path_);
    o.path_.clear();
  }
  return *this;
}

OwnedPath::~OwnedPath() { reset(); }

std::string OwnedPath::release() {
  std::string p = std::move(path_);
  path_.clear();
  return p;
}

void OwnedPath::reset() {
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

OwnedPath make_temp_file(const std::string& suffix) {
  const char* tmp = std::getenv("TMPDIR");
  std::string templ = (tmp && *tmp ? std::string(tmp) : std::string("/tmp"));
  templ += "/nrc_jit_XXXXXX" + suffix;
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  const int fd = ::mkstemps(buf.data(), static_cast<int>(suffix.size()));
  if (fd < 0) throw SpecError("jit: mkstemps failed for '" + templ + "'");
  ::close(fd);
  return OwnedPath(std::string(buf.data()));
}

std::string resolve_compiler() {
  if (const char* cc = std::getenv("NRC_JIT_CC"); cc && *cc) return cc;
  if (const char* cc = std::getenv("CC"); cc && *cc) return cc;
  return "cc";
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string s;
  char buf[4096];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0)
    s.append(buf, static_cast<size_t>(in.gcount()));
  return s;
}

bool write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

/// Run one compile command with stderr captured to a temp log.
/// Returns {exit-ok, log-text}.
std::pair<bool, std::string> run_compile(const std::string& cmd) {
  OwnedPath log = make_temp_file(".log");
  const std::string full = cmd + " 2>" + log.path();
  const int rc = std::system(full.c_str());
  return {rc == 0, read_file(log.path())};
}

/// Probe caches.  A probe is a real out-of-process compile, so each
/// distinct compiler string is probed at most once per process; the
/// mutex only guards the maps (the probe itself runs outside locks at
/// worst twice on a race, which is harmless).
std::mutex g_probe_mu;
std::map<std::string, bool>& works_cache() {
  static std::map<std::string, bool> m;
  return m;
}
std::map<std::string, std::string>& omp_cache() {
  static std::map<std::string, std::string> m;
  return m;
}

bool probe_works(const std::string& cc) {
  OwnedPath src = make_temp_file(".c");
  OwnedPath bin = make_temp_file(".bin");
  if (!write_file(src.path(), "int main(void) { return 0; }\n")) return false;
  auto [ok, log] = run_compile(cc + " -o " + bin.path() + " " + src.path());
  (void)log;
  return ok;
}

std::string probe_openmp(const std::string& cc) {
  OwnedPath src = make_temp_file(".c");
  OwnedPath bin = make_temp_file(".bin");
  if (!write_file(src.path(),
                  "#include <omp.h>\n"
                  "int main(void) { return omp_get_max_threads() > 0 ? 0 : 1; }\n"))
    return "";
  auto [ok, log] =
      run_compile(cc + " -fopenmp -o " + bin.path() + " " + src.path());
  (void)log;
  return ok ? "-fopenmp" : "";
}

}  // namespace

bool compiler_works(const std::string& cc) {
  {
    std::lock_guard<std::mutex> lk(g_probe_mu);
    if (auto it = works_cache().find(cc); it != works_cache().end()) return it->second;
  }
  const bool ok = probe_works(cc);
  std::lock_guard<std::mutex> lk(g_probe_mu);
  return works_cache().emplace(cc, ok).first->second;
}

std::string openmp_flag(const std::string& cc) {
  {
    std::lock_guard<std::mutex> lk(g_probe_mu);
    if (auto it = omp_cache().find(cc); it != omp_cache().end()) return it->second;
  }
  const std::string flag = compiler_works(cc) ? probe_openmp(cc) : "";
  std::lock_guard<std::mutex> lk(g_probe_mu);
  return omp_cache().emplace(cc, flag).first->second;
}

CompileResult compile_c(const std::string& source, const std::vector<std::string>& flags,
                        const std::string& out_suffix) {
  CompileResult r;
  r.compiler = resolve_compiler();
  OwnedPath src = make_temp_file(".c");
  OwnedPath out = make_temp_file(out_suffix);
  if (!write_file(src.path(), source)) {
    r.log = "jit: cannot write temp source '" + src.path() + "'";
    return r;
  }
  std::string cmd = r.compiler;
  for (const std::string& f : flags) cmd += " " + f;
  cmd += " -o " + out.path() + " " + src.path() + " -lm";
  const double t0 = omp_get_wtime();
  auto [ok, log] = run_compile(cmd);
  r.compile_ns = static_cast<i64>((omp_get_wtime() - t0) * 1e9);
  r.log = std::move(log);
  r.ok = ok;
  if (ok) r.artifact = std::move(out);  // failure path: `out` unlinks itself
  return r;
}

}  // namespace nrc::jit
