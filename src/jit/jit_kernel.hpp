#pragma once
// JitKernel: a bound CollapsePlan compiled to a specialized native
// kernel at runtime.
//
// The C emitter (codegen/c_emitter.hpp) already prints a byte-identical
// transliteration of a plan's recovery solvers.  A JitKernel closes the
// loop: it renders a translation unit in which the emitted collapsed
// function is *fully specialized* — the exported entry points call it
// with every nest parameter as an integer literal, so `cc -O2` inlines
// the static function and constant-folds the ranking coefficients,
// guards and branch calibration that the library engine re-derives from
// memory on every recovery — compiles it out of process into a shared
// object, dlopens the result and dispatches through it.
//
// Two entry points are exported per kernel (C ABI, versioned):
//
//   typedef void (*nrc_body_fn)(void *ctx, const long long *idx);
//   void      nrc_kernel_run(void *ctx, nrc_body_fn body);  // callback ABI
//   long long nrc_kernel_fill(long long *buf);  // tuple buffer, no callback
//   long long nrc_kernel_total(void);
//   int       nrc_kernel_abi_version(void);
//
// run() walks the domain under the kernel's Schedule and invokes the
// callback once per collapsed iteration with the recovered index tuple;
// fill() writes all trip_count tuples into a caller buffer in rank
// order (slot (pc-1)*depth + k holds index k of rank pc) and needs no
// callback at all — the entry point for language bindings and DMA-style
// consumers that cannot re-enter C++.
//
// Fallback ladder (every rung lands the kernel in a non-compiled state
// whose run()/fill() route through the library dispatcher, with the
// reason recorded in info().fallback_reason):
//
//   1. the plan's analyzer certificate is error-severity (the emitter
//      must not produce C the analyzer proved can overflow);
//   2. a level lacks a closed-form recovery (the emitter's SolveError);
//   3. no working C toolchain (NRC_JIT_CC / CC / cc — jit/toolchain.hpp);
//   4. the out-of-process compile fails;
//   5. dlopen/dlsym fails or the ABI version does not match.
//
// Compiled objects are cached on disk under NRC_JIT_CACHE_DIR (or
// JitOptions::cache_dir) with content-hash filenames plus a sidecar
// recording the object's own hash, so nrcd restarts and --snapshot warm
// starts reuse prior compiles; a corrupt entry fails its hash check and
// is removed and rebuilt.  In-process, KernelCache (jit/kernel_cache.hpp)
// deduplicates builds with the plan cache's future discipline.

#include <memory>
#include <span>
#include <string>
#include <type_traits>

#include "pipeline/dispatch.hpp"
#include "pipeline/plan.hpp"
#include "pipeline/schedule.hpp"

namespace nrc {

struct JitOptions {
  bool parallel = true;  ///< emit + compile with OpenMP when the
                         ///< toolchain's probe accepts the flag
  bool use_disk_cache = true;
  std::string cache_dir;  ///< override; empty: $NRC_JIT_CACHE_DIR, and
                          ///< when that is unset too, no disk cache
};

class JitKernel {
 public:
  /// The C callback ABI: `idx` points at `depth` recovered indices,
  /// outermost first, valid for the duration of the call only.
  using BodyFn = void (*)(void* ctx, const long long* idx);
  static constexpr int kAbiVersion = 1;

  struct BuildInfo {
    bool compiled = false;
    bool from_disk = false;        ///< served by the on-disk object cache
    i64 compile_ns = 0;            ///< out-of-process compile wall clock
    std::string compiler;          ///< resolved toolchain (even on fallback)
    std::string fallback_reason;   ///< empty iff compiled
  };

  /// Render + compile + dlopen.  Never throws for toolchain or plan
  /// reasons — every failure lands a fallback kernel (see the ladder
  /// above); only allocation failure propagates.
  static std::shared_ptr<const JitKernel> build(std::shared_ptr<const CollapsePlan> plan,
                                                const Schedule& s,
                                                const JitOptions& opt = {});

  ~JitKernel();
  JitKernel(const JitKernel&) = delete;
  JitKernel& operator=(const JitKernel&) = delete;

  bool compiled() const { return run_fn_ != nullptr; }
  const BuildInfo& info() const { return info_; }
  /// "jit" when compiled, "fallback: <reason>" otherwise.
  std::string status() const {
    return compiled() ? "jit" : "fallback: " + info_.fallback_reason;
  }

  const CollapsePlan& plan() const { return *plan_; }
  const Schedule& schedule() const { return sched_; }
  i64 trip_count() const { return plan_->eval().trip_count(); }
  int depth() const { return plan_->eval().depth(); }
  /// The rendered translation unit ("" when rendering itself failed).
  const std::string& source() const { return source_; }

  /// Invoke `body(std::span<const i64>)` once per collapsed iteration —
  /// through the compiled kernel when this kernel has one, through
  /// nrc::run(plan, schedule) otherwise.  Parallel kernels call the
  /// body concurrently, exactly like the library schemes.
  template <class Body>
  void run(Body&& body) const {
    if (run_fn_ != nullptr) {
      using B = std::remove_reference_t<Body>;
      struct Ctx {
        B* b;
        size_t d;
      } cx{&body, static_cast<size_t>(depth())};
      run_fn_(&cx, +[](void* c, const long long* idx) {
        // The C ABI speaks `long long`; i64 is the same 64-bit width
        // but may be spelled `long` (LP64), hence the cast.
        static_assert(sizeof(long long) == sizeof(i64));
        Ctx* t = static_cast<Ctx*>(c);
        (*t->b)(std::span<const i64>(reinterpret_cast<const i64*>(idx), t->d));
      });
    } else {
      nrc::run(plan_->eval(), sched_, static_cast<Body&&>(body));
    }
  }

  /// Write every recovered tuple into `buf` in rank order (slot
  /// (pc-1)*depth + k = index k of rank pc); returns trip_count.
  /// Throws SpecError when the buffer is smaller than
  /// trip_count*depth.  Falls back to a recover_block walk when this
  /// kernel has no compiled fill.
  i64 fill(std::span<i64> buf) const;

  /// The translation unit build() compiles (exposed for tests and
  /// inspection; throws SolveError when a level lacks a closed form).
  static std::string render_source(const CollapsePlan& plan, const Schedule& s,
                                   bool parallel);

  /// The fragment of a Schedule that changes the emitted code — the
  /// emission style, OpenMP schedule clause and vlen — used by
  /// KernelCache keys so e.g. thread-count-only differences share one
  /// compiled kernel.
  static std::string schedule_key(const Schedule& s);

 private:
  JitKernel(std::shared_ptr<const CollapsePlan> plan, Schedule s)
      : plan_(std::move(plan)), sched_(s) {}

  std::shared_ptr<const CollapsePlan> plan_;
  Schedule sched_;
  BuildInfo info_;
  std::string source_;
  void* handle_ = nullptr;  // dlopen handle, closed by the destructor
  void (*run_fn_)(void*, BodyFn) = nullptr;
  long long (*fill_fn_)(long long*) = nullptr;
};

}  // namespace nrc
