#include "kernels/tiled.hpp"

namespace nrc {
namespace {
constexpr i64 kTileSize = 32;

NestSpec tile_nest() {
  NestSpec nest;
  nest.param("NT")
      .loop("it", aff::c(0), aff::v("NT"))
      .loop("jt", aff::v("it"), aff::v("NT"));
  return nest;
}
}  // namespace

// ---------------------------------------------------------------------------
// correlation_tiled
// ---------------------------------------------------------------------------

CorrelationTiledKernel::CorrelationTiledKernel() {
  info_ = {"correlation_tiled",
           "correlation with Pluto-style triangular tiling; tile loops collapsed",
           "tiled triangular (trapezoidal tiles)",
           /*nest_depth=*/4,
           /*collapse_depth=*/2};
}

void CorrelationTiledKernel::prepare(double scale) {
  n_ = scaled(1000, scale);
  ts_ = kTileSize;
  nt_ = (n_ + ts_ - 1) / ts_;
  a_ = Matrix(n_, n_);
  b_ = Matrix(n_, n_);
  c_ = Matrix(n_, n_);
  b_.fill_lcg(7);
  c_.fill_lcg(11);
  setup_collapse(tile_nest(), {{"NT", nt_}});
}

inline void CorrelationTiledKernel::tile_body(i64 it, i64 jt) {
  const i64 ilo = it * ts_;
  const i64 ihi = std::min(n_ - 1, (it + 1) * ts_);
  const i64 jhi = std::min(n_, (jt + 1) * ts_);
  for (i64 i = ilo; i < ihi; ++i) {
    const i64 jlo = std::max(jt * ts_, i + 1);
    for (i64 j = jlo; j < jhi; ++j) {
      double acc = 0.0;
      for (i64 k = 0; k < n_; ++k) acc += b_[k][i] * c_[k][j];
      a_[i][j] = acc;
      a_[j][i] = acc;
    }
  }
}

void CorrelationTiledKernel::run(Variant v, int threads, int root_eval_sims) {
  a_.fill_zero();
  auto span_body = [&](std::span<const i64> t) { tile_body(t[0], t[1]); };
  switch (v) {
    case Variant::SerialOriginal:
      for (i64 it = 0; it < nt_; ++it)
        for (i64 jt = it; jt < nt_; ++jt) tile_body(it, jt);
      break;
    case Variant::SerialCollapsedSim:
      collapsed_serial_sim(*eval_, root_eval_sims, span_body);
      break;
    case Variant::SerialCollapsedSimScalar:
      collapsed_serial_sim(*eval_, root_eval_sims, span_body);
      break;
    case Variant::OuterStatic:
#pragma omp parallel for schedule(static) num_threads(threads)
      for (i64 it = 0; it < nt_; ++it)
        for (i64 jt = it; jt < nt_; ++jt) tile_body(it, jt);
      break;
    case Variant::OuterDynamic:
#pragma omp parallel for schedule(dynamic) num_threads(threads)
      for (i64 it = 0; it < nt_; ++it)
        for (i64 jt = it; jt < nt_; ++jt) tile_body(it, jt);
      break;
    case Variant::CollapsedStatic:
      collapsed_for_chunked(*eval_,
                              default_chunk(eval_->trip_count(), threads),
                              span_body, {threads});
      break;
    case Variant::CollapsedStaticBlock:
      collapsed_for_per_thread(*eval_, span_body, {threads});
      break;
    case Variant::CollapsedDynamic:
      collapsed_for_per_iteration(*eval_, span_body, OmpSchedule::Dynamic, {threads});
      break;
  }
}

double CorrelationTiledKernel::checksum() const { return a_.checksum(); }

// ---------------------------------------------------------------------------
// covariance_tiled
// ---------------------------------------------------------------------------

CovarianceTiledKernel::CovarianceTiledKernel() {
  info_ = {"covariance_tiled",
           "covariance with Pluto-style triangular tiling; tile loops collapsed",
           "tiled triangular (trapezoidal tiles)",
           /*nest_depth=*/4,
           /*collapse_depth=*/2};
}

void CovarianceTiledKernel::prepare(double scale) {
  n_ = scaled(1000, scale);
  ts_ = kTileSize;
  nt_ = (n_ + ts_ - 1) / ts_;
  data_ = Matrix(n_, n_);
  cov_ = Matrix(n_, n_);
  data_.fill_lcg(23);

  mean_.assign(static_cast<size_t>(n_), 0.0);
  for (i64 k = 0; k < n_; ++k)
    for (i64 j = 0; j < n_; ++j) mean_[static_cast<size_t>(j)] += data_[k][j];
  for (i64 j = 0; j < n_; ++j) mean_[static_cast<size_t>(j)] /= static_cast<double>(n_);

  setup_collapse(tile_nest(), {{"NT", nt_}});
}

inline void CovarianceTiledKernel::tile_body(i64 it, i64 jt) {
  const i64 ilo = it * ts_;
  const i64 ihi = std::min(n_, (it + 1) * ts_);
  const i64 jhi = std::min(n_, (jt + 1) * ts_);
  for (i64 i = ilo; i < ihi; ++i) {
    const i64 jlo = std::max(jt * ts_, i);
    const double mi = mean_[static_cast<size_t>(i)];
    for (i64 j = jlo; j < jhi; ++j) {
      const double mj = mean_[static_cast<size_t>(j)];
      double acc = 0.0;
      for (i64 k = 0; k < n_; ++k) acc += (data_[k][i] - mi) * (data_[k][j] - mj);
      acc /= static_cast<double>(n_ - 1);
      cov_[i][j] = acc;
      cov_[j][i] = acc;
    }
  }
}

void CovarianceTiledKernel::run(Variant v, int threads, int root_eval_sims) {
  cov_.fill_zero();
  auto span_body = [&](std::span<const i64> t) { tile_body(t[0], t[1]); };
  switch (v) {
    case Variant::SerialOriginal:
      for (i64 it = 0; it < nt_; ++it)
        for (i64 jt = it; jt < nt_; ++jt) tile_body(it, jt);
      break;
    case Variant::SerialCollapsedSim:
      collapsed_serial_sim(*eval_, root_eval_sims, span_body);
      break;
    case Variant::SerialCollapsedSimScalar:
      collapsed_serial_sim(*eval_, root_eval_sims, span_body);
      break;
    case Variant::OuterStatic:
#pragma omp parallel for schedule(static) num_threads(threads)
      for (i64 it = 0; it < nt_; ++it)
        for (i64 jt = it; jt < nt_; ++jt) tile_body(it, jt);
      break;
    case Variant::OuterDynamic:
#pragma omp parallel for schedule(dynamic) num_threads(threads)
      for (i64 it = 0; it < nt_; ++it)
        for (i64 jt = it; jt < nt_; ++jt) tile_body(it, jt);
      break;
    case Variant::CollapsedStatic:
      collapsed_for_chunked(*eval_,
                              default_chunk(eval_->trip_count(), threads),
                              span_body, {threads});
      break;
    case Variant::CollapsedStaticBlock:
      collapsed_for_per_thread(*eval_, span_body, {threads});
      break;
    case Variant::CollapsedDynamic:
      collapsed_for_per_iteration(*eval_, span_body, OmpSchedule::Dynamic, {threads});
      break;
  }
}

double CovarianceTiledKernel::checksum() const { return cov_.checksum(); }

}  // namespace nrc
