#include "kernels/covariance.hpp"

namespace nrc {

CovarianceKernel::CovarianceKernel() {
  info_ = {"covariance",
           "inclusive-triangular covariance matrix (Polybench shape)",
           "triangular (inclusive diagonal)",
           /*nest_depth=*/3,
           /*collapse_depth=*/2};
}

void CovarianceKernel::prepare(double scale) {
  n_ = scaled(1000, scale);
  data_ = Matrix(n_, n_);
  cov_ = Matrix(n_, n_);
  data_.fill_lcg(23);

  mean_.assign(static_cast<size_t>(n_), 0.0);
  for (i64 k = 0; k < n_; ++k)
    for (i64 j = 0; j < n_; ++j) mean_[static_cast<size_t>(j)] += data_[k][j];
  for (i64 j = 0; j < n_; ++j) mean_[static_cast<size_t>(j)] /= static_cast<double>(n_);

  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"));
  setup_collapse(nest, {{"N", n_}});
}

inline void CovarianceKernel::body(i64 i, i64 j) {
  double acc = 0.0;
  const double mi = mean_[static_cast<size_t>(i)];
  const double mj = mean_[static_cast<size_t>(j)];
  for (i64 k = 0; k < n_; ++k) acc += (data_[k][i] - mi) * (data_[k][j] - mj);
  acc /= static_cast<double>(n_ - 1);
  cov_[i][j] = acc;
  cov_[j][i] = acc;
}

void CovarianceKernel::run(Variant v, int threads, int root_eval_sims) {
  cov_.fill_zero();
  auto span_body = [&](std::span<const i64> ij) { body(ij[0], ij[1]); };
  switch (v) {
    case Variant::SerialOriginal:
      for (i64 i = 0; i < n_; ++i)
        for (i64 j = i; j < n_; ++j) body(i, j);
      break;
    case Variant::SerialCollapsedSim:
      collapsed_serial_sim(*eval_, root_eval_sims, span_body);
      break;
    case Variant::SerialCollapsedSimScalar:
      collapsed_serial_sim(*eval_, root_eval_sims, span_body);
      break;
    case Variant::OuterStatic:
#pragma omp parallel for schedule(static) num_threads(threads)
      for (i64 i = 0; i < n_; ++i)
        for (i64 j = i; j < n_; ++j) body(i, j);
      break;
    case Variant::OuterDynamic:
#pragma omp parallel for schedule(dynamic) num_threads(threads)
      for (i64 i = 0; i < n_; ++i)
        for (i64 j = i; j < n_; ++j) body(i, j);
      break;
    case Variant::CollapsedStatic:
      collapsed_for_chunked(*eval_,
                              default_chunk(eval_->trip_count(), threads),
                              span_body, {threads});
      break;
    case Variant::CollapsedStaticBlock:
      collapsed_for_per_thread(*eval_, span_body, {threads});
      break;
    case Variant::CollapsedDynamic:
      collapsed_for_per_iteration(*eval_, span_body, OmpSchedule::Dynamic, {threads});
      break;
  }
}

double CovarianceKernel::checksum() const { return cov_.checksum(); }

}  // namespace nrc
