#pragma once
// skewstencil — trapezoidal skewed stencil sweep.
//
// The shape Pluto's loop skewing produces: the inner range is both
// shifted by and growing with the outer index, covering the
// "trapezoidal" class of the paper's abstract:
//
//   for (i = 0; i < T; i++)
//     for (j = i; j < N + 2*i; j++) {        // trapezoid
//       double acc = 0;
//       for (r = 0; r < R; r++) acc += in[j - i + r] * w[r];
//       out[i][j - i] = acc;
//     }
//
// (i, j) iterations are independent (each writes a distinct out cell);
// the fixed-length r loop stays in the body.  Row length N + i grows
// linearly, so outer schedule(static) is imbalanced.

#include "kernels/kernel_base.hpp"

namespace nrc {

class SkewedStencilKernel final : public KernelBase {
 public:
  SkewedStencilKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  void body(i64 i, i64 j);

  static constexpr i64 kTaps = 48;
  i64 t_ = 0;  ///< number of rows (outer trip count)
  i64 n_ = 0;  ///< base row width
  Matrix out_;
  std::vector<double> in_;
  std::vector<double> w_;
};

}  // namespace nrc
