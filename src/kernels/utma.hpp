#pragma once
// utma — upper-triangular matrix add (introduced by the paper itself:
// "the sum of two upper triangular 5000 x 5000 matrices").
//
// Hot nest (2-deep, j >= i, *fully* collapsed, minimal body):
//   for (i = 0; i < N; i++)
//     for (j = i; j < N; j++)
//       C[i][j] = A[i][j] + B[i][j];
//
// With one add per iteration this is the extreme case for recovery
// overhead (Fig. 10) while still benefiting from balanced distribution
// (Fig. 9).

#include "kernels/kernel_base.hpp"

namespace nrc {

class UtmaKernel final : public KernelBase {
 public:
  UtmaKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  i64 n_ = 0;
  Matrix a_, b_, c_;
};

}  // namespace nrc
