#pragma once
// covariance — Polybench-shaped inclusive-triangular nest.
//
// Hot nest (3-deep, j from i inclusive, outer two collapsed):
//   for (i = 0; i < N; i++)
//     for (j = i; j < N; j++) {
//       cov[i][j] = sum_k (data[k][i]-mean[i]) * (data[k][j]-mean[j]) / (K-1);
//       cov[j][i] = cov[i][j];
//     }
// The rectangular mean pass is precomputed in prepare() (untimed); the
// paper times "the most time-consuming non-rectangular loop nest".

#include "kernels/kernel_base.hpp"

namespace nrc {

class CovarianceKernel final : public KernelBase {
 public:
  CovarianceKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  void body(i64 i, i64 j);

  i64 n_ = 0;
  Matrix data_, cov_;
  std::vector<double> mean_;
};

}  // namespace nrc
