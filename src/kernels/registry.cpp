#include "kernels/registry.hpp"

#include "kernels/correlation.hpp"
#include "kernels/covariance.hpp"
#include "kernels/ltmp.hpp"
#include "kernels/skewed_stencil.hpp"
#include "kernels/symm.hpp"
#include "kernels/syr2k.hpp"
#include "kernels/syrk.hpp"
#include "kernels/tiled.hpp"
#include "kernels/trmm_tri.hpp"
#include "kernels/utma.hpp"
#include "support/error.hpp"

namespace nrc {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::SerialOriginal:
      return "serial-original";
    case Variant::SerialCollapsedSim:
      return "serial-collapsed-sim";
    case Variant::SerialCollapsedSimScalar:
      return "serial-collapsed-sim-scalar";
    case Variant::OuterStatic:
      return "outer-static";
    case Variant::OuterDynamic:
      return "outer-dynamic";
    case Variant::CollapsedStatic:
      return "collapsed-static";
    case Variant::CollapsedStaticBlock:
      return "collapsed-static-block";
    case Variant::CollapsedDynamic:
      return "collapsed-dynamic";
  }
  return "?";
}

std::vector<std::string> kernel_names() {
  return {"correlation", "correlation_tiled", "covariance", "covariance_tiled",
          "symm",        "syrk",              "syr2k",      "trmm",
          "skewstencil", "utma",              "ltmp"};
}

std::unique_ptr<IKernel> make_kernel(const std::string& name) {
  if (name == "correlation") return std::make_unique<CorrelationKernel>();
  if (name == "correlation_tiled") return std::make_unique<CorrelationTiledKernel>();
  if (name == "covariance") return std::make_unique<CovarianceKernel>();
  if (name == "covariance_tiled") return std::make_unique<CovarianceTiledKernel>();
  if (name == "symm") return std::make_unique<SymmKernel>();
  if (name == "syrk") return std::make_unique<SyrkKernel>();
  if (name == "syr2k") return std::make_unique<Syr2kKernel>();
  if (name == "trmm") return std::make_unique<TrmmTriKernel>();
  if (name == "skewstencil") return std::make_unique<SkewedStencilKernel>();
  if (name == "utma") return std::make_unique<UtmaKernel>();
  if (name == "ltmp") return std::make_unique<LtmpKernel>();
  throw SpecError("make_kernel: unknown kernel '" + name + "'");
}

std::vector<std::unique_ptr<IKernel>> make_all_kernels() {
  std::vector<std::unique_ptr<IKernel>> ks;
  for (const auto& n : kernel_names()) ks.push_back(make_kernel(n));
  return ks;
}

}  // namespace nrc
