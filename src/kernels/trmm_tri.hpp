#pragma once
// trmm_tri — triangular matrix product with depth-varying inner work.
//
// Hot nest (3-deep, j >= i, outer two collapsed):
//   for (i = 0; i < N; i++)
//     for (j = i; j < N; j++) {
//       double acc = 0;
//       for (k = i; k < N; k++) acc += A[k][i] * B[k][j];
//       out[i][j] = acc;
//     }
// The inner k-range shrinks with i, so rows near the top carry much more
// work — stacking triangular iteration count on triangular per-iteration
// cost (a stronger imbalance than correlation).

#include "kernels/kernel_base.hpp"

namespace nrc {

class TrmmTriKernel final : public KernelBase {
 public:
  TrmmTriKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  void body(i64 i, i64 j);

  i64 n_ = 0;
  Matrix a_, b_, out_;
};

}  // namespace nrc
