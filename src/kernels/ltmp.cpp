#include "kernels/ltmp.hpp"

namespace nrc {

LtmpKernel::LtmpKernel() {
  info_ = {"ltmp",
           "lower-triangular matrix product (paper's own kernel, 4000^2 there)",
           "triangular + tetrahedral work distribution",
           /*nest_depth=*/3,
           /*collapse_depth=*/2};
}

void LtmpKernel::prepare(double scale) {
  n_ = scaled(1000, scale);
  a_ = Matrix(n_, n_);
  b_ = Matrix(n_, n_);
  c_ = Matrix(n_, n_);
  a_.fill_lcg(47);
  b_.fill_lcg(53);
  // Zero the strict upper triangles so the inputs really are lower
  // triangular (results only touch k in [j, i]; this keeps the data
  // honest for checksum comparisons).
  for (i64 i = 0; i < n_; ++i)
    for (i64 j = i + 1; j < n_; ++j) {
      a_[i][j] = 0.0;
      b_[i][j] = 0.0;
    }

  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("i") + 1);
  setup_collapse(nest, {{"N", n_}});
  timed_reps_ = 8;
}

inline void LtmpKernel::body(i64 i, i64 j) {
  double acc = 0.0;
  const double* ai = a_[i];
  for (i64 k = j; k < i + 1; ++k) acc += ai[k] * b_[k][j];
  c_[i][j] = acc;
}

void LtmpKernel::run(Variant v, int threads, int root_eval_sims) {
  c_.fill_zero();
  auto span_body = [&](std::span<const i64> ij) { body(ij[0], ij[1]); };
  for (int rep = 0; rep < timed_reps_; ++rep) {
    switch (v) {
      case Variant::SerialOriginal:
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = 0; j < i + 1; ++j) body(i, j);
        break;
      case Variant::SerialCollapsedSim:
        collapsed_serial_sim(*eval_, root_eval_sims, span_body);
        break;
      case Variant::SerialCollapsedSimScalar:
        collapsed_serial_sim(*eval_, root_eval_sims, span_body);
        break;
      case Variant::OuterStatic:
  #pragma omp parallel for schedule(static) num_threads(threads)
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = 0; j < i + 1; ++j) body(i, j);
        break;
      case Variant::OuterDynamic:
  #pragma omp parallel for schedule(dynamic) num_threads(threads)
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = 0; j < i + 1; ++j) body(i, j);
        break;
      case Variant::CollapsedStatic:
        collapsed_for_chunked(*eval_,
                              default_chunk(eval_->trip_count(), threads),
                              span_body, {threads});
        break;
      case Variant::CollapsedStaticBlock:
        collapsed_for_per_thread(*eval_, span_body, {threads});
        break;
      case Variant::CollapsedDynamic:
        collapsed_for_per_iteration(*eval_, span_body, OmpSchedule::Dynamic, {threads});
        break;
    }
  }
}

double LtmpKernel::checksum() const { return c_.checksum(); }

}  // namespace nrc
