#pragma once
// ltmp — lower-triangular matrix product (introduced by the paper:
// "the product of two lower triangular 4000 x 4000 matrices").
//
// Hot nest (3-deep):
//   for (i = 0; i < N; i++)
//     for (j = 0; j < i+1; j++) {
//       double acc = 0;
//       for (k = j; k < i+1; k++) acc += A[i][k] * B[k][j];
//       C[i][j] = acc;
//     }
//
// The innermost loop is a reduction (data dependence), so — exactly as
// the paper reports — only the two outermost loops can be collapsed, and
// the remaining k-trip-count (i - j + 1) still varies per collapsed
// iteration.  This is the kernel where the paper's dynamic baseline
// wins: the residual imbalance inside the collapsed chunks persists.

#include "kernels/kernel_base.hpp"

namespace nrc {

class LtmpKernel final : public KernelBase {
 public:
  LtmpKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  void body(i64 i, i64 j);

  i64 n_ = 0;
  Matrix a_, b_, c_;
};

}  // namespace nrc
