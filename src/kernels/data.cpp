#include "kernels/data.hpp"

#include <cmath>

namespace nrc {

Matrix::Matrix(i64 rows, i64 cols)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.0) {}

void Matrix::fill_lcg(unsigned seed) {
  unsigned s = seed;
  for (double& v : data_) {
    s = s * 1664525u + 1013904223u;
    v = static_cast<double>(s % 1000u) / 1000.0;
  }
}

void Matrix::fill_zero() { data_.assign(data_.size(), 0.0); }

double Matrix::checksum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

bool nearly_equal(double a, double b, double rel_tol) {
  return std::fabs(a - b) <= rel_tol * (std::fabs(a) + std::fabs(b) + 1.0);
}

}  // namespace nrc
