#include "kernels/skewed_stencil.hpp"

#include "runtime/segments.hpp"

namespace nrc {

SkewedStencilKernel::SkewedStencilKernel() {
  info_ = {"skewstencil",
           "trapezoidal skewed stencil sweep (Pluto skewing shape)",
           "trapezoidal",
           /*nest_depth=*/3,
           /*collapse_depth=*/2};
}

void SkewedStencilKernel::prepare(double scale) {
  t_ = scaled(1600, scale);
  n_ = scaled(800, scale);
  out_ = Matrix(t_, n_ + 2 * t_);
  in_.assign(static_cast<size_t>(n_ + 2 * t_ + kTaps), 0.0);
  w_.assign(static_cast<size_t>(kTaps), 0.0);
  unsigned s = 37;
  for (double& v : in_) {
    s = s * 1664525u + 1013904223u;
    v = static_cast<double>(s % 1000u) / 1000.0;
  }
  for (i64 r = 0; r < kTaps; ++r)
    w_[static_cast<size_t>(r)] = 1.0 / static_cast<double>(r + 1);

  NestSpec nest;
  nest.param("T").param("N")
      .loop("i", aff::c(0), aff::v("T"))
      .loop("j", aff::v("i"), aff::v("N") + 2 * aff::v("i"));
  setup_collapse(nest, {{"T", t_}, {"N", n_}});
  timed_reps_ = 20;
}

inline void SkewedStencilKernel::body(i64 i, i64 j) {
  double acc = 0.0;
  const double* base = in_.data() + (j - i);
  for (i64 r = 0; r < kTaps; ++r) acc += base[r] * w_[static_cast<size_t>(r)];
  out_[i][j - i] = acc;
}

void SkewedStencilKernel::run(Variant v, int threads, int root_eval_sims) {
  out_.fill_zero();
  auto span_body = [&](std::span<const i64> ij) { body(ij[0], ij[1]); };
  // Row-segment body (§VI-A): the tap loop stays innermost over a
  // contiguous j-run, exactly like the original nest.
  auto seg_body = [&](std::span<const i64> prefix, i64 j0, i64 j1) {
    const i64 i = prefix[0];
    for (i64 j = j0; j < j1; ++j) body(i, j);
  };
  for (int rep = 0; rep < timed_reps_; ++rep) {
    switch (v) {
      case Variant::SerialOriginal:
        for (i64 i = 0; i < t_; ++i)
          for (i64 j = i; j < n_ + 2 * i; ++j) body(i, j);
        break;
      case Variant::SerialCollapsedSim:
        collapsed_serial_segments_sim(*eval_, root_eval_sims, seg_body);
        break;
      case Variant::SerialCollapsedSimScalar:
        collapsed_serial_sim(*eval_, root_eval_sims, span_body);
        break;
      case Variant::OuterStatic:
  #pragma omp parallel for schedule(static) num_threads(threads)
        for (i64 i = 0; i < t_; ++i)
          for (i64 j = i; j < n_ + 2 * i; ++j) body(i, j);
        break;
      case Variant::OuterDynamic:
  #pragma omp parallel for schedule(dynamic) num_threads(threads)
        for (i64 i = 0; i < t_; ++i)
          for (i64 j = i; j < n_ + 2 * i; ++j) body(i, j);
        break;
      case Variant::CollapsedStatic:
        collapsed_for_row_segments_chunked(
            *eval_, default_chunk(eval_->trip_count(), threads), seg_body,
            threads);
        break;
      case Variant::CollapsedStaticBlock:
        collapsed_for_row_segments(*eval_, seg_body, threads);
        break;
      case Variant::CollapsedDynamic:
        collapsed_for_per_iteration(*eval_, span_body, OmpSchedule::Dynamic, {threads});
        break;
    }
  }
}

double SkewedStencilKernel::checksum() const { return out_.checksum(); }

}  // namespace nrc
