#include "kernels/syr2k.hpp"

namespace nrc {
namespace {
constexpr double kAlpha = 1.3;
constexpr double kBeta = 0.7;
}  // namespace

Syr2kKernel::Syr2kKernel() {
  info_ = {"syr2k",
           "symmetric rank-2K update, lower triangle (Polybench shape)",
           "triangular (inclusive diagonal)",
           /*nest_depth=*/3,
           /*collapse_depth=*/2};
}

void Syr2kKernel::prepare(double scale) {
  n_ = scaled(900, scale);
  k_ = n_;
  a_ = Matrix(n_, k_);
  b_ = Matrix(n_, k_);
  c_ = Matrix(n_, n_);
  a_.fill_lcg(17);
  b_.fill_lcg(19);

  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::c(0), aff::v("i") + 1);
  setup_collapse(nest, {{"N", n_}});
  timed_reps_ = 4;
}

inline void Syr2kKernel::body(i64 i, i64 j) {
  double acc = kBeta * c_[i][j];
  const double* ai = a_[i];
  const double* aj = a_[j];
  const double* bi = b_[i];
  const double* bj = b_[j];
  for (i64 k = 0; k < k_; ++k) acc += kAlpha * (ai[k] * bj[k] + bi[k] * aj[k]);
  c_[i][j] = acc;
}

void Syr2kKernel::run(Variant v, int threads, int root_eval_sims) {
  c_.fill_zero();
  auto span_body = [&](std::span<const i64> ij) { body(ij[0], ij[1]); };
  for (int rep = 0; rep < timed_reps_; ++rep) {
    switch (v) {
      case Variant::SerialOriginal:
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = 0; j < i + 1; ++j) body(i, j);
        break;
      case Variant::SerialCollapsedSim:
        collapsed_serial_sim(*eval_, root_eval_sims, span_body);
        break;
      case Variant::SerialCollapsedSimScalar:
        collapsed_serial_sim(*eval_, root_eval_sims, span_body);
        break;
      case Variant::OuterStatic:
  #pragma omp parallel for schedule(static) num_threads(threads)
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = 0; j < i + 1; ++j) body(i, j);
        break;
      case Variant::OuterDynamic:
  #pragma omp parallel for schedule(dynamic) num_threads(threads)
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = 0; j < i + 1; ++j) body(i, j);
        break;
      case Variant::CollapsedStatic:
        collapsed_for_chunked(*eval_,
                              default_chunk(eval_->trip_count(), threads),
                              span_body, {threads});
        break;
      case Variant::CollapsedStaticBlock:
        collapsed_for_per_thread(*eval_, span_body, {threads});
        break;
      case Variant::CollapsedDynamic:
        collapsed_for_per_iteration(*eval_, span_body, OmpSchedule::Dynamic, {threads});
        break;
    }
  }
}

double Syr2kKernel::checksum() const { return c_.checksum(); }

}  // namespace nrc
