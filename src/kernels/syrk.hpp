#pragma once
// syrk — symmetric rank-k update on the lower triangle.
//
// Hot nest (3-deep, j <= i, outer two collapsed):
//   for (i = 0; i < N; i++)
//     for (j = 0; j < i+1; j++) {
//       double acc = beta * C[i][j];
//       for (k = 0; k < K; k++) acc += alpha * A[i][k] * A[j][k];
//       C[i][j] = acc;
//     }

#include "kernels/kernel_base.hpp"

namespace nrc {

class SyrkKernel final : public KernelBase {
 public:
  SyrkKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  void body(i64 i, i64 j);

  i64 n_ = 0;
  i64 k_ = 0;
  Matrix a_, c_;
};

}  // namespace nrc
