#include "kernels/correlation.hpp"

namespace nrc {

CorrelationKernel::CorrelationKernel() {
  info_ = {"correlation",
           "upper-triangular correlation accumulation (paper Fig. 1)",
           "triangular",
           /*nest_depth=*/3,
           /*collapse_depth=*/2};
}

void CorrelationKernel::prepare(double scale) {
  n_ = scaled(1000, scale);
  a_ = Matrix(n_, n_);
  b_ = Matrix(n_, n_);
  c_ = Matrix(n_, n_);
  b_.fill_lcg(7);
  c_.fill_lcg(11);

  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N") - 1)
      .loop("j", aff::v("i") + 1, aff::v("N"));
  setup_collapse(nest, {{"N", n_}});
}

template <class IJ>
inline void CorrelationKernel::body(IJ i, IJ j) {
  double acc = 0.0;
  const i64 n = n_;
  for (i64 k = 0; k < n; ++k) acc += b_[k][i] * c_[k][j];
  a_[i][j] = acc;
  a_[j][i] = acc;
}

void CorrelationKernel::run(Variant v, int threads, int root_eval_sims) {
  a_.fill_zero();
  auto span_body = [&](std::span<const i64> ij) { body(ij[0], ij[1]); };
  switch (v) {
    case Variant::SerialOriginal:
      for (i64 i = 0; i < n_ - 1; ++i)
        for (i64 j = i + 1; j < n_; ++j) body(i, j);
      break;
    case Variant::SerialCollapsedSim:
      collapsed_serial_sim(*eval_, root_eval_sims, span_body);
      break;
    case Variant::SerialCollapsedSimScalar:
      collapsed_serial_sim(*eval_, root_eval_sims, span_body);
      break;
    case Variant::OuterStatic:
#pragma omp parallel for schedule(static) num_threads(threads)
      for (i64 i = 0; i < n_ - 1; ++i)
        for (i64 j = i + 1; j < n_; ++j) body(i, j);
      break;
    case Variant::OuterDynamic:
#pragma omp parallel for schedule(dynamic) num_threads(threads)
      for (i64 i = 0; i < n_ - 1; ++i)
        for (i64 j = i + 1; j < n_; ++j) body(i, j);
      break;
    case Variant::CollapsedStatic:
      collapsed_for_chunked(*eval_,
                              default_chunk(eval_->trip_count(), threads),
                              span_body, {threads});
      break;
    case Variant::CollapsedStaticBlock:
      collapsed_for_per_thread(*eval_, span_body, {threads});
      break;
    case Variant::CollapsedDynamic:
      collapsed_for_per_iteration(*eval_, span_body, OmpSchedule::Dynamic, {threads});
      break;
  }
}

double CorrelationKernel::checksum() const { return a_.checksum(); }

}  // namespace nrc
