#pragma once
// symm — triangular symmetric update with a light body.
//
// Hot nest (2-deep, j <= i, *fully* collapsed):
//   for (i = 0; i < N; i++)
//     for (j = 0; j < i+1; j++)
//       C[i][j] = alpha * A[i][j] * B[j][i] + beta * C[i][j];
//
// This is one of the paper's "all loops collapsed" cases: with no inner
// loop left, the per-chunk recovery and the odometer are a visible
// fraction of the work, which is exactly what makes symm (and
// covariance) the Fig. 10 outliers.

#include "kernels/kernel_base.hpp"

namespace nrc {

class SymmKernel final : public KernelBase {
 public:
  SymmKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  i64 n_ = 0;
  Matrix a_, b_, c_;
};

}  // namespace nrc
