#pragma once
// Evaluation-kernel registry (the workloads of paper §VII).
//
// Eleven kernels: nine Polybench-shaped non-rectangular nests (incl. the
// Pluto-tiled variants the paper uses) plus the paper's own utma and
// ltmp.  Every kernel can run under each scheduling variant so the
// Fig. 9 / Fig. 10 harnesses can sweep uniformly:
//
//   SerialOriginal       — original nest, no OpenMP (Fig. 10 baseline)
//   SerialCollapsedSim   — collapsed loop, serial, `root_eval_sims`
//                          recoveries (Fig. 10 protocol: 12 evaluations),
//                          using the kernel's best execution form
//                          (row segments where the body allows it)
//   SerialCollapsedSimScalar — same protocol but strictly element-wise
//                          incrementation, exactly the code shape of the
//                          paper's Fig. 4 (reproduces the paper's
//                          overhead outliers on light bodies)
//   OuterStatic          — original nest, outermost loop omp schedule(static)
//   OuterDynamic         — original nest, outermost loop omp schedule(dynamic)
//   CollapsedStatic      — collapsed loop, §V chunked scheme
//                          (schedule(static, CHUNK), one recovery per chunk)
//   CollapsedStaticBlock — collapsed loop, §V per-thread scheme
//                          (one contiguous block and one recovery per thread)
//   CollapsedDynamic     — collapsed loop, per-iteration recovery, dynamic

#include <memory>
#include <string>
#include <vector>

#include "core/collapse.hpp"

namespace nrc {

enum class Variant {
  SerialOriginal,
  SerialCollapsedSim,
  SerialCollapsedSimScalar,
  OuterStatic,
  OuterDynamic,
  CollapsedStatic,
  CollapsedStaticBlock,
  CollapsedDynamic,
};

const char* variant_name(Variant v);

struct KernelInfo {
  std::string name;
  std::string description;
  std::string shape;   ///< triangular / trapezoidal / tiled-triangular / ...
  int nest_depth = 0;  ///< depth of the hot nest
  int collapse_depth = 0;
};

/// One evaluation workload.
class IKernel {
 public:
  virtual ~IKernel() = default;

  virtual const KernelInfo& info() const = 0;

  /// Allocate and initialize data; scale 1.0 gives the default sizes
  /// (paper sizes are larger; the harnesses expose --scale).
  virtual void prepare(double scale) = 0;

  /// Number of iterations of the collapsed domain (reporting).
  virtual i64 collapsed_iterations() const = 0;

  /// Execute one variant.  `threads` applies to parallel variants;
  /// `root_eval_sims` applies to SerialCollapsedSim (paper uses 12).
  virtual void run(Variant v, int threads, int root_eval_sims) = 0;

  /// Checksum of the kernel's output (for cross-variant validation).
  virtual double checksum() const = 0;

  /// The collapsed sub-nest (for reporting / codegen round-trips).
  virtual NestSpec collapsed_spec() const = 0;
  virtual ParamMap bound_params() const = 0;
};

/// All registered kernel names, in the order the paper's figures use.
std::vector<std::string> kernel_names();

/// Factory; throws SpecError for unknown names.
std::unique_ptr<IKernel> make_kernel(const std::string& name);

std::vector<std::unique_ptr<IKernel>> make_all_kernels();

}  // namespace nrc
