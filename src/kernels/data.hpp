#pragma once
// Shared data-plumbing for the evaluation kernels: a contiguous row-major
// matrix with deterministic initialization and checksumming.  Checksums
// let the benchmark harnesses verify that every scheduling variant of a
// kernel computes the same result (the paper: "outputs of collapsed and
// non-collapsed programs have been compared to ensure the correctness").

#include <vector>

#include "support/int128.hpp"

namespace nrc {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(i64 rows, i64 cols);

  i64 rows() const { return rows_; }
  i64 cols() const { return cols_; }

  double* row(i64 r) { return data_.data() + r * cols_; }
  const double* row(i64 r) const { return data_.data() + r * cols_; }
  double* operator[](i64 r) { return row(r); }
  const double* operator[](i64 r) const { return row(r); }

  /// Deterministic pseudo-random fill in [0, 1) (LCG; seed-stable).
  void fill_lcg(unsigned seed);
  void fill_zero();

  /// Plain left-to-right sum of all elements.
  double checksum() const;

 private:
  i64 rows_ = 0;
  i64 cols_ = 0;
  std::vector<double> data_;
};

/// Relative comparison used when cross-checking kernel variants.
bool nearly_equal(double a, double b, double rel_tol = 1e-9);

}  // namespace nrc
