#include "kernels/trmm_tri.hpp"

namespace nrc {

TrmmTriKernel::TrmmTriKernel() {
  info_ = {"trmm",
           "triangular matrix product, inner range depends on the outer index",
           "triangular (inclusive diagonal)",
           /*nest_depth=*/3,
           /*collapse_depth=*/2};
}

void TrmmTriKernel::prepare(double scale) {
  n_ = scaled(1000, scale);
  a_ = Matrix(n_, n_);
  b_ = Matrix(n_, n_);
  out_ = Matrix(n_, n_);
  a_.fill_lcg(29);
  b_.fill_lcg(31);

  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"));
  setup_collapse(nest, {{"N", n_}});
  timed_reps_ = 1;
}

inline void TrmmTriKernel::body(i64 i, i64 j) {
  double acc = 0.0;
  for (i64 k = i; k < n_; ++k) acc += a_[k][i] * b_[k][j];
  out_[i][j] = acc;
}

void TrmmTriKernel::run(Variant v, int threads, int root_eval_sims) {
  out_.fill_zero();
  auto span_body = [&](std::span<const i64> ij) { body(ij[0], ij[1]); };
  for (int rep = 0; rep < timed_reps_; ++rep) {
    switch (v) {
      case Variant::SerialOriginal:
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = i; j < n_; ++j) body(i, j);
        break;
      case Variant::SerialCollapsedSim:
        collapsed_serial_sim(*eval_, root_eval_sims, span_body);
        break;
      case Variant::SerialCollapsedSimScalar:
        collapsed_serial_sim(*eval_, root_eval_sims, span_body);
        break;
      case Variant::OuterStatic:
  #pragma omp parallel for schedule(static) num_threads(threads)
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = i; j < n_; ++j) body(i, j);
        break;
      case Variant::OuterDynamic:
  #pragma omp parallel for schedule(dynamic) num_threads(threads)
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = i; j < n_; ++j) body(i, j);
        break;
      case Variant::CollapsedStatic:
        collapsed_for_chunked(*eval_,
                              default_chunk(eval_->trip_count(), threads),
                              span_body, {threads});
        break;
      case Variant::CollapsedStaticBlock:
        collapsed_for_per_thread(*eval_, span_body, {threads});
        break;
      case Variant::CollapsedDynamic:
        collapsed_for_per_iteration(*eval_, span_body, OmpSchedule::Dynamic, {threads});
        break;
    }
  }
}

double TrmmTriKernel::checksum() const { return out_.checksum(); }

}  // namespace nrc
