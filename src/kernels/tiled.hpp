#pragma once
// correlation_tiled / covariance_tiled — Pluto-style tiled variants.
//
// The paper: "Some programs have also been transformed by tiling the
// loops (using flag --tile of Pluto), since tiling often yields
// incomplete tiles that affect load balancing."
//
// The triangular (i, j) space is covered by TS x TS tiles whose tile
// coordinates themselves form a triangular space:
//
//   for (it = 0; it < NT; it++)
//     for (jt = it; jt < NT; jt++)       <- collapsed pair
//       ... clamped intra-tile loops ...
//
// Diagonal tiles are half-empty and tile work varies, so an outer-loop
// static schedule is imbalanced at the *tile* level, which is what
// collapsing the tile loops repairs.  NT = ceil(N / TS) is precomputed
// on the host and passed as the nest parameter (bounds stay affine).

#include "kernels/kernel_base.hpp"

namespace nrc {

class CorrelationTiledKernel final : public KernelBase {
 public:
  CorrelationTiledKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  void tile_body(i64 it, i64 jt);

  i64 n_ = 0;
  i64 ts_ = 0;
  i64 nt_ = 0;
  Matrix a_, b_, c_;
};

class CovarianceTiledKernel final : public KernelBase {
 public:
  CovarianceTiledKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  void tile_body(i64 it, i64 jt);

  i64 n_ = 0;
  i64 ts_ = 0;
  i64 nt_ = 0;
  Matrix data_, cov_;
  std::vector<double> mean_;
};

}  // namespace nrc
