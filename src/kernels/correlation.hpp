#pragma once
// correlation — the paper's motivating example (Fig. 1).
//
// Hot nest (3-deep, triangular, outer two loops parallel and collapsed):
//   for (i = 0; i < N-1; i++)
//     for (j = i+1; j < N; j++) {
//       for (k = 0; k < N; k++)
//         a[i][j] += b[k][i] * c[k][j];
//       a[j][i] = a[i][j];
//     }

#include "kernels/kernel_base.hpp"

namespace nrc {

class CorrelationKernel final : public KernelBase {
 public:
  CorrelationKernel();
  void prepare(double scale) override;
  void run(Variant v, int threads, int root_eval_sims) override;
  double checksum() const override;

 private:
  template <class IJ>
  void body(IJ i, IJ j);

  i64 n_ = 0;
  Matrix a_, b_, c_;
};

}  // namespace nrc
