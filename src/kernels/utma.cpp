#include "kernels/utma.hpp"

#include "runtime/segments.hpp"

namespace nrc {

UtmaKernel::UtmaKernel() {
  info_ = {"utma",
           "upper-triangular 2-matrix add (paper's own kernel, 5000^2 there)",
           "triangular (inclusive diagonal)",
           /*nest_depth=*/2,
           /*collapse_depth=*/2};
}

void UtmaKernel::prepare(double scale) {
  n_ = scaled(3600, scale);
  a_ = Matrix(n_, n_);
  b_ = Matrix(n_, n_);
  c_ = Matrix(n_, n_);
  a_.fill_lcg(41);
  b_.fill_lcg(43);

  NestSpec nest;
  nest.param("N")
      .loop("i", aff::c(0), aff::v("N"))
      .loop("j", aff::v("i"), aff::v("N"));
  setup_collapse(nest, {{"N", n_}});
  timed_reps_ = 16;
}

void UtmaKernel::run(Variant v, int threads, int root_eval_sims) {
  c_.fill_zero();
  auto body = [&](i64 i, i64 j) { c_[i][j] = a_[i][j] + b_[i][j]; };
  auto span_body = [&](std::span<const i64> ij) { body(ij[0], ij[1]); };
  // Row-segment body: the innermost run stays a contiguous loop, so the
  // collapsed code vectorizes exactly like the original nest (§VI-A).
  auto seg_body = [&](std::span<const i64> prefix, i64 j0, i64 j1) {
    const i64 i = prefix[0];
    const double* ai = a_[i];
    const double* bi = b_[i];
    double* ci = c_[i];
    for (i64 j = j0; j < j1; ++j) ci[j] = ai[j] + bi[j];
  };
  for (int rep = 0; rep < timed_reps_; ++rep) {
    switch (v) {
      case Variant::SerialOriginal:
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = i; j < n_; ++j) body(i, j);
        break;
      case Variant::SerialCollapsedSim:
        collapsed_serial_segments_sim(*eval_, root_eval_sims, seg_body);
        break;
      case Variant::SerialCollapsedSimScalar:
        collapsed_serial_sim(*eval_, root_eval_sims, span_body);
        break;
      case Variant::OuterStatic:
  #pragma omp parallel for schedule(static) num_threads(threads)
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = i; j < n_; ++j) body(i, j);
        break;
      case Variant::OuterDynamic:
  #pragma omp parallel for schedule(dynamic) num_threads(threads)
        for (i64 i = 0; i < n_; ++i)
          for (i64 j = i; j < n_; ++j) body(i, j);
        break;
      case Variant::CollapsedStatic:
        collapsed_for_row_segments_chunked(
            *eval_, default_chunk(eval_->trip_count(), threads), seg_body,
            threads);
        break;
      case Variant::CollapsedStaticBlock:
        collapsed_for_row_segments(*eval_, seg_body, threads);
        break;
      case Variant::CollapsedDynamic:
        collapsed_for_per_iteration(*eval_, span_body, OmpSchedule::Dynamic, {threads});
        break;
    }
  }
}

double UtmaKernel::checksum() const { return c_.checksum(); }

}  // namespace nrc
