#pragma once
// Common scaffolding shared by the kernel implementations.

#include <algorithm>
#include <cmath>
#include <optional>

#include "kernels/data.hpp"
#include "kernels/registry.hpp"
#include "runtime/execute.hpp"

namespace nrc {

/// Base class wiring the collapse machinery into a kernel.  Subclasses
/// fill info_, build their nest + data in prepare(), and implement run().
class KernelBase : public IKernel {
 public:
  const KernelInfo& info() const override { return info_; }
  NestSpec collapsed_spec() const override { return col_.nest(); }
  ParamMap bound_params() const override { return params_; }
  i64 collapsed_iterations() const override { return eval_->trip_count(); }

 protected:
  /// Collapse `nest`, bind `params`, cache the evaluator.
  void setup_collapse(const NestSpec& nest, const ParamMap& params) {
    col_ = collapse(nest);
    params_ = params;
    eval_.emplace(col_.bind(params));
  }

  /// Scaled problem size: round(base * scale), floored at `floor_sz`.
  static i64 scaled(i64 base, double scale, i64 floor_sz = 64) {
    return std::max<i64>(floor_sz, static_cast<i64>(std::llround(
                                       static_cast<double>(base) * scale)));
  }

  KernelInfo info_;
  Collapsed col_;
  std::optional<CollapsedEval> eval_;
  ParamMap params_;

  /// Number of times run() repeats the hot nest inside one timed call.
  /// Light-body kernels finish in ~10 ms on modern hosts, far below the
  /// noise floor of a shared machine; repeating the (idempotent or
  /// variant-invariant) nest restores a measurable duration without
  /// changing any variant ratio.
  int timed_reps_ = 1;
};

}  // namespace nrc
