#pragma once
// Loop-nest specification (the IR of the collapser).
//
// Models exactly the class of paper Fig. 5: perfectly nested loops
//
//   for (i0 = l0; i0 < u0; i0++)
//     for (i1 = l1(i0); i1 < u1(i0); i1++)
//       ...
//
// where every bound is an integer-coefficient affine expression in the
// *outer* iterators and the size parameters.  Upper bounds are exclusive,
// matching C for-loops.  Loops step by +1 (the model's "one unique
// iterator" with standard incrementation).

#include <string>
#include <vector>

#include "polyhedral/affine.hpp"

namespace nrc {

/// One loop level: `for (var = lower; var < upper; ++var)`.
struct Loop {
  std::string var;
  AffineExpr lower;
  AffineExpr upper;  // exclusive
};

/// A perfectly nested affine loop nest plus its symbolic parameters.
/// Build with the fluent API, then consumers call validate() (collapse()
/// does so automatically).
class NestSpec {
 public:
  NestSpec() = default;

  /// Declare a symbolic size parameter (e.g. "N").
  NestSpec& param(const std::string& name);

  /// Append an innermost loop level.  `upper` is exclusive.
  NestSpec& loop(const std::string& var, const AffineExpr& lower, const AffineExpr& upper);

  int depth() const { return static_cast<int>(loops_.size()); }
  const Loop& at(int k) const { return loops_[static_cast<size_t>(k)]; }
  const std::vector<Loop>& loops() const { return loops_; }
  const std::vector<std::string>& params() const { return params_; }

  /// Loop variable names, outermost first.
  std::vector<std::string> loop_vars() const;

  /// The sub-nest made of the outermost `c` loops (the loops to collapse).
  NestSpec outer(int c) const;

  /// Structural validation per the Fig. 5 model; throws SpecError:
  ///  * at least one loop, unique loop/parameter names,
  ///  * every bound references only parameters and *outer* iterators.
  void validate() const;

  /// Multi-line rendering of the nest (diagnostics / codegen headers).
  std::string str() const;

 private:
  std::vector<std::string> params_;
  std::vector<Loop> loops_;
};

}  // namespace nrc
