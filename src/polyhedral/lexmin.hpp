#pragma once
// Parametric lexicographic extrema (the ISL replacement).
//
// In the Fig. 5 model every bound is affine in the *outer* iterators, so
// the parametric lexicographic minimum of the indices below a prefix is
// just the chain of lower bounds, each substituted into the next — no
// integer programming required.  The paper uses ISL for this step
// (§IV-A: "Parametric lexicographic minimums can be computed using
// library ISL"); this module provides the closed-form equivalent.

#include <vector>

#include "polyhedral/domain.hpp"
#include "polyhedral/nest.hpp"

namespace nrc {

/// First (lexicographically minimal) iteration for concrete parameters.
std::vector<i64> lexmin_point(const NestSpec& spec, const ParamMap& params);

/// Last (lexicographically maximal) iteration for concrete parameters.
std::vector<i64> lexmax_point(const NestSpec& spec, const ParamMap& params);

/// Substitute loops k+1 .. depth-1 of `spec` by their parametric
/// lexicographic minima inside polynomial `p`.  The result only mentions
/// loop variables 0..k (and parameters).  Substitution proceeds from the
/// innermost loop outward so nested bound references resolve correctly.
Polynomial substitute_trailing_lexmin(const Polynomial& p, const NestSpec& spec, int k);

/// Same, substituting the parametric lexicographic *maxima* (upper-1).
Polynomial substitute_trailing_lexmax(const Polynomial& p, const NestSpec& spec, int k);

}  // namespace nrc
