#pragma once
// Brute-force iteration-domain utilities.
//
// These walkers execute a nest specification directly (nested loops with
// bound evaluation).  They are the ground truth that the symbolic
// machinery is tested against, the reference executor for validation,
// and the oracle used during closed-form branch selection.

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "polyhedral/nest.hpp"

namespace nrc {

using ParamMap = std::map<std::string, i64>;

/// Visit every point of the nest's iteration domain in lexicographic
/// order.  Empty ranges at any level are skipped (the walker is more
/// permissive than the Fig. 5 model, which is what lets validators
/// *detect* model violations).
void walk_domain(const NestSpec& spec, const ParamMap& params,
                 const std::function<void(std::span<const i64>)>& fn);

/// Exact number of points (by enumeration).
i64 count_domain_brute(const NestSpec& spec, const ParamMap& params);

/// All points, in lexicographic order (test-sized domains only).
std::vector<std::vector<i64>> domain_points(const NestSpec& spec, const ParamMap& params);

/// 1-based lexicographic rank of `point` by enumeration; 0 if the point
/// is not in the domain.
i64 rank_brute(const NestSpec& spec, const ParamMap& params, std::span<const i64> point);

/// True when the nest satisfies the Fig. 5 model requirement that every
/// loop body executes at least once for every feasible prefix (no empty
/// ranges).  Ranking polynomials are only valid under this condition.
bool has_no_empty_ranges(const NestSpec& spec, const ParamMap& params);

}  // namespace nrc
