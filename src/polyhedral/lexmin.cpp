#include "polyhedral/lexmin.hpp"

namespace nrc {

std::vector<i64> lexmin_point(const NestSpec& spec, const ParamMap& params) {
  std::map<std::string, i64> vals = params;
  std::vector<i64> idx(static_cast<size_t>(spec.depth()));
  for (int k = 0; k < spec.depth(); ++k) {
    const Loop& l = spec.at(k);
    idx[static_cast<size_t>(k)] = l.lower.eval(vals);
    vals[l.var] = idx[static_cast<size_t>(k)];
  }
  return idx;
}

std::vector<i64> lexmax_point(const NestSpec& spec, const ParamMap& params) {
  std::map<std::string, i64> vals = params;
  std::vector<i64> idx(static_cast<size_t>(spec.depth()));
  for (int k = 0; k < spec.depth(); ++k) {
    const Loop& l = spec.at(k);
    idx[static_cast<size_t>(k)] = l.upper.eval(vals) - 1;
    vals[l.var] = idx[static_cast<size_t>(k)];
  }
  return idx;
}

Polynomial substitute_trailing_lexmin(const Polynomial& p, const NestSpec& spec, int k) {
  Polynomial r = p;
  for (int q = spec.depth() - 1; q > k; --q) {
    r = r.substitute(spec.at(q).var, spec.at(q).lower.to_poly());
  }
  return r;
}

Polynomial substitute_trailing_lexmax(const Polynomial& p, const NestSpec& spec, int k) {
  Polynomial r = p;
  for (int q = spec.depth() - 1; q > k; --q) {
    r = r.substitute(spec.at(q).var, spec.at(q).upper.to_poly() - Polynomial(Rational(1)));
  }
  return r;
}

}  // namespace nrc
