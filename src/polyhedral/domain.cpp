#include "polyhedral/domain.hpp"

#include "support/error.hpp"

namespace nrc {
namespace {

struct Walker {
  const NestSpec& spec;
  std::map<std::string, i64> vals;  // params + bound iterators
  std::vector<i64> idx;
  const std::function<void(std::span<const i64>)>& fn;
  bool check_empty = false;
  bool saw_empty = false;

  void go(int k) {
    if (k == spec.depth()) {
      fn(std::span<const i64>(idx.data(), idx.size()));
      return;
    }
    const Loop& l = spec.at(k);
    const i64 lo = l.lower.eval(vals);
    const i64 hi = l.upper.eval(vals);
    if (hi <= lo) saw_empty = true;
    for (i64 v = lo; v < hi; ++v) {
      idx[static_cast<size_t>(k)] = v;
      vals[l.var] = v;
      go(k + 1);
    }
    vals.erase(l.var);
  }
};

}  // namespace

void walk_domain(const NestSpec& spec, const ParamMap& params,
                 const std::function<void(std::span<const i64>)>& fn) {
  spec.validate();
  Walker w{spec, params, std::vector<i64>(static_cast<size_t>(spec.depth()), 0), fn};
  w.go(0);
}

i64 count_domain_brute(const NestSpec& spec, const ParamMap& params) {
  i64 n = 0;
  walk_domain(spec, params, [&](std::span<const i64>) { ++n; });
  return n;
}

std::vector<std::vector<i64>> domain_points(const NestSpec& spec, const ParamMap& params) {
  std::vector<std::vector<i64>> pts;
  walk_domain(spec, params,
              [&](std::span<const i64> p) { pts.emplace_back(p.begin(), p.end()); });
  return pts;
}

i64 rank_brute(const NestSpec& spec, const ParamMap& params, std::span<const i64> point) {
  i64 r = 0;
  i64 found = 0;
  walk_domain(spec, params, [&](std::span<const i64> p) {
    if (found != 0) return;
    ++r;
    bool eq = true;
    for (size_t i = 0; i < p.size(); ++i)
      if (p[i] != point[i]) {
        eq = false;
        break;
      }
    if (eq) found = r;
  });
  return found;
}

bool has_no_empty_ranges(const NestSpec& spec, const ParamMap& params) {
  Walker w{spec, params, std::vector<i64>(static_cast<size_t>(spec.depth()), 0),
           [](std::span<const i64>) {}};
  w.check_empty = true;
  w.go(0);
  return !w.saw_empty;
}

}  // namespace nrc
