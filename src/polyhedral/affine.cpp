#include "polyhedral/affine.hpp"

#include "support/error.hpp"

namespace nrc {

AffineExpr AffineExpr::variable(const std::string& name, i64 coef) {
  AffineExpr a;
  if (coef != 0) a.coefs_.emplace(name, coef);
  return a;
}

i64 AffineExpr::coefficient(const std::string& name) const {
  auto it = coefs_.find(name);
  return it == coefs_.end() ? 0 : it->second;
}

AffineExpr AffineExpr::operator+(const AffineExpr& o) const {
  AffineExpr r = *this;
  r.cst_ = checked_add_i64(r.cst_, o.cst_);
  for (const auto& [v, c] : o.coefs_) {
    const i64 nc = checked_add_i64(r.coefficient(v), c);
    if (nc == 0) {
      r.coefs_.erase(v);
    } else {
      r.coefs_[v] = nc;
    }
  }
  return r;
}

AffineExpr AffineExpr::operator-() const {
  AffineExpr r;
  r.cst_ = -cst_;
  for (const auto& [v, c] : coefs_) r.coefs_.emplace(v, -c);
  return r;
}

AffineExpr AffineExpr::operator-(const AffineExpr& o) const { return *this + (-o); }

AffineExpr AffineExpr::operator*(i64 s) const {
  AffineExpr r;
  if (s == 0) return r;
  r.cst_ = checked_mul_i64(cst_, s);
  for (const auto& [v, c] : coefs_) r.coefs_.emplace(v, checked_mul_i64(c, s));
  return r;
}

std::set<std::string> AffineExpr::variables() const {
  std::set<std::string> vs;
  for (const auto& [v, c] : coefs_) vs.insert(v);
  return vs;
}

i64 AffineExpr::eval(const std::map<std::string, i64>& vals) const {
  i64 acc = cst_;
  for (const auto& [v, c] : coefs_) {
    auto it = vals.find(v);
    if (it == vals.end()) throw SpecError("AffineExpr::eval: missing value for " + v);
    acc = checked_add_i64(acc, checked_mul_i64(c, it->second));
  }
  return acc;
}

Polynomial AffineExpr::to_poly() const {
  Polynomial p{Rational(cst_)};
  for (const auto& [v, c] : coefs_) p += Polynomial::variable(v) * Rational(c);
  return p;
}

std::string AffineExpr::str() const {
  std::string s;
  for (const auto& [v, c] : coefs_) {
    if (s.empty()) {
      if (c == -1) {
        s += "-";
      } else if (c != 1) {
        s += std::to_string(c) + "*";
      }
      s += v;
    } else {
      s += c >= 0 ? " + " : " - ";
      const i64 ac = c >= 0 ? c : -c;
      if (ac != 1) s += std::to_string(ac) + "*";
      s += v;
    }
  }
  if (s.empty()) return std::to_string(cst_);
  if (cst_ > 0) s += " + " + std::to_string(cst_);
  if (cst_ < 0) s += " - " + std::to_string(-cst_);
  return s;
}

}  // namespace nrc
