#pragma once
// Affine expressions with integer coefficients.
//
// Loop bounds in the handled model (paper Fig. 5) are linear combinations
// of surrounding iterators and size parameters with integer coefficients.
// AffineExpr is that representation; it converts losslessly to
// nrc::Polynomial for the symbolic machinery and evaluates quickly for
// the runtime.

#include <map>
#include <set>
#include <string>

#include "math/polynomial.hpp"
#include "support/int128.hpp"

namespace nrc {

/// Integer-coefficient affine expression: sum(coef_v * v) + constant.
class AffineExpr {
 public:
  /// Zero.
  AffineExpr() = default;
  /// Constant c.
  AffineExpr(i64 c) : cst_(c) {}  // NOLINT(google-explicit-constructor)

  static AffineExpr variable(const std::string& name, i64 coef = 1);

  i64 constant_term() const { return cst_; }
  i64 coefficient(const std::string& name) const;
  const std::map<std::string, i64>& coefficients() const { return coefs_; }
  bool is_constant() const { return coefs_.empty(); }

  AffineExpr operator+(const AffineExpr& o) const;
  AffineExpr operator-(const AffineExpr& o) const;
  AffineExpr operator-() const;
  AffineExpr operator*(i64 s) const;
  AffineExpr& operator+=(const AffineExpr& o) { return *this = *this + o; }
  AffineExpr& operator-=(const AffineExpr& o) { return *this = *this - o; }
  bool operator==(const AffineExpr& o) const { return cst_ == o.cst_ && coefs_ == o.coefs_; }

  std::set<std::string> variables() const;

  /// Exact evaluation; throws SpecError when a variable is missing.
  i64 eval(const std::map<std::string, i64>& vals) const;

  Polynomial to_poly() const;

  /// Rendering such as "i + 2*N - 1".
  std::string str() const;

 private:
  std::map<std::string, i64> coefs_;  // no zero coefficients
  i64 cst_ = 0;
};

inline AffineExpr operator*(i64 s, const AffineExpr& a) { return a * s; }

namespace aff {
/// Terse builders:  aff::v("i") + 2 * aff::v("N") - 1
inline AffineExpr v(const std::string& name) { return AffineExpr::variable(name); }
inline AffineExpr c(i64 value) { return AffineExpr(value); }
}  // namespace aff

}  // namespace nrc
