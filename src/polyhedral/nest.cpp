#include "polyhedral/nest.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"

namespace nrc {

NestSpec& NestSpec::param(const std::string& name) {
  params_.push_back(name);
  return *this;
}

NestSpec& NestSpec::loop(const std::string& var, const AffineExpr& lower,
                         const AffineExpr& upper) {
  loops_.push_back(Loop{var, lower, upper});
  return *this;
}

std::vector<std::string> NestSpec::loop_vars() const {
  std::vector<std::string> vs;
  vs.reserve(loops_.size());
  for (const auto& l : loops_) vs.push_back(l.var);
  return vs;
}

NestSpec NestSpec::outer(int c) const {
  if (c < 1 || c > depth()) throw SpecError("NestSpec::outer: invalid collapse depth");
  NestSpec s;
  s.params_ = params_;
  s.loops_.assign(loops_.begin(), loops_.begin() + c);
  return s;
}

void NestSpec::validate() const {
  if (loops_.empty()) throw SpecError("NestSpec: empty nest");

  std::set<std::string> names(params_.begin(), params_.end());
  if (names.size() != params_.size()) throw SpecError("NestSpec: duplicate parameter name");

  std::set<std::string> visible = names;
  for (size_t k = 0; k < loops_.size(); ++k) {
    const Loop& l = loops_[k];
    if (l.var.empty()) throw SpecError("NestSpec: empty loop variable name");
    if (!names.insert(l.var).second)
      throw SpecError("NestSpec: duplicate name '" + l.var + "'");
    for (const auto* bound : {&l.lower, &l.upper}) {
      for (const auto& v : bound->variables()) {
        if (!visible.count(v))
          throw SpecError("NestSpec: bound of loop '" + l.var + "' references '" + v +
                          "', which is not a parameter or an outer iterator");
      }
    }
    visible.insert(l.var);
  }
}

std::string NestSpec::str() const {
  std::string s;
  if (!params_.empty()) {
    s += "params:";
    for (const auto& p : params_) s += " " + p;
    s += "\n";
  }
  std::string indent;
  for (const auto& l : loops_) {
    s += indent + "for (" + l.var + " = " + l.lower.str() + "; " + l.var + " < " +
         l.upper.str() + "; " + l.var + "++)\n";
    indent += "  ";
  }
  return s;
}

}  // namespace nrc
