#pragma once
// Guarded real-arithmetic closed-form root estimates for the recovery
// engine (degrees 3 and 4).
//
// The level solvers in CollapsedEval only need floor(Re(x)) of the
// *selected convenient branch* of a level equation — and they sit behind
// the exact integer correction guard, so an estimate may be off by a few
// ulps without ever producing a wrong tuple.  That licence lets both the
// cubic (Cardano/Viete) and the quartic (Ferrari) run without any
// std::complex arithmetic:
//
//   * a Cardano branch value is computed as an explicit (re, im) pair:
//     three-real-root cubics (negative discriminant) take the Viete
//     trigonometric form, one-real-root cubics read the branch off
//     tables of cos/sin of multiples of pi/3 (the rotation the principal
//     complex cube root introduces for a negative real radicand),
//   * the Ferrari resolvent cubic reuses that Cardano path, and the two
//     principal complex square roots of the quadratic-factor stage
//     unfold into their real-arithmetic closed forms
//     Re(csqrt(z)) = sqrt((|z| + Re z)/2),
//     Im(csqrt(z)) = sign(Im z) * sqrt((|z| - Re z)/2),
//     so a complex resolvent root (the conjugate-pair branches the
//     calibration routinely selects) costs two hypots instead of a
//     ~90-instruction bytecode program.
//
// Degenerate configurations (leading coefficient zero, w == 0 divisions,
// the u -> 0 Cardano degeneration) surface as non-finite values and make
// the estimate functions return false; the caller demotes those points
// to the bytecode program, whose guard/search machinery stays exact.
//
// Everything is templated on the evaluation type F (long double for the
// scalar checked-i128 engine, double for the proven-exact-f64 and
// lane-batched engines) and on the coefficient type TA (i128 or double).

#include <cmath>

#include "support/int128.hpp"

namespace nrc {

/// Complex value of Cardano branch `branch` of the monic cubic
/// x^3 + b x^2 + c x + d, as an explicit real pair.  Algebraically
/// identical to the branch-k complex formula
/// u*cis(k,3) - p/(3*u*cis(k,3)) - b/3 that the symbolic root encodes
/// (u the principal cube root of -q/2 + csqrt(delta)); no complex
/// arithmetic anywhere.  The u -> 0 degeneration surfaces as a
/// non-finite value.
template <class F>
struct CardanoBranch {
  F re = F(0);
  F im = F(0);
};

template <class F>
CardanoBranch<F> cardano_branch(F b, F c, F d, int branch) {
  const F p = c - b * b / F(3);
  const F q = F(2) * b * b * b / F(27) - b * c / F(3) + d;
  const F delta = q * q / F(4) + p * p * p / F(27);
  constexpr F k2Pi3 = F(2.0943951023931954923084289221863353L);
  CardanoBranch<F> out;
  if (delta < F(0)) {
    // Three real roots: u = m*cis(phi/3), |u|^2 = -p/3, and the k-th
    // root collapses to 2*m*cos(phi/3 + 2*pi*k/3).  (The seed's solver
    // divided the whole phase by 3 — cos((phi + 2*pi*k/3)/3) — which is
    // wrong for branches 1 and 2; the exact guard silently absorbed it
    // as a search fallback, and the calibrated nests all picked branch
    // 0.  The Ferrari resolvent exercises every branch, so the phase is
    // now correct and branches 1/2 estimate exactly.)
    const F m = std::sqrt(-p / F(3));
    const F phi = std::atan2(std::sqrt(-delta), -q / F(2));
    out.re = F(2) * m * std::cos(phi / F(3) + k2Pi3 * static_cast<F>(branch)) -
             b / F(3);
  } else {
    // One real root: the radicand v is real, so u = m*cis(theta) with
    // theta a multiple of pi/3 (shifted by pi/3 when v < 0, from the
    // principal cube root of a negative real).  With |u| = m,
    // u_k - p/(3 u_k) = (m - p/(3m))*cos(theta) + i*(m + p/(3m))*sin(theta).
    const F v = -q / F(2) + std::sqrt(delta);
    const F m = std::cbrt(std::fabs(v));
    constexpr F kR3o2 = F(0.86602540378443864676372317075293618L);  // sqrt(3)/2
    static constexpr F kCosPos[3] = {F(1), F(-0.5), F(-0.5)};    // v >= 0
    static constexpr F kSinPos[3] = {F(0), kR3o2, -kR3o2};
    static constexpr F kCosNeg[3] = {F(0.5), F(-1), F(0.5)};     // v < 0
    static constexpr F kSinNeg[3] = {kR3o2, F(0), -kR3o2};
    const F cosw = v < F(0) ? kCosNeg[branch] : kCosPos[branch];
    const F sinw = v < F(0) ? kSinNeg[branch] : kSinPos[branch];
    const F po3m = p / (F(3) * m);  // m == 0 degenerates to inf: guard
    out.re = (m - po3m) * cosw - b / F(3);
    out.im = (m + po3m) * sinw;
  }
  return out;
}

/// True when `root` can be floored into the i64 index range.
template <class F>
inline bool index_range_finite(F root) {
  return std::isfinite(root) && root >= F(-9.2e18L) && root <= F(9.2e18L);
}

/// Real-arithmetic Cardano/Viete estimate for A3*t^3 + ... + A0 <= 0,
/// shared by the scalar solver (F = long double on i128 coefficients,
/// the historical behaviour) and the lane-batched solver (F = double on
/// i128 or exact-double coefficients; the exact guard absorbs the
/// precision difference).  Only Re of the branch is needed for the
/// floor.  Returns false when the formula degenerates here (A3 == 0,
/// non-finite, or out of the index range).
template <class F, class TA>
bool cubic_estimate(const TA* A, int branch, i64* est) {
  if (A[3] == 0) return false;
  const F a3 = static_cast<F>(A[3]);
  const CardanoBranch<F> cb =
      cardano_branch<F>(static_cast<F>(A[2]) / a3, static_cast<F>(A[1]) / a3,
                        static_cast<F>(A[0]) / a3, branch);
  if (!index_range_finite(cb.re)) return false;
  *est = static_cast<i64>(std::floor(cb.re + F(1e-9L)));
  return true;
}

/// Guarded real-arithmetic Ferrari estimate for A4*t^4 + ... + A0 <= 0,
/// branch = 4*(resolvent Cardano branch) + quadratic-factor branch —
/// the same branch family as math/roots.cpp::root_quartic and the
/// symbolic quartic_root, so the estimate tracks the branch the
/// calibration selected.  The resolvent root w (complex for the
/// conjugate-pair Cardano branches) flows through the chain as an
/// explicit (re, im) pair:
///
///   alpha = csqrt(w):   ar = sqrt((|w| + wr)/2),
///                       ai = sign(wi) * sqrt((|w| - wr)/2),
///   q/alpha           = q * conj(alpha) / |w|,
///   beta, gamma       = (p + w -+ q/alpha)/2,
///   D = alpha^2 - 4*{beta,gamma} = w - 4*{beta,gamma},
///   Re(y)             = (-+ar +- sqrt((|D| + Dr)/2)) / 2,
///
/// and the recovered estimate is floor(Re(y) - b/4 + eps).  Returns
/// false when the formula degenerates (A4 == 0, w == 0 divisions,
/// non-finite, out of the index range); the caller then demotes the
/// point to the bytecode program.
template <class F, class TA>
bool ferrari_estimate(const TA* A, int branch, i64* est) {
  if (A[4] == 0) return false;
  const F a4 = static_cast<F>(A[4]);
  const F b = static_cast<F>(A[3]) / a4;
  const F c = static_cast<F>(A[2]) / a4;
  const F d = static_cast<F>(A[1]) / a4;
  const F e = static_cast<F>(A[0]) / a4;

  // Depressed quartic y^4 + p y^2 + q y + r (x = y - b/4).
  const F p = c - b * b * (F(3) / F(8));
  const F q = d - b * c / F(2) + b * b * b / F(8);
  const F r = e - b * d / F(4) + b * b * c / F(16) - b * b * b * b * (F(3) / F(256));

  const int rb = branch / 4;  // resolvent Cardano branch, 0..2
  const int qb = branch % 4;  // quadratic-factor branch, 0..3

  // Resolvent cubic w^3 + 2p w^2 + (p^2 - 4r) w - q^2 = 0 (monic).
  const CardanoBranch<F> w =
      cardano_branch<F>(F(2) * p, p * p - F(4) * r, -(q * q), rb);

  // alpha = csqrt(w), principal (Re >= 0, Im carries sign(Im w)).
  const F aw = std::hypot(w.re, w.im);
  const F ar = std::sqrt((aw + w.re) / F(2));
  const F ai = std::copysign(std::sqrt((aw - w.re) / F(2)), w.im);
  // q / alpha = q * conj(alpha) / |alpha|^2, |alpha|^2 = |w|.
  const F qar = q * ar / aw;  // w == 0 degenerates to NaN: caught below
  const F qai = -q * ai / aw;
  // D = alpha^2 - 4*{beta,gamma} = w - 2*(p + w +- q/alpha).
  const F sg = qb < 2 ? F(-1) : F(1);
  const F Dr = w.re - F(2) * (p + w.re + sg * qar);
  const F Di = -w.im - F(2) * sg * qai;
  const F sr = std::sqrt((std::hypot(Dr, Di) + Dr) / F(2));  // Re(csqrt(D))
  const F y = ((qb < 2 ? -ar : ar) + ((qb & 1) ? -sr : sr)) / F(2);

  const F root = y - b / F(4);
  if (!index_range_finite(root)) return false;
  *est = static_cast<i64>(std::floor(root + F(1e-9L)));
  return true;
}

}  // namespace nrc
