#pragma once
// Guarded real-arithmetic closed-form root estimates for the recovery
// engine (degrees 3 and 4).
//
// The level solvers in CollapsedEval only need floor(Re(x)) of the
// *selected convenient branch* of a level equation — and they sit behind
// the exact integer correction guard, so an estimate may be off by a few
// ulps without ever producing a wrong tuple.  That licence lets both the
// cubic (Cardano/Viete) and the quartic (Ferrari) run without any
// std::complex arithmetic:
//
//   * a Cardano branch value is computed as an explicit (re, im) pair:
//     three-real-root cubics (negative discriminant) take the Viete
//     trigonometric form, one-real-root cubics read the branch off
//     tables of cos/sin of multiples of pi/3 (the rotation the principal
//     complex cube root introduces for a negative real radicand),
//   * the Ferrari resolvent cubic reuses that Cardano path, and the two
//     principal complex square roots of the quadratic-factor stage
//     unfold into their real-arithmetic closed forms
//     Re(csqrt(z)) = sqrt((|z| + Re z)/2),
//     Im(csqrt(z)) = sign(Im z) * sqrt((|z| - Re z)/2),
//     so a complex resolvent root (the conjugate-pair branches the
//     calibration routinely selects) costs two hypots instead of a
//     ~90-instruction bytecode program.
//
// Degenerate configurations (leading coefficient zero, w == 0 divisions,
// the u -> 0 Cardano degeneration) surface as non-finite values and make
// the estimate functions return false; the caller demotes those points
// to the bytecode program, whose guard/search machinery stays exact.
//
// Everything is templated on the evaluation type F (long double for the
// scalar checked-i128 engine, double for the proven-exact-f64 and
// lane-batched engines) and on the coefficient type TA (i128 or double).

#include <cmath>

#include "runtime/simd_abi.hpp"
#include "support/int128.hpp"

namespace nrc {

/// Complex value of Cardano branch `branch` of the monic cubic
/// x^3 + b x^2 + c x + d, as an explicit real pair.  Algebraically
/// identical to the branch-k complex formula
/// u*cis(k,3) - p/(3*u*cis(k,3)) - b/3 that the symbolic root encodes
/// (u the principal cube root of -q/2 + csqrt(delta)); no complex
/// arithmetic anywhere.  The u -> 0 degeneration surfaces as a
/// non-finite value.
template <class F>
struct CardanoBranch {
  F re = F(0);
  F im = F(0);
};

template <class F>
CardanoBranch<F> cardano_branch(F b, F c, F d, int branch) {
  const F p = c - b * b / F(3);
  const F q = F(2) * b * b * b / F(27) - b * c / F(3) + d;
  const F delta = q * q / F(4) + p * p * p / F(27);
  constexpr F k2Pi3 = F(2.0943951023931954923084289221863353L);
  CardanoBranch<F> out;
  if (delta < F(0)) {
    // Three real roots: u = m*cis(phi/3), |u|^2 = -p/3, and the k-th
    // root collapses to 2*m*cos(phi/3 + 2*pi*k/3).  (The seed's solver
    // divided the whole phase by 3 — cos((phi + 2*pi*k/3)/3) — which is
    // wrong for branches 1 and 2; the exact guard silently absorbed it
    // as a search fallback, and the calibrated nests all picked branch
    // 0.  The Ferrari resolvent exercises every branch, so the phase is
    // now correct and branches 1/2 estimate exactly.)
    const F m = std::sqrt(-p / F(3));
    const F phi = std::atan2(std::sqrt(-delta), -q / F(2));
    out.re = F(2) * m * std::cos(phi / F(3) + k2Pi3 * static_cast<F>(branch)) -
             b / F(3);
  } else {
    // One real root: the radicand v is real, so u = m*cis(theta) with
    // theta a multiple of pi/3 (shifted by pi/3 when v < 0, from the
    // principal cube root of a negative real).  With |u| = m,
    // u_k - p/(3 u_k) = (m - p/(3m))*cos(theta) + i*(m + p/(3m))*sin(theta).
    const F v = -q / F(2) + std::sqrt(delta);
    const F m = std::cbrt(std::fabs(v));
    constexpr F kR3o2 = F(0.86602540378443864676372317075293618L);  // sqrt(3)/2
    static constexpr F kCosPos[3] = {F(1), F(-0.5), F(-0.5)};    // v >= 0
    static constexpr F kSinPos[3] = {F(0), kR3o2, -kR3o2};
    static constexpr F kCosNeg[3] = {F(0.5), F(-1), F(0.5)};     // v < 0
    static constexpr F kSinNeg[3] = {kR3o2, F(0), -kR3o2};
    const F cosw = v < F(0) ? kCosNeg[branch] : kCosPos[branch];
    const F sinw = v < F(0) ? kSinNeg[branch] : kSinPos[branch];
    const F po3m = p / (F(3) * m);  // m == 0 degenerates to inf: guard
    out.re = (m - po3m) * cosw - b / F(3);
    out.im = (m + po3m) * sinw;
  }
  return out;
}

/// True when `root` can be floored into the i64 index range.
template <class F>
inline bool index_range_finite(F root) {
  return std::isfinite(root) && root >= F(-9.2e18L) && root <= F(9.2e18L);
}

/// Real-arithmetic Cardano/Viete estimate for A3*t^3 + ... + A0 <= 0,
/// shared by the scalar solver (F = long double on i128 coefficients,
/// the historical behaviour) and the lane-batched solver (F = double on
/// i128 or exact-double coefficients; the exact guard absorbs the
/// precision difference).  Only Re of the branch is needed for the
/// floor.  Returns false when the formula degenerates here (A3 == 0,
/// non-finite, or out of the index range).
template <class F, class TA>
bool cubic_estimate(const TA* A, int branch, i64* est) {
  if (A[3] == 0) return false;
  const F a3 = static_cast<F>(A[3]);
  const CardanoBranch<F> cb =
      cardano_branch<F>(static_cast<F>(A[2]) / a3, static_cast<F>(A[1]) / a3,
                        static_cast<F>(A[0]) / a3, branch);
  if (!index_range_finite(cb.re)) return false;
  *est = static_cast<i64>(std::floor(cb.re + F(1e-9L)));
  return true;
}

/// Guarded real-arithmetic Ferrari estimate for A4*t^4 + ... + A0 <= 0,
/// branch = 4*(resolvent Cardano branch) + quadratic-factor branch —
/// the same branch family as math/roots.cpp::root_quartic and the
/// symbolic quartic_root, so the estimate tracks the branch the
/// calibration selected.  The resolvent root w (complex for the
/// conjugate-pair Cardano branches) flows through the chain as an
/// explicit (re, im) pair:
///
///   alpha = csqrt(w):   ar = sqrt((|w| + wr)/2),
///                       ai = sign(wi) * sqrt((|w| - wr)/2),
///   q/alpha           = q * conj(alpha) / |w|,
///   beta, gamma       = (p + w -+ q/alpha)/2,
///   D = alpha^2 - 4*{beta,gamma} = w - 4*{beta,gamma},
///   Re(y)             = (-+ar +- sqrt((|D| + Dr)/2)) / 2,
///
/// and the recovered estimate is floor(Re(y) - b/4 + eps).  Returns
/// false when the formula degenerates (A4 == 0, w == 0 divisions,
/// non-finite, out of the index range); the caller then demotes the
/// point to the bytecode program.
template <class F, class TA>
bool ferrari_estimate(const TA* A, int branch, i64* est) {
  if (A[4] == 0) return false;
  const F a4 = static_cast<F>(A[4]);
  const F b = static_cast<F>(A[3]) / a4;
  const F c = static_cast<F>(A[2]) / a4;
  const F d = static_cast<F>(A[1]) / a4;
  const F e = static_cast<F>(A[0]) / a4;

  // Depressed quartic y^4 + p y^2 + q y + r (x = y - b/4).
  const F p = c - b * b * (F(3) / F(8));
  const F q = d - b * c / F(2) + b * b * b / F(8);
  const F r = e - b * d / F(4) + b * b * c / F(16) - b * b * b * b * (F(3) / F(256));

  const int rb = branch / 4;  // resolvent Cardano branch, 0..2
  const int qb = branch % 4;  // quadratic-factor branch, 0..3

  // Resolvent cubic w^3 + 2p w^2 + (p^2 - 4r) w - q^2 = 0 (monic).
  const CardanoBranch<F> w =
      cardano_branch<F>(F(2) * p, p * p - F(4) * r, -(q * q), rb);

  // alpha = csqrt(w), principal (Re >= 0, Im carries sign(Im w)).
  const F aw = std::hypot(w.re, w.im);
  const F ar = std::sqrt((aw + w.re) / F(2));
  const F ai = std::copysign(std::sqrt((aw - w.re) / F(2)), w.im);
  // q / alpha = q * conj(alpha) / |alpha|^2, |alpha|^2 = |w|.
  const F qar = q * ar / aw;  // w == 0 degenerates to NaN: caught below
  const F qai = -q * ai / aw;
  // D = alpha^2 - 4*{beta,gamma} = w - 2*(p + w +- q/alpha).
  const F sg = qb < 2 ? F(-1) : F(1);
  const F Dr = w.re - F(2) * (p + w.re + sg * qar);
  const F Di = -w.im - F(2) * sg * qai;
  const F sr = std::sqrt((std::hypot(Dr, Di) + Dr) / F(2));  // Re(csqrt(D))
  const F y = ((qb < 2 ? -ar : ar) + ((qb & 1) ? -sr : sr)) / F(2);

  const F root = y - b / F(4);
  if (!index_range_finite(root)) return false;
  *est = static_cast<i64>(std::floor(root + F(1e-9L)));
  return true;
}

/// Lane-wide Cardano branch value of W monic cubics at once, entirely
/// in-register on both discriminant signs: three-real-root (Viete)
/// lanes run on the simd_abi polynomial vatan2/vcos kernels, one-real-
/// root lanes (delta >= 0 — the dominant configuration on quartic
/// resolvents) on the Halley vcbrt kernel plus the same cos/sin branch
/// tables the scalar path reads.  Each side is computed only when some
/// lane needs it, and a lane-select blends the results, so pure-Viete
/// batches (the calibrated cubic kernel levels) and pure-cbrt batches
/// (the simplex quartic resolvents) each pay for exactly one side.
/// set_vector_trig(false) routes the whole batch through the scalar
/// cardano_branch<double> per lane — the libm reference path the
/// equivalence tests diff against.
template <class V>
struct CardanoBranchLanes {
  V re;
  V im;
};

template <class V>
CardanoBranchLanes<V> cardano_branch_lanes(V b, V c, V d, int branch) {
  using T = simd::vtraits<V>;
  constexpr int W = T::lanes;
  const V zero = T::splat(0.0);
  // p, q, delta mirror cardano_branch's operation order exactly so the
  // lane classification below agrees with the scalar fallback's.
  const V p = simd::sub(c, simd::div(simd::mul(b, b), T::splat(3.0)));
  const V q = simd::add(
      simd::sub(simd::div(simd::mul(simd::mul(simd::mul(T::splat(2.0), b), b), b),
                          T::splat(27.0)),
                simd::div(simd::mul(b, c), T::splat(3.0))),
      d);
  const V delta = simd::add(simd::div(simd::mul(q, q), T::splat(4.0)),
                            simd::div(simd::mul(simd::mul(p, p), p), T::splat(27.0)));
  CardanoBranchLanes<V> out{zero, zero};
  if (!simd::vector_trig_enabled()) {
    double bb[W], cc[W], dd[W], re[W], im[W];
    simd::store(bb, b);
    simd::store(cc, c);
    simd::store(dd, d);
    for (int l = 0; l < W; ++l) {
      const CardanoBranch<double> w = cardano_branch<double>(bb[l], cc[l], dd[l], branch);
      re[l] = w.re;
      im[l] = w.im;
    }
    out.re = simd::load<W>(re);
    out.im = simd::load<W>(im);
    return out;
  }
  const auto nonneg = simd::cmp_ge(delta, zero);
  // delta < 0 strictly (NaN deltas land on the nonneg side, where the
  // formula goes non-finite exactly like the scalar path's).
  const auto viete = simd::cmp_ge(simd::neg(delta), T::splat(5e-324));
  V re_v = zero;
  if (simd::any(viete)) {
    // Viete: 2*m*cos(phi/3 + 2*pi*k/3) - b/3.  delta >= 0 lanes compute
    // garbage here (sqrt of a negative) and are deselected below.
    constexpr double k2Pi3 = 2.0943951023931954923084289221863353;
    const V m = simd::sqrt(simd::div(simd::neg(p), T::splat(3.0)));
    const V phi = simd::vatan2(simd::sqrt(simd::neg(delta)),
                               simd::div(simd::neg(q), T::splat(2.0)));
    re_v = simd::sub(
        simd::mul(simd::mul(T::splat(2.0), m),
                  simd::vcos(simd::add(simd::div(phi, T::splat(3.0)),
                                       T::splat(k2Pi3 * branch)))),
        simd::div(b, T::splat(3.0)));
  }
  V re_p = zero, im_p = zero;
  if (simd::any(nonneg)) {
    // One real root: u = m*cis(theta), theta a multiple of pi/3 read
    // off the same cos/sin tables as the scalar path (v < 0 shifts the
    // principal cube root's phase by pi/3).  delta < 0 lanes compute
    // NaN here (sqrt of a negative flows into v) and are deselected.
    constexpr double kR3o2 = 0.86602540378443864676372317075293618;  // sqrt(3)/2
    static constexpr double kCosPos[3] = {1.0, -0.5, -0.5};  // v >= 0
    static constexpr double kSinPos[3] = {0.0, kR3o2, -kR3o2};
    static constexpr double kCosNeg[3] = {0.5, -1.0, 0.5};  // v < 0
    static constexpr double kSinNeg[3] = {kR3o2, 0.0, -kR3o2};
    const V v = simd::add(simd::div(simd::neg(q), T::splat(2.0)), simd::sqrt(delta));
    const V m = simd::vcbrt_nonneg(simd::vabs(v));
    const auto vpos = simd::cmp_ge(v, zero);
    const V cosw = simd::select(vpos, T::splat(kCosPos[branch]), T::splat(kCosNeg[branch]));
    const V sinw = simd::select(vpos, T::splat(kSinPos[branch]), T::splat(kSinNeg[branch]));
    const V po3m = simd::div(p, simd::mul(T::splat(3.0), m));  // m == 0 -> inf: guard
    re_p = simd::sub(simd::mul(simd::sub(m, po3m), cosw), simd::div(b, T::splat(3.0)));
    im_p = simd::mul(simd::add(m, po3m), sinw);
  }
  out.re = simd::select(nonneg, re_p, re_v);
  out.im = simd::select(nonneg, im_p, zero);
  return out;
}

/// Lane-batched cubic_estimate: W cubics with coefficient rows A0..A4
/// at `A + l*stride`, one shared branch.  Lane l of est/ok matches
/// cubic_estimate<double, double> on that row bit for bit when the
/// polynomial trig is disabled; with it enabled the estimates may
/// differ by ~1e-9, which the exact integer guard absorbs.
template <int W>
inline void cubic_estimate_lanes(const double* A, size_t stride, int branch,
                                 i64* est, bool* ok) {
  double b[W], c[W], d[W];
  for (int l = 0; l < W; ++l) {
    const double a3 = A[l * stride + 3];
    b[l] = A[l * stride + 2] / a3;  // a3 == 0 lanes go non-finite and
    c[l] = A[l * stride + 1] / a3;  // are rejected below, matching the
    d[l] = A[l * stride + 0] / a3;  // scalar estimate's early return
  }
  const CardanoBranchLanes<simd::batch<W>> cb = cardano_branch_lanes(
      simd::load<W>(b), simd::load<W>(c), simd::load<W>(d), branch);
  double re[W];
  simd::store(re, cb.re);
  for (int l = 0; l < W; ++l) {
    ok[l] = A[l * stride + 3] != 0.0 && index_range_finite(re[l]);
    if (ok[l]) est[l] = static_cast<i64>(std::floor(re[l] + 1e-9));
  }
}

}  // namespace nrc
