#pragma once
// Process-wide runtime configuration.
//
// Historically every engine toggle was its own process-global (the lane
// trig switch lived in simd_abi.hpp) or per-evaluator mutator that
// callers had to remember to apply after every bind()
// (use_bytecode_quartics, force_quartic_demotion, set_f64_guards).
// RuntimeConfig folds them into one struct consulted exactly once per
// bind(): the evaluator a bind() returns starts from these defaults,
// and the per-instance hooks on CollapsedEval remain available to
// diverge a single evaluator afterwards (tests, ablations).
//
// The config is intentionally a plain struct behind a function-local
// static — not thread-safe to mutate.  Flip it only around
// single-threaded sections, or use ScopedRuntimeConfig, whose
// constructor/destructor pair keeps test overrides exception-safe and
// impossible to leak into the next test.

namespace nrc {

struct RuntimeConfig {
  /// Polynomial lane trig (vcos/vatan2/vcbrt) in the Cardano/Ferrari
  /// lane solvers; false routes every lane through per-lane libm (the
  /// exact-equivalence reference path).
  bool vector_trig = true;
  /// Default guard policy bind() installs: proven-exact f64 guard fast
  /// paths where the slot-magnitude proof holds.  false forces the
  /// checked-__int128 reference arithmetic everywhere.
  bool f64_guards = true;
  /// Lower quartic levels onto the generic RecoveryProgram bytecode
  /// (the pre-Ferrari engine) at bind() time — the PR 3 ablation,
  /// applied as a default instead of per instance.
  bool bytecode_quartics = false;
  /// Treat every quartic point as if the Ferrari estimate degenerated,
  /// exercising the per-point bytecode demotion path.
  bool force_quartic_demotion = false;
};

/// The mutable process-global configuration consulted by bind() and the
/// lane trig dispatch.  Not thread-safe to mutate; see the header
/// comment.
inline RuntimeConfig& runtime_config() {
  static RuntimeConfig cfg;
  return cfg;
}

/// RAII override for tests/ablations: installs `next` on construction
/// and restores the previous configuration on destruction, so an
/// ASSERT/throw inside the scope cannot leak the override.
class ScopedRuntimeConfig {
 public:
  /// Save the current configuration without changing it — mutate
  /// runtime_config() freely inside the scope.
  ScopedRuntimeConfig() : saved_(runtime_config()) {}
  explicit ScopedRuntimeConfig(const RuntimeConfig& next) : saved_(runtime_config()) {
    runtime_config() = next;
  }
  ~ScopedRuntimeConfig() { runtime_config() = saved_; }
  ScopedRuntimeConfig(const ScopedRuntimeConfig&) = delete;
  ScopedRuntimeConfig& operator=(const ScopedRuntimeConfig&) = delete;

 private:
  RuntimeConfig saved_;
};

}  // namespace nrc
