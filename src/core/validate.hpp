#pragma once
// Whole-domain validation of a collapse.
//
// Walks the original nest once and checks, point by point, that the
// symbolic machinery and the runtime evaluator agree with ground truth:
// ranks are 1..total in walk order, recovery round-trips, and the
// odometer reproduces the walk.  Used by the test suite and available to
// users as a paranoia check before long production runs.

#include <string>

#include "core/collapse.hpp"

namespace nrc {

struct ValidationReport {
  bool ok = true;
  i64 points_checked = 0;
  i64 mismatches = 0;
  std::string first_error;  // empty when ok

  explicit operator bool() const { return ok; }
};

struct ValidateOptions {
  bool check_rank = true;            ///< rank(point) == walk position
  bool check_recover = true;         ///< recover(rank) == point (guarded path)
  bool check_recover_search = true;  ///< search recovery == point
  bool check_increment = true;       ///< odometer sequence == walk sequence
  bool check_closed_raw = false;     ///< unguarded closed form == point (strict)
  i64 max_points = -1;               ///< -1: the whole domain
};

/// Validate `col` bound to `params` against brute-force enumeration.
ValidationReport validate_collapsed(const Collapsed& col, const ParamMap& params,
                                    const ValidateOptions& opts = {});

}  // namespace nrc
