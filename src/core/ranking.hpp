#pragma once
// Ranking Ehrhart polynomials (paper §III).
//
// The ranking polynomial r(i0,...,i_{c-1}) maps each iteration tuple of
// the nest to its 1-based lexicographic rank.  It is a bijection onto
// [1, total] and is monotonically increasing with respect to the
// lexicographic order of the tuples — the two properties the collapsing
// transformation rests on.

#include <vector>

#include "core/count.hpp"
#include "polyhedral/lexmin.hpp"
#include "polyhedral/nest.hpp"

namespace nrc {

/// The full symbolic description of a nest's ranking.
struct RankingSystem {
  NestSpec nest;  ///< validated collapsed sub-nest

  /// S_k subtree count polynomials (see subtree_counts).
  std::vector<Polynomial> subtree;

  /// r(i0..i_{c-1}): rank polynomial over loop vars + params.
  Polynomial rank;

  /// prefix_rank[k] = r with loops k+1.. substituted by their parametric
  /// lexicographic minima; this is the polynomial whose root in variable
  /// i_k the level-k recovery needs (paper §IV-A).  prefix_rank[c-1]
  /// is `rank` itself.
  std::vector<Polynomial> prefix_rank;

  /// Total trip count in the parameters: r(lexmax).  Always equals
  /// subtree[0] (cross-checked by the test suite).
  Polynomial total;
};

/// Build the ranking system.  Throws SpecError for invalid nests and
/// nests using the reserved variable name "pc".
RankingSystem build_ranking_system(const NestSpec& spec);

/// The reserved name of the collapsed single-loop iterator.
inline constexpr const char* kPcVar = "pc";

}  // namespace nrc
