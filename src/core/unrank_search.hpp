#pragma once
// Exact unranking by per-level binary search.
//
// Extension beyond the paper: prefix_rank[k] is strictly increasing in
// i_k over the level's range, so the index can be recovered by a
// logarithmic search using exact integer evaluation — no degree limit,
// no floating point.  The library uses this as (a) the correctness
// oracle for the closed-form path, (b) the fallback when a formula
// degenerates, and (c) the only recovery for levels of degree > 4.

#include <vector>

#include "core/ranking.hpp"
#include "polyhedral/domain.hpp"

namespace nrc {

/// Reference implementation on top of the symbolic system (cold path,
/// used by tests; the runtime fast path lives in CollapsedEval).
/// Recovers the iteration tuple of rank `pc` (1-based).
std::vector<i64> unrank_by_search(const RankingSystem& rs, const ParamMap& params, i64 pc);

}  // namespace nrc
