#include "core/collapse.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/error.hpp"
#include "symbolic/print_c.hpp"

namespace nrc {

namespace {

/// Floor division of exact 128-bit values, narrowed to the index range.
i64 floor_div_i128_to_i64(i128 a, i128 b) {
  i128 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return narrow_i64(q);
}

/// Static classification of the solver bind() will pick for a level
/// (bind can still demote Program to Interpreted on register pressure).
LevelSolverKind planned_solver(const LevelFormula& lf, int level, int depth) {
  if (level == depth - 1) return LevelSolverKind::InnermostLinear;
  if (lf.branch < 0) return LevelSolverKind::Search;
  if (lf.degree == 1) return LevelSolverKind::ExactDivision;
  if (lf.degree == 2) return LevelSolverKind::Quadratic;
  if (lf.degree == 3) return LevelSolverKind::Cubic;
  return LevelSolverKind::Program;
}

/// Substitute concrete parameter values into a polynomial so the runtime
/// evaluation touches only loop-variable and pc slots.  Astronomically
/// large parameters can push folded coefficients past the exact int64
/// coefficient range; in that case keep the unfolded polynomial (the
/// runtime ipow path handles it with its own overflow checks).
Polynomial fold_params(const Polynomial& p, const ParamMap& params) {
  try {
    Polynomial q = p;
    for (const auto& [name, val] : params) q = q.substitute(name, Polynomial(val));
    return q;
  } catch (const OverflowError&) {
    return p;
  }
}

}  // namespace

const char* level_solver_kind_name(LevelSolverKind k) {
  switch (k) {
    case LevelSolverKind::InnermostLinear:
      return "innermost-linear";
    case LevelSolverKind::ExactDivision:
      return "exact-division";
    case LevelSolverKind::Quadratic:
      return "guarded-quadratic";
    case LevelSolverKind::Cubic:
      return "guarded-cubic";
    case LevelSolverKind::Program:
      return "bytecode-program";
    case LevelSolverKind::Interpreted:
      return "interpreted";
    case LevelSolverKind::Search:
      return "binary-search";
  }
  return "?";
}

struct Collapsed::Impl {
  RankingSystem rs;
  std::vector<LevelFormula> levels;
  std::vector<std::string> slots;
  CollapseOptions opts;
};

const NestSpec& Collapsed::nest() const { return impl_->rs.nest; }
const RankingSystem& Collapsed::ranking() const { return impl_->rs; }
const std::vector<LevelFormula>& Collapsed::levels() const { return impl_->levels; }
const std::vector<std::string>& Collapsed::slot_order() const { return impl_->slots; }

bool Collapsed::fully_closed_form() const {
  for (const auto& lf : impl_->levels)
    if (lf.branch < 0) return false;
  return true;
}

Collapsed collapse(const NestSpec& nest, const CollapseOptions& opts) {
  auto impl = std::make_shared<Collapsed::Impl>();
  impl->opts = opts;
  impl->rs = build_ranking_system(nest);

  const int c = nest.depth();
  if (c > kMaxDepth)
    throw SpecError("collapse: nest depth exceeds kMaxDepth = " + std::to_string(kMaxDepth));

  impl->slots = nest.loop_vars();
  for (const auto& p : nest.params()) impl->slots.push_back(p);
  impl->slots.push_back(kPcVar);
  if (impl->slots.size() > static_cast<size_t>(kMaxSlots))
    throw SpecError("collapse: too many variables+parameters for the runtime fast path");

  if (opts.build_closed_form) {
    impl->levels = build_level_formulas(impl->rs, opts.max_closed_degree);
    const ParamMap cal =
        opts.calibration.empty() && !nest.params().empty() ? default_calibration(nest)
                                                           : opts.calibration;
    select_convenient_branches(impl->levels, impl->rs, cal, impl->slots);
  } else {
    // Degrees still need computing so describe() and codegen stay useful.
    impl->levels = build_level_formulas(impl->rs, 0);
  }

  Collapsed col;
  col.impl_ = std::move(impl);
  return col;
}

std::string Collapsed::describe() const {
  const RankingSystem& rs = impl_->rs;
  std::string s;
  s += "collapsed nest:\n" + rs.nest.str();
  s += "ranking polynomial r = " + rs.rank.str() + "\n";
  s += "trip count = " + rs.total.str() + "\n";
  const int c = rs.nest.depth();
  for (int k = 0; k < c; ++k) {
    const LevelFormula& lf = impl_->levels[static_cast<size_t>(k)];
    s += "level " + std::to_string(k) + " (" + rs.nest.at(k).var +
         "): degree " + std::to_string(lf.degree);
    if (lf.branch >= 0) {
      s += ", branch " + std::to_string(lf.branch) + "\n    " + rs.nest.at(k).var +
           " = floor(" + lf.root.str() + ")\n";
    } else {
      s += ", recovered by exact binary search\n";
    }
    s += "    lowered solver: " +
         std::string(level_solver_kind_name(planned_solver(lf, k, c))) + "\n";
  }
  return s;
}

CollapsedEval Collapsed::bind(const ParamMap& params) const {
  const Impl& im = *impl_;
  const NestSpec& spec = im.rs.nest;
  const int c = spec.depth();

  CollapsedEval ev;
  ev.c_ = c;
  ev.params_ = params;
  ev.nslots_ = im.slots.size();
  ev.pc_slot_ = im.slots.size() - 1;

  for (const auto& p : spec.params())
    if (!params.count(p)) throw SpecError("bind: missing parameter '" + p + "'");

  ev.base_.fill(0);
  for (size_t s = 0; s < im.slots.size(); ++s) {
    auto it = params.find(im.slots[s]);
    if (it != params.end()) ev.base_[s] = it->second;
  }

  for (int k = 0; k < c; ++k) {
    ev.bounds_lo_.push_back(FoldedBound::fold(spec.at(k).lower, spec, params));
    ev.bounds_hi_.push_back(FoldedBound::fold(spec.at(k).upper, spec, params));
  }

  // Engine rank polynomials get the parameters folded in (fewer terms,
  // no runtime parameter powers); the seed-baseline interpreter keeps the
  // unfolded originals so recover_interpreted() measures the seed cost.
  for (int k = 0; k < c; ++k) {
    const Polynomial& R = im.rs.prefix_rank[static_cast<size_t>(k)];
    ev.prank_.emplace_back(fold_params(R, params), im.slots);
    ev.prank_interp_.emplace_back(R, im.slots);
  }

  ev.closed_.resize(static_cast<size_t>(c));
  for (int k = 0; k < c; ++k) {
    const LevelFormula& lf = im.levels[static_cast<size_t>(k)];
    if (lf.branch >= 0)
      ev.closed_[static_cast<size_t>(k)] = CompiledExpr(lf.root, im.slots);
  }

  // Lower every level's recovery into the cheapest exact engine.  The
  // scaled coefficients A_e = D * a_e (D = common denominator) have
  // integer monomial coefficients, so they are integer-valued on integer
  // points and CompiledPoly evaluates them exactly; they feed both the
  // degree-specialized solvers and the Horner correction guard.
  ev.solvers_.resize(static_cast<size_t>(c));
  for (int k = 0; k < c; ++k) {
    CollapsedEval::LevelSolver& sv = ev.solvers_[static_cast<size_t>(k)];
    const LevelFormula& lf = im.levels[static_cast<size_t>(k)];
    sv.kind = planned_solver(lf, k, c);
    if (k == c - 1 || lf.branch < 0) continue;

    sv.branch = lf.branch;
    try {
      i64 den = 1;
      for (const auto& a : lf.coeffs) den = lcm_i64(den, a.denominator_lcm());
      for (const auto& a : lf.coeffs)
        sv.scaled.emplace_back(fold_params(a * Rational(den), params), im.slots);
    } catch (const OverflowError&) {
      // Scaling left the exact int64 coefficient range; without guard
      // coefficients no specialized solver can run, so this level
      // degrades to exact binary search — and solver_kind() reports it
      // truthfully (solve_level's early exit handles empty scaled).
      sv.scaled.clear();
      sv.kind = LevelSolverKind::Search;
      continue;
    }

    if (sv.kind == LevelSolverKind::Program) {
      sv.program = RecoveryProgram(lf.root, im.slots, params);
      if (!sv.program.compiled()) sv.kind = LevelSolverKind::Interpreted;
    }
  }

  std::map<std::string, i64> pv(params.begin(), params.end());
  ev.total_ = narrow_i64(im.rs.total.eval_i128(pv));
  if (ev.total_ <= 0)
    throw SpecError("bind: the iteration domain is empty for these parameters");
  return ev;
}

i64 CollapsedEval::rank(std::span<const i64> idx) const {
  std::array<i64, kMaxSlots> pt;
  std::memcpy(pt.data(), base_.data(), nslots_ * sizeof(i64));
  for (int k = 0; k < c_; ++k) pt[static_cast<size_t>(k)] = idx[static_cast<size_t>(k)];
  return narrow_i64(prank_[static_cast<size_t>(c_) - 1].eval_i128(
      std::span<const i64>(pt.data(), nslots_)));
}

i64 CollapsedEval::search_level(int k, std::span<i64> pt, i64 pc) const {
  const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
  const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());
  const CompiledPoly& R = prank_[static_cast<size_t>(k)];
  auto rank_at = [&](i64 t) {
    pt[static_cast<size_t>(k)] = t;
    return R.eval_i128(std::span<const i64>(pt.data(), nslots_));
  };
  i64 lo = lb;
  i64 hi = ub - 1;
  if (hi < lo || rank_at(lo) > pc)
    throw SolveError("recover: pc outside the prefix subtree (corrupt state or bad pc)");
  while (lo < hi) {
    const i64 mid = lo + (hi - lo + 1) / 2;
    if (rank_at(mid) <= pc) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  pt[static_cast<size_t>(k)] = lo;
  return lo;
}

/// Correct a floating-point index estimate against the exact level
/// equation.  A(t) = sum A[e] * t^e satisfies A(t) <= 0 iff
/// rank(prefix, t) <= pc, so the boundary test is an O(degree) Horner
/// evaluation instead of a full rank-polynomial evaluation; the solver
/// passes the coefficient values it already evaluated.
i64 CollapsedEval::guard_level(int k, std::span<i64> pt, i64 pc, i64 estimate,
                               const i128* A, int deg, RecoveryStats* stats) const {
  const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
  const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());

  i64 x = estimate;
  if (x < lb) x = lb;
  if (x > ub - 1) x = ub - 1;

  auto above = [&](i64 t) {  // A(t) > 0  <=>  rank(prefix, t) > pc
    i128 v = A[deg];
    for (int e = deg - 1; e >= 0; --e) v = checked_add(checked_mul(v, t), A[e]);
    return v > 0;
  };

  int steps = 0;
  while (x > lb && above(x) && steps < kMaxCorrection) {
    --x;
    ++steps;
  }
  while (x < ub - 1 && !above(x + 1) && steps < kMaxCorrection) {
    ++x;
    ++steps;
  }
  if (steps >= kMaxCorrection) {
    const i64 val = search_level(k, pt, pc);  // formula was badly off
    if (stats) ++stats->fallback;
    return val;
  }
  if (stats) ++(steps > 0 ? stats->corrected : stats->closed_form);
  pt[static_cast<size_t>(k)] = x;
  return x;
}

i64 CollapsedEval::solve_level(int k, std::span<i64> pt, i64 pc,
                               RecoveryStats* stats) const {
  const LevelSolver& sv = solvers_[static_cast<size_t>(k)];
  const std::span<const i64> pts(pt.data(), nslots_);

  // No guard coefficients: Search levels, or bind() dropped them on
  // overflow — only exact binary search can recover those.
  const int deg = static_cast<int>(sv.scaled.size()) - 1;
  if (deg < 1) {
    const i64 val = search_level(k, pt, pc);
    if (stats) ++stats->fallback;
    return val;
  }

  try {
    i128 A[5];
    for (int e = 0; e <= deg; ++e) A[e] = sv.scaled[static_cast<size_t>(e)].eval_i128(pts);

    switch (sv.kind) {
      case LevelSolverKind::ExactDivision: {
        // A1 * x + A0 <= 0, A1 > 0:  x = floor(-A0 / A1), exactly.
        if (A[1] <= 0) break;  // slope violates the model here: search
        const i64 x = floor_div_i128_to_i64(-A[0], A[1]);
        const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
        const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());
        if (x < lb || x > ub - 1) break;  // inconsistent pc: search decides
        if (stats) ++stats->closed_form;
        pt[static_cast<size_t>(k)] = x;
        return x;
      }
      case LevelSolverKind::Quadratic: {
        const i128 disc = checked_sub(checked_mul(A[1], A[1]),
                                      checked_mul(checked_mul(4, A[2]), A[0]));
        if (disc < 0 || A[2] == 0) break;  // degenerate here: search
        const long double s = std::sqrt(static_cast<long double>(disc));
        const long double num = sv.branch == 1 ? -static_cast<long double>(A[1]) - s
                                               : -static_cast<long double>(A[1]) + s;
        const long double root = num / (2.0L * static_cast<long double>(A[2]));
        if (!std::isfinite(root) || root < -9.2e18L || root > 9.2e18L) break;
        const i64 est = static_cast<i64>(std::floor(root + 1e-9L));
        return guard_level(k, pt, pc, est, A, deg, stats);
      }
      case LevelSolverKind::Cubic: {
        // Real-arithmetic Cardano, algebraically identical to the branch-k
        // complex formula u*cis(k,3) - p/(3*u*cis(k,3)) - b/3 that the
        // symbolic root encodes (only the real part is needed for the
        // floor).  Three-real-root cubics (negative discriminant) take the
        // Viete trigonometric form; no complex arithmetic anywhere.
        if (A[3] == 0) break;
        const long double a3 = static_cast<long double>(A[3]);
        const long double b = static_cast<long double>(A[2]) / a3;
        const long double c = static_cast<long double>(A[1]) / a3;
        const long double d = static_cast<long double>(A[0]) / a3;
        const long double p = c - b * b / 3.0L;
        const long double q = 2.0L * b * b * b / 27.0L - b * c / 3.0L + d;
        const long double delta = q * q / 4.0L + p * p * p / 27.0L;
        constexpr long double k2Pi3 = 2.0943951023931954923084289221863353L;
        long double t;
        if (delta < 0.0L) {
          // Three real roots: u = m*cis(phi/3), |u|^2 = -p/3, and the
          // k-th root collapses to 2*m*cos((phi + 2*pi*k)/3).
          const long double m = std::sqrt(-p / 3.0L);
          const long double phi = std::atan2(std::sqrt(-delta), -q / 2.0L);
          t = 2.0L * m * std::cos((phi + k2Pi3 * static_cast<long double>(sv.branch)) / 3.0L);
        } else {
          // One real root: u is real (or pi/3-rotated for negative
          // radicand under the principal cube root); Re of the k-th
          // branch is (m - p/(3m)) * cos(theta) with theta a multiple of
          // pi/3, so the cosine is a constant +-1 or +-1/2.
          const long double v = -q / 2.0L + std::sqrt(delta);
          const long double m = std::cbrt(std::fabs(v));
          static constexpr long double kCosPos[3] = {1.0L, -0.5L, -0.5L};  // v >= 0
          static constexpr long double kCosNeg[3] = {0.5L, -1.0L, 0.5L};   // v < 0
          const long double cosw = v < 0.0L ? kCosNeg[sv.branch] : kCosPos[sv.branch];
          t = (m - p / (3.0L * m)) * cosw;  // m == 0 degenerates to inf: search
        }
        const long double root = t - b / 3.0L;
        if (!std::isfinite(root) || root < -9.2e18L || root > 9.2e18L) break;
        const i64 est = static_cast<i64>(std::floor(root + 1e-9L));
        return guard_level(k, pt, pc, est, A, deg, stats);
      }
      case LevelSolverKind::Program: {
        const RootValue z = sv.program.eval(pts);
        if (!z.finite() || z.re < -9.2e18L || z.re > 9.2e18L) break;
        const i64 est = static_cast<i64>(std::floor(z.re + 1e-9L));
        return guard_level(k, pt, pc, est, A, deg, stats);
      }
      case LevelSolverKind::Interpreted: {
        const cld z = closed_[static_cast<size_t>(k)].eval(pts);
        if (!std::isfinite(z.real()) || !std::isfinite(z.imag()) ||
            z.real() < -9.2e18L || z.real() > 9.2e18L)
          break;
        const i64 est = static_cast<i64>(std::floor(z.real() + 1e-9L));
        return guard_level(k, pt, pc, est, A, deg, stats);
      }
      default:
        break;
    }
  } catch (const OverflowError&) {
    // Exact arithmetic left the checked range (astronomical parameters):
    // binary search below is still exact.
  }
  const i64 val = search_level(k, pt, pc);
  if (stats) ++stats->fallback;
  return val;
}

/// Innermost index is linear with unit slope: i = lb + (pc - R(prefix, lb)).
void CollapsedEval::recover_innermost(std::span<i64> pt, std::span<i64> idx, i64 pc,
                                      const CompiledPoly& inner_rank) const {
  const int kl = c_ - 1;
  const i64 lb = bounds_lo_[static_cast<size_t>(kl)].eval(pt.data());
  pt[static_cast<size_t>(kl)] = lb;
  const i64 r0 =
      narrow_i64(inner_rank.eval_i128(std::span<const i64>(pt.data(), nslots_)));
  idx[static_cast<size_t>(kl)] = lb + (pc - r0);
}

void CollapsedEval::recover(i64 pc, std::span<i64> idx, RecoveryStats* stats) const {
  std::array<i64, kMaxSlots> pt;  // only the live slot prefix is copied
  std::memcpy(pt.data(), base_.data(), nslots_ * sizeof(i64));
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);
  for (int k = 0; k + 1 < c_; ++k)
    idx[static_cast<size_t>(k)] = solve_level(k, pts, pc, stats);
  recover_innermost(pts, idx, pc, prank_[static_cast<size_t>(c_) - 1]);
}

i64 CollapsedEval::recover_block(i64 pc_lo, i64 n, std::span<i64> out,
                                 RecoveryStats* stats) const {
  if (n <= 0) return 0;
  if (pc_lo < 1 || pc_lo > total_)
    throw SolveError("recover_block: pc_lo outside [1, trip_count()]");
  const i64 m = std::min<i64>(n, total_ - pc_lo + 1);
  const size_t d = static_cast<size_t>(c_);
  if (out.size() < static_cast<size_t>(m) * d)
    throw SpecError("recover_block: output span too small for the requested block");

  i64 filled = 0;
  for_each_row(
      pc_lo, pc_lo + m - 1,
      [&](const i64* idx, i64 j_begin, i64 j_end) {
        for (i64 j = j_begin; j < j_end; ++j) {
          i64* row = out.data() + static_cast<size_t>(filled++) * d;
          std::memcpy(row, idx, d * sizeof(i64));
          row[d - 1] = j;
        }
      },
      stats);
  return filled;
}

void CollapsedEval::recover_interpreted(i64 pc, std::span<i64> idx,
                                        RecoveryStats* stats) const {
  std::array<i64, kMaxSlots> pt = base_;
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);

  for (int k = 0; k + 1 < c_; ++k) {
    i64 val;
    const CompiledExpr& ce = closed_[static_cast<size_t>(k)];
    if (ce.empty()) {
      val = search_level(k, pts, pc);
      if (stats) ++stats->fallback;
    } else {
      const cld z = ce.eval(std::span<const i64>(pt.data(), nslots_));
      if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) {
        val = search_level(k, pts, pc);
        if (stats) ++stats->fallback;
      } else {
        const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
        const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());
        i64 x = static_cast<i64>(std::floor(z.real() + 1e-9L));
        if (x < lb) x = lb;
        if (x > ub - 1) x = ub - 1;
        // Exact integer correction: R_k(prefix, x) <= pc < R_k(prefix, x+1).
        // Deliberately the unfolded seed polynomial: this path measures
        // the seed engine.
        const CompiledPoly& R = prank_interp_[static_cast<size_t>(k)];
        auto rank_at = [&](i64 t) {
          pt[static_cast<size_t>(k)] = t;
          return R.eval_i128(std::span<const i64>(pt.data(), nslots_));
        };
        int steps = 0;
        while (x > lb && rank_at(x) > pc && steps < kMaxCorrection) {
          --x;
          ++steps;
        }
        while (x < ub - 1 && rank_at(x + 1) <= pc && steps < kMaxCorrection) {
          ++x;
          ++steps;
        }
        if (steps >= kMaxCorrection) {
          val = search_level(k, pts, pc);  // formula was badly off: exact fallback
          if (stats) ++stats->fallback;
        } else {
          val = x;
          if (stats) ++(steps > 0 ? stats->corrected : stats->closed_form);
        }
      }
    }
    pt[static_cast<size_t>(k)] = val;
    idx[static_cast<size_t>(k)] = val;
  }
  recover_innermost(pts, idx, pc, prank_interp_[static_cast<size_t>(c_) - 1]);
}

bool CollapsedEval::recover_closed_raw(i64 pc, std::span<i64> idx) const {
  std::array<i64, kMaxSlots> pt = base_;
  pt[pc_slot_] = pc;
  for (int k = 0; k + 1 < c_; ++k) {
    const CompiledExpr& ce = closed_[static_cast<size_t>(k)];
    if (ce.empty()) return false;
    const cld z = ce.eval(std::span<const i64>(pt.data(), nslots_));
    if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) return false;
    const i64 x = static_cast<i64>(std::floor(z.real() + 1e-9L));
    pt[static_cast<size_t>(k)] = x;
    idx[static_cast<size_t>(k)] = x;
  }
  std::span<i64> pts(pt.data(), nslots_);
  recover_innermost(pts, idx, pc, prank_[static_cast<size_t>(c_) - 1]);
  return true;
}

void CollapsedEval::recover_search(i64 pc, std::span<i64> idx) const {
  std::array<i64, kMaxSlots> pt;
  std::memcpy(pt.data(), base_.data(), nslots_ * sizeof(i64));
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);
  for (int k = 0; k < c_; ++k) idx[static_cast<size_t>(k)] = search_level(k, pts, pc);
}

bool CollapsedEval::increment(std::span<i64> idx) const {
  int k = c_ - 1;
  ++idx[static_cast<size_t>(k)];
  while (idx[static_cast<size_t>(k)] >= bounds_hi_[static_cast<size_t>(k)].eval(idx.data())) {
    if (k == 0) return false;
    --k;
    ++idx[static_cast<size_t>(k)];
  }
  for (int q = k + 1; q < c_; ++q)
    idx[static_cast<size_t>(q)] = bounds_lo_[static_cast<size_t>(q)].eval(idx.data());
  return true;
}

bool CollapsedEval::advance(std::span<i64> idx, i64 n) const {
  while (n > 0) {
    const i64 left = row_extent(idx) - 1;  // steps that stay in this row
    if (n <= left) {
      idx[static_cast<size_t>(c_ - 1)] += n;
      return true;
    }
    idx[static_cast<size_t>(c_ - 1)] += left;
    n -= left + 1;
    if (!increment(idx)) return false;
  }
  return true;
}

void CollapsedEval::first(std::span<i64> idx) const {
  for (int k = 0; k < c_; ++k)
    idx[static_cast<size_t>(k)] = bounds_lo_[static_cast<size_t>(k)].eval(idx.data());
}

void CollapsedEval::last(std::span<i64> idx) const {
  for (int k = 0; k < c_; ++k)
    idx[static_cast<size_t>(k)] = bounds_hi_[static_cast<size_t>(k)].eval(idx.data()) - 1;
}

}  // namespace nrc
