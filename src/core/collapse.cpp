#include "core/collapse.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <list>
#include <mutex>

#include "core/real_solvers.hpp"
#include "core/runtime_config.hpp"
#include "runtime/simd_abi.hpp"
#include "support/error.hpp"
#include "symbolic/print_c.hpp"

namespace nrc {

namespace {

/// Floor division of exact 128-bit values, narrowed to the index range.
i64 floor_div_i128_to_i64(i128 a, i128 b) {
  i128 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return narrow_i64(q);
}

/// Static classification of the solver bind() will pick for a level.
LevelSolverKind planned_solver(const LevelFormula& lf, int level, int depth) {
  if (level == depth - 1) return LevelSolverKind::InnermostLinear;
  if (lf.branch < 0) return LevelSolverKind::Search;
  if (lf.degree == 1) return LevelSolverKind::ExactDivision;
  if (lf.degree == 2) return LevelSolverKind::Quadratic;
  if (lf.degree == 3) return LevelSolverKind::Cubic;
  return LevelSolverKind::Quartic;
}

/// Substitute concrete parameter values into a polynomial so the runtime
/// evaluation touches only loop-variable and pc slots.  Astronomically
/// large parameters can push folded coefficients past the exact int64
/// coefficient range; in that case keep the unfolded polynomial (the
/// runtime ipow path handles it with its own overflow checks).
Polynomial fold_params(const Polynomial& p, const ParamMap& params) {
  try {
    Polynomial q = p;
    for (const auto& [name, val] : params) q = q.substitute(name, Polynomial(val));
    return q;
  } catch (const OverflowError&) {
    return p;
  }
}

}  // namespace

const char* level_solver_kind_name(LevelSolverKind k) {
  switch (k) {
    case LevelSolverKind::InnermostLinear:
      return "innermost-linear";
    case LevelSolverKind::ExactDivision:
      return "exact-division";
    case LevelSolverKind::Quadratic:
      return "guarded-quadratic";
    case LevelSolverKind::Cubic:
      return "guarded-cubic";
    case LevelSolverKind::Quartic:
      return "guarded-ferrari";
    case LevelSolverKind::Program:
      return "bytecode-program";
    case LevelSolverKind::Interpreted:
      return "interpreted";
    case LevelSolverKind::Search:
      return "binary-search";
  }
  return "?";
}

struct Collapsed::Impl {
  RankingSystem rs;
  std::vector<LevelFormula> levels;
  std::vector<std::string> slots;
  CollapseOptions opts;

  // Parameter-keyed bind memo: re-binding the same parameters (cache
  // eviction rebuilds, deserialized plans, warm starts) copies the
  // memoized pristine evaluator — sharing nothing mutable, FlatPoly
  // layouts and the f64-guard proof included — instead of redoing the
  // lowering.  Small and linearly scanned; LRU beyond capacity.
  static constexpr size_t kBindMemoCapacity = 8;
  mutable std::mutex bind_mu;
  mutable std::list<std::pair<ParamMap, std::shared_ptr<const CollapsedEval>>> bind_memo;
  mutable size_t bind_reuses = 0;
};

const NestSpec& Collapsed::nest() const { return impl_->rs.nest; }
const RankingSystem& Collapsed::ranking() const { return impl_->rs; }
const std::vector<LevelFormula>& Collapsed::levels() const { return impl_->levels; }
const std::vector<std::string>& Collapsed::slot_order() const { return impl_->slots; }

bool Collapsed::fully_closed_form() const {
  for (const auto& lf : impl_->levels)
    if (lf.branch < 0) return false;
  return true;
}

Collapsed collapse(const NestSpec& nest, const CollapseOptions& opts) {
  auto impl = std::make_shared<Collapsed::Impl>();
  impl->opts = opts;
  impl->rs = build_ranking_system(nest);

  const int c = nest.depth();
  if (c > kMaxDepth)
    throw SpecError("collapse: nest depth exceeds kMaxDepth = " + std::to_string(kMaxDepth));

  impl->slots = nest.loop_vars();
  for (const auto& p : nest.params()) impl->slots.push_back(p);
  impl->slots.push_back(kPcVar);
  if (impl->slots.size() > static_cast<size_t>(kMaxSlots))
    throw SpecError("collapse: too many variables+parameters for the runtime fast path");

  if (opts.build_closed_form) {
    impl->levels = build_level_formulas(impl->rs, opts.max_closed_degree);
    const ParamMap cal =
        opts.calibration.empty() && !nest.params().empty() ? default_calibration(nest)
                                                           : opts.calibration;
    select_convenient_branches(impl->levels, impl->rs, cal, impl->slots);
  } else {
    // Degrees still need computing so describe() and codegen stay useful.
    impl->levels = build_level_formulas(impl->rs, 0);
  }

  Collapsed col;
  col.impl_ = std::move(impl);
  return col;
}

std::string Collapsed::describe() const {
  const RankingSystem& rs = impl_->rs;
  std::string s;
  s += "collapsed nest:\n" + rs.nest.str();
  s += "ranking polynomial r = " + rs.rank.str() + "\n";
  s += "trip count = " + rs.total.str() + "\n";
  const int c = rs.nest.depth();
  for (int k = 0; k < c; ++k) {
    const LevelFormula& lf = impl_->levels[static_cast<size_t>(k)];
    s += "level " + std::to_string(k) + " (" + rs.nest.at(k).var +
         "): degree " + std::to_string(lf.degree);
    if (lf.branch >= 0) {
      s += ", branch " + std::to_string(lf.branch) + "\n    " + rs.nest.at(k).var +
           " = floor(" + lf.root.str() + ")\n";
    } else {
      s += ", recovered by exact binary search\n";
    }
    const LevelSolverKind kind = planned_solver(lf, k, c);
    s += "    lowered solver: " + std::string(level_solver_kind_name(kind));
    // Quadratic, cubic, Ferrari and bytecode-program levels evaluate one
    // lane group of pcs per call in the batched entry points (recover4 /
    // recover8 / recover_blocks4 / recover_blocks8); Ferrari levels
    // additionally demote to the bytecode program at points where the
    // selected branch goes genuinely complex.
    if (kind == LevelSolverKind::Quadratic || kind == LevelSolverKind::Quartic ||
        kind == LevelSolverKind::Program)
      s += " [lane-batched x" + std::to_string(simd::kGroupLanes) + "]";
    if (kind == LevelSolverKind::Quartic) s += " [bytecode demotion]";
    s += "\n";
  }
  s += "runtime simd abi: " + std::string(simd::runtime_abi()) + " (compiled " +
       std::string(simd::abi_name()) + ", " + std::to_string(simd::kGroupLanes) +
       "-lane groups; masked lane-strided block fills, lane-batched "
       "quadratic, cardano, ferrari and bytecode-program solvers, "
       "polynomial lane trig)\n";
  s += "guard policy: proven-exact f64 where the bind-time slot-magnitude "
       "proof holds, checked-i128 fallback (all engines)\n";
  return s;
}

namespace {

/// Apply the process-global RuntimeConfig defaults to a freshly bound
/// (or memo-copied) evaluator.  The per-instance hooks stay available to
/// diverge individual evaluators afterwards.
void apply_runtime_config(CollapsedEval& ev) {
  const RuntimeConfig& cfg = runtime_config();
  ev.set_f64_guards(cfg.f64_guards);
  if (cfg.bytecode_quartics) ev.use_bytecode_quartics();
  if (cfg.force_quartic_demotion) ev.force_quartic_demotion();
}

}  // namespace

CollapsedEval Collapsed::bind(const ParamMap& params) const {
  const Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.bind_mu);
    for (auto it = im.bind_memo.begin(); it != im.bind_memo.end(); ++it) {
      if (it->first == params) {
        im.bind_memo.splice(im.bind_memo.begin(), im.bind_memo, it);
        ++im.bind_reuses;
        CollapsedEval ev = *it->second;
        apply_runtime_config(ev);
        return ev;
      }
    }
  }
  CollapsedEval ev = bind_fresh(params);
  {
    std::lock_guard<std::mutex> lock(im.bind_mu);
    im.bind_memo.emplace_front(params, std::make_shared<const CollapsedEval>(ev));
    if (im.bind_memo.size() > Impl::kBindMemoCapacity) im.bind_memo.pop_back();
  }
  apply_runtime_config(ev);
  return ev;
}

size_t Collapsed::bind_reuses() const {
  std::lock_guard<std::mutex> lock(impl_->bind_mu);
  return impl_->bind_reuses;
}

CollapsedEval Collapsed::bind_fresh(const ParamMap& params) const {
  const Impl& im = *impl_;
  const NestSpec& spec = im.rs.nest;
  const int c = spec.depth();

  CollapsedEval ev;
  ev.c_ = c;
  ev.params_ = params;
  ev.nslots_ = im.slots.size();
  ev.pc_slot_ = im.slots.size() - 1;

  for (const auto& p : spec.params())
    if (!params.count(p)) throw SpecError("bind: missing parameter '" + p + "'");

  ev.base_.fill(0);
  for (size_t s = 0; s < im.slots.size(); ++s) {
    auto it = params.find(im.slots[s]);
    if (it != params.end()) ev.base_[s] = it->second;
  }

  for (int k = 0; k < c; ++k) {
    ev.bounds_lo_.push_back(FoldedBound::fold(spec.at(k).lower, spec, params));
    ev.bounds_hi_.push_back(FoldedBound::fold(spec.at(k).upper, spec, params));
  }

  // Engine rank polynomials get the parameters folded in (fewer terms,
  // no runtime parameter powers) and, when small enough, a flat
  // multiply-add form that skips the generic power loop entirely; the
  // seed-baseline interpreter keeps the unfolded originals so
  // recover_interpreted() measures the seed cost.
  for (int k = 0; k < c; ++k) {
    const Polynomial& R = im.rs.prefix_rank[static_cast<size_t>(k)];
    const Polynomial folded = fold_params(R, params);
    ev.prank_.emplace_back(folded, im.slots);
    ev.prank_flat_.push_back(FlatPoly::build(folded, im.slots));
    ev.prank_interp_.emplace_back(R, im.slots);
  }

  ev.closed_.resize(static_cast<size_t>(c));
  for (int k = 0; k < c; ++k) {
    const LevelFormula& lf = im.levels[static_cast<size_t>(k)];
    if (lf.branch >= 0)
      ev.closed_[static_cast<size_t>(k)] = CompiledExpr(lf.root, im.slots);
  }

  // Lower every level's recovery into the cheapest exact engine.  The
  // scaled coefficients A_e = D * a_e (D = common denominator) have
  // integer monomial coefficients, so they are integer-valued on integer
  // points and CompiledPoly evaluates them exactly; they feed both the
  // degree-specialized solvers and the Horner correction guard.
  ev.solvers_.resize(static_cast<size_t>(c));
  for (int k = 0; k < c; ++k) {
    CollapsedEval::LevelSolver& sv = ev.solvers_[static_cast<size_t>(k)];
    const LevelFormula& lf = im.levels[static_cast<size_t>(k)];
    sv.kind = planned_solver(lf, k, c);
    if (k == c - 1 || lf.branch < 0) continue;

    sv.branch = lf.branch;
    try {
      i64 den = 1;
      for (const auto& a : lf.coeffs) den = lcm_i64(den, a.denominator_lcm());
      for (const auto& a : lf.coeffs) {
        const Polynomial pe = fold_params(a * Rational(den), params);
        // Flat multiply-add fast path for the guard coefficients (most
        // A_e are low-degree after folding); CompiledPoly stays the
        // exact fallback when the flat form doesn't fit.
        if (sv.scaled.size() < sv.flat.size())
          sv.flat[sv.scaled.size()] = FlatPoly::build(pe, im.slots);
        sv.scaled.emplace_back(pe, im.slots);
      }
    } catch (const OverflowError&) {
      // Scaling left the exact int64 coefficient range; without guard
      // coefficients no specialized solver can run, so this level
      // degrades to exact binary search — and solver_kind() reports it
      // truthfully (solve_level's early exit handles empty scaled).
      sv.scaled.clear();
      sv.flat = {};
      sv.kind = LevelSolverKind::Search;
      continue;
    }

    if (sv.kind == LevelSolverKind::Quartic) {
      // The Ferrari solver's demotion target for points where the
      // selected branch goes genuinely complex.  An uncompiled program
      // (register pressure, folding overflow) is fine: demotion then
      // falls through to the generic interpreter for those rare points.
      sv.program = RecoveryProgram(lf.root, im.slots, params);
    }
  }

  std::map<std::string, i64> pv(params.begin(), params.end());
  // Overflow-checked trip count with a structured refusal instead of the
  // raw narrowing error: adversarial parameter magnitudes must produce a
  // diagnostic naming the analyzer code (NRC-W001), never signed-overflow
  // UB or a cryptic conversion message.  eval_i128 is itself checked, so
  // a domain whose *intermediates* leave i128 surfaces the same way.
  try {
    ev.total_ = narrow_i64(im.rs.total.eval_i128(pv));
  } catch (const OverflowError&) {
    throw SpecError(
        "bind: total trip count overflows i64 for these parameters "
        "[NRC-W001 trip-count-overflow]; shrink the parameter magnitudes "
        "or collapse fewer levels");
  }
  if (ev.total_ <= 0)
    throw SpecError("bind: the iteration domain is empty for these parameters");

  // Prove the exact-double guard path: conservative per-slot magnitude
  // bounds (every point the recovery evaluates keeps loop slots inside
  // their clamped level bounds and the pc slot inside [1, total]), then
  // enable plain-double evaluation wherever every intermediate provably
  // stays far below the 2^53 exact-integer limit of double.  Levels
  // whose coefficients and Horner guard all pass run their solves —
  // scalar recover()/recover_block() and the lane-batched paths alike —
  // without any 128-bit arithmetic, bit-exact either way.
  {
    double B[kMaxSlots] = {0.0};
    for (size_t s = 0; s < ev.nslots_; ++s)
      B[s] = std::fabs(static_cast<double>(ev.base_[s]));
    B[ev.pc_slot_] = static_cast<double>(ev.total_);
    auto bound_abs = [&](const FoldedBound& b, int level) {
      double v = std::fabs(static_cast<double>(b.cst));
      for (int t = 0; t < b.nterms; ++t) {
        // Level bounds reference outer loop slots only; anything else
        // (malformed spec) poisons the proof instead of under-counting.
        if (b.slot[t] >= level) return 1.0e300;
        v += std::fabs(static_cast<double>(b.coef[t])) * B[b.slot[t]];
      }
      return v;
    };
    for (int k = 0; k < c; ++k)
      B[static_cast<size_t>(k)] =
          std::max(bound_abs(ev.bounds_lo_[static_cast<size_t>(k)], k),
                   bound_abs(ev.bounds_hi_[static_cast<size_t>(k)], k)) +
          2.0;  // margin for the guard's x+1 probes

    for (int k = 0; k < c; ++k) {
      ev.prank_flat_[static_cast<size_t>(k)].enable_f64(B);
      CollapsedEval::LevelSolver& sv = ev.solvers_[static_cast<size_t>(k)];
      const int deg = static_cast<int>(sv.scaled.size()) - 1;
      if (deg < 1) continue;
      bool ok = true;
      double horner = 0.0;
      for (int e = deg; e >= 0; --e) {
        const FlatPoly& f = sv.flat[static_cast<size_t>(e)];
        if (!f.usable()) {
          ok = false;
          break;
        }
        sv.flat[static_cast<size_t>(e)].enable_f64(B);
        if (!f.exact_f64()) {
          ok = false;
          break;
        }
        // Worst-case Horner intermediate |A_deg*t^... + A_e| at |t| <= B_k.
        horner = horner * B[static_cast<size_t>(k)] + f.value_bound(B);
        if (horner >= 1.0e15) {
          ok = false;
          break;
        }
      }
      sv.guards_f64 = ok;
    }
  }
  return ev;
}

void CollapsedEval::use_bytecode_quartics() {
  for (LevelSolver& sv : solvers_)
    if (sv.kind == LevelSolverKind::Quartic)
      sv.kind = sv.program.compiled() ? LevelSolverKind::Program
                                      : LevelSolverKind::Interpreted;
}

i128 CollapsedEval::eval_rank(int k, const i64* pt) const {
  const FlatPoly& f = prank_flat_[static_cast<size_t>(k)];
  if (f.usable()) return f.eval_i128(pt);
  return prank_[static_cast<size_t>(k)].eval_i128(std::span<const i64>(pt, nslots_));
}

i64 CollapsedEval::rank(std::span<const i64> idx) const {
  std::array<i64, kMaxSlots> pt;
  std::memcpy(pt.data(), base_.data(), nslots_ * sizeof(i64));
  for (int k = 0; k < c_; ++k) pt[static_cast<size_t>(k)] = idx[static_cast<size_t>(k)];
  return narrow_i64(eval_rank(c_ - 1, pt.data()));
}

i64 CollapsedEval::search_level(int k, std::span<i64> pt, i64 pc) const {
  const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
  const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());
  auto rank_at = [&](i64 t) {
    pt[static_cast<size_t>(k)] = t;
    return eval_rank(k, pt.data());
  };
  i64 lo = lb;
  i64 hi = ub - 1;
  if (hi < lo || rank_at(lo) > pc)
    throw SolveError("recover: pc outside the prefix subtree (corrupt state or bad pc)");
  while (lo < hi) {
    const i64 mid = lo + (hi - lo + 1) / 2;
    if (rank_at(mid) <= pc) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  pt[static_cast<size_t>(k)] = lo;
  return lo;
}

/// Correct a floating-point index estimate against the exact level
/// equation.  A(t) = sum A[e] * t^e satisfies A(t) <= 0 iff
/// rank(prefix, t) <= pc, so the boundary test is an O(degree) Horner
/// evaluation instead of a full rank-polynomial evaluation; the solver
/// passes the coefficient values it already evaluated.  False when the
/// estimate was off by more than kMaxCorrection steps.
bool CollapsedEval::try_guard_level(int k, std::span<i64> pt, i64 pc, i64 estimate,
                                    const i128* A, int deg, RecoveryStats* stats,
                                    i64* out) const {
  const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
  const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());

  i64 x = estimate;
  if (x < lb) x = lb;
  if (x > ub - 1) x = ub - 1;

  auto above = [&](i64 t) {  // A(t) > 0  <=>  rank(prefix, t) > pc
    i128 v = A[deg];
    for (int e = deg - 1; e >= 0; --e) v = checked_add(checked_mul(v, t), A[e]);
    return v > 0;
  };

  int steps = 0;
  while (x > lb && above(x) && steps < kMaxCorrection) {
    --x;
    ++steps;
  }
  while (x < ub - 1 && !above(x + 1) && steps < kMaxCorrection) {
    ++x;
    ++steps;
  }
  if (steps >= kMaxCorrection) return false;  // formula was badly off
  if (stats) ++(steps > 0 ? stats->corrected : stats->closed_form);
  pt[static_cast<size_t>(k)] = x;
  *out = x;
  return true;
}

/// try_guard_level with the Horner boundary test in plain double — only
/// reached when bind() proved (LevelSolver::guards_f64) that every
/// intermediate is an exact integer below 2^53, so the test decides
/// identically to the i128 version.
bool CollapsedEval::try_guard_level_f64(int k, std::span<i64> pt, i64 pc, i64 estimate,
                                        const double* A, int deg,
                                        RecoveryStats* stats, i64* out) const {
  const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
  const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());

  i64 x = estimate;
  if (x < lb) x = lb;
  if (x > ub - 1) x = ub - 1;

  auto above = [&](i64 t) {  // A(t) > 0  <=>  rank(prefix, t) > pc
    const double td = static_cast<double>(t);
    double v = A[deg];
    for (int e = deg - 1; e >= 0; --e) v = v * td + A[e];
    return v > 0.0;
  };

  int steps = 0;
  while (x > lb && above(x) && steps < kMaxCorrection) {
    --x;
    ++steps;
  }
  while (x < ub - 1 && !above(x + 1) && steps < kMaxCorrection) {
    ++x;
    ++steps;
  }
  if (steps >= kMaxCorrection) return false;  // formula was badly off
  if (stats) ++(steps > 0 ? stats->corrected : stats->closed_form);
  pt[static_cast<size_t>(k)] = x;
  *out = x;
  return true;
}

i64 CollapsedEval::guard_level(int k, std::span<i64> pt, i64 pc, i64 estimate,
                               const i128* A, int deg, RecoveryStats* stats) const {
  i64 out;
  if (try_guard_level(k, pt, pc, estimate, A, deg, stats, &out)) return out;
  const i64 val = search_level(k, pt, pc);
  if (stats) ++stats->fallback;
  return val;
}

i64 CollapsedEval::guard_level_f64(int k, std::span<i64> pt, i64 pc, i64 estimate,
                                   const double* A, int deg,
                                   RecoveryStats* stats) const {
  i64 out;
  if (try_guard_level_f64(k, pt, pc, estimate, A, deg, stats, &out)) return out;
  const i64 val = search_level(k, pt, pc);
  if (stats) ++stats->fallback;
  return val;
}

/// Demoted-quartic path: the Ferrari estimate could not follow the
/// selected branch (or failed its guard), so evaluate the branch through
/// the bytecode program — complex arithmetic where the branch needs it —
/// or, when that did not compile, the generic interpreter; the exact
/// guard still decides.  False when no finite estimate exists or the
/// i128 guard overflowed: the caller falls back to exact search.
bool CollapsedEval::quartic_demote(int k, std::span<i64> pt, i64 pc, const i128* A,
                                   const double* Ad, int deg, RecoveryStats* stats,
                                   i64* out) const {
  const LevelSolver& sv = solvers_[static_cast<size_t>(k)];
  const std::span<const i64> pts(pt.data(), nslots_);
  long double zre;
  if (sv.program.compiled()) {
    const RootValue z = sv.program.eval(pts);
    if (!z.finite()) return false;
    zre = z.re;
  } else {
    const CompiledExpr& ce = closed_[static_cast<size_t>(k)];
    if (ce.empty()) return false;
    const cld z = ce.eval(pts);
    if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) return false;
    zre = z.real();
  }
  if (zre < -9.2e18L || zre > 9.2e18L) return false;
  const i64 est = static_cast<i64>(std::floor(zre + 1e-9L));
  if (Ad) {
    *out = guard_level_f64(k, pt, pc, est, Ad, deg, stats);
    return true;
  }
  try {
    *out = guard_level(k, pt, pc, est, A, deg, stats);
    return true;
  } catch (const OverflowError&) {
    return false;
  }
}

i64 CollapsedEval::solve_level(int k, std::span<i64> pt, i64 pc,
                               RecoveryStats* stats) const {
  const LevelSolver& sv = solvers_[static_cast<size_t>(k)];
  const std::span<const i64> pts(pt.data(), nslots_);

  // No guard coefficients: Search levels, or bind() dropped them on
  // overflow — only exact binary search can recover those.
  const int deg = static_cast<int>(sv.scaled.size()) - 1;
  if (deg < 1) {
    const i64 val = search_level(k, pt, pc);
    if (stats) ++stats->fallback;
    return val;
  }

  // Exact guard coefficients: when bind() proved the exact-double path
  // (guards_f64) they evaluate — and the guard runs — in plain double,
  // with no 128-bit arithmetic anywhere; otherwise checked i128.  Same
  // policy as the lane-batched engine.
  const bool f64 = sv.guards_f64 && f64_guards_;
  try {
    i128 A[5];
    double Ad[5] = {0.0, 0.0, 0.0, 0.0, 0.0};
    if (f64) {
      for (int e = 0; e <= deg; ++e)
        Ad[e] = sv.flat[static_cast<size_t>(e)].eval_f64(pt.data());
    } else {
      for (int e = 0; e <= deg; ++e)
        A[e] = sv.flat[static_cast<size_t>(e)].usable()
                   ? sv.flat[static_cast<size_t>(e)].eval_i128(pt.data())
                   : sv.scaled[static_cast<size_t>(e)].eval_i128(pts);
    }
    auto guard = [&](i64 est) {
      return f64 ? guard_level_f64(k, pt, pc, est, Ad, deg, stats)
                 : guard_level(k, pt, pc, est, A, deg, stats);
    };

    switch (sv.kind) {
      case LevelSolverKind::ExactDivision: {
        // A1 * x + A0 <= 0, A1 > 0:  x = floor(-A0 / A1), exactly (the
        // f64 coefficients are exact integers, so materializing them
        // back into i128 keeps the division exact).
        if (f64) {
          A[0] = static_cast<i128>(Ad[0]);
          A[1] = static_cast<i128>(Ad[1]);
        }
        if (A[1] <= 0) break;  // slope violates the model here: search
        const i64 x = floor_div_i128_to_i64(-A[0], A[1]);
        const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
        const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());
        if (x < lb || x > ub - 1) break;  // inconsistent pc: search decides
        if (stats) ++stats->closed_form;
        pt[static_cast<size_t>(k)] = x;
        return x;
      }
      case LevelSolverKind::Quadratic: {
        if (f64) {
          const double disc = Ad[1] * Ad[1] - 4.0 * Ad[2] * Ad[0];
          if (disc < 0.0 || Ad[2] == 0.0) break;  // degenerate here: search
          const double s = std::sqrt(disc);
          const double num = sv.branch == 1 ? -Ad[1] - s : -Ad[1] + s;
          const double root = num / (2.0 * Ad[2]);
          if (!index_range_finite(root)) break;
          return guard(static_cast<i64>(std::floor(root + 1e-9)));
        }
        const i128 disc = checked_sub(checked_mul(A[1], A[1]),
                                      checked_mul(checked_mul(4, A[2]), A[0]));
        if (disc < 0 || A[2] == 0) break;  // degenerate here: search
        const long double s = std::sqrt(static_cast<long double>(disc));
        const long double num = sv.branch == 1 ? -static_cast<long double>(A[1]) - s
                                               : -static_cast<long double>(A[1]) + s;
        const long double root = num / (2.0L * static_cast<long double>(A[2]));
        if (!index_range_finite(root)) break;
        return guard(static_cast<i64>(std::floor(root + 1e-9L)));
      }
      case LevelSolverKind::Cubic: {
        i64 est;
        const bool ok = f64 ? cubic_estimate<double>(Ad, sv.branch, &est)
                            : cubic_estimate<long double>(A, sv.branch, &est);
        if (!ok) break;
        return guard(est);
      }
      case LevelSolverKind::Quartic: {
        i64 est;
        i64 out;
        const bool ok =
            !demote_quartics_ &&
            (f64 ? ferrari_estimate<double>(Ad, sv.branch, &est)
                 : ferrari_estimate<long double>(A, sv.branch, &est));
        if (ok) {
          const bool done = f64
                                ? try_guard_level_f64(k, pt, pc, est, Ad, deg, stats, &out)
                                : try_guard_level(k, pt, pc, est, A, deg, stats, &out);
          if (done) return out;
        }
        // Real arithmetic could not follow the branch (complex resolvent
        // root, w == 0 degeneration) or the estimate was badly off:
        // demote this point to the bytecode program, guard included.
        if (quartic_demote(k, pt, pc, f64 ? nullptr : A, f64 ? Ad : nullptr, deg,
                           stats, &out)) {
          if (stats) ++stats->quartic_demoted;
          return out;
        }
        break;  // no finite estimate anywhere: search
      }
      case LevelSolverKind::Program: {
        const RootValue z = sv.program.eval(pts);
        if (!z.finite() || z.re < -9.2e18L || z.re > 9.2e18L) break;
        return guard(static_cast<i64>(std::floor(z.re + 1e-9L)));
      }
      case LevelSolverKind::Interpreted: {
        const cld z = closed_[static_cast<size_t>(k)].eval(pts);
        if (!std::isfinite(z.real()) || !std::isfinite(z.imag()) ||
            z.real() < -9.2e18L || z.real() > 9.2e18L)
          break;
        return guard(static_cast<i64>(std::floor(z.real() + 1e-9L)));
      }
      default:
        break;
    }
  } catch (const OverflowError&) {
    // Exact arithmetic left the checked range (astronomical parameters):
    // binary search below is still exact.
  }
  const i64 val = search_level(k, pt, pc);
  if (stats) ++stats->fallback;
  return val;
}

/// Innermost index is linear with unit slope: i = lb + (pc - R(prefix, lb)).
/// `flat`, when usable, short-circuits the generic rank evaluation (the
/// engine paths pass the bound flat form; the seed interpreter passes
/// nullptr so it keeps measuring the seed cost).  The engine entry
/// points (scalar and lane-batched alike) set `use_f64`, taking the
/// proven-exact double stream when bind() established it.
void CollapsedEval::recover_innermost(std::span<i64> pt, std::span<i64> idx, i64 pc,
                                      const CompiledPoly& inner_rank,
                                      const FlatPoly* flat, bool use_f64) const {
  const int kl = c_ - 1;
  const i64 lb = bounds_lo_[static_cast<size_t>(kl)].eval(pt.data());
  pt[static_cast<size_t>(kl)] = lb;
  i64 r0;
  if (flat && use_f64 && flat->exact_f64()) {
    r0 = static_cast<i64>(flat->eval_f64(pt.data()));
  } else {
    r0 = narrow_i64(
        flat && flat->usable()
            ? flat->eval_i128(pt.data())
            : inner_rank.eval_i128(std::span<const i64>(pt.data(), nslots_)));
  }
  idx[static_cast<size_t>(kl)] = lb + (pc - r0);
}

void CollapsedEval::recover(i64 pc, std::span<i64> idx, RecoveryStats* stats) const {
  std::array<i64, kMaxSlots> pt;  // only the live slot prefix is copied
  std::memcpy(pt.data(), base_.data(), nslots_ * sizeof(i64));
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);
  for (int k = 0; k + 1 < c_; ++k)
    idx[static_cast<size_t>(k)] = solve_level(k, pts, pc, stats);
  recover_innermost(pts, idx, pc, prank_[static_cast<size_t>(c_) - 1],
                    &prank_flat_[static_cast<size_t>(c_) - 1], f64_guards_);
}

template <int W>
void CollapsedEval::solve_level_lanes(int k, i64* pts, const i64* pcs,
                                      RecoveryStats* stats) const {
  static_assert(W == 4 || W == 8, "lane group width");
  const LevelSolver& sv = solvers_[static_cast<size_t>(k)];
  auto lane_pt = [&](int l) {
    return std::span<i64>(pts + static_cast<size_t>(l) * kMaxSlots, nslots_);
  };

  // No guard coefficients: Search levels, or bind() dropped them on
  // overflow — only exact binary search can recover those.
  const int deg = static_cast<int>(sv.scaled.size()) - 1;
  if (deg < 1) {
    for (int l = 0; l < W; ++l) {
      search_level(k, lane_pt(l), pcs[l]);
      if (stats) ++stats->fallback;
    }
    return;
  }

  // Exact guard coefficients per lane (needed by the guard regardless of
  // how the estimate is produced).  When bind() proved the exact-double
  // path (guards_f64), all lanes evaluate each coefficient in one
  // vectorizable multiply-add sweep with no 128-bit arithmetic;
  // otherwise checked i128, where a lane whose exact arithmetic leaves
  // the checked range drops to the scalar solver — astronomically rare,
  // still exact.
  const bool f64 = sv.guards_f64 && f64_guards_;
  double Ad[W][5] = {};  // filled (and read) only on the f64 path
  i128 A[W][5];
  bool lane_ok[W];
  for (int l = 0; l < W; ++l) lane_ok[l] = true;
  if (f64) {
    for (int e = 0; e <= deg; ++e) {
      double col[W];
      sv.flat[static_cast<size_t>(e)].template eval_f64_lanes<W>(pts, kMaxSlots, col);
      for (int l = 0; l < W; ++l) Ad[l][e] = col[l];
    }
  } else {
    for (int l = 0; l < W; ++l) {
      try {
        for (int e = 0; e <= deg; ++e)
          A[l][e] = sv.flat[static_cast<size_t>(e)].usable()
                        ? sv.flat[static_cast<size_t>(e)].eval_i128(
                              pts + static_cast<size_t>(l) * kMaxSlots)
                        : sv.scaled[static_cast<size_t>(e)].eval_i128(
                              std::span<const i64>(
                                  pts + static_cast<size_t>(l) * kMaxSlots, nslots_));
      } catch (const OverflowError&) {
        lane_ok[l] = false;
      }
    }
  }

  // Per-lane estimates; est_ok lanes finish through the scalar exact
  // guard, the rest through the scalar solver / binary search.
  i64 est[W] = {};
  bool est_ok[W] = {};
  switch (sv.kind) {
    case LevelSolverKind::ExactDivision: {
      // Exact per lane (no floating point, no guard) — same semantics as
      // the scalar solver.  The f64 coefficients are exact integers, so
      // materializing them back into i128 keeps the division exact.
      for (int l = 0; l < W; ++l) {
        if (!lane_ok[l]) continue;
        if (f64) {
          A[l][0] = static_cast<i128>(Ad[l][0]);
          A[l][1] = static_cast<i128>(Ad[l][1]);
        }
        if (A[l][1] <= 0) {
          lane_ok[l] = false;  // slope violates the model here: search
          continue;
        }
        const i64 x = floor_div_i128_to_i64(-A[l][0], A[l][1]);
        const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(lane_pt(l).data());
        const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(lane_pt(l).data());
        if (x < lb || x > ub - 1) {
          lane_ok[l] = false;  // inconsistent pc: search decides
          continue;
        }
        if (stats) ++stats->closed_form;
        lane_pt(l)[static_cast<size_t>(k)] = x;
      }
      for (int l = 0; l < W; ++l)
        if (!lane_ok[l]) {
          search_level(k, lane_pt(l), pcs[l]);
          if (stats) ++stats->fallback;
        }
      return;
    }
    case LevelSolverKind::Quadratic: {
      // The quadratic formula across the lanes at once: per-lane
      // discriminants (double on the f64 path — the estimate doesn't
      // need exactness, the guard does), then one vector sqrt / divide.
      double dA1[W], dA2[W], ddisc[W];
      for (int l = 0; l < W; ++l) {
        dA1[l] = 0.0;
        dA2[l] = 1.0;
        ddisc[l] = 0.0;
      }
      for (int l = 0; l < W; ++l) {
        if (!lane_ok[l]) continue;
        if (f64) {
          const double disc = Ad[l][1] * Ad[l][1] - 4.0 * Ad[l][2] * Ad[l][0];
          if (disc < 0.0 || Ad[l][2] == 0.0) {
            lane_ok[l] = false;  // degenerate here: search / scalar solve
            continue;
          }
          ddisc[l] = disc;
          dA1[l] = Ad[l][1];
          dA2[l] = Ad[l][2];
          continue;
        }
        try {
          const i128 disc = checked_sub(
              checked_mul(A[l][1], A[l][1]),
              checked_mul(checked_mul(4, A[l][2]), A[l][0]));
          if (disc < 0 || A[l][2] == 0) {
            lane_ok[l] = false;  // degenerate here: search
            continue;
          }
          ddisc[l] = static_cast<double>(disc);
          dA1[l] = static_cast<double>(A[l][1]);
          dA2[l] = static_cast<double>(A[l][2]);
        } catch (const OverflowError&) {
          lane_ok[l] = false;
        }
      }
      const simd::batch<W> s = simd::sqrt(simd::load<W>(ddisc));
      const simd::batch<W> a1 = simd::load<W>(dA1);
      const simd::batch<W> num =
          sv.branch == 1 ? simd::sub(simd::neg(a1), s) : simd::add(simd::neg(a1), s);
      const simd::batch<W> root =
          simd::div(num, simd::mul(simd::splat<W>(2.0), simd::load<W>(dA2)));
      const simd::batch<W> flo = simd::floor(simd::add(root, simd::splat<W>(1e-9)));
      double rootl[W], flol[W];
      simd::store(rootl, root);
      simd::store(flol, flo);
      for (int l = 0; l < W; ++l) {
        if (!lane_ok[l]) continue;
        const double r = rootl[l];
        if (!std::isfinite(r) || r < -9.2e18 || r > 9.2e18) continue;
        est[l] = static_cast<i64>(flol[l]);
        est_ok[l] = true;
      }
      break;
    }
    case LevelSolverKind::Cubic: {
      // Lane-batched Cardano in double (the scalar engine runs long
      // double; the guard absorbs the difference).  Both discriminant
      // signs stay in-register — polynomial vcos/vatan2 on the Viete
      // lanes, Halley vcbrt on the one-real-root lanes — unless
      // simd::set_vector_trig(false) routes it back through libm.
      if (f64) {
        cubic_estimate_lanes<W>(&Ad[0][0], 5, sv.branch, est, est_ok);
      } else {
        double Ac[W][5] = {};  // dead lanes stay zero: a3 == 0 rejects them
        for (int l = 0; l < W; ++l)
          if (lane_ok[l])
            for (int e = 0; e <= deg; ++e) Ac[l][e] = static_cast<double>(A[l][e]);
        cubic_estimate_lanes<W>(&Ac[0][0], 5, sv.branch, est, est_ok);
        for (int l = 0; l < W; ++l) est_ok[l] = est_ok[l] && lane_ok[l];
      }
      break;
    }
    case LevelSolverKind::Quartic: {
      // Guarded real-arithmetic Ferrari: on the proven-f64 path all
      // lanes run the vectorized estimate (the resolvent's Cardano trig
      // included, via cardano_branch_lanes); otherwise per-lane double
      // on the exact i128 coefficients.  Lanes the real path cannot
      // follow (est_ok false) demote to the bytecode program in the
      // finish loop below.
      if (demote_quartics_) break;  // test hook: force the demotion path
      if (f64) {
        if constexpr (W == 4)
          ferrari_estimate4(&Ad[0][0], 5, sv.branch, est, est_ok);
        else
          ferrari_estimate8(&Ad[0][0], 5, sv.branch, est, est_ok);
      } else {
        for (int l = 0; l < W; ++l) {
          if (!lane_ok[l]) continue;
          est_ok[l] = ferrari_estimate<double>(A[l], sv.branch, &est[l]);
        }
      }
      break;
    }
    case LevelSolverKind::Program: {
      // The bytecode program evaluates all lanes in one pass.
      RootValue z[W];
      if constexpr (W == 4)
        sv.program.eval4(pts, kMaxSlots, z);
      else
        sv.program.eval8(pts, kMaxSlots, z);
      for (int l = 0; l < W; ++l) {
        if (!lane_ok[l] || !z[l].finite() || z[l].re < -9.2e18L || z[l].re > 9.2e18L)
          continue;
        est[l] = static_cast<i64>(std::floor(z[l].re + 1e-9L));
        est_ok[l] = true;
      }
      break;
    }
    case LevelSolverKind::Interpreted: {
      for (int l = 0; l < W; ++l) {
        if (!lane_ok[l]) continue;
        const cld z = closed_[static_cast<size_t>(k)].eval(
            std::span<const i64>(pts + static_cast<size_t>(l) * kMaxSlots, nslots_));
        if (!std::isfinite(z.real()) || !std::isfinite(z.imag()) ||
            z.real() < -9.2e18L || z.real() > 9.2e18L)
          continue;
        est[l] = static_cast<i64>(std::floor(z.real() + 1e-9L));
        est_ok[l] = true;
      }
      break;
    }
    default:
      break;
  }

  const bool quartic = sv.kind == LevelSolverKind::Quartic;
  for (int l = 0; l < W; ++l) {
    if (!lane_ok[l]) {
      solve_level(k, lane_pt(l), pcs[l], stats);
      continue;
    }
    i64 out;
    bool guard_overflowed = false;
    if (est_ok[l] && !quartic) {
      // Non-quartic kinds: the guard's built-in search fallback decides.
      if (f64) {
        guard_level_f64(k, lane_pt(l), pcs[l], est[l], Ad[l], deg, stats);
        continue;
      }
      try {
        guard_level(k, lane_pt(l), pcs[l], est[l], A[l], deg, stats);
        continue;
      } catch (const OverflowError&) {
        // Horner guard left the checked range: exact search below.
        guard_overflowed = true;
      }
    } else if (est_ok[l]) {
      // Quartic: a failed guard demotes to bytecode instead of searching.
      if (f64) {
        if (try_guard_level_f64(k, lane_pt(l), pcs[l], est[l], Ad[l], deg, stats,
                                &out))
          continue;
      } else {
        try {
          if (try_guard_level(k, lane_pt(l), pcs[l], est[l], A[l], deg, stats, &out))
            continue;
        } catch (const OverflowError&) {
          guard_overflowed = true;
        }
      }
    }
    if (quartic && !guard_overflowed) {
      // Ferrari could not follow the branch on this lane (or its
      // estimate failed the guard): demote the lane to the bytecode
      // program, exactly like the scalar solver.
      if (quartic_demote(k, lane_pt(l), pcs[l], f64 ? nullptr : A[l],
                         f64 ? Ad[l] : nullptr, deg, stats, &out)) {
        if (stats) ++stats->quartic_demoted;
        continue;
      }
    }
    search_level(k, lane_pt(l), pcs[l]);
    if (stats) ++stats->fallback;
  }
}

void CollapsedEval::solve_level4(int k, i64* pts, const i64* pcs,
                                 RecoveryStats* stats) const {
  solve_level_lanes<4>(k, pts, pcs, stats);
}

template <int W>
void CollapsedEval::recover_lanes(const i64* pcs, std::span<i64> out,
                                  RecoveryStats* stats) const {
  constexpr const char* kName = W == 4 ? "recover4" : "recover8";
  const size_t d = static_cast<size_t>(c_);
  if (out.size() < W * d)
    throw SpecError(std::string(kName) + ": output span too small (needs W*depth())");
  for (int l = 0; l < W; ++l)
    if (pcs[l] < 1 || pcs[l] > total_)
      throw SolveError(std::string(kName) + ": pc outside [1, trip_count()]");

  i64 pts[W][kMaxSlots];
  for (int l = 0; l < W; ++l) {
    std::memcpy(pts[l], base_.data(), nslots_ * sizeof(i64));
    pts[l][pc_slot_] = pcs[l];
  }
  for (int k = 0; k + 1 < c_; ++k) solve_level_lanes<W>(k, &pts[0][0], pcs, stats);

  // Innermost level: linear with unit slope, i = lb + (pc - R(prefix, lb)).
  // On the proven-exact-f64 stream one lane-batched multiply-add sweep
  // replaces W scalar rank evaluations (the per-lane recover_innermost
  // loop was the 8-lane engine's single largest scalar cost on deep
  // nests); anything else runs the per-lane scalar path unchanged.
  const int kl = c_ - 1;
  const FlatPoly& inner_flat = prank_flat_[d - 1];
  if (f64_guards_ && inner_flat.exact_f64()) {
    double r0[W];
    for (int l = 0; l < W; ++l)
      pts[l][kl] = bounds_lo_[static_cast<size_t>(kl)].eval(pts[l]);
    inner_flat.template eval_f64_lanes<W>(&pts[0][0], kMaxSlots, r0);
    for (int l = 0; l < W; ++l) {
      std::span<i64> row = out.subspan(static_cast<size_t>(l) * d, d);
      for (int k = 0; k + 1 < c_; ++k) row[static_cast<size_t>(k)] = pts[l][k];
      row[d - 1] = pts[l][kl] + (pcs[l] - static_cast<i64>(r0[l]));
    }
    return;
  }
  for (int l = 0; l < W; ++l) {
    std::span<i64> pt(pts[l], nslots_);
    std::span<i64> row = out.subspan(static_cast<size_t>(l) * d, d);
    for (int k = 0; k + 1 < c_; ++k) row[static_cast<size_t>(k)] = pts[l][k];
    recover_innermost(pt, row, pcs[l], prank_[d - 1], &prank_flat_[d - 1],
                      f64_guards_);
  }
}

void CollapsedEval::recover4(const i64 pcs[4], std::span<i64> out,
                             RecoveryStats* stats) const {
  recover_lanes<4>(pcs, out, stats);
}

void CollapsedEval::recover8(const i64 pcs[8], std::span<i64> out,
                             RecoveryStats* stats) const {
  recover_lanes<8>(pcs, out, stats);
}

i64 CollapsedEval::recover_block(i64 pc_lo, i64 n, std::span<i64> out,
                                 RecoveryStats* stats) const {
  if (n <= 0) return 0;
  if (pc_lo < 1 || pc_lo > total_)
    throw SolveError("recover_block: pc_lo outside [1, trip_count()]");
  const i64 m = std::min<i64>(n, total_ - pc_lo + 1);
  const size_t d = static_cast<size_t>(c_);
  if (out.size() < static_cast<size_t>(m) * d)
    throw SpecError("recover_block: output span too small for the requested block");

  i64 filled = 0;
  for_each_row(
      pc_lo, pc_lo + m - 1,
      [&](const i64* idx, i64 j_begin, i64 j_end) {
        for (i64 j = j_begin; j < j_end; ++j) {
          i64* row = out.data() + static_cast<size_t>(filled++) * d;
          std::memcpy(row, idx, d * sizeof(i64));
          row[d - 1] = j;
        }
      },
      stats);
  return filled;
}

void CollapsedEval::fill_rows_lanes(std::span<i64> idx, i64 pc, i64 hi, i64* out,
                                    i64 stride) const {
  const size_t d = static_cast<size_t>(c_);
  i64 filled = 0;
  for_each_row_from(idx, pc, hi, [&](const i64* row, i64 j_begin, i64 j_end) {
    const i64 len = j_end - j_begin;
    // One broadcast store stream per outer column, one iota stream for
    // the innermost — the structure-of-arrays fill the SIMD bodies read.
    for (size_t k = 0; k + 1 < d; ++k)
      simd::fill_broadcast(out + k * static_cast<size_t>(stride) + filled, len, row[k]);
    simd::fill_iota(out + (d - 1) * static_cast<size_t>(stride) + filled, len, j_begin);
    filled += len;
  });
}

i64 CollapsedEval::recover_block_lanes(i64 pc_lo, i64 n, std::span<i64> out, i64 stride,
                                       RecoveryStats* stats) const {
  if (n <= 0) return 0;
  if (pc_lo < 1 || pc_lo > total_)
    throw SolveError("recover_block_lanes: pc_lo outside [1, trip_count()]");
  const i64 m = std::min<i64>(n, total_ - pc_lo + 1);
  if (stride < m)
    throw SpecError("recover_block_lanes: stride smaller than the produced rows");
  const size_t d = static_cast<size_t>(c_);
  if (out.size() < d * static_cast<size_t>(stride))
    throw SpecError("recover_block_lanes: output span too small for depth()*stride");

  i64 idx[kMaxDepth];
  recover(pc_lo, {idx, d}, stats);
  fill_rows_lanes({idx, d}, pc_lo, pc_lo + m - 1, out.data(), stride);
  return m;
}

template <int W>
void CollapsedEval::recover_blocks_lanes(const i64* pcs, i64 n, std::span<i64> out,
                                         i64 stride, i64* rows,
                                         RecoveryStats* stats) const {
  constexpr const char* kName = W == 4 ? "recover_blocks4" : "recover_blocks8";
  const size_t d = static_cast<size_t>(c_);
  if (n <= 0) {
    for (int b = 0; b < W; ++b) rows[b] = 0;
    return;
  }
  if (out.size() < W * d * static_cast<size_t>(stride))
    throw SpecError(std::string(kName) + ": output span too small for W*depth()*stride");
  for (int b = 0; b < W; ++b) {
    if (pcs[b] < 1 || pcs[b] > total_)
      throw SolveError(std::string(kName) + ": pc outside [1, trip_count()]");
    rows[b] = std::min<i64>(n, total_ - pcs[b] + 1);
    if (stride < rows[b])
      throw SpecError(std::string(kName) + ": stride smaller than the produced rows");
  }

  // One lane-parallel solve covers all block starts; each block then
  // fills its lane-strided tile by row arithmetic.
  i64 seed[W * kMaxDepth];
  recover_lanes<W>(pcs, {seed, W * d}, stats);
  for (int b = 0; b < W; ++b) {
    i64 idx[kMaxDepth];
    std::memcpy(idx, seed + static_cast<size_t>(b) * d, d * sizeof(i64));
    fill_rows_lanes({idx, d}, pcs[b], pcs[b] + rows[b] - 1,
                    out.data() + static_cast<size_t>(b) * d * static_cast<size_t>(stride),
                    stride);
  }
}

void CollapsedEval::recover_blocks4(const i64 pcs[4], i64 n, std::span<i64> out,
                                    i64 stride, i64 rows[4], RecoveryStats* stats) const {
  recover_blocks_lanes<4>(pcs, n, out, stride, rows, stats);
}

void CollapsedEval::recover_blocks8(const i64 pcs[8], i64 n, std::span<i64> out,
                                    i64 stride, i64 rows[8], RecoveryStats* stats) const {
  recover_blocks_lanes<8>(pcs, n, out, stride, rows, stats);
}

void CollapsedEval::recover_interpreted(i64 pc, std::span<i64> idx,
                                        RecoveryStats* stats) const {
  std::array<i64, kMaxSlots> pt = base_;
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);

  for (int k = 0; k + 1 < c_; ++k) {
    i64 val;
    const CompiledExpr& ce = closed_[static_cast<size_t>(k)];
    if (ce.empty()) {
      val = search_level(k, pts, pc);
      if (stats) ++stats->fallback;
    } else {
      const cld z = ce.eval(std::span<const i64>(pt.data(), nslots_));
      if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) {
        val = search_level(k, pts, pc);
        if (stats) ++stats->fallback;
      } else {
        const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
        const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());
        i64 x = static_cast<i64>(std::floor(z.real() + 1e-9L));
        if (x < lb) x = lb;
        if (x > ub - 1) x = ub - 1;
        // Exact integer correction: R_k(prefix, x) <= pc < R_k(prefix, x+1).
        // Deliberately the unfolded seed polynomial: this path measures
        // the seed engine.
        const CompiledPoly& R = prank_interp_[static_cast<size_t>(k)];
        auto rank_at = [&](i64 t) {
          pt[static_cast<size_t>(k)] = t;
          return R.eval_i128(std::span<const i64>(pt.data(), nslots_));
        };
        int steps = 0;
        while (x > lb && rank_at(x) > pc && steps < kMaxCorrection) {
          --x;
          ++steps;
        }
        while (x < ub - 1 && rank_at(x + 1) <= pc && steps < kMaxCorrection) {
          ++x;
          ++steps;
        }
        if (steps >= kMaxCorrection) {
          val = search_level(k, pts, pc);  // formula was badly off: exact fallback
          if (stats) ++stats->fallback;
        } else {
          val = x;
          if (stats) ++(steps > 0 ? stats->corrected : stats->closed_form);
        }
      }
    }
    pt[static_cast<size_t>(k)] = val;
    idx[static_cast<size_t>(k)] = val;
  }
  recover_innermost(pts, idx, pc, prank_interp_[static_cast<size_t>(c_) - 1], nullptr);
}

bool CollapsedEval::recover_closed_raw(i64 pc, std::span<i64> idx) const {
  std::array<i64, kMaxSlots> pt = base_;
  pt[pc_slot_] = pc;
  for (int k = 0; k + 1 < c_; ++k) {
    const CompiledExpr& ce = closed_[static_cast<size_t>(k)];
    if (ce.empty()) return false;
    const cld z = ce.eval(std::span<const i64>(pt.data(), nslots_));
    if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) return false;
    const i64 x = static_cast<i64>(std::floor(z.real() + 1e-9L));
    pt[static_cast<size_t>(k)] = x;
    idx[static_cast<size_t>(k)] = x;
  }
  std::span<i64> pts(pt.data(), nslots_);
  recover_innermost(pts, idx, pc, prank_[static_cast<size_t>(c_) - 1],
                    &prank_flat_[static_cast<size_t>(c_) - 1], f64_guards_);
  return true;
}

void CollapsedEval::recover_search(i64 pc, std::span<i64> idx) const {
  std::array<i64, kMaxSlots> pt;
  std::memcpy(pt.data(), base_.data(), nslots_ * sizeof(i64));
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);
  for (int k = 0; k < c_; ++k) idx[static_cast<size_t>(k)] = search_level(k, pts, pc);
}

bool CollapsedEval::increment(std::span<i64> idx) const {
  int k = c_ - 1;
  ++idx[static_cast<size_t>(k)];
  while (idx[static_cast<size_t>(k)] >= bounds_hi_[static_cast<size_t>(k)].eval(idx.data())) {
    if (k == 0) return false;
    --k;
    ++idx[static_cast<size_t>(k)];
  }
  for (int q = k + 1; q < c_; ++q)
    idx[static_cast<size_t>(q)] = bounds_lo_[static_cast<size_t>(q)].eval(idx.data());
  return true;
}

bool CollapsedEval::advance(std::span<i64> idx, i64 n) const {
  while (n > 0) {
    const i64 left = row_extent(idx) - 1;  // steps that stay in this row
    if (n <= left) {
      idx[static_cast<size_t>(c_ - 1)] += n;
      return true;
    }
    idx[static_cast<size_t>(c_ - 1)] += left;
    n -= left + 1;
    if (!increment(idx)) return false;
  }
  return true;
}

void CollapsedEval::first(std::span<i64> idx) const {
  for (int k = 0; k < c_; ++k)
    idx[static_cast<size_t>(k)] = bounds_lo_[static_cast<size_t>(k)].eval(idx.data());
}

void CollapsedEval::last(std::span<i64> idx) const {
  for (int k = 0; k < c_; ++k)
    idx[static_cast<size_t>(k)] = bounds_hi_[static_cast<size_t>(k)].eval(idx.data()) - 1;
}

}  // namespace nrc
