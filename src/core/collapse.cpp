#include "core/collapse.hpp"

#include <cmath>

#include "support/error.hpp"
#include "symbolic/print_c.hpp"

namespace nrc {

struct Collapsed::Impl {
  RankingSystem rs;
  std::vector<LevelFormula> levels;
  std::vector<std::string> slots;
  CollapseOptions opts;
};

const NestSpec& Collapsed::nest() const { return impl_->rs.nest; }
const RankingSystem& Collapsed::ranking() const { return impl_->rs; }
const std::vector<LevelFormula>& Collapsed::levels() const { return impl_->levels; }
const std::vector<std::string>& Collapsed::slot_order() const { return impl_->slots; }

bool Collapsed::fully_closed_form() const {
  for (const auto& lf : impl_->levels)
    if (lf.branch < 0) return false;
  return true;
}

Collapsed collapse(const NestSpec& nest, const CollapseOptions& opts) {
  auto impl = std::make_shared<Collapsed::Impl>();
  impl->opts = opts;
  impl->rs = build_ranking_system(nest);

  const int c = nest.depth();
  if (c > kMaxDepth)
    throw SpecError("collapse: nest depth exceeds kMaxDepth = " + std::to_string(kMaxDepth));

  impl->slots = nest.loop_vars();
  for (const auto& p : nest.params()) impl->slots.push_back(p);
  impl->slots.push_back(kPcVar);
  if (impl->slots.size() > static_cast<size_t>(kMaxSlots))
    throw SpecError("collapse: too many variables+parameters for the runtime fast path");

  if (opts.build_closed_form) {
    impl->levels = build_level_formulas(impl->rs, opts.max_closed_degree);
    const ParamMap cal =
        opts.calibration.empty() && !nest.params().empty() ? default_calibration(nest)
                                                           : opts.calibration;
    select_convenient_branches(impl->levels, impl->rs, cal, impl->slots);
  } else {
    // Degrees still need computing so describe() and codegen stay useful.
    impl->levels = build_level_formulas(impl->rs, 0);
  }

  Collapsed col;
  col.impl_ = std::move(impl);
  return col;
}

std::string Collapsed::describe() const {
  const RankingSystem& rs = impl_->rs;
  std::string s;
  s += "collapsed nest:\n" + rs.nest.str();
  s += "ranking polynomial r = " + rs.rank.str() + "\n";
  s += "trip count = " + rs.total.str() + "\n";
  for (int k = 0; k < rs.nest.depth(); ++k) {
    const LevelFormula& lf = impl_->levels[static_cast<size_t>(k)];
    s += "level " + std::to_string(k) + " (" + rs.nest.at(k).var +
         "): degree " + std::to_string(lf.degree);
    if (lf.branch >= 0) {
      s += ", branch " + std::to_string(lf.branch) + "\n    " + rs.nest.at(k).var +
           " = floor(" + lf.root.str() + ")\n";
    } else {
      s += ", recovered by exact binary search\n";
    }
  }
  return s;
}

CollapsedEval Collapsed::bind(const ParamMap& params) const {
  const Impl& im = *impl_;
  const NestSpec& spec = im.rs.nest;
  const int c = spec.depth();

  CollapsedEval ev;
  ev.c_ = c;
  ev.params_ = params;
  ev.nslots_ = im.slots.size();
  ev.pc_slot_ = im.slots.size() - 1;

  for (const auto& p : spec.params())
    if (!params.count(p)) throw SpecError("bind: missing parameter '" + p + "'");

  ev.base_.fill(0);
  for (size_t s = 0; s < im.slots.size(); ++s) {
    auto it = params.find(im.slots[s]);
    if (it != params.end()) ev.base_[s] = it->second;
  }

  // Fold parameters into the affine bounds; only loop-var slots remain.
  auto fold = [&](const AffineExpr& a) {
    CollapsedEval::Bound b;
    b.cst = a.constant_term();
    for (const auto& [v, co] : a.coefficients()) {
      auto it = params.find(v);
      if (it != params.end()) {
        b.cst = checked_add_i64(b.cst, checked_mul_i64(co, it->second));
        continue;
      }
      bool found = false;
      for (int k = 0; k < c; ++k) {
        if (spec.at(k).var == v) {
          b.add_term(k, co);
          found = true;
          break;
        }
      }
      if (!found) throw SpecError("bind: unbound variable '" + v + "' in a loop bound");
    }
    return b;
  };
  for (int k = 0; k < c; ++k) {
    ev.bounds_lo_.push_back(fold(spec.at(k).lower));
    ev.bounds_hi_.push_back(fold(spec.at(k).upper));
  }

  for (int k = 0; k < c; ++k)
    ev.prank_.emplace_back(im.rs.prefix_rank[static_cast<size_t>(k)], im.slots);

  ev.closed_.resize(static_cast<size_t>(c));
  for (int k = 0; k < c; ++k) {
    const LevelFormula& lf = im.levels[static_cast<size_t>(k)];
    if (lf.branch >= 0)
      ev.closed_[static_cast<size_t>(k)] = CompiledExpr(lf.root, im.slots);
  }

  std::map<std::string, i64> pv(params.begin(), params.end());
  ev.total_ = narrow_i64(im.rs.total.eval_i128(pv));
  if (ev.total_ <= 0)
    throw SpecError("bind: the iteration domain is empty for these parameters");
  return ev;
}

i64 CollapsedEval::rank(std::span<const i64> idx) const {
  std::array<i64, kMaxSlots> pt = base_;
  for (int k = 0; k < c_; ++k) pt[static_cast<size_t>(k)] = idx[static_cast<size_t>(k)];
  return narrow_i64(prank_[static_cast<size_t>(c_) - 1].eval_i128(
      std::span<const i64>(pt.data(), nslots_)));
}

i64 CollapsedEval::search_level(int k, std::span<i64> pt, i64 pc) const {
  const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
  const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());
  const CompiledPoly& R = prank_[static_cast<size_t>(k)];
  auto rank_at = [&](i64 t) {
    pt[static_cast<size_t>(k)] = t;
    return R.eval_i128(std::span<const i64>(pt.data(), nslots_));
  };
  i64 lo = lb;
  i64 hi = ub - 1;
  if (hi < lo || rank_at(lo) > pc)
    throw SolveError("recover: pc outside the prefix subtree (corrupt state or bad pc)");
  while (lo < hi) {
    const i64 mid = lo + (hi - lo + 1) / 2;
    if (rank_at(mid) <= pc) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  pt[static_cast<size_t>(k)] = lo;
  return lo;
}

void CollapsedEval::recover(i64 pc, std::span<i64> idx, RecoveryStats* stats) const {
  std::array<i64, kMaxSlots> pt = base_;
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);

  for (int k = 0; k + 1 < c_; ++k) {
    i64 val;
    const CompiledExpr& ce = closed_[static_cast<size_t>(k)];
    if (ce.empty()) {
      val = search_level(k, pts, pc);
      if (stats) ++stats->fallback;
    } else {
      const cld z = ce.eval(std::span<const i64>(pt.data(), nslots_));
      if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) {
        val = search_level(k, pts, pc);
        if (stats) ++stats->fallback;
      } else {
        const i64 lb = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
        const i64 ub = bounds_hi_[static_cast<size_t>(k)].eval(pt.data());
        i64 x = static_cast<i64>(std::floor(z.real() + 1e-9L));
        if (x < lb) x = lb;
        if (x > ub - 1) x = ub - 1;
        // Exact integer correction: R_k(prefix, x) <= pc < R_k(prefix, x+1).
        const CompiledPoly& R = prank_[static_cast<size_t>(k)];
        auto rank_at = [&](i64 t) {
          pt[static_cast<size_t>(k)] = t;
          return R.eval_i128(std::span<const i64>(pt.data(), nslots_));
        };
        int steps = 0;
        while (x > lb && rank_at(x) > pc && steps < kMaxCorrection) {
          --x;
          ++steps;
        }
        while (x < ub - 1 && rank_at(x + 1) <= pc && steps < kMaxCorrection) {
          ++x;
          ++steps;
        }
        if (steps >= kMaxCorrection) {
          val = search_level(k, pts, pc);  // formula was badly off: exact fallback
          if (stats) ++stats->fallback;
        } else {
          val = x;
          if (stats) ++(steps > 0 ? stats->corrected : stats->closed_form);
        }
      }
    }
    pt[static_cast<size_t>(k)] = val;
    idx[static_cast<size_t>(k)] = val;
  }

  // Innermost index is linear (unit slope):  i = lb + (pc - R(prefix, lb)).
  const int kl = c_ - 1;
  const i64 lb = bounds_lo_[static_cast<size_t>(kl)].eval(pt.data());
  pt[static_cast<size_t>(kl)] = lb;
  const i64 r0 = narrow_i64(prank_[static_cast<size_t>(kl)].eval_i128(
      std::span<const i64>(pt.data(), nslots_)));
  idx[static_cast<size_t>(kl)] = lb + (pc - r0);
}

bool CollapsedEval::recover_closed_raw(i64 pc, std::span<i64> idx) const {
  std::array<i64, kMaxSlots> pt = base_;
  pt[pc_slot_] = pc;
  for (int k = 0; k + 1 < c_; ++k) {
    const CompiledExpr& ce = closed_[static_cast<size_t>(k)];
    if (ce.empty()) return false;
    const cld z = ce.eval(std::span<const i64>(pt.data(), nslots_));
    if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) return false;
    const i64 x = static_cast<i64>(std::floor(z.real() + 1e-9L));
    pt[static_cast<size_t>(k)] = x;
    idx[static_cast<size_t>(k)] = x;
  }
  const int kl = c_ - 1;
  const i64 lb = bounds_lo_[static_cast<size_t>(kl)].eval(pt.data());
  pt[static_cast<size_t>(kl)] = lb;
  const i64 r0 = narrow_i64(prank_[static_cast<size_t>(kl)].eval_i128(
      std::span<const i64>(pt.data(), nslots_)));
  idx[static_cast<size_t>(kl)] = lb + (pc - r0);
  return true;
}

void CollapsedEval::recover_search(i64 pc, std::span<i64> idx) const {
  std::array<i64, kMaxSlots> pt = base_;
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);
  for (int k = 0; k < c_; ++k) idx[static_cast<size_t>(k)] = search_level(k, pts, pc);
}

bool CollapsedEval::increment(std::span<i64> idx) const {
  int k = c_ - 1;
  ++idx[static_cast<size_t>(k)];
  while (idx[static_cast<size_t>(k)] >= bounds_hi_[static_cast<size_t>(k)].eval(idx.data())) {
    if (k == 0) return false;
    --k;
    ++idx[static_cast<size_t>(k)];
  }
  for (int q = k + 1; q < c_; ++q)
    idx[static_cast<size_t>(q)] = bounds_lo_[static_cast<size_t>(q)].eval(idx.data());
  return true;
}

void CollapsedEval::first(std::span<i64> idx) const {
  for (int k = 0; k < c_; ++k)
    idx[static_cast<size_t>(k)] = bounds_lo_[static_cast<size_t>(k)].eval(idx.data());
}

void CollapsedEval::last(std::span<i64> idx) const {
  for (int k = 0; k < c_; ++k)
    idx[static_cast<size_t>(k)] = bounds_hi_[static_cast<size_t>(k)].eval(idx.data()) - 1;
}

}  // namespace nrc
