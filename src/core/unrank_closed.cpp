#include "core/unrank_closed.hpp"

#include <cmath>

#include "math/roots.hpp"
#include "support/error.hpp"
#include "symbolic/compile.hpp"
#include "symbolic/root_formula.hpp"

namespace nrc {

std::vector<LevelFormula> build_level_formulas(const RankingSystem& rs, int max_degree) {
  const int c = rs.nest.depth();
  std::vector<LevelFormula> levels(static_cast<size_t>(c));
  const Polynomial pc_poly = Polynomial::variable(kPcVar);
  for (int k = 0; k < c; ++k) {
    LevelFormula& lf = levels[static_cast<size_t>(k)];
    const std::string& var = rs.nest.at(k).var;
    const Polynomial eq = rs.prefix_rank[static_cast<size_t>(k)] - pc_poly;
    lf.degree = eq.degree_in(var);
    if (lf.degree < 1)
      throw SolveError("level equation for '" + var +
                       "' is constant in its own variable; nest violates the model");
    if (lf.degree > max_degree) continue;  // exact-search recovery for this level
    lf.coeffs = eq.coefficients_in(var);
  }
  return levels;
}

ParamMap default_calibration(const NestSpec& spec) {
  if (spec.params().empty()) return {};
  // Smallest uniform assignment with a healthy, model-conforming domain.
  for (i64 v : {6, 8, 5, 7, 10, 12, 4, 16, 3, 24, 32, 2, 48, 64}) {
    ParamMap cal;
    for (const auto& p : spec.params()) cal[p] = v;
    const i64 n = count_domain_brute(spec, cal);
    if (n >= 4 && n <= 4000 && has_no_empty_ranges(spec, cal)) return cal;
  }
  throw SolveError(
      "default_calibration: no uniform parameter assignment yields a usable "
      "calibration domain; pass CollapseOptions::calibration explicitly");
}

void select_convenient_branches(std::vector<LevelFormula>& levels, const RankingSystem& rs,
                                const ParamMap& calibration,
                                std::span<const std::string> slot_order) {
  const int c = rs.nest.depth();
  const auto points = domain_points(rs.nest, calibration);
  if (points.empty())
    throw SolveError("select_convenient_branches: calibration domain is empty");

  // Exact pc for every calibration point, via the rank polynomial.
  const CompiledPoly rank_cp(rs.rank, slot_order);
  const size_t nslots = slot_order.size();
  std::vector<i64> base(nslots, 0);
  for (size_t s = 0; s < nslots; ++s) {
    auto it = calibration.find(slot_order[s]);
    if (it != calibration.end()) base[s] = it->second;
  }
  std::vector<i64> pcs(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    std::vector<i64> pt = base;
    for (int k = 0; k < c; ++k) pt[static_cast<size_t>(k)] = points[i][static_cast<size_t>(k)];
    pcs[i] = narrow_i64(rank_cp.eval_i128(pt));
  }

  const size_t pc_slot = nslots - 1;

  for (int k = 0; k < c; ++k) {
    LevelFormula& lf = levels[static_cast<size_t>(k)];
    if (lf.coeffs.empty()) continue;  // degree > max: search recovery

    const int nb = root_branch_count(lf.degree);
    std::vector<Expr> roots;
    std::vector<CompiledExpr> compiled;
    roots.reserve(static_cast<size_t>(nb));
    compiled.reserve(static_cast<size_t>(nb));
    for (int b = 0; b < nb; ++b) {
      roots.push_back(root_branch_expr(std::span<const Polynomial>(lf.coeffs), b));
      compiled.emplace_back(roots.back(), slot_order);
    }

    std::vector<size_t> score(static_cast<size_t>(nb), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      std::vector<i64> pt = base;
      for (int q = 0; q < k; ++q) pt[static_cast<size_t>(q)] = points[i][static_cast<size_t>(q)];
      pt[pc_slot] = pcs[i];
      const i64 expected = points[i][static_cast<size_t>(k)];
      for (int b = 0; b < nb; ++b) {
        const cld z = compiled[static_cast<size_t>(b)].eval(pt);
        if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) continue;
        const long double tol =
            1e-6L * std::max<long double>(1.0L, std::abs(z.real()));
        if (std::abs(z.imag()) > tol) continue;
        // Nudge before flooring: the convenient root is an exact integer
        // when pc is the rank of an iteration whose level-k coordinate is
        // about to change, and FP noise must not push it below.
        const i64 got = static_cast<i64>(std::floor(z.real() + 1e-9L));
        if (got == expected) ++score[static_cast<size_t>(b)];
      }
    }

    int best = -1;
    size_t best_score = 0;
    for (int b = 0; b < nb; ++b) {
      if (score[static_cast<size_t>(b)] > best_score) {
        best_score = score[static_cast<size_t>(b)];
        best = b;
      }
    }
    // Trust the branch only when it nails (almost) the whole calibration
    // domain; anything else indicates a model violation and exact search
    // is the safe recovery.
    if (best >= 0 && best_score * 2 > points.size()) {
      lf.branch = best;
      lf.root = roots[static_cast<size_t>(best)];
    } else {
      lf.branch = -1;
      lf.root = Expr();
    }
  }
}

}  // namespace nrc
