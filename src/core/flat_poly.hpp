#pragma once
// FlatPoly — bind-time specialization of low-degree integer-valued
// polynomials into straight-line multiply-add streams.
//
// CompiledPoly::eval_i128 is exact but generic: per term it walks a
// heap-allocated (slot, exponent) vector and calls ipow_checked per
// factor.  The exact-guard coefficients A_e and the per-level rank
// polynomials the recovery hot path evaluates are tiny after parameter
// folding — a handful of terms of total degree <= 4 — so bind() lowers
// them here: every monomial becomes at most kMaxFactors slot reads
// multiplied into the coefficient, stored in a fixed inline array.
// Evaluation is the same checked i128 arithmetic (identical exactness
// and overflow behaviour), just without the power loop and pointer
// chasing.  Polynomials that don't fit (too many terms, degree beyond
// kMaxFactors, coefficients outside the exact i64 range) leave usable()
// false and the caller keeps the CompiledPoly path.
//
// On top of that, enable_f64() proves an *exact double* evaluation:
// given conservative per-slot magnitude bounds, if every intermediate
// of the multiply-add stream stays below 2^50, then all intermediates
// are integers below 2^53 — where IEEE double arithmetic on integers
// is exact — and eval_f64() returns the same value eval_i128() would,
// as plain (vectorizable, FMA-friendly) double math.  The lane-batched
// recovery solvers run their guard arithmetic through this path.

#include <array>
#include <cmath>
#include <span>
#include <string>

#include "math/polynomial.hpp"
#include "support/int128.hpp"

namespace nrc {

class FlatPoly {
 public:
  static constexpr int kMaxTerms = 32;
  static constexpr int kMaxFactors = 4;  ///< total-degree cap per monomial

  FlatPoly() = default;

  /// Attempt the specialization of `p` over the slot layout `order`.
  /// Never throws; a polynomial that doesn't fit yields usable() false.
  static FlatPoly build(const Polynomial& p, std::span<const std::string> order) {
    FlatPoly f;
    i64 den = 1;
    try {
      den = p.denominator_lcm();
    } catch (const OverflowError&) {
      return f;
    }
    int n = 0;
    for (const auto& [mono, coef] : p.terms()) {
      if (n >= kMaxTerms) return f;
      Term t;
      try {
        const Rational scaled = coef * Rational(den);
        if (!scaled.is_integer()) return f;  // scaling overflowed into inexactness
        t.c = scaled.num();
      } catch (const OverflowError&) {
        return f;
      }
      int nf = 0;
      for (const auto& [var, exp] : mono.factors()) {
        int slot = -1;
        for (size_t s = 0; s < order.size(); ++s) {
          if (order[s] == var) {
            slot = static_cast<int>(s);
            break;
          }
        }
        if (slot < 0) return f;  // unbound variable
        for (int e = 0; e < exp; ++e) {
          if (nf >= kMaxFactors) return f;  // degree beyond the flat cap
          t.s[nf++] = static_cast<signed char>(slot);
        }
      }
      f.t_[static_cast<size_t>(n++)] = t;
    }
    f.den_ = den;
    f.n_ = n;
    return f;
  }

  bool usable() const { return n_ >= 0; }

  /// Exact integer value at the point; throws on overflow / inexactness
  /// exactly like CompiledPoly::eval_i128.
  i128 eval_i128(const i64* pt) const {
    i128 acc = 0;
    for (int i = 0; i < n_; ++i) {
      const Term& t = t_[static_cast<size_t>(i)];
      i128 v = t.c;
      for (int fct = 0; fct < kMaxFactors && t.s[fct] >= 0; ++fct)
        v = checked_mul(v, pt[static_cast<int>(t.s[fct])]);
      acc = checked_add(acc, v);
    }
    return exact_div(acc, den_);
  }

  /// Worst-case |value| of the evaluation's intermediates (before the
  /// final exact division) over points with |pt[s]| <= slot_bound[s].
  /// Partial products use max(bound, 1) so prefixes are covered too.
  double value_bound(const double* slot_bound) const {
    double sum = 0.0;
    double worst = 0.0;
    for (int i = 0; i < n_; ++i) {
      const Term& t = t_[static_cast<size_t>(i)];
      double v = std::fabs(static_cast<double>(t.c));
      for (int fct = 0; fct < kMaxFactors && t.s[fct] >= 0; ++fct)
        v *= std::max(slot_bound[static_cast<int>(t.s[fct])], 1.0);
      worst = std::max(worst, v);
      sum += v;
      worst = std::max(worst, sum);
    }
    return worst;
  }

  /// Enable eval_f64() when every intermediate provably stays below
  /// 1e15 for points within slot_bound — an order of magnitude of
  /// margin under the 2^53 exact-integer limit of double.
  void enable_f64(const double* slot_bound) {
    f64_ = usable() && value_bound(slot_bound) < 1.0e15;
  }

  /// True when eval_f64() is proven bit-exact.
  bool exact_f64() const { return f64_; }

  /// Exact evaluation in plain double arithmetic (requires exact_f64():
  /// all intermediates are integers below 2^53, so every operation —
  /// including the final division by the denominator, whose quotient is
  /// an integer — is exact).
  double eval_f64(const i64* pt) const {
    double acc = 0.0;
    for (int i = 0; i < n_; ++i) {
      const Term& t = t_[static_cast<size_t>(i)];
      double v = static_cast<double>(t.c);
      for (int fct = 0; fct < kMaxFactors && t.s[fct] >= 0; ++fct)
        v *= static_cast<double>(pt[static_cast<int>(t.s[fct])]);
      acc += v;
    }
    return acc / static_cast<double>(den_);
  }

  /// Lane-batched eval_f64 (W = 4 or 8): lane l reads the row
  /// pts + l*stride.
  template <int W = 4>
  void eval_f64_lanes(const i64* pts, size_t stride, double* out) const {
    double acc[W] = {};
    for (int i = 0; i < n_; ++i) {
      const Term& t = t_[static_cast<size_t>(i)];
      const double c = static_cast<double>(t.c);
      double v[W];
      for (int l = 0; l < W; ++l) v[l] = c;
      for (int fct = 0; fct < kMaxFactors && t.s[fct] >= 0; ++fct) {
        const size_t s = static_cast<size_t>(static_cast<int>(t.s[fct]));
        for (int l = 0; l < W; ++l)
          v[l] *= static_cast<double>(pts[static_cast<size_t>(l) * stride + s]);
      }
      for (int l = 0; l < W; ++l) acc[l] += v[l];
    }
    const double den = static_cast<double>(den_);
    for (int l = 0; l < W; ++l) out[l] = acc[l] / den;
  }

 private:
  struct Term {
    i64 c = 0;
    signed char s[kMaxFactors] = {-1, -1, -1, -1};  // slot per factor; -1 ends
  };
  std::array<Term, kMaxTerms> t_{};
  int n_ = -1;
  i64 den_ = 1;
  bool f64_ = false;
};

}  // namespace nrc
