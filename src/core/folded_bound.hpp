#pragma once
// Affine loop bounds pre-folded over concrete parameter values.
//
// Binding a nest to parameters turns every bound into a small linear form
// over the loop-variable slots alone; evaluating it is then a handful of
// multiply-adds over an inline term array — no name lookups, no maps, no
// heap.  Shared by CollapsedEval and NewtonUnranker so both runtimes read
// bounds the same (slot-indexed) way.

#include "core/runtime_limits.hpp"
#include "polyhedral/domain.hpp"
#include "support/error.hpp"
#include "support/int128.hpp"

namespace nrc {

/// A loop bound with parameters folded in: only loop-variable slots
/// (0..depth-1) remain.  `idx` in eval() points at the loop-variable
/// array.  Terms live in a fixed inline array so eval() stays
/// branch-light and allocation-free on the odometer hot path.
struct FoldedBound {
  static constexpr int kMaxTerms = kMaxDepth;
  i64 cst = 0;
  int nterms = 0;
  int slot[kMaxTerms] = {};
  i64 coef[kMaxTerms] = {};

  void add_term(int s, i64 co) {
    if (nterms >= kMaxTerms) throw SpecError("FoldedBound: too many terms");
    slot[nterms] = s;
    coef[nterms] = co;
    ++nterms;
  }

  i64 eval(const i64* idx) const {
    i64 acc = cst;
    for (int t = 0; t < nterms; ++t) acc += coef[t] * idx[slot[t]];
    return acc;
  }

  /// Fold `a` over `params`; every non-parameter variable must be a loop
  /// variable of `spec` (its nest position becomes the slot).
  static FoldedBound fold(const AffineExpr& a, const NestSpec& spec, const ParamMap& params) {
    FoldedBound b;
    b.cst = a.constant_term();
    const int c = spec.depth();
    for (const auto& [v, co] : a.coefficients()) {
      auto it = params.find(v);
      if (it != params.end()) {
        b.cst = checked_add_i64(b.cst, checked_mul_i64(co, it->second));
        continue;
      }
      bool found = false;
      for (int k = 0; k < c; ++k) {
        if (spec.at(k).var == v) {
          b.add_term(k, co);
          found = true;
          break;
        }
      }
      if (!found) throw SpecError("FoldedBound: unbound variable '" + v + "' in a loop bound");
    }
    return b;
  }
};

}  // namespace nrc
