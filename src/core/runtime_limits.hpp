#pragma once
// Hard limits of the runtime fast path (the symbolic machinery is
// unbounded).  These bound the fixed stack scratch used by the
// allocation-free evaluators: CollapsedEval, NewtonUnranker and the
// RecoveryProgram bytecode all size their working arrays with them so
// the recover() hot path never touches the heap.

namespace nrc {

/// Maximum depth of a collapsed nest handled by the runtime evaluators.
inline constexpr int kMaxDepth = 12;

/// Maximum number of runtime slots (loop vars + parameters + "pc").
inline constexpr int kMaxSlots = 40;

}  // namespace nrc
