#pragma once
// Symbolic point counting for affine loop nests.
//
// subtree_counts computes, bottom-up, the family of Ehrhart polynomials
// S_k counting the iterations of the sub-nest below each level; S_0 is
// the nest's total trip-count polynomial in the parameters (paper §III:
// "the exact number of iterations of a parameterized loop nest").

#include <vector>

#include "math/faulhaber.hpp"
#include "polyhedral/nest.hpp"

namespace nrc {

/// S[k] for k = 0..depth: the number of points of loops k..depth-1 as a
/// polynomial in loop variables 0..k-1 and the parameters.
/// S[depth] == 1; S[0] is the total count (parameters only).
/// Valid under the Fig. 5 model precondition (no empty ranges).
std::vector<Polynomial> subtree_counts(const NestSpec& spec);

/// Total trip count of the nest as a polynomial in its parameters.
Polynomial count_polynomial(const NestSpec& spec);

}  // namespace nrc
