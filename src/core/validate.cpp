#include "core/validate.hpp"

#include <sstream>

namespace nrc {
namespace {

std::string tuple_str(std::span<const i64> t) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < t.size(); ++i) os << (i ? "," : "") << t[i];
  os << ")";
  return os.str();
}

}  // namespace

ValidationReport validate_collapsed(const Collapsed& col, const ParamMap& params,
                                    const ValidateOptions& opts) {
  ValidationReport rep;
  const CollapsedEval ev = col.bind(params);
  const int c = ev.depth();

  std::vector<i64> odo(static_cast<size_t>(c));
  bool odo_alive = true;
  ev.first(odo);

  i64 pos = 0;
  auto fail = [&](const std::string& what) {
    ++rep.mismatches;
    rep.ok = false;
    if (rep.first_error.empty()) rep.first_error = what;
  };

  walk_domain(col.nest(), params, [&](std::span<const i64> point) {
    if (opts.max_points >= 0 && pos >= opts.max_points) return;
    ++pos;
    ++rep.points_checked;

    if (opts.check_rank) {
      try {
        const i64 r = ev.rank(point);
        if (r != pos)
          fail("rank" + tuple_str(point) + " = " + std::to_string(r) + ", expected " +
               std::to_string(pos));
      } catch (const Error& e) {
        fail("rank threw at pc=" + std::to_string(pos) + ": " + e.what());
      }
    }

    std::vector<i64> got(static_cast<size_t>(c));
    auto check_tuple = [&](const char* name, std::span<const i64> t) {
      for (int k = 0; k < c; ++k) {
        if (t[static_cast<size_t>(k)] != point[static_cast<size_t>(k)]) {
          fail(std::string(name) + " at pc=" + std::to_string(pos) + ": got " +
               tuple_str(t) + ", expected " + tuple_str(point));
          return;
        }
      }
    };

    // A model-violating nest can make recovery *throw* (the exact guards
    // notice the inconsistency); the validator records that as a detected
    // mismatch rather than aborting the sweep.
    auto guarded = [&](const char* name, auto&& fn) {
      try {
        fn();
      } catch (const Error& e) {
        fail(std::string(name) + " threw at pc=" + std::to_string(pos) + ": " + e.what());
      }
    };

    if (opts.check_recover) {
      guarded("recover", [&] {
        ev.recover(pos, got);
        check_tuple("recover", got);
      });
    }
    if (opts.check_recover_search) {
      guarded("recover_search", [&] {
        ev.recover_search(pos, got);
        check_tuple("recover_search", got);
      });
    }
    if (opts.check_closed_raw) {
      guarded("recover_closed_raw", [&] {
        if (ev.recover_closed_raw(pos, got)) {
          check_tuple("recover_closed_raw", got);
        } else {
          fail("recover_closed_raw unavailable/non-finite at pc=" + std::to_string(pos));
        }
      });
    }
    if (opts.check_increment) {
      if (!odo_alive) {
        fail("odometer ended before the walk did, at pc=" + std::to_string(pos));
      } else {
        check_tuple("increment", odo);
        guarded("increment", [&] { odo_alive = ev.increment(odo); });
      }
    }
  });

  if (opts.check_increment && odo_alive && (opts.max_points < 0) && rep.ok)
    fail("odometer did not end with the walk");

  if (opts.check_rank && opts.max_points < 0 && pos != ev.trip_count())
    fail("trip_count() = " + std::to_string(ev.trip_count()) + " but the walk visited " +
         std::to_string(pos) + " points");

  return rep;
}

}  // namespace nrc
