#pragma once
// Newton–bisection unranking (extension beyond the paper).
//
// The closed-form inversion (§IV) caps the level-equation degree at 4;
// binary search works at any degree in O(log range) exact evaluations.
// This module adds the third option: safeguarded Newton iteration on the
// monotone prefix-rank polynomial, converging in a handful of steps for
// any degree while every accepted step is validated against the exact
// integer bracket — so it is as exact as the search and usually faster
// for very wide levels.

#include <vector>

#include "core/ranking.hpp"
#include "polyhedral/domain.hpp"

namespace nrc {

/// Degree-independent unranker using safeguarded Newton on each level.
/// Build once per (ranking system, parameter binding); recover() is
/// thread-safe.
class NewtonUnranker {
 public:
  NewtonUnranker(const RankingSystem& rs, const ParamMap& params);

  int depth() const { return c_; }

  /// Recover the iteration tuple of rank pc (1-based).  Exact.
  void recover(i64 pc, std::span<i64> idx) const;

  /// Newton iterations spent on the last-constructed probe set
  /// (diagnostics for tests/benches; aggregated across calls).
  i64 total_newton_steps() const { return steps_; }

 private:
  i64 solve_level(int k, std::span<i64> pt, i64 pc) const;

  int c_ = 0;
  size_t nslots_ = 0;
  size_t pc_slot_ = 0;
  std::vector<std::string> slots_;
  std::vector<i64> base_;
  NestSpec nest_;
  ParamMap params_;
  std::vector<CompiledPoly> prank_;   // R_k exact
  std::vector<CompiledPoly> dprank_;  // dR_k/di_k exact (for the Newton step)
  mutable i64 steps_ = 0;             // diagnostics only (not synchronized)
};

}  // namespace nrc
