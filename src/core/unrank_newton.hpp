#pragma once
// Newton–bisection unranking (extension beyond the paper).
//
// The closed-form inversion (§IV) caps the level-equation degree at 4;
// binary search works at any degree in O(log range) exact evaluations.
// This module adds the third option: safeguarded Newton iteration on the
// monotone prefix-rank polynomial, converging in a handful of steps for
// any degree while every accepted step is validated against the exact
// integer bracket — so it is as exact as the search and usually faster
// for very wide levels.
//
// The runtime state is slot-indexed like CollapsedEval: bounds are
// pre-folded over the parameters at construction (FoldedBound) and
// recover() works out of a fixed stack array — zero heap allocation per
// recovery.

#include <array>
#include <vector>

#include "core/folded_bound.hpp"
#include "core/ranking.hpp"
#include "core/runtime_limits.hpp"
#include "polyhedral/domain.hpp"

namespace nrc {

/// Degree-independent unranker using safeguarded Newton on each level.
/// Build once per (ranking system, parameter binding); recover() is
/// thread-safe.
class NewtonUnranker {
 public:
  NewtonUnranker(const RankingSystem& rs, const ParamMap& params);

  int depth() const { return c_; }

  /// Recover the iteration tuple of rank pc (1-based).  Exact;
  /// allocation-free.
  void recover(i64 pc, std::span<i64> idx) const;

  /// Newton iterations spent on the last-constructed probe set
  /// (diagnostics for tests/benches; aggregated across calls).
  i64 total_newton_steps() const { return steps_; }

 private:
  i64 solve_level(int k, std::span<i64> pt, i64 pc) const;

  int c_ = 0;
  size_t nslots_ = 0;
  size_t pc_slot_ = 0;
  std::array<i64, kMaxSlots> base_{};
  std::vector<FoldedBound> bounds_lo_, bounds_hi_;  // params pre-folded
  std::vector<std::string> var_names_;              // per level (diagnostics)
  std::vector<CompiledPoly> prank_;                 // R_k exact
  std::vector<CompiledPoly> dprank_;                // dR_k/di_k exact (Newton step)
  mutable i64 steps_ = 0;                           // diagnostics only (not synchronized)
};

}  // namespace nrc
