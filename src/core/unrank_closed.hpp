#pragma once
// Closed-form unranking: the level equations and their convenient roots
// (paper §IV).
//
// For each level k the equation
//
//   prefix_rank[k](i_0, ..., i_{k-1}, x) - pc = 0
//
// is univariate in x with coefficients that are polynomials in the prefix
// indices, the parameters and pc.  Degrees up to 4 are invertible in
// closed form; among the root branches exactly one — the *convenient*
// root — recovers the original index as floor(Re(x)) for every pc
// (paper §IV-D proves uniqueness and pc-independence of the branch).
// Branch selection is therefore performed once, numerically, on a small
// calibration domain, and generalizes.

#include <vector>

#include "core/ranking.hpp"
#include "polyhedral/domain.hpp"
#include "symbolic/expr.hpp"

namespace nrc {

/// Closed-form description of one level's recovery.
struct LevelFormula {
  int degree = 0;                  ///< degree of the level equation in i_k
  std::vector<Polynomial> coeffs;  ///< a0..a_deg over (i_0..i_{k-1}, params, pc)
  int branch = -1;                 ///< selected convenient branch (-1: none)
  Expr root;                       ///< symbolic root (empty when branch < 0)
};

/// Build the level equations; `root`/`branch` stay unset.  Levels whose
/// degree exceeds `max_degree` get an empty coefficient list (they will
/// be recovered by exact search).
std::vector<LevelFormula> build_level_formulas(const RankingSystem& rs, int max_degree);

/// Numerically select the convenient branch for every level over the
/// whole calibration domain, and fill in `branch` and `root`.
/// A level whose best branch mis-recovers more than half of the
/// calibration points is disabled (branch = -1) rather than trusted.
/// `slot_order` is the variable layout used at runtime
/// (loop vars, params..., "pc").
void select_convenient_branches(std::vector<LevelFormula>& levels, const RankingSystem& rs,
                                const ParamMap& calibration,
                                std::span<const std::string> slot_order);

/// Heuristic calibration parameters: the smallest uniform assignment
/// giving a healthy, non-degenerate domain.  Returns an empty map for
/// parameter-free nests.  Throws SolveError when nothing suitable exists.
ParamMap default_calibration(const NestSpec& spec);

}  // namespace nrc
