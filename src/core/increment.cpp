#include "core/increment.hpp"

namespace nrc {

bool next_point(const NestSpec& spec, const ParamMap& params, std::span<i64> idx) {
  const int c = spec.depth();
  std::map<std::string, i64> vals = params;
  for (int k = 0; k < c; ++k) vals[spec.at(k).var] = idx[static_cast<size_t>(k)];

  int k = c - 1;
  ++idx[static_cast<size_t>(k)];
  vals[spec.at(k).var] = idx[static_cast<size_t>(k)];
  while (idx[static_cast<size_t>(k)] >= spec.at(k).upper.eval(vals)) {
    if (k == 0) return false;
    --k;
    ++idx[static_cast<size_t>(k)];
    vals[spec.at(k).var] = idx[static_cast<size_t>(k)];
  }
  for (int q = k + 1; q < c; ++q) {
    idx[static_cast<size_t>(q)] = spec.at(q).lower.eval(vals);
    vals[spec.at(q).var] = idx[static_cast<size_t>(q)];
  }
  return true;
}

void first_point(const NestSpec& spec, const ParamMap& params, std::span<i64> idx) {
  std::map<std::string, i64> vals = params;
  for (int k = 0; k < spec.depth(); ++k) {
    idx[static_cast<size_t>(k)] = spec.at(k).lower.eval(vals);
    vals[spec.at(k).var] = idx[static_cast<size_t>(k)];
  }
}

}  // namespace nrc
