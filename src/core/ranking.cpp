#include "core/ranking.hpp"

#include "support/error.hpp"

namespace nrc {

RankingSystem build_ranking_system(const NestSpec& spec) {
  spec.validate();
  for (const auto& p : spec.params())
    if (p == kPcVar) throw SpecError("NestSpec: parameter name 'pc' is reserved");
  for (const auto& l : spec.loops())
    if (l.var == kPcVar) throw SpecError("NestSpec: loop variable name 'pc' is reserved");

  RankingSystem rs;
  rs.nest = spec;
  rs.subtree = subtree_counts(spec);

  const int c = spec.depth();

  // rank = 1 + sum_k  sum_{t = l_k}^{i_k - 1} S_{k+1}(i_0..i_{k-1}, t)
  Polynomial r(Rational(1));
  for (int k = 0; k < c; ++k) {
    const Loop& l = spec.at(k);
    const Polynomial upper_excl = Polynomial::variable(l.var) - Polynomial(Rational(1));
    r += sum_over_range(rs.subtree[static_cast<size_t>(k) + 1], l.var, l.lower.to_poly(),
                        upper_excl);
  }
  rs.rank = r;

  rs.prefix_rank.resize(static_cast<size_t>(c));
  for (int k = 0; k < c; ++k)
    rs.prefix_rank[static_cast<size_t>(k)] = substitute_trailing_lexmin(r, spec, k);

  rs.total = substitute_trailing_lexmax(r, spec, -1);
  return rs;
}

}  // namespace nrc
