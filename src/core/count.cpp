#include "core/count.hpp"

namespace nrc {

std::vector<Polynomial> subtree_counts(const NestSpec& spec) {
  spec.validate();
  const int c = spec.depth();
  std::vector<Polynomial> S(static_cast<size_t>(c) + 1);
  S[static_cast<size_t>(c)] = Polynomial(Rational(1));
  for (int k = c - 1; k >= 0; --k) {
    const Loop& l = spec.at(k);
    S[static_cast<size_t>(k)] =
        sum_over_range(S[static_cast<size_t>(k) + 1], l.var, l.lower.to_poly(),
                       l.upper.to_poly() - Polynomial(Rational(1)));
  }
  return S;
}

Polynomial count_polynomial(const NestSpec& spec) { return subtree_counts(spec)[0]; }

}  // namespace nrc
