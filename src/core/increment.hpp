#pragma once
// Reference odometer: advance an iteration tuple to its lexicographic
// successor by replaying the original nest's index incrementation
// (paper §V — the cheap per-iteration recovery).  The runtime fast path
// lives in CollapsedEval; this reference version works directly on a
// NestSpec and is used by tests and validators.

#include <span>

#include "polyhedral/domain.hpp"
#include "polyhedral/nest.hpp"

namespace nrc {

/// Advance `idx` to the next point of the domain (lexicographic order).
/// Returns false when `idx` was the last point (idx is then unspecified).
/// Precondition: `idx` is a point of the domain.
bool next_point(const NestSpec& spec, const ParamMap& params, std::span<i64> idx);

/// Set `idx` to the first (lexicographically minimal) point.
void first_point(const NestSpec& spec, const ParamMap& params, std::span<i64> idx);

}  // namespace nrc
