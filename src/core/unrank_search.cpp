#include "core/unrank_search.hpp"

#include "support/error.hpp"

namespace nrc {

std::vector<i64> unrank_by_search(const RankingSystem& rs, const ParamMap& params, i64 pc) {
  const int c = rs.nest.depth();
  std::map<std::string, i64> vals = params;
  std::vector<i64> idx(static_cast<size_t>(c));

  for (int k = 0; k < c; ++k) {
    const Loop& l = rs.nest.at(k);
    const i64 lb = l.lower.eval(vals);
    const i64 ub = l.upper.eval(vals);  // exclusive
    if (ub <= lb) throw SolveError("unrank_by_search: empty range at level " + l.var);

    const Polynomial& R = rs.prefix_rank[static_cast<size_t>(k)];
    auto rank_at = [&](i64 t) {
      vals[l.var] = t;
      return R.eval_i128(vals);
    };

    // Largest t in [lb, ub-1] with R(prefix, t) <= pc.
    i64 lo = lb;
    i64 hi = ub - 1;
    if (rank_at(lo) > pc)
      throw SolveError("unrank_by_search: pc below the prefix subtree (invalid pc?)");
    while (lo < hi) {
      const i64 mid = lo + (hi - lo + 1) / 2;
      if (rank_at(mid) <= pc) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    idx[static_cast<size_t>(k)] = lo;
    vals[l.var] = lo;
  }
  return idx;
}

}  // namespace nrc
