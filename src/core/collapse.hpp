#pragma once
// The collapsing transformation: public entry point of the library.
//
// Usage:
//   NestSpec nest;                                  // triangular example
//   nest.param("N")
//       .loop("i", aff::c(0), aff::v("N") - 1)
//       .loop("j", aff::v("i") + 1, aff::v("N"));
//   Collapsed col = collapse(nest);                 // symbolic, once
//   CollapsedEval cn = col.bind({{"N", 5000}});     // per parameter set
//   // cn.trip_count(), cn.recover(pc, idx), cn.increment(idx), ...
//
// `Collapsed` holds the symbolic artifacts (ranking polynomial, level
// equations, convenient root formulas) and is what the code generator
// consumes; `CollapsedEval` is the allocation-free runtime evaluator the
// OpenMP execution schemes are built on.

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/ranking.hpp"
#include "core/unrank_closed.hpp"
#include "polyhedral/domain.hpp"
#include "symbolic/compile.hpp"

namespace nrc {

/// Hard limits of the runtime fast path (symbolic machinery is unbounded).
inline constexpr int kMaxDepth = 12;
inline constexpr int kMaxSlots = 40;

struct CollapseOptions {
  /// Build closed-form recoveries (paper §IV).  When false, recovery
  /// always uses exact binary search.
  bool build_closed_form = true;
  /// Maximum level-equation degree inverted in closed form (paper limit: 4).
  int max_closed_degree = 4;
  /// Calibration parameters for convenient-branch selection; empty means
  /// choose automatically (default_calibration).
  ParamMap calibration;
};

class CollapsedEval;

/// Symbolic result of collapsing a nest.  Immutable; cheap to copy
/// (shared state).  Thread-safe for concurrent reads.
class Collapsed {
 public:
  const NestSpec& nest() const;
  const RankingSystem& ranking() const;

  /// Per-level closed-form info (degree, coefficients, chosen branch,
  /// symbolic root).  levels().size() == nest().depth().
  const std::vector<LevelFormula>& levels() const;

  /// True when every level has a usable closed-form recovery.
  bool fully_closed_form() const;

  /// Runtime slot layout: loop vars, then params, then "pc".
  const std::vector<std::string>& slot_order() const;

  /// Bind concrete parameter values, producing the runtime evaluator.
  /// Throws SpecError if a parameter is missing or the domain is empty.
  CollapsedEval bind(const ParamMap& params) const;

  /// Human-readable report: ranking polynomial, trip count, per-level
  /// recovery formulas.
  std::string describe() const;

 private:
  friend Collapsed collapse(const NestSpec&, const CollapseOptions&);
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

/// Collapse all loops of `nest` (the caller passes nest.outer(c) to
/// collapse only the outermost c loops of a deeper nest).
Collapsed collapse(const NestSpec& nest, const CollapseOptions& opts = {});

/// Per-recovery observability counters (optional; pass to recover()).
/// Plain integers: keep one instance per thread and merge.
struct RecoveryStats {
  i64 closed_form = 0;  ///< levels recovered by the root formula directly
  i64 corrected = 0;    ///< levels where the integer guard moved the index
  i64 fallback = 0;     ///< levels recovered by exact binary search
  i64 levels() const { return closed_form + corrected + fallback; }
  RecoveryStats& operator+=(const RecoveryStats& o) {
    closed_form += o.closed_form;
    corrected += o.corrected;
    fallback += o.fallback;
    return *this;
  }
};

/// Allocation-free runtime evaluator bound to concrete parameters.
/// All methods are const and thread-safe.
class CollapsedEval {
 public:
  int depth() const { return c_; }
  i64 trip_count() const { return total_; }
  const ParamMap& params() const { return params_; }
  bool has_closed_form(int level) const {
    return !closed_[static_cast<size_t>(level)].empty();
  }

  /// Exact 1-based rank of an iteration tuple.
  i64 rank(std::span<const i64> idx) const;

  /// Recover the iteration tuple of rank pc (1 <= pc <= trip_count()):
  /// closed-form roots guarded by exact integer correction, with binary
  /// search as fallback.  Never returns a wrong tuple.  `stats`, when
  /// non-null, accumulates which path each level took.
  void recover(i64 pc, std::span<i64> idx, RecoveryStats* stats = nullptr) const;

  /// Closed-form recovery *without* the correction guard (ablation /
  /// tests).  Returns false if any level lacks a formula or produced a
  /// non-finite value; idx is then unspecified.
  bool recover_closed_raw(i64 pc, std::span<i64> idx) const;

  /// Exact binary-search recovery (no floating point).
  void recover_search(i64 pc, std::span<i64> idx) const;

  /// Advance to the lexicographic successor; false after the last tuple.
  bool increment(std::span<i64> idx) const;

  void first(std::span<i64> idx) const;
  void last(std::span<i64> idx) const;

  i64 lower_bound(int level, std::span<const i64> idx) const {
    return bounds_lo_[static_cast<size_t>(level)].eval(idx.data());
  }
  i64 upper_bound(int level, std::span<const i64> idx) const {
    return bounds_hi_[static_cast<size_t>(level)].eval(idx.data());
  }

 private:
  friend class Collapsed;
  CollapsedEval() = default;

  /// Affine bound pre-folded over the parameters: only loop-var slots
  /// remain.  idx points at the loop-variable array (slots 0..c-1).
  /// Terms live in a fixed inline array so eval() stays branch-light and
  /// allocation-free on the odometer hot path.
  struct Bound {
    static constexpr int kMaxTerms = kMaxDepth;
    i64 cst = 0;
    int nterms = 0;
    int slot[kMaxTerms] = {};
    i64 coef[kMaxTerms] = {};

    void add_term(int s, i64 co) {
      if (nterms >= kMaxTerms) throw SpecError("Bound: too many terms");
      slot[nterms] = s;
      coef[nterms] = co;
      ++nterms;
    }
    i64 eval(const i64* idx) const {
      i64 acc = cst;
      for (int t = 0; t < nterms; ++t) acc += coef[t] * idx[slot[t]];
      return acc;
    }
  };

  i64 search_level(int k, std::span<i64> pt, i64 pc) const;

  int c_ = 0;
  size_t nslots_ = 0;
  size_t pc_slot_ = 0;
  i64 total_ = 0;
  ParamMap params_;
  std::array<i64, kMaxSlots> base_{};  // params pre-filled, rest zero
  std::vector<Bound> bounds_lo_, bounds_hi_;
  std::vector<CompiledPoly> prank_;    // per level; prank_[c-1] is the full rank
  std::vector<CompiledExpr> closed_;   // per level; may be empty
  static constexpr int kMaxCorrection = 16;
};

}  // namespace nrc
