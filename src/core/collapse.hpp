#pragma once
// The collapsing transformation: public entry point of the library.
//
// Usage:
//   NestSpec nest;                                  // triangular example
//   nest.param("N")
//       .loop("i", aff::c(0), aff::v("N") - 1)
//       .loop("j", aff::v("i") + 1, aff::v("N"));
//   Collapsed col = collapse(nest);                 // symbolic, once
//   CollapsedEval cn = col.bind({{"N", 5000}});     // per parameter set
//   // cn.trip_count(), cn.recover(pc, idx), cn.increment(idx), ...
//
// `Collapsed` holds the symbolic artifacts (ranking polynomial, level
// equations, convenient root formulas) and is what the code generator
// consumes; `CollapsedEval` is the allocation-free runtime evaluator the
// OpenMP execution schemes are built on.
//
// bind() lowers every level's recovery into the cheapest engine that is
// exact for it:
//   * degree-1 levels solve by one exact integer floor-division,
//   * degree-2 levels by the guarded quadratic formula on exactly
//     evaluated integer coefficients,
//   * degree-3 levels by the guarded real-arithmetic Cardano/Viete,
//   * degree-4 levels by the guarded real-arithmetic Ferrari (resolvent
//     through the same Cardano path); points where the selected branch
//     goes genuinely complex demote to the RecoveryProgram bytecode —
//     flat real-valued instructions with the parameters constant-folded
//     in (complex forms only where a Cardano/Ferrari branch needs them),
//   * levels without a usable formula by exact binary search.
// Every floating-point estimate is corrected against the exact integer
// level equation, so recover() never returns a wrong tuple.

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/flat_poly.hpp"
#include "core/folded_bound.hpp"
#include "core/ranking.hpp"
#include "core/runtime_limits.hpp"
#include "core/unrank_closed.hpp"
#include "polyhedral/domain.hpp"
#include "symbolic/compile.hpp"
#include "symbolic/recovery_program.hpp"

namespace nrc {

struct CollapseOptions {
  /// Build closed-form recoveries (paper §IV).  When false, recovery
  /// always uses exact binary search.
  bool build_closed_form = true;
  /// Maximum level-equation degree inverted in closed form (paper limit: 4).
  int max_closed_degree = 4;
  /// Calibration parameters for convenient-branch selection; empty means
  /// choose automatically (default_calibration).
  ParamMap calibration;
};

class CollapsedEval;

/// Symbolic result of collapsing a nest.  Immutable; cheap to copy
/// (shared state).  Thread-safe for concurrent reads.
class Collapsed {
 public:
  const NestSpec& nest() const;
  const RankingSystem& ranking() const;

  /// Per-level closed-form info (degree, coefficients, chosen branch,
  /// symbolic root).  levels().size() == nest().depth().
  const std::vector<LevelFormula>& levels() const;

  /// True when every level has a usable closed-form recovery.
  bool fully_closed_form() const;

  /// Runtime slot layout: loop vars, then params, then "pc".
  const std::vector<std::string>& slot_order() const;

  /// Bind concrete parameter values, producing the runtime evaluator.
  /// Throws SpecError if a parameter is missing or the domain is empty.
  ///
  /// Re-binding the same parameters on the same Collapsed (an evicted
  /// cache entry rebuilt, a deserialized plan re-bound, a warm_start)
  /// returns a copy of the memoized evaluator instead of re-folding
  /// bounds, rebuilding FlatPoly layouts and re-running the f64-guard
  /// proof — the memo stores the pristine evaluator, and the
  /// RuntimeConfig defaults are applied to the returned copy, so
  /// config changes between binds still take effect.  Thread-safe.
  CollapsedEval bind(const ParamMap& params) const;

  /// How many bind() calls were served from the parameter memo (the
  /// FlatPoly-reuse fast path) over this Collapsed's lifetime.
  size_t bind_reuses() const;

  /// Human-readable report: ranking polynomial, trip count, per-level
  /// recovery formulas and the solver each level lowers to at bind time.
  std::string describe() const;

 private:
  friend Collapsed collapse(const NestSpec&, const CollapseOptions&);
  CollapsedEval bind_fresh(const ParamMap& params) const;
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

/// Collapse all loops of `nest` (the caller passes nest.outer(c) to
/// collapse only the outermost c loops of a deeper nest).
Collapsed collapse(const NestSpec& nest, const CollapseOptions& opts = {});

/// Per-recovery observability counters (optional; pass to recover()).
/// Plain integers: keep one instance per thread and merge.
struct RecoveryStats {
  i64 closed_form = 0;  ///< levels recovered by the closed form directly
  i64 corrected = 0;    ///< levels where the integer guard moved the index
  i64 fallback = 0;     ///< levels recovered by exact binary search
  /// Quartic levels whose real-arithmetic Ferrari estimate degenerated
  /// (or failed the guard) and that were then *successfully* solved
  /// through the bytecode demotion path (a demotion that also finds no
  /// finite estimate falls to search and counts only in fallback).  Not
  /// a level outcome of its own (the demoted solve still lands in one
  /// of the three counters above), so it does not participate in
  /// levels().
  i64 quartic_demoted = 0;
  i64 levels() const { return closed_form + corrected + fallback; }
  RecoveryStats& operator+=(const RecoveryStats& o) {
    closed_form += o.closed_form;
    corrected += o.corrected;
    fallback += o.fallback;
    quartic_demoted += o.quartic_demoted;
    return *this;
  }
};

/// The engine a level's recovery lowered to at bind() time.
enum class LevelSolverKind {
  InnermostLinear,  ///< innermost level: lb + (pc - rank(prefix, lb))
  ExactDivision,    ///< degree 1: one exact integer floor-division
  Quadratic,        ///< degree 2: guarded quadratic formula
  Cubic,            ///< degree 3: guarded real-arithmetic Cardano/Viete
  Quartic,          ///< degree 4: guarded real-arithmetic Ferrari
                    ///< (bytecode demotion where the branch goes complex)
  Program,          ///< RecoveryProgram bytecode (ablation hook; the
                    ///< pre-Ferrari quartic lowering)
  Interpreted,      ///< bytecode lowering unavailable: generic interpreter
                    ///< (the one lowering that still heap-allocates)
  Search,           ///< no usable formula: exact binary search
};

const char* level_solver_kind_name(LevelSolverKind k);

/// Allocation-free runtime evaluator bound to concrete parameters.
/// All methods are const and thread-safe.
class CollapsedEval {
 public:
  int depth() const { return c_; }
  i64 trip_count() const { return total_; }
  const ParamMap& params() const { return params_; }
  bool has_closed_form(int level) const {
    return !closed_[static_cast<size_t>(level)].empty();
  }
  /// The engine recover() uses for `level`.
  LevelSolverKind solver_kind(int level) const {
    return solvers_[static_cast<size_t>(level)].kind;
  }

  /// Unified guard policy toggle.  bind() proves, per level and for the
  /// rank prefixes, whether every guard/coefficient intermediate stays
  /// an exact integer below 2^53 for points of this domain; proven
  /// levels evaluate coefficients and run the Horner correction guard in
  /// plain double — bit-identical to the checked-__int128 reference, in
  /// every engine (scalar recover()/recover_block() included since
  /// PR 3).  set_f64_guards(false) forces the i128 reference path
  /// everywhere (tests / ablation); levels that fail the proof use it
  /// regardless.
  void set_f64_guards(bool on) { f64_guards_ = on; }
  bool f64_guards() const { return f64_guards_; }

  /// True when bind() proved the exact-double guard path for `level`.
  bool guards_provably_f64(int level) const {
    return solvers_[static_cast<size_t>(level)].guards_f64;
  }

  /// Ablation/bench hook: lower quartic levels back onto the generic
  /// RecoveryProgram bytecode (the pre-Ferrari engine) instead of the
  /// guarded real-arithmetic Ferrari solver.  Results stay bit-identical
  /// (both sit behind the exact guard); only the cost changes.  Levels
  /// whose bytecode failed to compile fall to the generic interpreter.
  void use_bytecode_quartics();

  /// Test/ablation hook: treat every quartic point as if the Ferrari
  /// estimate had degenerated, exercising the per-point demotion path —
  /// bytecode estimate plus exact guard, RecoveryStats::quartic_demoted
  /// counting each demotion.  Results stay identical.
  void force_quartic_demotion() { demote_quartics_ = true; }

  /// Exact 1-based rank of an iteration tuple.
  i64 rank(std::span<const i64> idx) const;

  /// Recover the iteration tuple of rank pc (1 <= pc <= trip_count()):
  /// degree-specialized / bytecode closed forms guarded by exact integer
  /// correction, with binary search as fallback.  Never returns a wrong
  /// tuple.  `stats`, when non-null, accumulates which path each level
  /// took.  Zero heap allocation — except on levels bind() had to demote
  /// to LevelSolverKind::Interpreted (bytecode register pressure), whose
  /// generic evaluator allocates; solver_kind() exposes the lowering.
  void recover(i64 pc, std::span<i64> idx, RecoveryStats* stats = nullptr) const;

  /// Batched recovery: fill `out` (row-major, n rows of depth() values)
  /// with the tuples of pc_lo, pc_lo+1, ..., clipped at trip_count().
  /// One full multi-level solve for pc_lo; the remaining rows reuse the
  /// solved prefix and advance by row arithmetic (no per-row solves, no
  /// per-iteration bound evaluation).  Returns the number of rows
  /// actually produced.  Zero heap allocation.
  i64 recover_block(i64 pc_lo, i64 n, std::span<i64> out,
                    RecoveryStats* stats = nullptr) const;

  /// Lane-strided (structure-of-arrays) batched recovery: one full solve
  /// at pc_lo, then SIMD row fills.  Column k holds index k of every
  /// recovered row — out[k*stride + r] for row r — which is exactly the
  /// layout the SIMD kernel bodies consume (collapsed_for_simd_blocks),
  /// so no scalar transpose sits between recovery and execution.
  /// `stride` is the column pitch and must be >= the produced row count
  /// min(n, trip_count() - pc_lo + 1); out must hold depth()*stride
  /// values.  Returns the number of rows produced.  Zero heap allocation.
  i64 recover_block_lanes(i64 pc_lo, i64 n, std::span<i64> out, i64 stride,
                          RecoveryStats* stats = nullptr) const;

  /// Lane-batched recovery of 4 arbitrary pcs (each in [1, trip_count()]):
  /// the closed-form levels evaluate 4 pcs per SIMD lane — vectorized
  /// quadratic formula, RecoveryProgram::eval4 bytecode lanes, per-lane
  /// double-precision cubic — and every lane is corrected by the scalar
  /// exact integer guard, so the tuples are bit-identical to four
  /// recover() calls.  This is the §VI-B warp-shaped primitive (one
  /// independent formula solve per lane, no row walking); the chunked
  /// SIMD executors use it to amortize 4 chunk-start solves at once.
  /// `out` receives 4 rows of depth() values (row-major).  Zero heap
  /// allocation except on LevelSolverKind::Interpreted levels (same
  /// caveat as recover()).
  void recover4(const i64 pcs[4], std::span<i64> out, RecoveryStats* stats = nullptr) const;

  /// 8-lane counterpart of recover4: the closed-form levels evaluate 8
  /// pcs at once on the wide simd_abi batch (one 512-bit vector on the
  /// AVX-512 leg, two 256-bit halves on AVX2, plain doubles on the
  /// scalar leg), with the same per-lane exact integer guard — tuples
  /// are bit-identical to eight recover() calls on every ABI.  `out`
  /// receives 8 rows of depth() values (row-major).  Zero heap
  /// allocation except on Interpreted levels (same caveat as recover()).
  void recover8(const i64 pcs[8], std::span<i64> out, RecoveryStats* stats = nullptr) const;

  /// SIMD-batched block recovery: 4 blocks of up to n consecutive pcs
  /// each, starting at pcs[0..3].  The 4 block-start solves run
  /// lane-parallel (recover4), then each block fills lane-strided like
  /// recover_block_lanes.  Tile b occupies columns [b*depth(),
  /// (b+1)*depth()) of out — column k of block b is
  /// out[(b*depth() + k) * stride + r] — and rows[b] receives the rows
  /// produced for block b (clipped at trip_count()).  out must hold
  /// 4*depth()*stride values.  Zero heap allocation (Interpreted-level
  /// caveat as recover()).
  void recover_blocks4(const i64 pcs[4], i64 n, std::span<i64> out, i64 stride,
                       i64 rows[4], RecoveryStats* stats = nullptr) const;

  /// 8-block counterpart of recover_blocks4 (block starts solved with
  /// recover8; out must hold 8*depth()*stride values).
  void recover_blocks8(const i64 pcs[8], i64 n, std::span<i64> out, i64 stride,
                       i64 rows[8], RecoveryStats* stats = nullptr) const;

  /// Seed-era recovery through the generic CompiledExpr interpreter
  /// (complex arithmetic, heap-allocated value vector).  Kept as the
  /// ablation / benchmark baseline for the bytecode engine; results are
  /// identical to recover().
  void recover_interpreted(i64 pc, std::span<i64> idx, RecoveryStats* stats = nullptr) const;

  /// Closed-form recovery *without* the correction guard (ablation /
  /// tests).  Returns false if any level lacks a formula or produced a
  /// non-finite value; idx is then unspecified.
  bool recover_closed_raw(i64 pc, std::span<i64> idx) const;

  /// Exact binary-search recovery (no floating point).
  void recover_search(i64 pc, std::span<i64> idx) const;

  /// Advance to the lexicographic successor; false after the last tuple.
  bool increment(std::span<i64> idx) const;

  /// Number of consecutive pcs remaining in idx's innermost row,
  /// counting idx itself (always >= 1 for a valid tuple).
  i64 row_extent(std::span<const i64> idx) const {
    return bounds_hi_[static_cast<size_t>(c_ - 1)].eval(idx.data()) -
           idx[static_cast<size_t>(c_ - 1)];
  }

  /// Advance idx by n positions in collapsed order using row arithmetic
  /// (bounds are evaluated once per crossed row, not once per step).
  /// False when the walk leaves the domain.
  bool advance(std::span<i64> idx, i64 n) const;

  /// Row-wise walk of the pc range [lo, hi] (1-based, inclusive): one
  /// full recover() at lo, then one fn(idx, j_begin, j_end) call per
  /// maximal innermost run, with bounds evaluated once per crossed row.
  /// `idx` is the walker's working tuple (depth() values, innermost ==
  /// j_begin on entry); fn may overwrite idx[depth()-1] with values in
  /// [j_begin, j_end) and must leave the other slots alone.  This is the
  /// single row-arithmetic primitive behind recover_block() and the §V
  /// scalar/segment schemes.  The caller must keep lo within
  /// [1, trip_count()] (recover() throws otherwise); a hi beyond
  /// trip_count() is silently clipped at the last tuple — pre-clip (as
  /// recover_block does) when the shortfall matters.
  template <class RowFn>
  void for_each_row(i64 lo, i64 hi, RowFn&& fn, RecoveryStats* stats = nullptr) const {
    i64 idx[kMaxDepth];
    recover(lo, {idx, static_cast<size_t>(c_)}, stats);
    for_each_row_from({idx, static_cast<size_t>(c_)}, lo, hi, static_cast<RowFn&&>(fn));
  }

  /// Row-wise walk resuming from an already-recovered working tuple:
  /// `idx` must hold the tuple of rank `pc` on entry (it is the walker's
  /// scratch, clobbered by the walk).  Same fn contract as
  /// for_each_row().  The lane-batched executors solve several chunk
  /// starts at once with recover4() and then walk each chunk from its
  /// solved tuple through this entry point.
  template <class RowFn>
  void for_each_row_from(std::span<i64> idx, i64 pc, i64 hi, RowFn&& fn) const {
    const size_t d = static_cast<size_t>(c_);
    while (pc <= hi) {
      const i64 row_last_pc = pc + row_extent(idx) - 1;
      const i64 seg_last_pc = std::min(hi, row_last_pc);
      const i64 j_begin = idx[d - 1];
      const i64 j_end = j_begin + (seg_last_pc - pc) + 1;
      fn(idx.data(), j_begin, j_end);
      pc = seg_last_pc + 1;
      if (pc > hi) break;
      // The run ended exactly at a row end (a mid-row cut implies
      // seg_last_pc == hi); one odometer step from the row's last point
      // lands on the next row's first point.
      idx[d - 1] = j_end - 1;
      if (!increment(idx)) break;
    }
  }

  void first(std::span<i64> idx) const;
  void last(std::span<i64> idx) const;

  i64 lower_bound(int level, std::span<const i64> idx) const {
    return bounds_lo_[static_cast<size_t>(level)].eval(idx.data());
  }
  i64 upper_bound(int level, std::span<const i64> idx) const {
    return bounds_hi_[static_cast<size_t>(level)].eval(idx.data());
  }

 private:
  friend class Collapsed;
  CollapsedEval() = default;

  using Bound = FoldedBound;

  /// One level's bound recovery engine (see LevelSolverKind).  The
  /// integer-scaled level-equation coefficients A_e = D * a_e (D the
  /// common denominator) drive both the specialized solvers and the O(1)
  /// Horner correction guard: A(t) <= 0  <=>  rank(prefix, t) <= pc.
  struct LevelSolver {
    LevelSolverKind kind = LevelSolverKind::Search;
    std::vector<CompiledPoly> scaled;  ///< A_0..A_deg, exact integer-valued,
                                       ///< parameters pre-folded
    std::array<FlatPoly, 5> flat{};    ///< flat multiply-add forms of the
                                       ///< low-degree A_e (else unusable)
    bool guards_f64 = false;           ///< coefficients and guard may run in
                                       ///< proven-exact double (all engines)
    int branch = 0;                    ///< selected convenient branch
    RecoveryProgram program;           ///< Program levels; Quartic demotion target
  };

  i64 search_level(int k, std::span<i64> pt, i64 pc) const;
  i64 solve_level(int k, std::span<i64> pt, i64 pc, RecoveryStats* stats) const;
  /// Width-generic lane-batched level solve (W = 4 or 8) behind
  /// solve_level4 and the recover4/recover8 entry points.
  template <int W>
  void solve_level_lanes(int k, i64* pts, const i64* pcs, RecoveryStats* stats) const;
  void solve_level4(int k, i64* pts, const i64* pcs, RecoveryStats* stats) const;
  template <int W>
  void recover_lanes(const i64* pcs, std::span<i64> out, RecoveryStats* stats) const;
  template <int W>
  void recover_blocks_lanes(const i64* pcs, i64 n, std::span<i64> out, i64 stride,
                            i64* rows, RecoveryStats* stats) const;
  /// Correct `estimate` against the exact level equation; false when the
  /// estimate was off by more than kMaxCorrection (no stats recorded,
  /// pt[k] unspecified) — the caller demotes or searches.
  bool try_guard_level(int k, std::span<i64> pt, i64 pc, i64 estimate,
                       const i128* A, int deg, RecoveryStats* stats, i64* out) const;
  bool try_guard_level_f64(int k, std::span<i64> pt, i64 pc, i64 estimate,
                           const double* A, int deg, RecoveryStats* stats,
                           i64* out) const;
  i64 guard_level(int k, std::span<i64> pt, i64 pc, i64 estimate,
                  const i128* A, int deg, RecoveryStats* stats) const;
  i64 guard_level_f64(int k, std::span<i64> pt, i64 pc, i64 estimate,
                      const double* A, int deg, RecoveryStats* stats) const;
  /// Demoted-quartic path: bytecode (or, uncompiled, interpreter)
  /// estimate plus the exact guard; exactly one of A / Ad is non-null
  /// and selects the guard arithmetic.  False when no finite estimate
  /// exists or the exact guard overflowed — the caller searches.
  bool quartic_demote(int k, std::span<i64> pt, i64 pc, const i128* A,
                      const double* Ad, int deg, RecoveryStats* stats,
                      i64* out) const;
  void recover_innermost(std::span<i64> pt, std::span<i64> idx, i64 pc,
                         const CompiledPoly& inner_rank, const FlatPoly* flat,
                         bool use_f64 = false) const;
  /// Exact rank-prefix evaluation through the flat form when available.
  i128 eval_rank(int k, const i64* pt) const;
  /// Row-walk from a recovered tuple, filling lane-strided columns.
  void fill_rows_lanes(std::span<i64> idx, i64 pc, i64 hi, i64* out, i64 stride) const;

  int c_ = 0;
  size_t nslots_ = 0;
  size_t pc_slot_ = 0;
  i64 total_ = 0;
  ParamMap params_;
  std::array<i64, kMaxSlots> base_{};  // params pre-filled, rest zero
  std::vector<Bound> bounds_lo_, bounds_hi_;
  std::vector<CompiledPoly> prank_;        // per level, parameters pre-folded
  std::vector<FlatPoly> prank_flat_;       // flat forms of prank_ (else unusable)
  std::vector<CompiledPoly> prank_interp_; // per level, unfolded (seed baseline)
  std::vector<CompiledExpr> closed_;   // per level; may be empty (interpreter)
  std::vector<LevelSolver> solvers_;   // per level
  bool f64_guards_ = true;             // see set_f64_guards()
  bool demote_quartics_ = false;       // see force_quartic_demotion()
  static constexpr int kMaxCorrection = 16;
};

}  // namespace nrc
