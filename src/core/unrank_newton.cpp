#include "core/unrank_newton.hpp"

#include <cmath>

#include "core/collapse.hpp"  // kMaxSlots
#include "support/error.hpp"

namespace nrc {

NewtonUnranker::NewtonUnranker(const RankingSystem& rs, const ParamMap& params)
    : nest_(rs.nest), params_(params) {
  c_ = nest_.depth();
  slots_ = nest_.loop_vars();
  for (const auto& p : nest_.params()) slots_.push_back(p);
  slots_.push_back(kPcVar);
  nslots_ = slots_.size();
  pc_slot_ = nslots_ - 1;

  base_.assign(nslots_, 0);
  for (size_t s = 0; s < nslots_; ++s) {
    auto it = params.find(slots_[s]);
    if (it != params.end()) base_[static_cast<size_t>(s)] = it->second;
  }
  for (const auto& p : nest_.params())
    if (!params.count(p)) throw SpecError("NewtonUnranker: missing parameter " + p);

  for (int k = 0; k < c_; ++k) {
    const Polynomial& R = rs.prefix_rank[static_cast<size_t>(k)];
    prank_.emplace_back(R, slots_);
    dprank_.emplace_back(R.derivative(nest_.at(k).var), slots_);
  }
}

i64 NewtonUnranker::solve_level(int k, std::span<i64> pt, i64 pc) const {
  // Bounds of this level given the prefix already stored in pt.
  std::map<std::string, i64> vals(params_.begin(), params_.end());
  for (int q = 0; q < k; ++q) vals[nest_.at(q).var] = pt[static_cast<size_t>(q)];
  i64 lo = nest_.at(k).lower.eval(vals);
  i64 hi = nest_.at(k).upper.eval(vals) - 1;
  if (hi < lo) throw SolveError("NewtonUnranker: empty range at level " + nest_.at(k).var);

  const CompiledPoly& R = prank_[static_cast<size_t>(k)];
  const CompiledPoly& dR = dprank_[static_cast<size_t>(k)];
  auto rank_at = [&](i64 t) {
    pt[static_cast<size_t>(k)] = t;
    return R.eval_i128(std::span<const i64>(pt.data(), nslots_));
  };

  // Goal: the largest t in [lo, hi] with rank_at(t) <= pc, maintaining
  // the exact bracket rank_at(lo) <= pc throughout.  Newton iterates
  // from the latest probe (monotone one-sided convergence on the
  // convex/concave stretches ranking polynomials have); each accepted
  // probe also tries the O(1) completion test "am I the boundary?".
  // A bounded iteration budget falls back to plain bisection, so the
  // worst case stays logarithmic.
  if (rank_at(lo) > pc)
    throw SolveError("NewtonUnranker: pc below the prefix subtree");
  if (lo == hi || rank_at(hi) <= pc) {
    pt[static_cast<size_t>(k)] = hi;
    ++steps_;
    return hi;
  }
  // Bracket now: rank(lo) <= pc < rank(hi), so the answer is in [lo, hi).

  i64 x = lo + (hi - lo) / 2;
  for (int iter = 0; iter < 24 && lo + 1 < hi; ++iter) {
    const long double f =
        static_cast<long double>(rank_at(x)) - static_cast<long double>(pc);
    long double pt_ld[kMaxSlots];
    for (size_t s = 0; s < nslots_; ++s)
      pt_ld[s] = static_cast<long double>(pt[static_cast<size_t>(s)]);
    const long double df = dR.eval_ld({pt_ld, nslots_});
    ++steps_;

    if (f <= 0.0L) {
      lo = x;
      // Completion test: lo is the answer iff rank(lo + 1) > pc.
      if (rank_at(lo + 1) > pc) {
        ++steps_;
        pt[static_cast<size_t>(k)] = lo;
        return lo;
      }
      ++steps_;
    } else {
      hi = x;  // rank(hi) > pc invariant kept
    }

    i64 next = lo + (hi - lo) / 2;  // bisection fallback
    if (df >= 1.0L) {
      const long double step = f / df;
      if (std::isfinite(static_cast<double>(step))) {
        const i64 suggestion = x - static_cast<i64>(std::llroundl(step));
        if (suggestion > lo && suggestion < hi) next = suggestion;
      }
    }
    x = next == x ? lo + (hi - lo) / 2 : next;
    if (x == lo) x = lo + 1;
  }

  // Budget exhausted (pathological shape): finish by pure bisection.
  while (lo + 1 < hi) {
    const i64 mid = lo + (hi - lo) / 2;
    ++steps_;
    if (rank_at(mid) <= pc) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  pt[static_cast<size_t>(k)] = lo;
  return lo;
}

void NewtonUnranker::recover(i64 pc, std::span<i64> idx) const {
  std::vector<i64> pt = base_;
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);
  for (int k = 0; k < c_; ++k) idx[static_cast<size_t>(k)] = solve_level(k, pts, pc);
}

}  // namespace nrc
