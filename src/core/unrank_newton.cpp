#include "core/unrank_newton.hpp"

#include <cmath>

#include "support/error.hpp"

namespace nrc {

NewtonUnranker::NewtonUnranker(const RankingSystem& rs, const ParamMap& params) {
  const NestSpec& nest = rs.nest;
  c_ = nest.depth();
  std::vector<std::string> slots = nest.loop_vars();
  for (const auto& p : nest.params()) slots.push_back(p);
  slots.push_back(kPcVar);
  nslots_ = slots.size();
  pc_slot_ = nslots_ - 1;
  if (nslots_ > static_cast<size_t>(kMaxSlots))
    throw SpecError("NewtonUnranker: too many variables+parameters for the fast path");

  base_.fill(0);
  for (size_t s = 0; s < nslots_; ++s) {
    auto it = params.find(slots[s]);
    if (it != params.end()) base_[s] = it->second;
  }
  for (const auto& p : nest.params())
    if (!params.count(p)) throw SpecError("NewtonUnranker: missing parameter " + p);

  for (int k = 0; k < c_; ++k) {
    bounds_lo_.push_back(FoldedBound::fold(nest.at(k).lower, nest, params));
    bounds_hi_.push_back(FoldedBound::fold(nest.at(k).upper, nest, params));
    var_names_.push_back(nest.at(k).var);
    const Polynomial& R = rs.prefix_rank[static_cast<size_t>(k)];
    prank_.emplace_back(R, slots);
    dprank_.emplace_back(R.derivative(nest.at(k).var), slots);
  }
}

i64 NewtonUnranker::solve_level(int k, std::span<i64> pt, i64 pc) const {
  // Bounds of this level, slot-indexed over the prefix already in pt.
  i64 lo = bounds_lo_[static_cast<size_t>(k)].eval(pt.data());
  i64 hi = bounds_hi_[static_cast<size_t>(k)].eval(pt.data()) - 1;
  if (hi < lo) throw SolveError("NewtonUnranker: empty range at level " + var_names_[static_cast<size_t>(k)]);

  const CompiledPoly& R = prank_[static_cast<size_t>(k)];
  const CompiledPoly& dR = dprank_[static_cast<size_t>(k)];
  auto rank_at = [&](i64 t) {
    pt[static_cast<size_t>(k)] = t;
    return R.eval_i128(std::span<const i64>(pt.data(), nslots_));
  };

  // Goal: the largest t in [lo, hi] with rank_at(t) <= pc, maintaining
  // the exact bracket rank_at(lo) <= pc throughout.  Newton iterates
  // from the latest probe (monotone one-sided convergence on the
  // convex/concave stretches ranking polynomials have); each accepted
  // probe also tries the O(1) completion test "am I the boundary?".
  // A bounded iteration budget falls back to plain bisection, so the
  // worst case stays logarithmic.
  if (rank_at(lo) > pc)
    throw SolveError("NewtonUnranker: pc below the prefix subtree");
  if (lo == hi || rank_at(hi) <= pc) {
    pt[static_cast<size_t>(k)] = hi;
    ++steps_;
    return hi;
  }
  // Bracket now: rank(lo) <= pc < rank(hi), so the answer is in [lo, hi).

  i64 x = lo + (hi - lo) / 2;
  for (int iter = 0; iter < 24 && lo + 1 < hi; ++iter) {
    const long double f =
        static_cast<long double>(rank_at(x)) - static_cast<long double>(pc);
    long double pt_ld[kMaxSlots];
    for (size_t s = 0; s < nslots_; ++s)
      pt_ld[s] = static_cast<long double>(pt[static_cast<size_t>(s)]);
    const long double df = dR.eval_ld({pt_ld, nslots_});
    ++steps_;

    if (f <= 0.0L) {
      lo = x;
      // Completion test: lo is the answer iff rank(lo + 1) > pc.
      if (rank_at(lo + 1) > pc) {
        ++steps_;
        pt[static_cast<size_t>(k)] = lo;
        return lo;
      }
      ++steps_;
    } else {
      hi = x;  // rank(hi) > pc invariant kept
    }

    i64 next = lo + (hi - lo) / 2;  // bisection fallback
    if (df >= 1.0L) {
      const long double step = f / df;
      if (std::isfinite(static_cast<double>(step))) {
        const i64 suggestion = x - static_cast<i64>(std::llroundl(step));
        if (suggestion > lo && suggestion < hi) next = suggestion;
      }
    }
    x = next == x ? lo + (hi - lo) / 2 : next;
    if (x == lo) x = lo + 1;
  }

  // Budget exhausted (pathological shape): finish by pure bisection.
  while (lo + 1 < hi) {
    const i64 mid = lo + (hi - lo) / 2;
    ++steps_;
    if (rank_at(mid) <= pc) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  pt[static_cast<size_t>(k)] = lo;
  return lo;
}

void NewtonUnranker::recover(i64 pc, std::span<i64> idx) const {
  std::array<i64, kMaxSlots> pt = base_;
  pt[pc_slot_] = pc;
  std::span<i64> pts(pt.data(), nslots_);
  for (int k = 0; k < c_; ++k) idx[static_cast<size_t>(k)] = solve_level(k, pts, pc);
}

}  // namespace nrc
