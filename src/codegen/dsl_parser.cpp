#include "codegen/dsl_parser.hpp"

#include <cctype>
#include <sstream>

#include "support/error.hpp"

namespace nrc {
namespace {

// ---------------------------------------------------------------------------
// Affine expression parser: expr := term (('+'|'-') term)*
//                           term := factor ('*' factor)*
//                           factor := INT | IDENT | '-' factor | '(' expr ')'
// with the affine restriction that a product has at most one non-constant
// operand.
// ---------------------------------------------------------------------------

struct AffParser {
  std::string_view s;
  size_t at = 0;

  void skip_ws() {
    while (at < s.size() && std::isspace(static_cast<unsigned char>(s[at]))) ++at;
  }

  bool eat(char c) {
    skip_ws();
    if (at < s.size() && s[at] == c) {
      ++at;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return at < s.size() ? s[at] : '\0';
  }

  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("affine expression '" + std::string(s) + "': " + what + " at offset " +
                     std::to_string(at));
  }

  AffineExpr parse() {
    AffineExpr e = expr();
    skip_ws();
    if (at != s.size()) fail("trailing characters");
    return e;
  }

  AffineExpr expr() {
    AffineExpr acc = term();
    for (;;) {
      if (eat('+')) {
        acc += term();
      } else if (eat('-')) {
        acc -= term();
      } else {
        return acc;
      }
    }
  }

  AffineExpr term() {
    AffineExpr acc = factor();
    while (eat('*')) {
      const AffineExpr rhs = factor();
      if (acc.is_constant()) {
        acc = rhs * acc.constant_term();
      } else if (rhs.is_constant()) {
        acc = acc * rhs.constant_term();
      } else {
        fail("non-affine product of two variables");
      }
    }
    return acc;
  }

  AffineExpr factor() {
    skip_ws();
    if (eat('-')) return -factor();
    if (eat('(')) {
      AffineExpr e = expr();
      if (!eat(')')) fail("expected ')'");
      return e;
    }
    if (at < s.size() && std::isdigit(static_cast<unsigned char>(s[at]))) {
      i64 v = 0;
      while (at < s.size() && std::isdigit(static_cast<unsigned char>(s[at]))) {
        v = v * 10 + (s[at] - '0');
        ++at;
      }
      return AffineExpr(v);
    }
    if (at < s.size() &&
        (std::isalpha(static_cast<unsigned char>(s[at])) || s[at] == '_')) {
      const size_t start = at;
      while (at < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[at])) || s[at] == '_'))
        ++at;
      return AffineExpr::variable(std::string(s.substr(start, at - start)));
    }
    fail("expected a number, identifier, '-' or '('");
  }
};

std::string strip(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string strip_comment(const std::string& line) {
  const size_t h = line.find('#');
  return h == std::string::npos ? line : line.substr(0, h);
}

/// "double a[N][N]" -> ArrayDecl
ArrayDecl parse_array_decl(const std::string& text, int lineno) {
  std::istringstream is(text);
  ArrayDecl d;
  if (!(is >> d.elem)) throw ParseError("line " + std::to_string(lineno) + ": array: missing type");
  std::string rest;
  std::getline(is, rest);
  rest = strip(rest);
  const size_t br = rest.find('[');
  if (br == std::string::npos)
    throw ParseError("line " + std::to_string(lineno) + ": array: missing dimensions");
  d.name = strip(rest.substr(0, br));
  if (d.name.empty())
    throw ParseError("line " + std::to_string(lineno) + ": array: missing name");
  size_t at = br;
  while (at < rest.size()) {
    if (rest[at] != '[')
      throw ParseError("line " + std::to_string(lineno) + ": array: expected '['");
    const size_t close = rest.find(']', at);
    if (close == std::string::npos)
      throw ParseError("line " + std::to_string(lineno) + ": array: missing ']'");
    d.dims.push_back(strip(rest.substr(at + 1, close - at - 1)));
    at = close + 1;
  }
  if (d.dims.empty())
    throw ParseError("line " + std::to_string(lineno) + ": array: no dimensions");
  return d;
}

}  // namespace

AffineExpr parse_affine(const std::string& text) {
  AffParser p{text};
  return p.parse();
}

NestSpec NestProgram::collapsed_nest() const {
  return nest.outer(effective_collapse_depth());
}

int NestProgram::effective_collapse_depth() const {
  return collapse_depth == 0 ? nest.depth() : collapse_depth;
}

std::string render_nest_program(const NestProgram& prog) {
  std::string s;
  s += "name " + prog.name + "\n";
  if (!prog.nest.params().empty()) {
    s += "params";
    for (const auto& p : prog.nest.params()) s += " " + p;
    s += "\n";
  }
  for (const auto& a : prog.arrays) {
    s += "array " + a.elem + " " + a.name;
    for (const auto& d : a.dims) s += "[" + d + "]";
    s += "\n";
  }
  for (const auto& l : prog.nest.loops())
    s += "loop " + l.var + " = " + l.lower.str() + " .. " + l.upper.str() + "\n";
  if (prog.collapse_depth > 0)
    s += "collapse " + std::to_string(prog.collapse_depth) + "\n";
  s += "body {\n" + prog.body + "\n}\n";
  return s;
}

NestProgram parse_nest_program(const std::string& text) {
  NestProgram prog;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  bool saw_body = false;

  while (std::getline(is, line)) {
    ++lineno;
    const std::string stripped = strip(strip_comment(line));
    if (stripped.empty()) continue;

    std::istringstream ls(stripped);
    std::string kw;
    ls >> kw;

    if (kw == "name") {
      ls >> prog.name;
      if (prog.name.empty()) throw ParseError("line " + std::to_string(lineno) + ": empty name");
    } else if (kw == "params") {
      std::string p;
      while (ls >> p) prog.nest.param(p);
    } else if (kw == "array") {
      std::string rest;
      std::getline(ls, rest);
      prog.arrays.push_back(parse_array_decl(strip(rest), lineno));
    } else if (kw == "loop") {
      // loop <var> = <affine> .. <affine>
      std::string var, eq;
      ls >> var >> eq;
      if (eq != "=")
        throw ParseError("line " + std::to_string(lineno) + ": loop: expected '='");
      std::string rest;
      std::getline(ls, rest);
      const size_t dots = rest.find("..");
      if (dots == std::string::npos)
        throw ParseError("line " + std::to_string(lineno) + ": loop: expected '..'");
      try {
        prog.nest.loop(var, parse_affine(strip(rest.substr(0, dots))),
                       parse_affine(strip(rest.substr(dots + 2))));
      } catch (const ParseError& e) {
        throw ParseError("line " + std::to_string(lineno) + ": " + e.what());
      }
    } else if (kw == "collapse") {
      if (!(ls >> prog.collapse_depth) || prog.collapse_depth < 1)
        throw ParseError("line " + std::to_string(lineno) + ": collapse: expected a positive count");
    } else if (kw == "body") {
      // Capture a brace-balanced block, possibly spanning lines.
      std::string tail;
      std::getline(ls, tail);
      std::string block = strip(tail);
      if (block.empty() || block[0] != '{')
        throw ParseError("line " + std::to_string(lineno) + ": body: expected '{'");
      int depth = 0;
      std::string captured;
      std::string cur = block;
      for (;;) {
        for (char ch : cur) {
          if (ch == '{') ++depth;
          if (ch == '}') --depth;
          captured += ch;
          if (depth == 0) break;
        }
        if (depth == 0) break;
        captured += '\n';
        if (!std::getline(is, cur)) {
          throw ParseError("line " + std::to_string(lineno) + ": body: unbalanced braces");
        }
        ++lineno;
      }
      // Strip the outermost braces.
      const size_t open = captured.find('{');
      const size_t close = captured.rfind('}');
      prog.body = strip(captured.substr(open + 1, close - open - 1));
      saw_body = true;
    } else {
      throw ParseError("line " + std::to_string(lineno) + ": unknown keyword '" + kw + "'");
    }
  }

  if (prog.nest.depth() == 0) throw ParseError("nest program has no loops");
  if (!saw_body) throw ParseError("nest program has no body");
  if (prog.collapse_depth > prog.nest.depth())
    throw ParseError("collapse depth exceeds nest depth");
  prog.nest.validate();
  return prog;
}

}  // namespace nrc
