#pragma once
// C code emission: the back end of the source-to-source tool.
//
// Produces OpenMP C99 code in the styles shown in the paper:
//   * PerIteration — Fig. 3: closed-form recovery at every iteration;
//   * PerThread    — Fig. 4: firstprivate flag, one recovery per thread,
//                    then original-nest index incrementation;
//   * Chunked      — §V: schedule(static, CHUNK) with one recovery per
//                    chunk;
//   * SimdBlocks   — §VI-A: precompute vlength index tuples, omp simd
//                    body.
// Degree <= 2 recoveries use plain sqrt/floor (as Fig. 3); degree >= 3
// call emitted guarded real-arithmetic Cardano/Ferrari helpers — the C
// transliteration of the library's core/real_solvers.hpp
// (print_c.hpp::real_solver_helpers_c) — so the generated code computes
// the same estimates as CollapsedEval and never floors a non-finite
// C99 complex value (the paper's Fig. 7 creal(cpow(...)) form is UB at
// degenerate points; degeneration now falls back to the exact
// integer-guard walk instead).
//
// The emitter consumes the same Schedule descriptor the runtime
// dispatcher executes (pipeline/schedule.hpp), so a scheme choice made
// once — by hand or by Schedule::auto_select — drives library execution
// and generated C from one source of truth.  Each of the ten runtime
// schemes maps onto the nearest of the four emission styles
// (emission_style below): the chunked schemes emit the Chunked style
// with their chunk, the SIMD block schemes the SimdBlocks style with
// their vlen, the per-thread family (per_thread, taskloop,
// row_segments, serial_sim) the Fig. 4 PerThread style, and warp_sim
// emits PerIteration under schedule(static, 1) — the coalesced
// consecutive-iteration deal §VI-B targets, expressed in OpenMP.
//
// emit_verification_program wraps the original and the collapsed
// function in a main() that runs both on identical inputs and compares
// every output array — the end-to-end artifact the integration tests
// compile with the system C compiler and execute.

#include <string>

#include "codegen/dsl_parser.hpp"
#include "core/collapse.hpp"
#include "pipeline/schedule.hpp"

namespace nrc {

enum class RecoveryStyle {
  PerIteration,  ///< Fig. 3: recovery at every iteration
  PerThread,     ///< Fig. 4: one recovery per thread + incrementation
  Chunked,       ///< §V: schedule(static, CHUNK), recovery per chunk
  SimdBlocks,    ///< §VI-A: precompute vlength index tuples, omp simd body
};

/// The emission style a Schedule lowers to (see the mapping above).
RecoveryStyle emission_style(const Schedule& s);

/// The OpenMP schedule clause body the emitted pragma carries for a
/// Schedule, e.g. "static", "dynamic", "static, 512".
std::string emission_omp_schedule(const Schedule& s);

struct NestCertificate;

struct EmitOptions {
  /// The scheme to emit; the default Schedule is the Fig. 4 per-thread
  /// scheme.  scheme parameters (chunk, vlen, PerIteration's
  /// static/dynamic flavour) come from here — a non-positive chunk
  /// lowers to the PerThread style, exactly the fallback nrc::run
  /// executes for the same descriptor.
  Schedule schedule{};
  bool parallel = true;  ///< emit the OpenMP pragma
  /// Optional static certificate for the emitted plan
  /// (analysis/nest_analyzer.hpp).  When set, the emitter refuses
  /// error-severity certificates (SpecError listing the diagnostics;
  /// disable with refuse_on_error = false) and annotates the generated
  /// code with a `/* nrclint: ... */` header rendering the remaining
  /// diagnostics — so generated C carries its own audit trail instead
  /// of silently overflowing where the analyzer predicted trouble.
  const NestCertificate* certificate = nullptr;
  bool refuse_on_error = true;
};

/// The original (non-collapsed) nest as a C function.
std::string emit_original_function(const NestProgram& prog);

/// The collapsed nest as a C function.  `col` must be the result of
/// collapse(prog.collapsed_nest()).  Throws SolveError when a level
/// lacks a closed-form recovery.
std::string emit_collapsed_function(const NestProgram& prog, const Collapsed& col,
                                    const EmitOptions& opt = {});

/// A complete, compilable C program: both functions plus a main() that
/// initializes the arrays identically, runs both versions and compares
/// the results ("OK" / exit 0 on success).
std::string emit_verification_program(const NestProgram& prog, const Collapsed& col,
                                      const EmitOptions& opt = {});

}  // namespace nrc
