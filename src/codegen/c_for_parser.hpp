#pragma once
// C for-loop front end.
//
// The paper's tool ingests C sources where non-rectangular nests are
// annotated with the OpenMP collapse clause.  This module accepts that
// surface syntax for the nest itself: a chain of restricted C for-loops
//
//   #pragma omp parallel for collapse(2) ...        (optional)
//   for (i = 0; i < N - 1; i++)
//     for (j = i + 1; j < N; j++) {
//       ...body, carried through verbatim...
//     }
//
// Loop headers must have the shape  for (VAR = AFFINE; VAR < AFFINE; VAR++)
// (also accepted: `long VAR = ...`, `int VAR = ...`, `VAR <= AFFINE`
// which is normalized to an exclusive bound, and `++VAR`).  Everything
// after the last recognized header's opening brace is the body.
//
// Parameters are inferred: every identifier used in a bound that is not
// a loop variable becomes a nest parameter.

#include "codegen/dsl_parser.hpp"

namespace nrc {

/// Parse a C fragment into a NestProgram.  The collapse depth comes from
/// a `collapse(n)` clause when present, else all parsed loops collapse.
/// Array declarations are not inferred (fill NestProgram::arrays by hand
/// when emitting a self-verifying program).  Throws ParseError.
NestProgram parse_c_for_nest(const std::string& source);

}  // namespace nrc
