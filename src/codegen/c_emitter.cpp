#include "codegen/c_emitter.hpp"

#include <sstream>

#include "analysis/nest_analyzer.hpp"
#include "math/rational.hpp"
#include "support/error.hpp"
#include "symbolic/print_c.hpp"

namespace nrc {
namespace {

/// Small indentation-aware source builder.
struct CodeWriter {
  std::string out;
  int depth = 0;

  void line(const std::string& s) {
    if (s.empty()) {
      out += "\n";
      return;
    }
    for (int i = 0; i < depth; ++i) out += "  ";
    out += s;
    out += "\n";
  }
  void open(const std::string& s) {
    line(s + " {");
    ++depth;
  }
  void close(const std::string& tail = "") {
    --depth;
    line("}" + tail);
  }
};

/// "double (*a)[N]" style parameter for an array declaration.
std::string array_param(const ArrayDecl& a) {
  if (a.dims.size() == 1) return a.elem + " *" + a.name;
  std::string s = a.elem + " (*" + a.name + ")";
  for (size_t d = 1; d < a.dims.size(); ++d) s += "[" + a.dims[d] + "]";
  return s;
}

/// Cast expression turning a flat pointer into the VLA pointer type.
std::string array_cast(const ArrayDecl& a) {
  if (a.dims.size() == 1) return "";
  std::string s = "(" + a.elem + " (*)";
  for (size_t d = 1; d < a.dims.size(); ++d) s += "[" + a.dims[d] + "]";
  return s + ")";
}

/// Product of all dimensions as a C expression (element count).
std::string array_elems(const ArrayDecl& a) {
  std::string s = "(long long)(" + a.dims[0] + ")";
  for (size_t d = 1; d < a.dims.size(); ++d) s += "*(long long)(" + a.dims[d] + ")";
  return s;
}

/// The integer type of every emitted parameter, loop variable and
/// recovered index.  `long long` (not `long`): the library computes in
/// i64, and on LLP64 targets `long` is 32 bits — recovered estimates
/// and trip counts past 2^31 silently truncated.
constexpr const char* kIntT = "long long";

/// Widened integer arithmetic for the emitted guard walks, level
/// coefficients and ranking evaluations: S-shifted (astronomical-
/// parameter) nests overflow 64 bits in the intermediate products
/// (S^4 at depth 4), so every integer_arith polynomial evaluates in
/// nrc_wide — __int128 where the compiler has it, with a demoted
/// long long fallback elsewhere (pre-overflow behaviour, explicitly
/// visible in the generated source).
const char* wide_typedef_c() {
  return
      "#ifndef NRC_WIDE_C\n"
      "#define NRC_WIDE_C\n"
      "/* Exact wide arithmetic for guard walks and level coefficients:\n"
      " * parameter-shifted nests overflow 64-bit intermediates. */\n"
      "#if defined(__SIZEOF_INT128__)\n"
      "typedef __int128 nrc_wide;\n"
      "#else\n"
      "typedef long long nrc_wide; /* demotion: no 128-bit type here */\n"
      "#endif\n"
      "#endif /* NRC_WIDE_C */\n";
}

/// CPrintOptions for integer_arith polynomials: evaluate in nrc_wide.
CPrintOptions wide_int_opts() {
  CPrintOptions opt;
  opt.int_var_cast = "(nrc_wide)";
  return opt;
}

std::string signature(const NestProgram& prog, const std::string& suffix) {
  std::string s = "static void " + prog.name + "_" + suffix + "(";
  bool first = true;
  for (const auto& p : prog.nest.params()) {
    if (!first) s += ", ";
    s += std::string(kIntT) + " " + p;
    first = false;
  }
  for (const auto& a : prog.arrays) {
    if (!first) s += ", ";
    s += array_param(a);
    first = false;
  }
  if (first) s += "void";
  return s + ")";
}

/// The loops of `prog.nest` below the collapsed sub-nest plus the body,
/// emitted as ordinary nested for-loops.
void emit_inner_loops_and_body(CodeWriter& w, const NestProgram& prog) {
  const int c = prog.effective_collapse_depth();
  int opened = 0;
  for (int k = c; k < prog.nest.depth(); ++k) {
    const Loop& l = prog.nest.at(k);
    w.open("for (" + std::string(kIntT) + " " + l.var + " = " + l.lower.str() + "; " +
           l.var + " < " + l.upper.str() + "; " + l.var + "++)");
    ++opened;
  }
  std::istringstream body(prog.body);
  std::string ln;
  while (std::getline(body, ln)) w.line(ln);
  for (int k = 0; k < opened; ++k) w.close();
}

/// Recovery statements for all collapsed indices at the current pc.
///
/// Each non-innermost index is recovered by the closed-form root and
/// then pinned by an exact integer-arithmetic correction against the
/// ranking polynomial.  Degree <= 2 levels print the symbolic root as
/// in the paper's Fig. 3; degree 3 and 4 levels call the guarded
/// real-arithmetic Cardano/Ferrari helpers (real_solver_helpers_c) on
/// the integer-scaled level-equation coefficients — the same formulas,
/// branch numbering and coefficient scaling the library engine runs, so
/// the generated C and CollapsedEval estimate identically instead of
/// diverging at degenerate/near-discriminant points the C99 complex
/// `creal(cpow(...))` form mishandles (a non-finite complex estimate
/// floored into a long is undefined behaviour; the helper reports
/// degeneration and the demotion fallback below keeps the recovery
/// exact).  The paper's raw formulas floor a double, which misplaces
/// the index when the root lands exactly on an integer and the FP value
/// comes out a hair below it; the guard makes the generated code
/// correct for every size at the cost of a few integer operations per
/// recovery (recoveries already run only once per thread/chunk).
void emit_recovery(CodeWriter& w, const NestProgram& prog, const Collapsed& col) {
  const NestSpec& sub = col.nest();
  const int c = sub.depth();
  for (int k = 0; k + 1 < c; ++k) {
    const LevelFormula& lf = col.levels()[static_cast<size_t>(k)];
    if (lf.branch < 0)
      throw SolveError("emit: level '" + sub.at(k).var +
                       "' has no closed-form recovery (degree " +
                       std::to_string(lf.degree) + ")");
    const std::string& var = sub.at(k).var;
    const std::string lb = "(" + sub.at(k).lower.str() + ")";
    const std::string ub = "(" + sub.at(k).upper.str() + ")";
    if (lf.degree >= 3) {
      // Integer-scaled coefficients A_e = D * a_e (D the common
      // denominator over the level, exactly as bind() scales them for
      // the library solvers; a uniform positive scale leaves the roots
      // and the branch numbering untouched).
      i64 den = 1;
      for (const auto& a : lf.coeffs) den = lcm_i64(den, a.denominator_lcm());
      w.line("{");
      ++w.depth;
      for (size_t e = 0; e < lf.coeffs.size(); ++e)
        w.line("const double __nrc_A" + std::to_string(e) + " = (double)" +
               print_poly_c(lf.coeffs[e] * Rational(den), wide_int_opts(),
                            /*integer_arith=*/true) +
               ";");
      w.line(std::string(kIntT) + " __nrc_est;");
      std::string call = lf.degree == 3 ? "nrc_cubic_est(" : "nrc_ferrari_est(";
      for (size_t e = 0; e < lf.coeffs.size(); ++e)
        call += "__nrc_A" + std::to_string(e) + ", ";
      call += std::to_string(lf.branch) + ", &__nrc_est)";
      // Demotion guard: where the real-arithmetic estimate degenerates
      // (the library would demote the point to its bytecode engine) the
      // generated code starts the exact correction from the level's
      // lower bound instead of flooring a non-finite value.
      w.line(var + " = " + call + " ? __nrc_est : " + lb + ";");
      --w.depth;
      w.line("}");
    } else {
      const std::string e = print_c(lf.root, {});
      w.line(var + " = (" + std::string(kIntT) + ")floor(" + e + ");");
    }
    // Exact guard: clamp into the level's range, then correct against
    // the integer-valued ranking polynomial (monotone in this index),
    // evaluated in nrc_wide — the plain-long form overflowed on
    // S-shifted nests.
    const Polynomial& Rk = col.ranking().prefix_rank[static_cast<size_t>(k)];
    const Polynomial Rk_next =
        Rk.substitute(var, Polynomial::variable(var) + Polynomial(1));
    w.line("if (" + var + " < " + lb + ") " + var + " = " + lb + ";");
    w.line("if (" + var + " > " + ub + " - 1) " + var + " = " + ub + " - 1;");
    w.line("while (" + var + " > " + lb + " && " +
           print_poly_c(Rk, wide_int_opts(), true) + " > pc) " + var + " -= 1;");
    w.line("while (" + var + " < " + ub + " - 1 && " +
           print_poly_c(Rk_next, wide_int_opts(), true) + " <= pc) " + var + " += 1;");
  }
  // Innermost collapsed index: linear, integer arithmetic (wide for the
  // rank-at-lower-bound evaluation; the index itself fits 64 bits):
  //   i_last = lb + (pc - r(prefix, lb)).
  const int kl = c - 1;
  const Loop& last = sub.at(kl);
  const Polynomial r_at_lb =
      col.ranking().prefix_rank[static_cast<size_t>(kl)].substitute(last.var,
                                                                    last.lower.to_poly());
  w.line(last.var + " = (" + std::string(kIntT) + ")((" + last.lower.str() +
         ") + (pc - " + print_poly_c(r_at_lb, wide_int_opts(), /*integer_arith=*/true) +
         "));");
  (void)prog;
}

/// Original-nest index incrementation (paper Fig. 4 / §V), cascading
/// odometer over the collapsed indices.
void emit_increment(CodeWriter& w, const Collapsed& col) {
  const NestSpec& sub = col.nest();
  const int c = sub.depth();
  w.line("/* advance to the next iteration of the original nest */");
  w.line(sub.at(c - 1).var + "++;");
  // Cascade: if level k overflowed, bump level k-1, then reset level k.
  for (int k = c - 1; k >= 1; --k) {
    w.open("if (" + sub.at(k).var + " >= " + sub.at(k).upper.str() + ")");
    w.line(sub.at(k - 1).var + "++;");
  }
  for (int k = 1; k <= c - 1; ++k) {
    w.line(sub.at(k).var + " = " + sub.at(k).lower.str() + ";");
    w.close();
  }
}

/// True when some collapsed level recovers through the guarded
/// real-arithmetic Cardano/Ferrari helpers (degree >= 3), which must
/// then accompany the emitted function.
bool needs_real_solvers(const Collapsed& col) {
  const int c = col.nest().depth();
  for (int k = 0; k + 1 < c; ++k)
    if (col.levels()[static_cast<size_t>(k)].degree >= 3) return true;
  return false;
}

std::string private_clause(const Collapsed& col) {
  std::string s;
  for (const auto& v : col.nest().loop_vars()) {
    if (!s.empty()) s += ", ";
    s += v;
  }
  return s;
}

}  // namespace

RecoveryStyle emission_style(const Schedule& s) {
  switch (s.scheme) {
    case Scheme::PerIteration:
    case Scheme::WarpSim:  // coalesced consecutive-iteration deal: Fig. 3
                           // under schedule(static, 1)
      return RecoveryStyle::PerIteration;
    case Scheme::Chunked:
    case Scheme::RowSegmentsChunked:
      // A non-positive chunk means the per-thread fallback at runtime
      // (nrc::run); the emission must not diverge from what the same
      // descriptor executes.
      return s.chunk > 0 ? RecoveryStyle::Chunked : RecoveryStyle::PerThread;
    case Scheme::SimdBlocks:
    case Scheme::SimdBlocksChunked:
    case Scheme::TiledTwoLevel:  // inner per-tile walk is the simd-block
                                 // shape; the outer tiling is a schedule
                                 // clause concern, not a recovery style
      return RecoveryStyle::SimdBlocks;
    case Scheme::PerThread:
    case Scheme::Taskloop:
    case Scheme::RowSegments:
    case Scheme::SerialSim:
    case Scheme::DivideAndConquer:  // leaves are contiguous ranges with
                                    // one recovery each: PerThread shape
      return RecoveryStyle::PerThread;
  }
  return RecoveryStyle::PerThread;
}

std::string emission_omp_schedule(const Schedule& s) {
  switch (s.scheme) {
    case Scheme::PerIteration:
      return s.omp == OmpSchedule::Dynamic ? "dynamic" : "static";
    case Scheme::WarpSim:
      return "static, 1";
    case Scheme::Chunked:
    case Scheme::RowSegmentsChunked:
      // chunk <= 0 lowers to the PerThread style (see emission_style),
      // whose contiguous static split needs a plain schedule(static).
      return s.chunk > 0 ? "static, " + std::to_string(s.chunk) : "static";
    default:
      return "static";
  }
}

std::string emit_original_function(const NestProgram& prog) {
  CodeWriter w;
  w.open(signature(prog, "original"));
  int opened = 1;
  for (int k = 0; k < prog.effective_collapse_depth(); ++k) {
    const Loop& l = prog.nest.at(k);
    w.open("for (" + std::string(kIntT) + " " + l.var + " = " + l.lower.str() + "; " +
           l.var + " < " + l.upper.str() + "; " + l.var + "++)");
    ++opened;
  }
  emit_inner_loops_and_body(w, prog);
  for (int k = 0; k < opened; ++k) w.close();
  return w.out;
}

std::string emit_collapsed_function(const NestProgram& prog, const Collapsed& col,
                                    const EmitOptions& opt) {
  CodeWriter w;
  // Certificate wiring: refuse error-severity plans outright (codegen
  // must not produce C the analyzer proved can overflow), annotate the
  // rest so the generated source carries its own audit trail.
  if (opt.certificate != nullptr) {
    const NestCertificate& cert = *opt.certificate;
    if (opt.refuse_on_error && cert.max_severity() == LintSeverity::Error) {
      std::string msg = "emit: refused by the static analyzer:";
      for (const Diagnostic& d : cert.diagnostics)
        if (d.severity == LintSeverity::Error) msg += "\n  " + d.str();
      throw SpecError(msg);
    }
    w.out += "/* nrclint:\n";
    const std::string block = cert.str();
    size_t pos = 0;
    while (pos < block.size()) {
      size_t nl = block.find('\n', pos);
      if (nl == std::string::npos) nl = block.size();
      w.out += " * " + block.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
    w.out += " */\n";
  }
  // Degree >= 3 recoveries call the guarded real-arithmetic solver
  // helpers; emit them with the function (their include guard keeps a
  // translation unit holding several collapsed functions well-formed).
  w.out += wide_typedef_c();
  if (needs_real_solvers(col)) w.out += real_solver_helpers_c();
  w.open(signature(prog, "collapsed"));
  w.line("const " + std::string(kIntT) + " __nrc_total = (" + std::string(kIntT) +
         ")" + print_poly_c(col.ranking().total, wide_int_opts(),
                            /*integer_arith=*/true) +
         ";");
  {
    std::string decl = std::string(kIntT) + " ";
    decl += private_clause(col);
    w.line(decl + ";");
  }

  const std::string omp_sched = emission_omp_schedule(opt.schedule);
  switch (emission_style(opt.schedule)) {
    case RecoveryStyle::PerIteration: {
      if (opt.parallel)
        w.line("#pragma omp parallel for private(" + private_clause(col) + ") schedule(" +
               omp_sched + ")");
      w.open("for (" + std::string(kIntT) + " pc = 1; pc <= __nrc_total; pc++)");
      emit_recovery(w, prog, col);
      emit_inner_loops_and_body(w, prog);
      w.close();
      break;
    }
    case RecoveryStyle::PerThread: {
      w.line("int __nrc_first = 1;");
      if (opt.parallel)
        w.line("#pragma omp parallel for firstprivate(__nrc_first) private(" +
               private_clause(col) + ") schedule(" + omp_sched + ")");
      w.open("for (" + std::string(kIntT) + " pc = 1; pc <= __nrc_total; pc++)");
      w.open("if (__nrc_first)");
      emit_recovery(w, prog, col);
      w.line("__nrc_first = 0;");
      w.close();
      emit_inner_loops_and_body(w, prog);
      emit_increment(w, col);
      w.close();
      break;
    }
    case RecoveryStyle::Chunked: {
      if (opt.parallel)
        w.line("#pragma omp parallel for private(" + private_clause(col) + ") schedule(" +
               omp_sched + ")");
      w.open("for (" + std::string(kIntT) + " pc = 1; pc <= __nrc_total; pc++)");
      w.open("if ((pc - 1) % " + std::to_string(opt.schedule.chunk) + " == 0)");
      emit_recovery(w, prog, col);
      w.close();
      emit_inner_loops_and_body(w, prog);
      emit_increment(w, col);
      w.close();
      break;
    }
    case RecoveryStyle::SimdBlocks: {
      // §VI-A: per thread, recover once; per block of `vlen` iterations,
      // materialize the index tuples by incrementation and run the body
      // under `omp simd` with the indices re-bound per lane.
      const NestSpec& sub = col.nest();
      const std::string vlen = std::to_string(opt.schedule.vlen);
      w.line("int __nrc_first = 1;");
      if (opt.parallel)
        w.line("#pragma omp parallel for firstprivate(__nrc_first) private(" +
               private_clause(col) + ") schedule(" + omp_sched + ")");
      w.open("for (" + std::string(kIntT) + " pc = 1; pc <= __nrc_total; pc += " + vlen + ")");
      w.open("if (__nrc_first)");
      emit_recovery(w, prog, col);
      w.line("__nrc_first = 0;");
      w.close();
      for (const auto& v : sub.loop_vars())
        w.line(std::string(kIntT) + " __nrc_T_" + v + "[" + vlen + "];");
      w.line("const " + std::string(kIntT) + " __nrc_blk = (__nrc_total - pc + 1) < " +
             vlen + " ? (__nrc_total - pc + 1) : " + vlen + ";");
      w.open("for (" + std::string(kIntT) + " __v = 0; __v < __nrc_blk; __v++)");
      for (const auto& v : sub.loop_vars()) w.line("__nrc_T_" + v + "[__v] = " + v + ";");
      emit_increment(w, col);
      w.close();
      w.line("#pragma omp simd");
      w.open("for (" + std::string(kIntT) + " __v = 0; __v < __nrc_blk; __v++)");
      // Shadow the odometer state with the lane's tuple.
      for (const auto& v : sub.loop_vars())
        w.line(std::string(kIntT) + " " + v + " = __nrc_T_" + v + "[__v];");
      emit_inner_loops_and_body(w, prog);
      w.close();
      w.close();
      break;
    }
  }
  w.close();
  return w.out;
}

std::string emit_verification_program(const NestProgram& prog, const Collapsed& col,
                                      const EmitOptions& opt) {
  CodeWriter w;
  w.line("/* Generated by nrcollapse: verification harness for '" + prog.name + "'.");
  w.line(" * Runs the original and the collapsed nest on identical inputs and");
  w.line(" * compares every output array.  Prints OK and exits 0 on success. */");
  w.line("#include <stdio.h>");
  w.line("#include <stdlib.h>");
  w.line("#include <math.h>");
  w.line("#ifndef M_PI");
  w.line("#define M_PI 3.14159265358979323846");
  w.line("#endif");
  w.line("");
  w.out += emit_original_function(prog);
  w.line("");
  w.out += emit_collapsed_function(prog, col, opt);
  w.line("");

  w.open("static double *nrc_alloc_init(long long n, unsigned seed)");
  w.line("double *p = (double *)malloc(sizeof(double) * (size_t)n);");
  w.line("unsigned s = seed;");
  w.open("for (long long q = 0; q < n; q++)");
  w.line("s = s * 1664525u + 1013904223u;");
  w.line("p[q] = (double)(s % 1000u) / 1000.0;");
  w.close();
  w.line("return p;");
  w.close();
  w.line("");

  w.open("int main(int argc, char **argv)");
  {
    int argi = 1;
    for (const auto& p : prog.nest.params()) {
      w.line("long long " + p + " = 32;");
      w.line("if (argc > " + std::to_string(argi) + ") " + p + " = atoll(argv[" +
             std::to_string(argi) + "]);");
      ++argi;
    }
  }
  unsigned seed = 1;
  for (const auto& a : prog.arrays) {
    const std::string n = array_elems(a);
    w.line("double *" + a.name + "_ref = nrc_alloc_init(" + n + ", " + std::to_string(seed) +
           "u);");
    w.line("double *" + a.name + "_col = nrc_alloc_init(" + n + ", " + std::to_string(seed) +
           "u);");
    ++seed;
  }

  auto call = [&](const std::string& suffix, const std::string& copy) {
    std::string s = prog.name + "_" + suffix + "(";
    bool first = true;
    for (const auto& p : prog.nest.params()) {
      if (!first) s += ", ";
      s += p;
      first = false;
    }
    for (const auto& a : prog.arrays) {
      if (!first) s += ", ";
      s += array_cast(a) + a.name + "_" + copy;
      first = false;
    }
    return s + ");";
  };
  w.line(call("original", "ref"));
  w.line(call("collapsed", "col"));

  w.line("long long bad = 0;");
  for (const auto& a : prog.arrays) {
    w.open("for (long long q = 0; q < " + array_elems(a) + "; q++)");
    w.line("double d = fabs(" + a.name + "_ref[q] - " + a.name + "_col[q]);");
    w.line("if (d > 1e-9 * (fabs(" + a.name + "_ref[q]) + 1.0)) bad++;");
    w.close();
  }
  w.open("if (bad)");
  w.line("printf(\"MISMATCH: %lld elements differ\\n\", bad);");
  w.line("return 1;");
  w.close();
  w.line("printf(\"OK\\n\");");
  w.line("return 0;");
  w.close();
  return w.out;
}

}  // namespace nrc
