#pragma once
// Loop-nest DSL: the front end of the source-to-source tool.
//
// The paper's tool ingests C sources; a full C front end is out of scope
// here, so the tool ingests an explicit nest description that captures
// exactly the information the transformation needs (the Fig. 5 model plus
// the body text, which is carried through verbatim):
//
//   # correlation kernel, paper Fig. 1
//   name correlation
//   params N
//   array double a[N][N]
//   array double b[N][N]
//   array double c[N][N]
//   loop i = 0 .. N-1        # upper bound exclusive
//   loop j = i+1 .. N
//   collapse 2
//   body {
//     for (long k = 0; k < N; k++)
//       a[i][j] += b[k][i] * c[k][j];
//     a[j][i] = a[i][j];
//   }

#include <string>
#include <vector>

#include "polyhedral/nest.hpp"

namespace nrc {

/// An array declaration carried through to generated code.
struct ArrayDecl {
  std::string elem;               ///< element type, e.g. "double"
  std::string name;               ///< array identifier
  std::vector<std::string> dims;  ///< dimension expressions, outermost first
};

/// A parsed nest program: the nest, how many outer loops to collapse,
/// and the body text.
struct NestProgram {
  std::string name = "kernel";
  NestSpec nest;
  int collapse_depth = 0;  ///< 0 means "all loops"
  std::vector<ArrayDecl> arrays;
  std::string body;  ///< C statements; loop variables are in scope

  /// The sub-nest being collapsed (outer collapse_depth loops).
  NestSpec collapsed_nest() const;
  int effective_collapse_depth() const;
};

/// Parse the DSL text; throws ParseError with line information.
NestProgram parse_nest_program(const std::string& text);

/// Parse a single affine expression such as "2*i - N + 1".
/// Exposed for reuse and tests.
AffineExpr parse_affine(const std::string& text);

/// Render a nest program back into the DSL (the inverse of
/// parse_nest_program up to whitespace).  Useful for tooling: the C
/// front end's output can be saved as a .nest file, and every program
/// round-trips parse -> render -> parse to the same nest.
std::string render_nest_program(const NestProgram& prog);

}  // namespace nrc
