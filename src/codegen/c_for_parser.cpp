#include "codegen/c_for_parser.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <set>

#include "support/error.hpp"

namespace nrc {
namespace {

struct Cursor {
  const std::string& s;
  size_t at = 0;

  void skip_ws_and_comments() {
    for (;;) {
      while (at < s.size() && std::isspace(static_cast<unsigned char>(s[at]))) ++at;
      if (at + 1 < s.size() && s[at] == '/' && s[at + 1] == '/') {
        while (at < s.size() && s[at] != '\n') ++at;
        continue;
      }
      if (at + 1 < s.size() && s[at] == '/' && s[at + 1] == '*') {
        const size_t end = s.find("*/", at + 2);
        if (end == std::string::npos) throw ParseError("unterminated /* comment");
        at = end + 2;
        continue;
      }
      break;
    }
  }

  bool eat_keyword(const char* kw) {
    skip_ws_and_comments();
    const size_t n = std::strlen(kw);
    if (s.compare(at, n, kw) != 0) return false;
    const char next = at + n < s.size() ? s[at + n] : '\0';
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') return false;
    at += n;
    return true;
  }

  bool eat(char c) {
    skip_ws_and_comments();
    if (at < s.size() && s[at] == c) {
      ++at;
      return true;
    }
    return false;
  }

  bool peek_is(char c) {
    skip_ws_and_comments();
    return at < s.size() && s[at] == c;
  }

  std::string ident() {
    skip_ws_and_comments();
    const size_t start = at;
    while (at < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[at])) || s[at] == '_'))
      ++at;
    if (at == start) throw ParseError("expected identifier at offset " + std::to_string(at));
    return s.substr(start, at - start);
  }

  /// Text up to (not including) the next top-level occurrence of `stop`.
  std::string until(char stop) {
    skip_ws_and_comments();
    int paren = 0;
    const size_t start = at;
    while (at < s.size()) {
      const char c = s[at];
      if (c == '(') ++paren;
      if (c == ')') {
        if (paren == 0 && stop == ')') break;
        --paren;
      }
      if (c == stop && paren == 0) break;
      ++at;
    }
    if (at >= s.size()) throw ParseError(std::string("expected '") + stop + "'");
    return s.substr(start, at - start);
  }
};

/// Strip an optional `#pragma omp ...` prefix; returns collapse(n) if given.
int strip_pragma(Cursor& cur) {
  cur.skip_ws_and_comments();
  int collapse_n = 0;
  while (cur.at < cur.s.size() && cur.s[cur.at] == '#') {
    const size_t eol = cur.s.find('\n', cur.at);
    const std::string line =
        cur.s.substr(cur.at, eol == std::string::npos ? std::string::npos : eol - cur.at);
    const size_t c = line.find("collapse");
    if (c != std::string::npos) {
      const size_t open = line.find('(', c);
      if (open != std::string::npos) collapse_n = std::atoi(line.c_str() + open + 1);
    }
    cur.at = eol == std::string::npos ? cur.s.size() : eol + 1;
    cur.skip_ws_and_comments();
  }
  return collapse_n;
}

}  // namespace

NestProgram parse_c_for_nest(const std::string& source) {
  Cursor cur{source};
  NestProgram prog;
  prog.name = "nest";
  prog.collapse_depth = strip_pragma(cur);

  std::set<std::string> loop_vars;
  int depth = 0;
  while (cur.eat_keyword("for")) {
    ++depth;
    if (!cur.eat('(')) throw ParseError("for: expected '('");
    // init:  [type] VAR = AFFINE ;
    cur.eat_keyword("long") || cur.eat_keyword("int") || cur.eat_keyword("size_t");
    const std::string var = cur.ident();
    if (!cur.eat('=')) throw ParseError("for: expected '=' in init of " + var);
    const std::string lo_text = cur.until(';');
    if (!cur.eat(';')) throw ParseError("for: expected ';' after init");
    // cond:  VAR < AFFINE   or   VAR <= AFFINE
    const std::string cond_var = cur.ident();
    if (cond_var != var)
      throw ParseError("for: condition tests '" + cond_var + "', expected '" + var + "'");
    if (!cur.eat('<')) throw ParseError("for: only '<' / '<=' conditions are supported");
    const bool inclusive = cur.eat('=');
    const std::string hi_text = cur.until(';');
    if (!cur.eat(';')) throw ParseError("for: expected ';' after condition");
    // step:  VAR++ | ++VAR | VAR += 1 | VAR = VAR + 1
    std::string step = cur.until(')');
    if (!cur.eat(')')) throw ParseError("for: expected ')'");
    auto strip_all_ws = [](std::string t) {
      std::string r;
      for (char ch : t)
        if (!std::isspace(static_cast<unsigned char>(ch))) r += ch;
      return r;
    };
    const std::string st = strip_all_ws(step);
    if (st != var + "++" && st != "++" + var && st != var + "+=1" &&
        st != var + "=" + var + "+1")
      throw ParseError("for: unsupported step '" + step + "' (unit stride required)");

    AffineExpr lo = parse_affine(lo_text);
    AffineExpr hi = parse_affine(hi_text);
    if (inclusive) hi += AffineExpr(1);
    prog.nest.loop(var, lo, hi);
    loop_vars.insert(var);
  }
  if (depth == 0) throw ParseError("no for-loop found");

  // Body: either a brace block or a single statement up to the end.
  cur.skip_ws_and_comments();
  if (cur.peek_is('{')) {
    const size_t open = cur.at;
    int braces = 0;
    size_t i = open;
    for (; i < source.size(); ++i) {
      if (source[i] == '{') ++braces;
      if (source[i] == '}') {
        --braces;
        if (braces == 0) break;
      }
    }
    if (braces != 0) throw ParseError("body: unbalanced braces");
    // Strip the outermost braces and trailing/leading whitespace.
    std::string body = source.substr(open + 1, i - open - 1);
    size_t b = body.find_first_not_of(" \t\n\r");
    size_t e = body.find_last_not_of(" \t\n\r");
    prog.body = b == std::string::npos ? "" : body.substr(b, e - b + 1);
  } else {
    std::string body = source.substr(cur.at);
    size_t e = body.find_last_not_of(" \t\n\r");
    prog.body = e == std::string::npos ? "" : body.substr(0, e + 1);
  }
  if (prog.body.empty()) throw ParseError("empty loop body");

  // Infer parameters: bound identifiers that are not loop variables.
  std::set<std::string> params;
  for (const auto& l : prog.nest.loops()) {
    for (const auto* bound : {&l.lower, &l.upper}) {
      for (const auto& v : bound->variables())
        if (!loop_vars.count(v)) params.insert(v);
    }
  }
  for (const auto& p : params) prog.nest.param(p);

  if (prog.collapse_depth > prog.nest.depth())
    throw ParseError("collapse(" + std::to_string(prog.collapse_depth) +
                     ") exceeds nest depth " + std::to_string(prog.nest.depth()));
  prog.nest.validate();
  return prog;
}

}  // namespace nrc
