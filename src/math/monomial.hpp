#pragma once
// Monomial: a product of named variables raised to positive powers.
//
// Monomials key the term map of nrc::Polynomial.  Variables are identified
// by name; exponents are kept sorted by variable name so that comparison
// and hashing are canonical.

#include <string>
#include <utility>
#include <vector>

namespace nrc {

/// Immutable product of variable powers, e.g. {i^2, N^1}.
/// The empty monomial is the constant 1.
class Monomial {
 public:
  Monomial() = default;

  /// Single variable to the given (strictly positive) power.
  static Monomial var(const std::string& name, int power = 1);

  /// Exponent of `name` (0 when absent).
  int exponent(const std::string& name) const;

  /// Product of two monomials (exponents add).
  Monomial operator*(const Monomial& o) const;

  /// Remove `name` entirely, returning the remaining monomial.
  Monomial without(const std::string& name) const;

  /// Sum of all exponents.
  int total_degree() const;

  bool is_constant() const { return exps_.empty(); }

  const std::vector<std::pair<std::string, int>>& factors() const { return exps_; }

  bool operator==(const Monomial& o) const { return exps_ == o.exps_; }
  bool operator<(const Monomial& o) const;  // total order for std::map

  /// Rendering such as "i^2*N" (constant monomial renders as "1").
  std::string str() const;

 private:
  // Sorted by variable name; every exponent strictly positive.
  std::vector<std::pair<std::string, int>> exps_;
};

}  // namespace nrc
