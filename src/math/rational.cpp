#include "math/rational.hpp"

namespace nrc {
namespace {

i128 gcd_i128(i128 a, i128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    i128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational Rational::from_i128(i128 n, i128 d) {
  if (d == 0) throw SpecError("Rational: zero denominator");
  if (d < 0) {
    n = -n;
    d = -d;
  }
  if (n == 0) return Rational();
  const i128 g = gcd_i128(n, d);
  n /= g;
  d /= g;
  Rational r;
  r.num_ = narrow_i64(n);
  r.den_ = narrow_i64(d);
  return r;
}

Rational::Rational(i64 n, i64 d) { *this = from_i128(n, d); }

i64 Rational::as_integer() const {
  if (den_ != 1) throw SolveError("Rational " + str() + " is not an integer");
  return num_;
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  return from_i128(checked_add(checked_mul(num_, o.den_), checked_mul(o.num_, den_)),
                   checked_mul(den_, o.den_));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  return from_i128(checked_mul(num_, o.num_), checked_mul(den_, o.den_));
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) throw SpecError("Rational: division by zero");
  return from_i128(checked_mul(num_, o.den_), checked_mul(den_, o.num_));
}

std::strong_ordering Rational::operator<=>(const Rational& o) const {
  const i128 lhs = checked_mul(num_, o.den_);
  const i128 rhs = checked_mul(o.num_, den_);
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Rational::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

i64 lcm_i64(i64 a, i64 b) {
  const i64 g = std::gcd(a, b);
  return checked_mul_i64(a / g, b);
}

}  // namespace nrc
