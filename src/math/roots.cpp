#include "math/roots.hpp"

#include <cmath>

#include "support/error.hpp"

namespace nrc {
namespace {

constexpr long double kPi = 3.14159265358979323846264338327950288L;

cld cis(long double k, long double n) {
  const long double a = 2.0L * kPi * k / n;
  return {std::cos(a), std::sin(a)};
}

cld root_linear(std::span<const cld> a) { return -a[0] / a[1]; }

cld root_quadratic(std::span<const cld> a, int branch) {
  const cld s = std::sqrt(a[1] * a[1] - 4.0L * a[2] * a[0]);
  return branch == 0 ? (-a[1] + s) / (2.0L * a[2]) : (-a[1] - s) / (2.0L * a[2]);
}

// Cardano on the monic cubic x^3 + b x^2 + c x + d.
cld cardano(const cld& b, const cld& c, const cld& d, int branch) {
  const cld p = c - b * b / 3.0L;
  const cld q = 2.0L * b * b * b / 27.0L - b * c / 3.0L + d;
  const cld delta = q * q / 4.0L + p * p * p / 27.0L;
  cld u = principal_cbrt(-q / 2.0L + std::sqrt(delta));
  if (std::abs(u) < 1e-30L) {
    // Degenerate: u == 0 implies p == 0 (triple root of the depressed
    // cubic); take the direct cube root of -q instead.
    const cld t = principal_cbrt(-q) * cis(static_cast<long double>(branch), 3.0L);
    return t - b / 3.0L;
  }
  const cld uk = u * cis(static_cast<long double>(branch), 3.0L);
  const cld t = uk - p / (3.0L * uk);
  return t - b / 3.0L;
}

cld root_cubic(std::span<const cld> a, int branch) {
  return cardano(a[2] / a[3], a[1] / a[3], a[0] / a[3], branch);
}

// Ferrari on the monic quartic x^4 + b x^3 + c x^2 + d x + e via the
// factorization (y^2 + alpha y + beta)(y^2 - alpha y + gamma) of the
// depressed quartic y^4 + p y^2 + q y + r, where w = alpha^2 solves the
// resolvent cubic  w^3 + 2p w^2 + (p^2 - 4r) w - q^2 = 0.
cld root_quartic(std::span<const cld> a, int branch) {
  const cld b = a[3] / a[4];
  const cld c = a[2] / a[4];
  const cld d = a[1] / a[4];
  const cld e = a[0] / a[4];

  const cld p = c - 3.0L * b * b / 8.0L;
  const cld q = d - b * c / 2.0L + b * b * b / 8.0L;
  const cld r = e - b * d / 4.0L + b * b * c / 16.0L - 3.0L * b * b * b * b / 256.0L;

  const int resolvent_branch = branch / 4;  // 0..2
  const int quad_branch = branch % 4;       // 0..3

  const cld w = cardano(2.0L * p, p * p - 4.0L * r, -q * q, resolvent_branch);
  const cld alpha = std::sqrt(w);
  // q == 0 (biquadratic) makes alpha == 0 and the division below blow up;
  // the caller falls back to exact search when a non-finite value comes
  // back, which mirrors the behaviour of the generated C code.
  const cld beta = (p + w - q / alpha) / 2.0L;
  const cld gamma = (p + w + q / alpha) / 2.0L;

  cld y;
  switch (quad_branch) {
    case 0:
      y = (-alpha + std::sqrt(alpha * alpha - 4.0L * beta)) / 2.0L;
      break;
    case 1:
      y = (-alpha - std::sqrt(alpha * alpha - 4.0L * beta)) / 2.0L;
      break;
    case 2:
      y = (alpha + std::sqrt(alpha * alpha - 4.0L * gamma)) / 2.0L;
      break;
    default:
      y = (alpha - std::sqrt(alpha * alpha - 4.0L * gamma)) / 2.0L;
      break;
  }
  return y - b / 4.0L;
}

}  // namespace

cld principal_cbrt(const cld& z) {
  // Polar form of the principal branch (arg/3 stays in (-pi/3, pi/3]):
  // the same branch cpow(z, 1/3) picks in the generated C code, at
  // roughly half the cost.  The single shared implementation keeps
  // branch calibration, the interpreter and the bytecode engine
  // bit-identical.
  if (z == cld{0.0L, 0.0L}) return {0.0L, 0.0L};
  const long double m = std::cbrt(std::hypot(z.real(), z.imag()));
  const long double a = std::atan2(z.imag(), z.real()) / 3.0L;
  return {m * std::cos(a), m * std::sin(a)};
}

int root_branch_count(int degree) {
  switch (degree) {
    case 1:
      return 1;
    case 2:
      return 2;
    case 3:
      return 3;
    case 4:
      return 12;
    default:
      throw DegreeError("root_branch_count: unsupported degree " + std::to_string(degree));
  }
}

cld root_branch_value(std::span<const cld> coeffs, int branch) {
  const int degree = static_cast<int>(coeffs.size()) - 1;
  if (branch < 0 || branch >= root_branch_count(degree))
    throw SolveError("root_branch_value: branch out of range");
  switch (degree) {
    case 1:
      return root_linear(coeffs);
    case 2:
      return root_quadratic(coeffs, branch);
    case 3:
      return root_cubic(coeffs, branch);
    case 4:
      return root_quartic(coeffs, branch);
    default:
      throw DegreeError("root_branch_value: unsupported degree " + std::to_string(degree));
  }
}

std::vector<cld> all_root_branches(std::span<const cld> coeffs) {
  const int degree = static_cast<int>(coeffs.size()) - 1;
  std::vector<cld> out;
  const int n = root_branch_count(degree);
  out.reserve(static_cast<size_t>(n));
  for (int b = 0; b < n; ++b) out.push_back(root_branch_value(coeffs, b));
  return out;
}

}  // namespace nrc
