#pragma once
// Exact rational arithmetic on int64 numerator/denominator.
//
// Ranking Ehrhart polynomials have small rational coefficients
// (denominators divide lcm(1..d+1) for nest depth d), so an int64-backed
// rational with __int128 intermediates is exact for every computation the
// library performs.  All operations normalize (gcd-reduced, positive
// denominator) and throw OverflowError if a reduced component leaves the
// int64 range.

#include <compare>
#include <numeric>
#include <string>

#include "support/int128.hpp"

namespace nrc {

/// An exact rational number p/q with q > 0 and gcd(|p|, q) == 1.
class Rational {
 public:
  /// Zero.
  constexpr Rational() : num_(0), den_(1) {}
  /// Integer value n.
  constexpr Rational(i64 n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  /// n / d; throws SpecError when d == 0.
  Rational(i64 n, i64 d);

  i64 num() const { return num_; }
  i64 den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }
  /// Integer value; throws SolveError when not an integer.
  i64 as_integer() const;

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Throws SpecError on division by zero.
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const { return num_ == o.num_ && den_ == o.den_; }
  std::strong_ordering operator<=>(const Rational& o) const;

  long double to_long_double() const {
    return static_cast<long double>(num_) / static_cast<long double>(den_);
  }
  double to_double() const { return static_cast<double>(to_long_double()); }

  /// "p" when integral, "p/q" otherwise.
  std::string str() const;

  /// Reduce an i128 fraction to a Rational (throws OverflowError if the
  /// reduced numerator/denominator do not fit in int64).
  static Rational from_i128(i128 n, i128 d);

 private:
  i64 num_;
  i64 den_;
};

/// Least common multiple of two positive int64 values (checked).
i64 lcm_i64(i64 a, i64 b);

}  // namespace nrc
