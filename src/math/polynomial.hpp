#pragma once
// Multivariate polynomials over exact rationals.
//
// This is the construction-time workhorse of the library: ranking Ehrhart
// polynomials, trip-count polynomials and level-equation coefficients are
// all nrc::Polynomial values.  Construction happens once per collapse, so
// the representation favours clarity (ordered term map) over raw speed;
// the runtime hot paths use CompiledPoly, which resolves variables to
// dense slots and evaluates exactly in __int128.

#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "math/monomial.hpp"
#include "math/rational.hpp"

namespace nrc {

/// Sparse multivariate polynomial with Rational coefficients.
class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;
  /// Constant polynomial.
  Polynomial(const Rational& c);  // NOLINT(google-explicit-constructor)
  Polynomial(i64 c) : Polynomial(Rational(c)) {}  // NOLINT(google-explicit-constructor)

  /// The polynomial consisting of a single variable.
  static Polynomial variable(const std::string& name);

  bool is_zero() const { return terms_.empty(); }
  bool is_constant() const;
  /// Constant term (coefficient of the 1 monomial).
  Rational constant_term() const;

  Polynomial operator-() const;
  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator-(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;
  Polynomial operator*(const Rational& s) const;
  Polynomial operator/(const Rational& s) const;

  Polynomial& operator+=(const Polynomial& o) { return *this = *this + o; }
  Polynomial& operator-=(const Polynomial& o) { return *this = *this - o; }
  Polynomial& operator*=(const Polynomial& o) { return *this = *this * o; }

  bool operator==(const Polynomial& o) const { return terms_ == o.terms_; }

  /// p^e for non-negative integer e (p^0 == 1).
  Polynomial pow(unsigned e) const;

  /// Degree in a specific variable (-1 convention: zero polynomial has
  /// degree 0 here for simplicity — callers treat it as constant).
  int degree_in(const std::string& var) const;
  int total_degree() const;

  /// All variables mentioned by the polynomial.
  std::set<std::string> variables() const;

  /// Coefficients viewed as a univariate polynomial in `var`:
  /// result[e] is the coefficient polynomial of var^e (result has size
  /// degree_in(var)+1; zero polynomial yields {0}).
  std::vector<Polynomial> coefficients_in(const std::string& var) const;

  /// Substitute `var` := `value` (a polynomial), returning the result.
  Polynomial substitute(const std::string& var, const Polynomial& value) const;

  /// Partial derivative with respect to `var`.
  Polynomial derivative(const std::string& var) const;

  /// Exact evaluation with rational variable values.
  Rational eval(const std::map<std::string, Rational>& vals) const;

  /// Exact integer evaluation (values looked up by name).  The polynomial
  /// must be integer-valued at the point; throws SolveError otherwise.
  i128 eval_i128(const std::map<std::string, i64>& vals) const;

  /// Least common multiple of all coefficient denominators (>= 1).
  i64 denominator_lcm() const;

  const std::map<Monomial, Rational>& terms() const { return terms_; }

  /// Human-readable rendering, e.g. "1/2*i^2 + 3/2*i + 1".
  std::string str() const;

 private:
  void add_term(const Monomial& m, const Rational& c);

  std::map<Monomial, Rational> terms_;  // no zero coefficients stored
};

/// A polynomial pre-bound to a dense variable ordering for fast, exact
/// evaluation on integer points.  Terms are stored with integer
/// coefficients over a common denominator; evaluation accumulates in
/// __int128 with overflow checks and performs one exact division at the
/// end (ranking polynomials are integer-valued on integer points).
class CompiledPoly {
 public:
  CompiledPoly() = default;

  /// `order` maps slot index -> variable name.  Every variable of `p`
  /// must appear in `order`; unused slots are permitted.
  CompiledPoly(const Polynomial& p, std::span<const std::string> order);

  /// Exact integer value at the point; throws on overflow / inexactness.
  i128 eval_i128(std::span<const i64> point) const;

  /// Floating evaluation (long double) for root formulas.
  long double eval_ld(std::span<const long double> point) const;

  i64 denominator() const { return den_; }
  bool empty() const { return terms_.empty(); }

 private:
  struct Term {
    i64 scaled_num = 0;                       // coefficient * (den_/coeff_den)
    std::vector<std::pair<int, int>> powers;  // (slot, exponent)
  };
  std::vector<Term> terms_;
  i64 den_ = 1;
};

}  // namespace nrc
