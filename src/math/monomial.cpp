#include "math/monomial.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace nrc {

Monomial Monomial::var(const std::string& name, int power) {
  if (power <= 0) throw SpecError("Monomial::var: power must be positive");
  Monomial m;
  m.exps_.emplace_back(name, power);
  return m;
}

int Monomial::exponent(const std::string& name) const {
  for (const auto& [v, e] : exps_)
    if (v == name) return e;
  return 0;
}

Monomial Monomial::operator*(const Monomial& o) const {
  Monomial r;
  r.exps_.reserve(exps_.size() + o.exps_.size());
  auto a = exps_.begin();
  auto b = o.exps_.begin();
  while (a != exps_.end() && b != o.exps_.end()) {
    if (a->first < b->first) {
      r.exps_.push_back(*a++);
    } else if (b->first < a->first) {
      r.exps_.push_back(*b++);
    } else {
      r.exps_.emplace_back(a->first, a->second + b->second);
      ++a;
      ++b;
    }
  }
  r.exps_.insert(r.exps_.end(), a, exps_.end());
  r.exps_.insert(r.exps_.end(), b, o.exps_.end());
  return r;
}

Monomial Monomial::without(const std::string& name) const {
  Monomial r;
  r.exps_.reserve(exps_.size());
  for (const auto& f : exps_)
    if (f.first != name) r.exps_.push_back(f);
  return r;
}

int Monomial::total_degree() const {
  int d = 0;
  for (const auto& [v, e] : exps_) d += e;
  return d;
}

bool Monomial::operator<(const Monomial& o) const {
  // Graded-lexicographic: lower total degree first, then factor list.
  const int da = total_degree();
  const int db = o.total_degree();
  if (da != db) return da < db;
  return exps_ < o.exps_;
}

std::string Monomial::str() const {
  if (exps_.empty()) return "1";
  std::string s;
  for (const auto& [v, e] : exps_) {
    if (!s.empty()) s += "*";
    s += v;
    if (e != 1) s += "^" + std::to_string(e);
  }
  return s;
}

}  // namespace nrc
