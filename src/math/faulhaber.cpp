#include "math/faulhaber.hpp"

#include <mutex>
#include <vector>

#include "support/error.hpp"

namespace nrc {
namespace {

/// Exact Lagrange interpolation through integer points (x_i, y_i).
Polynomial lagrange(const std::vector<i64>& xs, const std::vector<Rational>& ys) {
  const Polynomial x = Polynomial::variable("x");
  Polynomial acc;
  for (size_t i = 0; i < xs.size(); ++i) {
    Polynomial basis(Rational(1));
    Rational denom(1);
    for (size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      basis *= (x - Polynomial(Rational(xs[j])));
      denom *= Rational(xs[i] - xs[j]);
    }
    acc += basis * (ys[i] / denom);
  }
  return acc;
}

Polynomial build_faulhaber(unsigned p) {
  // F_p has degree p+1, so p+2 points pin it down.  Use x = -1 .. p with
  // the recurrence F(-1) = 0, F(k) = F(k-1) + k^p  (0^0 == 1).
  std::vector<i64> xs;
  std::vector<Rational> ys;
  Rational running(0);
  xs.push_back(-1);
  ys.push_back(running);
  for (i64 k = 0; k <= static_cast<i64>(p); ++k) {
    Rational kp(1);
    for (unsigned e = 0; e < p; ++e) kp *= Rational(k);
    running += kp;  // k^p with 0^0 = 1 handled by the empty product
    xs.push_back(k);
    ys.push_back(running);
  }
  return lagrange(xs, ys);
}

}  // namespace

const Polynomial& faulhaber(unsigned p) {
  static std::mutex mu;
  static std::vector<Polynomial> cache;
  std::lock_guard<std::mutex> lock(mu);
  while (cache.size() <= p) cache.push_back(build_faulhaber(static_cast<unsigned>(cache.size())));
  return cache[p];
}

Polynomial sum_over_range(const Polynomial& P, const std::string& var, const Polynomial& lo,
                          const Polynomial& hi) {
  const Polynomial lo_minus_1 = lo - Polynomial(Rational(1));
  const auto coeffs = P.coefficients_in(var);
  Polynomial acc;
  for (size_t e = 0; e < coeffs.size(); ++e) {
    if (coeffs[e].is_zero()) continue;
    if (coeffs[e].degree_in(var) > 0)
      throw SpecError("sum_over_range: coefficient still mentions summation variable " + var);
    const Polynomial& F = faulhaber(static_cast<unsigned>(e));
    const Polynomial upper = F.substitute("x", hi);
    const Polynomial lower = F.substitute("x", lo_minus_1);
    acc += coeffs[e] * (upper - lower);
  }
  return acc;
}

}  // namespace nrc
