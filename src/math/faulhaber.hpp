#pragma once
// Faulhaber (power-sum) polynomials and symbolic summation.
//
// This module is the replacement for PolyLib/barvinok Ehrhart counting in
// the model handled by the paper (Fig. 5: perfectly nested loops with
// affine bounds in outer iterators and parameters).  For such nests every
// point count is a nested sum of polynomials over affine ranges, which
// closed-forms exactly through the discrete antiderivative
//
//     F_p(x) = sum_{t=0}^{x} t^p       (degree p+1, integer-valued on Z,
//                                       F_p(-1) = 0 by construction)
//
// composed with the affine bounds.  All arithmetic is exact rational.

#include <string>

#include "math/polynomial.hpp"

namespace nrc {

/// The Faulhaber polynomial F_p as a univariate polynomial in variable
/// "x" (cached; thread-safe after first use of each degree).
/// F_0(x) = x + 1 (we use the convention 0^0 = 1).
const Polynomial& faulhaber(unsigned p);

/// Closed form of   sum_{var = lo}^{hi} P   (hi inclusive) where `lo` and
/// `hi` are polynomials not involving `var`.  The result no longer
/// involves `var`.  The identity assumes a non-empty range (hi >= lo-1);
/// for hi == lo-1 the result is exactly zero, matching an empty sum.
Polynomial sum_over_range(const Polynomial& P, const std::string& var, const Polynomial& lo,
                          const Polynomial& hi);

}  // namespace nrc
