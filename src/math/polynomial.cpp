#include "math/polynomial.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace nrc {

Polynomial::Polynomial(const Rational& c) {
  if (!c.is_zero()) terms_.emplace(Monomial(), c);
}

Polynomial Polynomial::variable(const std::string& name) {
  Polynomial p;
  p.terms_.emplace(Monomial::var(name), Rational(1));
  return p;
}

bool Polynomial::is_constant() const {
  return terms_.empty() || (terms_.size() == 1 && terms_.begin()->first.is_constant());
}

Rational Polynomial::constant_term() const {
  auto it = terms_.find(Monomial());
  return it == terms_.end() ? Rational() : it->second;
}

void Polynomial::add_term(const Monomial& m, const Rational& c) {
  if (c.is_zero()) return;
  auto [it, inserted] = terms_.emplace(m, c);
  if (!inserted) {
    it->second += c;
    if (it->second.is_zero()) terms_.erase(it);
  }
}

Polynomial Polynomial::operator-() const {
  Polynomial r;
  for (const auto& [m, c] : terms_) r.terms_.emplace(m, -c);
  return r;
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  Polynomial r = *this;
  for (const auto& [m, c] : o.terms_) r.add_term(m, c);
  return r;
}

Polynomial Polynomial::operator-(const Polynomial& o) const {
  Polynomial r = *this;
  for (const auto& [m, c] : o.terms_) r.add_term(m, -c);
  return r;
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
  Polynomial r;
  for (const auto& [ma, ca] : terms_)
    for (const auto& [mb, cb] : o.terms_) r.add_term(ma * mb, ca * cb);
  return r;
}

Polynomial Polynomial::operator*(const Rational& s) const {
  Polynomial r;
  if (s.is_zero()) return r;
  for (const auto& [m, c] : terms_) r.terms_.emplace(m, c * s);
  return r;
}

Polynomial Polynomial::operator/(const Rational& s) const {
  if (s.is_zero()) throw SpecError("Polynomial: division by zero scalar");
  return *this * (Rational(1) / s);
}

Polynomial Polynomial::pow(unsigned e) const {
  Polynomial r(Rational(1));
  Polynomial base = *this;
  while (e > 0) {
    if (e & 1u) r *= base;
    e >>= 1u;
    if (e > 0) base *= base;
  }
  return r;
}

int Polynomial::degree_in(const std::string& var) const {
  int d = 0;
  for (const auto& [m, c] : terms_) d = std::max(d, m.exponent(var));
  return d;
}

int Polynomial::total_degree() const {
  int d = 0;
  for (const auto& [m, c] : terms_) d = std::max(d, m.total_degree());
  return d;
}

std::set<std::string> Polynomial::variables() const {
  std::set<std::string> vs;
  for (const auto& [m, c] : terms_)
    for (const auto& [v, e] : m.factors()) vs.insert(v);
  return vs;
}

std::vector<Polynomial> Polynomial::coefficients_in(const std::string& var) const {
  std::vector<Polynomial> coeffs(static_cast<size_t>(degree_in(var)) + 1);
  for (const auto& [m, c] : terms_) {
    const int e = m.exponent(var);
    coeffs[static_cast<size_t>(e)].add_term(m.without(var), c);
  }
  return coeffs;
}

Polynomial Polynomial::substitute(const std::string& var, const Polynomial& value) const {
  const auto coeffs = coefficients_in(var);
  // Horner over the substituted value.
  Polynomial r;
  for (size_t e = coeffs.size(); e-- > 0;) {
    r = r * value + coeffs[e];
  }
  return r;
}

Polynomial Polynomial::derivative(const std::string& var) const {
  Polynomial r;
  for (const auto& [m, c] : terms_) {
    const int e = m.exponent(var);
    if (e == 0) continue;
    Monomial dm = m.without(var);
    if (e > 1) dm = dm * Monomial::var(var, e - 1);
    r.add_term(dm, c * Rational(e));
  }
  return r;
}

Rational Polynomial::eval(const std::map<std::string, Rational>& vals) const {
  Rational acc(0);
  for (const auto& [m, c] : terms_) {
    Rational t = c;
    for (const auto& [v, e] : m.factors()) {
      auto it = vals.find(v);
      if (it == vals.end()) throw SpecError("Polynomial::eval: missing value for " + v);
      for (int k = 0; k < e; ++k) t *= it->second;
    }
    acc += t;
  }
  return acc;
}

i128 Polynomial::eval_i128(const std::map<std::string, i64>& vals) const {
  const i64 den = denominator_lcm();
  i128 acc = 0;
  for (const auto& [m, c] : terms_) {
    i128 t = checked_mul(static_cast<i128>(c.num()), den / c.den());
    for (const auto& [v, e] : m.factors()) {
      auto it = vals.find(v);
      if (it == vals.end()) throw SpecError("Polynomial::eval_i128: missing value for " + v);
      t = checked_mul(t, ipow_checked(it->second, static_cast<unsigned>(e)));
    }
    acc = checked_add(acc, t);
  }
  return exact_div(acc, den);
}

i64 Polynomial::denominator_lcm() const {
  i64 l = 1;
  for (const auto& [m, c] : terms_) l = lcm_i64(l, c.den());
  return l;
}

std::string Polynomial::str() const {
  if (terms_.empty()) return "0";
  std::string s;
  // Render highest-degree terms first for readability.
  for (auto it = terms_.rbegin(); it != terms_.rend(); ++it) {
    const auto& [m, c] = *it;
    Rational shown = c;
    if (s.empty()) {
      if (c.num() < 0) {
        s += "-";
        shown = -c;
      }
    } else {
      s += c.num() >= 0 ? " + " : " - ";
      if (c.num() < 0) shown = -c;
    }
    if (m.is_constant()) {
      s += shown.str();
    } else if (shown == Rational(1)) {
      s += m.str();
    } else {
      s += shown.str() + "*" + m.str();
    }
  }
  return s;
}

CompiledPoly::CompiledPoly(const Polynomial& p, std::span<const std::string> order) {
  den_ = p.denominator_lcm();
  for (const auto& [m, c] : p.terms()) {
    Term t;
    t.scaled_num = checked_mul_i64(c.num(), den_ / c.den());
    for (const auto& [v, e] : m.factors()) {
      auto it = std::find(order.begin(), order.end(), v);
      if (it == order.end())
        throw SpecError("CompiledPoly: variable " + v + " missing from slot order");
      t.powers.emplace_back(static_cast<int>(it - order.begin()), e);
    }
    terms_.push_back(std::move(t));
  }
}

i128 CompiledPoly::eval_i128(std::span<const i64> point) const {
  i128 acc = 0;
  for (const auto& t : terms_) {
    i128 v = t.scaled_num;
    for (const auto& [slot, exp] : t.powers)
      v = checked_mul(v, ipow_checked(point[static_cast<size_t>(slot)],
                                      static_cast<unsigned>(exp)));
    acc = checked_add(acc, v);
  }
  return exact_div(acc, den_);
}

long double CompiledPoly::eval_ld(std::span<const long double> point) const {
  long double acc = 0.0L;
  for (const auto& t : terms_) {
    long double v = static_cast<long double>(t.scaled_num);
    for (const auto& [slot, exp] : t.powers)
      v *= std::pow(point[static_cast<size_t>(slot)], static_cast<long double>(exp));
    acc += v;
  }
  return acc / static_cast<long double>(den_);
}

}  // namespace nrc
