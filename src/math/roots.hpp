#pragma once
// Closed-form polynomial root evaluation over the complex numbers,
// degrees 1 through 4.
//
// The paper (§IV-C) shows that the convenient symbolic root of a level
// equation may be complex with a zero imaginary part for some pc values,
// so all evaluation happens in std::complex<long double> ("float
// functions may return NaN").
//
// Branch semantics: each degree exposes a fixed, deterministic family of
// root branches.  The same branch definitions are used by the *symbolic*
// formulas emitted for code generation (symbolic/root_formula.*), so a
// branch index selected numerically at collapse time identifies the same
// expression in the generated C code.
//
//   degree 1 : 1 branch    x = -a0/a1
//   degree 2 : 2 branches  x = (-a1 ± csqrt(a1² - 4 a2 a0)) / (2 a2)
//   degree 3 : 3 branches  Cardano, branch k multiplies the principal
//              cube root by e^{2πik/3}
//   degree 4 : 12 branches Ferrari; branch = 4·(resolvent Cardano branch)
//              + quadratic-factor branch in {0..3}
//
// A returned root may be non-finite when a formula degenerates (e.g. the
// Ferrari factorization with q == 0), and in rare degenerate
// configurations (the w == 0 resolvent branch of a biquadratic) a branch
// can even yield a finite value that is not a root.  Callers must treat
// branch values as *candidates*: the runtime verifies every recovered
// index against the exact integer ranking polynomial and falls back to
// exact search, so neither failure mode can corrupt a recovery.

#include <complex>
#include <span>
#include <vector>

namespace nrc {

using cld = std::complex<long double>;

/// Number of root branches exposed for a given degree (see above).
int root_branch_count(int degree);

/// Evaluate branch `branch` of the closed-form root of
///   a[deg]·x^deg + ... + a[1]·x + a[0] = 0,
/// where coeffs = {a0, a1, ..., a_deg} (low to high).  The leading
/// coefficient must be non-zero.  Degrees 1..4 only.
cld root_branch_value(std::span<const cld> coeffs, int branch);

/// All branches, in branch order, for convenience in tests.
std::vector<cld> all_root_branches(std::span<const cld> coeffs);

/// Principal complex cube root (cpow(z, 1/3) semantics, matching the
/// generated C code of paper Fig. 7).
cld principal_cbrt(const cld& z);

}  // namespace nrc
